// Command parcaudit checks a project tree against the PARC repository
// protocols (§IV-A): source/test/bench separation, no committed build
// artifacts, and Linux portability (path separators, line endings). It
// shares parcvet's flag and exit-code conventions (internal/report):
//
//	exit 0 — ran, no error-severity findings
//	exit 1 — ran, at least one error-severity finding
//	exit 2 — could not run (bad flags, unreadable tree)
//
// Usage:
//
//	parcaudit -dir path/to/project
//	parcaudit -dir . -errors-only -json
package main

import (
	"flag"
	"fmt"
	"os"

	"parc751/internal/repohygiene"
	"parc751/internal/report"
)

func main() {
	var (
		dir        = flag.String("dir", ".", "project directory to audit")
		errorsOnly = flag.Bool("errors-only", false, "report only error-severity findings")
		jsonOut    = flag.Bool("json", false, "emit findings as a JSON array")
		maxBytes   = flag.Int64("max-bytes", 1<<20, "largest file to content-check")
	)
	flag.Parse()

	vs, err := repohygiene.AuditFS(repohygiene.PARCDefaults(), os.DirFS(*dir), *maxBytes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "parcaudit: %v\n", err)
		os.Exit(2)
	}
	findings := repohygiene.Findings(vs)
	if *errorsOnly {
		findings = report.Errors(findings)
	}
	if err := report.Render(os.Stdout, findings, *jsonOut); err != nil {
		fmt.Fprintf(os.Stderr, "parcaudit: %v\n", err)
		os.Exit(2)
	}
	os.Exit(report.ExitCode(findings))
}
