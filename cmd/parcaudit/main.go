// Command parcaudit checks a project tree against the PARC repository
// protocols (§IV-A): source/test/bench separation, no committed build
// artifacts, and Linux portability (path separators, line endings).
//
// Usage:
//
//	parcaudit -dir path/to/project
//	parcaudit -dir . -errors-only
package main

import (
	"flag"
	"fmt"
	"os"

	"parc751/internal/repohygiene"
)

func main() {
	var (
		dir        = flag.String("dir", ".", "project directory to audit")
		errorsOnly = flag.Bool("errors-only", false, "report only error-severity findings")
		maxBytes   = flag.Int64("max-bytes", 1<<20, "largest file to content-check")
	)
	flag.Parse()

	vs, err := repohygiene.AuditFS(repohygiene.PARCDefaults(), os.DirFS(*dir), *maxBytes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "parcaudit: %v\n", err)
		os.Exit(1)
	}
	if *errorsOnly {
		vs = repohygiene.Errors(vs)
	}
	for _, v := range vs {
		fmt.Println(v)
	}
	nErr := len(repohygiene.Errors(vs))
	fmt.Printf("%d finding(s), %d error(s)\n", len(vs), nErr)
	if nErr > 0 {
		os.Exit(1)
	}
}
