// Command pquicksort runs the project 2 comparison from the command line:
// sorting a random array with the sequential baseline and the three
// parallel expressions (Parallel Task, Pyjama, goroutines), verifying and
// timing each.
//
// Usage:
//
//	pquicksort -n 1000000 -workers 4
//	pquicksort -n 500000 -impl ptask -threshold 2048
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"parc751/internal/ptask"
	"parc751/internal/sortalgo"
	"parc751/internal/workload"
)

func main() {
	var (
		n         = flag.Int("n", 1000000, "array length")
		workers   = flag.Int("workers", 4, "worker threads / team size")
		threshold = flag.Int("threshold", 4096, "sequential cutoff")
		impl      = flag.String("impl", "all", "seq | ptask | pyjama | go | all")
		seed      = flag.Uint64("seed", 751, "input seed")
	)
	flag.Parse()

	base := workload.IntArray(*seed, *n, 1<<30)
	rt := ptask.NewRuntime(*workers)
	defer rt.Shutdown()

	impls := map[string]func([]int){
		"seq":    sortalgo.Sequential,
		"ptask":  func(xs []int) { sortalgo.PTask(rt, xs, *threshold) },
		"pyjama": func(xs []int) { sortalgo.Pyjama(*workers, xs, *threshold) },
		"go":     func(xs []int) { sortalgo.Goroutines(xs, *threshold, 8) },
	}
	order := []string{"seq", "ptask", "pyjama", "go"}

	run := func(name string) {
		f, ok := impls[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "pquicksort: unknown impl %q\n", name)
			os.Exit(2)
		}
		xs := append([]int(nil), base...)
		start := time.Now()
		f(xs)
		d := time.Since(start)
		status := "sorted"
		if !sort.IntsAreSorted(xs) {
			status = "NOT SORTED"
		}
		fmt.Printf("%-8s n=%d threshold=%d workers=%d: %v (%s)\n",
			name, *n, *threshold, *workers, d, status)
	}

	if *impl == "all" {
		for _, name := range order {
			run(name)
		}
		return
	}
	run(*impl)
}
