// Command pquicksort runs the project 2 comparison from the command line:
// sorting a random array with the sequential baseline and the three
// parallel expressions (Parallel Task, Pyjama, goroutines), verifying and
// timing each.
//
// Usage:
//
//	pquicksort -n 1000000 -workers 4
//	pquicksort -n 500000 -impl ptask -threshold 2048
//	pquicksort -n 200000 -chaos          # sort under seeded fault injection
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"parc751/internal/faultinject"
	"parc751/internal/ptask"
	"parc751/internal/pyjama"
	"parc751/internal/sortalgo"
	"parc751/internal/workload"
)

func main() {
	var (
		n         = flag.Int("n", 1000000, "array length")
		workers   = flag.Int("workers", 4, "worker threads / team size")
		threshold = flag.Int("threshold", 4096, "sequential cutoff")
		impl      = flag.String("impl", "all", "seq | ptask | pyjama | go | all")
		seed      = flag.Uint64("seed", 751, "input seed")
		chaos     = flag.Bool("chaos", false,
			"inject a seeded fault plan (submit/run delays, a worker stall, barrier arrival skew) while sorting; the result must still verify")
	)
	flag.Parse()

	base := workload.IntArray(*seed, *n, 1<<30)
	rt := ptask.NewRuntime(*workers)
	defer rt.Shutdown()

	var injector *faultinject.Injector
	if *chaos {
		plan := faultinject.Plan{Name: "pquicksort-chaos", Seed: *seed}
		plan.Rules = append(plan.Rules,
			faultinject.Scatter(*seed, faultinject.SiteSubmit, faultinject.Delay, 8, 64, 200*time.Microsecond)...)
		plan.Rules = append(plan.Rules,
			faultinject.Rule{Site: faultinject.SiteRun, Kind: faultinject.Stall,
				Nth: *seed % 32, Count: 1, Dur: 2 * time.Millisecond},
			faultinject.Rule{Site: faultinject.SiteBarrierArrive, Kind: faultinject.Delay,
				Every: 3, Dur: 300 * time.Microsecond})
		injector = faultinject.New(plan)
		rt.SetFaultInjector(injector)
		pyjama.SetFaultInjector(injector)
		defer func() {
			pyjama.SetFaultInjector(nil)
			fmt.Printf("chaos: injected %d faults: %s\n", injector.Fired(), injector.TraceString())
		}()
	}

	impls := map[string]func([]int){
		"seq":    sortalgo.Sequential,
		"ptask":  func(xs []int) { sortalgo.PTask(rt, xs, *threshold) },
		"pyjama": func(xs []int) { sortalgo.Pyjama(*workers, xs, *threshold) },
		"go":     func(xs []int) { sortalgo.Goroutines(xs, *threshold, 8) },
	}
	order := []string{"seq", "ptask", "pyjama", "go"}

	run := func(name string) {
		f, ok := impls[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "pquicksort: unknown impl %q\n", name)
			os.Exit(2)
		}
		xs := append([]int(nil), base...)
		start := time.Now()
		f(xs)
		d := time.Since(start)
		status := "sorted"
		if !sort.IntsAreSorted(xs) {
			status = "NOT SORTED"
		}
		fmt.Printf("%-8s n=%d threshold=%d workers=%d: %v (%s)\n",
			name, *n, *threshold, *workers, d, status)
	}

	if *impl == "all" {
		for _, name := range order {
			run(name)
		}
		return
	}
	run(*impl)
}
