// Command parcpar detects auto-parallelization opportunities in
// sequential Go code: canonical loops whose iterations are provably
// independent and whose estimated cost clears the pyjama fork-join
// threshold. It is parcvet's inverse — built on the same loader, CFG,
// and report conventions — and can rewrite what it finds:
//
//	exit 0 — ran, no error-severity findings (parcpar emits warnings only)
//	exit 1 — ran, at least one error-severity finding
//	exit 2 — could not run (bad flags, load failure)
//
// Usage:
//
//	parcpar ./...                         # opportunities, whole module
//	parcpar -explain ./internal/kernels   # include reasoned rejections
//	parcpar -json ./... > findings.json
//	parcpar -fix ./internal/parcpar/autogen/seq        # rewrite in place
//	parcpar -o out -pkg par ./internal/parcpar/autogen/seq
//	parcpar -calibrate                    # print a host-local probe table
//	parcpar -list                         # describe the rules
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"parc751/internal/parcpar"
	"parc751/internal/parcvet/loader"
	"parc751/internal/report"
)

func main() {
	var (
		dir        = flag.String("dir", ".", "directory inside the module to analyze from")
		errorsOnly = flag.Bool("errors-only", false, "report only error-severity findings")
		jsonOut    = flag.Bool("json", false, "emit findings as a JSON array")
		explain    = flag.Bool("explain", false, "also report reasoned rejections (earlyexit, dependence, impurity, belowthreshold)")
		fix        = flag.Bool("fix", false, "rewrite rewritable loops to pyjama.ParallelFor / ParallelForReduce in place")
		outDir     = flag.String("o", "", "write rewritten copies of files with rewrites into this directory (requires one source-dir argument)")
		outPkg     = flag.String("pkg", "", "package name for -o output (default: source package name)")
		calibrate  = flag.Bool("calibrate", false, "measure a probe table on this host and print it as JSON")
		list       = flag.Bool("list", false, "list the rules and exit")
	)
	flag.Parse()

	if *list {
		fmt.Print(`parallelizable  warning  loop is independent and clears the cost threshold; rewrite available
earlyexit       warning  break/return/goto makes the trip count data-dependent (-explain)
dependence      warning  loop-carried dependence: shared scalar or aliasing writes (-explain)
impurity        warning  body calls or uses something outside the purity model (-explain)
belowthreshold  warning  safe but cheaper than one fork-join; not worth forking (-explain)
`)
		return
	}

	if *calibrate {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(parcpar.Calibrate()); err != nil {
			fatal(err)
		}
		return
	}

	root, err := loader.FindModuleRoot(*dir)
	if err != nil {
		fatal(err)
	}
	opts := parcpar.Options{Explain: *explain}

	if *outDir != "" {
		if flag.NArg() != 1 {
			fatal(fmt.Errorf("-o requires exactly one source directory argument"))
		}
		written, err := parcpar.GenerateDir(root, flag.Arg(0), *outDir, *outPkg)
		if err != nil {
			fatal(err)
		}
		for _, name := range written {
			fmt.Printf("wrote %s/%s\n", *outDir, name)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	if *fix {
		changed, err := parcpar.Fix(root, patterns, opts)
		if err != nil {
			fatal(err)
		}
		for _, name := range changed {
			fmt.Printf("rewrote %s\n", name)
		}
		return
	}

	findings, err := parcpar.Run(root, patterns, opts)
	if err != nil {
		fatal(err)
	}
	if *errorsOnly {
		findings = report.Errors(findings)
	}
	if err := report.Render(os.Stdout, findings, *jsonOut); err != nil {
		fatal(err)
	}
	os.Exit(report.ExitCode(findings))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "parcpar: %v\n", err)
	os.Exit(2)
}
