// Command parcbench regenerates the paper's exhibits: figures F1-F2, the
// assessment table, the allocation and Likert evaluations, and the ten
// project studies P1-P10. Each experiment prints the paper-shaped tables
// and verifies its findings (the "who wins / what shape" properties
// recorded in EXPERIMENTS.md).
//
// Usage:
//
//	parcbench -list
//	parcbench -e P2              # one experiment, full scale
//	parcbench -e all -quick      # everything, small sizes
//	parcbench -e P7 -workers 8 -seed 99
//	parcbench -e P2 -schedstats  # append per-worker scheduler counters
//
// It is also the front end of the committed-performance ratchet:
//
//	parcbench -perf                          # measure, ratchet vs last BENCH_*.json, no file written
//	parcbench -perf -perfout BENCH_7.json    # measure and write a new committed baseline
//	parcbench -perf -perfquick               # short windows (CI smoke; noisier)
//	parcbench -perf -perfbaseline BENCH_6.json -perftol 25
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"parc751/internal/experiments"
	"parc751/internal/perfbench"
)

func main() {
	var (
		expID   = flag.String("e", "all", "experiment id (F1, F2, TASSESS, EALLOC, ELIKERT, P1..P10, A1, A6, A7, A8, A9, A10, A11, A12) or 'all'")
		quick   = flag.Bool("quick", false, "use small problem sizes")
		seed    = flag.Uint64("seed", 751, "workload seed")
		workers = flag.Int("workers", 4, "worker threads for real parallel execution")
		list    = flag.Bool("list", false, "list experiments and exit")
		sstats  = flag.Bool("schedstats", false,
			"print per-worker scheduler counters (pushes/pops/steals/parks/wakes) and submit latency for experiments that drive the real runtime")

		perf     = flag.Bool("perf", false, "run the hot-path performance suite and ratchet against the last committed BENCH_<n>.json")
		perfOut  = flag.String("perfout", "", "write the measured report to this file (e.g. BENCH_7.json); empty = measure and compare only")
		perfBase = flag.String("perfbaseline", "", "baseline report to ratchet against (default: highest-numbered BENCH_<n>.json in the current directory, excluding -perfout)")
		perfTol  = flag.Float64("perftol", perfbench.DefaultTolerancePct, "ns/op regression tolerance in percent")
		perfEps  = flag.Float64("perfeps", perfbench.DefaultEpsilonNs, "absolute ns/op slack: deltas below this never fail, whatever the percentage")
		perfQk   = flag.Bool("perfquick", false, "short measurement windows (CI smoke; too noisy to commit as a baseline)")
		perfCmp  = flag.Bool("perfcompare", true, "ratchet against the baseline (disable to just measure, e.g. a -race smoke where timings are meaningless)")
		perfDel  = flag.String("perfdelta", "", "write the per-path baseline-vs-current delta report (JSON) to this file — the CI build artifact")
	)
	flag.Parse()

	if *perf {
		os.Exit(runPerf(*perfOut, *perfBase, *perfDel, *perfTol, *perfEps, *perfQk, *perfCmp))
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s  [%s]\n", e.ID, e.Title, e.Paper)
		}
		return
	}

	cfg := experiments.Config{Seed: *seed, Quick: *quick, Workers: *workers, SchedStats: *sstats}
	var toRun []experiments.Experiment
	if strings.EqualFold(*expID, "all") {
		toRun = experiments.All()
	} else {
		e, ok := experiments.ByID(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "parcbench: unknown experiment %q; try -list\n", *expID)
			os.Exit(2)
		}
		toRun = []experiments.Experiment{e}
	}

	failures := 0
	for _, e := range toRun {
		res := e.Run(cfg)
		fmt.Println(res.Output)
		if res.AllPassed() {
			fmt.Printf("[%s] all %d findings hold\n\n", res.ID, len(res.Findings))
		} else {
			failures++
			fmt.Printf("[%s] FAILED findings: %v\n\n", res.ID, res.FailedFindings())
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "parcbench: %d experiment(s) had failed findings\n", failures)
		os.Exit(1)
	}
}

// runPerf measures the hot-path suite, optionally writes the report and
// the per-path delta artifact, and ratchets against the committed
// baseline. Exit codes: 0 ok, 1 the ratchet failed, 2 operational error.
func runPerf(out, baselinePath, deltaPath string, tolPct, epsNs float64, quick, compare bool) int {
	opts := perfbench.DefaultOptions()
	if quick {
		opts = perfbench.QuickOptions()
	}
	specs, cleanup := perfbench.Suite()
	defer cleanup()
	rep := perfbench.RunSuite(specs, opts, func(line string) { fmt.Println(line) })

	if out != "" {
		if err := perfbench.WriteReport(out, rep); err != nil {
			fmt.Fprintf(os.Stderr, "parcbench: writing %s: %v\n", out, err)
			return 2
		}
		fmt.Printf("wrote %s (%d hot paths)\n", out, len(rep.Results))
	}

	if !compare {
		fmt.Println("perf ratchet: comparison disabled (-perfcompare=false)")
		return 0
	}
	if baselinePath == "" {
		var err error
		baselinePath, err = perfbench.LatestBaseline(".", out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parcbench: discovering baseline: %v\n", err)
			return 2
		}
		if baselinePath == "" {
			fmt.Println("perf ratchet: no committed BENCH_<n>.json baseline found; nothing to compare")
			return 0
		}
	}
	base, err := perfbench.LoadReport(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "parcbench: %v\n", err)
		return 2
	}
	if deltaPath != "" {
		delta := perfbench.BuildDelta(baselinePath, base, rep, tolPct, epsNs)
		if err := perfbench.WriteDelta(deltaPath, delta); err != nil {
			fmt.Fprintf(os.Stderr, "parcbench: writing %s: %v\n", deltaPath, err)
			return 2
		}
		fmt.Printf("wrote %s (%d delta rows)\n", deltaPath, len(delta.Deltas))
	}
	regs := perfbench.Compare(base, rep, tolPct, epsNs)
	fmt.Printf("baseline %s: %s\n", baselinePath, perfbench.FormatRegressions(regs))
	if len(regs) > 0 {
		return 1
	}
	return 0
}
