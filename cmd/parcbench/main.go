// Command parcbench regenerates the paper's exhibits: figures F1-F2, the
// assessment table, the allocation and Likert evaluations, and the ten
// project studies P1-P10. Each experiment prints the paper-shaped tables
// and verifies its findings (the "who wins / what shape" properties
// recorded in EXPERIMENTS.md).
//
// Usage:
//
//	parcbench -list
//	parcbench -e P2              # one experiment, full scale
//	parcbench -e all -quick      # everything, small sizes
//	parcbench -e P7 -workers 8 -seed 99
//	parcbench -e P2 -schedstats  # append per-worker scheduler counters
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"parc751/internal/experiments"
)

func main() {
	var (
		expID   = flag.String("e", "all", "experiment id (F1, F2, TASSESS, EALLOC, ELIKERT, P1..P10, A1, A6, A7, A8, A9) or 'all'")
		quick   = flag.Bool("quick", false, "use small problem sizes")
		seed    = flag.Uint64("seed", 751, "workload seed")
		workers = flag.Int("workers", 4, "worker threads for real parallel execution")
		list    = flag.Bool("list", false, "list experiments and exit")
		sstats  = flag.Bool("schedstats", false,
			"print per-worker scheduler counters (pushes/pops/steals/parks/wakes) and submit latency for experiments that drive the real runtime")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s  [%s]\n", e.ID, e.Title, e.Paper)
		}
		return
	}

	cfg := experiments.Config{Seed: *seed, Quick: *quick, Workers: *workers, SchedStats: *sstats}
	var toRun []experiments.Experiment
	if strings.EqualFold(*expID, "all") {
		toRun = experiments.All()
	} else {
		e, ok := experiments.ByID(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "parcbench: unknown experiment %q; try -list\n", *expID)
			os.Exit(2)
		}
		toRun = []experiments.Experiment{e}
	}

	failures := 0
	for _, e := range toRun {
		res := e.Run(cfg)
		fmt.Println(res.Output)
		if res.AllPassed() {
			fmt.Printf("[%s] all %d findings hold\n\n", res.ID, len(res.Findings))
		} else {
			failures++
			fmt.Printf("[%s] FAILED findings: %v\n\n", res.ID, res.FailedFindings())
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "parcbench: %d experiment(s) had failed findings\n", failures)
		os.Exit(1)
	}
}
