// Command parcvet runs the course's concurrency-misuse analyzers
// (internal/parcvet) over Go packages in this module — a multichecker for
// the Parallel Task / Pyjama APIs. It shares parcaudit's flag and
// exit-code conventions (internal/report):
//
//	exit 0 — ran, no error-severity findings
//	exit 1 — ran, at least one error-severity finding
//	exit 2 — could not run (bad flags, load failure)
//
// Usage:
//
//	parcvet ./...                 # whole module
//	parcvet ./internal/pyjama     # one package
//	parcvet -analyzers guiblock,lostfuture ./examples/...
//	parcvet -errors-only -json ./...
//	parcvet -list                 # describe the suite
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"parc751/internal/parcvet"
	"parc751/internal/parcvet/loader"
	"parc751/internal/report"
)

func main() {
	var (
		dir        = flag.String("dir", ".", "directory inside the module to analyze from")
		analyzers  = flag.String("analyzers", "", "comma-separated analyzer names (default: all)")
		errorsOnly = flag.Bool("errors-only", false, "report only error-severity findings")
		jsonOut    = flag.Bool("json", false, "emit findings as a JSON array")
		list       = flag.Bool("list", false, "list the analyzers and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range parcvet.Analyzers() {
			summary, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Printf("%-18s %-7s  %s\n", a.Name, a.Severity, summary)
		}
		return
	}

	suite, err := parcvet.ByName(*analyzers)
	if err != nil {
		fatal(err)
	}
	root, err := loader.FindModuleRoot(*dir)
	if err != nil {
		fatal(err)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := parcvet.Run(root, patterns, suite)
	if err != nil {
		fatal(err)
	}
	if *errorsOnly {
		findings = report.Errors(findings)
	}
	if err := report.Render(os.Stdout, findings, *jsonOut); err != nil {
		fatal(err)
	}
	os.Exit(report.ExitCode(findings))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "parcvet: %v\n", err)
	os.Exit(2)
}
