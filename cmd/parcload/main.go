// Command parcload drives a running parcserve instance with the seeded
// open-loop load generator and prints the status-code and latency
// summary. Same engine as the A9 ablation and the serve smoke tests, so
// a by-hand run reproduces exactly what CI measures.
//
// Usage:
//
//	parcload -url http://localhost:8751                  # default mix
//	parcload -url http://localhost:8751 -n 500 -rate 200
//	parcload -url http://localhost:8751 -kind spin -spin-ms 50 -rate 2000
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"parc751/internal/parcserve/loadtest"
)

func main() {
	var (
		url    = flag.String("url", "http://localhost:8751", "parcserve base URL")
		n      = flag.Int("n", 200, "total requests")
		rate   = flag.Float64("rate", 100, "mean offered load, requests/second")
		seed   = flag.Uint64("seed", 751, "generator seed (arrivals + mix picks)")
		kind   = flag.String("kind", "", "single-kind run (default: the standard mix)")
		sortN  = flag.Int("sort-n", 2000, "array length for sort jobs")
		spinMs = flag.Int("spin-ms", 5, "busy time for spin jobs")
		dlMs   = flag.Int("deadline-ms", 0, "per-job deadline (0 = server default)")
	)
	flag.Parse()

	mix := []loadtest.JobSpec{
		{Kind: "sort", Body: map[string]any{"n": *sortN, "deadline_ms": *dlMs}, Weight: 5},
		{Kind: "spin", Body: map[string]any{"spin_ms": *spinMs, "deadline_ms": *dlMs}, Weight: 3},
		{Kind: "thumbs", Body: map[string]any{"n": 8, "deadline_ms": *dlMs}, Weight: 1},
		{Kind: "textsearch", Body: map[string]any{"n": 30, "deadline_ms": *dlMs}, Weight: 1},
	}
	if *kind != "" {
		mix = []loadtest.JobSpec{{Kind: *kind, Body: map[string]any{
			"n": *sortN, "spin_ms": *spinMs, "deadline_ms": *dlMs,
		}, Weight: 1}}
	}

	fmt.Printf("parcload: %d requests at %.0f req/s against %s (seed %d)\n",
		*n, *rate, *url, *seed)
	res := loadtest.Run(loadtest.Config{
		BaseURL:  *url,
		Client:   &http.Client{Timeout: 2 * time.Minute},
		Seed:     *seed,
		Requests: *n,
		Rate:     *rate,
		Mix:      mix,
	})
	fmt.Printf("parcload: %s in %v (ok-rate %.1f%%)\n",
		res.Summary(), res.Elapsed.Round(time.Millisecond), 100*res.OKRate())
	if res.Dropped > 0 {
		fmt.Fprintf(os.Stderr, "parcload: %d requests got no response at all\n", res.Dropped)
		os.Exit(1)
	}
}
