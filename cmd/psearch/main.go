// Command psearch is the project 4 application as a CLI: parallel search
// for a string (or regular expression) across the text files of a folder,
// streaming (file, line) pairs as they are found. It can search a real
// directory tree or a synthetic corpus.
//
// Usage:
//
//	psearch -dir /path/to/folder -q needle
//	psearch -dir . -q 'func [A-Z]\w+' -regex -workers 8
//	psearch -synthetic -q concurrencyNEEDLE
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"parc751/internal/ptask"
	"parc751/internal/textsearch"
	"parc751/internal/workload"
)

func main() {
	var (
		dir       = flag.String("dir", "", "directory to search (walks text-like files)")
		query     = flag.String("q", "", "query string or pattern")
		regex     = flag.Bool("regex", false, "treat the query as a regular expression")
		workers   = flag.Int("workers", 4, "worker threads")
		limit     = flag.Int("limit", 0, "stop after this many matches (0 = all)")
		synthetic = flag.Bool("synthetic", false, "search a generated corpus instead of -dir")
		seed      = flag.Uint64("seed", 751, "synthetic corpus seed")
	)
	flag.Parse()
	if *query == "" {
		fmt.Fprintln(os.Stderr, "psearch: -q is required")
		os.Exit(2)
	}

	var folder *workload.Folder
	switch {
	case *synthetic:
		spec := workload.DefaultFolderSpec(*seed)
		folder, _ = workload.GenFolder(spec)
	case *dir != "":
		var err error
		folder, err = loadDir(*dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "psearch: %v\n", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "psearch: provide -dir or -synthetic")
		os.Exit(2)
	}

	var matcher textsearch.Matcher = textsearch.Literal(*query)
	if *regex {
		m, err := textsearch.CompileRegexp(*query)
		if err != nil {
			fmt.Fprintf(os.Stderr, "psearch: bad pattern: %v\n", err)
			os.Exit(2)
		}
		matcher = m
	}

	rt := ptask.NewRuntime(*workers)
	defer rt.Shutdown()
	var streamed atomic.Int64
	start := time.Now()
	matches := textsearch.NewSearcher(rt).Search(folder, matcher, textsearch.Options{
		Limit: int64(*limit),
		OnMatch: func(m textsearch.Match) {
			streamed.Add(1)
			fmt.Printf("%s:%d: %s\n", m.Path, m.Line, m.Text)
		},
	})
	elapsed := time.Since(start)
	fmt.Printf("\n%d matches in %d files (%d lines) in %v with %d workers\n",
		len(matches), len(folder.Files), folder.TotalLines(), elapsed, *workers)
}

// loadDir walks root and loads plausibly-textual files into a Folder.
func loadDir(root string) (*workload.Folder, error) {
	folder := &workload.Folder{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		info, err := d.Info()
		if err != nil || info.Size() > 4<<20 {
			return nil // skip unreadable or huge files
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil
		}
		if !looksTextual(data) {
			return nil
		}
		folder.Files = append(folder.Files, workload.TextFile{
			Path:  path,
			Lines: strings.Split(string(data), "\n"),
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(folder.Files) == 0 {
		return nil, fmt.Errorf("no text files under %s", root)
	}
	return folder, nil
}

func looksTextual(data []byte) bool {
	n := len(data)
	if n > 1024 {
		n = 1024
	}
	for _, b := range data[:n] {
		if b == 0 {
			return false
		}
	}
	return true
}
