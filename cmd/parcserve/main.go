// Command parcserve runs the job-serving front end over the parallel
// runtime: an HTTP service executing the course workloads (sort,
// text/PDF search, thumbnails, matmul, webfetch) with admission control,
// small-job batching, per-job deadlines, and graceful drain on SIGINT.
//
// Usage:
//
//	parcserve                         # listen on :8751 with defaults
//	parcserve -addr :9000 -workers 8
//	parcserve -max-concurrent 16 -max-queue 64 -batch-max 32
//
// Endpoints:
//
//	POST /jobs/{kind}   submit a job (kinds: sort, textsearch, pdfsearch,
//	                    thumbs, matmul, webfetch, spin)
//	GET  /statz         runtime observability snapshot (JSON, incl. node_id)
//	GET  /healthz       liveness (always 200 while the process serves)
//	GET  /readyz        readiness (503 from the moment drain begins)
//
// On SIGINT/SIGTERM the server drains: intake answers 503, in-flight
// jobs finish, batch tails flush, then the worker pool stops. A second
// signal exits immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"parc751/internal/parcserve"
)

func main() {
	var (
		addr    = flag.String("addr", ":8751", "listen address")
		workers = flag.Int("workers", 0, "ptask pool size (0 = GOMAXPROCS)")
		threads = flag.Int("pyjama-threads", 0, "Pyjama team size for kernel jobs (0 = workers)")
		maxConc = flag.Int("max-concurrent", 0, "jobs executing at once (0 = 2x workers)")
		maxQ    = flag.Int("max-queue", 0, "jobs waiting for a slot before 429 (0 = 4x max-concurrent)")
		defDl   = flag.Duration("deadline", 10*time.Second, "default per-job deadline")
		maxDl   = flag.Duration("max-deadline", time.Minute, "cap on requested deadlines")
		batchN  = flag.Int("batch-max", 16, "small-job batch size bound")
		batchD  = flag.Duration("batch-delay", 2*time.Millisecond, "small-job batch delay bound")
		drainD  = flag.Duration("drain", 30*time.Second, "graceful-drain budget on shutdown")
		nodeID  = flag.String("node-id", "", "node identity reported by /statz, /healthz, /readyz (default \"solo\")")
		graceD  = flag.Duration("drain-grace", 500*time.Millisecond, "how long /readyz flips 503 before intake closes on drain")
	)
	flag.Parse()

	srv := parcserve.NewServer(parcserve.Config{
		Workers:         *workers,
		PyjamaThreads:   *threads,
		MaxConcurrent:   *maxConc,
		MaxQueue:        *maxQ,
		DefaultDeadline: *defDl,
		MaxDeadline:     *maxDl,
		BatchMax:        *batchN,
		BatchDelay:      *batchD,
		NodeID:          *nodeID,
		DrainGrace:      *graceD,
	})

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Printf("parcserve: listening on %s (kinds: %v)\n", *addr, parcserve.Kinds())

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "parcserve: %v\n", err)
		os.Exit(1)
	case sig := <-sigCh:
		fmt.Printf("parcserve: %v — draining (budget %v, signal again to force exit)\n", sig, *drainD)
	}

	go func() {
		<-sigCh
		fmt.Fprintln(os.Stderr, "parcserve: forced exit")
		os.Exit(1)
	}()

	// Drain order: stop accepting at the job layer first (503s carry
	// Connection: close), let in-flight jobs finish, then close the
	// listener.
	if err := srv.Drain(*drainD); err != nil {
		fmt.Fprintf(os.Stderr, "parcserve: drain: %v\n", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "parcserve: http shutdown: %v\n", err)
	}
	fmt.Println("parcserve: drained")
}
