// Command course751 simulates the SoftEng 751 course machinery end to
// end: it prints the semester calendar (Figure 2), the nexus placement of
// the course activities (Figure 1), the assessment scheme, runs the
// first-in-first-served doodle-poll allocation for a cohort, and produces
// the summative Likert evaluation.
//
// Usage:
//
//	course751 -students 60 -seed 2013
package main

import (
	"flag"
	"fmt"

	"parc751/internal/course"
	"parc751/internal/metrics"
)

func main() {
	var (
		students = flag.Int("students", 60, "cohort size (the paper's class was 'almost 60')")
		size     = flag.Int("groupsize", 3, "students per group")
		seed     = flag.Uint64("seed", 2013, "cohort seed")
	)
	flag.Parse()

	// Figure 2: the calendar.
	cal := metrics.NewTable("SoftEng 751 semester (Figure 2)", "week", "code", "detail")
	for _, w := range course.Calendar() {
		wk := "break"
		if w.Number > 0 {
			wk = fmt.Sprintf("%d", w.Number)
		}
		cal.AddRow(wk, w.Kind.Code(), w.Detail)
	}
	fmt.Println(cal)

	// Figure 1: the nexus placement.
	nexus := metrics.NewTable("Research-teaching nexus (Figure 1)", "activity", "quadrant", "in course")
	for _, r := range course.NexusTable(course.SoftEng751Activities()) {
		present := "yes"
		if !r.Present {
			present = "no"
		}
		nexus.AddRow(r.Activity, r.Quadrant.String(), present)
	}
	fmt.Println(nexus)

	// Assessment.
	assess := metrics.NewTable("Assessment (§III-C)", "component", "weight %", "individual")
	for _, c := range course.AssessmentScheme() {
		assess.AddRow(c.Name, c.Weight, c.Individual)
	}
	fmt.Println(assess)

	// Topic selection from the wish-list (§III-D).
	top := course.SelectTopics(course.Wishlist2013(), 10)
	topicsTab := metrics.NewTable("Top-ten topics from the wish-list (§III-D, §IV-C)",
		"topic", "proposer", "suitability", "android")
	for _, tp := range top {
		topicsTab.AddRow(tp.Title, tp.Proposer, tp.Suitability(), tp.AndroidOption)
	}
	fmt.Println(topicsTab)

	// Allocation.
	poll := course.DefaultPoll()
	groups := course.FormGroups(*seed, *students, *size, poll)
	alloc := course.Allocate(poll, groups)
	fmt.Printf("doodle poll: %d groups over %d topics x %d slots -> %s\n",
		len(groups), poll.Topics, poll.GroupsPerTopic, alloc.String())
	fmt.Printf("mean preference rank received: %.2f (1 = first choice)\n\n",
		course.Satisfaction(poll, groups, alloc))
	topics := metrics.NewTable("Topic assignments", "topic", "groups (arrival order)")
	for tpc := 0; tpc < poll.Topics; tpc++ {
		topics.AddRow(tpc, fmt.Sprintf("%v", alloc.GroupsOn[tpc]))
	}
	fmt.Println(topics)

	// Seminar self-scheduling (weeks 7-10, two presentations per lecture).
	slots := course.SeminarCalendar(3)
	reqs := make([]course.SlotRequest, len(groups))
	for i, g := range groups {
		reqs[i] = course.SlotRequest{GroupID: g.ID, Arrival: g.Arrival,
			Prefs: course.AllSlotsPrefs(len(slots))}
	}
	sched := course.ScheduleSeminars(slots, reqs)
	fmt.Printf("seminar poll: %d groups over %d slots, %d unassigned\n",
		len(groups), len(slots), len(sched.Unassigned))
	sem := metrics.NewTable("Seminar schedule (first 10 slots)", "slot", "group")
	order := sched.PresentationOrder()
	for i, g := range order {
		if i >= 10 {
			break
		}
		sem.AddRow(sched.Slots[sched.SlotOf[g]].String(), g)
	}
	fmt.Println(sem)

	// Likert evaluation.
	survey := metrics.NewTable("Summative evaluation (§V-A)", "question", "paper", "cohort")
	exact := course.ExactSurvey(*students, course.PaperTargets())
	for i, tgt := range course.PaperTargets() {
		survey.AddRow(tgt.Text, fmt.Sprintf("%.0f%%", tgt.Agreement*100),
			fmt.Sprintf("%.1f%%", exact[i].Agreement()*100))
	}
	fmt.Println(survey)
	fmt.Println("open comments (§V-A):")
	for _, c := range course.OpenComments() {
		fmt.Printf("  - %q\n", c)
	}
}
