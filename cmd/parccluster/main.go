// Command parccluster runs a supervised multi-node parcserve fleet
// behind a sharding router: N worker processes (this same binary
// re-exec'd in -worker mode) on localhost ports, consistent-hash
// sharding of job kinds, least-loaded spill on saturation, failover
// retry of idempotent jobs on node death, and juju-runner-style
// supervision (restart with backoff, crash-loop circuit).
//
// Usage:
//
//	parccluster -nodes 4                       # router on :8750, 4 workers
//	parccluster -nodes 2 -addr :9000 -node-max-concurrent 8
//	parccluster -nodes 2 -eventlog cluster-events.jsonl
//
// then drive it exactly like a single parcserve:
//
//	parcload -url http://localhost:8750 -n 500 -rate 200
//
// Router endpoints:
//
//	POST /jobs/{kind}          same surface as parcserve — submit a job
//	GET  /statz                cluster snapshot: nodes, shard map, ledger
//	GET  /healthz              router liveness
//	GET  /eventz               cluster event log (JSON lines)
//	POST /chaos/kill/{node}    abruptly kill a worker (it restarts with
//	                           backoff — the scripted chaos surface)
//
// On SIGINT/SIGTERM the fleet stops: workers drain politely, the event
// log is written (with -eventlog), and the exit code reports the ledger:
// non-zero if any accepted job was neither completed nor explicitly
// rejected — the no-lost-jobs contract, enforced at exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"parc751/internal/parccluster"
	"parc751/internal/parcserve"
)

func main() {
	var (
		nodes  = flag.Int("nodes", 2, "worker node count")
		addr   = flag.String("addr", ":8750", "router listen address")
		evLog  = flag.String("eventlog", "", "write the cluster event log (JSON lines) here on exit")
		retry  = flag.Int("retry-max", 3, "failover/spill attempts per request beyond the first node")
		resDel = flag.Duration("restart-delay", 200*time.Millisecond, "supervisor base restart backoff")
		crashK = flag.Int("crash-loop-k", 5, "exits within the crash-loop window before a node is retired")

		// Per-node sizing (both modes read these; the parent forwards them).
		nWorkers = flag.Int("node-workers", 0, "ptask pool size per node (0 = GOMAXPROCS)")
		nConc    = flag.Int("node-max-concurrent", 0, "jobs executing at once per node (0 = 2x workers)")
		nQueue   = flag.Int("node-max-queue", 0, "admission queue bound per node (0 = 4x max-concurrent)")

		// Worker mode (internal): run a single parcserve node.
		worker     = flag.Bool("worker", false, "internal: run as a worker node")
		workerAddr = flag.String("worker-addr", "", "internal: worker listen address")
		nodeID     = flag.String("node-id", "", "internal: worker identity")
	)
	flag.Parse()

	nodeCfg := parcserve.Config{
		Workers:       *nWorkers,
		MaxConcurrent: *nConc,
		MaxQueue:      *nQueue,
		DrainGrace:    200 * time.Millisecond,
	}

	if *worker {
		os.Exit(runWorker(*workerAddr, *nodeID, nodeCfg))
	}

	bin, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "parccluster: %v\n", err)
		os.Exit(1)
	}
	fleet := parccluster.NewFleet(parccluster.FleetConfig{
		Nodes: *nodes,
		Starter: &parccluster.ProcStarter{
			Bin:    bin,
			Stderr: os.Stderr,
			Args: func(id, waddr string) []string {
				return []string{"-worker", "-worker-addr", waddr, "-node-id", id,
					"-node-workers", itoa(*nWorkers),
					"-node-max-concurrent", itoa(*nConc),
					"-node-max-queue", itoa(*nQueue)}
			},
		},
		Router: parccluster.RouterConfig{
			RetryMax:      *retry,
			LoadPollEvery: 250 * time.Millisecond,
		},
		RestartDelay: *resDel,
		CrashLoopK:   *crashK,
	})
	if err := fleet.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "parccluster: %v\n", err)
		_ = fleet.Stop()
		os.Exit(1)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: fleet.Router()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Printf("parccluster: router on %s fronting %d nodes\n", *addr, *nodes)
	for _, n := range fleet.Router().Nodes() {
		fmt.Printf("parccluster:   %s at %s\n", n.ID, n.URL)
	}

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "parccluster: %v\n", err)
		_ = fleet.Stop()
		os.Exit(1)
	case sig := <-sigCh:
		fmt.Printf("parccluster: %v — stopping fleet\n", sig)
	}
	go func() {
		<-sigCh
		fmt.Fprintln(os.Stderr, "parccluster: forced exit")
		os.Exit(1)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "parccluster: http shutdown: %v\n", err)
	}
	if err := fleet.Stop(); err != nil {
		fmt.Fprintf(os.Stderr, "parccluster: fleet stop: %v\n", err)
	}

	if *evLog != "" {
		f, err := os.Create(*evLog)
		if err == nil {
			_ = fleet.Events().WriteJSONL(f)
			_ = f.Close()
		} else {
			fmt.Fprintf(os.Stderr, "parccluster: eventlog: %v\n", err)
		}
	}

	led := fleet.Router().Ledger()
	fmt.Printf("parccluster: ledger accepted=%d completed=%d rejected=%d lost=%d spills=%d failovers=%d\n",
		led.Accepted, led.Completed, led.Rejected, led.Lost, led.Spills, led.Failovers)
	if led.Lost != 0 {
		fmt.Fprintf(os.Stderr, "parccluster: LEDGER IMBALANCE — %d accepted jobs neither completed nor rejected\n", led.Lost)
		os.Exit(1)
	}
	fmt.Println("parccluster: clean exit, no lost jobs")
}

// runWorker is the child-process mode: one parcserve node that drains
// on SIGTERM and exits 0 — the supervisor reads any other exit as a
// crash.
func runWorker(addr, id string, cfg parcserve.Config) int {
	if addr == "" || id == "" {
		fmt.Fprintln(os.Stderr, "parccluster -worker: -worker-addr and -node-id are required")
		return 2
	}
	cfg.NodeID = id
	srv := parcserve.NewServer(cfg)
	httpSrv := &http.Server{Addr: addr, Handler: srv}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "parccluster worker %s: %v\n", id, err)
		return 1
	case <-sigCh:
	}
	if err := srv.Drain(30 * time.Second); err != nil {
		fmt.Fprintf(os.Stderr, "parccluster worker %s: drain: %v\n", id, err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = httpSrv.Shutdown(ctx)
	return 0
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }
