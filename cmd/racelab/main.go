// Command racelab serves the interactive parallel-programming-pitfall
// webpages (§V-B of the paper: "interactive webpages that helped explain
// typical race conditions and other parallel programming pitfalls").
//
// Usage:
//
//	racelab -addr :8751
//
// then open http://localhost:8751/ in a browser.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"parc751/internal/racelab"
)

func main() {
	addr := flag.String("addr", ":8751", "listen address")
	flag.Parse()
	fmt.Printf("racelab: serving pitfall demos %v on %s\n", racelab.DemoNames(), *addr)
	log.Fatal(http.ListenAndServe(*addr, racelab.Handler()))
}
