// Command parctrace records, inspects, renders, and replays task-DAG
// traces (schema parc751/trace/v1) — the CLI front end of the
// internal/parctrace recorder and the schedule-replay debugger of
// DESIGN.md §15.
//
// Usage:
//
//	parctrace record -workload quicksort -seed 751 -chaos -o trace.json
//	parctrace dump trace.json             # summary + ASCII timeline
//	parctrace render trace.json -o t.html # self-contained HTML/SVG viewer
//	parctrace replay trace.json           # re-execute and verify
//	parctrace -replay trace.json          # same, flag spelling
//
// record executes one of the replayable workloads (quicksort, thumbs,
// webfetch) under a fresh recorder — with -chaos, under the seeded fault
// plan the A8 gauntlet uses — and writes the dump. replay re-executes a
// dump's recorded coordinate (workload spec + fault plan) and verifies
// the canonical projections are bit-identical: exit 0 means the schedule
// reproduced, exit 1 with a diff means it did not.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"parc751/internal/parctrace"
	"parc751/internal/parctrace/replay"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// Flag spelling: `parctrace -replay trace.json` is the documented
	// debugger entry point; rewrite it to the subcommand form.
	if len(args) >= 1 && args[0] == "-replay" {
		args = append([]string{"replay"}, args[1:]...)
	}
	if len(args) < 1 {
		usage()
		return 2
	}
	cmd, rest := args[0], args[1:]
	var err error
	switch cmd {
	case "record":
		err = cmdRecord(rest)
	case "dump":
		err = cmdDump(rest)
	case "render":
		err = cmdRender(rest)
	case "replay":
		err = cmdReplay(rest)
	default:
		usage()
		return 2
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "parctrace:", err)
		return 1
	}
	return 0
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  parctrace record -workload <%s> [-seed N] [-n N] [-workers N] [-chaos] [-cap N] [-o file]
  parctrace dump <trace.json>
  parctrace render <trace.json> [-o out.html]
  parctrace replay <trace.json>   (also: parctrace -replay <trace.json>)
`, strings.Join(replay.Kinds(), "|"))
}

func cmdRecord(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	var (
		wl      = fs.String("workload", replay.KindQuicksort, "workload kind: "+strings.Join(replay.Kinds(), ", "))
		seed    = fs.Uint64("seed", 751, "workload seed")
		n       = fs.Int("n", 0, "workload size (0 = kind default)")
		workers = fs.Int("workers", 2, "worker threads")
		chaos   = fs.Bool("chaos", false, "run under the seeded fault plan")
		laneCap = fs.Int("cap", 0, "per-worker ring capacity (0 = default)")
		out     = fs.String("o", "trace.json", "output file (- for stdout)")
	)
	fs.Parse(args)
	d, err := replay.Record(parctrace.WorkloadSpec{
		Kind: *wl, Seed: *seed, N: *n, Workers: *workers, Chaos: *chaos,
	}, *laneCap)
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := parctrace.WriteDump(w, d); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "recorded %s: %d events in window, counts %v, %d fault(s)\n",
		d.Name, d.Recorded, d.Counts, len(d.Faults))
	return nil
}

func load(path string) (*parctrace.Dump, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return parctrace.ReadDump(data)
}

// parseWithFile parses fs over args accepting the single trace-file
// operand before or after the flags (`render t.json -o x.html` and
// `render -o x.html t.json` both work — Go's flag package alone stops
// at the first positional).
func parseWithFile(fs *flag.FlagSet, args []string) (string, error) {
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		file := args[0]
		fs.Parse(args[1:])
		if fs.NArg() != 0 {
			return "", fmt.Errorf("%s: want exactly one trace file", fs.Name())
		}
		return file, nil
	}
	fs.Parse(args)
	if fs.NArg() != 1 {
		return "", fmt.Errorf("%s: want exactly one trace file", fs.Name())
	}
	return fs.Arg(0), nil
}

func cmdDump(args []string) error {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	width := fs.Int("width", 100, "ASCII timeline width")
	file, err := parseWithFile(fs, args)
	if err != nil {
		return err
	}
	d, err := load(file)
	if err != nil {
		return err
	}
	fmt.Printf("trace   %s (schema %s)\n", d.Name, d.Schema)
	fmt.Printf("workers %d  seed %d\n", d.Workers, d.Seed)
	if d.Workload != nil {
		fmt.Printf("workload %s n=%d workers=%d chaos=%v\n",
			d.Workload.Kind, d.Workload.N, d.Workload.Workers, d.Workload.Chaos)
	}
	fmt.Printf("events  %d recorded, %d lost, %d sampled out\n", d.Recorded, d.Lost, d.SampledOut)
	fmt.Printf("counts  %v\n", d.Counts)
	if len(d.Faults) > 0 {
		fmt.Printf("faults  %s\n", strings.Join(d.Faults, " "))
	}
	fmt.Println()
	fmt.Print(parctrace.RenderASCII(d, *width))
	return nil
}

func cmdRender(args []string) error {
	fs := flag.NewFlagSet("render", flag.ExitOnError)
	out := fs.String("o", "trace.html", "output HTML file (- for stdout)")
	file, err := parseWithFile(fs, args)
	if err != nil {
		return err
	}
	d, err := load(file)
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return parctrace.RenderHTML(w, d)
}

func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	laneCap := fs.Int("cap", 0, "per-worker ring capacity (0 = default)")
	file, err := parseWithFile(fs, args)
	if err != nil {
		return err
	}
	recorded, err := load(file)
	if err != nil {
		return err
	}
	replayed, err := replay.Replay(recorded, *laneCap)
	if err != nil {
		return err
	}
	if err := replay.Verify(recorded, replayed); err != nil {
		return err
	}
	fmt.Printf("replay of %s reproduced the recorded schedule: canonical traces bit-identical, %d fault ordinal(s) matched\n",
		recorded.Name, len(recorded.Faults))
	return nil
}
