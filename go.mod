module parc751

go 1.24
