// Package parc751 reproduces "EA: Research-infused teaching of parallel
// programming concepts for undergraduate Software Engineering students"
// (Giacaman & Sinnen, IPDPSW 2014) as a Go library suite: the Parallel
// Task task-parallelism model (internal/ptask), the Pyjama OpenMP-like
// directive model (internal/pyjama), the ten SoftEng 751 student projects
// built on them, the PARC-machine simulator that reproduces the paper's
// hardware, and the course machinery behind its figures and evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-versus-measured record. The benchmark
// harness in bench_test.go regenerates every exhibit:
//
//	go test -bench=. -benchmem .
package parc751
