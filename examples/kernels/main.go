// Kernels example (project 3): the four computational kernels with their
// Pyjama parallelisations, each verified against the sequential reference.
// Run with:
//
//	go run ./examples/kernels
package main

import (
	"fmt"
	"math"
	"time"

	"parc751/internal/kernels"
	"parc751/internal/workload"
)

func timed(name string, f func()) {
	start := time.Now()
	f()
	fmt.Printf("  %-24s %v\n", name, time.Since(start).Round(time.Microsecond))
}

func main() {
	const threads = 4

	fmt.Println("FFT (radix-2, 2^14 points):")
	sig := make([]complex128, 1<<14)
	for i := range sig {
		sig[i] = complex(math.Sin(0.01*float64(i)), 0)
	}
	a := append([]complex128(nil), sig...)
	b := append([]complex128(nil), sig...)
	timed("sequential", func() { kernels.FFTSequential(a) })
	timed("pyjama", func() { kernels.FFTParallel(threads, b) })
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	fmt.Println("  outputs identical:", same)

	// Box side 22 keeps the density low enough that the softening floor
	// rarely engages, so velocity Verlet conserves energy visibly.
	fmt.Println("Molecular dynamics (256 Lennard-Jones particles, 10 steps):")
	sys := kernels.NewMDSystem(1, 256, 22)
	sys.ComputeForcesSequential()
	e0 := sys.TotalEnergy()
	timed("velocity verlet x10", func() {
		for s := 0; s < 10; s++ {
			sys.Step(func() { sys.ComputeForcesParallel(threads) })
		}
	})
	fmt.Printf("  energy drift: %.3g%%\n", 100*math.Abs(sys.TotalEnergy()-e0)/math.Abs(e0))

	fmt.Println("Graph processing (5000 vertices):")
	g := workload.GenGraph(2, 5000, 8)
	var lv []int
	timed("parallel BFS", func() { lv = kernels.BFSParallel(threads, g, 0) })
	maxLv := 0
	for _, l := range lv {
		if l > maxLv {
			maxLv = l
		}
	}
	fmt.Println("  BFS eccentricity from vertex 0:", maxLv)
	var pr []float64
	timed("parallel PageRank x20", func() { pr = kernels.PageRankParallel(threads, g, 0.85, 20) })
	sum := 0.0
	for _, r := range pr {
		sum += r
	}
	fmt.Printf("  rank mass: %.6f (want 1.0)\n", sum)

	fmt.Println("Linear algebra:")
	ma := kernels.RandomMatrix(3, 256, 256)
	mb := kernels.RandomMatrix(4, 256, 256)
	var mc *kernels.Matrix
	timed("matmul 256x256 parallel", func() { mc = kernels.MatMulParallel(threads, ma, mb) })
	_ = mc
	sysJ := kernels.NewJacobiSystem(5, 128)
	var x []float64
	timed("jacobi 128x128 x100", func() { x = sysJ.JacobiParallel(threads, 100) })
	fmt.Printf("  jacobi residual: %.2e\n", sysJ.Residual(x))
}
