// Quickstart: the two programming models in one page.
//
// Parallel Task expresses asynchronous work as tasks with dependences and
// GUI-thread completion handlers; Pyjama expresses it as OpenMP-style
// parallel regions with workshared loops and reductions. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"parc751/internal/eventloop"
	"parc751/internal/ptask"
	"parc751/internal/pyjama"
	"parc751/internal/reduction"
)

func main() {
	// ---- Parallel Task ----
	rt := ptask.NewRuntime(4)
	defer rt.Shutdown()
	loop := eventloop.New()
	defer loop.Close()
	rt.SetEventLoop(loop) // completion handlers hop onto the "GUI thread"

	// A task is a future.
	double := ptask.Run(rt, func() (int, error) { return 21 * 2, nil })

	// Tasks can depend on other tasks (the task DAG).
	squared := ptask.RunAfter(rt, []ptask.Dep{double}, func() (int, error) {
		v, err := double.Result()
		return v * v, err
	})

	// A multi-task (TASK(*)) fans out one sub-task per element and can
	// deliver interim results as they complete.
	multi := ptask.RunMulti(rt, 8, func(i int) (int, error) { return i * i, nil })
	multi.NotifyEach(func(i, v int, err error) {
		// Runs on the event loop: safe place to update UI state.
		_ = v
	})

	v1, _ := double.Result()
	v2, _ := squared.Result()
	squares, _ := multi.Results()
	fmt.Println("parallel task:", v1, v2, squares)

	// ---- Pyjama ----
	// #omp parallel num_threads(4) { #omp for reduction(+:sum) }
	sum := pyjama.ParallelForReduce(4, 1000, pyjama.Dynamic(64),
		reduction.Sum[int](), func(i, acc int) int { return acc + i })

	// Worksharing with explicit team control.
	hist := make([]int, 4)
	pyjama.Parallel(4, func(tc *pyjama.TC) {
		tc.For(100, pyjama.Static(0), func(i int) {
			// Each index executed exactly once across the team.
			_ = i
		})
		tc.Critical("hist", func() { hist[tc.ThreadNum()]++ })
		tc.Barrier()
		tc.Master(func() { fmt.Println("pyjama: sum(0..999) =", sum, "team =", tc.NumThreads()) })
	})
	fmt.Println("per-thread critical entries:", hist)
}
