// Schedule-visualisation example: run the simulated PARC machine over an
// imbalanced task set and render the Gantt chart of the resulting
// work-stealing schedule — the teaching visual behind the speedup tables
// in EXPERIMENTS.md. Run with:
//
//	go run ./examples/schedule
package main

import (
	"fmt"

	"parc751/internal/machine"
)

func main() {
	// A skewed workload: most tasks small, a few large, all seeded on
	// processor 0 so the schedule is pure stealing.
	var costs []uint64
	for i := 0; i < 48; i++ {
		c := uint64(400)
		if i%12 == 0 {
			c = 4000
		}
		costs = append(costs, c)
	}

	for _, cfg := range []machine.Config{
		machine.AndroidQuad(),
		machine.PARC8(),
	} {
		m := machine.New(cfg)
		m.EnableTrace()
		for _, c := range costs {
			m.Submit(0, c, nil)
		}
		st := m.Run()
		seq := machine.SequentialTime(costs)
		fmt.Printf("=== %s: %d procs ===\n", cfg.Name, cfg.Procs)
		fmt.Printf("sequential %d ns, makespan %d ns, speedup %.2f, util %.0f%%, steals %d\n",
			seq, st.Makespan, float64(seq)/float64(st.Makespan)/cfg.SpeedFactor,
			st.AvgUtil*100, st.Steals)
		fmt.Print(m.Trace().Gantt(64))
		fmt.Println()
	}
}
