// Android example (project 1, second group): the thumbnail application
// expressed with Android's concurrency primitives — AsyncTask with
// progress on the main looper, plus the SERIAL_EXECUTOR pitfall that
// silently serialises "parallel" AsyncTasks. Run with:
//
//	go run ./examples/android
package main

import (
	"fmt"
	"sync/atomic"
	"time"

	"parc751/internal/android"
	"parc751/internal/thumbs"
	"parc751/internal/workload"
)

func main() {
	main_ := android.NewLooper()
	defer main_.Quit()
	imgs := workload.GenImageSet(3, 24, 64, 160)

	fmt.Println("AsyncTask: doInBackground -> onProgressUpdate -> onPostExecute")
	var shown atomic.Int32
	task := android.NewAsyncTask[[]*workload.Image, int, []*workload.Image](main_)
	task.OnPreExecute = func() { fmt.Println("  [main] onPreExecute: showing spinner") }
	task.OnProgressUpdate = func(i int) { shown.Add(1) }
	task.OnPostExecute = func(out []*workload.Image) {
		fmt.Printf("  [main] onPostExecute: %d thumbnails ready\n", len(out))
	}
	task.DoInBackground = func(tk *android.AsyncTask[[]*workload.Image, int, []*workload.Image], in []*workload.Image) []*workload.Image {
		out := make([]*workload.Image, len(in))
		for i, im := range in {
			if tk.IsCancelled() {
				return out[:i]
			}
			out[i] = thumbs.Scale(im, 48, 48)
			tk.PublishProgress(i)
		}
		return out
	}
	start := time.Now()
	task.Execute(imgs)
	if _, err := task.Get(); err != nil {
		panic(err)
	}
	android.NewHandler(main_).PostAndWait(func() {})
	fmt.Printf("  %d progress updates on the main looper in %v\n\n",
		shown.Load(), time.Since(start).Round(time.Millisecond))

	fmt.Println("the SERIAL_EXECUTOR pitfall: 8 'parallel' jobs, one at a time")
	exec := android.NewSerialExecutor()
	var concurrent, peak atomic.Int32
	for i := 0; i < 8; i++ {
		exec.Submit(func() {
			c := concurrent.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			concurrent.Add(-1)
		})
	}
	exec.Wait()
	fmt.Printf("  peak concurrency observed: %d (post-Honeycomb AsyncTask default)\n", peak.Load())
}
