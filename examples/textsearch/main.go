// Text search example (project 4): search a synthetic folder tree for a
// planted needle, streaming (file, line) pairs while the search runs. Run
// with:
//
//	go run ./examples/textsearch
package main

import (
	"fmt"
	"sync/atomic"
	"time"

	"parc751/internal/eventloop"
	"parc751/internal/ptask"
	"parc751/internal/textsearch"
	"parc751/internal/workload"
)

func main() {
	spec := workload.DefaultFolderSpec(99)
	spec.NumFiles = 300
	folder, planted := workload.GenFolder(spec)
	fmt.Printf("corpus: %d files, %d lines, %d planted needles\n",
		len(folder.Files), folder.TotalLines(), planted)

	rt := ptask.NewRuntime(4)
	defer rt.Shutdown()
	loop := eventloop.New()
	defer loop.Close()
	rt.SetEventLoop(loop)

	var shown atomic.Int32
	start := time.Now()
	matches := textsearch.NewSearcher(rt).Search(folder,
		textsearch.Literal(spec.NeedleWord),
		textsearch.Options{OnMatch: func(m textsearch.Match) {
			// Streamed on the event loop while the search continues.
			n := shown.Add(1)
			if n <= 5 {
				fmt.Printf("  [live] %s:%d\n", m.Path, m.Line)
			}
		}})
	fmt.Printf("found %d matches in %v (first 5 shown live)\n",
		len(matches), time.Since(start).Round(time.Microsecond))

	// Regular-expression mode.
	re, err := textsearch.CompileRegexp(`concurrency[A-Z]+`)
	if err != nil {
		panic(err)
	}
	reMatches := textsearch.NewSearcher(rt).Search(folder, re, textsearch.Options{})
	fmt.Printf("regexp mode found %d matches\n", len(reMatches))
}
