// Memory-model lab example (project 8): run the racy snippets through the
// exhaustive interleaving explorer and the live forced-race harness,
// alongside their fixed counterparts. Run with:
//
//	go run ./examples/memorymodel
package main

import (
	"fmt"

	"parc751/internal/memmodel"
)

func main() {
	fmt.Println("exhaustive interleaving exploration:")

	lost := memmodel.Explore(
		func() *memmodel.CounterState { return &memmodel.CounterState{} },
		memmodel.LostUpdateOps(0), memmodel.LostUpdateOps(1),
		func(s *memmodel.CounterState) bool { return s.N == 2 })
	fmt.Printf("  racy counter++ by 2 threads: %d/%d interleavings lose an update\n",
		lost.Violations, lost.Interleavings)

	fixed := memmodel.Explore(
		func() *memmodel.CounterState { return &memmodel.CounterState{} },
		memmodel.AtomicIncrementOps(0), memmodel.AtomicIncrementOps(1),
		func(s *memmodel.CounterState) bool { return s.N == 2 })
	fmt.Printf("  atomic increment:            %d/%d interleavings fail\n",
		fixed.Violations, fixed.Interleavings)

	pub := memmodel.Explore(
		func() *memmodel.PublishState { return &memmodel.PublishState{Observed: -1} },
		memmodel.UnsafePublishWriterOps(), memmodel.PublishReaderOps(),
		memmodel.PublishOK)
	fmt.Printf("  reordered publication:       %d/%d interleavings show torn reads\n",
		pub.Violations, pub.Interleavings)

	cta := memmodel.Explore(
		func() *memmodel.CacheState { return &memmodel.CacheState{} },
		memmodel.CheckThenActOps(0), memmodel.CheckThenActOps(1),
		func(s *memmodel.CacheState) bool { return s.Computes == 1 })
	fmt.Printf("  check-then-act lazy init:    %d/%d interleavings double-compute\n\n",
		cta.Violations, cta.Interleavings)

	fmt.Println("live forced races (real goroutines, yield windows):")
	forced := memmodel.ForcedLostUpdate(50, 4, 100)
	fmt.Printf("  racy counter:  %d/%d trials lost updates (%.0f%%)\n",
		forced.Anomalies, forced.Trials, forced.Rate()*100)
	safe := memmodel.FixedLostUpdate(50, 4, 100)
	fmt.Printf("  atomic add:    %d/%d trials lost updates\n", safe.Anomalies, safe.Trials)
	dbl := memmodel.ForcedDoubleCompute(200)
	fmt.Printf("  lazy init:     %d/%d trials computed twice (%.0f%%)\n",
		dbl.Anomalies, dbl.Trials, dbl.Rate()*100)
	dblFixed := memmodel.FixedDoubleCompute(200)
	fmt.Printf("  locked init:   %d/%d trials computed twice\n", dblFixed.Anomalies, dblFixed.Trials)
}
