// Web fetch example (project 10): how many concurrent connections should
// a downloader open? Sweeps the connection count over a simulated network
// and then validates the winner against a real loopback HTTP server with
// injected latency. Run with:
//
//	go run ./examples/webfetch
package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"time"

	"parc751/internal/ptask"
	"parc751/internal/webfetch"
	"parc751/internal/workload"
)

func main() {
	pages := workload.GenPages(42, 200, 2000, 80000)
	cfg := webfetch.DefaultSimConfig()

	fmt.Println("simulated network: 80 ms RTT, 2 MB/s shared bandwidth")
	conns := []int{1, 2, 4, 8, 16, 32, 64, 128}
	for i, r := range webfetch.Sweep(pages, conns, cfg) {
		fmt.Printf("  %3d connections: %6.2fs  (%.0f KB/s)\n",
			conns[i], r.Makespan, r.Throughput/1000)
	}
	best := webfetch.BestConnections(pages, conns, cfg)
	fmt.Printf("best connection count: %d (bandwidth floor %.2fs)\n\n",
		best, webfetch.LowerBound(pages, cfg))

	// Real loopback validation: a server with 15 ms latency per request.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(15 * time.Millisecond)
		w.Write(make([]byte, 4096))
	}))
	defer srv.Close()
	urls := make([]string, 32)
	for i := range urls {
		urls[i] = srv.URL + "/page"
	}
	rt := ptask.NewRuntime(8)
	defer rt.Shutdown()
	fmt.Println("real loopback server (15 ms injected latency, 32 pages):")
	for _, k := range []int{1, 4, 16} {
		f := webfetch.NewFetcher(rt, srv.Client(), k)
		_, d := f.TimedFetchAll(urls)
		fmt.Printf("  %2d connections: %v\n", k, d.Round(time.Millisecond))
	}
}
