// Patterns example (§V-B outcome): the parallel-programming pattern
// library built on Parallel Task — switchable sequential/parallel
// execution behind one interface, a worker farm, a dataflow pipeline, and
// the divide-and-conquer skeleton. Run with:
//
//	go run ./examples/patterns
package main

import (
	"fmt"
	"strings"

	"parc751/internal/patterns"
	"parc751/internal/ptask"
)

func main() {
	rt := ptask.NewRuntime(4)
	defer rt.Shutdown()

	// One call site, interchangeable execution strategies.
	strategy := patterns.Switchable{
		Seq:       patterns.SeqMapper{},
		Par:       patterns.ChunkedMapper{RT: rt, Chunk: 64},
		Threshold: 256, // small problems stay sequential
	}
	squares := make([]int, 1000)
	strategy.Map(len(squares), func(i int) { squares[i] = i * i })
	fmt.Println("switchable map:", squares[31], squares[999])

	// A worker farm over string jobs.
	farm := patterns.Farm[string, string]{
		RT:   rt,
		Work: func(s string) (string, error) { return strings.ToUpper(s), nil },
	}
	out, err := farm.Process([]string{"parallel", "task", "patterns"})
	if err != nil {
		panic(err)
	}
	fmt.Println("farm:", out)

	// A three-stage pipeline; items flow through stages concurrently.
	pipe := patterns.Pipeline[int]{RT: rt, Stages: []patterns.Stage[int]{
		func(x int) int { return x + 1 },
		func(x int) int { return x * x },
		func(x int) int { return x - 1 },
	}}
	fmt.Println("pipeline:", pipe.Run([]int{1, 2, 3, 4}))

	// Divide and conquer: maximum of a slice.
	type span struct{ lo, hi int }
	data := make([]int, 4096)
	for i := range data {
		data[i] = (i * 2654435761) % 100003
	}
	dc := patterns.DivideConquer[span, int]{
		RT:     rt,
		IsBase: func(s span) bool { return s.hi-s.lo <= 256 },
		Solve: func(s span) int {
			m := data[s.lo]
			for _, v := range data[s.lo:s.hi] {
				if v > m {
					m = v
				}
			}
			return m
		},
		Split: func(s span) []span {
			mid := (s.lo + s.hi) / 2
			return []span{{s.lo, mid}, {mid, s.hi}}
		},
		Merge: func(rs []int) int {
			if rs[0] > rs[1] {
				return rs[0]
			}
			return rs[1]
		},
	}
	fmt.Println("divide&conquer max:", dc.Run(span{0, len(data)}))
}
