// Thumbnails example (project 1): render thumbnails for a folder of
// images in parallel while the GUI event loop stays responsive, showing
// each thumbnail as it completes. Run with:
//
//	go run ./examples/thumbnails
package main

import (
	"fmt"
	"sync/atomic"
	"time"

	"parc751/internal/eventloop"
	"parc751/internal/ptask"
	"parc751/internal/thumbs"
	"parc751/internal/workload"
)

func main() {
	const nImages = 48
	imgs := workload.GenImageSet(7, nImages, 96, 256)

	rt := ptask.NewRuntime(4)
	defer rt.Shutdown()
	loop := eventloop.New()
	defer loop.Close()
	rt.SetEventLoop(loop)

	// The "GUI": a counter updated only on the dispatch thread.
	var displayed atomic.Int32

	fmt.Printf("rendering %d thumbnails with 4 workers...\n", nImages)
	start := time.Now()
	done := make(chan struct{})
	go func() {
		thumbs.PTask(rt, imgs, 48, 48, func(t thumbs.Thumb) {
			if !loop.OnDispatchThread() {
				panic("thumbnail delivered off the GUI thread")
			}
			displayed.Add(1)
		})
		close(done)
	}()

	// Meanwhile the user keeps interacting: probe the event loop.
	probe := loop.Probe(2*time.Millisecond, 25)
	<-done
	for displayed.Load() < nImages {
		time.Sleep(time.Millisecond)
	}
	fmt.Printf("done in %v; %d thumbnails displayed incrementally\n",
		time.Since(start).Round(time.Millisecond), displayed.Load())
	fmt.Printf("UI responsiveness while rendering: %s\n", probe)

	// Contrast: the same work ON the event thread freezes the UI.
	blocked := make(chan struct{})
	loop.InvokeLater(func() {
		thumbs.Sequential(imgs, 48, 48)
		close(blocked)
	})
	probe2 := loop.Probe(2*time.Millisecond, 5)
	<-blocked
	fmt.Printf("UI responsiveness with rendering ON the event thread: %s\n", probe2)
}
