package parcpar

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"parc751/internal/parcvet/loader"
)

// pureStdlib is the conservative allowlist of stdlib callees, seeded the
// way parcvet's apimatch tables seed API knowledge: whole packages whose
// exported functions are value-pure, plus named functions from packages
// that mix pure and impure APIs. Anything not listed is assumed impure.
var pureStdlibPkgs = map[string]bool{
	"math":         true,
	"math/bits":    true,
	"math/cmplx":   true,
	"unicode":      true,
	"unicode/utf8": true,
}

var pureStdlibFuncs = map[string]bool{
	"strings.Compare": true, "strings.Contains": true, "strings.ContainsRune": true,
	"strings.Count": true, "strings.EqualFold": true, "strings.Fields": true,
	"strings.HasPrefix": true, "strings.HasSuffix": true, "strings.Index": true,
	"strings.IndexByte": true, "strings.IndexRune": true, "strings.Join": true,
	"strings.LastIndex": true, "strings.Repeat": true, "strings.Split": true,
	"strings.ToLower": true, "strings.ToUpper": true, "strings.TrimSpace": true,
	"strconv.Atoi": true, "strconv.FormatFloat": true, "strconv.FormatInt": true,
	"strconv.FormatUint": true, "strconv.Itoa": true, "strconv.ParseFloat": true,
	"strconv.ParseInt": true, "strconv.ParseUint": true, "strconv.Quote": true,
}

// pureBuiltins are the builtins with no side effects on shared state
// (append's result-placement is governed by the write analysis; make and
// new allocate fresh private storage).
var pureBuiltins = map[string]bool{
	"len": true, "cap": true, "min": true, "max": true,
	"real": true, "imag": true, "complex": true,
	"make": true, "new": true, "append": true,
}

// purityChecker decides, conservatively, whether a module function is
// pure enough to run concurrently: it writes only its own locals, uses
// no concurrency constructs, and calls only other pure functions. The
// judgment is memoized per *types.Func; recursion is handled
// coinductively (an in-progress callee is assumed pure — any violation
// in the cycle still marks every participant impure on its own walk).
type purityChecker struct {
	l    *loader.Loader
	pkg  *loader.Package
	memo map[*types.Func]bool
	busy map[*types.Func]bool
	// fieldReads is the transitive set of struct field names a pure
	// function reads (selector names, coarsely keyed by name alone — the
	// safe direction is overcounting). unknownReads marks functions whose
	// read set could not be closed (recursion); readsField answers true
	// for those.
	fieldReads   map[*types.Func]map[string]bool
	unknownReads map[*types.Func]bool
}

func newPurity(l *loader.Loader, pkg *loader.Package) *purityChecker {
	return &purityChecker{
		l: l, pkg: pkg,
		memo: map[*types.Func]bool{}, busy: map[*types.Func]bool{},
		fieldReads:   map[*types.Func]map[string]bool{},
		unknownReads: map[*types.Func]bool{},
	}
}

// readsField reports whether fn (transitively) may read the named
// struct field. Unanalyzed or unclosed functions answer true.
func (p *purityChecker) readsField(fn *types.Func, field string) bool {
	reads, ok := p.fieldReads[fn]
	if !ok || p.unknownReads[fn] {
		return true
	}
	return reads[field]
}

// checkCalls verifies every call in the loop body resolves to a provably
// pure callee: a type conversion, an allowlisted builtin, an allowlisted
// stdlib function, or a module function whose body passes isPure.
func (a *analyzer) checkCalls(sh *loopShape) (string, bool) {
	var reason string
	ast.Inspect(sh.body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if ok, why := a.purity.callPure(a.info, call); !ok {
			reason = why
		}
		return reason == ""
	})
	return reason, reason != ""
}

// callPure judges one call expression against info (the package whose
// AST the call belongs to).
func (p *purityChecker) callPure(info *types.Info, call *ast.CallExpr) (bool, string) {
	// Type conversions are value-pure.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return true, ""
	}
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Builtin:
			if pureBuiltins[obj.Name()] {
				return true, ""
			}
			return false, fmt.Sprintf("call to builtin %q has shared-state effects", obj.Name())
		case *types.Func:
			return p.funcPure(obj)
		case *types.Var:
			return false, fmt.Sprintf("call through function variable %q", fun.Name)
		}
		if tv, ok := info.Types[fun]; ok && tv.IsType() {
			return true, ""
		}
		return false, fmt.Sprintf("call to unresolved %q", fun.Name)
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return p.funcPure(fn)
		}
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			return true, ""
		}
		return false, fmt.Sprintf("call to unresolved %q", fun.Sel.Name)
	default:
		return false, "call through a computed function value"
	}
}

// funcPure judges a resolved callee.
func (p *purityChecker) funcPure(fn *types.Func) (bool, string) {
	if done, ok := p.memo[fn]; ok {
		if done {
			return true, ""
		}
		return false, fmt.Sprintf("call to %s is not provably pure", fn.FullName())
	}
	if p.busy[fn] {
		return true, "" // coinductive: judge the cycle by its other statements
	}
	pkg := fn.Pkg()
	if pkg == nil {
		return false, fmt.Sprintf("call to %s is not provably pure", fn.Name())
	}
	path := pkg.Path()
	if pureStdlibPkgs[path] || pureStdlibFuncs[path+"."+fn.Name()] {
		p.memo[fn] = true
		p.fieldReads[fn] = map[string]bool{} // value-pure: no field reads
		return true, ""
	}
	// Module functions and functions of the package under analysis
	// (which may live outside the module path, e.g. fixture packages)
	// are analyzed by body; everything else is out of scope.
	if path != p.pkg.Path && path != p.l.ModulePath && !strings.HasPrefix(path, p.l.ModulePath+"/") {
		return false, fmt.Sprintf("call to %s is outside the purity allowlist", fn.FullName())
	}
	decl, info := p.findDecl(fn)
	if decl == nil || decl.Body == nil {
		p.memo[fn] = false
		return false, fmt.Sprintf("no body found for %s", fn.FullName())
	}
	p.busy[fn] = true
	ok, why := p.bodyPure(fn, decl, info)
	delete(p.busy, fn)
	p.memo[fn] = ok
	if !ok {
		return false, fmt.Sprintf("call to %s is not provably pure (%s)", fn.FullName(), why)
	}
	return true, ""
}

// bodyPure checks a callee body: writes only to its own locals (receiver
// and parameters are read-only — writing *through* them reaches the
// caller's shared state), no concurrency constructs, pure callees only.
func (p *purityChecker) bodyPure(fn *types.Func, decl *ast.FuncDecl, info *types.Info) (bool, string) {
	var reason string
	fail := func(r string) { reason = r }
	reads := map[string]bool{}
	readsClosed := true
	localTo := func(obj types.Object) bool {
		// Declared inside the body (not a param/receiver: those live in
		// the declaration's signature, outside Body's span).
		return obj != nil && obj.Pos() >= decl.Body.Pos() && obj.Pos() <= decl.Body.End()
	}
	var checkTarget func(lhs ast.Expr)
	checkTarget = func(lhs ast.Expr) {
		switch lhs := unparen(lhs).(type) {
		case *ast.Ident:
			if lhs.Name == "_" {
				return
			}
			obj := info.Uses[lhs]
			if obj == nil {
				obj = info.Defs[lhs]
			}
			if _, isPkgVar := obj.(*types.Var); isPkgVar && !localTo(obj) {
				// Reassigning a parameter's own copy is local; writing a
				// package variable is not. Distinguish by scope parent.
				if v := obj.(*types.Var); v.Parent() == v.Pkg().Scope() {
					fail("writes package variable " + v.Name())
					return
				}
			}
		case *ast.IndexExpr, *ast.StarExpr, *ast.SelectorExpr:
			// A write through any chain rooted outside the body reaches
			// caller-visible memory.
			root := rootIdent(lhs)
			if root == nil {
				fail("writes through a compound expression")
				return
			}
			obj := info.Uses[root]
			if obj == nil {
				obj = info.Defs[root]
			}
			if !localTo(obj) {
				fail("writes through " + root.Name)
				return
			}
			// Local pointer-shaped vars may alias params (e.g. a subslice);
			// trace the initializer conservatively: any local slice/pointer
			// written through must come from make/new/literal.
			if v, isVar := obj.(*types.Var); isVar && pointerShaped(v.Type()) {
				if !p.freshLocal(decl, info, obj) {
					fail("writes through local alias " + root.Name)
				}
			}
		default:
			fail("unmodelled write target")
		}
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkTarget(lhs)
			}
		case *ast.IncDecStmt:
			checkTarget(n.X)
		case *ast.GoStmt:
			fail("starts a goroutine")
		case *ast.DeferStmt:
			fail("defers")
		case *ast.SendStmt, *ast.SelectStmt:
			fail("channel operation")
		case *ast.FuncLit:
			fail("contains a function literal")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				fail("channel receive")
			}
		case *ast.SelectorExpr:
			// Coarse field-read tracking: every selector name counts,
			// including package qualifiers — overcounting only ever turns
			// an accept into a reject, never the reverse.
			reads[n.Sel.Name] = true
		case *ast.CallExpr:
			if ok, _ := p.callPure(info, n); !ok {
				fail("calls an impure function")
				return false
			}
			if callee := staticCallee(info, n); callee != nil {
				if sub, ok := p.fieldReads[callee]; ok && !p.unknownReads[callee] {
					for f := range sub {
						reads[f] = true
					}
				} else {
					readsClosed = false // in-progress recursion: set unknowable
				}
			} else if tv, ok := info.Types[n.Fun]; !ok || !tv.IsType() {
				readsClosed = false // builtins resolve here too; be lenient
				if id, isID := unparen(n.Fun).(*ast.Ident); isID {
					if _, isB := info.Uses[id].(*types.Builtin); isB {
						readsClosed = true
					}
				}
			}
		case *ast.ExprStmt:
			if ce, ok := n.X.(*ast.CallExpr); ok {
				if id, isID := ce.Fun.(*ast.Ident); isID {
					if b, isB := info.Uses[id].(*types.Builtin); isB && b.Name() == "panic" {
						fail("may panic")
					}
				}
			}
		}
		return reason == ""
	})
	if reason != "" {
		return false, reason
	}
	p.fieldReads[fn] = reads
	p.unknownReads[fn] = !readsClosed
	return true, ""
}

// staticCallee resolves a call's target as a declared function, or nil
// for builtins, conversions, and calls through function values.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// freshLocal reports whether obj's defining initializer allocates fresh
// memory (make/new/composite literal) rather than aliasing a parameter.
func (p *purityChecker) freshLocal(decl *ast.FuncDecl, info *types.Info, obj types.Object) bool {
	fresh := false
	seen := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || seen {
			return !seen
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || info.Defs[id] != obj || len(as.Rhs) != len(as.Lhs) {
				continue
			}
			seen = true
			switch rhs := unparen(as.Rhs[i]).(type) {
			case *ast.CallExpr:
				if fid, isID := rhs.Fun.(*ast.Ident); isID {
					if b, isB := info.Uses[fid].(*types.Builtin); isB && (b.Name() == "make" || b.Name() == "new") {
						fresh = true
					}
				}
			case *ast.CompositeLit:
				fresh = true
			}
		}
		return !seen
	})
	return seen && fresh
}

// findDecl locates the FuncDecl and matching types.Info for a module
// function — in the package under analysis, or in any other module
// package through the loader's cache (object identities are shared
// because every import resolves through the same typechecking universe).
func (p *purityChecker) findDecl(fn *types.Func) (*ast.FuncDecl, *types.Info) {
	find := func(pkg *loader.Package) *ast.FuncDecl {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && pkg.Info.Defs[fd.Name] == fn {
					return fd
				}
			}
		}
		return nil
	}
	if fn.Pkg().Path() == p.pkg.Path {
		if d := find(p.pkg); d != nil {
			return d, p.pkg.Info
		}
		return nil, nil
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(fn.Pkg().Path(), p.l.ModulePath), "/")
	pkg, err := p.l.LoadDir(filepath.Join(p.l.ModuleRoot, filepath.FromSlash(rel)), fn.Pkg().Path())
	if err != nil {
		return nil, nil
	}
	if d := find(pkg); d != nil {
		return d, pkg.Info
	}
	return nil, nil
}

// rootIdent finds the root identifier of an lvalue chain, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
