package parcpar

import (
	"fmt"
	"go/ast"
	"go/format"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"parc751/internal/parcvet/loader"
)

// The rewriter is deliberately textual: it patches byte ranges of the
// original source instead of re-printing the AST, so loop bodies survive
// byte-for-byte — comments, alignment, and all. Only three spans of an
// accepted loop change: the header (for-clause through `{`), the closing
// `}`, and — for range loops with a value variable — one inserted
// binding line. The import block is the one region rebuilt wholesale.

// patch replaces src[start:end) with text.
type patch struct {
	start, end int
	text       string
}

func applyPatches(src []byte, patches []patch) []byte {
	sort.Slice(patches, func(i, j int) bool { return patches[i].start > patches[j].start })
	out := append([]byte(nil), src...)
	for _, p := range patches {
		out = append(out[:p.start], append([]byte(p.text), out[p.end:]...)...)
	}
	return out
}

// Rewritable reports whether the loop's classification supports the
// mechanical rewrite: accepted, zero-based, and (for reductions) a
// sum-class accumulator of an unqualified basic type — the forms
// pyjama.ParallelFor / ParallelForReduce + reduction.Sum express
// directly.
func (lp *Loop) Rewritable() bool {
	if lp.shape == nil || !lp.shape.loZero {
		return false
	}
	switch lp.Class {
	case ClassParallel:
		return true
	case ClassReduction:
		return lp.Red != nil && lp.Red.Kind == "sum" && !strings.Contains(lp.Red.Type, ".")
	}
	return false
}

// Fix rewrites every rewritable loop of the matched packages in place.
// It returns the module-relative paths of the files it changed.
func Fix(moduleRoot string, patterns []string, opts Options) ([]string, error) {
	l, err := loader.New(moduleRoot)
	if err != nil {
		return nil, err
	}
	pkgs, err := l.Load(patterns...)
	if err != nil {
		return nil, err
	}
	var changed []string
	for _, pkg := range pkgs {
		a := newAnalyzer(l, pkg, opts)
		loops := a.analyzeAll()
		for _, f := range pkg.Files {
			out, n, err := a.rewriteFile(f, loops, "", false)
			if err != nil {
				return nil, err
			}
			if n == 0 {
				continue
			}
			name := a.fset.File(f.Pos()).Name()
			if err := os.WriteFile(name, out, 0o644); err != nil {
				return nil, err
			}
			rel := name
			if r, ok := strings.CutPrefix(name, moduleRoot+"/"); ok {
				rel = r
			}
			changed = append(changed, rel)
		}
	}
	sort.Strings(changed)
	return changed, nil
}

// GenerateDir analyzes the package in srcDir and writes a rewritten copy
// of every file containing at least one rewrite into outDir, renamed to
// package pkgName and stamped as generated. It returns the written file
// names (base names, sorted).
func GenerateDir(moduleRoot, srcDir, outDir, pkgName string) ([]string, error) {
	l, err := loader.New(moduleRoot)
	if err != nil {
		return nil, err
	}
	absSrc, err := filepath.Abs(srcDir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(moduleRoot, absSrc)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("source dir %s is outside module %s", srcDir, moduleRoot)
	}
	importPath := l.ModulePath + "/" + filepath.ToSlash(rel)
	pkg, err := l.LoadDir(absSrc, importPath)
	if err != nil {
		return nil, err
	}
	a := newAnalyzer(l, pkg, Options{})
	loops := a.analyzeAll()
	var written []string
	for _, f := range pkg.Files {
		out, n, err := a.rewriteFile(f, loops, pkgName, true)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			continue
		}
		base := filepath.Base(a.fset.File(f.Pos()).Name())
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return nil, err
		}
		if err := os.WriteFile(filepath.Join(outDir, base), out, 0o644); err != nil {
			return nil, err
		}
		written = append(written, base)
	}
	sort.Strings(written)
	return written, nil
}

// rewriteFile rewrites f's rewritable loops, returning the formatted
// output and the number of loops rewritten (0 = leave the file alone).
// pkgName, when non-empty, renames the package; generated stamps the
// file with the standard generated-code header.
func (a *analyzer) rewriteFile(f *ast.File, loops []Loop, pkgName string, generated bool) ([]byte, int, error) {
	tf := a.fset.File(f.Pos())
	var mine []*Loop
	for i := range loops {
		lp := &loops[i]
		if lp.Rewritable() && tf == a.fset.File(lp.Stmt.Pos()) {
			mine = append(mine, lp)
		}
	}
	if len(mine) == 0 {
		return nil, 0, nil
	}
	src, err := os.ReadFile(tf.Name())
	if err != nil {
		return nil, 0, err
	}
	r := &rewriter{src: src, tf: tf}

	var patches []patch
	needReduction := false
	for _, lp := range mine {
		ps, err := r.loopPatches(lp)
		if err != nil {
			return nil, 0, fmt.Errorf("%s: %v", tf.Name(), err)
		}
		patches = append(patches, ps...)
		if lp.Class == ClassReduction {
			needReduction = true
		}
	}
	patches = append(patches, r.importPatch(f, needReduction))
	if pkgName != "" && pkgName != f.Name.Name {
		patches = append(patches, patch{r.off(f.Name.Pos()), r.off(f.Name.End()), pkgName})
	}
	out := applyPatches(src, patches)
	if generated {
		out = append([]byte("// Code generated by parcpar; DO NOT EDIT.\n\n"), out...)
	}
	formatted, err := format.Source(out)
	if err != nil {
		return nil, 0, fmt.Errorf("%s: rewrite does not format: %v\n%s", tf.Name(), err, out)
	}
	return formatted, len(mine), nil
}

type rewriter struct {
	src []byte
	tf  *token.File
}

func (r *rewriter) off(p token.Pos) int { return r.tf.Offset(p) }

// text returns the original source of one node.
func (r *rewriter) text(n ast.Node) string {
	return string(r.src[r.off(n.Pos()):r.off(n.End())])
}

// lineIndent returns the leading whitespace of the line containing off.
func (r *rewriter) lineIndent(off int) string {
	start := off
	for start > 0 && r.src[start-1] != '\n' {
		start--
	}
	end := start
	for end < len(r.src) && (r.src[end] == ' ' || r.src[end] == '\t') {
		end++
	}
	return string(r.src[start:end])
}

// loopPatches builds the header and closing-brace patches for one loop.
func (r *rewriter) loopPatches(lp *Loop) ([]patch, error) {
	sh := lp.shape
	var body *ast.BlockStmt
	var bound string
	switch s := lp.Stmt.(type) {
	case *ast.ForStmt:
		body = s.Body
		bound = r.text(sh.hi)
	case *ast.RangeStmt:
		body = s.Body
		bound = "len(" + r.text(sh.rangeX) + ")"
	default:
		return nil, fmt.Errorf("unrewritable loop statement %T", lp.Stmt)
	}
	idx := r.indexName(lp)
	headStart := r.off(lp.Stmt.Pos())
	headEnd := r.off(body.Lbrace) + 1
	braceOff := r.off(body.Rbrace)
	indent := r.lineIndent(headStart)

	var head, tail string
	switch lp.Class {
	case ClassParallel:
		head = fmt.Sprintf("pyjama.ParallelFor(runtime.NumCPU(), %s, %s, func(%s int) {", bound, lp.Sched, idx)
		tail = "})"
	case ClassReduction:
		acc, typ := lp.Red.Name, lp.Red.Type
		head = fmt.Sprintf("%s += pyjama.ParallelForReduce(runtime.NumCPU(), %s, %s, reduction.Sum[%s](), func(%s int, %s %s) %s {",
			acc, bound, lp.Sched, typ, idx, acc, typ, typ)
		tail = "\treturn " + acc + "\n" + indent + "})"
	default:
		return nil, fmt.Errorf("loop classified %s is not rewritable", lp.Class)
	}
	patches := []patch{
		{headStart, headEnd, head},
		{braceOff, braceOff + 1, tail},
	}
	if sh.isRange && sh.value != nil {
		binding := "\n" + indent + "\t" + sh.value.Name + " := " + r.text(sh.rangeX) + "[" + idx + "]"
		patches = append(patches, patch{headEnd, headEnd, binding})
	}
	return patches, nil
}

// indexName returns the loop's index variable name, synthesizing a
// non-colliding one for `for _, v := range xs` / `for range xs` forms.
func (r *rewriter) indexName(lp *Loop) string {
	if lp.shape.index != nil {
		return lp.shape.index.Name
	}
	loopSrc := r.text(lp.Stmt)
	for _, cand := range []string{"i", "j", "k", "ii", "idx", "pfi"} {
		re := regexp.MustCompile(`\b` + cand + `\b`)
		if !re.MatchString(loopSrc) {
			return cand
		}
	}
	return "pfIdx"
}

// importPatch rebuilds the file's import block with runtime, pyjama,
// and (for reductions) reduction added, in the standard two sorted
// groups: stdlib first, module paths second. Comments inside the import
// block are not preserved.
func (r *rewriter) importPatch(f *ast.File, needReduction bool) patch {
	need := map[string]bool{
		"runtime":                 true,
		"parc751/internal/pyjama": true,
	}
	if needReduction {
		need["parc751/internal/reduction"] = true
	}
	type imp struct{ name, path string }
	var imps []imp
	seen := map[string]bool{}
	for _, spec := range f.Imports {
		path := strings.Trim(spec.Path.Value, `"`)
		name := ""
		if spec.Name != nil {
			name = spec.Name.Name
		}
		imps = append(imps, imp{name, path})
		seen[path] = true
	}
	for path := range need {
		if !seen[path] {
			imps = append(imps, imp{"", path})
		}
	}
	var std, mod []imp
	for _, im := range imps {
		if strings.HasPrefix(im.path, "parc751") {
			mod = append(mod, im)
		} else {
			std = append(std, im)
		}
	}
	for _, group := range [][]imp{std, mod} {
		sort.Slice(group, func(i, j int) bool { return group[i].path < group[j].path })
	}
	var b strings.Builder
	b.WriteString("import (\n")
	render := func(group []imp) {
		for _, im := range group {
			b.WriteString("\t")
			if im.name != "" {
				b.WriteString(im.name + " ")
			}
			b.WriteString(`"` + im.path + `"` + "\n")
		}
	}
	render(std)
	if len(std) > 0 && len(mod) > 0 {
		b.WriteString("\n")
	}
	render(mod)
	b.WriteString(")")

	// Replace the existing import decl, or insert after the package
	// clause when there is none.
	for _, decl := range f.Decls {
		if gd, ok := decl.(*ast.GenDecl); ok && gd.Tok == token.IMPORT {
			return patch{r.off(gd.Pos()), r.off(gd.End()), b.String()}
		}
	}
	at := r.off(f.Name.End())
	return patch{at, at, "\n\n" + b.String()}
}
