package parcpar

import (
	"go/format"
	"os"
	"path/filepath"
	"testing"
)

// TestRegenerateByteIdentical regenerates the committed autogen/par
// package from autogen/seq into a scratch dir and requires byte
// identity — the committed rewrite output can never drift from what the
// rewriter produces.
func TestRegenerateByteIdentical(t *testing.T) {
	root := moduleRootOrSkip(t)
	srcDir := filepath.Join(root, "internal", "parcpar", "autogen", "seq")
	parDir := filepath.Join(root, "internal", "parcpar", "autogen", "par")
	outDir := t.TempDir()

	written, err := GenerateDir(root, srcDir, outDir, "par")
	if err != nil {
		t.Fatal(err)
	}
	if len(written) == 0 {
		t.Fatal("rewriter generated no files from autogen/seq")
	}

	committed, err := os.ReadDir(parDir)
	if err != nil {
		t.Fatal(err)
	}
	var committedNames []string
	for _, e := range committed {
		if filepath.Ext(e.Name()) == ".go" {
			committedNames = append(committedNames, e.Name())
		}
	}
	if len(committedNames) != len(written) {
		t.Fatalf("committed par has %v, regeneration produced %v", committedNames, written)
	}
	for _, name := range written {
		got, err := os.ReadFile(filepath.Join(outDir, name))
		if err != nil {
			t.Fatal(err)
		}
		want, err := os.ReadFile(filepath.Join(parDir, name))
		if err != nil {
			t.Fatalf("regenerated %s is not committed: %v", name, err)
		}
		if string(got) != string(want) {
			t.Errorf("%s: committed file differs from regeneration; run:\n  go run ./cmd/parcpar -o internal/parcpar/autogen/par -pkg par internal/parcpar/autogen/seq", name)
		}
	}
}

// TestRewriteOutputFormatted requires every generated file to be
// gofmt-clean — the textual patcher must produce idiomatic output, not
// merely compiling output.
func TestRewriteOutputFormatted(t *testing.T) {
	root := moduleRootOrSkip(t)
	outDir := t.TempDir()
	written, err := GenerateDir(root, filepath.Join(root, "internal", "parcpar", "autogen", "seq"), outDir, "par")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range written {
		src, err := os.ReadFile(filepath.Join(outDir, name))
		if err != nil {
			t.Fatal(err)
		}
		formatted, err := format.Source(src)
		if err != nil {
			t.Fatalf("%s does not parse: %v", name, err)
		}
		if string(formatted) != string(src) {
			t.Errorf("%s is not gofmt-clean", name)
		}
	}
}

// TestNoNegativesRewritten checks the rewriter's selectivity: the
// negatives file contains no rewritable loop, so it must not appear in
// the generated package.
func TestNoNegativesRewritten(t *testing.T) {
	root := moduleRootOrSkip(t)
	outDir := t.TempDir()
	written, err := GenerateDir(root, filepath.Join(root, "internal", "parcpar", "autogen", "seq"), outDir, "par")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range written {
		if name == "negatives.go" {
			t.Error("negatives.go was rewritten; every loop in it must be rejected")
		}
	}
}
