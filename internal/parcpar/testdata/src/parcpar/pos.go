// Package parcpar holds golden fixtures for the opportunity analyzer,
// checked in Explain mode: every finding must match a `// want` comment
// on its line, and every want must be produced.
package parcpar

import "parc751/internal/kernels"

// FlatScale writes through the delinearized index i*m+j — injective
// because the inner canonical loop runs j over exactly [0, m).
func FlatScale(out []float64, n, m int) {
	for i := 0; i < n; i++ { // want `loop is parallelizable; suggest pyjama.ParallelFor`
		for j := 0; j < m; j++ {
			out[i*m+j] = float64(i) * float64(j)
		}
	}
}

// RowScale writes only through an allowlisted iteration-distinct row
// view; the accessor call itself is exempt from call-aliasing.
func RowScale(m *kernels.Matrix) {
	for i := 0; i < m.Rows; i++ { // want `loop is parallelizable; suggest pyjama.ParallelFor`
		row := m.Row(i)
		for j := range row {
			row[j] *= 2
		}
	}
}

// SwitchBreak's break leaves the switch, not the loop — the CFG knows
// the difference, so this is not an early exit.
func SwitchBreak(xs []float64) {
	for i := 0; i < len(xs); i++ { // want `loop is parallelizable; suggest pyjama.ParallelFor with pyjama.Auto`
		switch {
		case xs[i] > 1:
			xs[i] = xs[i]*xs[i] + 1
		default:
			break
		}
	}
}

// LabeledContinue's `continue inner` re-enters the inner loop's post
// statement — precise labeled edges keep it inside the outer loop.
func LabeledContinue(xs []float64) {
	for i := 0; i < len(xs); i++ { // want `loop is parallelizable; suggest pyjama.ParallelFor`
	inner:
		for j := 0; j < 4; j++ {
			if xs[i] < float64(j) {
				continue inner
			}
			xs[i] += 0.25
		}
	}
}

// Buffered allocates fresh per-iteration storage with make — private,
// so writes through it never cross iterations.
func Buffered(out []float64, n int) {
	for i := 0; i < n; i++ { // want `loop is parallelizable; suggest pyjama.ParallelFor`
		buf := make([]float64, 8)
		for j := range buf {
			buf[j] = float64(i + j)
		}
		var s float64
		for j := range buf {
			s += buf[j]
		}
		out[i] = s
	}
}

// Product is recognized as a product reduction — reported as an
// opportunity, though only sum reductions are mechanically rewritten.
func Product(xs []float64) float64 {
	p := 1.0
	for i := 0; i < len(xs); i++ { // want `parallelizable product reduction`
		p *= 1 + xs[i]*0.5
	}
	return p
}

type sys struct {
	pos   []float64
	force []float64
}

// computeForces writes s.force[i] and calls a pure method whose
// transitive field reads provably exclude "force" — the
// field-sensitive call-aliasing accept.
func (s *sys) computeForces() {
	for i := range s.force { // want `loop is parallelizable; suggest pyjama.ParallelFor`
		s.force[i] = s.forceAt(i)
	}
}

func (s *sys) forceAt(i int) float64 {
	var f float64
	for j := range s.pos { // want `parallelizable sum reduction`
		if j != i {
			d := s.pos[j] - s.pos[i]
			f += d / (1 + d*d)
		}
	}
	return f
}
