package parcpar

// MeanVar updates two shared accumulators — only a single recognized
// accumulator fits the reduction model.
func MeanVar(xs []float64) (float64, float64) {
	var sum, sq float64
	for i := 0; i < len(xs); i++ { // want `multiple shared scalars`
		sum += xs[i]
		sq += xs[i] * xs[i]
	}
	n := float64(len(xs))
	return sum / n, sq / n
}

// Deref writes through pointers whose targets the analyzer cannot
// prove disjoint.
func Deref(ps []*int64) {
	for i := 0; i < len(ps); i++ { // want `write through pointer`
		*ps[i] = int64(i)
	}
}

// RowsZero writes through the range value, which aliases the ranged
// slice's backing memory; the inner loop is safe but too cheap.
func RowsZero(rows [][]float64) {
	for _, row := range rows { // want `aliases the ranged data`
		for j := range row { // want `below cost threshold`
			row[j] = 0
		}
	}
}

// Spawn starts goroutines — outside the SPMD model entirely.
func Spawn(xs []float64, ch chan<- float64) {
	for i := 0; i < len(xs); i++ { // want `go statement in body`
		go func(v float64) { ch <- v }(xs[i])
	}
}

// Addr leaks an alias to shared memory out of the iteration.
func Addr(xs []int64) {
	var p *int64
	for i := 0; i < len(xs); i++ { // want `address of shared`
		p = &xs[i]
		*p = 0
	}
	_ = p
}

// MapCount writes a map: two iterations may hit the same key, and map
// writes race regardless.
func MapCount(m map[int]int, xs []int) {
	for i := 0; i < len(xs); i++ { // want `write to map`
		m[xs[i]]++
	}
}

// NestedSearch breaks out of both loops on data: the labeled break
// leaves the outer loop (and, seen from the inner loop, leaves it too).
func NestedSearch(xs [][]int64, want int64) bool {
	found := false
outer:
	for i := 0; i < len(xs); i++ { // want `break outer leaves the loop`
		for j := 0; j < len(xs[i]); j++ { // want `break outer leaves the loop`
			if xs[i][j] == want {
				found = true
				break outer
			}
		}
	}
	return found
}

// Blur writes xs[i] while passing all of xs to a callee that reads
// other slots — the caller/callee aliasing gap the write analysis
// alone would miss.
func Blur(xs []float64) {
	for i := 0; i < len(xs); i++ { // want `passed to avg, which may read another iteration's slot`
		xs[i] = avg(xs, i)
	}
}

func avg(xs []float64, i int) float64 {
	if i == 0 {
		return xs[0]
	}
	return 0.5 * (xs[i] + xs[i-1])
}

// smoothBad writes s.force while calling a method whose field reads
// include "force" — rejected by the field-sensitive aliasing check.
func (s *sys) smoothBad() {
	for i := range s.force { // want `receives "s" while the loop writes its "force" field`
		s.force[i] = s.avgForce(i)
	}
}

func (s *sys) avgForce(i int) float64 {
	if i == 0 {
		return s.force[0]
	}
	return 0.5 * (s.force[i] + s.force[i-1])
}
