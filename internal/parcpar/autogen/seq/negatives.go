package seq

import "fmt"

// The negative fixtures: every loop below is one the analyzer must
// reject (or price below threshold) with a reasoned finding, and the
// rewriter must leave alone — A10 asserts no file named negatives.go
// appears in the generated package.

// PrefixSum carries xs[i-1] into iteration i: the classic loop-carried
// flow dependence.
func PrefixSum(xs []int64) {
	for i := 1; i < len(xs); i++ {
		xs[i] += xs[i-1]
	}
}

// Shift reads the next iteration's slot while writing its own: an
// anti-dependence (read index i+1 is not among the write shapes).
func Shift(xs []int64) {
	for i := 0; i < len(xs)-1; i++ {
		xs[i] = xs[i+1]
	}
}

// SumUntilNeg breaks out of the loop on data: the trip count is
// data-dependent, so iterations cannot be distributed.
func SumUntilNeg(xs []int64) int64 {
	var s int64
	for i := 0; i < len(xs); i++ {
		if xs[i] < 0 {
			break
		}
		s += xs[i]
	}
	return s
}

// FindIndex returns from inside the loop — the other early-exit form.
func FindIndex(xs []int64, want int64) int {
	for i := 0; i < len(xs); i++ {
		if xs[i] == want {
			return i
		}
	}
	return -1
}

// LogEach calls fmt.Println, which is outside the purity allowlist.
func LogEach(xs []int64) {
	for i := 0; i < len(xs); i++ {
		fmt.Println(xs[i])
	}
}

// Scale3 is safe but trip-3: forking costs more than the loop.
func Scale3(xs []float64) {
	for i := 0; i < 3; i++ {
		xs[i] *= 2
	}
}

// RunningMax writes a shared scalar in a conditional, non-reduction
// form (max is order-insensitive, but the analyzer's reduction grammar
// is sum/product only — rejecting is the conservative answer).
func RunningMax(xs []int64) int64 {
	m := xs[0]
	for i := 1; i < len(xs); i++ {
		if xs[i] > m {
			m = xs[i]
		}
	}
	return m
}

// Histogram writes through a data-dependent index: two iterations may
// hit the same bin.
func Histogram(counts []int, idx []int) {
	for i := 0; i < len(idx); i++ {
		counts[idx[i]]++
	}
}
