// Package seq holds the sequential fixture kernels for parcpar's
// rewriter: every exported function here is a loop nest the analyzer
// accepts, and internal/parcpar/autogen/par holds the committed output
// of running the rewriter over this package. Experiment A10 regenerates
// par from seq and asserts byte identity, checksum equality, and
// speedup — so these kernels are chosen to be bit-exact under
// outer-loop parallelization: integer reductions are associative
// exactly, and the float kernels keep their inner summation order.
//
// Regenerate with:
//
//	go run ./cmd/parcpar -o internal/parcpar/autogen/par -pkg par internal/parcpar/autogen/seq
package seq

// MatMulFlat multiplies n×n row-major matrices: c[i*n+j] = Σk a[i*n+k]·b[k*n+j].
// The write index i*n+j is the delinearization proof case.
func MatMulFlat(c, a, b []float64, n int) {
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += a[i*n+k] * b[k*n+j]
			}
			c[i*n+j] = s
		}
	}
}

// JacobiSweep performs one Jacobi relaxation sweep of the 1-D Poisson
// stencil into next, reading only x and b — the out-of-place form whose
// iterations are independent (the in-place form is not).
func JacobiSweep(next, x, b []float64) {
	for i := 0; i < len(next); i++ {
		var s float64
		if i > 0 {
			s += x[i-1]
		}
		if i+1 < len(x) {
			s += x[i+1]
		}
		next[i] = 0.5 * (s + b[i])
	}
}

// Forces computes an O(n²) pairwise 1-D force sum per particle. The
// accumulator is function-call free and iteration-private.
func Forces(out, pos []float64) {
	for i := range out {
		var f float64
		for j := range pos {
			if j != i {
				d := pos[j] - pos[i]
				f += d / (1 + d*d)
			}
		}
		out[i] = f
	}
}

// PageRankStep applies one damped PageRank update from rank into next
// for a regular graph where every vertex has out-degree deg[v].
func PageRankStep(next, rank []float64, deg []int) {
	for i := 0; i < len(next); i++ {
		next[i] = 0.15 + 0.85*rank[i]/float64(deg[i])
	}
}

// ComponentsSweep performs one label-propagation sweep: each vertex
// takes the max label over itself and its neighbors. maxNeighbor
// exercises the call-purity layer.
func ComponentsSweep(next, label []int, adj [][]int) {
	for i := range next {
		next[i] = maxNeighbor(label[i], label, adj[i])
	}
}

func maxNeighbor(m int, label []int, nbrs []int) int {
	for _, w := range nbrs {
		if label[w] > m {
			m = label[w]
		}
	}
	return m
}

// SpinSum folds n splitmix64 outputs into a uint64 — an exactly
// associative reduction, so the parallel rewrite is checksum-identical.
func SpinSum(n int, seed uint64) uint64 {
	var acc uint64
	for i := 0; i < n; i++ {
		z := seed + uint64(i)*0x9e3779b97f4a7c15
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		acc += z
	}
	return acc
}

// Dot is the integer dot product — the range-loop reduction form.
func Dot(a, b []int64) int64 {
	var s int64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
