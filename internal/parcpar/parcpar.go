// Package parcpar inverts parcvet: instead of detecting concurrency
// misuse in parallel code, it detects parallelization *opportunity* in
// sequential code. It reuses parcvet's stdlib-only loader, its
// statement-level CFG, and the shared report vocabulary, and adds three
// layers of its own:
//
//  1. a loop-carried dependence analysis (canonical loop forms, scalar
//     def-use across iterations, iteration-distinct slice writes with
//     row-major delinearization, sum-reduction recognition, early-exit
//     disqualification over the CFG, and conservative call purity),
//  2. a cost model calibrated the same way pyjama's schedule(auto)
//     calibrates — a committed probe table of per-operation-class costs
//     plus the fork-join overhead measured by the BENCH harness — that
//     separates worthwhile loops from ones the runtime would only slow
//     down, and
//  3. a textual rewriter that converts accepted loops to
//     pyjama.ParallelFor / pyjama.ParallelForReduce while preserving the
//     loop body byte-for-byte (comments included).
//
// Findings flow through internal/report with the parcvet/parcaudit exit
// convention. Every parcpar finding is a Warning: an opportunity (or a
// reasoned rejection) is advice, not an error, so a repo-wide run exits 0.
package parcpar

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"parc751/internal/parcvet/loader"
	"parc751/internal/report"
)

// Class is the verdict for one candidate loop.
type Class int

// Classification lattice, ordered roughly by how far the loop got
// through the pipeline: shape → exits → dependences → purity → cost.
const (
	// ClassParallel: safe and worthwhile; rewrite to pyjama.ParallelFor.
	ClassParallel Class = iota
	// ClassReduction: safe and worthwhile with exactly one sum-class
	// accumulator; rewrite to pyjama.ParallelForReduce.
	ClassReduction
	// ClassEarlyExit: a break/return/goto makes the trip count
	// data-dependent.
	ClassEarlyExit
	// ClassDependence: a loop-carried dependence (shared scalar,
	// unprovable write slots, or cross-iteration read/write aliasing).
	ClassDependence
	// ClassImpure: the body calls something not provably pure, or uses a
	// construct (go, defer, channels, closures) outside the model.
	ClassImpure
	// ClassBelowThreshold: safe, but trip × body cost does not clear the
	// fork-join threshold.
	ClassBelowThreshold
)

// Rule names the report rule for each class.
func (c Class) Rule() string {
	switch c {
	case ClassParallel, ClassReduction:
		return "parallelizable"
	case ClassEarlyExit:
		return "earlyexit"
	case ClassDependence:
		return "dependence"
	case ClassImpure:
		return "impurity"
	default:
		return "belowthreshold"
	}
}

func (c Class) String() string {
	switch c {
	case ClassParallel:
		return "parallel"
	case ClassReduction:
		return "reduction"
	case ClassEarlyExit:
		return "earlyexit"
	case ClassDependence:
		return "dependence"
	case ClassImpure:
		return "impure"
	default:
		return "belowthreshold"
	}
}

// Reduction describes a recognized accumulator.
type Reduction struct {
	// Name is the accumulator variable's name.
	Name string
	// Type is the rendered accumulator type ("uint64", "float64", …).
	Type string
	// Kind is "sum" (+=, -=, ++, --, x = x + e — rewritable through
	// reduction.Sum) or "product" (recognized, reported, not rewritten).
	Kind string
}

// Loop is one classified candidate.
type Loop struct {
	// Stmt is the loop statement (*ast.ForStmt or *ast.RangeStmt).
	Stmt ast.Stmt
	// Func names the enclosing function ("MatMul", "(*Sys).Sweep").
	Func  string
	Class Class
	// Reason explains a rejection, or summarizes the opportunity.
	Reason string
	// Trip is the estimated (or exact, when constant) trip count.
	Trip int
	// TripExact reports whether Trip came from constant bounds.
	TripExact bool
	// BodyNs and TotalNs are the cost-model estimates.
	BodyNs  float64
	TotalNs float64
	// Sched is the suggested schedule expression ("pyjama.Static(0)" or
	// "pyjama.Auto()"). Set for accepted loops.
	Sched string
	// Red is non-nil for ClassReduction.
	Red *Reduction

	shape *loopShape
}

// Options configures an analysis run.
type Options struct {
	// Explain emits rejection findings (earlyexit/dependence/impurity/
	// belowthreshold) alongside opportunities. The default reports only
	// parallelizable loops, which keeps a repo-wide run readable.
	Explain bool
	// Table overrides the embedded probe table (nil = embedded).
	Table *ProbeTable
}

// Run loads the packages matched by patterns under moduleRoot and
// analyzes them, returning findings sorted by position.
func Run(moduleRoot string, patterns []string, opts Options) ([]report.Finding, error) {
	l, err := loader.New(moduleRoot)
	if err != nil {
		return nil, err
	}
	pkgs, err := l.Load(patterns...)
	if err != nil {
		return nil, err
	}
	var out []report.Finding
	for _, pkg := range pkgs {
		_, fs := AnalyzePackage(l, pkg, opts)
		out = append(out, fs...)
	}
	return out, nil
}

// AnalyzeSource analyzes an in-memory package (files: name → source)
// against the module at moduleRoot — the fixture/experiment entry point.
func AnalyzeSource(moduleRoot, importPath string, files map[string]string, opts Options) ([]Loop, []report.Finding, error) {
	l, err := loader.New(moduleRoot)
	if err != nil {
		return nil, nil, err
	}
	pkg, err := l.CheckSource(importPath, files)
	if err != nil {
		return nil, nil, err
	}
	loops, fs := AnalyzePackage(l, pkg, opts)
	return loops, fs, nil
}

// AnalyzePackage classifies every candidate loop in one loaded package
// and renders the findings. Loops come back in source order.
func AnalyzePackage(l *loader.Loader, pkg *loader.Package, opts Options) ([]Loop, []report.Finding) {
	a := newAnalyzer(l, pkg, opts)
	loops := a.analyzeAll()

	var out []report.Finding
	for i := range loops {
		lp := &loops[i]
		accepted := lp.Class == ClassParallel || lp.Class == ClassReduction
		if !accepted && !opts.Explain {
			continue
		}
		out = append(out, report.Finding{
			Tool:     "parcpar",
			Rule:     lp.Class.Rule(),
			Pos:      relPos(l, a.fset, lp.Stmt.Pos()),
			Severity: report.Warning,
			Detail:   lp.Reason,
		})
	}
	return loops, out
}

// newAnalyzer builds the per-package analysis state.
func newAnalyzer(l *loader.Loader, pkg *loader.Package, opts Options) *analyzer {
	table := opts.Table
	if table == nil {
		table = DefaultTable()
	}
	return &analyzer{
		l:      l,
		pkg:    pkg,
		info:   pkg.Info,
		fset:   l.Fset(),
		table:  table,
		purity: newPurity(l, pkg),
	}
}

// analyzeAll classifies every candidate loop in the package, in source
// order.
func (a *analyzer) analyzeAll() []Loop {
	var loops []Loop
	for _, f := range a.pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if a.usesParallelRuntime(fn) {
				continue // already-parallel code is parcvet's territory
			}
			loops = append(loops, a.classifyFunc(fn)...)
		}
	}
	sort.SliceStable(loops, func(i, j int) bool {
		return loops[i].Stmt.Pos() < loops[j].Stmt.Pos()
	})
	return loops
}

// relPos renders a module-relative "file:line:col", matching parcvet.
func relPos(l *loader.Loader, fset *token.FileSet, pos token.Pos) string {
	posn := fset.Position(pos)
	name := posn.Filename
	if rel, ok := strings.CutPrefix(name, l.ModuleRoot+"/"); ok {
		name = rel
	}
	return fmt.Sprintf("%s:%d:%d", name, posn.Line, posn.Column)
}

// funcName renders the function's display name, including a receiver.
func funcName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	var b strings.Builder
	b.WriteString("(")
	writeTypeExpr(&b, fn.Recv.List[0].Type)
	b.WriteString(").")
	b.WriteString(fn.Name.Name)
	return b.String()
}

func writeTypeExpr(b *strings.Builder, e ast.Expr) {
	switch e := e.(type) {
	case *ast.Ident:
		b.WriteString(e.Name)
	case *ast.StarExpr:
		b.WriteString("*")
		writeTypeExpr(b, e.X)
	case *ast.IndexExpr:
		writeTypeExpr(b, e.X)
	case *ast.IndexListExpr:
		writeTypeExpr(b, e.X)
	default:
		b.WriteString("?")
	}
}
