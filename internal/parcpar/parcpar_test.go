package parcpar

import (
	"path/filepath"
	"strings"
	"testing"

	"parc751/internal/parcvet/loader"
	"parc751/internal/parcvet/vettest"
)

func moduleRootOrSkip(t *testing.T) string {
	t.Helper()
	root, err := loader.FindModuleRoot(".")
	if err != nil {
		t.Skipf("no module root: %v", err)
	}
	return root
}

// TestGolden checks the fixture package in Explain mode against its
// `// want` comments through the shared vettest harness: all findings
// expected, all expectations found.
func TestGolden(t *testing.T) {
	root := moduleRootOrSkip(t)
	l, err := loader.New(root)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "internal", "parcpar", "testdata", "src", "parcpar")
	pkg, err := l.LoadDir(dir, "parcpartest/parcpar")
	if err != nil {
		t.Fatalf("loading fixture package: %v", err)
	}
	_, findings := AnalyzePackage(l, pkg, Options{Explain: true})
	vettest.CheckWants(t, l.Fset(), pkg.Files, findings)
}

// TestAutogenClassification pins the verdict for every loop in the
// autogen fixture kernels by enclosing function: the positives must be
// accepted (and rewritable), the negatives rejected for the planned
// reason.
func TestAutogenClassification(t *testing.T) {
	root := moduleRootOrSkip(t)
	l, err := loader.New(root)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "internal", "parcpar", "autogen", "seq")
	pkg, err := l.LoadDir(dir, "parc751/internal/parcpar/autogen/seq")
	if err != nil {
		t.Fatal(err)
	}
	loops, _ := AnalyzePackage(l, pkg, Options{Explain: true})

	want := map[string]Class{
		"MatMulFlat":      ClassParallel,
		"JacobiSweep":     ClassParallel,
		"Forces":          ClassParallel,
		"PageRankStep":    ClassParallel,
		"ComponentsSweep": ClassParallel,
		"SpinSum":         ClassReduction,
		"Dot":             ClassReduction,
		"maxNeighbor":     ClassDependence, // helper's own max loop is sequential
		"PrefixSum":       ClassDependence,
		"Shift":           ClassDependence,
		"SumUntilNeg":     ClassEarlyExit,
		"FindIndex":       ClassEarlyExit,
		"LogEach":         ClassImpure,
		"Scale3":          ClassBelowThreshold,
		"RunningMax":      ClassDependence,
		"Histogram":       ClassDependence,
	}
	got := map[string]Class{}
	for _, lp := range loops {
		if prev, dup := got[lp.Func]; dup && prev != lp.Class {
			t.Errorf("%s: loops with mixed classes %s and %s", lp.Func, prev, lp.Class)
		}
		got[lp.Func] = lp.Class
	}
	for fn, class := range want {
		if g, ok := got[fn]; !ok {
			t.Errorf("%s: no loop classified (want %s)", fn, class)
		} else if g != class {
			t.Errorf("%s: classified %s, want %s", fn, g, class)
		}
	}
	for fn := range got {
		if _, ok := want[fn]; !ok {
			t.Errorf("%s: unexpected candidate loop (classified %s)", fn, got[fn])
		}
	}

	// Every accepted positive must also be mechanically rewritable.
	for _, lp := range loops {
		if lp.Class == ClassParallel || lp.Class == ClassReduction {
			if !lp.Rewritable() {
				t.Errorf("%s: accepted but not rewritable", lp.Func)
			}
		}
	}
}

// TestRepoKernelsClassified asserts the analyzer finds the repo's own
// sequential kernels: every function the paper's ablations parallelize
// by hand must be flagged as an opportunity when analyzed cold.
func TestRepoKernelsClassified(t *testing.T) {
	root := moduleRootOrSkip(t)
	l, err := loader.New(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(filepath.Join(root, "internal", "kernels"), "parc751/internal/kernels")
	if err != nil {
		t.Fatal(err)
	}
	loops, _ := AnalyzePackage(l, pkg, Options{})

	accepted := map[string]bool{}
	for _, lp := range loops {
		if lp.Class == ClassParallel || lp.Class == ClassReduction {
			accepted[lp.Func] = true
		}
	}
	for _, fn := range []string{
		"MatMulSequential",                    // row-view outer loop
		"(*MDSystem).ComputeForcesSequential", // pure-callee field-disjoint writes
		"(*MDSystem).KineticEnergy",           // float sum reduction
		"(*MDSystem).PotentialEnergy",         // float sum reduction
	} {
		if !accepted[fn] {
			t.Errorf("expected %s to be flagged parallelizable; accepted set: %v", fn, accepted)
		}
	}
}

// TestFindingsContract checks the report-level surface: default mode
// emits only parallelizable findings, Explain adds the rejection rules,
// and everything is a warning (repo-wide runs exit 0).
func TestFindingsContract(t *testing.T) {
	root := moduleRootOrSkip(t)
	fsDefault, err := Run(root, []string{"./internal/parcpar/autogen/seq"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fsDefault {
		if f.Rule != "parallelizable" {
			t.Errorf("default mode leaked rule %q: %+v", f.Rule, f)
		}
		if f.Severity.String() != "warning" {
			t.Errorf("parcpar finding with severity %v, want warning", f.Severity)
		}
		if f.Tool != "parcpar" {
			t.Errorf("finding tool %q, want parcpar", f.Tool)
		}
		if !strings.HasPrefix(f.Pos, "internal/parcpar/autogen/seq/") {
			t.Errorf("position %q is not module-relative", f.Pos)
		}
	}
	fsExplain, err := Run(root, []string{"./internal/parcpar/autogen/seq"}, Options{Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(fsExplain) <= len(fsDefault) {
		t.Errorf("Explain mode should add rejection findings: %d vs %d", len(fsExplain), len(fsDefault))
	}
}

// TestDefaultTable sanity-checks the embedded probe table.
func TestDefaultTable(t *testing.T) {
	tab := DefaultTable()
	if tab.ForkJoinNs <= 0 || tab.WorthFactor <= 0 || tab.DefaultTrip <= 0 {
		t.Fatalf("embedded table has non-positive core fields: %+v", tab)
	}
	for _, class := range []string{"int_arith", "float_arith", "mem_index", "branch", "call_pure", "stmt"} {
		if tab.OpNs[class] <= 0 {
			t.Errorf("op class %q missing or non-positive in embedded table", class)
		}
	}
	if !strings.Contains(tab.Provenance, "BENCH_7.json") {
		t.Errorf("provenance lost its measurement source: %q", tab.Provenance)
	}
}
