package parcpar

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"parc751/internal/parcvet/cfg"
	"parc751/internal/parcvet/loader"
)

// analyzer carries one package's worth of analysis state.
type analyzer struct {
	l      *loader.Loader
	pkg    *loader.Package
	info   *types.Info
	fset   *token.FileSet
	table  *ProbeTable
	purity *purityChecker
	graph  *cfg.Graph // CFG of the function currently being classified
	// costMemo caches per-callee body costs for the cost model.
	costMemo map[*types.Func]float64
}

// parallelPkgs are the runtime packages whose presence marks a function
// as already parallel-aware — those loops are orchestration, not
// opportunity, and belong to parcvet.
var parallelPkgs = map[string]bool{
	"parc751/internal/pyjama":    true,
	"parc751/internal/ptask":     true,
	"parc751/internal/sched":     true,
	"parc751/internal/core":      true,
	"parc751/internal/eventloop": true,
	"sync":                       true,
	"sync/atomic":                true,
}

func (a *analyzer) usesParallelRuntime(fn *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		if pn, ok := a.info.Uses[id].(*types.PkgName); ok && parallelPkgs[pn.Imported().Path()] {
			found = true
		}
		return true
	})
	return found
}

// classifyFunc classifies the candidate loops of one function,
// outermost-first: an accepted loop swallows its nested loops (the
// standard parallelize-outermost rule); a rejected or non-canonical one
// exposes its children as candidates of their own.
func (a *analyzer) classifyFunc(fn *ast.FuncDecl) []Loop {
	a.graph = cfg.New(fn.Body)
	name := funcName(fn)
	var out []Loop
	var walk func(stmts []ast.Stmt)
	classify := func(s ast.Stmt, body *ast.BlockStmt) {
		lp, ok := a.classifyLoop(fn, s)
		if ok {
			lp.Func = name
			out = append(out, lp)
			if lp.Class == ClassParallel || lp.Class == ClassReduction {
				return // don't surface nested candidates of an accepted loop
			}
		}
		walk(body.List)
	}
	var walkStmt func(s ast.Stmt)
	walkStmt = func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.ForStmt:
			classify(s, s.Body)
		case *ast.RangeStmt:
			classify(s, s.Body)
		case *ast.BlockStmt:
			walk(s.List)
		case *ast.IfStmt:
			walkStmt(s.Body)
			if s.Else != nil {
				walkStmt(s.Else)
			}
		case *ast.SwitchStmt:
			walk(s.Body.List)
		case *ast.TypeSwitchStmt:
			walk(s.Body.List)
		case *ast.SelectStmt:
			walk(s.Body.List)
		case *ast.CaseClause:
			walk(s.Body)
		case *ast.CommClause:
			walk(s.Body)
		case *ast.LabeledStmt:
			walkStmt(s.Stmt)
		}
		// FuncLits are deliberately not descended into: a loop inside a
		// closure runs in whatever context the closure runs in.
	}
	walk = func(stmts []ast.Stmt) {
		for _, s := range stmts {
			walkStmt(s)
		}
	}
	walk(fn.Body.List)
	return out
}

// loopShape is the canonical form of a candidate loop.
type loopShape struct {
	isRange bool
	// index is the iteration variable: the 3-clause loop var, or the
	// range key. nil for `for _, v := range xs` (valueOnly).
	index    *ast.Ident
	indexObj types.Object
	// lo/hi bound the 3-clause form `for i := lo; i < hi; i++`.
	lo, hi ast.Expr
	// loZero reports lo is the constant 0.
	loZero bool
	// rangeX / value describe `for i, v := range xs` over a slice/array.
	rangeX   ast.Expr
	value    *ast.Ident
	valueObj types.Object
	body     *ast.BlockStmt
	// tripConst is hi-lo (or the ranged array length) when known at
	// compile time; 0 otherwise.
	tripConst int
}

// canonicalize extracts the canonical form, or returns false for loops
// outside the model (while-style, downward, non-slice ranges, `i = lo`
// reusing an outer variable). Non-canonical loops are skipped silently —
// they are not "rejected", they were never candidates.
func (a *analyzer) canonicalize(s ast.Stmt) (*loopShape, bool) {
	switch s := s.(type) {
	case *ast.ForStmt:
		sh := &loopShape{body: s.Body}
		init, ok := s.Init.(*ast.AssignStmt)
		if !ok || init.Tok != token.DEFINE || len(init.Lhs) != 1 || len(init.Rhs) != 1 {
			return nil, false
		}
		idx, ok := init.Lhs[0].(*ast.Ident)
		if !ok || idx.Name == "_" {
			return nil, false
		}
		sh.index = idx
		sh.indexObj = a.info.Defs[idx]
		sh.lo = init.Rhs[0]
		cond, ok := s.Cond.(*ast.BinaryExpr)
		if !ok || cond.Op != token.LSS {
			return nil, false
		}
		if ci, ok := cond.X.(*ast.Ident); !ok || a.info.Uses[ci] != sh.indexObj {
			return nil, false
		}
		sh.hi = cond.Y
		switch post := s.Post.(type) {
		case *ast.IncDecStmt:
			pi, ok := post.X.(*ast.Ident)
			if !ok || post.Tok != token.INC || a.info.Uses[pi] != sh.indexObj {
				return nil, false
			}
		case *ast.AssignStmt:
			if post.Tok != token.ADD_ASSIGN || len(post.Lhs) != 1 || len(post.Rhs) != 1 {
				return nil, false
			}
			pi, ok := post.Lhs[0].(*ast.Ident)
			if !ok || a.info.Uses[pi] != sh.indexObj || !a.isConstInt(post.Rhs[0], 1) {
				return nil, false
			}
		default:
			return nil, false
		}
		// The bound must be loop-invariant: free of the index and of
		// anything the body writes (checked cheaply: hi mentions no ident
		// assigned anywhere in the body).
		if a.mentionsObj(sh.hi, sh.indexObj) || a.mentionsBodyWrite(sh.hi, sh.body) {
			return nil, false
		}
		sh.loZero = a.isConstInt(sh.lo, 0)
		if lo, okLo := a.constIntValue(sh.lo); okLo {
			if hi, okHi := a.constIntValue(sh.hi); okHi && hi > lo {
				sh.tripConst = hi - lo
			}
		}
		return sh, true

	case *ast.RangeStmt:
		sh := &loopShape{isRange: true, body: s.Body, rangeX: s.X}
		t := a.info.TypeOf(s.X)
		if t == nil {
			return nil, false
		}
		switch u := t.Underlying().(type) {
		case *types.Slice:
		case *types.Array:
			sh.tripConst = int(u.Len())
		case *types.Pointer:
			if _, ok := u.Elem().Underlying().(*types.Array); !ok {
				return nil, false
			}
		default:
			return nil, false // maps/channels/strings/ints are out of model
		}
		if s.Tok != token.DEFINE && s.Key != nil {
			return nil, false // `for i = range xs` reuses an outer variable
		}
		if s.Key != nil {
			ki, ok := s.Key.(*ast.Ident)
			if !ok {
				return nil, false
			}
			if ki.Name != "_" {
				sh.index = ki
				sh.indexObj = a.info.Defs[ki]
			}
		}
		if s.Value != nil {
			vi, ok := s.Value.(*ast.Ident)
			if !ok {
				return nil, false
			}
			if vi.Name != "_" {
				sh.value = vi
				sh.valueObj = a.info.Defs[vi]
			}
		}
		// The ranged expression must be loop-invariant w.r.t. the body.
		if a.mentionsBodyWrite(s.X, sh.body) {
			return nil, false
		}
		sh.loZero = true
		return sh, true
	}
	return nil, false
}

// isConstInt reports whether e is the integer constant v.
func (a *analyzer) isConstInt(e ast.Expr, v int) bool {
	got, ok := a.constIntValue(e)
	return ok && got == v
}

// constIntValue evaluates e as a compile-time integer constant.
func (a *analyzer) constIntValue(e ast.Expr) (int, bool) {
	tv, ok := a.info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	v, exact := constant.Int64Val(tv.Value)
	if !exact {
		return 0, false
	}
	return int(v), true
}

// mentionsObj reports whether e references obj.
func (a *analyzer) mentionsObj(e ast.Expr, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && a.info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// mentionsBodyWrite reports whether e references any variable assigned
// inside body — i.e. whether e is not loop-invariant.
func (a *analyzer) mentionsBodyWrite(e ast.Expr, body *ast.BlockStmt) bool {
	written := map[types.Object]bool{}
	record := func(lhs ast.Expr) {
		if id, ok := lhs.(*ast.Ident); ok {
			if obj := a.objOf(id); obj != nil {
				written[obj] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				record(lhs)
			}
		case *ast.IncDecStmt:
			record(n.X)
		}
		return true
	})
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := a.info.Uses[id]; obj != nil && written[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// objOf resolves an identifier's object through either map.
func (a *analyzer) objOf(id *ast.Ident) types.Object {
	if obj := a.info.Uses[id]; obj != nil {
		return obj
	}
	return a.info.Defs[id]
}

// within reports whether pos lies in [node.Pos(), node.End()].
func within(pos token.Pos, node ast.Node) bool {
	return pos >= node.Pos() && pos <= node.End()
}

// declaredWithin reports whether obj is declared inside node's span —
// the locality test separating private per-iteration state from shared.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj != nil && obj.Pos() != token.NoPos && within(obj.Pos(), node)
}
