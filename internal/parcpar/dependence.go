package parcpar

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// classifyLoop runs one candidate through the pipeline:
//
//	canonical form → construct scan → early exits (CFG) →
//	write/dependence analysis → call purity → cost model.
//
// The second return is false when the loop is not a candidate at all
// (non-canonical shape) — that is a skip, not a rejection.
func (a *analyzer) classifyLoop(fn *ast.FuncDecl, s ast.Stmt) (Loop, bool) {
	sh, ok := a.canonicalize(s)
	if !ok {
		return Loop{}, false
	}
	lp := Loop{Stmt: s, shape: sh}

	if reason, bad := a.scanConstructs(sh); bad {
		lp.Class = ClassImpure
		lp.Reason = "impurity: " + reason
		return lp, true
	}
	if reason, exits := a.earlyExit(sh, s); exits {
		lp.Class = ClassEarlyExit
		lp.Reason = "early exit: " + reason + " — trip count is data-dependent"
		return lp, true
	}
	red, mems, reason, dep := a.checkWrites(sh, s)
	if dep {
		lp.Class = ClassDependence
		lp.Reason = "loop-carried dependence: " + reason
		return lp, true
	}
	if reason, impure := a.checkCalls(sh); impure {
		lp.Class = ClassImpure
		lp.Reason = "impurity: " + reason
		return lp, true
	}
	if reason, dep := a.checkCallAliasing(sh, mems); dep {
		lp.Class = ClassDependence
		lp.Reason = "loop-carried dependence: " + reason
		return lp, true
	}

	trip, exact, bodyNs, sched := a.estimate(sh)
	lp.Trip, lp.TripExact, lp.BodyNs = trip, exact, bodyNs
	lp.TotalNs = float64(trip) * bodyNs
	lp.Sched = sched
	threshold := a.table.ForkJoinNs * a.table.WorthFactor
	if lp.TotalNs < threshold {
		lp.Class = ClassBelowThreshold
		lp.Reason = fmt.Sprintf("parallelizable but below cost threshold (est %d iter × %.1f ns/iter = %.0f ns < %.0f ns); not worth forking", trip, bodyNs, lp.TotalNs, threshold)
		return lp, true
	}
	if red != nil {
		lp.Class = ClassReduction
		lp.Red = red
		lp.Reason = fmt.Sprintf("loop is a parallelizable %s reduction over %s (accumulator %q); suggest pyjama.ParallelForReduce with %s (est %d iter × %.1f ns/iter = %.0f ns ≥ %.0f ns threshold)",
			red.Kind, red.Type, red.Name, sched, trip, bodyNs, lp.TotalNs, threshold)
	} else {
		lp.Class = ClassParallel
		lp.Reason = fmt.Sprintf("loop is parallelizable; suggest pyjama.ParallelFor with %s (est %d iter × %.1f ns/iter = %.0f ns ≥ %.0f ns threshold)",
			sched, trip, bodyNs, lp.TotalNs, threshold)
	}
	return lp, true
}

// scanConstructs rejects bodies using constructs outside the SPMD model:
// goroutines, defers, channel operations, selects, and closures (a loop
// inside a closure runs in an unknown context; a closure inside a loop
// may capture and escape per-iteration state).
func (a *analyzer) scanConstructs(sh *loopShape) (string, bool) {
	var reason string
	ast.Inspect(sh.body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			reason = "go statement in body"
		case *ast.DeferStmt:
			reason = "defer in body"
		case *ast.SendStmt:
			reason = "channel send in body"
		case *ast.SelectStmt:
			reason = "select in body"
		case *ast.FuncLit:
			reason = "function literal in body"
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				reason = "channel receive in body"
			}
		}
		return reason == ""
	})
	return reason, reason != ""
}

// earlyExit asks the function CFG whether any transfer statement inside
// the loop body leaves the loop: a successor that is the function exit
// or a statement outside the loop's span means the trip count is
// data-dependent (break, return, goto out, panic). Transfers that stay
// inside the span (continue, a nested loop's break, a switch break) are
// fine — the satellite-1 labeled-edge modeling makes these precise.
func (a *analyzer) earlyExit(sh *loopShape, loop ast.Stmt) (string, bool) {
	var reason string
	ast.Inspect(sh.body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		stmt, ok := n.(ast.Stmt)
		if !ok {
			return true
		}
		switch s := stmt.(type) {
		case *ast.ReturnStmt, *ast.BranchStmt:
		case *ast.ExprStmt:
			// panic/os.Exit nodes edge to Exit; anything else is linear.
			if node := a.graph.NodeFor(s); node != nil {
				for _, succ := range node.Succs {
					if succ.Stmt == nil {
						reason = "panic in body"
						return false
					}
				}
			}
			return true
		default:
			return true
		}
		node := a.graph.NodeFor(stmt)
		if node == nil {
			reason = "unmodelled control transfer"
			return false
		}
		for _, succ := range node.Succs {
			if succ.Stmt == nil {
				reason = describeTransfer(stmt) + " leaves the function"
				return false
			}
			if !within(succ.Stmt.Pos(), loop) {
				reason = describeTransfer(stmt) + " leaves the loop"
				return false
			}
		}
		return true
	})
	return reason, reason != ""
}

func describeTransfer(s ast.Stmt) string {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		return "return"
	case *ast.BranchStmt:
		if s.Label != nil {
			return s.Tok.String() + " " + s.Label.Name
		}
		return s.Tok.String()
	default:
		return "transfer"
	}
}

// localKind classifies a body-local variable's relationship to shared
// memory.
type localKind int

const (
	localPrivate localKind = iota // fresh per-iteration storage or a value copy
	localRowView                  // an allowlisted iteration-distinct view (Matrix.Row(i))
	localAlias                    // pointer-shaped local aliasing outer memory
)

// writeSite is one write to a shared array.
type writeSite struct {
	base  string // exprString of the indexed base
	index ast.Expr
}

// writtenMem records one piece of shared memory the loop writes, for
// the call-aliasing check: the root object of the written chain, the
// field the chain goes through (empty for a plain slice), and — for
// row-view writes — the accessor call that is exempt from the check.
type writtenMem struct {
	root   types.Object
	field  string
	exempt *ast.CallExpr
}

// checkWrites is the dependence core: every write in the body must be
// provably private to one iteration, an iteration-distinct slot of a
// shared slice, or a recognized reduction update of a single shared
// scalar accumulator.
func (a *analyzer) checkWrites(sh *loopShape, loop ast.Stmt) (*Reduction, []writtenMem, string, bool) {
	locals, rowInits := a.classifyLocals(sh)

	type scalarWrite struct {
		obj   types.Object
		stmts []ast.Stmt
	}
	var sharedScalars []*scalarWrite
	recordScalar := func(obj types.Object, stmt ast.Stmt) {
		for _, sw := range sharedScalars {
			if sw.obj == obj {
				sw.stmts = append(sw.stmts, stmt)
				return
			}
		}
		sharedScalars = append(sharedScalars, &scalarWrite{obj: obj, stmts: []ast.Stmt{stmt}})
	}

	writesByBase := map[string][]writeSite{}
	var mems []writtenMem
	memSeen := map[string]bool{}
	recordMem := func(m writtenMem, key string) {
		if !memSeen[key] {
			memSeen[key] = true
			mems = append(mems, m)
		}
	}
	var reason string
	fail := func(r string) { reason = r }

	// classifyTarget dispatches one write-target expression.
	var classifyTarget func(lhs ast.Expr, stmt ast.Stmt)
	classifyTarget = func(lhs ast.Expr, stmt ast.Stmt) {
		if reason != "" {
			return
		}
		switch lhs := lhs.(type) {
		case *ast.Ident:
			if lhs.Name == "_" {
				return
			}
			obj := a.objOf(lhs)
			if obj == nil {
				fail(fmt.Sprintf("write to unresolved %q", lhs.Name))
				return
			}
			if obj == sh.indexObj {
				fail(fmt.Sprintf("loop index %q is mutated in the body", lhs.Name))
				return
			}
			if obj == sh.valueObj {
				return // writing the range value copy is iteration-private
			}
			if declaredWithin(obj, sh.body) {
				return // body-local: fresh storage each iteration
			}
			recordScalar(obj, stmt)
		case *ast.IndexExpr:
			base, idx := lhs.X, lhs.Index
			baseStr, simple := a.simpleExpr(base)
			if !simple {
				fail(fmt.Sprintf("write through compound expression %q", a.exprString(base)))
				return
			}
			root := a.rootIdentObj(base)
			if root == nil {
				fail(fmt.Sprintf("write through unresolved base %q", baseStr))
				return
			}
			if t := a.info.TypeOf(base); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					fail(fmt.Sprintf("write to map %q", baseStr))
					return
				}
			}
			if declaredWithin(root, sh.body) {
				switch locals[root] {
				case localPrivate:
					return
				case localRowView:
					// Writes stay inside this iteration's row, but other
					// calls receiving the view's owner could still read it.
					init := rowInits[root]
					if owner := a.rootIdentObj(init.Fun); owner != nil {
						recordMem(writtenMem{root: owner, exempt: init}, "view:"+owner.Name())
					}
					return
				default:
					fail(fmt.Sprintf("write through %q, a local alias of shared memory", baseStr))
					return
				}
			}
			if root == sh.valueObj {
				// Range value of pointer-shaped element type: writes reach
				// shared backing memory through an unprovable alias.
				fail(fmt.Sprintf("write through range element %q aliases the ranged data", baseStr))
				return
			}
			if _, ok := a.injectiveIndex(idx, sh, loop); !ok {
				fail(fmt.Sprintf("cannot prove iteration-distinct write slots for %s[%s]", baseStr, a.exprString(idx)))
				return
			}
			writesByBase[baseStr] = append(writesByBase[baseStr], writeSite{base: baseStr, index: idx})
			field := ""
			if dot := strings.LastIndex(baseStr, "."); dot >= 0 {
				field = baseStr[dot+1:]
			}
			recordMem(writtenMem{root: root, field: field}, "slot:"+baseStr)
		case *ast.SelectorExpr:
			root := a.rootIdentObj(lhs)
			if root != nil && (declaredWithin(root, sh.body) && locals[root] == localPrivate || root == sh.valueObj) {
				return // field of a private value copy
			}
			fail(fmt.Sprintf("write to shared field %q", a.exprString(lhs)))
		case *ast.StarExpr:
			fail(fmt.Sprintf("write through pointer %q", a.exprString(lhs)))
		case *ast.ParenExpr:
			classifyTarget(lhs.X, stmt)
		default:
			fail(fmt.Sprintf("unmodelled write target %q", a.exprString(lhs)))
		}
	}

	ast.Inspect(sh.body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				classifyTarget(lhs, n)
			}
		case *ast.IncDecStmt:
			classifyTarget(n.X, n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				// Taking an address creates an untracked alias.
				if root := a.rootIdentObj(n.X); root != nil && !declaredWithin(root, sh.body) {
					fail(fmt.Sprintf("address of shared %q taken in body", a.exprString(n.X)))
				}
			}
		}
		return reason == ""
	})
	if reason != "" {
		return nil, nil, reason, true
	}

	// Cross-iteration read/write aliasing: every read of a written base
	// must land on one of that base's (injective) write index shapes, so
	// an iteration only ever touches its own slots.
	for base, writes := range writesByBase {
		wshapes := map[string]bool{}
		for _, w := range writes {
			wshapes[a.exprString(w.index)] = true
		}
		bad := ""
		ast.Inspect(sh.body, func(n ast.Node) bool {
			if bad != "" {
				return false
			}
			ie, ok := n.(*ast.IndexExpr)
			if !ok {
				return true
			}
			if bs, _ := a.simpleExpr(ie.X); bs != base {
				return true
			}
			if !wshapes[a.exprString(ie.Index)] {
				bad = a.exprString(ie.Index)
			}
			return bad == ""
		})
		if bad != "" {
			return nil, nil, fmt.Sprintf("read of %s[%s] may alias another iteration's write to %s", base, bad, base), true
		}
	}

	// Shared scalars: exactly one reduction accumulator is in the model;
	// anything else is a carried dependence.
	if len(sharedScalars) == 0 {
		return nil, mems, "", false
	}
	if len(sharedScalars) > 1 {
		names := make([]string, len(sharedScalars))
		for i, sw := range sharedScalars {
			names[i] = fmt.Sprintf("%q", sw.obj.Name())
		}
		return nil, nil, fmt.Sprintf("multiple shared scalars written each iteration (%s)", strings.Join(names, ", ")), true
	}
	sw := sharedScalars[0]
	red, why := a.recognizeReduction(sw.obj, sw.stmts, sh)
	if red == nil {
		return nil, nil, fmt.Sprintf("shared scalar %q: %s", sw.obj.Name(), why), true
	}
	return red, mems, "", false
}

// checkCallAliasing closes the caller/callee gap the write analysis
// alone leaves open: the body may write s.Force[i] and call s.forceOn(i)
// — safe only if the callee never reads Force. For every written shared
// memory, any call whose receiver or arguments reach the written root is
// rejected unless the write went through a field and the callee's
// transitive field-read set provably excludes that field. Row-view
// accessor calls themselves are exempt (they are how the view exists).
func (a *analyzer) checkCallAliasing(sh *loopShape, mems []writtenMem) (string, bool) {
	if len(mems) == 0 {
		return "", false
	}
	var reason string
	ast.Inspect(sh.body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, m := range mems {
			if m.exempt == call {
				return true
			}
		}
		if tv, ok := a.info.Types[call.Fun]; ok && tv.IsType() {
			return true // conversions carry values, not aliases
		}
		// Root objects the call can reach: the receiver chain and every
		// argument chain.
		var roots []types.Object
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			if r := a.rootIdentObj(sel.X); r != nil {
				roots = append(roots, r)
			}
		}
		for _, arg := range call.Args {
			if r := a.rootIdentObj(arg); r != nil {
				roots = append(roots, r)
			}
		}
		for _, m := range mems {
			for _, r := range roots {
				if r != m.root {
					continue
				}
				if m.field == "" {
					reason = fmt.Sprintf("written %q is passed to %s, which may read another iteration's slot", m.root.Name(), a.exprString(call.Fun))
					return false
				}
				callee := a.calleeFunc(call)
				if callee == nil || a.purity.readsField(callee, m.field) {
					reason = fmt.Sprintf("%s receives %q while the loop writes its %q field", a.exprString(call.Fun), m.root.Name(), m.field)
					return false
				}
			}
		}
		return true
	})
	return reason, reason != ""
}

// calleeFunc resolves a call's target function object, if static.
func (a *analyzer) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := a.info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := a.info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// classifyLocals assigns a localKind to every pointer-shaped variable
// declared in the body, from its initializer: fresh allocations are
// private, allowlisted row accessors are iteration-distinct views, and
// anything else pointer-shaped is a taint-carrying alias.
func (a *analyzer) classifyLocals(sh *loopShape) (map[types.Object]localKind, map[types.Object]*ast.CallExpr) {
	out := map[types.Object]localKind{}
	rowInits := map[types.Object]*ast.CallExpr{}
	classifyInit := func(obj types.Object, rhs ast.Expr) {
		if obj == nil {
			return
		}
		if !pointerShaped(obj.Type()) {
			out[obj] = localPrivate // value copy
			return
		}
		switch rhs := rhs.(type) {
		case nil:
			out[obj] = localPrivate // var x []T — nil until locally grown
		case *ast.CallExpr:
			if id, ok := rhs.Fun.(*ast.Ident); ok {
				if b, isB := a.info.Uses[id].(*types.Builtin); isB && (b.Name() == "make" || b.Name() == "new" || b.Name() == "append") {
					out[obj] = localPrivate
					return
				}
			}
			if a.isRowViewCall(rhs, sh) {
				out[obj] = localRowView
				rowInits[obj] = rhs
				return
			}
			out[obj] = localAlias
		case *ast.CompositeLit:
			out[obj] = localPrivate
		case *ast.UnaryExpr:
			if rhs.Op == token.AND {
				if _, isLit := rhs.X.(*ast.CompositeLit); isLit {
					out[obj] = localPrivate
					return
				}
			}
			out[obj] = localAlias
		default:
			out[obj] = localAlias
		}
	}
	ast.Inspect(sh.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := a.info.Defs[id]
				if obj == nil || !declaredWithin(obj, sh.body) {
					continue
				}
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				classifyInit(obj, rhs)
			}
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						obj := a.info.Defs[name]
						var rhs ast.Expr
						if i < len(vs.Values) {
							rhs = vs.Values[i]
						}
						classifyInit(obj, rhs)
					}
				}
			}
		case *ast.RangeStmt:
			// Nested range key/value vars are fresh per inner iteration.
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
					if obj := a.info.Defs[id]; obj != nil {
						if pointerShaped(obj.Type()) {
							out[obj] = localAlias // range value aliasing elements
						} else {
							out[obj] = localPrivate
						}
					}
				}
			}
		}
		return true
	})
	return out, rowInits
}

// rowViewAllowlist names module accessors returning iteration-disjoint
// views when called with the loop index — seeded, like parcvet's
// apimatch tables, from the module's own APIs.
var rowViewAllowlist = map[string]bool{
	"parc751/internal/kernels.Matrix.Row": true,
}

// isRowViewCall matches `m.Row(i)`-style calls from the allowlist whose
// sole argument is exactly the loop index.
func (a *analyzer) isRowViewCall(call *ast.CallExpr, sh *loopShape) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) != 1 {
		return false
	}
	arg, ok := call.Args[0].(*ast.Ident)
	if !ok || sh.indexObj == nil || a.info.Uses[arg] != sh.indexObj {
		return false
	}
	fn, ok := a.info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	return rowViewAllowlist[fn.Pkg().Path()+"."+recvTypeName(recv.Type())+"."+fn.Name()]
}

func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// pointerShaped reports whether values of t share backing memory when
// copied (slices, pointers, maps — the alias carriers).
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Pointer, *types.Map, *types.Chan, *types.Interface:
		return true
	}
	return false
}

// injectiveIndex reports whether idx provably hits a different slot in
// every iteration of the candidate loop: the loop index itself, the
// index ± a loop-invariant constant, or the row-major delinearized form
// i*S + j where j is an inner canonical loop over [0, S).
func (a *analyzer) injectiveIndex(idx ast.Expr, sh *loopShape, loop ast.Stmt) (string, bool) {
	idx = unparen(idx)
	if sh.indexObj == nil {
		return "", false
	}
	if id, ok := idx.(*ast.Ident); ok {
		if a.info.Uses[id] == sh.indexObj {
			return "i", true
		}
		return "", false
	}
	be, ok := idx.(*ast.BinaryExpr)
	if !ok {
		return "", false
	}
	switch be.Op {
	case token.ADD, token.SUB:
		// i ± c with c a compile-time constant.
		if id, ok := unparen(be.X).(*ast.Ident); ok && a.info.Uses[id] == sh.indexObj {
			if _, isConst := a.constIntValue(be.Y); isConst {
				return "i±c", true
			}
		}
		if be.Op == token.ADD {
			if id, ok := unparen(be.Y).(*ast.Ident); ok && a.info.Uses[id] == sh.indexObj {
				if _, isConst := a.constIntValue(be.X); isConst {
					return "i±c", true
				}
			}
			// Delinearized i*S + j (either operand order).
			if a.isDelinearized(be.X, be.Y, sh, loop) || a.isDelinearized(be.Y, be.X, sh, loop) {
				return "i*S+j", true
			}
		}
	}
	return "", false
}

// isDelinearized matches mul = i*S (or S*i) and rest = j, where j is
// the index of an inner canonical loop `for j := 0; j < S'; j++` with
// S' textually identical to S — the row-major proof that i*S+j is
// injective over the (i, j) iteration space.
func (a *analyzer) isDelinearized(mul, rest ast.Expr, sh *loopShape, loop ast.Stmt) bool {
	me, ok := unparen(mul).(*ast.BinaryExpr)
	if !ok || me.Op != token.MUL {
		return false
	}
	var stride ast.Expr
	if id, ok := unparen(me.X).(*ast.Ident); ok && a.info.Uses[id] == sh.indexObj {
		stride = me.Y
	} else if id, ok := unparen(me.Y).(*ast.Ident); ok && a.info.Uses[id] == sh.indexObj {
		stride = me.X
	} else {
		return false
	}
	jIdent, ok := unparen(rest).(*ast.Ident)
	if !ok {
		return false
	}
	jObj := a.info.Uses[jIdent]
	if jObj == nil {
		return false
	}
	strideStr := a.exprString(stride)
	// Find the inner canonical loop binding j with bound == stride.
	found := false
	ast.Inspect(sh.body, func(n ast.Node) bool {
		if found {
			return false
		}
		fs, ok := n.(*ast.ForStmt)
		if !ok {
			return true
		}
		inner, okc := a.canonicalize(fs)
		if !okc || inner.indexObj != jObj || !inner.loZero {
			return true
		}
		if a.exprString(inner.hi) == strideStr {
			found = true
		}
		return !found
	})
	return found
}

// recognizeReduction checks that every write to acc is a sum-class or
// product-class update and that acc is not otherwise read in the body.
func (a *analyzer) recognizeReduction(acc types.Object, writes []ast.Stmt, sh *loopShape) (*Reduction, string) {
	basic, ok := acc.Type().Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsNumeric == 0 {
		return nil, "written each iteration and not a numeric accumulator"
	}
	kind := ""
	merge := func(k string) bool {
		if kind == "" || kind == k {
			kind = k
			return true
		}
		return false
	}
	for _, w := range writes {
		k, okw := a.reductionKind(acc, w)
		if !okw {
			return nil, "written each iteration in a form that is not a recognized reduction update"
		}
		if !merge(k) {
			return nil, "mixed sum and product updates"
		}
	}
	// Reads outside the update statements re-observe a stale accumulator.
	inUpdate := func(pos token.Pos) bool {
		for _, w := range writes {
			if within(pos, w) {
				return true
			}
		}
		return false
	}
	bad := false
	ast.Inspect(sh.body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && a.info.Uses[id] == acc && !inUpdate(id.Pos()) {
			bad = true
		}
		return !bad
	})
	if bad {
		return nil, "read outside its own reduction updates"
	}
	return &Reduction{Name: acc.Name(), Type: acc.Type().String(), Kind: kind}, ""
}

// reductionKind classifies one update statement of acc.
func (a *analyzer) reductionKind(acc types.Object, s ast.Stmt) (string, bool) {
	mentionsAcc := func(e ast.Expr) bool { return a.mentionsObj(e, acc) }
	switch s := s.(type) {
	case *ast.IncDecStmt:
		return "sum", true
	case *ast.AssignStmt:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return "", false
		}
		rhs := s.Rhs[0]
		switch s.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN:
			return "sum", !mentionsAcc(rhs)
		case token.MUL_ASSIGN:
			return "product", !mentionsAcc(rhs)
		case token.ASSIGN:
			be, ok := unparen(rhs).(*ast.BinaryExpr)
			if !ok {
				return "", false
			}
			var kind string
			switch be.Op {
			case token.ADD:
				kind = "sum"
			case token.MUL:
				kind = "product"
			default:
				return "", false
			}
			x, y := unparen(be.X), unparen(be.Y)
			if id, isID := x.(*ast.Ident); isID && a.info.Uses[id] == acc && !mentionsAcc(y) {
				return kind, true
			}
			if id, isID := y.(*ast.Ident); isID && a.info.Uses[id] == acc && !mentionsAcc(x) {
				return kind, true
			}
		}
	}
	return "", false
}

// simpleExpr renders base when it is an ident or a selector chain of
// idents — the only base forms the array-identity model tracks.
func (a *analyzer) simpleExpr(e ast.Expr) (string, bool) {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.SelectorExpr:
		if base, ok := a.simpleExpr(e.X); ok {
			return base + "." + e.Sel.Name, true
		}
	case *ast.IndexExpr:
		// xs[v][u]-style nested bases: identify by full text; the outer
		// index becomes part of the identity, and the write-index rules
		// still apply to the innermost index.
		if base, ok := a.simpleExpr(e.X); ok {
			return base + "[" + a.exprString(e.Index) + "]", true
		}
	}
	return "", false
}

// rootIdentObj finds the root identifier's object of an lvalue chain.
func (a *analyzer) rootIdentObj(e ast.Expr) types.Object {
	for {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			return a.objOf(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// exprString renders an expression for shape comparison and messages.
func (a *analyzer) exprString(e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, a.fset, e); err != nil {
		return "?"
	}
	return buf.String()
}
