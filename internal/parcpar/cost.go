package parcpar

import (
	_ "embed"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sync"
)

// ProbeTable is the committed cost model: per-operation-class costs in
// nanoseconds plus the fork-join overhead of one pyjama parallel region,
// calibrated the same way pyjama's schedule(auto) calibrates — from
// measured probes, committed so analysis is deterministic across hosts.
// -calibrate regenerates a host-local table from live probes.
type ProbeTable struct {
	// Schema versions the table format.
	Schema string `json:"schema"`
	// Provenance records where ForkJoinNs came from.
	Provenance string `json:"provenance"`
	// ForkJoinNs is the measured cost of one empty pyjama.ParallelFor
	// region (fork + barrier + join).
	ForkJoinNs float64 `json:"fork_join_ns"`
	// WorthFactor scales ForkJoinNs into the accept threshold: a loop
	// must cost at least WorthFactor × ForkJoinNs sequentially before
	// parallelizing it can pay.
	WorthFactor float64 `json:"worth_factor"`
	// DefaultTrip is the assumed trip count when bounds are not
	// compile-time constants.
	DefaultTrip int `json:"default_trip"`
	// OpNs maps operation classes to per-op costs: int_arith,
	// float_arith, mem_index, branch, call_pure, stmt.
	OpNs map[string]float64 `json:"op_ns"`
}

// op returns the cost of one op class; unknown classes cost the stmt
// baseline so a malformed table degrades instead of zeroing out.
func (t *ProbeTable) op(class string) float64 {
	if c, ok := t.OpNs[class]; ok {
		return c
	}
	return t.OpNs["stmt"]
}

//go:embed probe_table.json
var probeTableJSON []byte

var (
	defaultTableOnce sync.Once
	defaultTable     *ProbeTable
)

// DefaultTable parses the embedded probe table. The embed is part of the
// build, so a parse failure is a programming error worth a panic.
func DefaultTable() *ProbeTable {
	defaultTableOnce.Do(func() {
		t := &ProbeTable{}
		if err := json.Unmarshal(probeTableJSON, t); err != nil {
			panic(fmt.Sprintf("parcpar: embedded probe_table.json is invalid: %v", err))
		}
		defaultTable = t
	})
	return defaultTable
}

// estimate prices one candidate loop: the trip count (exact when bounds
// are compile-time constants, DefaultTrip otherwise), the per-iteration
// body cost from the probe table, and the suggested schedule (Static for
// uniform bodies, Auto when per-iteration work can vary).
func (a *analyzer) estimate(sh *loopShape) (trip int, exact bool, bodyNs float64, sched string) {
	trip, exact = sh.tripConst, sh.tripConst > 0
	if !exact {
		trip = a.table.DefaultTrip
	}
	cw := &costWalker{a: a, info: a.info}
	bodyNs = cw.stmts(sh.body.List)
	sched = "pyjama.Static(0)"
	if a.variableWork(sh) {
		sched = "pyjama.Auto()"
	}
	return trip, exact, bodyNs, sched
}

// variableWork detects per-iteration work imbalance: a conditional in
// the body, or an inner loop whose bound depends on the outer index
// (triangular iteration spaces), both of which favor schedule(auto).
func (a *analyzer) variableWork(sh *loopShape) bool {
	varies := false
	ast.Inspect(sh.body, func(n ast.Node) bool {
		if varies {
			return false
		}
		switch n := n.(type) {
		case *ast.IfStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt:
			varies = true
		case *ast.ForStmt:
			if n.Cond != nil && a.mentionsObj(n.Cond, sh.indexObj) {
				varies = true
			}
		}
		return !varies
	})
	return varies
}

// costWalker prices statements and expressions against the probe table.
// It carries its own types.Info so callee bodies from other packages
// price correctly, and bounds recursion through the analyzer's memo.
type costWalker struct {
	a     *analyzer
	info  *types.Info
	depth int
}

// calleeDepthLimit bounds transitive callee pricing; deeper calls fall
// back to the flat call_pure cost.
const calleeDepthLimit = 4

func (w *costWalker) stmts(list []ast.Stmt) float64 {
	var ns float64
	for _, s := range list {
		ns += w.stmt(s)
	}
	return ns
}

func (w *costWalker) stmt(s ast.Stmt) float64 {
	t := w.a.table
	switch s := s.(type) {
	case nil:
		return 0
	case *ast.BlockStmt:
		return w.stmts(s.List)
	case *ast.ForStmt:
		iter := w.stmt(s.Body) + w.stmt(s.Post) + w.expr(s.Cond) + t.op("branch")
		return t.op("stmt") + float64(w.tripOf(s))*iter
	case *ast.RangeStmt:
		return t.op("stmt") + float64(w.tripOf(s))*(w.stmt(s.Body)+t.op("branch"))
	case *ast.IfStmt:
		ns := t.op("branch") + w.expr(s.Cond) + w.stmt(s.Init)
		// Average the two arms: half the iterations take each.
		arm := w.stmt(s.Body)
		if s.Else != nil {
			arm += w.stmt(s.Else)
		}
		return ns + arm*0.5
	case *ast.SwitchStmt:
		ns := t.op("branch") + w.expr(s.Tag) + w.stmt(s.Init)
		var arms float64
		n := 0
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				arms += w.stmts(cc.Body)
				n++
			}
		}
		if n > 0 {
			ns += arms / float64(n)
		}
		return ns
	case *ast.TypeSwitchStmt:
		return t.op("branch") + w.stmt(s.Assign) + w.stmt(s.Body)
	case *ast.CaseClause:
		return w.stmts(s.Body)
	case *ast.AssignStmt:
		ns := t.op("stmt")
		for _, e := range s.Lhs {
			ns += w.expr(e)
		}
		for _, e := range s.Rhs {
			ns += w.expr(e)
		}
		if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
			ns += w.arithCost(s.Lhs[0]) // compound assign does one op
		}
		return ns
	case *ast.IncDecStmt:
		return t.op("stmt") + w.expr(s.X) + t.op("int_arith")
	case *ast.ExprStmt:
		return t.op("stmt") + w.expr(s.X)
	case *ast.ReturnStmt:
		ns := t.op("stmt")
		for _, e := range s.Results {
			ns += w.expr(e)
		}
		return ns
	case *ast.DeclStmt:
		ns := t.op("stmt")
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						ns += w.expr(v)
					}
				}
			}
		}
		return ns
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt)
	case *ast.BranchStmt:
		return t.op("branch")
	default:
		return t.op("stmt")
	}
}

// tripOf estimates a nested loop's trip count: constant bounds when
// provable, DefaultTrip otherwise.
func (w *costWalker) tripOf(s ast.Stmt) int {
	t := w.a.table
	switch s := s.(type) {
	case *ast.ForStmt:
		if cond, ok := s.Cond.(*ast.BinaryExpr); ok && (cond.Op == token.LSS || cond.Op == token.LEQ) {
			if hi, ok := w.constInt(cond.Y); ok {
				lo := 0
				if init, ok := s.Init.(*ast.AssignStmt); ok && len(init.Rhs) == 1 {
					if l, ok := w.constInt(init.Rhs[0]); ok {
						lo = l
					}
				}
				if hi > lo {
					return hi - lo
				}
			}
		}
	case *ast.RangeStmt:
		if tv := w.info.TypeOf(s.X); tv != nil {
			if arr, ok := tv.Underlying().(*types.Array); ok {
				return int(arr.Len())
			}
		}
	}
	return t.DefaultTrip
}

func (w *costWalker) constInt(e ast.Expr) (int, bool) {
	tv, ok := w.info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	v, exact := constant.Int64Val(tv.Value)
	if !exact {
		return 0, false
	}
	return int(v), true
}

func (w *costWalker) expr(e ast.Expr) float64 {
	t := w.a.table
	switch e := e.(type) {
	case nil:
		return 0
	case *ast.BinaryExpr:
		return w.arithCost(e.X) + w.expr(e.X) + w.expr(e.Y)
	case *ast.UnaryExpr:
		return w.arithCost(e.X) + w.expr(e.X)
	case *ast.IndexExpr:
		return t.op("mem_index") + w.expr(e.X) + w.expr(e.Index)
	case *ast.SelectorExpr:
		// Field offsets fold into mem_index on the enclosing access.
		return w.expr(e.X)
	case *ast.StarExpr:
		return t.op("mem_index") + w.expr(e.X)
	case *ast.ParenExpr:
		return w.expr(e.X)
	case *ast.CallExpr:
		return w.call(e)
	case *ast.SliceExpr:
		return t.op("mem_index") + w.expr(e.X) + w.expr(e.Low) + w.expr(e.High)
	case *ast.CompositeLit:
		ns := t.op("stmt")
		for _, el := range e.Elts {
			ns += w.expr(el)
		}
		return ns
	case *ast.KeyValueExpr:
		return w.expr(e.Value)
	default:
		return 0
	}
}

// arithCost prices one arithmetic/logic op by the operand's type class.
func (w *costWalker) arithCost(operand ast.Expr) float64 {
	t := w.a.table
	if tv := w.info.TypeOf(operand); tv != nil {
		if b, ok := tv.Underlying().(*types.Basic); ok && b.Info()&(types.IsFloat|types.IsComplex) != 0 {
			return t.op("float_arith")
		}
	}
	return t.op("int_arith")
}

// call prices a call: conversions are free, builtins cost one int op,
// module callees are priced by their own bodies (memoized, depth-capped),
// and everything else costs the flat call_pure overhead.
func (w *costWalker) call(call *ast.CallExpr) float64 {
	t := w.a.table
	ns := 0.0
	for _, arg := range call.Args {
		ns += w.expr(arg)
	}
	if tv, ok := w.info.Types[call.Fun]; ok && tv.IsType() {
		return ns // conversion
	}
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if _, isB := w.info.Uses[id].(*types.Builtin); isB {
			return ns + t.op("int_arith")
		}
	}
	fn := staticCallee(w.info, call)
	if fn == nil || w.depth >= calleeDepthLimit {
		return ns + t.op("call_pure")
	}
	return ns + t.op("call_pure") + w.a.calleeBodyNs(fn, w.depth+1)
}

// calleeBodyNs prices a module callee's whole body, memoized per
// function. Non-module and bodiless callees price at zero beyond the
// flat call overhead the caller already added.
func (a *analyzer) calleeBodyNs(fn *types.Func, depth int) float64 {
	if a.costMemo == nil {
		a.costMemo = map[*types.Func]float64{}
	}
	if ns, ok := a.costMemo[fn]; ok {
		return ns
	}
	a.costMemo[fn] = 0 // cycle guard: recursive calls price as flat calls
	decl, info := a.purity.findDecl(fn)
	if decl == nil || decl.Body == nil || info == nil {
		return 0
	}
	cw := &costWalker{a: a, info: info, depth: depth}
	ns := cw.stmts(decl.Body.List)
	a.costMemo[fn] = ns
	return ns
}
