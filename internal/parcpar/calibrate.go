package parcpar

import (
	"runtime"
	"time"

	"parc751/internal/pyjama"
)

// Calibrate measures a fresh probe table on the current host, the
// schedule(auto) way: tight timed loops per op class, a live fork-join
// probe for the region overhead. The committed probe_table.json is a
// snapshot of exactly this measurement on the bench host; -calibrate
// exists so a different host can regenerate its own.
//
// Each probe subtracts the empty-loop baseline so op costs do not
// double-count loop control, and takes the minimum over a few rounds to
// shed scheduler noise — the same min-of-rounds discipline the BENCH
// harness uses.

const (
	calibIters  = 1 << 16
	calibRounds = 5
)

// sink defeats dead-code elimination of probe work.
var sink int64

var sinkF float64

// minRound runs f calibRounds times and returns the fastest per-iter ns.
func minRound(f func() time.Duration) float64 {
	best := time.Duration(1<<63 - 1)
	for r := 0; r < calibRounds; r++ {
		if d := f(); d < best {
			best = d
		}
	}
	return float64(best.Nanoseconds()) / calibIters
}

//go:noinline
func calibCallee(x int) int { return x + 1 }

// Calibrate runs the probes and returns a host-local table.
func Calibrate() *ProbeTable {
	baseline := minRound(func() time.Duration {
		s := 0
		start := time.Now()
		for i := 0; i < calibIters; i++ {
			s++
		}
		sink += int64(s)
		return time.Since(start)
	})

	intArith := minRound(func() time.Duration {
		s := 1
		start := time.Now()
		for i := 0; i < calibIters; i++ {
			s = s*3 + i
		}
		sink += int64(s)
		return time.Since(start)
	}) - baseline

	floatArith := minRound(func() time.Duration {
		s := 1.0
		start := time.Now()
		for i := 0; i < calibIters; i++ {
			s = s*1.0000001 + 0.5
		}
		sinkF += s
		return time.Since(start)
	}) - baseline

	buf := make([]int64, calibIters)
	memIndex := minRound(func() time.Duration {
		start := time.Now()
		for i := 0; i < calibIters; i++ {
			buf[i] = buf[i] + 1
		}
		sink += buf[calibIters/2]
		return time.Since(start)
	}) - baseline

	branch := minRound(func() time.Duration {
		s := 0
		start := time.Now()
		for i := 0; i < calibIters; i++ {
			if i&3 == 0 {
				s++
			} else {
				s--
			}
		}
		sink += int64(s)
		return time.Since(start)
	}) - baseline

	callPure := minRound(func() time.Duration {
		s := 0
		start := time.Now()
		for i := 0; i < calibIters; i++ {
			s = calibCallee(s)
		}
		sink += int64(s)
		return time.Since(start)
	}) - baseline

	forkJoin := func() float64 {
		n := runtime.NumCPU()
		const regions = 256
		best := time.Duration(1<<63 - 1)
		for r := 0; r < calibRounds; r++ {
			start := time.Now()
			for k := 0; k < regions; k++ {
				pyjama.ParallelFor(n, 1, pyjama.Static(0), func(i int) {})
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return float64(best.Nanoseconds()) / regions
	}()

	clamp := func(v float64) float64 {
		if v < 0.1 {
			return 0.1
		}
		return v
	}
	return &ProbeTable{
		Schema:      "parcpar-probe-v1",
		Provenance:  "live -calibrate run on this host",
		ForkJoinNs:  forkJoin,
		WorthFactor: 1.5,
		DefaultTrip: 1024,
		OpNs: map[string]float64{
			"int_arith":   clamp(intArith),
			"float_arith": clamp(floatArith),
			"mem_index":   clamp(memIndex),
			"branch":      clamp(branch),
			"call_pure":   clamp(callPure),
			"stmt":        clamp(baseline),
		},
	}
}
