package android

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newLooper(t *testing.T) *Looper {
	t.Helper()
	l := NewLooper()
	t.Cleanup(l.Quit)
	return l
}

func TestHandlerPostRunsOnLooper(t *testing.T) {
	l := newLooper(t)
	h := NewHandler(l)
	got := make(chan bool, 1)
	if !h.Post(func() { got <- l.IsCurrent() }) {
		t.Fatal("post rejected")
	}
	select {
	case ok := <-got:
		if !ok {
			t.Fatal("message ran off the looper thread")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("message never ran")
	}
}

func TestHandlerPostAndWait(t *testing.T) {
	l := newLooper(t)
	h := NewHandler(l)
	ran := false
	if !h.PostAndWait(func() { ran = true }) {
		t.Fatal("postAndWait rejected")
	}
	if !ran {
		t.Fatal("postAndWait returned before running")
	}
}

func TestHandlerPostAfterQuit(t *testing.T) {
	l := NewLooper()
	h := NewHandler(l)
	l.Quit()
	if h.Post(func() {}) {
		t.Fatal("post accepted after quit")
	}
}

func TestLooperOrdering(t *testing.T) {
	l := newLooper(t)
	h := NewHandler(l)
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		i := i
		wg.Add(1)
		h.Post(func() {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			wg.Done()
		})
	}
	wg.Wait()
	for i, v := range order {
		if v != i {
			t.Fatalf("message order broken: %v", order)
		}
	}
	if l.Processed() < 50 {
		t.Fatalf("Processed = %d", l.Processed())
	}
}

func TestAsyncTaskLifecycle(t *testing.T) {
	main := newLooper(t)
	var sequence []string
	var mu sync.Mutex
	log := func(s string, onMain bool) {
		mu.Lock()
		sequence = append(sequence, s)
		mu.Unlock()
		if !onMain {
			t.Errorf("%s ran off the main looper", s)
		}
	}
	task := NewAsyncTask[int, int, int](main)
	task.OnPreExecute = func() { log("pre", main.IsCurrent()) }
	task.OnProgressUpdate = func(p int) { log("progress", main.IsCurrent()) }
	task.OnPostExecute = func(r int) { log("post", main.IsCurrent()) }
	task.DoInBackground = func(tk *AsyncTask[int, int, int], p int) int {
		if main.IsCurrent() {
			t.Error("doInBackground ran on the main looper")
		}
		tk.PublishProgress(50)
		return p * 2
	}
	task.Execute(21)
	v, err := task.Get()
	if err != nil || v != 42 {
		t.Fatalf("Get = %d, %v", v, err)
	}
	// Wait for the trailing main-looper callbacks.
	NewHandler(main).PostAndWait(func() {})
	mu.Lock()
	defer mu.Unlock()
	if len(sequence) != 3 || sequence[0] != "pre" || sequence[2] != "post" {
		t.Fatalf("lifecycle sequence = %v", sequence)
	}
}

func TestAsyncTaskCancellation(t *testing.T) {
	main := newLooper(t)
	cancelled := make(chan struct{})
	task := NewAsyncTask[struct{}, int, int](main)
	task.OnCancelled = func() { close(cancelled) }
	task.OnPostExecute = func(int) { t.Error("onPostExecute after cancel") }
	started := make(chan struct{})
	task.DoInBackground = func(tk *AsyncTask[struct{}, int, int], _ struct{}) int {
		close(started)
		for !tk.IsCancelled() {
			time.Sleep(100 * time.Microsecond)
		}
		return -1
	}
	task.Execute(struct{}{})
	<-started
	if !task.Cancel() {
		t.Fatal("cancel rejected on running task")
	}
	if _, err := task.Get(); err != ErrCancelled {
		t.Fatalf("Get error = %v", err)
	}
	select {
	case <-cancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("onCancelled never ran")
	}
	if task.Cancel() {
		t.Fatal("cancel accepted on finished task")
	}
}

func TestAsyncTaskDoubleExecutePanics(t *testing.T) {
	main := newLooper(t)
	task := NewAsyncTask[int, int, int](main)
	task.DoInBackground = func(*AsyncTask[int, int, int], int) int { return 0 }
	task.Execute(1)
	task.Get()
	defer func() {
		if recover() == nil {
			t.Fatal("second Execute did not panic")
		}
	}()
	task.Execute(2)
}

func TestAsyncTaskMissingBodyPanics(t *testing.T) {
	main := newLooper(t)
	defer func() {
		if recover() == nil {
			t.Fatal("nil DoInBackground accepted")
		}
	}()
	NewAsyncTask[int, int, int](main).Execute(1)
}

func TestAsyncTaskProgressAfterCancelDropped(t *testing.T) {
	main := newLooper(t)
	var updates atomic.Int32
	task := NewAsyncTask[struct{}, int, int](main)
	task.OnProgressUpdate = func(int) { updates.Add(1) }
	task.DoInBackground = func(tk *AsyncTask[struct{}, int, int], _ struct{}) int {
		tk.PublishProgress(1)
		tk.Cancel()
		tk.PublishProgress(2) // must be dropped
		return 0
	}
	task.Execute(struct{}{})
	task.Get()
	NewHandler(main).PostAndWait(func() {})
	if updates.Load() > 1 {
		t.Fatalf("progress after cancel delivered: %d updates", updates.Load())
	}
}

func TestSerialExecutorIsSerialAndOrdered(t *testing.T) {
	e := NewSerialExecutor()
	var inside atomic.Int32
	var overlap atomic.Int32
	var mu sync.Mutex
	var order []int
	for i := 0; i < 30; i++ {
		i := i
		e.Submit(func() {
			if inside.Add(1) > 1 {
				overlap.Add(1)
			}
			time.Sleep(100 * time.Microsecond)
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			inside.Add(-1)
		})
	}
	e.Wait()
	if overlap.Load() != 0 {
		t.Fatalf("%d overlapping executions on the serial executor", overlap.Load())
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order broken: %v", order)
		}
	}
}

func TestSerialExecutorWaitIdle(t *testing.T) {
	e := NewSerialExecutor()
	e.Wait() // idle executor must not block
	done := false
	e.Submit(func() { done = true })
	e.Wait()
	if !done {
		t.Fatal("Wait returned before work finished")
	}
}

// TestSerialExecutorSerialisesAsyncTasks demonstrates the pitfall the
// paper-era Android students hit: AsyncTasks share SERIAL_EXECUTOR by
// default, so "parallel" work is serialised.
func TestSerialExecutorSerialisesAsyncTasks(t *testing.T) {
	e := NewSerialExecutor()
	var concurrent, peak atomic.Int32
	for i := 0; i < 8; i++ {
		e.Submit(func() {
			c := concurrent.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			time.Sleep(200 * time.Microsecond)
			concurrent.Add(-1)
		})
	}
	e.Wait()
	if peak.Load() != 1 {
		t.Fatalf("serial executor peak concurrency = %d", peak.Load())
	}
}

func BenchmarkHandlerPost(b *testing.B) {
	l := NewLooper()
	defer l.Quit()
	h := NewHandler(l)
	var wg sync.WaitGroup
	wg.Add(b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Post(wg.Done)
	}
	wg.Wait()
}

func BenchmarkAsyncTask(b *testing.B) {
	main := NewLooper()
	defer main.Quit()
	for i := 0; i < b.N; i++ {
		task := NewAsyncTask[int, int, int](main)
		task.DoInBackground = func(_ *AsyncTask[int, int, int], p int) int { return p }
		task.Execute(i)
		task.Get()
	}
}
