// Package android reproduces the Android concurrency primitives the
// paper's student projects compared Parallel Task against (§IV-C item 1:
// "investigated on Android, comparing Parallel Task to Android's AsyncTask
// and handlers/loopers"): Looper/Handler message passing and the AsyncTask
// doInBackground → onProgressUpdate → onPostExecute lifecycle. Both are
// built over the same event-loop substrate as the rest of the repository,
// so the comparison experiments run them side by side with Parallel Task.
package android

import (
	"errors"
	"sync"
	"sync/atomic"

	"parc751/internal/eventloop"
)

// Looper owns a message queue processed by a single goroutine — Android's
// Looper. The main ("UI") looper is just a Looper the app blesses.
type Looper struct {
	loop *eventloop.Loop
}

// NewLooper prepares and starts a looper.
func NewLooper() *Looper { return &Looper{loop: eventloop.New()} }

// Quit drains the queue and stops the looper (Looper.quitSafely).
func (l *Looper) Quit() { l.loop.Close() }

// IsCurrent reports whether the caller is running on this looper's thread
// (Looper.isCurrentThread).
func (l *Looper) IsCurrent() bool { return l.loop.OnDispatchThread() }

// Processed returns the number of messages handled.
func (l *Looper) Processed() int64 { return l.loop.Dispatched() }

// Handler posts work to a Looper — Android's Handler.
type Handler struct {
	looper *Looper
}

// NewHandler binds a handler to a looper.
func NewHandler(l *Looper) *Handler { return &Handler{looper: l} }

// Post enqueues r on the looper (Handler.post). It reports whether the
// message was accepted (false after Quit).
func (h *Handler) Post(r func()) bool {
	return h.looper.loop.InvokeLater(r) == nil
}

// PostAndWait runs r on the looper and blocks until done (runWithScissors).
func (h *Handler) PostAndWait(r func()) bool {
	return h.looper.loop.InvokeAndWait(r) == nil
}

// ErrCancelled is returned by Get on a cancelled AsyncTask.
var ErrCancelled = errors.New("android: task cancelled")

// AsyncTask states mirror android.os.AsyncTask.Status.
const (
	statusPending int32 = iota
	statusRunning
	statusFinished
)

// AsyncTask reproduces the classic Android lifecycle: Execute runs
// DoInBackground on a background goroutine; PublishProgress from inside it
// delivers OnProgressUpdate on the main looper; completion delivers
// OnPostExecute (or OnCancelled) on the main looper. Like the original,
// an instance can be executed only once.
type AsyncTask[Param, Progress, Result any] struct {
	// DoInBackground is the background computation (required).
	DoInBackground func(t *AsyncTask[Param, Progress, Result], p Param) Result
	// OnPreExecute runs on the main looper before the background work.
	OnPreExecute func()
	// OnProgressUpdate receives published progress on the main looper.
	OnProgressUpdate func(Progress)
	// OnPostExecute receives the result on the main looper (skipped when
	// cancelled).
	OnPostExecute func(Result)
	// OnCancelled runs on the main looper instead of OnPostExecute when
	// the task was cancelled.
	OnCancelled func()

	main      *Looper
	status    atomic.Int32
	cancelled atomic.Bool
	done      chan struct{}
	mu        sync.Mutex
	result    Result
}

// NewAsyncTask creates a task bound to the main looper.
func NewAsyncTask[Param, Progress, Result any](main *Looper) *AsyncTask[Param, Progress, Result] {
	return &AsyncTask[Param, Progress, Result]{main: main, done: make(chan struct{})}
}

// Execute starts the task. It panics if executed twice or if
// DoInBackground is nil (matching AsyncTask's IllegalStateException).
func (t *AsyncTask[Param, Progress, Result]) Execute(p Param) *AsyncTask[Param, Progress, Result] {
	if t.DoInBackground == nil {
		panic("android: AsyncTask without DoInBackground")
	}
	if !t.status.CompareAndSwap(statusPending, statusRunning) {
		panic("android: AsyncTask executed twice")
	}
	if t.OnPreExecute != nil {
		t.main.loop.InvokeAndWait(t.OnPreExecute)
	}
	go func() {
		res := t.DoInBackground(t, p)
		t.mu.Lock()
		t.result = res
		t.mu.Unlock()
		t.status.Store(statusFinished)
		if t.cancelled.Load() {
			if t.OnCancelled != nil {
				t.main.loop.InvokeLater(t.OnCancelled)
			}
		} else if t.OnPostExecute != nil {
			r := res
			t.main.loop.InvokeLater(func() { t.OnPostExecute(r) })
		}
		close(t.done)
	}()
	return t
}

// PublishProgress delivers v to OnProgressUpdate on the main looper; call
// it from DoInBackground. Progress published after cancellation is
// dropped, as on Android.
func (t *AsyncTask[Param, Progress, Result]) PublishProgress(v Progress) {
	if t.cancelled.Load() || t.OnProgressUpdate == nil {
		return
	}
	t.main.loop.InvokeLater(func() { t.OnProgressUpdate(v) })
}

// Cancel requests cancellation. Cooperative, as on Android:
// DoInBackground must poll IsCancelled. Returns false if already finished.
func (t *AsyncTask[Param, Progress, Result]) Cancel() bool {
	if t.status.Load() == statusFinished {
		return false
	}
	t.cancelled.Store(true)
	return true
}

// IsCancelled reports a pending cancellation (poll from DoInBackground).
func (t *AsyncTask[Param, Progress, Result]) IsCancelled() bool {
	return t.cancelled.Load()
}

// Get blocks until the background work finishes and returns the result,
// or ErrCancelled when the task was cancelled.
func (t *AsyncTask[Param, Progress, Result]) Get() (Result, error) {
	<-t.done
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cancelled.Load() {
		var zero Result
		return zero, ErrCancelled
	}
	return t.result, nil
}

// SerialExecutor reproduces AsyncTask.SERIAL_EXECUTOR: tasks submitted to
// it run one at a time in submission order on one background goroutine —
// the post-Honeycomb default that surprised the paper-era students by
// serialising their "parallel" AsyncTasks.
type SerialExecutor struct {
	mu      sync.Mutex
	queue   []func()
	running bool
	idle    chan struct{} // closed and re-made around activity
}

// NewSerialExecutor creates an idle serial executor.
func NewSerialExecutor() *SerialExecutor {
	return &SerialExecutor{idle: make(chan struct{})}
}

// Submit enqueues fn; it runs after all previously submitted work.
func (e *SerialExecutor) Submit(fn func()) {
	e.mu.Lock()
	e.queue = append(e.queue, fn)
	if !e.running {
		e.running = true
		go e.drain()
	}
	e.mu.Unlock()
}

func (e *SerialExecutor) drain() {
	for {
		e.mu.Lock()
		if len(e.queue) == 0 {
			e.running = false
			close(e.idle)
			e.idle = make(chan struct{})
			e.mu.Unlock()
			return
		}
		fn := e.queue[0]
		e.queue = e.queue[1:]
		e.mu.Unlock()
		fn()
	}
}

// Wait blocks until the executor goes idle.
func (e *SerialExecutor) Wait() {
	e.mu.Lock()
	if !e.running {
		e.mu.Unlock()
		return
	}
	ch := e.idle
	e.mu.Unlock()
	<-ch
}
