package eventloop

import (
	"sync/atomic"
	"testing"
	"time"

	"parc751/internal/faultinject"
)

func TestDispatchHookCountsAndDelays(t *testing.T) {
	in := faultinject.New(faultinject.Plan{Rules: []faultinject.Rule{
		{Site: faultinject.SiteDispatch, Kind: faultinject.Delay, Nth: 3, Count: 1,
			Dur: 30 * time.Millisecond},
	}})
	l := New()
	defer l.Close()
	l.SetFaultInjector(in)

	var ran atomic.Int32
	for i := 0; i < 10; i++ {
		if err := l.InvokeLater(func() { ran.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	l.InvokeAndWait(func() {})
	if ran.Load() != 10 {
		t.Fatalf("ran %d events, want 10 (faults must not drop events)", ran.Load())
	}
	if in.Seen(faultinject.SiteDispatch) != 11 {
		t.Errorf("dispatch events seen = %d, want 11", in.Seen(faultinject.SiteDispatch))
	}
	if in.Fired() != 1 {
		t.Errorf("fired = %d, want 1 (%s)", in.Fired(), in.TraceString())
	}

	// Detached again, dispatch proceeds untouched.
	l.SetFaultInjector(nil)
	if err := l.InvokeAndWait(func() { ran.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if in.Seen(faultinject.SiteDispatch) != 11 {
		t.Error("detached injector still observed dispatches")
	}
}
