// Package eventloop provides a single-threaded GUI event-dispatch loop,
// the substrate that makes the paper's "concurrency versus parallelism"
// distinction (§IV-B) measurable. Parallel Task and Pyjama both exist to
// keep interactive applications responsive: long-running work must stay
// off the event-dispatch thread, and completion handlers must hop back
// onto it (like Swing's EDT or Android's main looper).
//
// The loop is a real dispatcher, not a mock: events run strictly
// sequentially on one goroutine, InvokeAndWait from inside the dispatch
// thread runs inline exactly as Swing's invokeAndWait would deadlock-avoid,
// and the Probe measures event-service latency so experiments can show the
// UI is (or is not) responsive while background work runs.
package eventloop

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"parc751/internal/faultinject"
	"parc751/internal/metrics"
)

// ErrClosed is returned when posting to a loop that has been closed.
var ErrClosed = errors.New("eventloop: loop is closed")

// Loop is a single-threaded event dispatcher. Create one with New; all
// methods are safe for concurrent use from any goroutine.
type Loop struct {
	mu         sync.Mutex
	cond       *sync.Cond
	queue      []event
	closed     bool
	drained    chan struct{}
	dispatched atomic.Int64
	gid        atomic.Int64 // goroutine id of the dispatcher
	maxQueue   int

	// fi is the optional chaos injector: when attached, every dispatch
	// passes a SiteDispatch point before the handler runs (delay rules
	// model a sluggish UI thread). nil in production — one atomic load.
	fi atomic.Pointer[faultinject.Injector]
}

type event struct {
	fn       func()
	enqueued time.Time
	latency  *time.Duration // if non-nil, receives service latency
}

// New starts an event loop. The caller must Close it when done.
func New() *Loop {
	l := &Loop{drained: make(chan struct{})}
	l.cond = sync.NewCond(&l.mu)
	started := make(chan struct{})
	go l.run(started)
	<-started
	return l
}

func (l *Loop) run(started chan struct{}) {
	l.gid.Store(goroutineID())
	close(started)
	for {
		l.mu.Lock()
		for len(l.queue) == 0 && !l.closed {
			l.cond.Wait()
		}
		if len(l.queue) == 0 && l.closed {
			l.mu.Unlock()
			close(l.drained)
			return
		}
		ev := l.queue[0]
		l.queue = l.queue[1:]
		l.mu.Unlock()

		if ev.latency != nil {
			*ev.latency = time.Since(ev.enqueued)
		}
		if in := l.fi.Load(); in != nil {
			in.Point(faultinject.SiteDispatch)
		}
		ev.fn()
		l.dispatched.Add(1)
	}
}

// SetFaultInjector attaches (or, with nil, detaches) a chaos injector.
// Dispatch-delay rules then stretch event service times, the failure mode
// a frozen GUI exhibits.
func (l *Loop) SetFaultInjector(in *faultinject.Injector) { l.fi.Store(in) }

// OnDispatchThread reports whether the calling goroutine is the loop's
// dispatcher. Handlers use this to assert UI-access discipline, exactly as
// SwingUtilities.isEventDispatchThread does.
func (l *Loop) OnDispatchThread() bool {
	return goroutineID() == l.gid.Load()
}

// InvokeLater enqueues fn to run on the dispatch thread and returns
// immediately. It returns ErrClosed after Close.
func (l *Loop) InvokeLater(fn func()) error {
	return l.post(event{fn: fn, enqueued: time.Now()})
}

func (l *Loop) post(ev event) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	l.queue = append(l.queue, ev)
	if len(l.queue) > l.maxQueue {
		l.maxQueue = len(l.queue)
	}
	l.cond.Signal()
	return nil
}

// InvokeAndWait runs fn on the dispatch thread and blocks until it
// completes. Called from the dispatch thread itself, fn runs inline (the
// behaviour a deadlock-free invokeAndWait must have).
func (l *Loop) InvokeAndWait(fn func()) error {
	if l.OnDispatchThread() {
		fn()
		return nil
	}
	done := make(chan struct{})
	err := l.post(event{fn: func() { fn(); close(done) }, enqueued: time.Now()})
	if err != nil {
		return err
	}
	<-done
	return nil
}

// Dispatched returns the number of events that have completed.
func (l *Loop) Dispatched() int64 { return l.dispatched.Load() }

// QueueLen returns the current backlog length.
func (l *Loop) QueueLen() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.queue)
}

// MaxQueueLen returns the largest backlog observed since creation.
func (l *Loop) MaxQueueLen() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.maxQueue
}

// Close stops accepting events, waits for the backlog to drain, and shuts
// the dispatcher down. Close is idempotent.
func (l *Loop) Close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		<-l.drained
		return
	}
	l.closed = true
	l.cond.Signal()
	l.mu.Unlock()
	<-l.drained
}

// Probe measures UI responsiveness: it posts count no-op events, one every
// period, and records each event's service latency (time from enqueue to
// dispatch). Run it concurrently with a workload; if the workload blocks
// the dispatch thread, latencies blow past the period.
func (l *Loop) Probe(period time.Duration, count int) *ProbeResult {
	res := &ProbeResult{latencies: make([]time.Duration, count)}
	var wg sync.WaitGroup
	for i := 0; i < count; i++ {
		if i > 0 {
			time.Sleep(period)
		}
		wg.Add(1)
		idx := i
		err := l.post(event{
			fn:       wg.Done,
			enqueued: time.Now(),
			latency:  &res.latencies[idx],
		})
		if err != nil {
			wg.Done()
			res.dropped++
		}
	}
	wg.Wait()
	return res
}

// ProbeResult holds the latencies observed by Probe.
type ProbeResult struct {
	latencies []time.Duration
	dropped   int
}

// Summary folds the latencies into streaming statistics (seconds).
func (p *ProbeResult) Summary() *metrics.Summary {
	var s metrics.Summary
	for _, d := range p.latencies {
		s.AddDuration(d)
	}
	return &s
}

// Max returns the worst observed service latency.
func (p *ProbeResult) Max() time.Duration {
	var m time.Duration
	for _, d := range p.latencies {
		if d > m {
			m = d
		}
	}
	return m
}

// P95 returns the 95th-percentile latency.
func (p *ProbeResult) P95() time.Duration {
	xs := make([]float64, len(p.latencies))
	for i, d := range p.latencies {
		xs[i] = d.Seconds()
	}
	return time.Duration(metrics.Percentile(xs, 0.95) * float64(time.Second))
}

// Dropped reports probe events rejected because the loop closed.
func (p *ProbeResult) Dropped() int { return p.dropped }

// String renders the probe outcome for harness tables.
func (p *ProbeResult) String() string {
	return fmt.Sprintf("n=%d max=%v p95=%v", len(p.latencies), p.Max(), p.P95())
}

// goroutineID extracts the current goroutine's id from the runtime stack
// header ("goroutine N [running]:"). This is the standard stdlib-only way
// to identify the dispatch thread; it is called only on slow paths
// (posting and assertions), never per-pixel.
func goroutineID() int64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	fields := bytes.Fields(buf[:n])
	if len(fields) < 2 {
		return -1
	}
	id, err := strconv.ParseInt(string(fields[1]), 10, 64)
	if err != nil {
		return -1
	}
	return id
}
