package eventloop

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestEventsRunInOrder(t *testing.T) {
	l := New()
	defer l.Close()
	var mu sync.Mutex
	var got []int
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		i := i
		if err := l.InvokeLater(func() {
			mu.Lock()
			got = append(got, i)
			mu.Unlock()
			wg.Done()
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	for i, v := range got {
		if v != i {
			t.Fatalf("event %d ran out of order (got %d)", i, v)
		}
	}
}

func TestEventsAreSerial(t *testing.T) {
	l := New()
	defer l.Close()
	var inHandler atomic.Int32
	var overlap atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		l.InvokeLater(func() {
			if inHandler.Add(1) > 1 {
				overlap.Add(1)
			}
			time.Sleep(100 * time.Microsecond)
			inHandler.Add(-1)
			wg.Done()
		})
	}
	wg.Wait()
	if overlap.Load() != 0 {
		t.Fatalf("%d events overlapped", overlap.Load())
	}
}

func TestOnDispatchThread(t *testing.T) {
	l := New()
	defer l.Close()
	if l.OnDispatchThread() {
		t.Fatal("test goroutine claims to be the dispatcher")
	}
	var inside bool
	l.InvokeAndWait(func() { inside = l.OnDispatchThread() })
	if !inside {
		t.Fatal("handler did not run on dispatch thread")
	}
}

func TestInvokeAndWaitBlocksUntilDone(t *testing.T) {
	l := New()
	defer l.Close()
	var done atomic.Bool
	l.InvokeAndWait(func() {
		time.Sleep(5 * time.Millisecond)
		done.Store(true)
	})
	if !done.Load() {
		t.Fatal("InvokeAndWait returned before handler completed")
	}
}

func TestInvokeAndWaitFromDispatchThreadRunsInline(t *testing.T) {
	l := New()
	defer l.Close()
	finished := make(chan bool, 1)
	l.InvokeLater(func() {
		// Would deadlock if not run inline.
		ok := false
		l.InvokeAndWait(func() { ok = true })
		finished <- ok
	})
	select {
	case ok := <-finished:
		if !ok {
			t.Fatal("nested InvokeAndWait did not run")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("nested InvokeAndWait deadlocked")
	}
}

func TestCloseDrainsBacklog(t *testing.T) {
	l := New()
	var ran atomic.Int32
	for i := 0; i < 200; i++ {
		l.InvokeLater(func() { ran.Add(1) })
	}
	l.Close()
	if ran.Load() != 200 {
		t.Fatalf("only %d of 200 events ran before Close returned", ran.Load())
	}
	if err := l.InvokeLater(func() {}); err != ErrClosed {
		t.Fatalf("post after close = %v, want ErrClosed", err)
	}
}

func TestCloseIdempotent(t *testing.T) {
	l := New()
	l.Close()
	l.Close() // must not panic or hang
}

func TestDispatchedCounter(t *testing.T) {
	l := New()
	for i := 0; i < 10; i++ {
		l.InvokeLater(func() {})
	}
	l.Close()
	if got := l.Dispatched(); got != 10 {
		t.Fatalf("Dispatched = %d", got)
	}
}

func TestQueueLenAndMax(t *testing.T) {
	l := New()
	defer l.Close()
	block := make(chan struct{})
	l.InvokeLater(func() { <-block })
	for i := 0; i < 5; i++ {
		l.InvokeLater(func() {})
	}
	// Allow the first event to start so only the backlog remains.
	time.Sleep(5 * time.Millisecond)
	if q := l.QueueLen(); q != 5 {
		t.Errorf("QueueLen = %d, want 5", q)
	}
	close(block)
	// MaxQueueLen must have seen at least the 5-deep backlog.
	if m := l.MaxQueueLen(); m < 5 {
		t.Errorf("MaxQueueLen = %d, want >= 5", m)
	}
}

// TestProbeResponsiveWhenIdle is half of the paper's responsiveness story:
// an unblocked event thread services probes quickly.
func TestProbeResponsiveWhenIdle(t *testing.T) {
	l := New()
	defer l.Close()
	res := l.Probe(time.Millisecond, 20)
	if res.Dropped() != 0 {
		t.Fatalf("dropped %d probes", res.Dropped())
	}
	if res.Max() > 200*time.Millisecond {
		t.Errorf("idle loop latency %v implausibly high", res.Max())
	}
	if res.Summary().N() != 20 {
		t.Errorf("summary count = %d", res.Summary().N())
	}
}

// TestProbeDetectsBlockedLoop is the other half: doing the work ON the
// event thread (the anti-pattern the projects teach against) makes probe
// latency blow up.
func TestProbeDetectsBlockedLoop(t *testing.T) {
	l := New()
	defer l.Close()
	const block = 80 * time.Millisecond
	l.InvokeLater(func() { time.Sleep(block) })
	res := l.Probe(time.Millisecond, 5)
	if res.Max() < block/4 {
		t.Errorf("probe missed a blocked loop: max latency %v", res.Max())
	}
}

func TestProbeString(t *testing.T) {
	l := New()
	defer l.Close()
	res := l.Probe(0, 3)
	if s := res.String(); s == "" {
		t.Error("empty probe string")
	}
}

func TestGoroutineIDStable(t *testing.T) {
	a, b := goroutineID(), goroutineID()
	if a != b || a <= 0 {
		t.Fatalf("goroutineID unstable or invalid: %d, %d", a, b)
	}
	ch := make(chan int64)
	go func() { ch <- goroutineID() }()
	if other := <-ch; other == a {
		t.Fatal("different goroutines share an id")
	}
}

func BenchmarkInvokeLater(b *testing.B) {
	l := New()
	var wg sync.WaitGroup
	wg.Add(b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.InvokeLater(wg.Done)
	}
	wg.Wait()
	b.StopTimer()
	l.Close()
}

func BenchmarkInvokeAndWait(b *testing.B) {
	l := New()
	defer l.Close()
	for i := 0; i < b.N; i++ {
		l.InvokeAndWait(func() {})
	}
}
