package curriculum

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"parc751/internal/machine"
)

func TestSharedMemoryCoreValid(t *testing.T) {
	topics := SharedMemoryCore()
	if err := Validate(topics); err != nil {
		t.Fatal(err)
	}
	if len(topics) < 12 {
		t.Fatalf("syllabus has only %d topics", len(topics))
	}
}

// TestArtifactsExist checks that every claimed runnable artifact is an
// actual package directory in this repository — the curriculum map must
// not rot.
func TestArtifactsExist(t *testing.T) {
	root := "../.." // internal/curriculum -> repo root
	for _, topic := range SharedMemoryCore() {
		dir := filepath.Join(root, topic.Artifact)
		info, err := os.Stat(dir)
		if err != nil || !info.IsDir() {
			t.Errorf("topic %q points at missing artifact %s", topic.Name, topic.Artifact)
		}
	}
}

func TestEveryWeekTeachesSomething(t *testing.T) {
	plan := WeekPlan(SharedMemoryCore())
	for w := 1; w <= 5; w++ {
		if len(plan[w]) == 0 {
			t.Errorf("week %d teaches nothing", w)
		}
	}
}

func TestApplyShareMajority(t *testing.T) {
	// §III-E: "There needs to be a focus on doing or building something."
	if share := ApplyShare(SharedMemoryCore()); share < 0.5 {
		t.Fatalf("apply share = %.2f; the course is build-focused", share)
	}
	if ApplyShare(nil) != 0 {
		t.Error("empty share not 0")
	}
}

func TestValidateRejectsBadSyllabi(t *testing.T) {
	if Validate([]Topic{{Name: "x", Week: 9, Artifact: "internal/core"}}) == nil {
		t.Error("week 9 accepted")
	}
	if Validate([]Topic{{Name: "x", Week: 2}}) == nil {
		t.Error("missing artifact accepted")
	}
	if Validate([]Topic{
		{Name: "x", Week: 1, Artifact: "a"},
		{Name: "x", Week: 2, Artifact: "b"},
	}) == nil {
		t.Error("duplicate accepted")
	}
}

func TestBloomStrings(t *testing.T) {
	for b, want := range map[BloomLevel]string{Know: "K", Comprehend: "C", Apply: "A", BloomLevel(9): "?"} {
		if b.String() != want {
			t.Errorf("%d.String() = %q", b, b.String())
		}
	}
}

func TestAmdahlKnownValues(t *testing.T) {
	if got := AmdahlSpeedup(0.5, 2); math.Abs(got-4.0/3.0) > 1e-12 {
		t.Errorf("S(0.5, 2) = %g", got)
	}
	if got := AmdahlSpeedup(1, 8); got != 8 {
		t.Errorf("fully parallel S(1,8) = %g", got)
	}
	if got := AmdahlSpeedup(0, 64); got != 1 {
		t.Errorf("fully serial S(0,64) = %g", got)
	}
	if AmdahlSpeedup(0.5, 0) != 0 || AmdahlSpeedup(-1, 4) != 0 {
		t.Error("invalid inputs not rejected")
	}
	if got := AmdahlLimit(0.9); math.Abs(got-10) > 1e-12 {
		t.Errorf("limit(0.9) = %g", got)
	}
	if !math.IsInf(AmdahlLimit(1), 1) {
		t.Error("limit(1) not +Inf")
	}
}

func TestAmdahlProperties(t *testing.T) {
	f := func(fRaw, pRaw uint8) bool {
		frac := float64(fRaw) / 255
		p := int(pRaw%64) + 1
		s := AmdahlSpeedup(frac, p)
		// Bounded by p and by the serial limit; at least 1.
		return s >= 1-1e-12 && s <= float64(p)+1e-9 && s <= AmdahlLimit(frac)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGustafson(t *testing.T) {
	if got := GustafsonSpeedup(0, 16); got != 16 {
		t.Errorf("scaled S(0,16) = %g", got)
	}
	if got := GustafsonSpeedup(1, 16); got != 1 {
		t.Errorf("all-serial scaled S = %g", got)
	}
	if got := GustafsonSpeedup(0.25, 4); math.Abs(got-3.25) > 1e-12 {
		t.Errorf("S(0.25,4) = %g", got)
	}
}

func TestKarpFlattRecoversSerialFraction(t *testing.T) {
	// Feed Karp-Flatt a speedup produced by Amdahl's law: it must return
	// the serial fraction.
	for _, serial := range []float64{0.05, 0.2, 0.5} {
		for _, p := range []int{2, 8, 64} {
			s := AmdahlSpeedup(1-serial, p)
			if got := KarpFlatt(s, p); math.Abs(got-serial) > 1e-9 {
				t.Errorf("KarpFlatt(S(%g), %d) = %g", serial, p, got)
			}
		}
	}
	if KarpFlatt(2, 1) != 0 || KarpFlatt(0, 8) != 0 {
		t.Error("degenerate inputs not handled")
	}
}

// TestSimulatorObeysAmdahl is the cross-validation the lectures would run
// live: a workload with serial fraction (1-f) simulated on p processors
// must track Amdahl's prediction. The serial part is modelled as a chain
// of dependent tasks; the parallel part as independent tasks.
func TestSimulatorObeysAmdahl(t *testing.T) {
	const totalWork = 1 << 20
	for _, frac := range []float64{0.5, 0.9, 0.99} {
		for _, p := range []int{2, 8, 32} {
			serialWork := uint64(float64(totalWork) * (1 - frac))
			parallelWork := uint64(totalWork) - serialWork

			run := func(procs int) uint64 {
				m := machine.New(machine.Config{Name: "amdahl", Procs: procs, SpeedFactor: 1})
				// Amdahl's structure: the serial part runs first, alone
				// on the critical path; only then does the parallel part
				// fan out.
				const chunks = 256
				m.Submit(0, serialWork, func(ctx *machine.Ctx) {
					for i := 0; i < chunks; i++ {
						ctx.Spawn(parallelWork/chunks, nil)
					}
				})
				return m.Run().Makespan
			}
			seq := run(1)
			par := run(p)
			measured := float64(seq) / float64(par)
			predicted := AmdahlSpeedup(frac, p)
			// Scheduling residue (the last chunks draining) costs a
			// little against the ideal; the simulator must track the law
			// within 10% and never exceed it or p.
			if measured > float64(p)+1e-9 || measured > predicted*1.01 {
				t.Errorf("f=%g p=%d: measured %g beats Amdahl %g", frac, p, measured, predicted)
			}
			if measured < predicted*0.9 {
				t.Errorf("f=%g p=%d: measured %.2f, Amdahl predicts %.2f", frac, p, measured, predicted)
			}
		}
	}
}

func TestArtifactPathsAreRepoRelative(t *testing.T) {
	for _, topic := range SharedMemoryCore() {
		if !strings.HasPrefix(topic.Artifact, "internal/") {
			t.Errorf("artifact %q not repo-relative", topic.Artifact)
		}
	}
}
