// Package curriculum models the teaching content of SoftEng 751's first
// five weeks. §II of the paper states the core-concept selection "supports
// those programming topics proposed by the NSF/IEEE-TCPP Curriculum
// Initiative on Parallel & Distributed Computing as being most vital",
// under the Fall 2012 Early Adopter programme. This package records that
// alignment as data — each taught topic mapped to the teaching week and to
// the runnable artifact in this repository that demonstrates it — and
// implements the analytic speedup laws (Amdahl, Gustafson) that anchor the
// lectures, which the tests cross-validate against the simulated machine.
package curriculum

import (
	"fmt"
	"sort"
)

// BloomLevel is the depth of mastery the TCPP curriculum assigns a topic.
type BloomLevel int

// The TCPP initiative's Bloom levels.
const (
	Know       BloomLevel = iota // K: know the term
	Comprehend                   // C: paraphrase/illustrate
	Apply                        // A: use in a program
)

// String names the level.
func (b BloomLevel) String() string {
	switch b {
	case Know:
		return "K"
	case Comprehend:
		return "C"
	case Apply:
		return "A"
	default:
		return "?"
	}
}

// Topic is one TCPP programming topic covered in weeks 1-5.
type Topic struct {
	Name     string
	Week     int        // teaching week it is introduced (1-5)
	Level    BloomLevel // targeted mastery
	Artifact string     // package in this repository demonstrating it
}

// SharedMemoryCore returns the shared-memory programming topics the course
// teaches in weeks 1-5 (the TCPP "Programming" cross-cutting set scoped to
// shared memory, §II-III: the course explicitly excludes distributed
// computing), each pointing at the package that makes it runnable here.
func SharedMemoryCore() []Topic {
	return []Topic{
		{"concurrency vs parallelism", 1, Comprehend, "internal/eventloop"},
		{"processes/threads/tasks", 1, Comprehend, "internal/core"},
		{"speedup, efficiency, Amdahl's law", 1, Apply, "internal/curriculum"},
		{"shared memory and data races", 2, Apply, "internal/memmodel"},
		{"mutual exclusion and locks", 2, Apply, "internal/collections"},
		{"atomic operations", 2, Apply, "internal/collections"},
		{"barriers and synchronisation", 3, Apply, "internal/pyjama"},
		{"task parallelism and futures", 3, Apply, "internal/ptask"},
		{"task dependences and DAGs", 3, Apply, "internal/ptask"},
		{"worksharing loops and schedules", 4, Apply, "internal/pyjama"},
		{"load balancing and work stealing", 4, Comprehend, "internal/sched"},
		{"granularity trade-offs", 4, Apply, "internal/pdfsearch"},
		{"reductions", 5, Apply, "internal/reduction"},
		{"parallel algorithm patterns", 5, Comprehend, "internal/patterns"},
		{"performance measurement", 5, Apply, "internal/metrics"},
	}
}

// Validate checks the syllabus is well-formed: weeks within the teaching
// block, every topic bound to an artifact, no duplicate names.
func Validate(topics []Topic) error {
	seen := map[string]bool{}
	for _, t := range topics {
		if t.Week < 1 || t.Week > 5 {
			return fmt.Errorf("curriculum: %q scheduled in week %d, outside weeks 1-5", t.Name, t.Week)
		}
		if t.Artifact == "" {
			return fmt.Errorf("curriculum: %q has no runnable artifact", t.Name)
		}
		if seen[t.Name] {
			return fmt.Errorf("curriculum: duplicate topic %q", t.Name)
		}
		seen[t.Name] = true
	}
	return nil
}

// WeekPlan groups topics by teaching week, sorted.
func WeekPlan(topics []Topic) map[int][]Topic {
	plan := map[int][]Topic{}
	for _, t := range topics {
		plan[t.Week] = append(plan[t.Week], t)
	}
	for w := range plan {
		sort.Slice(plan[w], func(i, j int) bool { return plan[w][i].Name < plan[w][j].Name })
	}
	return plan
}

// ApplyShare returns the fraction of topics targeted at the Apply level —
// the "doing or building something" emphasis §III-E insists on.
func ApplyShare(topics []Topic) float64 {
	if len(topics) == 0 {
		return 0
	}
	n := 0
	for _, t := range topics {
		if t.Level == Apply {
			n++
		}
	}
	return float64(n) / float64(len(topics))
}

// AmdahlSpeedup returns Amdahl's law: the speedup on p processors of a
// program whose parallelisable fraction is f (0 <= f <= 1).
func AmdahlSpeedup(f float64, p int) float64 {
	if p < 1 || f < 0 || f > 1 {
		return 0
	}
	return 1 / ((1 - f) + f/float64(p))
}

// AmdahlLimit returns the p→∞ ceiling, 1/(1-f); +Inf for f = 1.
func AmdahlLimit(f float64) float64 {
	if f >= 1 {
		return inf()
	}
	return 1 / (1 - f)
}

// GustafsonSpeedup returns Gustafson's scaled speedup: s + p(1-s) for
// serial fraction s of the scaled workload.
func GustafsonSpeedup(s float64, p int) float64 {
	if p < 1 || s < 0 || s > 1 {
		return 0
	}
	return s + float64(p)*(1-s)
}

// KarpFlatt returns the experimentally determined serial fraction from a
// measured speedup on p processors — the metric instructors use to show
// students *why* their measured curve bends.
func KarpFlatt(speedup float64, p int) float64 {
	if p <= 1 || speedup <= 0 {
		return 0
	}
	return (1/speedup - 1/float64(p)) / (1 - 1/float64(p))
}

func inf() float64 {
	one, zero := 1.0, 0.0
	return one / zero
}
