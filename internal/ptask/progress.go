package ptask

import "sync"

// Progress is the in-task interim-update channel of Parallel Task: a
// running task publishes intermediate values ("intermittent updates as
// results are found", §IV-C items 4 and 7) and registered handlers receive
// them on the runtime's event loop. Unlike MultiTask.NotifyEach, which
// fires once per completed sub-task, Progress lets a single long-running
// task stream updates while it is still executing.
//
// Handlers registered after a publication receive only later values;
// publication order is preserved per publisher.
type Progress[P any] struct {
	rt *Runtime

	mu       sync.Mutex
	handlers []func(P)
	closed   bool
	count    int64
}

// NewProgress creates a progress channel tied to rt's event loop.
func NewProgress[P any](rt *Runtime) *Progress[P] {
	return &Progress[P]{rt: rt}
}

// Notify registers a handler for future publications. Multiple handlers
// receive every value, each via the event loop when one is registered.
func (p *Progress[P]) Notify(fn func(P)) {
	p.mu.Lock()
	p.handlers = append(p.handlers, fn)
	p.mu.Unlock()
}

// Publish delivers v to every registered handler. It is safe to call from
// any task or goroutine; publications after Close are dropped. It returns
// whether the value was delivered to the dispatch queue.
func (p *Progress[P]) Publish(v P) bool {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return false
	}
	hs := make([]func(P), len(p.handlers))
	copy(hs, p.handlers)
	p.count++
	p.mu.Unlock()
	for _, h := range hs {
		h := h
		p.rt.dispatch(func() { h(v) })
	}
	return true
}

// Count returns the number of accepted publications.
func (p *Progress[P]) Count() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.count
}

// Close stops further publications. It does not flush the event loop;
// handlers already dispatched still run.
func (p *Progress[P]) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
}
