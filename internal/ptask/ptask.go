// Package ptask reproduces Parallel Task, the PARC lab's task-parallelism
// model for object-oriented desktop and mobile applications (Giacaman &
// Sinnen, IJPP 41(5), 2013; §IV-B of the reproduced paper). The Java
// original extends the language with a TASK keyword; this Go reproduction
// provides the same runtime semantics as a library:
//
//   - tasks are futures executed by a work-stealing pool (Run);
//   - tasks may depend on other tasks and start only when every
//     dependence has completed (RunAfter) — the task-DAG model;
//   - multi-tasks fan one logical task out into one sub-task per element
//     (RunMulti), Parallel Task's "TASK(*)";
//   - completion and interim-result handlers are delivered on the GUI
//     event-dispatch thread (Notify / NotifyEach), the feature that makes
//     the model suitable for interactive applications;
//   - failures inside tasks surface as errors on the future, never as a
//     crashed worker (the asynchronous-exception model);
//   - joins "help": a goroutine waiting on a task executes other queued
//     tasks, so recursive decompositions run on pools of any size.
package ptask

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"parc751/internal/core"
	"parc751/internal/eventloop"
	"parc751/internal/faultinject"
	"parc751/internal/parctrace"
	"parc751/internal/sched"
)

// ErrCancelled is the error carried by a task cancelled before it ran.
var ErrCancelled = errors.New("ptask: task cancelled")

// Task states.
const (
	stateWaiting int32 = iota // waiting on dependences
	stateQueued               // submitted to the pool, not yet running
	stateRunning
	stateDone
	stateCancelled
)

// Runtime owns the worker pool and (optionally) the GUI event loop used
// for handler delivery. A Runtime must be Shutdown when no longer needed.
type Runtime struct {
	pool *core.Pool
	loop *eventloop.Loop
}

// NewRuntime starts a runtime with the given number of worker threads.
func NewRuntime(workers int) *Runtime {
	return &Runtime{pool: core.NewPool(workers)}
}

// SetEventLoop registers the GUI event loop on which Notify handlers run.
// Without one, handlers run inline on the completing worker.
func (rt *Runtime) SetEventLoop(l *eventloop.Loop) { rt.loop = l }

// EventLoop returns the registered loop, or nil.
func (rt *Runtime) EventLoop() *eventloop.Loop { return rt.loop }

// Workers returns the pool size.
func (rt *Runtime) Workers() int { return rt.pool.Size() }

// Shutdown drains outstanding work and stops the workers. The runtime is
// dead afterwards: submitting more tasks (Run, RunAfter, RunMulti, ...)
// panics, because no worker would ever execute them.
func (rt *Runtime) Shutdown() { rt.pool.Shutdown() }

// SetFaultInjector attaches (or, with nil, detaches) a chaos injector on
// the underlying pool: submit/steal/run hooks fire in the pool, and task
// bodies pass the SiteTaskBody point under their panic capture.
func (rt *Runtime) SetFaultInjector(in *faultinject.Injector) { rt.pool.SetFaultInjector(in) }

// ShutdownTimeout drains like Shutdown but gives up after d, abandoning
// wedged or unstarted tasks (see core.Pool.ShutdownTimeout). It returns
// nil on a clean drain.
func (rt *Runtime) ShutdownTimeout(d time.Duration) error { return rt.pool.ShutdownTimeout(d) }

// SchedStats returns a point-in-time snapshot of the underlying pool's
// scheduler state: per-worker push/pop/steal/park/wake counts, global
// queue activity, and the sampled submit→start latency histogram.
func (rt *Runtime) SchedStats() sched.Snapshot { return rt.pool.Stats() }

// dispatch routes a handler to the event loop when one is registered and
// still accepting events; otherwise the handler runs inline.
func (rt *Runtime) dispatch(fn func()) {
	if rt.loop != nil {
		if err := rt.loop.InvokeLater(fn); err == nil {
			return
		}
	}
	fn()
}

// await blocks until done, helping the pool if called from a worker so
// that joins never deadlock.
func (rt *Runtime) await(done <-chan struct{}) {
	if rt.pool.OnWorker() {
		rt.pool.Help(done)
		return
	}
	<-done
}

// Dep is the dependence interface: anything whose completion a task can
// wait on. Task[T] (any T) and MultiTask[T] both satisfy it.
type Dep interface {
	// onDone arranges for fn to be called exactly once when the
	// dependence completes; if already complete, fn runs immediately.
	onDone(fn func())
	// depErr returns the dependence's settled error (nil on success).
	// Valid only once the dependence is done — callers reach it from
	// inside an onDone callback, where completion is guaranteed.
	depErr() error
}

// Task is an asynchronous computation producing a T. Create with Run,
// RunAfter, or the failure-semantics variants RunCtx/RunAfterCtx
// (failure.go), or as part of a multi-task.
type Task[T any] struct {
	rt    *Runtime
	fut   *core.Future[T]
	state atomic.Int32

	// gen snapshots the pooled future envelope's recycle generation at
	// acquisition; accessors re-check it so a handle whose envelope was
	// Released and recycled panics instead of reading a successor task's
	// result. released makes Release single-shot.
	gen      uint64
	released atomic.Bool

	// tid is the parctrace task id, assigned at construction while a
	// recorder is attached (0 otherwise). The scheduler reuses it for
	// the submit/run/complete edges via TraceTaskID, so dependence edges
	// recorded here and scheduler edges name the same DAG node.
	tid uint64

	mu        sync.Mutex
	callbacks []func()
	waitDeps  int
	body      func() (T, error)

	// Failure-semantics extensions (see failure.go). Legacy constructors
	// leave these zero: DepRun policy, no context, no retry.
	depPolicy DepPolicy
	ctx       context.Context
	retry     *RetryPolicy
}

// Run submits fn for asynchronous execution and returns its task handle.
func Run[T any](rt *Runtime, fn func() (T, error)) *Task[T] {
	return RunAfter(rt, nil, fn)
}

// RunAfter submits fn to run only after every dependence in deps has
// completed (whether successfully, with an error, or cancelled — the
// dependent can inspect its dependences if it cares; use RunAfterCtx for
// the propagating DepCancel policy). A nil or empty deps behaves like
// Run.
func RunAfter[T any](rt *Runtime, deps []Dep, fn func() (T, error)) *Task[T] {
	fut := futurePoolFor[T]().Get()
	t := &Task[T]{rt: rt, fut: fut, gen: fut.Gen(), body: fn}
	t.state.Store(stateWaiting)
	t.wireDeps(deps)
	return t
}

// wireDeps arms the dependence countdown (or enqueues immediately when
// there are none). Shared by the legacy and failure-semantics
// constructors.
func (t *Task[T]) wireDeps(deps []Dep) {
	if rec := parctrace.Active(); rec != nil {
		t.tid = rec.NewTaskID()
		// Dependence edges are recorded at wiring time — before the task
		// can possibly be enqueued — so an edge always precedes its
		// dependent's submit in the trace.
		for _, d := range deps {
			if tagged, ok := d.(parctrace.Tagged); ok {
				if dep := tagged.TraceTaskID(); dep != 0 {
					rec.Record(parctrace.KDepend, -1, t.tid, dep)
				}
			}
		}
	}
	if len(deps) == 0 {
		t.enqueue()
		return
	}
	t.mu.Lock()
	t.waitDeps = len(deps)
	t.mu.Unlock()
	for _, d := range deps {
		d := d
		d.onDone(func() { t.depDone(d.depErr()) })
	}
}

func (t *Task[T]) depDone(err error) {
	if err != nil && t.depPolicy == DepCancel {
		// Propagate immediately: the dependent settles as cancelled with
		// a wrapping DepError the moment any dependence fails, which in
		// turn fails ITS dependents — failure flows down the DAG instead
		// of dependents running against missing inputs.
		t.cancelWith(&DepError{Cause: err})
	}
	t.mu.Lock()
	t.waitDeps--
	ready := t.waitDeps == 0
	t.mu.Unlock()
	if ready {
		t.enqueue()
	}
}

func (t *Task[T]) enqueue() {
	if !t.state.CompareAndSwap(stateWaiting, stateQueued) {
		return // cancelled while waiting on dependences
	}
	// SubmitRunnable, not Submit(t.RunTask): the method-value expression
	// would allocate a closure per task, while the Task pointer enters
	// the Runnable interface allocation-free. This is half of the old
	// 2 allocs/op on the Run→Result path (the other is the handle
	// itself, which is deliberately not pooled — see futurepool.go).
	t.rt.pool.SubmitRunnable(t)
}

// TraceTaskID implements parctrace.Tagged: it exposes the trace id this
// task was assigned at construction (0 when no recorder was attached),
// letting the scheduler stamp its submit/run/complete edges with it.
func (t *Task[T]) TraceTaskID() uint64 { return t.tid }

// RunTask implements core.Runnable: it is the scheduler's entry into the
// task and must only be called by the pool. A stray external call is a
// harmless no-op — the queued→running CAS admits exactly one execution.
func (t *Task[T]) RunTask() {
	if !t.state.CompareAndSwap(stateQueued, stateRunning) {
		return // cancelled while queued: the closure must not execute
	}
	t.mu.Lock()
	body := t.body
	t.body = nil // the task owns at most one execution; release the closure
	t.mu.Unlock()
	var val T
	var err error
	if t.ctx != nil && t.ctx.Err() != nil {
		// The context expired between enqueue and execution; settle
		// without running the body.
		t.complete(stateCancelled, val, ctxError(t.ctx.Err()))
		return
	}
	in := t.rt.pool.FaultInjector()
	attempt := 0
	for {
		err = nil
		if perr := core.Catch(func() {
			if in != nil {
				// Inside Catch: an injected panic surfaces as an error on
				// this future, never as a crashed worker.
				in.TaskBody()
			}
			val, err = body()
		}); perr != nil {
			err = perr
		}
		if err == nil || t.retry == nil || attempt >= t.retry.MaxAttempts-1 ||
			!t.retry.retryable(err) {
			break
		}
		if !sleepCtx(t.ctx, t.retry.Backoff(attempt)) {
			err = ctxError(t.ctx.Err())
			break
		}
		attempt++
	}
	t.complete(stateDone, val, err)
}

func (t *Task[T]) complete(final int32, v T, err error) {
	t.state.Store(final)
	t.fut.Complete(v, err)
	t.mu.Lock()
	cbs := t.callbacks
	t.callbacks = nil
	t.mu.Unlock()
	for _, cb := range cbs {
		cb()
	}
}

// onDone implements Dep.
func (t *Task[T]) onDone(fn func()) {
	t.mu.Lock()
	if t.fut.IsDone() {
		t.mu.Unlock()
		fn()
		return
	}
	t.callbacks = append(t.callbacks, fn)
	t.mu.Unlock()
}

// depErr implements Dep.
func (t *Task[T]) depErr() error {
	_, err, _ := t.fut.TryGet()
	return err
}

// Cancel attempts to cancel the task before it runs. It returns true when
// the task will never execute (its future completes with ErrCancelled and
// the body closure is released without running); false when the task is
// already running or finished.
func (t *Task[T]) Cancel() bool {
	return t.cancelWith(ErrCancelled)
}

// cancelWith is Cancel carrying a specific settlement error (ErrCancelled
// for user cancels, a DepError for DAG propagation, a deadline error for
// expired contexts). The CAS against run()'s queued→running transition is
// what guarantees a queued-then-cancelled task's closure never executes.
func (t *Task[T]) cancelWith(err error) bool {
	if t.state.CompareAndSwap(stateWaiting, stateCancelled) ||
		t.state.CompareAndSwap(stateQueued, stateCancelled) {
		t.mu.Lock()
		t.body = nil // never runs; release captured state eagerly
		t.mu.Unlock()
		var zero T
		t.complete(stateCancelled, zero, err)
		return true
	}
	return false
}

// Cancelled reports whether the task was cancelled.
func (t *Task[T]) Cancelled() bool { return t.state.Load() == stateCancelled }

// Done returns a channel closed when the task completes (or is cancelled).
func (t *Task[T]) Done() <-chan struct{} {
	t.fut.CheckGen(t.gen)
	return t.fut.Done()
}

// IsDone reports completion without blocking.
func (t *Task[T]) IsDone() bool {
	t.fut.CheckGen(t.gen)
	return t.fut.IsDone()
}

// Result joins the task: it blocks until completion and returns the value
// and error. Called from inside another task it helps the pool, so
// arbitrary recursive joins are safe. Only the helping path materialises
// the future's done channel — an external join, or one on an already
// finished task, blocks (if at all) on the future's internal condition
// and allocates nothing.
func (t *Task[T]) Result() (T, error) {
	t.fut.CheckGen(t.gen)
	if !t.fut.IsDone() && t.rt.pool.OnWorker() {
		t.rt.pool.Help(t.fut.Done())
	}
	return t.fut.Get()
}

// Notify registers a completion handler delivered on the runtime's event
// loop (or inline when none is registered). Registering after completion
// delivers immediately. Multiple handlers are allowed.
func (t *Task[T]) Notify(fn func(T, error)) {
	t.onDone(func() {
		v, err := t.fut.Get()
		t.rt.dispatch(func() { fn(v, err) })
	})
}

// MultiTask is Parallel Task's TASK(*): one logical task expanded into n
// sub-tasks, with per-element interim results and an aggregate join.
type MultiTask[T any] struct {
	rt        *Runtime
	tasks     []*Task[T]
	agg       *core.Future[[]T]
	remaining atomic.Int32
	policy    MultiPolicy
	failFirst sync.Once

	// tid is the multi-task's own parctrace node id; the recorder links
	// it to every sub-task with a depend edge so the fan-out is visible
	// as one logical node in the DAG.
	tid uint64

	mu        sync.Mutex
	callbacks []func()
}

// RunMulti launches fn(i) for every i in [0, n) as sub-tasks and returns
// the multi-task handle. n <= 0 yields an immediately-complete empty
// handle (a negative n must not leave remaining below zero, or the
// aggregate future would never complete and Results would hang forever).
// The default failure policy is MultiFirstError; RunMultiPolicy selects
// fail-fast or collect-all semantics.
func RunMulti[T any](rt *Runtime, n int, fn func(i int) (T, error)) *MultiTask[T] {
	return RunMultiPolicy(rt, n, MultiFirstError, fn)
}

// RunMultiPolicy is RunMulti with an explicit failure policy (see
// MultiPolicy in failure.go): FailFast cancels not-yet-started siblings
// the moment any sub-task fails, CollectAll joins every error.
func RunMultiPolicy[T any](rt *Runtime, n int, policy MultiPolicy, fn func(i int) (T, error)) *MultiTask[T] {
	m := &MultiTask[T]{rt: rt, agg: core.NewFuture[[]T](), policy: policy}
	if n <= 0 {
		m.agg.Complete(nil, nil)
		return m
	}
	m.remaining.Store(int32(n))
	m.tasks = make([]*Task[T], n)
	for i := 0; i < n; i++ {
		i := i
		m.tasks[i] = Run(rt, func() (T, error) { return fn(i) })
	}
	if rec := parctrace.Active(); rec != nil {
		m.tid = rec.NewTaskID()
		for _, tk := range m.tasks {
			if tk.tid != 0 {
				rec.Record(parctrace.KDepend, -1, m.tid, tk.tid)
			}
		}
	}
	// Wire completions only after every sub-task exists: a fail-fast
	// trigger walks the whole slice to cancel siblings.
	for _, tk := range m.tasks {
		tk := tk
		tk.onDone(func() { m.subDone(tk) })
	}
	return m
}

func (m *MultiTask[T]) subDone(tk *Task[T]) {
	if m.policy == MultiFailFast {
		if err := tk.depErr(); err != nil && !errors.Is(err, ErrCancelled) {
			// First real failure: cancel every sibling that has not
			// started. Cancelled siblings settle immediately with
			// ErrCancelled, so the aggregate join still completes.
			m.failFirst.Do(func() {
				for _, s := range m.tasks {
					if s != tk {
						s.Cancel()
					}
				}
			})
		}
	}
	if m.remaining.Add(-1) != 0 {
		return
	}
	vals := make([]T, len(m.tasks))
	errs := make([]error, 0, len(m.tasks))
	var firstReal error
	for i, t := range m.tasks {
		v, err := t.fut.Get()
		vals[i] = v
		if err != nil {
			errs = append(errs, err)
			if firstReal == nil && !errors.Is(err, ErrCancelled) {
				firstReal = err
			}
		}
	}
	var aggErr error
	switch {
	case len(errs) == 0:
		// all succeeded
	case m.policy == MultiCollectAll:
		aggErr = errors.Join(errs...)
	case m.policy == MultiFailFast && firstReal != nil:
		// Surface the root cause, not the ErrCancelled cascade it caused.
		aggErr = firstReal
	default:
		aggErr = errs[0]
	}
	m.agg.Complete(vals, aggErr)
	m.mu.Lock()
	cbs := m.callbacks
	m.callbacks = nil
	m.mu.Unlock()
	for _, cb := range cbs {
		cb()
	}
}

// TraceTaskID implements parctrace.Tagged (see Task.TraceTaskID).
func (m *MultiTask[T]) TraceTaskID() uint64 { return m.tid }

// depErr implements Dep.
func (m *MultiTask[T]) depErr() error {
	_, err, _ := m.agg.TryGet()
	return err
}

// onDone implements Dep.
func (m *MultiTask[T]) onDone(fn func()) {
	m.mu.Lock()
	if m.agg.IsDone() {
		m.mu.Unlock()
		fn()
		return
	}
	m.callbacks = append(m.callbacks, fn)
	m.mu.Unlock()
}

// Tasks returns the sub-task handles (nil for an empty multi-task).
func (m *MultiTask[T]) Tasks() []*Task[T] { return m.tasks }

// Done returns a channel closed when every sub-task has completed.
func (m *MultiTask[T]) Done() <-chan struct{} { return m.agg.Done() }

// Results joins all sub-tasks and returns their values in element order,
// along with the first error encountered (nil when all succeeded).
func (m *MultiTask[T]) Results() ([]T, error) {
	m.rt.await(m.agg.Done())
	return m.agg.Get()
}

// NotifyEach registers an interim-result handler invoked (on the event
// loop, when registered) as each sub-task completes — the mechanism the
// thumbnail and search projects use to display results while computation
// continues.
func (m *MultiTask[T]) NotifyEach(fn func(i int, v T, err error)) {
	for i, t := range m.tasks {
		i, t := i, t
		t.Notify(func(v T, err error) { fn(i, v, err) })
	}
}

// Cancel attempts to cancel every sub-task that has not yet started and
// returns how many were cancelled. Running and finished sub-tasks are
// unaffected; their results remain available. This is the "stop the
// search" button of the interactive projects.
func (m *MultiTask[T]) Cancel() int {
	n := 0
	for _, t := range m.tasks {
		if t.Cancel() {
			n++
		}
	}
	return n
}

// Notify registers an aggregate completion handler on the event loop.
func (m *MultiTask[T]) Notify(fn func([]T, error)) {
	m.onDone(func() {
		v, err := m.agg.Get()
		m.rt.dispatch(func() { fn(v, err) })
	})
}

// Then chains a continuation: it returns a task that runs fn with t's
// value after t completes. If t failed, fn is skipped and the error
// propagates — the monadic composition students reach for when wiring
// task pipelines.
func Then[T, U any](t *Task[T], fn func(T) (U, error)) *Task[U] {
	return RunAfter(t.rt, []Dep{t}, func() (U, error) {
		v, err := t.Result()
		if err != nil {
			var zero U
			return zero, err
		}
		return fn(v)
	})
}

// Invoke is a convenience for void tasks: it wraps fn in a Task[struct{}].
func Invoke(rt *Runtime, fn func() error) *Task[struct{}] {
	return Run(rt, func() (struct{}, error) { return struct{}{}, fn() })
}

// WaitAll joins a set of dependences, helping the pool when called from a
// worker. It is the bulk barrier used by fork-join style code.
func WaitAll(rt *Runtime, deps ...Dep) {
	if len(deps) == 0 {
		return
	}
	done := make(chan struct{})
	var remaining atomic.Int32
	remaining.Store(int32(len(deps)))
	for _, d := range deps {
		d.onDone(func() {
			if remaining.Add(-1) == 0 {
				close(done)
			}
		})
	}
	rt.await(done)
}
