package ptask

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"parc751/internal/eventloop"
)

func newRT(t *testing.T, workers int) *Runtime {
	t.Helper()
	rt := NewRuntime(workers)
	t.Cleanup(rt.Shutdown)
	return rt
}

func TestRunAndResult(t *testing.T) {
	rt := newRT(t, 2)
	task := Run(rt, func() (int, error) { return 21 * 2, nil })
	v, err := task.Result()
	if v != 42 || err != nil {
		t.Fatalf("Result = %d, %v", v, err)
	}
	if !task.IsDone() {
		t.Error("IsDone false after Result")
	}
}

func TestRunError(t *testing.T) {
	rt := newRT(t, 1)
	want := errors.New("compute failed")
	task := Run(rt, func() (int, error) { return 0, want })
	if _, err := task.Result(); err != want {
		t.Fatalf("err = %v", err)
	}
}

func TestPanicBecomesError(t *testing.T) {
	rt := newRT(t, 1)
	task := Run(rt, func() (int, error) { panic("kaboom") })
	_, err := task.Result()
	if err == nil {
		t.Fatal("panic did not surface as error")
	}
	// Runtime must still be usable.
	v, err := Run(rt, func() (int, error) { return 1, nil }).Result()
	if v != 1 || err != nil {
		t.Fatal("runtime dead after panicking task")
	}
}

func TestDependencesOrdering(t *testing.T) {
	rt := newRT(t, 4)
	var order []string
	var mu sync.Mutex
	log := func(s string) {
		mu.Lock()
		order = append(order, s)
		mu.Unlock()
	}
	a := Run(rt, func() (int, error) {
		time.Sleep(10 * time.Millisecond)
		log("a")
		return 1, nil
	})
	b := Run(rt, func() (int, error) {
		time.Sleep(5 * time.Millisecond)
		log("b")
		return 2, nil
	})
	c := RunAfter(rt, []Dep{a, b}, func() (int, error) {
		log("c")
		av, _ := a.Result()
		bv, _ := b.Result()
		return av + bv, nil
	})
	v, err := c.Result()
	if v != 3 || err != nil {
		t.Fatalf("c = %d, %v", v, err)
	}
	mu.Lock()
	defer mu.Unlock()
	if order[len(order)-1] != "c" {
		t.Fatalf("dependent ran before dependences: %v", order)
	}
}

func TestDependenceOnCompletedTask(t *testing.T) {
	rt := newRT(t, 2)
	a := Run(rt, func() (int, error) { return 5, nil })
	a.Result()
	b := RunAfter(rt, []Dep{a}, func() (int, error) {
		v, _ := a.Result()
		return v * 2, nil
	})
	if v, _ := b.Result(); v != 10 {
		t.Fatalf("b = %d", v)
	}
}

func TestDiamondDAG(t *testing.T) {
	//    a
	//   / \
	//  b   c
	//   \ /
	//    d
	rt := newRT(t, 4)
	var aDone, bDone, cDone atomic.Bool
	a := Run(rt, func() (int, error) { aDone.Store(true); return 1, nil })
	b := RunAfter(rt, []Dep{a}, func() (int, error) {
		if !aDone.Load() {
			t.Error("b ran before a")
		}
		bDone.Store(true)
		return 2, nil
	})
	c := RunAfter(rt, []Dep{a}, func() (int, error) {
		if !aDone.Load() {
			t.Error("c ran before a")
		}
		cDone.Store(true)
		return 3, nil
	})
	d := RunAfter(rt, []Dep{b, c}, func() (int, error) {
		if !bDone.Load() || !cDone.Load() {
			t.Error("d ran before b and c")
		}
		return 4, nil
	})
	if v, err := d.Result(); v != 4 || err != nil {
		t.Fatalf("d = %d, %v", v, err)
	}
}

func TestDAGPropertyRandomChains(t *testing.T) {
	// Property: in a random linear chain, tasks observe strictly
	// increasing completion order.
	f := func(nRaw uint8) bool {
		n := int(nRaw%20) + 2
		rt := NewRuntime(4)
		defer rt.Shutdown()
		var last atomic.Int32
		last.Store(-1)
		tasks := make([]*Task[int], n)
		ok := true
		for i := 0; i < n; i++ {
			i := i
			var deps []Dep
			if i > 0 {
				deps = []Dep{tasks[i-1]}
			}
			tasks[i] = RunAfter(rt, deps, func() (int, error) {
				if !last.CompareAndSwap(int32(i-1), int32(i)) {
					ok = false
				}
				return i, nil
			})
		}
		tasks[n-1].Result()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCancelQueuedTask(t *testing.T) {
	rt := newRT(t, 1)
	block := make(chan struct{})
	// Occupy the only worker so the next task stays queued.
	busy := Run(rt, func() (int, error) { <-block; return 0, nil })
	victim := Run(rt, func() (int, error) {
		t.Error("cancelled task executed")
		return 0, nil
	})
	if !victim.Cancel() {
		t.Fatal("Cancel returned false for queued task")
	}
	if !victim.Cancelled() {
		t.Fatal("Cancelled() false")
	}
	if _, err := victim.Result(); err != ErrCancelled {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	close(block)
	busy.Result()
}

func TestCancelCompletedTaskFails(t *testing.T) {
	rt := newRT(t, 1)
	task := Run(rt, func() (int, error) { return 9, nil })
	task.Result()
	if task.Cancel() {
		t.Fatal("cancelled a completed task")
	}
	if v, err := task.Result(); v != 9 || err != nil {
		t.Fatal("completed result corrupted by Cancel attempt")
	}
}

func TestCancelWaitingTaskSkipsDependent(t *testing.T) {
	rt := newRT(t, 2)
	gate := make(chan struct{})
	a := Run(rt, func() (int, error) { <-gate; return 1, nil })
	b := RunAfter(rt, []Dep{a}, func() (int, error) { return 2, nil })
	if !b.Cancel() {
		t.Fatal("could not cancel waiting task")
	}
	close(gate)
	if _, err := b.Result(); err != ErrCancelled {
		t.Fatalf("err = %v", err)
	}
	a.Result()
}

func TestRecursiveJoinSingleWorker(t *testing.T) {
	// Quicksort-style recursion joining on children must not deadlock on
	// a one-worker pool (helping join).
	rt := newRT(t, 1)
	var fib func(n int) int
	fib = func(n int) int {
		if n < 2 {
			return n
		}
		child := Run(rt, func() (int, error) { return fib(n - 1), nil })
		b := fib(n - 2)
		a, _ := child.Result()
		return a + b
	}
	root := Run(rt, func() (int, error) { return fib(10), nil })
	done := make(chan struct{})
	var v int
	go func() { v, _ = root.Result(); close(done) }()
	select {
	case <-done:
		if v != 55 {
			t.Fatalf("fib(10) = %d", v)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("recursive join deadlocked")
	}
}

func TestMultiTaskResultsInOrder(t *testing.T) {
	rt := newRT(t, 4)
	m := RunMulti(rt, 50, func(i int) (int, error) {
		time.Sleep(time.Duration(50-i) * 10 * time.Microsecond)
		return i * i, nil
	})
	vals, err := m.Results()
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 50 {
		t.Fatalf("len = %d", len(vals))
	}
	for i, v := range vals {
		if v != i*i {
			t.Fatalf("vals[%d] = %d", i, v)
		}
	}
}

func TestMultiTaskEmpty(t *testing.T) {
	rt := newRT(t, 2)
	m := RunMulti(rt, 0, func(i int) (int, error) { return 0, nil })
	vals, err := m.Results()
	if err != nil || len(vals) != 0 {
		t.Fatalf("empty multi = %v, %v", vals, err)
	}
	if m.Tasks() != nil {
		t.Error("empty multi has tasks")
	}
}

func TestMultiTaskFirstError(t *testing.T) {
	rt := newRT(t, 4)
	m := RunMulti(rt, 10, func(i int) (int, error) {
		if i == 3 {
			return 0, fmt.Errorf("sub %d failed", i)
		}
		return i, nil
	})
	vals, err := m.Results()
	if err == nil {
		t.Fatal("error swallowed")
	}
	if len(vals) != 10 {
		t.Fatalf("partial results: %d", len(vals))
	}
	if vals[5] != 5 {
		t.Error("successful sub-results lost")
	}
}

func TestMultiTaskInterimResults(t *testing.T) {
	rt := newRT(t, 4)
	var mu sync.Mutex
	var seen []int
	m := RunMulti(rt, 20, func(i int) (int, error) { return i, nil })
	m.NotifyEach(func(i int, v int, err error) {
		mu.Lock()
		seen = append(seen, v)
		mu.Unlock()
	})
	m.Results()
	// NotifyEach handlers may still be in flight; wait briefly for all.
	deadline := time.After(2 * time.Second)
	for {
		mu.Lock()
		n := len(seen)
		mu.Unlock()
		if n == 20 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("only %d interim notifications", n)
		case <-time.After(time.Millisecond):
		}
	}
	sort.Ints(seen)
	for i, v := range seen {
		if v != i {
			t.Fatalf("missing interim result %d", i)
		}
	}
}

func TestNotifyRunsOnEventLoop(t *testing.T) {
	rt := newRT(t, 2)
	loop := eventloop.New()
	defer loop.Close()
	rt.SetEventLoop(loop)
	if rt.EventLoop() != loop {
		t.Fatal("EventLoop not recorded")
	}
	onLoop := make(chan bool, 1)
	task := Run(rt, func() (int, error) { return 8, nil })
	task.Notify(func(v int, err error) { onLoop <- loop.OnDispatchThread() })
	select {
	case ok := <-onLoop:
		if !ok {
			t.Fatal("Notify handler not on dispatch thread")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Notify never delivered")
	}
}

func TestNotifyAfterCompletion(t *testing.T) {
	rt := newRT(t, 1)
	task := Run(rt, func() (int, error) { return 3, nil })
	task.Result()
	got := make(chan int, 1)
	task.Notify(func(v int, err error) { got <- v })
	select {
	case v := <-got:
		if v != 3 {
			t.Fatalf("late notify v = %d", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("late notify never delivered")
	}
}

func TestMultiNotifyAggregate(t *testing.T) {
	rt := newRT(t, 2)
	m := RunMulti(rt, 5, func(i int) (int, error) { return i + 1, nil })
	got := make(chan []int, 1)
	m.Notify(func(vs []int, err error) { got <- vs })
	select {
	case vs := <-got:
		sum := 0
		for _, v := range vs {
			sum += v
		}
		if sum != 15 {
			t.Fatalf("aggregate sum = %d", sum)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("aggregate notify never delivered")
	}
}

func TestMultiTaskAsDependence(t *testing.T) {
	rt := newRT(t, 4)
	m := RunMulti(rt, 8, func(i int) (int, error) { return i, nil })
	after := RunAfter(rt, []Dep{m}, func() (int, error) {
		vs, _ := m.Results()
		sum := 0
		for _, v := range vs {
			sum += v
		}
		return sum, nil
	})
	if v, _ := after.Result(); v != 28 {
		t.Fatalf("sum after multi = %d", v)
	}
}

func TestMultiTaskCancelRemaining(t *testing.T) {
	rt := newRT(t, 1)
	block := make(chan struct{})
	// Occupy the single worker so most sub-tasks stay queued.
	busy := Invoke(rt, func() error { <-block; return nil })
	var ran atomic.Int32
	m := RunMulti(rt, 20, func(i int) (int, error) {
		ran.Add(1)
		return i, nil
	})
	cancelled := m.Cancel()
	close(block)
	busy.Result()
	vals, err := m.Results()
	if err != ErrCancelled {
		t.Fatalf("aggregate err = %v, want ErrCancelled", err)
	}
	if cancelled == 0 {
		t.Fatal("nothing was cancelled despite a blocked worker")
	}
	if int(ran.Load())+cancelled != 20 {
		t.Fatalf("ran %d + cancelled %d != 20", ran.Load(), cancelled)
	}
	if len(vals) != 20 {
		t.Fatalf("results length = %d", len(vals))
	}
}

func TestMultiTaskCancelAfterCompletion(t *testing.T) {
	rt := newRT(t, 2)
	m := RunMulti(rt, 5, func(i int) (int, error) { return i, nil })
	m.Results()
	if n := m.Cancel(); n != 0 {
		t.Fatalf("cancelled %d completed sub-tasks", n)
	}
	if _, err := m.Results(); err != nil {
		t.Fatalf("completed results corrupted: %v", err)
	}
}

func TestInvoke(t *testing.T) {
	rt := newRT(t, 1)
	var ran atomic.Bool
	task := Invoke(rt, func() error { ran.Store(true); return nil })
	if _, err := task.Result(); err != nil {
		t.Fatal(err)
	}
	if !ran.Load() {
		t.Fatal("Invoke body never ran")
	}
}

func TestThenChains(t *testing.T) {
	rt := newRT(t, 2)
	a := Run(rt, func() (int, error) { return 6, nil })
	b := Then(a, func(v int) (string, error) { return fmt.Sprintf("v=%d", v*7), nil })
	s, err := b.Result()
	if err != nil || s != "v=42" {
		t.Fatalf("Then = %q, %v", s, err)
	}
}

func TestThenPropagatesError(t *testing.T) {
	rt := newRT(t, 2)
	want := errors.New("upstream failed")
	a := Run(rt, func() (int, error) { return 0, want })
	ran := false
	b := Then(a, func(v int) (int, error) { ran = true; return v, nil })
	if _, err := b.Result(); err != want {
		t.Fatalf("err = %v", err)
	}
	if ran {
		t.Fatal("continuation ran despite upstream error")
	}
}

func TestThenChainsDeep(t *testing.T) {
	rt := newRT(t, 1)
	task := Run(rt, func() (int, error) { return 0, nil })
	for i := 0; i < 50; i++ {
		task = Then(task, func(v int) (int, error) { return v + 1, nil })
	}
	if v, _ := task.Result(); v != 50 {
		t.Fatalf("deep chain = %d", v)
	}
}

func TestWaitAll(t *testing.T) {
	rt := newRT(t, 4)
	var n atomic.Int32
	deps := make([]Dep, 10)
	for i := range deps {
		deps[i] = Invoke(rt, func() error { n.Add(1); return nil })
	}
	WaitAll(rt, deps...)
	if n.Load() != 10 {
		t.Fatalf("WaitAll returned with %d of 10 done", n.Load())
	}
	WaitAll(rt) // empty must not block
}

func TestManyConcurrentTasks(t *testing.T) {
	rt := newRT(t, 8)
	var sum atomic.Int64
	m := RunMulti(rt, 2000, func(i int) (struct{}, error) {
		sum.Add(int64(i))
		return struct{}{}, nil
	})
	if _, err := m.Results(); err != nil {
		t.Fatal(err)
	}
	want := int64(2000 * 1999 / 2)
	if sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
}

func BenchmarkRunResult(b *testing.B) {
	rt := NewRuntime(4)
	defer rt.Shutdown()
	for i := 0; i < b.N; i++ {
		Run(rt, func() (int, error) { return i, nil }).Result()
	}
}

func BenchmarkMultiTask100(b *testing.B) {
	rt := NewRuntime(4)
	defer rt.Shutdown()
	for i := 0; i < b.N; i++ {
		RunMulti(rt, 100, func(j int) (int, error) { return j, nil }).Results()
	}
}

func BenchmarkDependenceChain(b *testing.B) {
	rt := NewRuntime(4)
	defer rt.Shutdown()
	for i := 0; i < b.N; i++ {
		a := Run(rt, func() (int, error) { return 1, nil })
		c := RunAfter(rt, []Dep{a}, func() (int, error) { return 2, nil })
		c.Result()
	}
}

// Regression: RunMulti with negative n used to store a negative remaining
// counter, so the aggregate future never completed and Results hung
// forever. n <= 0 must behave as the empty multi-task.
func TestRunMultiNegativeN(t *testing.T) {
	rt := NewRuntime(2)
	defer rt.Shutdown()
	for _, n := range []int{0, -1, -100} {
		m := RunMulti(rt, n, func(i int) (int, error) { return i, nil })
		done := make(chan struct{})
		go func() {
			m.Results()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("RunMulti(n=%d).Results() hung", n)
		}
		vals, err := m.Results()
		if len(vals) != 0 || err != nil {
			t.Fatalf("RunMulti(n=%d) = %v, %v", n, vals, err)
		}
		if m.Tasks() != nil {
			t.Fatalf("RunMulti(n=%d) created sub-tasks", n)
		}
	}
}

// The runtime must expose the pool's scheduler snapshot.
func TestRuntimeSchedStats(t *testing.T) {
	rt := NewRuntime(3)
	defer rt.Shutdown()
	WaitAll(rt, RunMulti(rt, 64, func(i int) (int, error) { return i, nil }))
	s := rt.SchedStats()
	if len(s.Workers) != 3 {
		t.Fatalf("snapshot workers = %d", len(s.Workers))
	}
	if s.Executed < 64 {
		t.Fatalf("snapshot executed = %d, want >= 64", s.Executed)
	}
}
