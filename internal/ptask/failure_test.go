package ptask

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// gate wedges a 1-worker runtime so tests can control exactly when queued
// tasks start executing.
func gate(rt *Runtime) (release func(), started <-chan struct{}) {
	rel := make(chan struct{})
	st := make(chan struct{})
	Run(rt, func() (struct{}, error) {
		close(st)
		<-rel
		return struct{}{}, nil
	})
	<-st
	return func() { close(rel) }, st
}

func TestDepCancelPropagatesDownDAG(t *testing.T) {
	rt := NewRuntime(2)
	defer rt.Shutdown()

	boom := errors.New("boom")
	root := Run(rt, func() (int, error) { return 0, boom })

	var midRan, leafRan atomic.Bool
	mid := RunAfterCtx(rt, nil, []Dep{root}, func(context.Context) (int, error) {
		midRan.Store(true)
		return 1, nil
	})
	leaf := RunAfterCtx(rt, nil, []Dep{mid}, func(context.Context) (int, error) {
		leafRan.Store(true)
		return 2, nil
	})

	_, err := leaf.Result()
	if !errors.Is(err, ErrDepFailed) {
		t.Fatalf("leaf error = %v, want ErrDepFailed in chain", err)
	}
	if !errors.Is(err, ErrCancelled) {
		t.Errorf("DAG-propagated failure should also satisfy errors.Is(_, ErrCancelled), got %v", err)
	}
	if !errors.Is(err, boom) {
		t.Errorf("root cause lost: %v does not wrap %v", err, boom)
	}
	if _, err := mid.Result(); !errors.Is(err, ErrDepFailed) {
		t.Errorf("mid error = %v, want ErrDepFailed", err)
	}
	if midRan.Load() || leafRan.Load() {
		t.Error("dependent bodies ran despite DepCancel policy")
	}
	var de *DepError
	if !errors.As(err, &de) {
		t.Errorf("error chain has no *DepError: %v", err)
	}
}

func TestDepRunPolicyStillRuns(t *testing.T) {
	rt := NewRuntime(2)
	defer rt.Shutdown()

	root := Run(rt, func() (int, error) { return 0, errors.New("boom") })
	// Legacy RunAfter and explicit OnDepFailure(DepRun) both run anyway.
	legacy := RunAfter(rt, []Dep{root}, func() (int, error) { return 7, nil })
	optIn := RunAfterCtx(rt, nil, []Dep{root}, func(context.Context) (int, error) {
		return 8, nil
	}, OnDepFailure(DepRun))

	if v, err := legacy.Result(); err != nil || v != 7 {
		t.Errorf("legacy RunAfter after failed dep = (%d, %v), want (7, nil)", v, err)
	}
	if v, err := optIn.Result(); err != nil || v != 8 {
		t.Errorf("OnDepFailure(DepRun) task = (%d, %v), want (8, nil)", v, err)
	}
}

func TestDeadlineExpiresQueuedTask(t *testing.T) {
	rt := NewRuntime(1)
	defer rt.Shutdown()
	release, _ := gate(rt)

	var ran atomic.Bool
	tk := RunCtx(rt, context.Background(), func(context.Context) (int, error) {
		ran.Store(true)
		return 1, nil
	}, WithDeadline(20*time.Millisecond))

	select {
	case <-tk.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("deadline never fired on a queued task")
	}
	release()
	_, err := tk.Result()
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("queued-task deadline error = %v, want ErrDeadline", err)
	}
	if !tk.Cancelled() {
		t.Error("deadline-expired task not marked cancelled")
	}
	rt.pool.Quiesce()
	if ran.Load() {
		t.Error("body ran after its deadline expired in the queue")
	}
}

func TestDeadlineReachesRunningBody(t *testing.T) {
	rt := NewRuntime(2)
	defer rt.Shutdown()

	tk := RunCtx(rt, context.Background(), func(ctx context.Context) (int, error) {
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-time.After(10 * time.Second):
			return 0, errors.New("deadline never reached the body")
		}
	}, WithDeadline(20*time.Millisecond))

	_, err := tk.Result()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("running body observed %v, want context.DeadlineExceeded", err)
	}
}

func TestCancelledParentContext(t *testing.T) {
	rt := NewRuntime(1)
	defer rt.Shutdown()
	release, _ := gate(rt)

	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Bool
	tk := RunCtx(rt, ctx, func(context.Context) (int, error) {
		ran.Store(true)
		return 1, nil
	})
	cancel()
	<-tk.Done()
	release()
	if _, err := tk.Result(); !errors.Is(err, ErrCancelled) {
		t.Fatalf("parent-cancelled task error = %v, want ErrCancelled", err)
	}
	rt.pool.Quiesce()
	if ran.Load() {
		t.Error("body ran after its parent context was cancelled")
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	rt := NewRuntime(2)
	defer rt.Shutdown()

	var attempts atomic.Int32
	tk := RunCtx(rt, context.Background(), func(context.Context) (int, error) {
		if attempts.Add(1) < 3 {
			return 0, errors.New("transient")
		}
		return 42, nil
	}, WithRetry(RetryPolicy{MaxAttempts: 5, Base: time.Millisecond, Max: 4 * time.Millisecond, Seed: 1}))

	v, err := tk.Result()
	if err != nil || v != 42 {
		t.Fatalf("retried task = (%d, %v), want (42, nil)", v, err)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("attempts = %d, want 3 (fail, fail, succeed)", got)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	rt := NewRuntime(2)
	defer rt.Shutdown()

	var attempts atomic.Int32
	boom := errors.New("permanent")
	tk := RunCtx(rt, context.Background(), func(context.Context) (int, error) {
		attempts.Add(1)
		return 0, boom
	}, WithRetry(RetryPolicy{MaxAttempts: 3, Base: time.Millisecond, Seed: 2}))

	if _, err := tk.Result(); !errors.Is(err, boom) {
		t.Fatalf("exhausted retry error = %v, want the last body error", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("attempts = %d, want exactly MaxAttempts = 3", got)
	}
}

func TestRetryBackoffDeterministicAndCapped(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 8, Base: time.Millisecond, Max: 10 * time.Millisecond, Seed: 99}
	q := RetryPolicy{MaxAttempts: 8, Base: time.Millisecond, Max: 10 * time.Millisecond, Seed: 99}
	for k := 0; k < 8; k++ {
		a, b := p.Backoff(k), q.Backoff(k)
		if a != b {
			t.Fatalf("backoff(%d) not deterministic: %v vs %v", k, a, b)
		}
		if a > 10*time.Millisecond {
			t.Errorf("backoff(%d) = %v exceeds cap", k, a)
		}
		if a <= 0 {
			t.Errorf("backoff(%d) = %v, want positive", k, a)
		}
	}
	if p.retryable(ErrCancelled) || p.retryable(ErrDeadline) ||
		p.retryable(context.Canceled) || p.retryable(fmt.Errorf("wrap: %w", ErrDeadline)) {
		t.Error("cancellation/deadline errors must not be retryable")
	}
	if !p.retryable(errors.New("transient")) {
		t.Error("ordinary errors must be retryable")
	}
}

func TestMultiFailFastCancelsSiblings(t *testing.T) {
	rt := NewRuntime(1)
	defer rt.Shutdown()
	release, _ := gate(rt)

	boom := errors.New("element 0 failed")
	var ran atomic.Int32
	m := RunMultiPolicy(rt, 6, MultiFailFast, func(i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, boom
		}
		return i, nil
	})
	release()

	_, err := m.Results()
	if !errors.Is(err, boom) {
		t.Fatalf("fail-fast aggregate = %v, want the root cause %v", err, boom)
	}
	if errors.Is(err, ErrCancelled) {
		t.Error("fail-fast aggregate surfaced the cancellation cascade instead of the root cause")
	}
	// On a wedged 1-worker pool element 0 runs first and its completion
	// callback cancels every queued sibling before the worker can start
	// them.
	if got := ran.Load(); got != 1 {
		t.Errorf("%d bodies ran, want 1 (fail-fast must stop unstarted siblings)", got)
	}
	cancelled := 0
	for _, tk := range m.Tasks() {
		if tk.Cancelled() {
			cancelled++
		}
	}
	if cancelled != 5 {
		t.Errorf("cancelled siblings = %d, want 5", cancelled)
	}
}

func TestMultiCollectAllJoinsEveryError(t *testing.T) {
	rt := NewRuntime(2)
	defer rt.Shutdown()

	m := RunMultiPolicy(rt, 5, MultiCollectAll, func(i int) (int, error) {
		if i%2 == 1 {
			return 0, fmt.Errorf("element %d failed", i)
		}
		return i, nil
	})
	vals, err := m.Results()
	if err == nil {
		t.Fatal("collect-all lost the errors")
	}
	for _, want := range []string{"element 1 failed", "element 3 failed"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error %q missing %q", err, want)
		}
	}
	if vals[0] != 0 || vals[2] != 2 || vals[4] != 4 {
		t.Errorf("successful element values lost: %v", vals)
	}
}

func TestMultiFirstErrorLegacySemantics(t *testing.T) {
	rt := NewRuntime(2)
	defer rt.Shutdown()

	var ran atomic.Int32
	m := RunMulti(rt, 4, func(i int) (int, error) {
		ran.Add(1)
		if i == 1 {
			return 0, errors.New("boom")
		}
		return i, nil
	})
	if _, err := m.Results(); err == nil || err.Error() != "boom" {
		t.Fatalf("legacy aggregate = %v, want boom", err)
	}
	if ran.Load() != 4 {
		t.Errorf("legacy policy ran %d bodies, want all 4", ran.Load())
	}
}

// TestQueuedCancelSkipsExecution pins the satellite guarantee: cancelling
// a task that is already queued (past its dependence wait) still prevents
// the closure from ever executing, and the future settles ErrCancelled.
func TestQueuedCancelSkipsExecution(t *testing.T) {
	rt := NewRuntime(1)
	defer rt.Shutdown()
	release, _ := gate(rt)

	var ran atomic.Bool
	tk := Run(rt, func() (int, error) {
		ran.Store(true)
		return 1, nil
	})
	if !tk.Cancel() {
		t.Fatal("Cancel on a queued task returned false")
	}
	release()
	if _, err := tk.Result(); !errors.Is(err, ErrCancelled) {
		t.Fatalf("cancelled-while-queued error = %v, want ErrCancelled", err)
	}
	rt.pool.Quiesce()
	if ran.Load() {
		t.Error("queued-then-cancelled closure executed anyway")
	}
	if tk.Cancel() {
		t.Error("second Cancel on a settled task returned true")
	}
}

// TestCancelReleasesBody checks the closure (and anything it captures) is
// dropped on cancellation rather than retained by the dead task handle.
func TestCancelReleasesBody(t *testing.T) {
	rt := NewRuntime(1)
	defer rt.Shutdown()
	release, _ := gate(rt)

	tk := Run(rt, func() (int, error) { return 1, nil })
	tk.Cancel()
	tk.mu.Lock()
	body := tk.body
	tk.mu.Unlock()
	if body != nil {
		t.Error("cancelled task still holds its body closure")
	}
	release()
}
