package ptask

import (
	"reflect"
	"sync"

	"parc751/internal/core"
)

// futurePools holds one core.FuturePool per result type, so every task of
// a given T draws from (and Release returns to) the same freelist. The
// map is keyed by reflect.Type — Go generics give no per-instantiation
// package state, and a sync.Map lookup on the hot path is one hash of an
// interface word, far cheaper than the future allocation it saves.
var futurePools sync.Map // reflect.Type → *core.FuturePool[T]

// futurePoolFor returns the process-wide future freelist for result type T.
func futurePoolFor[T any]() *core.FuturePool[T] {
	key := reflect.TypeFor[T]()
	if v, ok := futurePools.Load(key); ok {
		return v.(*core.FuturePool[T])
	}
	v, _ := futurePools.LoadOrStore(key, &core.FuturePool[T]{})
	return v.(*core.FuturePool[T])
}

// Release recycles the task's future envelope into the per-type freelist,
// so a caller that joins many short-lived tasks in a loop reuses one
// envelope instead of allocating one per task. It is strictly opt-in and
// transfers ownership: the caller must hold the only live reference to
// the task, and the task must be complete (Release panics otherwise, as
// a parked waiter could still be on the future).
//
// After Release, the envelope's generation counter is bumped; any stale
// use of this task — a second Result, Done, IsDone, or Release — panics
// with a generation mismatch instead of silently reading whatever task
// the recycled envelope now belongs to. That hard stop is the safety
// contract that makes pooling futures tolerable at all.
//
// Task handles themselves are deliberately NOT pooled: they are
// user-held objects, and recycling one while a caller retains the
// pointer would alias two logical tasks onto one struct — corruption the
// generation check could not always catch. The future envelope is the
// allocation worth recycling; the handle stays garbage-collected.
func (t *Task[T]) Release() {
	t.fut.CheckGen(t.gen)
	// Completion is checked before the released flag flips so that this
	// panic leaves the handle untouched — the caller can join the task and
	// Release it properly afterwards.
	if !t.fut.IsDone() {
		panic("ptask: Release of an incomplete task (join it first)")
	}
	if !t.released.CompareAndSwap(false, true) {
		panic("ptask: Release called twice on the same task")
	}
	futurePoolFor[T]().Put(t.fut)
}
