package ptask

import (
	"sync"
	"testing"
	"time"

	"parc751/internal/eventloop"
)

func TestProgressDeliversAllValues(t *testing.T) {
	rt := newRT(t, 2)
	prog := NewProgress[int](rt)
	var mu sync.Mutex
	var got []int
	prog.Notify(func(v int) {
		mu.Lock()
		got = append(got, v)
		mu.Unlock()
	})
	task := Invoke(rt, func() error {
		for i := 0; i < 10; i++ {
			prog.Publish(i)
		}
		return nil
	})
	task.Result()
	deadline := time.After(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == 10 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("received %d of 10 publications", n)
		case <-time.After(time.Millisecond):
		}
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("publication order broken: %v", got)
		}
	}
	if prog.Count() != 10 {
		t.Fatalf("Count = %d", prog.Count())
	}
}

func TestProgressOnEventLoop(t *testing.T) {
	rt := newRT(t, 2)
	loop := eventloop.New()
	defer loop.Close()
	rt.SetEventLoop(loop)
	prog := NewProgress[string](rt)
	onLoop := make(chan bool, 1)
	prog.Notify(func(string) { onLoop <- loop.OnDispatchThread() })
	prog.Publish("tick")
	select {
	case ok := <-onLoop:
		if !ok {
			t.Fatal("progress handler off the dispatch thread")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("progress never delivered")
	}
}

func TestProgressMultipleHandlers(t *testing.T) {
	rt := newRT(t, 1)
	prog := NewProgress[int](rt)
	got := make(chan int, 2)
	prog.Notify(func(v int) { got <- v })
	prog.Notify(func(v int) { got <- v * 10 })
	prog.Publish(3)
	sum := <-got + <-got
	if sum != 33 {
		t.Fatalf("handlers received %d", sum)
	}
}

func TestProgressCloseDropsPublications(t *testing.T) {
	rt := newRT(t, 1)
	prog := NewProgress[int](rt)
	var calls int
	prog.Notify(func(int) { calls++ })
	if !prog.Publish(1) {
		t.Fatal("pre-close publish rejected")
	}
	prog.Close()
	if prog.Publish(2) {
		t.Fatal("post-close publish accepted")
	}
	if prog.Count() != 1 {
		t.Fatalf("Count = %d", prog.Count())
	}
}

func TestProgressLateSubscriberMissesEarlyValues(t *testing.T) {
	rt := newRT(t, 1)
	prog := NewProgress[int](rt)
	prog.Publish(1) // nobody listening
	got := make(chan int, 1)
	prog.Notify(func(v int) { got <- v })
	prog.Publish(2)
	select {
	case v := <-got:
		if v != 2 {
			t.Fatalf("late subscriber saw %d", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("late subscriber never notified")
	}
}
