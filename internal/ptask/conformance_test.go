// Conformance suite for the failure-semantics table in DESIGN.md §10.
// Every table cell — event × construct (Task / MultiTask policy / Pyjama
// region) — has a test here asserting exactly what the table promises:
// which futures settle, with which error identities, and whether the
// body ran at all. The suite is an external test package so the Pyjama
// region rows can be exercised alongside the ptask ones.
//
// All tests are named TestConformance* so the CI serve-smoke step
// (`go test -race -run 'TestServe|TestConformance'`) runs the whole
// table on every change.
package ptask_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"parc751/internal/core"
	"parc751/internal/ptask"
	"parc751/internal/pyjama"
)

func newRT(t *testing.T, workers int) *ptask.Runtime {
	t.Helper()
	rt := ptask.NewRuntime(workers)
	t.Cleanup(rt.Shutdown)
	return rt
}

// wedge occupies every worker with a blocked task so that subsequent
// submissions stay queued until release is called. The §10 rows about
// "queued" state (cancel and deadline skip execution) need tasks that
// verifiably never left the queue.
func wedge(t *testing.T, rt *ptask.Runtime) (release func()) {
	t.Helper()
	gate := make(chan struct{})
	var started sync.WaitGroup
	started.Add(rt.Workers())
	for i := 0; i < rt.Workers(); i++ {
		ptask.Run(rt, func() (struct{}, error) {
			started.Done()
			<-gate
			return struct{}{}, nil
		})
	}
	started.Wait()
	var once sync.Once
	return func() { once.Do(func() { close(gate) }) }
}

// awaitDone fails the test if ch does not close within a generous bound.
func awaitDone(t *testing.T, ch <-chan struct{}, what string) {
	t.Helper()
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatalf("%s never settled", what)
	}
}

// --- Row: body returns error ---

// TestConformanceBodyError: a Task's future settles with exactly the
// body's error.
func TestConformanceBodyError(t *testing.T) {
	rt := newRT(t, 2)
	boom := errors.New("boom")
	_, err := ptask.Run(rt, func() (int, error) { return 0, boom }).Result()
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

// TestConformanceBodyErrorMultiFirstError: every sub-task runs to
// settlement and the aggregate error is the first in element order, not
// completion order.
func TestConformanceBodyErrorMultiFirstError(t *testing.T) {
	rt := newRT(t, 4)
	errB, errC := errors.New("errB"), errors.New("errC")
	var ran atomic.Int64
	m := ptask.RunMultiPolicy(rt, 3, ptask.MultiFirstError, func(i int) (int, error) {
		ran.Add(1)
		switch i {
		case 1:
			return 0, errB
		case 2:
			return 0, errC // may settle before errB; element order must still win
		}
		return i, nil
	})
	_, err := m.Results()
	if !errors.Is(err, errB) {
		t.Fatalf("aggregate err = %v, want element-order first %v", err, errB)
	}
	if errors.Is(err, errC) {
		t.Fatalf("aggregate err %v includes later element's error", err)
	}
	if ran.Load() != 3 {
		t.Fatalf("%d sub-tasks ran, want all 3 under MultiFirstError", ran.Load())
	}
}

// TestConformanceBodyErrorMultiFailFast: the first failure cancels every
// not-yet-started sibling and the aggregate error is the root cause, not
// the ErrCancelled cascade.
func TestConformanceBodyErrorMultiFailFast(t *testing.T) {
	rt := newRT(t, 2)
	root := errors.New("root failure")
	gate := make(chan struct{})
	var ran [4]atomic.Bool
	m := ptask.RunMultiPolicy(rt, 4, ptask.MultiFailFast, func(i int) (int, error) {
		ran[i].Store(true)
		if i == 0 {
			return 0, root
		}
		<-gate
		return i, nil
	})
	// Poll until the fail-fast fanout lands on the queued tail. With two
	// workers, tasks 0 and 1 start (global FIFO order) and 2, 3 are still
	// queued when 0 fails.
	deadline := time.Now().Add(5 * time.Second)
	for !m.Tasks()[3].Cancelled() {
		if time.Now().After(deadline) {
			t.Fatal("fail-fast never cancelled the queued sibling")
		}
		time.Sleep(100 * time.Microsecond)
	}
	close(gate)
	_, err := m.Results()
	if !errors.Is(err, root) {
		t.Fatalf("aggregate err = %v, want root cause %v", err, root)
	}
	if errors.Is(err, ptask.ErrCancelled) {
		t.Fatalf("aggregate err %v surfaces the cancellation cascade, want the root cause", err)
	}
	if ran[3].Load() {
		t.Fatal("cancelled sibling's body ran")
	}
}

// TestConformanceBodyErrorMultiCollectAll: everything runs and the
// aggregate joins every sub-task error.
func TestConformanceBodyErrorMultiCollectAll(t *testing.T) {
	rt := newRT(t, 4)
	errA, errC := errors.New("errA"), errors.New("errC")
	var ran atomic.Int64
	m := ptask.RunMultiPolicy(rt, 3, ptask.MultiCollectAll, func(i int) (int, error) {
		ran.Add(1)
		switch i {
		case 0:
			return 0, errA
		case 2:
			return 0, errC
		}
		return i, nil
	})
	_, err := m.Results()
	if !errors.Is(err, errA) || !errors.Is(err, errC) {
		t.Fatalf("aggregate err = %v, want both %v and %v joined", err, errA, errC)
	}
	if ran.Load() != 3 {
		t.Fatalf("%d sub-tasks ran, want all 3 under MultiCollectAll", ran.Load())
	}
}

// --- Row: body panics ---

// TestConformancePanicTask: a panicking body settles the future with
// *core.PanicError, Unwrap reaches the panic value when it is an error,
// and the worker survives to run more tasks.
func TestConformancePanicTask(t *testing.T) {
	rt := newRT(t, 2)
	sentinel := errors.New("panic sentinel")
	_, err := ptask.Run(rt, func() (int, error) { panic(sentinel) }).Result()
	var pe *core.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T %v, want *core.PanicError", err, err)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("err %v does not unwrap to the panic value", err)
	}
	// The worker that recovered the panic is still alive and scheduling.
	for i := 0; i < 10; i++ {
		if v, err := ptask.Run(rt, func() (int, error) { return 7, nil }).Result(); err != nil || v != 7 {
			t.Fatalf("post-panic task %d: (%v, %v)", i, v, err)
		}
	}
}

// TestConformancePanicMulti: a panicking sub-task counts as a failed
// sub-task and surfaces through the aggregate as *core.PanicError.
func TestConformancePanicMulti(t *testing.T) {
	rt := newRT(t, 4)
	m := ptask.RunMulti(rt, 3, func(i int) (int, error) {
		if i == 1 {
			panic("sub-task 1 blew up")
		}
		return i, nil
	})
	_, err := m.Results()
	var pe *core.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("aggregate err = %T %v, want *core.PanicError", err, err)
	}
}

// TestConformancePanicRegion: a Pyjama team member's panic propagates to
// the Parallel caller after the team quiesces — siblings blocked at the
// barrier are released by the abort cascade instead of deadlocking, and
// the re-raised value is the member's own panic, not the cascade.
func TestConformancePanicRegion(t *testing.T) {
	sentinel := errors.New("member 2 died")
	done := make(chan any, 1)
	go func() {
		defer func() { done <- recover() }()
		pyjama.Parallel(4, func(tc *pyjama.TC) {
			if tc.ThreadNum() == 2 {
				panic(sentinel)
			}
			tc.Barrier() // would deadlock without the abort cascade
		})
		done <- nil
	}()
	var r any
	select {
	case r = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("region deadlocked after member panic")
	}
	err, ok := r.(error)
	if !ok {
		t.Fatalf("recovered %T %v, want an error", r, r)
	}
	var pe *core.PanicError
	if !errors.As(err, &pe) || !errors.Is(err, sentinel) {
		t.Fatalf("recovered %v, want *core.PanicError unwrapping to the member's panic", err)
	}
}

// --- Row: Cancel / parent ctx cancelled ---

// TestConformanceCancelQueued: cancelling a queued task means its body
// is never executed and the future settles with ErrCancelled.
func TestConformanceCancelQueued(t *testing.T) {
	rt := newRT(t, 2)
	release := wedge(t, rt)
	defer release()
	var ran atomic.Bool
	tk := ptask.Run(rt, func() (int, error) { ran.Store(true); return 1, nil })
	if !tk.Cancel() {
		t.Fatal("Cancel on a queued task returned false")
	}
	_, err := tk.Result()
	if !errors.Is(err, ptask.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	release()
	rtQuiesce(t, rt)
	if ran.Load() {
		t.Fatal("cancelled queued task's body ran")
	}
}

// TestConformanceCancelRunning: a running body is not interrupted —
// Cancel reports false and the task settles with the body's own result.
func TestConformanceCancelRunning(t *testing.T) {
	rt := newRT(t, 2)
	started := make(chan struct{})
	unblock := make(chan struct{})
	tk := ptask.Run(rt, func() (int, error) { close(started); <-unblock; return 42, nil })
	<-started
	if tk.Cancel() {
		t.Fatal("Cancel claimed to cancel a running task")
	}
	close(unblock)
	v, err := tk.Result()
	if err != nil || v != 42 {
		t.Fatalf("result = (%v, %v), want (42, nil): running bodies run to completion", v, err)
	}
}

// TestConformanceCancelMultiFanout: MultiTask.Cancel reaches every
// unstarted sub-task.
func TestConformanceCancelMultiFanout(t *testing.T) {
	rt := newRT(t, 2)
	release := wedge(t, rt)
	defer release()
	var ran atomic.Int64
	m := ptask.RunMulti(rt, 4, func(i int) (int, error) { ran.Add(1); return i, nil })
	if n := m.Cancel(); n != 4 {
		t.Fatalf("Cancel cancelled %d sub-tasks, want 4 (all queued)", n)
	}
	release()
	awaitDone(t, m.Done(), "cancelled multi-task")
	if ran.Load() != 0 {
		t.Fatalf("%d cancelled sub-task bodies ran", ran.Load())
	}
	for i, tk := range m.Tasks() {
		if _, err := tk.Result(); !errors.Is(err, ptask.ErrCancelled) {
			t.Fatalf("sub-task %d err = %v, want ErrCancelled", i, err)
		}
	}
}

// TestConformanceCancelCtxParent: cancelling the parent context of a
// queued RunCtx task settles it with ErrCancelled without running it.
func TestConformanceCancelCtxParent(t *testing.T) {
	rt := newRT(t, 2)
	release := wedge(t, rt)
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Bool
	tk := ptask.RunCtx(rt, ctx, func(context.Context) (int, error) { ran.Store(true); return 1, nil })
	cancel()
	awaitDone(t, tk.Done(), "ctx-cancelled task")
	_, err := tk.Result()
	if !errors.Is(err, ptask.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	release()
	rtQuiesce(t, rt)
	if ran.Load() {
		t.Fatal("ctx-cancelled queued task's body ran")
	}
}

// TestConformanceCancelBarrierAbort: regions are not cancellable
// mid-phase; the escape hatch is Barrier.Abort, which fails every
// blocked and future Await with ErrBarrierAborted.
func TestConformanceCancelBarrierAbort(t *testing.T) {
	b := core.NewBarrier(2)
	blocked := make(chan error, 1)
	go func() {
		blocked <- core.Catch(func() { b.AwaitAs(0) })
	}()
	time.Sleep(10 * time.Millisecond) // let party 0 block
	b.Abort()
	var err error
	select {
	case err = <-blocked:
	case <-time.After(5 * time.Second):
		t.Fatal("Abort did not release the blocked party")
	}
	var pe *core.PanicError
	if !errors.As(err, &pe) || !errors.Is(err, core.ErrBarrierAborted) {
		t.Fatalf("blocked party got %v, want ErrBarrierAborted", err)
	}
	// Future arrivals fail fast too.
	if err := core.Catch(func() { b.AwaitAs(1) }); err == nil {
		t.Fatal("Await after Abort succeeded")
	}
}

// --- Row: deadline expires ---

// TestConformanceDeadlineQueued: a task whose deadline expires while it
// is still queued skips execution entirely and settles with an error
// matching BOTH ErrDeadline and context.DeadlineExceeded.
func TestConformanceDeadlineQueued(t *testing.T) {
	rt := newRT(t, 2)
	release := wedge(t, rt)
	defer release()
	var ran atomic.Bool
	tk := ptask.RunCtx(rt, context.Background(), func(context.Context) (int, error) {
		ran.Store(true)
		return 1, nil
	}, ptask.WithDeadline(30*time.Millisecond))
	awaitDone(t, tk.Done(), "deadline-expired queued task")
	_, err := tk.Result()
	if !errors.Is(err, ptask.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded reachable too", err)
	}
	release()
	rtQuiesce(t, rt)
	if ran.Load() {
		t.Fatal("deadline-expired queued task's body ran")
	}
}

// TestConformanceDeadlineRunning: an already-running body observes ctx
// cancellation and settles with whatever it returns — cooperative, not
// preemptive.
func TestConformanceDeadlineRunning(t *testing.T) {
	rt := newRT(t, 2)
	started := make(chan struct{})
	tk := ptask.RunCtx(rt, context.Background(), func(ctx context.Context) (int, error) {
		close(started)
		<-ctx.Done()
		return 0, ctx.Err()
	}, ptask.WithDeadline(30*time.Millisecond))
	<-started
	_, err := tk.Result()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want the body's own ctx.Err()", err)
	}
}

// --- Row: dependence fails ---

// TestConformanceDepFailureCancel: under DepCancel (the RunAfterCtx
// default) a failed dependence cancels the dependent with a *DepError
// that matches both ErrDepFailed and ErrCancelled and unwraps to the
// root cause; the dependent's body never runs.
func TestConformanceDepFailureCancel(t *testing.T) {
	rt := newRT(t, 2)
	boom := errors.New("dependence boom")
	a := ptask.Run(rt, func() (int, error) { return 0, boom })
	var ran atomic.Bool
	b := ptask.RunAfterCtx(rt, context.Background(), []ptask.Dep{a},
		func(context.Context) (int, error) { ran.Store(true); return 1, nil })
	_, err := b.Result()
	var de *ptask.DepError
	if !errors.As(err, &de) {
		t.Fatalf("err = %T %v, want *DepError", err, err)
	}
	if !errors.Is(err, ptask.ErrDepFailed) || !errors.Is(err, ptask.ErrCancelled) {
		t.Fatalf("err = %v, want both ErrDepFailed and ErrCancelled identities", err)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v does not preserve the root cause via Unwrap", err)
	}
	rtQuiesce(t, rt)
	if ran.Load() {
		t.Fatal("DepCancel dependent's body ran")
	}
}

// TestConformanceDepFailureCascade: the root cause survives a chain of
// DepCancel propagations, not just one hop.
func TestConformanceDepFailureCascade(t *testing.T) {
	rt := newRT(t, 2)
	boom := errors.New("root boom")
	a := ptask.Run(rt, func() (int, error) { return 0, boom })
	b := ptask.RunAfterCtx(rt, context.Background(), []ptask.Dep{a},
		func(context.Context) (int, error) { return 1, nil })
	c := ptask.RunAfterCtx(rt, context.Background(), []ptask.Dep{b},
		func(context.Context) (int, error) { return 2, nil })
	_, err := c.Result()
	if !errors.Is(err, ptask.ErrDepFailed) || !errors.Is(err, boom) {
		t.Fatalf("two-hop err = %v, want ErrDepFailed with root cause %v", err, boom)
	}
}

// TestConformanceDepFailureRun: DepRun (the legacy policy and explicit
// override) runs the dependent anyway.
func TestConformanceDepFailureRun(t *testing.T) {
	rt := newRT(t, 2)
	boom := errors.New("boom")
	a := ptask.Run(rt, func() (int, error) { return 0, boom })

	// Explicit override on a ctx task.
	v, err := ptask.RunAfterCtx(rt, context.Background(), []ptask.Dep{a},
		func(context.Context) (int, error) { return 7, nil },
		ptask.OnDepFailure(ptask.DepRun)).Result()
	if err != nil || v != 7 {
		t.Fatalf("DepRun dependent = (%v, %v), want (7, nil)", v, err)
	}

	// Legacy RunAfter defaults to DepRun.
	v, err = ptask.RunAfter(rt, []ptask.Dep{a}, func() (int, error) { return 8, nil }).Result()
	if err != nil || v != 8 {
		t.Fatalf("legacy RunAfter dependent = (%v, %v), want (8, nil)", v, err)
	}
}

// --- Row: retry ---

// TestConformanceRetryAttempts: the body re-runs up to MaxAttempts and
// a mid-sequence success stops the retrying.
func TestConformanceRetryAttempts(t *testing.T) {
	rt := newRT(t, 2)
	flaky := errors.New("flaky")

	var attempts atomic.Int64
	v, err := ptask.RunCtx(rt, context.Background(), func(context.Context) (int, error) {
		if attempts.Add(1) < 3 {
			return 0, flaky
		}
		return 99, nil
	}, ptask.WithRetry(ptask.RetryPolicy{MaxAttempts: 5, Base: 100 * time.Microsecond, Seed: 1})).Result()
	if err != nil || v != 99 {
		t.Fatalf("retried task = (%v, %v), want (99, nil)", v, err)
	}
	if attempts.Load() != 3 {
		t.Fatalf("body ran %d times, want 3 (fail, fail, succeed)", attempts.Load())
	}

	// Exhaustion: always failing stops at MaxAttempts with the last error.
	attempts.Store(0)
	_, err = ptask.RunCtx(rt, context.Background(), func(context.Context) (int, error) {
		attempts.Add(1)
		return 0, flaky
	}, ptask.WithRetry(ptask.RetryPolicy{MaxAttempts: 3, Base: 100 * time.Microsecond, Seed: 1})).Result()
	if !errors.Is(err, flaky) {
		t.Fatalf("exhausted retry err = %v, want %v", err, flaky)
	}
	if attempts.Load() != 3 {
		t.Fatalf("body ran %d times, want exactly MaxAttempts=3", attempts.Load())
	}
}

// TestConformanceRetryBackoffDeterministic: Backoff is a pure function
// of (seed, attempt) — same seed same schedule, within the documented
// [d/2, d) jitter envelope, capped at Max.
func TestConformanceRetryBackoffDeterministic(t *testing.T) {
	p := ptask.RetryPolicy{MaxAttempts: 6, Base: time.Millisecond, Max: 8 * time.Millisecond, Seed: 99}
	q := ptask.RetryPolicy{MaxAttempts: 6, Base: time.Millisecond, Max: 8 * time.Millisecond, Seed: 100}
	differs := false
	for attempt := 0; attempt < 5; attempt++ {
		d1, d2 := p.Backoff(attempt), p.Backoff(attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: Backoff not deterministic: %v vs %v", attempt, d1, d2)
		}
		full := p.Base << uint(attempt)
		if full > p.Max {
			full = p.Max
		}
		if d1 < full/2 || d1 >= full {
			t.Fatalf("attempt %d: backoff %v outside jitter envelope [%v, %v)", attempt, d1, full/2, full)
		}
		if q.Backoff(attempt) != d1 {
			differs = true
		}
	}
	if !differs {
		t.Fatal("two different seeds produced identical 5-step schedules")
	}
}

// TestConformanceRetryTerminalErrors: cancellations and deadline
// expiries are never retried — the attempt that observed them is the
// last.
func TestConformanceRetryTerminalErrors(t *testing.T) {
	rt := newRT(t, 2)
	var attempts atomic.Int64
	_, err := ptask.RunCtx(rt, context.Background(), func(ctx context.Context) (int, error) {
		attempts.Add(1)
		<-ctx.Done()
		return 0, ctx.Err()
	}, ptask.WithDeadline(30*time.Millisecond),
		ptask.WithRetry(ptask.RetryPolicy{MaxAttempts: 5, Base: time.Millisecond, Seed: 2})).Result()
	if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, ptask.ErrDeadline) {
		t.Fatalf("err = %v, want a deadline identity", err)
	}
	if attempts.Load() != 1 {
		t.Fatalf("body ran %d times after a deadline expiry, want 1 (terminal)", attempts.Load())
	}
}

// rtQuiesce gives in-flight pool work a moment to finish so "body never
// ran" flags are conclusive: it submits a full wave of no-op tasks and
// joins them, which cannot complete until the workers have cycled.
func rtQuiesce(t *testing.T, rt *ptask.Runtime) {
	t.Helper()
	m := ptask.RunMulti(rt, rt.Workers(), func(int) (struct{}, error) { return struct{}{}, nil })
	awaitDone(t, m.Done(), "quiesce wave")
}
