package ptask

import (
	"strings"
	"testing"
)

// TestReleaseRecyclesEnvelope: a released task's future envelope comes
// back out of the per-type pool for the next task, and every post-Release
// use of the stale handle panics on the generation guard instead of
// observing the successor task's result.
func TestReleaseRecyclesEnvelope(t *testing.T) {
	rt := NewRuntime(2)
	defer rt.Shutdown()

	a := Run(rt, func() (int, error) { return 41, nil })
	if v, err := a.Result(); v != 41 || err != nil {
		t.Fatalf("Result = (%d, %v), want (41, nil)", v, err)
	}
	a.Release()

	// The envelope is recycled; a successor task may now own it.
	b := Run(rt, func() (int, error) { return 99, nil })
	if v, err := b.Result(); v != 99 || err != nil {
		t.Fatalf("successor Result = (%d, %v), want (99, nil)", v, err)
	}

	for _, use := range []struct {
		name string
		fn   func()
	}{
		{"Result", func() { a.Result() }},
		{"IsDone", func() { a.IsDone() }},
		{"Done", func() { a.Done() }},
		{"Release", func() { a.Release() }},
	} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("%s on a released task did not panic", use.name)
				}
				if s, ok := r.(string); ok && !strings.Contains(s, "generation") {
					t.Fatalf("%s panic = %q, want a generation-guard panic", use.name, s)
				}
			}()
			use.fn()
		}()
	}
}

// TestReleaseIncompletePanics: recycling an envelope a waiter could still
// park on must fail loudly, not corrupt the pool.
func TestReleaseIncompletePanics(t *testing.T) {
	rt := NewRuntime(2)
	defer rt.Shutdown()
	gate := make(chan struct{})
	task := Run(rt, func() (int, error) { <-gate; return 0, nil })
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Release of an incomplete task did not panic")
			}
		}()
		task.Release()
	}()
	close(gate)
	if _, err := task.Result(); err != nil {
		t.Fatalf("Result after failed Release: %v", err)
	}
	task.Release() // now legitimate
}
