//go:build !race

// Allocation-budget guard for the task hot path: a steady-state
// Run→Result→Release cycle allocates exactly the Task handle — the
// future comes from the generation-guarded pool, the pool submission
// rides SubmitRunnable (no wrapper closure), and the worker-side
// envelope cycles through the scheduler's freelist. Excluded under -race
// because the race runtime's instrumentation allocates.

package ptask

import (
	"testing"
)

// TestRunResultReleaseAllocGuard pins the serving path's per-job task
// cost at one allocation: the Task struct itself. testing.AllocsPerRun
// reads process-wide Mallocs, so the guard covers the worker half of the
// cycle too.
func TestRunResultReleaseAllocGuard(t *testing.T) {
	rt := NewRuntime(2)
	defer rt.Shutdown()
	fn := func() (int, error) { return 42, nil }
	cycle := func() {
		tk := Run(rt, fn)
		if v, err := tk.Result(); err != nil || v != 42 {
			t.Fatalf("Result = (%v, %v)", v, err)
		}
		tk.Release()
	}
	for i := 0; i < 256; i++ {
		cycle()
	}
	if got := testing.AllocsPerRun(200, cycle); got > 1 {
		t.Fatalf("steady-state Run→Result→Release allocates %v objects/op, want <= 1", got)
	}
}
