// Failure semantics for the Parallel Task model (§IV-B's asynchronous
// exception story, completed): context-aware tasks with deadlines,
// failure propagation through task DAGs, multi-task failure policies,
// and deterministic retry with capped jittered exponential backoff.
//
// The semantics table lives in DESIGN.md §10; the short version:
//
//   - a task body that returns an error or panics settles its future
//     with that error — never crashes a worker (unchanged);
//   - with the DepCancel policy, a failed or cancelled dependence
//     cancels the dependent immediately with a wrapping *DepError, and
//     that cancellation cascades to its own dependents;
//   - RunCtx tasks observe their context: an expired deadline cancels a
//     waiting/queued task outright and is delivered to a running body
//     through the context it receives;
//   - a MultiTask is FailFast (first failure cancels unstarted siblings),
//     CollectAll (every error joined), or FirstError (legacy default).
package ptask

import (
	"context"
	"errors"
	"fmt"
	"time"

	"parc751/internal/xrand"
)

// ErrDepFailed marks a task cancelled because one of its dependences
// failed or was cancelled under the DepCancel policy. Settled errors wrap
// it: errors.Is(err, ErrDepFailed) identifies DAG-propagated failures and
// errors.Unwrap-ing a *DepError reaches the root cause.
var ErrDepFailed = errors.New("ptask: dependence failed")

// ErrDeadline marks a task cancelled because its deadline (WithDeadline,
// or the RunCtx context's own deadline) expired before it completed.
var ErrDeadline = errors.New("ptask: deadline exceeded")

// DepError carries the dependence failure that cancelled a dependent.
type DepError struct {
	Cause error
}

// Error implements the error interface.
func (e *DepError) Error() string {
	return fmt.Sprintf("ptask: dependence failed: %v", e.Cause)
}

// Unwrap exposes the failed dependence's error for errors.Is/As walks.
func (e *DepError) Unwrap() error { return e.Cause }

// Is makes errors.Is(err, ErrDepFailed) and errors.Is(err, ErrCancelled)
// both true: the task was cancelled, and the reason was a dependence.
func (e *DepError) Is(target error) bool {
	return target == ErrDepFailed || target == ErrCancelled
}

// DepPolicy selects what a task does when a dependence fails or is
// cancelled.
type DepPolicy uint8

const (
	// DepRun is the legacy policy: the dependent runs regardless and may
	// inspect its dependences itself. Run/RunAfter tasks use it.
	DepRun DepPolicy = iota
	// DepCancel propagates failure: the dependent is cancelled with a
	// wrapping *DepError the moment any dependence fails or is
	// cancelled. RunCtx/RunAfterCtx tasks default to it.
	DepCancel
)

// MultiPolicy selects a MultiTask's aggregate failure behaviour.
type MultiPolicy uint8

const (
	// MultiFirstError is the legacy default: every sub-task runs to
	// settlement and the aggregate error is the first (element-order)
	// sub-task error.
	MultiFirstError MultiPolicy = iota
	// MultiFailFast cancels every not-yet-started sibling as soon as one
	// sub-task fails; the aggregate error is the root-cause failure, not
	// the ErrCancelled cascade it triggered.
	MultiFailFast
	// MultiCollectAll runs everything and joins every sub-task error
	// (errors.Join), for callers that need the full failure picture.
	MultiCollectAll
)

// RetryPolicy re-runs a failing task body with capped, jittered
// exponential backoff. Attempt k (0-based) sleeps
// min(Base<<k, Max) * u, with u drawn deterministically in [0.5, 1.0)
// from Seed — same seed, same backoff schedule, so chaos runs replay.
type RetryPolicy struct {
	MaxAttempts int           // total attempts including the first; < 2 disables retry
	Base        time.Duration // first backoff step
	Max         time.Duration // backoff cap (0 = uncapped)
	Seed        uint64        // keys the deterministic jitter stream
}

// Backoff returns the sleep before attempt+1 (0-based). Exported so other
// retry loops (webfetch's request budget) share the same deterministic
// schedule.
func (p RetryPolicy) Backoff(attempt int) time.Duration {
	d := p.Base << uint(attempt)
	if d <= 0 { // shift overflow or zero base
		d = p.Max
	}
	if p.Max > 0 && d > p.Max {
		d = p.Max
	}
	u := 0.5 + 0.5*xrand.New(p.Seed^uint64(attempt)*0x9E3779B97F4A7C15).Float64()
	return time.Duration(float64(d) * u)
}

// retryable reports whether err is worth re-running the body for:
// cancellations, deadline expiries, and DAG propagation are terminal.
func (p RetryPolicy) retryable(err error) bool {
	return !errors.Is(err, ErrCancelled) && !errors.Is(err, ErrDeadline) &&
		!errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// Opt configures a RunCtx/RunAfterCtx task.
type Opt func(*taskOpts)

type taskOpts struct {
	dep      DepPolicy
	deadline time.Duration
	retry    *RetryPolicy
}

// OnDepFailure overrides the dependence-failure policy (RunCtx tasks
// default to DepCancel).
func OnDepFailure(p DepPolicy) Opt { return func(o *taskOpts) { o.dep = p } }

// WithDeadline bounds the task's total lifetime — waiting on dependences,
// queue time, and execution. Past the deadline a not-yet-running task is
// cancelled with an error wrapping ErrDeadline; a running body sees its
// context expire.
func WithDeadline(d time.Duration) Opt { return func(o *taskOpts) { o.deadline = d } }

// WithRetry re-runs the body on retryable errors per the policy.
func WithRetry(p RetryPolicy) Opt { return func(o *taskOpts) { o.retry = &p } }

// RunCtx submits a context-aware task: fn receives a context derived from
// ctx (plus any WithDeadline bound) and should observe its cancellation.
// A task whose context expires before it starts settles with an error
// wrapping ErrDeadline or ErrCancelled without running the body.
func RunCtx[T any](rt *Runtime, ctx context.Context, fn func(context.Context) (T, error), opts ...Opt) *Task[T] {
	return RunAfterCtx(rt, ctx, nil, fn, opts...)
}

// RunAfterCtx is RunCtx with dependences. Unlike legacy RunAfter, the
// default policy is DepCancel: a failed or cancelled dependence cancels
// this task with a wrapping *DepError instead of running it (override
// with OnDepFailure(DepRun)).
func RunAfterCtx[T any](rt *Runtime, ctx context.Context, deps []Dep, fn func(context.Context) (T, error), opts ...Opt) *Task[T] {
	o := taskOpts{dep: DepCancel}
	for _, opt := range opts {
		opt(&o)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	var cancel context.CancelFunc
	if o.deadline > 0 {
		ctx, cancel = context.WithTimeout(ctx, o.deadline)
	}
	fut := futurePoolFor[T]().Get()
	t := &Task[T]{rt: rt, fut: fut, gen: fut.Gen(), depPolicy: o.dep, ctx: ctx, retry: o.retry}
	t.body = func() (T, error) { return fn(ctx) }
	t.state.Store(stateWaiting)
	// An expiring context cancels a waiting/queued task outright; a
	// running one is reached through ctx inside the body. stop undoes the
	// registration once the task settles, and the deadline timer (if any)
	// is released with it.
	stop := context.AfterFunc(ctx, func() { t.cancelWith(ctxError(ctx.Err())) })
	t.onDone(func() {
		stop()
		if cancel != nil {
			cancel()
		}
	})
	t.wireDeps(deps)
	return t
}

// ctxError maps a context error to the package's failure vocabulary.
func ctxError(err error) error {
	// Both identities stay reachable: the package's sentinel for callers
	// matching on failure vocabulary, and the original context error for
	// callers matching on context semantics (DESIGN §10).
	if errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("%w (%w)", ErrDeadline, err)
	}
	return fmt.Errorf("%w (%w)", ErrCancelled, err)
}

// sleepCtx sleeps for d, abandoning the sleep (returning false) when ctx
// expires first. A nil ctx always sleeps fully.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if ctx == nil {
		time.Sleep(d)
		return true
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	}
}
