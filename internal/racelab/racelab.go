// Package racelab reproduces one of the paper's §V-B research-group
// outcomes: "pedagogical contributions in the form of interactive webpages
// that helped explain typical race conditions and other parallel
// programming pitfalls". It serves a small web application whose pages
// run the memory-model lab's instruments server-side:
//
//	/                     index of demos
//	/demo/{name}          HTML page: explanation + exhaustive interleaving
//	                      table + live forced-trial results
//	/api/explore/{name}   JSON: exhaustive exploration result
//	/api/trial/{name}     JSON: live forced-race trial (?trials=N)
//	/gantt                ASCII Gantt of a simulated work-stealing schedule
//	                      (?procs=N&tasks=N&steal=NS)
//
// The handler is plain net/http + html/template, so it embeds in tests
// (httptest) and in the racelab command.
package racelab

import (
	"encoding/json"
	"fmt"
	"html/template"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"parc751/internal/machine"
	"parc751/internal/memmodel"
)

// Demo is one interactive pitfall page.
type Demo struct {
	Name    string
	Title   string
	Lesson  string
	explore func() (racy, fixed memmodel.ExploreResult)
	trial   func(trials int) (racy, fixed memmodel.TrialStats)
}

// Demos returns the registered pitfall demos in a stable order.
func Demos() []Demo {
	return []Demo{
		{
			Name:   "lostupdate",
			Title:  "The lost update",
			Lesson: "counter++ is a read-modify-write; two threads interleaving between the read and the write lose an increment. Fix: an atomic increment (or a lock) makes it one indivisible step.",
			explore: func() (memmodel.ExploreResult, memmodel.ExploreResult) {
				racy := memmodel.Explore(
					func() *memmodel.CounterState { return &memmodel.CounterState{} },
					memmodel.LostUpdateOps(0), memmodel.LostUpdateOps(1),
					func(s *memmodel.CounterState) bool { return s.N == 2 })
				fixed := memmodel.Explore(
					func() *memmodel.CounterState { return &memmodel.CounterState{} },
					memmodel.AtomicIncrementOps(0), memmodel.AtomicIncrementOps(1),
					func(s *memmodel.CounterState) bool { return s.N == 2 })
				return racy, fixed
			},
			trial: func(trials int) (memmodel.TrialStats, memmodel.TrialStats) {
				return memmodel.ForcedLostUpdate(trials, 4, 50),
					memmodel.FixedLostUpdate(trials, 4, 50)
			},
		},
		{
			Name:   "publication",
			Title:  "Unsafe publication",
			Lesson: "Setting a ready flag before the data it guards is what an unsynchronised writer may effectively do after reordering; a reader then observes the flag without the data. Fix: store data first and publish the flag with a synchronising operation.",
			explore: func() (memmodel.ExploreResult, memmodel.ExploreResult) {
				racy := memmodel.Explore(
					func() *memmodel.PublishState { return &memmodel.PublishState{Observed: -1} },
					memmodel.UnsafePublishWriterOps(), memmodel.PublishReaderOps(),
					memmodel.PublishOK)
				fixed := memmodel.Explore(
					func() *memmodel.PublishState { return &memmodel.PublishState{Observed: -1} },
					memmodel.SafePublishWriterOps(), memmodel.PublishReaderOps(),
					memmodel.PublishOK)
				return racy, fixed
			},
			trial: func(trials int) (memmodel.TrialStats, memmodel.TrialStats) {
				// Publication has no live harness; reuse the explorer
				// counts scaled as pseudo-trials for the page.
				racy, fixed := memmodel.Explore(
					func() *memmodel.PublishState { return &memmodel.PublishState{Observed: -1} },
					memmodel.UnsafePublishWriterOps(), memmodel.PublishReaderOps(),
					memmodel.PublishOK),
					memmodel.Explore(
						func() *memmodel.PublishState { return &memmodel.PublishState{Observed: -1} },
						memmodel.SafePublishWriterOps(), memmodel.PublishReaderOps(),
						memmodel.PublishOK)
				return memmodel.TrialStats{Trials: racy.Interleavings, Anomalies: racy.Violations},
					memmodel.TrialStats{Trials: fixed.Interleavings, Anomalies: fixed.Violations}
			},
		},
		{
			Name:   "checkthenact",
			Title:  "Check-then-act",
			Lesson: "Checking a condition and acting on it as two separate steps lets another thread invalidate the check in between (double-initialisation, double-spend). Fix: a compound atomic operation such as GetOrCompute.",
			explore: func() (memmodel.ExploreResult, memmodel.ExploreResult) {
				racy := memmodel.Explore(
					func() *memmodel.CacheState { return &memmodel.CacheState{} },
					memmodel.CheckThenActOps(0), memmodel.CheckThenActOps(1),
					func(s *memmodel.CacheState) bool { return s.Computes == 1 })
				fixed := memmodel.Explore(
					func() *memmodel.CacheState { return &memmodel.CacheState{} },
					memmodel.AtomicCheckThenActOps(0), memmodel.AtomicCheckThenActOps(1),
					func(s *memmodel.CacheState) bool { return s.Computes == 1 })
				return racy, fixed
			},
			trial: func(trials int) (memmodel.TrialStats, memmodel.TrialStats) {
				return memmodel.ForcedDoubleCompute(trials), memmodel.FixedDoubleCompute(trials)
			},
		},
	}
}

func demoByName(name string) (Demo, bool) {
	for _, d := range Demos() {
		if d.Name == name {
			return d, true
		}
	}
	return Demo{}, false
}

// Handler returns the racelab HTTP handler.
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", serveIndex)
	mux.HandleFunc("/demo/", serveDemo)
	mux.HandleFunc("/api/explore/", serveExplore)
	mux.HandleFunc("/api/trial/", serveTrial)
	mux.HandleFunc("/gantt", serveGantt)
	return mux
}

var indexTmpl = template.Must(template.New("index").Parse(`<!DOCTYPE html>
<html><head><title>PARC race lab</title></head><body>
<h1>Parallel programming pitfalls</h1>
<p>Interactive demonstrations of typical race conditions (SoftEng 751 / PARC lab).</p>
<ul>
{{range .}}<li><a href="/demo/{{.Name}}">{{.Title}}</a></li>
{{end}}</ul>
<p><a href="/gantt?procs=8&tasks=64&steal=400">Work-stealing schedule Gantt</a></p>
</body></html>`))

var demoTmpl = template.Must(template.New("demo").Parse(`<!DOCTYPE html>
<html><head><title>{{.Title}}</title></head><body>
<h1>{{.Title}}</h1>
<p>{{.Lesson}}</p>
<h2>Exhaustive interleavings</h2>
<table border="1">
<tr><th>version</th><th>interleavings</th><th>violations</th></tr>
<tr><td>racy</td><td>{{.Racy.Interleavings}}</td><td>{{.Racy.Violations}}</td></tr>
<tr><td>fixed</td><td>{{.Fixed.Interleavings}}</td><td>{{.Fixed.Violations}}</td></tr>
</table>
<h2>Live forced trials ({{.Trials}} runs)</h2>
<table border="1">
<tr><th>version</th><th>anomalies</th><th>rate</th></tr>
<tr><td>racy</td><td>{{.TrialRacy.Anomalies}}</td><td>{{printf "%.0f%%" .RacyRate}}</td></tr>
<tr><td>fixed</td><td>{{.TrialFixed.Anomalies}}</td><td>{{printf "%.0f%%" .FixedRate}}</td></tr>
</table>
<p><a href="/">back</a></p>
</body></html>`))

func serveIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := indexTmpl.Execute(w, Demos()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func serveDemo(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/demo/")
	d, ok := demoByName(name)
	if !ok {
		http.NotFound(w, r)
		return
	}
	racy, fixed := d.explore()
	trials := queryInt(r, "trials", 40, 1, 2000)
	tRacy, tFixed := d.trial(trials)
	data := struct {
		Demo
		Racy, Fixed           memmodel.ExploreResult
		Trials                int
		TrialRacy, TrialFixed memmodel.TrialStats
		RacyRate, FixedRate   float64
	}{d, racy, fixed, trials, tRacy, tFixed, tRacy.Rate() * 100, tFixed.Rate() * 100}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := demoTmpl.Execute(w, data); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// ExploreResponse is the /api/explore payload.
type ExploreResponse struct {
	Demo  string                 `json:"demo"`
	Racy  memmodel.ExploreResult `json:"racy"`
	Fixed memmodel.ExploreResult `json:"fixed"`
}

func serveExplore(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/api/explore/")
	d, ok := demoByName(name)
	if !ok {
		http.Error(w, "unknown demo", http.StatusNotFound)
		return
	}
	racy, fixed := d.explore()
	writeJSON(w, ExploreResponse{Demo: name, Racy: racy, Fixed: fixed})
}

// TrialResponse is the /api/trial payload.
type TrialResponse struct {
	Demo  string              `json:"demo"`
	Racy  memmodel.TrialStats `json:"racy"`
	Fixed memmodel.TrialStats `json:"fixed"`
}

func serveTrial(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/api/trial/")
	d, ok := demoByName(name)
	if !ok {
		http.Error(w, "unknown demo", http.StatusNotFound)
		return
	}
	trials := queryInt(r, "trials", 40, 1, 2000)
	racy, fixed := d.trial(trials)
	writeJSON(w, TrialResponse{Demo: name, Racy: racy, Fixed: fixed})
}

func serveGantt(w http.ResponseWriter, r *http.Request) {
	procs := queryInt(r, "procs", 8, 1, 64)
	tasks := queryInt(r, "tasks", 64, 1, 4096)
	steal := queryInt(r, "steal", 400, 0, 1000000)
	m := machine.New(machine.Config{Name: "gantt", Procs: procs, SpeedFactor: 1,
		StealLatency: uint64(steal)})
	m.EnableTrace()
	for i := 0; i < tasks; i++ {
		m.Submit(0, uint64(500+137*(i%7)), nil)
	}
	st := m.Run()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "work-stealing schedule: %d tasks on %d procs (steal latency %d)\n",
		tasks, procs, steal)
	fmt.Fprintf(w, "makespan=%d busy=%d steals=%d util=%.2f\n\n",
		st.Makespan, st.BusyNs, st.Steals, st.AvgUtil)
	fmt.Fprint(w, m.Trace().Gantt(72))
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func queryInt(r *http.Request, key string, def, lo, hi int) int {
	v := r.URL.Query().Get(key)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return def
	}
	if n < lo {
		n = lo
	}
	if n > hi {
		n = hi
	}
	return n
}

// DemoNames lists the demo slugs, sorted.
func DemoNames() []string {
	var out []string
	for _, d := range Demos() {
		out = append(out, d.Name)
	}
	sort.Strings(out)
	return out
}
