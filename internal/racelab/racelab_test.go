package racelab

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(Handler())
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestIndexListsDemos(t *testing.T) {
	srv := newServer(t)
	code, body := get(t, srv.URL+"/")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	for _, name := range DemoNames() {
		if !strings.Contains(body, "/demo/"+name) {
			t.Errorf("index missing link to %s", name)
		}
	}
	if !strings.Contains(body, "/gantt") {
		t.Error("index missing gantt link")
	}
}

func TestDemoPages(t *testing.T) {
	srv := newServer(t)
	for _, name := range DemoNames() {
		code, body := get(t, srv.URL+"/demo/"+name+"?trials=10")
		if code != http.StatusOK {
			t.Fatalf("%s status = %d", name, code)
		}
		for _, want := range []string{"Exhaustive interleavings", "Live forced trials", "racy", "fixed"} {
			if !strings.Contains(body, want) {
				t.Errorf("%s page missing %q", name, want)
			}
		}
	}
}

func TestUnknownDemo404(t *testing.T) {
	srv := newServer(t)
	if code, _ := get(t, srv.URL+"/demo/nothing"); code != http.StatusNotFound {
		t.Fatalf("status = %d", code)
	}
	if code, _ := get(t, srv.URL+"/api/explore/nothing"); code != http.StatusNotFound {
		t.Fatalf("api status = %d", code)
	}
	if code, _ := get(t, srv.URL+"/bogus/path"); code != http.StatusNotFound {
		t.Fatalf("path status = %d", code)
	}
}

func TestExploreAPI(t *testing.T) {
	srv := newServer(t)
	code, body := get(t, srv.URL+"/api/explore/lostupdate")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var resp ExploreResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("bad json: %v\n%s", err, body)
	}
	if resp.Racy.Interleavings != 6 || resp.Racy.Violations != 4 {
		t.Errorf("racy = %+v", resp.Racy)
	}
	if resp.Fixed.Violations != 0 {
		t.Errorf("fixed = %+v", resp.Fixed)
	}
}

func TestTrialAPI(t *testing.T) {
	srv := newServer(t)
	code, body := get(t, srv.URL+"/api/trial/checkthenact?trials=25")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var resp TrialResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("bad json: %v", err)
	}
	if resp.Racy.Trials != 25 {
		t.Errorf("trials = %d, want 25", resp.Racy.Trials)
	}
	if resp.Fixed.Anomalies != 0 {
		t.Errorf("fixed anomalies = %d", resp.Fixed.Anomalies)
	}
}

func TestTrialClamping(t *testing.T) {
	srv := newServer(t)
	_, body := get(t, srv.URL+"/api/trial/lostupdate?trials=999999")
	var resp TrialResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Racy.Trials > 2000 {
		t.Errorf("trials not clamped: %d", resp.Racy.Trials)
	}
	_, body = get(t, srv.URL+"/api/trial/lostupdate?trials=garbage")
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Racy.Trials != 40 {
		t.Errorf("bad trials param should fall back to default, got %d", resp.Racy.Trials)
	}
}

func TestGanttEndpoint(t *testing.T) {
	srv := newServer(t)
	code, body := get(t, srv.URL+"/gantt?procs=4&tasks=32&steal=200")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	for _, want := range []string{"makespan=", "p00", "p03", "Gantt"} {
		if !strings.Contains(body, want) {
			t.Errorf("gantt output missing %q:\n%s", want, body)
		}
	}
}

func TestGanttParamClamping(t *testing.T) {
	srv := newServer(t)
	code, body := get(t, srv.URL+"/gantt?procs=100000&tasks=0")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if !strings.Contains(body, "on 64 procs") {
		t.Errorf("procs not clamped to 64:\n%s", body[:120])
	}
}

func TestDemosHaveLessons(t *testing.T) {
	for _, d := range Demos() {
		if d.Title == "" || d.Lesson == "" || d.Name == "" {
			t.Errorf("demo %+v incomplete", d.Name)
		}
		racy, fixed := d.explore()
		if racy.Violations == 0 {
			t.Errorf("%s: racy exploration shows no violations", d.Name)
		}
		if fixed.Violations != 0 {
			t.Errorf("%s: fixed exploration shows violations", d.Name)
		}
	}
}
