package reduction

import (
	"math"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"parc751/internal/xrand"
)

func TestFoldSum(t *testing.T) {
	if got := Fold(Sum[int](), []int{1, 2, 3, 4, 5}); got != 15 {
		t.Fatalf("sum = %d", got)
	}
	if got := Fold(Sum[float64](), nil); got != 0 {
		t.Fatalf("empty sum = %g", got)
	}
}

func TestFoldProd(t *testing.T) {
	if got := Fold(Prod[int](), []int{2, 3, 4}); got != 24 {
		t.Fatalf("prod = %d", got)
	}
	if got := Fold(Prod[int](), nil); got != 1 {
		t.Fatalf("empty prod = %d", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []int{5, -2, 9, 0}
	if got := Fold(Min[int](math.MaxInt), xs); got != -2 {
		t.Fatalf("min = %d", got)
	}
	if got := Fold(Max[int](math.MinInt), xs); got != 9 {
		t.Fatalf("max = %d", got)
	}
}

func TestAndOr(t *testing.T) {
	if Fold(And(), []bool{true, true, false}) {
		t.Error("and failed")
	}
	if !Fold(And(), []bool{true, true}) {
		t.Error("and of trues failed")
	}
	if !Fold(Or(), []bool{false, true}) {
		t.Error("or failed")
	}
	if Fold(Or(), nil) {
		t.Error("empty or should be false")
	}
}

// TestTreeEqualsFold is the associativity check for every scalar reducer.
func TestTreeEqualsFold(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		r := xrand.New(seed)
		n := int(nRaw % 65)
		xs := make([]int, n)
		for i := range xs {
			xs[i] = r.Intn(1000) - 500
		}
		if Tree(Sum[int](), xs) != Fold(Sum[int](), xs) {
			return false
		}
		if Tree(Min[int](math.MaxInt), xs) != Fold(Min[int](math.MaxInt), xs) {
			return false
		}
		if Tree(Max[int](math.MinInt), xs) != Fold(Max[int](math.MinInt), xs) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTreeEdgeCases(t *testing.T) {
	if got := Tree(Sum[int](), nil); got != 0 {
		t.Errorf("empty tree = %d", got)
	}
	if got := Tree(Sum[int](), []int{7}); got != 7 {
		t.Errorf("singleton tree = %d", got)
	}
	if got := Tree(Sum[int](), []int{1, 2, 3}); got != 6 {
		t.Errorf("odd tree = %d", got)
	}
}

// TestParallelEqualsSequential: the headline property — parallel reduction
// must agree with the sequential fold for every worker count.
func TestParallelEqualsSequential(t *testing.T) {
	r := xrand.New(31)
	const n = 10000
	vals := make([]int, n)
	want := 0
	for i := range vals {
		vals[i] = r.Intn(100)
		want += vals[i]
	}
	for _, p := range []int{1, 2, 3, 4, 7, 16} {
		got := Parallel(p, n, Sum[int](), func(i int) int { return vals[i] })
		if got != want {
			t.Errorf("p=%d sum = %d, want %d", p, got, want)
		}
	}
}

func TestParallelDegenerate(t *testing.T) {
	if got := Parallel(4, 0, Sum[int](), func(i int) int { return 1 }); got != 0 {
		t.Errorf("n=0 -> %d", got)
	}
	if got := Parallel(0, 5, Sum[int](), func(i int) int { return i }); got != 10 {
		t.Errorf("p=0 clamp -> %d", got)
	}
	if got := Parallel(16, 3, Sum[int](), func(i int) int { return i }); got != 3 {
		t.Errorf("p>n -> %d", got)
	}
}

func TestAppendPreservesBlockOrder(t *testing.T) {
	// With Parallel's block decomposition, Append must reconstruct the
	// original order.
	const n = 500
	got := Parallel(7, n, Append[int](), func(i int) []int { return Map(i) })
	if len(got) != n {
		t.Fatalf("len = %d", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("order broken at %d: %d", i, v)
		}
	}
}

func TestUnion(t *testing.T) {
	got := Parallel(4, 100, Union[int](), func(i int) map[int]struct{} {
		return map[int]struct{}{i % 10: {}}
	})
	if len(got) != 10 {
		t.Fatalf("union size = %d", len(got))
	}
	for k := 0; k < 10; k++ {
		if _, ok := got[k]; !ok {
			t.Fatalf("missing key %d", k)
		}
	}
}

func TestMergeMaps(t *testing.T) {
	r := MergeMaps[string](func(a, b int) int { return a + b })
	a := map[string]int{"x": 1, "y": 2}
	b := map[string]int{"y": 3, "z": 4}
	got := r.Combine(a, b)
	want := map[string]int{"x": 1, "y": 5, "z": 4}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merge = %v", got)
	}
}

func TestHistogramWordCount(t *testing.T) {
	words := []string{"a", "b", "a", "c", "a", "b"}
	got := Parallel(3, len(words), Histogram[string](), func(i int) map[string]int {
		return map[string]int{words[i]: 1}
	})
	if got["a"] != 3 || got["b"] != 2 || got["c"] != 1 {
		t.Fatalf("histogram = %v", got)
	}
}

func TestHistogramMatchesSequential(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 50 + r.Intn(200)
		keys := make([]int, n)
		for i := range keys {
			keys[i] = r.Intn(10)
		}
		seq := map[int]int{}
		for _, k := range keys {
			seq[k]++
		}
		par := Parallel(5, n, Histogram[int](), func(i int) map[int]int {
			return map[int]int{keys[i]: 1}
		})
		return reflect.DeepEqual(seq, par)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTopK(t *testing.T) {
	less := func(a, b int) bool { return a < b }
	got := Parallel(4, 100, TopK(5, less), func(i int) []int { return Map(i * 7 % 100) })
	if len(got) != 5 {
		t.Fatalf("topk len = %d", len(got))
	}
	if !sort.IntsAreSorted(got) {
		t.Fatalf("topk not sorted: %v", got)
	}
	// i*7 % 100 over i in [0,100) covers 0..99, so top 5 are 95..99.
	want := []int{95, 96, 97, 98, 99}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("topk = %v, want %v", got, want)
	}
}

func TestTopKFewerThanK(t *testing.T) {
	less := func(a, b int) bool { return a < b }
	got := Fold(TopK(10, less), [][]int{{3}, {1}, {2}})
	if !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("topk = %v", got)
	}
}

// TestIdentityFreshness: object identities must be fresh instances, or
// concurrent reductions would share (and corrupt) one map.
func TestIdentityFreshness(t *testing.T) {
	r := Union[int]()
	a := r.Identity()
	b := r.Identity()
	a[1] = struct{}{}
	if len(b) != 0 {
		t.Fatal("identity maps are shared")
	}
}

func TestParallelObjectReductionsRaceFree(t *testing.T) {
	// Run repeatedly; under -race this flushes out shared-identity bugs.
	for trial := 0; trial < 10; trial++ {
		got := Parallel(8, 800, Histogram[int](), func(i int) map[int]int {
			return map[int]int{i % 3: 1}
		})
		if got[0]+got[1]+got[2] != 800 {
			t.Fatalf("lost updates: %v", got)
		}
	}
}

func BenchmarkParallelSum(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Parallel(4, 100000, Sum[int](), func(i int) int { return i })
	}
}

func BenchmarkFoldSum(b *testing.B) {
	xs := make([]int, 100000)
	for i := range xs {
		xs[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Fold(Sum[int](), xs)
	}
}

func BenchmarkHistogram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Parallel(4, 10000, Histogram[int](), func(i int) map[int]int {
			return map[int]int{i % 50: 1}
		})
	}
}
