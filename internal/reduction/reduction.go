// Package reduction is the object-oriented reduction framework — project 5
// of the reproduced paper and one of its §V-B research outcomes. OpenMP
// specifies reductions over a small set of scalar types and operators; the
// Pyjama work generalised them to arbitrary object types (merging
// collections, maps, histograms). This package provides:
//
//   - Reducer[T]: an identity plus an associative combine;
//   - the stock scalar reducers OpenMP has (sum, product, min, max,
//     logical and/or);
//   - the object reducers the paper's project explored (slice append,
//     set union, map merge, histogram merge, top-k);
//   - Fold (sequential reference), Tree (deterministic pairwise
//     combination of partials), and Parallel (goroutine-parallel
//     reduction) — tests assert all three agree, which is exactly the
//     associativity property a reduction must have.
package reduction

import "sort"

// Reducer is an associative combination with an identity element. For the
// results to be schedule-independent, Combine must be associative and
// Identity a true identity; the property tests in this package check both
// for every stock reducer.
type Reducer[T any] struct {
	// Identity returns a fresh identity value. It is a function, not a
	// value, because object identities (empty map, empty slice) must not
	// be shared between threads.
	Identity func() T
	// Combine merges two values. It may mutate and return its first
	// argument (the accumulating convention), so callers must not reuse
	// arguments after combining.
	Combine func(a, b T) T
}

// Fold reduces xs sequentially — the reference semantics.
func Fold[T any](r Reducer[T], xs []T) T {
	acc := r.Identity()
	for _, x := range xs {
		acc = r.Combine(acc, x)
	}
	return acc
}

// Tree reduces partials pairwise in a deterministic binary tree, the
// combination order used after a parallel loop (thread order, balanced).
func Tree[T any](r Reducer[T], partials []T) T {
	switch len(partials) {
	case 0:
		return r.Identity()
	case 1:
		return partials[0]
	}
	work := make([]T, len(partials))
	copy(work, partials)
	for len(work) > 1 {
		half := (len(work) + 1) / 2
		next := make([]T, half)
		for i := 0; i < len(work)/2; i++ {
			next[i] = r.Combine(work[2*i], work[2*i+1])
		}
		if len(work)%2 == 1 {
			next[half-1] = work[len(work)-1]
		}
		work = next
	}
	return work[0]
}

// Parallel reduces n mapped elements with p goroutines: each worker folds
// a contiguous block, and the partials are tree-combined. body(i) produces
// the element for index i.
func Parallel[T any](p, n int, r Reducer[T], body func(i int) T) T {
	if p < 1 {
		p = 1
	}
	if p > n {
		p = n
	}
	if n <= 0 {
		return r.Identity()
	}
	partials := make([]T, p)
	done := make(chan int, p)
	base, rem := n/p, n%p
	lo := 0
	for w := 0; w < p; w++ {
		size := base
		if w < rem {
			size++
		}
		go func(w, lo, hi int) {
			acc := r.Identity()
			for i := lo; i < hi; i++ {
				acc = r.Combine(acc, body(i))
			}
			partials[w] = acc
			done <- w
		}(w, lo, lo+size)
		lo += size
	}
	for w := 0; w < p; w++ {
		<-done
	}
	return Tree(r, partials)
}

// Numeric covers the built-in types OpenMP's scalar reductions apply to.
type Numeric interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 |
		~float32 | ~float64
}

// Sum is the "+" reduction.
func Sum[T Numeric]() Reducer[T] {
	return Reducer[T]{
		Identity: func() T { var z T; return z },
		Combine:  func(a, b T) T { return a + b },
	}
}

// Prod is the "*" reduction.
func Prod[T Numeric]() Reducer[T] {
	return Reducer[T]{
		Identity: func() T { return T(1) },
		Combine:  func(a, b T) T { return a * b },
	}
}

// Min reduces to the smallest value seen; the identity is max(T) supplied
// by the caller because Go has no generic numeric limits.
func Min[T Numeric](identity T) Reducer[T] {
	return Reducer[T]{
		Identity: func() T { return identity },
		Combine: func(a, b T) T {
			if b < a {
				return b
			}
			return a
		},
	}
}

// Max reduces to the largest value seen, with the caller-supplied identity
// (typically the type's minimum).
func Max[T Numeric](identity T) Reducer[T] {
	return Reducer[T]{
		Identity: func() T { return identity },
		Combine: func(a, b T) T {
			if b > a {
				return b
			}
			return a
		},
	}
}

// And is the logical-and reduction.
func And() Reducer[bool] {
	return Reducer[bool]{
		Identity: func() bool { return true },
		Combine:  func(a, b bool) bool { return a && b },
	}
}

// Or is the logical-or reduction.
func Or() Reducer[bool] {
	return Reducer[bool]{
		Identity: func() bool { return false },
		Combine:  func(a, b bool) bool { return a || b },
	}
}

// The object-oriented reductions (§V-B): these are what the paper's
// project added beyond the OpenMP specification.

// Append merges slices by concatenation. Order is combination order, so
// with Tree/Parallel the result preserves block order — the property the
// text-search project relies on for stable match lists.
func Append[T any]() Reducer[[]T] {
	return Reducer[[]T]{
		Identity: func() []T { return nil },
		Combine:  func(a, b []T) []T { return append(a, b...) },
	}
}

// Union merges sets represented as map[K]struct{}.
func Union[K comparable]() Reducer[map[K]struct{}] {
	return Reducer[map[K]struct{}]{
		Identity: func() map[K]struct{} { return map[K]struct{}{} },
		Combine: func(a, b map[K]struct{}) map[K]struct{} {
			for k := range b {
				a[k] = struct{}{}
			}
			return a
		},
	}
}

// MergeMaps merges map values key-wise with the supplied value combiner —
// the "merging collections" example from the paper (§IV-C item 5).
func MergeMaps[K comparable, V any](combine func(V, V) V) Reducer[map[K]V] {
	return Reducer[map[K]V]{
		Identity: func() map[K]V { return map[K]V{} },
		Combine: func(a, b map[K]V) map[K]V {
			for k, bv := range b {
				if av, ok := a[k]; ok {
					a[k] = combine(av, bv)
				} else {
					a[k] = bv
				}
			}
			return a
		},
	}
}

// Histogram merges integer-count histograms keyed by K (word counts,
// bucket counts): per-key addition.
func Histogram[K comparable]() Reducer[map[K]int] {
	return MergeMaps[K](func(a, b int) int { return a + b })
}

// TopK keeps the k largest values (by less: less(a,b) means a orders
// before b, i.e. is smaller). The reduction value is an ascending-sorted
// slice of at most k elements.
func TopK[T any](k int, less func(a, b T) bool) Reducer[[]T] {
	trim := func(xs []T) []T {
		sort.Slice(xs, func(i, j int) bool { return less(xs[i], xs[j]) })
		if len(xs) > k {
			xs = xs[len(xs)-k:]
		}
		return xs
	}
	return Reducer[[]T]{
		Identity: func() []T { return nil },
		Combine:  func(a, b []T) []T { return trim(append(a, b...)) },
	}
}

// Map lifts a value into a single-element reduction operand for Append.
func Map[T any](v T) []T { return []T{v} }
