// Package memmodel is project 8 of the reproduced paper: "Understanding
// and coping with the Java memory model for multi-threaded programs". The
// students' deliverable was a set of code snippets that *force* typical
// parallelisation problems to occur (their wording), together with fixed
// counterparts and explanations. This package reproduces that lab for the
// Go memory model with two instruments:
//
//  1. An exhaustive interleaving explorer (Explore): two operation
//     sequences are run under every possible interleaving on a fresh
//     state, and a checker counts the interleavings that violate the
//     intended invariant. This makes "a race exists" a deterministic,
//     countable fact rather than a probabilistic one.
//
//  2. Live forced-race demonstrators (ForcedLostUpdate, ForcedUnsafePublish,
//     ...): real goroutines with yield points inserted where the race
//     window is, so the anomaly reproduces reliably even on a single-CPU
//     host, plus the fixed versions whose anomaly count must be zero.
package memmodel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Op is one atomic step of a thread in the interleaving explorer.
type Op[S any] func(s *S)

// ExploreResult summarises an exhaustive interleaving exploration.
type ExploreResult struct {
	Interleavings int // total interleavings executed
	Violations    int // interleavings whose final state failed the check
}

// Explore runs every interleaving of the two operation sequences a and b
// on a fresh state from mk, checking the final state with ok. The number
// of interleavings is C(len(a)+len(b), len(a)); keep sequences short.
func Explore[S any](mk func() *S, a, b []Op[S], ok func(*S) bool) ExploreResult {
	var res ExploreResult
	schedule := make([]bool, 0, len(a)+len(b))
	var rec func(ai, bi int)
	rec = func(ai, bi int) {
		if ai == len(a) && bi == len(b) {
			s := mk()
			ia, ib := 0, 0
			for _, fromA := range schedule {
				if fromA {
					a[ia](s)
					ia++
				} else {
					b[ib](s)
					ib++
				}
			}
			res.Interleavings++
			if !ok(s) {
				res.Violations++
			}
			return
		}
		if ai < len(a) {
			schedule = append(schedule, true)
			rec(ai+1, bi)
			schedule = schedule[:len(schedule)-1]
		}
		if bi < len(b) {
			schedule = append(schedule, false)
			rec(ai, bi+1)
			schedule = schedule[:len(schedule)-1]
		}
	}
	rec(0, 0)
	return res
}

// ---- Snippet 1: the lost update ----

// CounterState is the shared state of the lost-update snippet.
type CounterState struct {
	N   int
	tmp [2]int // per-thread register holding the read value
}

// LostUpdateOps returns thread t's operations for the racy counter
// increment: a separate read and write, exposing the interleaving window.
func LostUpdateOps(t int) []Op[CounterState] {
	return []Op[CounterState]{
		func(s *CounterState) { s.tmp[t] = s.N },     // load
		func(s *CounterState) { s.N = s.tmp[t] + 1 }, // store
	}
}

// AtomicIncrementOps returns thread t's operations for the fixed version:
// the increment is one indivisible step (what a mutex or atomic provides).
func AtomicIncrementOps(t int) []Op[CounterState] {
	return []Op[CounterState]{
		func(s *CounterState) { s.N++ },
	}
}

// ---- Snippet 2: unsafe publication ----

// PublishState models publishing an initialised object via a plain flag.
type PublishState struct {
	Data     int
	Ready    bool
	Observed int // what the reader saw (-1: saw nothing)
}

// UnsafePublishWriterOps publishes with the flag store *before* the data
// store — the reordering the memory model permits a compiler/CPU to make
// of an unsynchronised writer, made explicit so the explorer can count
// the damage.
func UnsafePublishWriterOps() []Op[PublishState] {
	return []Op[PublishState]{
		func(s *PublishState) { s.Ready = true },
		func(s *PublishState) { s.Data = 42 },
	}
}

// SafePublishWriterOps stores data before the flag, the order a
// synchronised (atomic/mutex) publication guarantees.
func SafePublishWriterOps() []Op[PublishState] {
	return []Op[PublishState]{
		func(s *PublishState) { s.Data = 42 },
		func(s *PublishState) { s.Ready = true },
	}
}

// PublishReaderOps reads the flag, then the data.
func PublishReaderOps() []Op[PublishState] {
	return []Op[PublishState]{
		func(s *PublishState) {
			if s.Ready {
				s.Observed = s.Data
			} else {
				s.Observed = -1
			}
		},
	}
}

// PublishOK is the invariant: a reader that saw the flag must see the
// initialised data.
func PublishOK(s *PublishState) bool { return s.Observed == -1 || s.Observed == 42 }

// ---- Snippet 3: check-then-act ----

// CacheState models the lazily initialised cache two threads populate.
type CacheState struct {
	Present  bool
	Computes int
	tmp      [2]bool
}

// CheckThenActOps returns thread t's racy lazy initialisation: check,
// window, act. Both threads can pass the check before either acts.
func CheckThenActOps(t int) []Op[CacheState] {
	return []Op[CacheState]{
		func(s *CacheState) { s.tmp[t] = s.Present }, // check
		func(s *CacheState) { // act
			if !s.tmp[t] {
				s.Computes++
				s.Present = true
			}
		},
	}
}

// AtomicCheckThenActOps is the fixed compound operation (GetOrCompute).
func AtomicCheckThenActOps(t int) []Op[CacheState] {
	return []Op[CacheState]{
		func(s *CacheState) {
			if !s.Present {
				s.Computes++
				s.Present = true
			}
		},
	}
}

// ---- Live forced-race demonstrators ----

// TrialStats reports live-trial outcomes.
type TrialStats struct {
	Trials    int
	Anomalies int
}

// Rate returns the anomaly fraction.
func (t TrialStats) Rate() float64 {
	if t.Trials == 0 {
		return 0
	}
	return float64(t.Anomalies) / float64(t.Trials)
}

// ForcedLostUpdate runs trials of `workers` goroutines each incrementing a
// shared counter `perWorker` times through a read-yield-write window (the
// students' "forcing a race condition"), counting trials that lost
// updates. The yield makes the anomaly reproduce even on one CPU.
func ForcedLostUpdate(trials, workers, perWorker int) TrialStats {
	st := TrialStats{Trials: trials}
	for trial := 0; trial < trials; trial++ {
		var n int64 // shared; the read-modify-write below is non-atomic on purpose
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					v := atomic.LoadInt64(&n) // read (atomic load: the race is the lost window, not a torn read)
					runtime.Gosched()         // the forced window
					atomic.StoreInt64(&n, v+1)
				}
			}()
		}
		wg.Wait()
		if n != int64(workers*perWorker) {
			st.Anomalies++
		}
	}
	return st
}

// FixedLostUpdate is the corrected counterpart using an atomic add; its
// anomaly count is always zero.
func FixedLostUpdate(trials, workers, perWorker int) TrialStats {
	st := TrialStats{Trials: trials}
	for trial := 0; trial < trials; trial++ {
		var n atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					runtime.Gosched()
					n.Add(1)
				}
			}()
		}
		wg.Wait()
		if n.Load() != int64(workers*perWorker) {
			st.Anomalies++
		}
	}
	return st
}

// ForcedDoubleCompute runs live trials of the check-then-act race: two
// goroutines lazily initialise one cache entry through a yield window,
// counting trials where the value was computed more than once.
func ForcedDoubleCompute(trials int) TrialStats {
	st := TrialStats{Trials: trials}
	for trial := 0; trial < trials; trial++ {
		var present atomic.Bool
		var computes atomic.Int32
		var wg sync.WaitGroup
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if !present.Load() { // check
					runtime.Gosched() // window
					computes.Add(1)   // act (compute)
					present.Store(true)
				}
			}()
		}
		wg.Wait()
		if computes.Load() > 1 {
			st.Anomalies++
		}
	}
	return st
}

// FixedDoubleCompute is the corrected compound version (mutex-guarded
// check-then-act); anomalies are always zero.
func FixedDoubleCompute(trials int) TrialStats {
	st := TrialStats{Trials: trials}
	for trial := 0; trial < trials; trial++ {
		var mu sync.Mutex
		present := false
		computes := 0
		var wg sync.WaitGroup
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				mu.Lock()
				if !present {
					computes++
					present = true
				}
				mu.Unlock()
			}()
		}
		wg.Wait()
		if computes > 1 {
			st.Anomalies++
		}
	}
	return st
}
