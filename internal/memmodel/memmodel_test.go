package memmodel

import "testing"

func TestExploreCountsInterleavings(t *testing.T) {
	// C(4,2) = 6 interleavings of two 2-op threads.
	res := Explore(
		func() *CounterState { return &CounterState{} },
		LostUpdateOps(0), LostUpdateOps(1),
		func(s *CounterState) bool { return s.N == 2 },
	)
	if res.Interleavings != 6 {
		t.Fatalf("interleavings = %d, want 6", res.Interleavings)
	}
}

func TestLostUpdateHasViolations(t *testing.T) {
	res := Explore(
		func() *CounterState { return &CounterState{} },
		LostUpdateOps(0), LostUpdateOps(1),
		func(s *CounterState) bool { return s.N == 2 },
	)
	if res.Violations == 0 {
		t.Fatal("racy increment shows no bad interleavings")
	}
	// The two fully-serialised interleavings (AABB, BBAA) are correct;
	// the four interleaved ones lose an update.
	if res.Violations != 4 {
		t.Fatalf("violations = %d, want 4", res.Violations)
	}
}

func TestAtomicIncrementHasNoViolations(t *testing.T) {
	res := Explore(
		func() *CounterState { return &CounterState{} },
		AtomicIncrementOps(0), AtomicIncrementOps(1),
		func(s *CounterState) bool { return s.N == 2 },
	)
	if res.Interleavings != 2 {
		t.Fatalf("interleavings = %d", res.Interleavings)
	}
	if res.Violations != 0 {
		t.Fatalf("atomic increment violated in %d interleavings", res.Violations)
	}
}

func TestUnsafePublishHasViolations(t *testing.T) {
	res := Explore(
		func() *PublishState { return &PublishState{Observed: -1} },
		UnsafePublishWriterOps(), PublishReaderOps(),
		PublishOK,
	)
	if res.Violations == 0 {
		t.Fatal("reordered publication shows no anomaly")
	}
}

func TestSafePublishHasNoViolations(t *testing.T) {
	res := Explore(
		func() *PublishState { return &PublishState{Observed: -1} },
		SafePublishWriterOps(), PublishReaderOps(),
		PublishOK,
	)
	if res.Violations != 0 {
		t.Fatalf("safe publication violated in %d interleavings", res.Violations)
	}
}

func TestCheckThenActHasViolations(t *testing.T) {
	res := Explore(
		func() *CacheState { return &CacheState{} },
		CheckThenActOps(0), CheckThenActOps(1),
		func(s *CacheState) bool { return s.Computes == 1 },
	)
	if res.Violations == 0 {
		t.Fatal("check-then-act shows no double compute")
	}
}

func TestAtomicCheckThenActHasNoViolations(t *testing.T) {
	res := Explore(
		func() *CacheState { return &CacheState{} },
		AtomicCheckThenActOps(0), AtomicCheckThenActOps(1),
		func(s *CacheState) bool { return s.Computes == 1 },
	)
	if res.Violations != 0 {
		t.Fatalf("atomic check-then-act violated in %d interleavings", res.Violations)
	}
}

func TestExploreAsymmetricLengths(t *testing.T) {
	// C(3,1) = 3 interleavings of a 1-op and a 2-op thread.
	res := Explore(
		func() *CounterState { return &CounterState{} },
		AtomicIncrementOps(0), LostUpdateOps(1),
		func(s *CounterState) bool { return true },
	)
	if res.Interleavings != 3 {
		t.Fatalf("interleavings = %d, want 3", res.Interleavings)
	}
}

func TestForcedLostUpdateShowsAnomalies(t *testing.T) {
	st := ForcedLostUpdate(30, 4, 50)
	if st.Trials != 30 {
		t.Fatalf("trials = %d", st.Trials)
	}
	if st.Anomalies == 0 {
		t.Error("forced lost update produced no anomalies; race window ineffective")
	}
	if st.Rate() < 0 || st.Rate() > 1 {
		t.Errorf("rate = %g", st.Rate())
	}
}

func TestFixedLostUpdateIsExact(t *testing.T) {
	st := FixedLostUpdate(20, 4, 50)
	if st.Anomalies != 0 {
		t.Fatalf("fixed version lost updates in %d trials", st.Anomalies)
	}
}

func TestForcedDoubleComputeShowsAnomalies(t *testing.T) {
	st := ForcedDoubleCompute(200)
	if st.Anomalies == 0 {
		t.Error("forced double-compute produced no anomalies")
	}
}

func TestFixedDoubleComputeIsExact(t *testing.T) {
	st := FixedDoubleCompute(200)
	if st.Anomalies != 0 {
		t.Fatalf("fixed double-compute anomalies = %d", st.Anomalies)
	}
}

func TestTrialStatsRateEmpty(t *testing.T) {
	if (TrialStats{}).Rate() != 0 {
		t.Fatal("empty rate not 0")
	}
}

func BenchmarkExploreLostUpdate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Explore(
			func() *CounterState { return &CounterState{} },
			LostUpdateOps(0), LostUpdateOps(1),
			func(s *CounterState) bool { return s.N == 2 },
		)
	}
}
