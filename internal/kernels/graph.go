package kernels

import (
	"math"
	"sync/atomic"

	"parc751/internal/pyjama"
	"parc751/internal/reduction"
	"parc751/internal/workload"
)

// BFSSequential returns each vertex's breadth-first level from src, or -1
// for unreachable vertices.
func BFSSequential(g *workload.Graph, src int) []int {
	level := make([]int, g.N)
	for i := range level {
		level[i] = -1
	}
	level[src] = 0
	frontier := []int{src}
	for depth := 1; len(frontier) > 0; depth++ {
		var next []int
		for _, v := range frontier {
			for _, w := range g.Neighbors(v) {
				if level[w] == -1 {
					level[w] = depth
					next = append(next, w)
				}
			}
		}
		frontier = next
	}
	return level
}

// BFSParallel is the level-synchronous parallel BFS: each frontier is
// expanded by a Pyjama team, with compare-and-swap claiming of vertices so
// each vertex is discovered exactly once. Levels are identical to the
// sequential BFS (level-synchronous BFS is deterministic in levels, though
// not in discovery order within a level).
func BFSParallel(nthreads int, g *workload.Graph, src int) []int {
	level := make([]int32, g.N)
	for i := range level {
		level[i] = -1
	}
	level[src] = 0
	frontier := []int{src}
	nexts := pyjama.NewThreadPrivate[[]int](nthreads)
	for depth := int32(1); len(frontier) > 0; depth++ {
		pyjama.Parallel(nthreads, func(tc *pyjama.TC) {
			mine := nexts.Get(tc.ThreadNum())
			*mine = (*mine)[:0]
			tc.ForNoWait(len(frontier), pyjama.Dynamic(64), func(fi int) {
				v := frontier[fi]
				for _, w := range g.Neighbors(v) {
					if atomic.CompareAndSwapInt32(&level[w], -1, depth) {
						*mine = append(*mine, w)
					}
				}
			})
		})
		frontier = frontier[:0]
		for _, part := range nexts.Values() {
			frontier = append(frontier, part...)
		}
	}
	out := make([]int, g.N)
	for i, l := range level {
		out[i] = int(l)
	}
	return out
}

// PageRankSequential runs iters iterations of power-method PageRank with
// damping d, returning the rank vector. Dangling mass is redistributed
// uniformly (our generated graphs have no dangling vertices, but the
// kernel handles them for generality).
func PageRankSequential(g *workload.Graph, d float64, iters int) []float64 {
	n := g.N
	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	contrib := make([]float64, n)
	for it := 0; it < iters; it++ {
		dangling := 0.0
		for v := 0; v < n; v++ {
			deg := g.OutDegree(v)
			if deg == 0 {
				dangling += rank[v]
				contrib[v] = 0
			} else {
				contrib[v] = rank[v] / float64(deg)
			}
		}
		base := (1-d)/float64(n) + d*dangling/float64(n)
		for v := 0; v < n; v++ {
			next[v] = base
		}
		for v := 0; v < n; v++ {
			c := d * contrib[v]
			for _, w := range g.Neighbors(v) {
				next[w] += c
			}
		}
		rank, next = next, rank
	}
	return rank
}

// PageRankParallel is the pull-based parallel formulation: it needs the
// reverse graph so each vertex gathers from its in-neighbours, making
// every next[v] written by exactly one thread (and thus bit-deterministic
// given the fixed in-neighbour order).
func PageRankParallel(nthreads int, g *workload.Graph, d float64, iters int) []float64 {
	n := g.N
	rg := Reverse(g)
	rank := make([]float64, n)
	next := make([]float64, n)
	contrib := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	for it := 0; it < iters; it++ {
		var danglingShared float64
		pyjama.Parallel(nthreads, func(tc *pyjama.TC) {
			// Phase 1: per-vertex contributions plus a dangling-mass
			// reduction.
			dang := pyjama.ForReduce(tc, n, pyjama.Static(0),
				reduction.Sum[float64](), func(v int, acc float64) float64 {
					deg := g.OutDegree(v)
					if deg == 0 {
						contrib[v] = 0
						return acc + rank[v]
					}
					contrib[v] = rank[v] / float64(deg)
					return acc
				})
			tc.Master(func() { danglingShared = dang })
			tc.Barrier()
			base := (1-d)/float64(n) + d*danglingShared/float64(n)
			// Phase 2: gather along in-edges.
			tc.For(n, pyjama.Dynamic(128), func(v int) {
				sum := base
				for _, u := range rg.Neighbors(v) {
					sum += d * contrib[u]
				}
				next[v] = sum
			})
		})
		rank, next = next, rank
	}
	return rank
}

// ComponentsSequential labels the weakly connected components of g by
// label propagation over the symmetrised edge set: every vertex starts
// with its own id and repeatedly adopts the minimum label among itself and
// its neighbours (both directions) until a fixpoint. Returns one label per
// vertex; equal labels mean same component.
func ComponentsSequential(g *workload.Graph) []int {
	rg := Reverse(g)
	label := make([]int, g.N)
	for v := range label {
		label[v] = v
	}
	for changed := true; changed; {
		changed = false
		for v := 0; v < g.N; v++ {
			m := label[v]
			for _, w := range g.Neighbors(v) {
				if label[w] < m {
					m = label[w]
				}
			}
			for _, w := range rg.Neighbors(v) {
				if label[w] < m {
					m = label[w]
				}
			}
			if m < label[v] {
				label[v] = m
				changed = true
			}
		}
	}
	return label
}

// ComponentsParallel is the Jacobi-style parallel label propagation: each
// sweep computes new labels from the previous sweep's labels only (so
// every next[v] is written by exactly one thread), iterating to fixpoint.
// Labels converge to the same fixpoint as the sequential kernel (the
// minimum vertex id of the component), though it may take more sweeps.
func ComponentsParallel(nthreads int, g *workload.Graph) []int {
	rg := Reverse(g)
	label := make([]int, g.N)
	next := make([]int, g.N)
	for v := range label {
		label[v] = v
	}
	var changed atomic.Bool
	for {
		changed.Store(false)
		pyjama.ParallelFor(nthreads, g.N, pyjama.Dynamic(128), func(v int) {
			m := label[v]
			for _, w := range g.Neighbors(v) {
				if label[w] < m {
					m = label[w]
				}
			}
			for _, w := range rg.Neighbors(v) {
				if label[w] < m {
					m = label[w]
				}
			}
			next[v] = m
			if m != label[v] {
				changed.Store(true)
			}
		})
		label, next = next, label
		if !changed.Load() {
			return label
		}
	}
}

// CountComponents returns the number of distinct labels.
func CountComponents(labels []int) int {
	seen := map[int]struct{}{}
	for _, l := range labels {
		seen[l] = struct{}{}
	}
	return len(seen)
}

// Reverse returns the transpose graph (edges flipped), preserving the
// order of in-neighbours by source vertex so gathers are deterministic.
func Reverse(g *workload.Graph) *workload.Graph {
	indeg := make([]int, g.N)
	for v := 0; v < g.N; v++ {
		for _, w := range g.Neighbors(v) {
			indeg[w]++
		}
	}
	rg := &workload.Graph{N: g.N, Offs: make([]int, g.N+1)}
	total := 0
	for v := 0; v < g.N; v++ {
		rg.Offs[v] = total
		total += indeg[v]
	}
	rg.Offs[g.N] = total
	rg.Adj = make([]int, total)
	fill := make([]int, g.N)
	copy(fill, rg.Offs[:g.N])
	for v := 0; v < g.N; v++ {
		for _, w := range g.Neighbors(v) {
			rg.Adj[fill[w]] = v
			fill[w]++
		}
	}
	return rg
}

// L1Distance returns the L1 distance of two equal-length vectors.
func L1Distance(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}
