package kernels

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"parc751/internal/workload"
	"parc751/internal/xrand"
)

// ---- FFT ----

func randomSignal(seed uint64, n int) []complex128 {
	r := xrand.New(seed)
	xs := make([]complex128, n)
	for i := range xs {
		xs[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return xs
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 64} {
		xs := randomSignal(uint64(n), n)
		want := DFTNaive(xs)
		got := append([]complex128(nil), xs...)
		FFTSequential(got)
		for k := range want {
			if cmplx.Abs(got[k]-want[k]) > 1e-9*float64(n) {
				t.Fatalf("n=%d: FFT[%d] = %v, DFT = %v", n, k, got[k], want[k])
			}
		}
	}
}

func TestFFTParallelBitIdentical(t *testing.T) {
	for _, n := range []int{8, 256, 4096} {
		for _, threads := range []int{1, 2, 4} {
			seq := randomSignal(7, n)
			par := append([]complex128(nil), seq...)
			FFTSequential(seq)
			FFTParallel(threads, par)
			for k := range seq {
				if seq[k] != par[k] {
					t.Fatalf("n=%d t=%d: FFT differs at %d: %v vs %v", n, threads, k, seq[k], par[k])
				}
			}
		}
	}
}

func TestFFTRoundTrip(t *testing.T) {
	xs := randomSignal(3, 1024)
	orig := append([]complex128(nil), xs...)
	FFTSequential(xs)
	IFFT(xs)
	for i := range xs {
		if cmplx.Abs(xs[i]-orig[i]) > 1e-9 {
			t.Fatalf("round trip diverged at %d: %v vs %v", i, xs[i], orig[i])
		}
	}
}

func TestFFTParseval(t *testing.T) {
	xs := randomSignal(5, 512)
	timeE := 0.0
	for _, v := range xs {
		timeE += real(v)*real(v) + imag(v)*imag(v)
	}
	FFTSequential(xs)
	freqE := 0.0
	for _, v := range xs {
		freqE += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(freqE/float64(len(xs))-timeE) > 1e-6*timeE {
		t.Fatalf("Parseval violated: time=%g freq/n=%g", timeE, freqE/float64(len(xs)))
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{0, 3, 6, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("n=%d did not panic", n)
				}
			}()
			FFTSequential(make([]complex128, n))
		}()
	}
}

// ---- Molecular dynamics ----

func TestMDForcesParallelBitIdentical(t *testing.T) {
	seq := NewMDSystem(11, 128, 10)
	par := seq.Clone()
	seq.ComputeForcesSequential()
	for _, threads := range []int{1, 2, 4} {
		par.ComputeForcesParallel(threads)
		for i := range seq.Force {
			if seq.Force[i] != par.Force[i] {
				t.Fatalf("t=%d: force %d differs: %v vs %v", threads, i, seq.Force[i], par.Force[i])
			}
		}
	}
}

func TestMDTrajectoriesMatch(t *testing.T) {
	a := NewMDSystem(13, 64, 8)
	b := a.Clone()
	a.ComputeForcesSequential()
	b.ComputeForcesParallel(3)
	for step := 0; step < 20; step++ {
		a.Step(a.ComputeForcesSequential)
		b.Step(func() { b.ComputeForcesParallel(3) })
	}
	if d := MaxDeviation(a, b); d != 0 {
		t.Fatalf("trajectories diverged by %g", d)
	}
}

func TestMDNewtonThirdLaw(t *testing.T) {
	// Total force must be ~zero (action = reaction), since forces are
	// pairwise antisymmetric.
	s := NewMDSystem(17, 96, 10)
	s.ComputeForcesSequential()
	var total Vec3
	for _, f := range s.Force {
		total = total.Add(f)
	}
	if math.Abs(total.X)+math.Abs(total.Y)+math.Abs(total.Z) > 1e-7 {
		t.Fatalf("net force = %+v", total)
	}
}

func TestMDEnergyApproximatelyConserved(t *testing.T) {
	s := NewMDSystem(19, 48, 12)
	s.ComputeForcesSequential()
	e0 := s.TotalEnergy()
	for step := 0; step < 100; step++ {
		s.Step(s.ComputeForcesSequential)
	}
	e1 := s.TotalEnergy()
	scale := math.Max(math.Abs(e0), 1)
	if math.Abs(e1-e0)/scale > 0.05 {
		t.Fatalf("energy drifted: %g -> %g", e0, e1)
	}
}

func TestVec3Ops(t *testing.T) {
	a, b := Vec3{1, 2, 3}, Vec3{4, 5, 6}
	if a.Add(b) != (Vec3{5, 7, 9}) {
		t.Error("Add wrong")
	}
	if b.Sub(a) != (Vec3{3, 3, 3}) {
		t.Error("Sub wrong")
	}
	if a.Scale(2) != (Vec3{2, 4, 6}) {
		t.Error("Scale wrong")
	}
	if a.Norm2() != 14 {
		t.Error("Norm2 wrong")
	}
}

// ---- Graph kernels ----

func TestBFSParallelMatchesSequential(t *testing.T) {
	g := workload.GenGraph(23, 2000, 4)
	want := BFSSequential(g, 0)
	for _, threads := range []int{1, 2, 4} {
		got := BFSParallel(threads, g, 0)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("t=%d: level[%d] = %d, want %d", threads, v, got[v], want[v])
			}
		}
	}
}

func TestBFSRingDistances(t *testing.T) {
	// A pure ring has exact known distances.
	n := 64
	g := &workload.Graph{N: n, Offs: make([]int, n+1), Adj: make([]int, n)}
	for v := 0; v < n; v++ {
		g.Offs[v] = v
		g.Adj[v] = (v + 1) % n
	}
	g.Offs[n] = n
	for _, bfs := range []func(*workload.Graph, int) []int{
		BFSSequential,
		func(g *workload.Graph, s int) []int { return BFSParallel(3, g, s) },
	} {
		lv := bfs(g, 5)
		for v := 0; v < n; v++ {
			want := (v - 5 + n) % n
			if lv[v] != want {
				t.Fatalf("ring level[%d] = %d, want %d", v, lv[v], want)
			}
		}
	}
}

func TestBFSAllReachableInGenGraph(t *testing.T) {
	g := workload.GenGraph(29, 500, 3)
	lv := BFSSequential(g, 0)
	for v, l := range lv {
		if l < 0 {
			t.Fatalf("vertex %d unreachable despite ring edge", v)
		}
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	g := workload.GenGraph(31, 800, 5)
	rank := PageRankSequential(g, 0.85, 30)
	sum := 0.0
	for _, r := range rank {
		sum += r
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("rank sum = %g", sum)
	}
}

func TestPageRankParallelMatchesSequential(t *testing.T) {
	g := workload.GenGraph(37, 600, 4)
	want := PageRankSequential(g, 0.85, 20)
	for _, threads := range []int{1, 2, 4} {
		got := PageRankParallel(threads, g, 0.85, 20)
		if d := L1Distance(want, got); d > 1e-12 {
			t.Fatalf("t=%d: pagerank L1 distance %g", threads, d)
		}
	}
}

func TestPageRankConverges(t *testing.T) {
	g := workload.GenGraph(41, 400, 4)
	a := PageRankSequential(g, 0.85, 40)
	b := PageRankSequential(g, 0.85, 80)
	if d := L1Distance(a, b); d > 1e-6 {
		t.Fatalf("pagerank not converging: L1 = %g", d)
	}
}

func TestComponentsSingleComponentRing(t *testing.T) {
	// GenGraph always includes the ring edge, so everything is one weak
	// component with label 0.
	g := workload.GenGraph(61, 300, 3)
	labels := ComponentsSequential(g)
	if CountComponents(labels) != 1 {
		t.Fatalf("components = %d, want 1", CountComponents(labels))
	}
	for v, l := range labels {
		if l != 0 {
			t.Fatalf("vertex %d label = %d", v, l)
		}
	}
}

func TestComponentsDisjointGraphs(t *testing.T) {
	// Two disjoint rings: vertices 0..9 and 10..19.
	n := 20
	g := &workload.Graph{N: n, Offs: make([]int, n+1), Adj: make([]int, n)}
	for v := 0; v < 10; v++ {
		g.Offs[v] = v
		g.Adj[v] = (v + 1) % 10
	}
	for v := 10; v < 20; v++ {
		g.Offs[v] = v
		g.Adj[v] = 10 + (v+1-10)%10
	}
	g.Offs[n] = n
	labels := ComponentsSequential(g)
	if CountComponents(labels) != 2 {
		t.Fatalf("components = %d, want 2", CountComponents(labels))
	}
	for v := 0; v < 10; v++ {
		if labels[v] != 0 {
			t.Fatalf("first ring vertex %d label %d", v, labels[v])
		}
	}
	for v := 10; v < 20; v++ {
		if labels[v] != 10 {
			t.Fatalf("second ring vertex %d label %d", v, labels[v])
		}
	}
}

func TestComponentsParallelMatchesSequential(t *testing.T) {
	// Disjoint rings again plus a random graph, across thread counts.
	for _, seed := range []uint64{3, 67} {
		g := workload.GenGraph(seed, 400, 2)
		want := ComponentsSequential(g)
		for _, threads := range []int{1, 2, 4} {
			got := ComponentsParallel(threads, g)
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("seed=%d t=%d: label[%d] = %d, want %d", seed, threads, v, got[v], want[v])
				}
			}
		}
	}
}

func TestReverseGraphPreservesEdges(t *testing.T) {
	f := func(seed uint64) bool {
		g := workload.GenGraph(seed, 100, 3)
		rg := Reverse(g)
		if rg.N != g.N || len(rg.Adj) != len(g.Adj) {
			return false
		}
		// Each forward edge appears exactly once in the reverse graph.
		fwd := map[[2]int]int{}
		for v := 0; v < g.N; v++ {
			for _, w := range g.Neighbors(v) {
				fwd[[2]int{v, w}]++
			}
		}
		for w := 0; w < rg.N; w++ {
			for _, v := range rg.Neighbors(w) {
				fwd[[2]int{v, w}]--
			}
		}
		for _, c := range fwd {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// ---- Linear algebra ----

func TestMatMulKnownValues(t *testing.T) {
	a := &Matrix{Rows: 2, Cols: 3, Data: []float64{1, 2, 3, 4, 5, 6}}
	b := &Matrix{Rows: 3, Cols: 2, Data: []float64{7, 8, 9, 10, 11, 12}}
	c := MatMulSequential(a, b)
	want := []float64{58, 64, 139, 154}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("c[%d] = %g, want %g", i, c.Data[i], v)
		}
	}
}

func TestMatMulParallelBitIdentical(t *testing.T) {
	a := RandomMatrix(1, 97, 61)
	b := RandomMatrix(2, 61, 83)
	want := MatMulSequential(a, b)
	for _, threads := range []int{1, 2, 4} {
		got := MatMulParallel(threads, a, b)
		if d := MaxAbsDiff(want, got); d != 0 {
			t.Fatalf("t=%d: matmul differs by %g", threads, d)
		}
	}
}

func TestMatMulDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched matmul did not panic")
		}
	}()
	MatMulSequential(NewMatrix(2, 3), NewMatrix(2, 3))
}

func TestMatMulIdentity(t *testing.T) {
	a := RandomMatrix(5, 40, 40)
	id := NewMatrix(40, 40)
	for i := 0; i < 40; i++ {
		id.Set(i, i, 1)
	}
	c := MatMulParallel(3, a, id)
	if d := MaxAbsDiff(a, c); d != 0 {
		t.Fatalf("A*I differs from A by %g", d)
	}
}

func TestJacobiConverges(t *testing.T) {
	sys := NewJacobiSystem(43, 80)
	x := sys.JacobiSequential(200)
	if r := sys.Residual(x); r > 1e-8 {
		t.Fatalf("residual = %g after 200 sweeps", r)
	}
}

func TestJacobiParallelBitIdentical(t *testing.T) {
	sys := NewJacobiSystem(47, 64)
	want := sys.JacobiSequential(50)
	for _, threads := range []int{1, 2, 4} {
		got := sys.JacobiParallel(threads, 50)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("t=%d: x[%d] = %g vs %g", threads, i, got[i], want[i])
			}
		}
	}
}

func TestJacobiResidualDecreases(t *testing.T) {
	sys := NewJacobiSystem(53, 60)
	r10 := sys.Residual(sys.JacobiSequential(10))
	r50 := sys.Residual(sys.JacobiSequential(50))
	if r50 >= r10 {
		t.Fatalf("residual did not decrease: %g -> %g", r10, r50)
	}
}

func BenchmarkFFT16k(b *testing.B) {
	xs := randomSignal(1, 1<<14)
	work := make([]complex128, len(xs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, xs)
		FFTSequential(work)
	}
}

func BenchmarkFFT16kParallel(b *testing.B) {
	xs := randomSignal(1, 1<<14)
	work := make([]complex128, len(xs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, xs)
		FFTParallel(4, work)
	}
}

func BenchmarkMDForces256(b *testing.B) {
	s := NewMDSystem(1, 256, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ComputeForcesSequential()
	}
}

func BenchmarkMatMul128(b *testing.B) {
	x := RandomMatrix(1, 128, 128)
	y := RandomMatrix(2, 128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulSequential(x, y)
	}
}

func BenchmarkPageRank(b *testing.B) {
	g := workload.GenGraph(1, 2000, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PageRankSequential(g, 0.85, 10)
	}
}
