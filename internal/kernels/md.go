package kernels

import (
	"math"

	"parc751/internal/pyjama"
	"parc751/internal/xrand"
)

// Vec3 is a 3-component vector.
type Vec3 struct{ X, Y, Z float64 }

// Add returns a + b.
func (a Vec3) Add(b Vec3) Vec3 { return Vec3{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }

// Sub returns a - b.
func (a Vec3) Sub(b Vec3) Vec3 { return Vec3{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Scale returns a scaled by s.
func (a Vec3) Scale(s float64) Vec3 { return Vec3{a.X * s, a.Y * s, a.Z * s} }

// Norm2 returns the squared Euclidean norm.
func (a Vec3) Norm2() float64 { return a.X*a.X + a.Y*a.Y + a.Z*a.Z }

// MDSystem is a Lennard-Jones particle system integrated with velocity
// Verlet — the molecular-dynamics kernel (modelled on the classic "md"
// OpenMP benchmark the students were given in C).
type MDSystem struct {
	Pos, Vel, Force []Vec3
	Mass            float64
	Dt              float64
	Eps, Sigma      float64 // Lennard-Jones parameters
	MinDist2        float64 // softening floor to keep the potential finite
}

// NewMDSystem places n particles pseudo-randomly in a box of the given
// side with small random velocities.
func NewMDSystem(seed uint64, n int, box float64) *MDSystem {
	r := xrand.New(seed)
	s := &MDSystem{
		Pos:      make([]Vec3, n),
		Vel:      make([]Vec3, n),
		Force:    make([]Vec3, n),
		Mass:     1,
		Dt:       1e-4,
		Eps:      1,
		Sigma:    1,
		MinDist2: 0.25,
	}
	for i := range s.Pos {
		s.Pos[i] = Vec3{r.Float64() * box, r.Float64() * box, r.Float64() * box}
		s.Vel[i] = Vec3{r.NormFloat64() * 0.01, r.NormFloat64() * 0.01, r.NormFloat64() * 0.01}
	}
	return s
}

// N returns the particle count.
func (s *MDSystem) N() int { return len(s.Pos) }

// forceOn computes the total Lennard-Jones force on particle i from all
// other particles, iterating j in index order so the floating-point sum is
// deterministic for any parallel decomposition over i.
func (s *MDSystem) forceOn(i int) Vec3 {
	var f Vec3
	sigma2 := s.Sigma * s.Sigma
	for j := range s.Pos {
		if j == i {
			continue
		}
		d := s.Pos[i].Sub(s.Pos[j])
		r2 := d.Norm2()
		if r2 < s.MinDist2 {
			r2 = s.MinDist2
		}
		sr2 := sigma2 / r2
		sr6 := sr2 * sr2 * sr2
		// F = 24 eps (2 sr^12 - sr^6) / r^2 * d
		mag := 24 * s.Eps * (2*sr6*sr6 - sr6) / r2
		f = f.Add(d.Scale(mag))
	}
	return f
}

// ComputeForcesSequential fills s.Force from the current positions.
func (s *MDSystem) ComputeForcesSequential() {
	for i := range s.Force {
		s.Force[i] = s.forceOn(i)
	}
}

// ComputeForcesParallel is the Pyjama parallelisation: the O(n²) force
// loop workshared over i with schedule(auto) — the runtime calibrates a
// prefix of the loop and picks static blocks (uniform cost, as here) or
// dynamic claiming with a computed chunk (when cutoff skew dominates).
func (s *MDSystem) ComputeForcesParallel(nthreads int) {
	pyjama.ParallelFor(nthreads, len(s.Force), pyjama.Auto(), func(i int) {
		s.Force[i] = s.forceOn(i)
	})
}

// Step advances the system one velocity-Verlet step, computing forces with
// forces (either of the ComputeForces variants wrapped by the caller).
func (s *MDSystem) Step(forces func()) {
	dt, m := s.Dt, s.Mass
	// Half-kick + drift using current forces.
	for i := range s.Pos {
		s.Vel[i] = s.Vel[i].Add(s.Force[i].Scale(dt / (2 * m)))
		s.Pos[i] = s.Pos[i].Add(s.Vel[i].Scale(dt))
	}
	forces()
	// Second half-kick with the new forces.
	for i := range s.Vel {
		s.Vel[i] = s.Vel[i].Add(s.Force[i].Scale(dt / (2 * m)))
	}
}

// KineticEnergy returns the total kinetic energy.
func (s *MDSystem) KineticEnergy() float64 {
	e := 0.0
	for i := range s.Vel {
		e += 0.5 * s.Mass * s.Vel[i].Norm2()
	}
	return e
}

// PotentialEnergy returns the total Lennard-Jones potential energy.
func (s *MDSystem) PotentialEnergy() float64 {
	e := 0.0
	sigma2 := s.Sigma * s.Sigma
	for i := 0; i < len(s.Pos); i++ {
		for j := i + 1; j < len(s.Pos); j++ {
			r2 := s.Pos[i].Sub(s.Pos[j]).Norm2()
			if r2 < s.MinDist2 {
				r2 = s.MinDist2
			}
			sr2 := sigma2 / r2
			sr6 := sr2 * sr2 * sr2
			e += 4 * s.Eps * (sr6*sr6 - sr6)
		}
	}
	return e
}

// TotalEnergy returns kinetic plus potential energy.
func (s *MDSystem) TotalEnergy() float64 { return s.KineticEnergy() + s.PotentialEnergy() }

// Clone deep-copies the system so sequential and parallel runs can start
// from identical state.
func (s *MDSystem) Clone() *MDSystem {
	c := *s
	c.Pos = append([]Vec3(nil), s.Pos...)
	c.Vel = append([]Vec3(nil), s.Vel...)
	c.Force = append([]Vec3(nil), s.Force...)
	return &c
}

// MaxDeviation returns the largest component-wise position difference
// between two systems — the equality metric for parallel-vs-sequential.
func MaxDeviation(a, b *MDSystem) float64 {
	m := 0.0
	for i := range a.Pos {
		d := a.Pos[i].Sub(b.Pos[i])
		m = math.Max(m, math.Max(math.Abs(d.X), math.Max(math.Abs(d.Y), math.Abs(d.Z))))
	}
	return m
}
