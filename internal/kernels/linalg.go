package kernels

import (
	"math"

	"parc751/internal/pyjama"
	"parc751/internal/xrand"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// RandomMatrix fills a Rows×Cols matrix with uniform values in [-1, 1).
func RandomMatrix(seed uint64, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	r := xrand.New(seed)
	for i := range m.Data {
		m.Data[i] = 2*r.Float64() - 1
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice view.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// MatMulSequential returns a×b with the cache-friendly i-k-j loop order.
// It panics on dimension mismatch.
func MatMulSequential(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic("kernels: matmul dimension mismatch")
	}
	c := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		crow := c.Row(i)
		for k := 0; k < a.Cols; k++ {
			aik := a.At(i, k)
			brow := b.Row(k)
			for j := range crow {
				crow[j] += aik * brow[j]
			}
		}
	}
	return c
}

// MatMulParallel workshares output rows over a Pyjama team. Each row is
// produced by one thread in the sequential k-j order, so the result is
// bit-identical to MatMulSequential.
func MatMulParallel(nthreads int, a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic("kernels: matmul dimension mismatch")
	}
	c := NewMatrix(a.Rows, b.Cols)
	pyjama.ParallelFor(nthreads, a.Rows, pyjama.Static(0), func(i int) {
		crow := c.Row(i)
		for k := 0; k < a.Cols; k++ {
			aik := a.At(i, k)
			brow := b.Row(k)
			for j := range crow {
				crow[j] += aik * brow[j]
			}
		}
	})
	return c
}

// MatMulParallelStats is MatMulParallel plus the Pyjama region's
// observability snapshot — the serving layer runs the kernel through this
// so /statz can report worksharing and barrier behaviour alongside the
// scheduler's sched.Snapshot.
func MatMulParallelStats(nthreads int, a, b *Matrix) (*Matrix, pyjama.RegionStats) {
	if a.Cols != b.Rows {
		panic("kernels: matmul dimension mismatch")
	}
	c := NewMatrix(a.Rows, b.Cols)
	stats := pyjama.ParallelWithStats(nthreads, func(tc *pyjama.TC) {
		tc.ForNoWait(a.Rows, pyjama.Static(0), func(i int) {
			crow := c.Row(i)
			for k := 0; k < a.Cols; k++ {
				aik := a.At(i, k)
				brow := b.Row(k)
				for j := range crow {
					crow[j] += aik * brow[j]
				}
			}
		})
	})
	return c, stats
}

// MaxAbsDiff returns the largest element-wise absolute difference.
func MaxAbsDiff(a, b *Matrix) float64 {
	m := 0.0
	for i := range a.Data {
		if d := math.Abs(a.Data[i] - b.Data[i]); d > m {
			m = d
		}
	}
	return m
}

// JacobiSystem is a diagonally dominant linear system Ax = rhs for the
// Jacobi iteration kernel.
type JacobiSystem struct {
	A   *Matrix
	Rhs []float64
}

// NewJacobiSystem builds a random strictly diagonally dominant n×n system,
// which guarantees Jacobi convergence.
func NewJacobiSystem(seed uint64, n int) *JacobiSystem {
	r := xrand.New(seed)
	a := NewMatrix(n, n)
	rhs := make([]float64, n)
	for i := 0; i < n; i++ {
		rowSum := 0.0
		for j := 0; j < n; j++ {
			if i != j {
				v := 2*r.Float64() - 1
				a.Set(i, j, v)
				rowSum += math.Abs(v)
			}
		}
		a.Set(i, i, rowSum+1+r.Float64())
		rhs[i] = 2*r.Float64() - 1
	}
	return &JacobiSystem{A: a, Rhs: rhs}
}

// JacobiSequential runs iters Jacobi sweeps from the zero vector and
// returns the iterate.
func (s *JacobiSystem) JacobiSequential(iters int) []float64 {
	n := len(s.Rhs)
	x := make([]float64, n)
	next := make([]float64, n)
	for it := 0; it < iters; it++ {
		for i := 0; i < n; i++ {
			next[i] = s.sweepRow(i, x)
		}
		x, next = next, x
	}
	return x
}

// JacobiParallel runs the same sweeps with rows workshared per iteration;
// output is bit-identical to the sequential kernel.
func (s *JacobiSystem) JacobiParallel(nthreads, iters int) []float64 {
	n := len(s.Rhs)
	x := make([]float64, n)
	next := make([]float64, n)
	pyjama.Parallel(nthreads, func(tc *pyjama.TC) {
		for it := 0; it < iters; it++ {
			tc.For(n, pyjama.Static(0), func(i int) {
				next[i] = s.sweepRow(i, x)
			})
			tc.Master(func() { x, next = next, x })
			tc.Barrier()
		}
	})
	return x
}

func (s *JacobiSystem) sweepRow(i int, x []float64) float64 {
	n := len(x)
	row := s.A.Row(i)
	sum := s.Rhs[i]
	for j := 0; j < n; j++ {
		if j != i {
			sum -= row[j] * x[j]
		}
	}
	return sum / row[i]
}

// Residual returns the max-norm of A·x − rhs.
func (s *JacobiSystem) Residual(x []float64) float64 {
	n := len(x)
	worst := 0.0
	for i := 0; i < n; i++ {
		row := s.A.Row(i)
		sum := -s.Rhs[i]
		for j := 0; j < n; j++ {
			sum += row[j] * x[j]
		}
		if a := math.Abs(sum); a > worst {
			worst = a
		}
	}
	return worst
}
