// Package kernels is project 3 of the reproduced paper: "parallelisation
// of simple computational kernels". The students were given C
// implementations of FFT, molecular dynamics, graph processing and linear
// algebra codes and parallelised them in Java with Pyjama, comparing
// against hand-written threading. This package provides the same four
// kernel families, each with a sequential reference and a Pyjama-parallel
// version, written so the parallel output is bit-identical to the
// sequential one (each output element is produced by exactly one thread
// iterating in a fixed order), which is what makes them testable.
package kernels

import (
	"math"
	"math/cmplx"

	"parc751/internal/pyjama"
)

// FFTSequential computes the in-place radix-2 Cooley-Tukey FFT of xs,
// whose length must be a power of two. It panics otherwise.
func FFTSequential(xs []complex128) {
	fftCheck(len(xs))
	bitReverse(xs)
	n := len(xs)
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		w := cmplx.Exp(complex(0, -2*math.Pi/float64(size)))
		for start := 0; start < n; start += size {
			tw := complex(1, 0)
			for k := 0; k < half; k++ {
				a := xs[start+k]
				b := xs[start+k+half] * tw
				xs[start+k] = a + b
				xs[start+k+half] = a - b
				tw *= w
			}
		}
	}
}

// FFTParallel computes the same FFT with each stage's independent
// butterfly blocks workshared over a Pyjama team. Stages are separated by
// the loop's implicit barrier, exactly the structure of the classic
// OpenMP FFT. The output is bit-identical to FFTSequential because every
// block is computed by one thread in the sequential order.
func FFTParallel(nthreads int, xs []complex128) {
	fftCheck(len(xs))
	bitReverse(xs)
	n := len(xs)
	pyjama.Parallel(nthreads, func(tc *pyjama.TC) {
		for size := 2; size <= n; size <<= 1 {
			half := size / 2
			w := cmplx.Exp(complex(0, -2*math.Pi/float64(size)))
			blocks := n / size
			tc.For(blocks, pyjama.Static(0), func(b int) {
				start := b * size
				tw := complex(1, 0)
				for k := 0; k < half; k++ {
					x := xs[start+k]
					y := xs[start+k+half] * tw
					xs[start+k] = x + y
					xs[start+k+half] = x - y
					tw *= w
				}
			})
		}
	})
}

// IFFT computes the inverse FFT in place (sequentially), scaling by 1/n.
func IFFT(xs []complex128) {
	for i := range xs {
		xs[i] = cmplx.Conj(xs[i])
	}
	FFTSequential(xs)
	n := complex(float64(len(xs)), 0)
	for i := range xs {
		xs[i] = cmplx.Conj(xs[i]) / n
	}
}

// DFTNaive computes the O(n²) discrete Fourier transform, the oracle the
// FFT is verified against on small inputs.
func DFTNaive(xs []complex128) []complex128 {
	n := len(xs)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			angle := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			sum += xs[t] * cmplx.Exp(complex(0, angle))
		}
		out[k] = sum
	}
	return out
}

func fftCheck(n int) {
	if n == 0 || n&(n-1) != 0 {
		panic("kernels: FFT length must be a power of two")
	}
}

func bitReverse(xs []complex128) {
	n := len(xs)
	j := 0
	for i := 1; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		if i < j {
			xs[i], xs[j] = xs[j], xs[i]
		}
	}
}
