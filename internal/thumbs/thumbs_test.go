package thumbs

import (
	"sync"
	"testing"
	"time"

	"parc751/internal/eventloop"
	"parc751/internal/ptask"
	"parc751/internal/workload"
)

func newRT(t *testing.T, workers int) *ptask.Runtime {
	t.Helper()
	rt := ptask.NewRuntime(workers)
	t.Cleanup(rt.Shutdown)
	return rt
}

func TestScaleDimensions(t *testing.T) {
	src := workload.GenImage(1, 100, 60)
	for _, d := range [][2]int{{10, 10}, {1, 1}, {100, 60}, {200, 120}, {7, 13}} {
		th := Scale(src, d[0], d[1])
		if th.W != d[0] || th.H != d[1] || len(th.Pix) != d[0]*d[1] {
			t.Fatalf("Scale to %dx%d gave %dx%d", d[0], d[1], th.W, th.H)
		}
	}
}

func TestScaleIdentityPreservesContent(t *testing.T) {
	src := workload.GenImage(2, 32, 32)
	th := Scale(src, 32, 32)
	for i := range src.Pix {
		if th.Pix[i] != src.Pix[i] {
			t.Fatalf("identity scale changed pixel %d: %d -> %d", i, src.Pix[i], th.Pix[i])
		}
	}
}

func TestScaleAveragesUniformRegions(t *testing.T) {
	src := &workload.Image{W: 4, H: 4, Pix: []uint8{
		10, 10, 20, 20,
		10, 10, 20, 20,
		30, 30, 40, 40,
		30, 30, 40, 40,
	}}
	th := Scale(src, 2, 2)
	want := []uint8{10, 20, 30, 40}
	for i, v := range want {
		if th.Pix[i] != v {
			t.Fatalf("quadrant %d = %d, want %d", i, th.Pix[i], v)
		}
	}
}

func TestScaleRejectsBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size scale did not panic")
		}
	}()
	Scale(workload.GenImage(1, 8, 8), 0, 4)
}

func TestStrategiesProduceIdenticalThumbnails(t *testing.T) {
	rt := newRT(t, 4)
	imgs := workload.GenImageSet(3, 24, 16, 64)
	want := Sequential(imgs, 8, 8)

	pt := PTask(rt, imgs, 8, 8, nil)
	wp := WorkerPool(3, imgs, 8, 8)
	bw := <-BackgroundWorker(imgs, 8, 8, nil)

	for name, got := range map[string][]*workload.Image{"ptask": pt, "pool": wp, "background": bw} {
		if len(got) != len(want) {
			t.Fatalf("%s: %d thumbs", name, len(got))
		}
		for i := range want {
			if got[i].W != want[i].W || got[i].H != want[i].H {
				t.Fatalf("%s: thumb %d dims differ", name, i)
			}
			for p := range want[i].Pix {
				if got[i].Pix[p] != want[i].Pix[p] {
					t.Fatalf("%s: thumb %d pixel %d differs", name, i, p)
				}
			}
		}
	}
}

func TestPTaskInterimDelivery(t *testing.T) {
	rt := newRT(t, 4)
	imgs := workload.GenImageSet(5, 30, 16, 32)
	var mu sync.Mutex
	seen := map[int]bool{}
	PTask(rt, imgs, 8, 8, func(th Thumb) {
		mu.Lock()
		seen[th.Index] = true
		mu.Unlock()
	})
	deadline := time.After(5 * time.Second)
	for {
		mu.Lock()
		n := len(seen)
		mu.Unlock()
		if n == len(imgs) {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("interim thumbnails delivered %d of %d", n, len(imgs))
		case <-time.After(time.Millisecond):
		}
	}
}

func TestPTaskInterimOnEventLoop(t *testing.T) {
	rt := newRT(t, 2)
	loop := eventloop.New()
	defer loop.Close()
	rt.SetEventLoop(loop)
	imgs := workload.GenImageSet(7, 3, 16, 24)
	results := make(chan bool, 3)
	PTask(rt, imgs, 4, 4, func(th Thumb) { results <- loop.OnDispatchThread() })
	for i := 0; i < 3; i++ {
		select {
		case ok := <-results:
			if !ok {
				t.Fatal("thumbnail delivered off the dispatch thread")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("thumbnail never delivered")
		}
	}
}

func TestUIResponsiveWhileRendering(t *testing.T) {
	rt := newRT(t, 2)
	loop := eventloop.New()
	defer loop.Close()
	rt.SetEventLoop(loop)
	imgs := workload.GenImageSet(9, 64, 64, 160)
	done := make(chan struct{})
	go func() {
		PTask(rt, imgs, 32, 32, nil)
		close(done)
	}()
	res := loop.Probe(500*time.Microsecond, 20)
	<-done
	if res.Max() > time.Second {
		t.Errorf("UI latency %v while rendering off-thread", res.Max())
	}
}

func TestWorkerPoolClampsWorkers(t *testing.T) {
	imgs := workload.GenImageSet(11, 4, 8, 16)
	out := WorkerPool(0, imgs, 4, 4)
	if len(out) != 4 {
		t.Fatalf("thumbs = %d", len(out))
	}
	for _, th := range out {
		if th == nil {
			t.Fatal("missing thumbnail")
		}
	}
}

func TestBackgroundWorkerStreamsInOrder(t *testing.T) {
	imgs := workload.GenImageSet(13, 10, 8, 16)
	var order []int
	done := BackgroundWorker(imgs, 4, 4, func(th Thumb) { order = append(order, th.Index) })
	<-done
	for i, v := range order {
		if v != i {
			t.Fatalf("background order broken: %v", order)
		}
	}
}

func TestEmptyImageSet(t *testing.T) {
	rt := newRT(t, 2)
	if got := PTask(rt, nil, 8, 8, nil); len(got) != 0 {
		t.Fatal("thumbnails from empty set")
	}
	if got := WorkerPool(2, nil, 8, 8); len(got) != 0 {
		t.Fatal("pool thumbnails from empty set")
	}
}

func BenchmarkSequential64Images(b *testing.B) {
	imgs := workload.GenImageSet(1, 64, 64, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sequential(imgs, 32, 32)
	}
}

func BenchmarkPTask64Images(b *testing.B) {
	rt := ptask.NewRuntime(4)
	defer rt.Shutdown()
	imgs := workload.GenImageSet(1, 64, 64, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PTask(rt, imgs, 32, 32, nil)
	}
}

func BenchmarkWorkerPool64Images(b *testing.B) {
	imgs := workload.GenImageSet(1, 64, 64, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		WorkerPool(4, imgs, 32, 32)
	}
}
