// Package thumbs is project 1 of the reproduced paper: "thumbnails of
// images in a folder" — a GUI application that renders thumbnails for a
// folder of images in parallel while the interface stays responsive. The
// paper reports one student group comparing Java parallelisation
// strategies (Parallel Task, raw threads, SwingWorker) with different
// scheduling and input sizes; this package provides the same strategy
// set over synthetic images:
//
//   - Sequential: scale every image on the calling thread (the baseline —
//     and, run on the event thread, the anti-pattern that freezes a UI);
//   - PTask: one Parallel Task sub-task per image with interim thumbnail
//     delivery on the event loop (the TASK(*) expression);
//   - WorkerPool: a fixed goroutine pool fed by a channel (the "Java
//     threads" expression);
//   - BackgroundWorker: a single background goroutine (the "SwingWorker"
//     expression — responsive but unparallel).
package thumbs

import (
	"sync"

	"parc751/internal/ptask"
	"parc751/internal/workload"
)

// Scale box-filters src down to exactly w×h. It is the pixel kernel every
// strategy shares, deterministic for given inputs.
func Scale(src *workload.Image, w, h int) *workload.Image {
	if w < 1 || h < 1 {
		panic("thumbs: target dimensions must be positive")
	}
	dst := &workload.Image{W: w, H: h, Pix: make([]uint8, w*h)}
	for y := 0; y < h; y++ {
		sy0 := y * src.H / h
		sy1 := (y + 1) * src.H / h
		if sy1 == sy0 {
			sy1 = sy0 + 1
		}
		for x := 0; x < w; x++ {
			sx0 := x * src.W / w
			sx1 := (x + 1) * src.W / w
			if sx1 == sx0 {
				sx1 = sx0 + 1
			}
			sum, n := 0, 0
			for sy := sy0; sy < sy1; sy++ {
				row := src.Pix[sy*src.W : sy*src.W+src.W]
				for sx := sx0; sx < sx1; sx++ {
					sum += int(row[sx])
					n++
				}
			}
			dst.Pix[y*w+x] = uint8(sum / n)
		}
	}
	return dst
}

// Thumb pairs an input index with its rendered thumbnail.
type Thumb struct {
	Index int
	Image *workload.Image
}

// Sequential renders all thumbnails on the calling goroutine.
func Sequential(imgs []*workload.Image, w, h int) []*workload.Image {
	out := make([]*workload.Image, len(imgs))
	for i, im := range imgs {
		out[i] = Scale(im, w, h)
	}
	return out
}

// PTask renders thumbnails as a Parallel Task multi-task. onThumb, if
// non-nil, receives each thumbnail as it completes — on the runtime's
// event loop when one is registered, which is what keeps the grid filling
// in while the GUI stays live.
func PTask(rt *ptask.Runtime, imgs []*workload.Image, w, h int, onThumb func(Thumb)) []*workload.Image {
	multi := ptask.RunMulti(rt, len(imgs), func(i int) (*workload.Image, error) {
		return Scale(imgs[i], w, h), nil
	})
	if onThumb != nil {
		multi.NotifyEach(func(i int, im *workload.Image, err error) {
			onThumb(Thumb{Index: i, Image: im})
		})
	}
	out, _ := multi.Results()
	return out
}

// WorkerPool renders with a fixed pool of `workers` goroutines fed from a
// shared index channel — the hand-rolled threading expression.
func WorkerPool(workers int, imgs []*workload.Image, w, h int) []*workload.Image {
	if workers < 1 {
		workers = 1
	}
	out := make([]*workload.Image, len(imgs))
	idx := make(chan int)
	var wg sync.WaitGroup
	for p := 0; p < workers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = Scale(imgs[i], w, h)
			}
		}()
	}
	for i := range imgs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// BackgroundWorker renders everything on one background goroutine and
// reports each thumbnail through onThumb — the SwingWorker shape: the UI
// stays responsive, but there is no parallel speedup.
func BackgroundWorker(imgs []*workload.Image, w, h int, onThumb func(Thumb)) <-chan []*workload.Image {
	done := make(chan []*workload.Image, 1)
	go func() {
		out := make([]*workload.Image, len(imgs))
		for i, im := range imgs {
			out[i] = Scale(im, w, h)
			if onThumb != nil {
				onThumb(Thumb{Index: i, Image: out[i]})
			}
		}
		done <- out
	}()
	return done
}
