package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"parc751/internal/machine"
	"parc751/internal/metrics"
	"parc751/internal/ptask"
	"parc751/internal/sched"
)

func init() {
	register(Experiment{
		ID:    "A1",
		Title: "Scheduler ablation: work-stealing vs global queue, with live pool observability",
		Paper: "DESIGN.md §5 (A1); Giacaman & Sinnen runtime design",
		Run:   runA1,
	})
}

// runA1 reproduces the scheduling ablation at two levels. The
// deterministic simulator compares work-stealing against a single global
// queue on identical task sets (the makespan shape the ablation bench
// reports). The real runtime then executes a worker-spawned fan-out and
// asserts on the scheduler snapshot itself: tasks conserved, owner deques
// used for worker-side spawns, thieves stealing, and parked workers woken
// by targeted wakeups — scheduler internals as observable state.
func runA1(cfg Config) *Result {
	res := &Result{ID: "A1", Title: "Scheduler ablation + observability"}

	// Level 1: deterministic simulator, identical task set both modes.
	nTasks := 1024
	if cfg.Quick {
		nTasks = 256
	}
	costs := make([]uint64, nTasks)
	for i := range costs {
		costs[i] = 300 + uint64(i%7)*100
	}
	ws := machine.RunTasks(machine.Config{Name: "ws", Procs: 16, SpeedFactor: 1,
		StealLatency: 200}, costs, true)
	gq := machine.RunTasks(machine.Config{Name: "gq", Procs: 16, SpeedFactor: 1,
		GlobalQueue: true, GlobalQueueNs: 250}, costs, true)

	simTab := metrics.NewTable(fmt.Sprintf("Simulated makespan, %d tasks on 16 cores", nTasks),
		"scheduler", "virtual ns", "steals")
	simTab.AddRow("work-stealing", ws.Makespan, ws.Steals)
	simTab.AddRow("global-queue", gq.Makespan, gq.Steals)

	// Level 2: the real pool. A root task fans out children from the
	// worker side so they land on the owner's deque; idle workers must
	// steal them. Retry a few rounds so the steal/wake findings don't
	// depend on one scheduling interleaving.
	workers := cfg.Workers
	if workers < 2 {
		workers = 2
	}
	children := 2000
	spin := 2000
	if cfg.Quick {
		children, spin = 600, 800
	}
	var snap sched.Snapshot
	submitted := children + 1 // the root fan-out task plus its children
	for round := 0; round < 5; round++ {
		rt := ptask.NewRuntime(workers)
		time.Sleep(time.Millisecond) // let workers reach their parked state
		root := ptask.Run(rt, func() (int, error) {
			// Fanning out from inside a task puts every child on this
			// worker's own deque; the other workers must steal.
			m := ptask.RunMulti(rt, children, func(i int) (uint64, error) {
				acc := uint64(i)
				for j := 0; j < spin; j++ {
					acc = acc*6364136223846793005 + 1442695040888963407
				}
				// Yield so woken thieves get CPU time even on a
				// single-core host; otherwise the owner can drain its
				// whole deque before any thief is scheduled.
				runtime.Gosched()
				return acc, nil
			})
			vals, err := m.Results()
			return len(vals), err
		})
		if n, err := root.Result(); n != children || err != nil {
			res.ok("real pool: fan-out completed", false)
		}
		rt.Shutdown()
		snap = rt.SchedStats()
		if snap.TotalSteals() > 0 && totalWakes(snap) > 0 {
			break
		}
	}

	var served int64
	for _, w := range snap.Workers {
		served += w.Pops + w.Steals
	}

	res.ok("simulated: work-stealing beats the global queue", ws.Makespan < gq.Makespan)
	res.ok("real pool: every submitted task executed", snap.Executed == int64(submitted) &&
		snap.Inflight == 0 && snap.Queued == 0)
	res.ok("real pool: deque traffic conserved (pops+steals == pushes)",
		served == snap.TotalPushes())
	res.ok("real pool: thieves stole from owner deques", snap.TotalSteals() > 0)
	res.ok("real pool: parked workers woken by targeted wakeups", totalWakes(snap) > 0)
	res.metric("sim_makespan_worksteal", float64(ws.Makespan))
	res.metric("sim_makespan_globalqueue", float64(gq.Makespan))
	res.metric("pool_steals", float64(snap.TotalSteals()))
	res.metric("pool_parks", float64(snap.TotalParks()))
	res.metric("submit_latency_p50_ns", float64(snap.SubmitLatency.Quantile(0.5)))

	var b strings.Builder
	b.WriteString(header(res, "DESIGN.md §5 (A1)"))
	b.WriteString(simTab.String())
	b.WriteString("\n")
	b.WriteString(snap.String())
	res.Output = b.String()
	return res
}

func totalWakes(s sched.Snapshot) int64 {
	var n int64
	for _, w := range s.Workers {
		n += w.Wakes
	}
	return n
}
