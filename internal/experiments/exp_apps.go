package experiments

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"parc751/internal/android"
	"parc751/internal/eventloop"
	"parc751/internal/machine"
	"parc751/internal/metrics"
	"parc751/internal/pdfsearch"
	"parc751/internal/ptask"
	"parc751/internal/textsearch"
	"parc751/internal/thumbs"
	"parc751/internal/webfetch"
	"parc751/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "P1",
		Title: "Thumbnails of images in a folder (responsive GUI)",
		Paper: "§IV-C item 1",
		Run:   runP1,
	})
	register(Experiment{
		ID:    "P4",
		Title: "Search for a string in text files of a folder",
		Paper: "§IV-C item 4",
		Run:   runP4,
	})
	register(Experiment{
		ID:    "P7",
		Title: "PDF searching: granularity of parallelisation",
		Paper: "§IV-C item 7",
		Run:   runP7,
	})
	register(Experiment{
		ID:    "P10",
		Title: "Fast web access through concurrent connections",
		Paper: "§IV-C item 10",
		Run:   runP10,
	})
}

func runP1(cfg Config) *Result {
	res := &Result{ID: "P1", Title: "Thumbnails"}
	nImgs, maxDim := 96, 192
	if cfg.Quick {
		nImgs, maxDim = 24, 64
	}
	imgs := workload.GenImageSet(cfg.Seed, nImgs, maxDim/2, maxDim)
	rt := ptask.NewRuntime(cfg.Workers)
	defer rt.Shutdown()
	loop := eventloop.New()
	defer loop.Close()
	rt.SetEventLoop(loop)

	want := thumbs.Sequential(imgs, 48, 48)
	same := func(got []*workload.Image) bool {
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			for p := range want[i].Pix {
				if got[i].Pix[p] != want[i].Pix[p] {
					return false
				}
			}
		}
		return true
	}

	tab := metrics.NewTable(fmt.Sprintf("Strategies over %d images (wall-clock; UI probe while rendering)", nImgs),
		"strategy", "time", "identical output", "UI max latency")

	// Anti-pattern: render ON the event thread; probes stall behind it.
	var onEDT time.Duration
	probeBlocked := func() *eventloop.ProbeResult {
		done := make(chan struct{})
		loop.InvokeLater(func() {
			onEDT = timeIt(func() { thumbs.Sequential(imgs, 48, 48) })
			close(done)
		})
		pr := loop.Probe(200*time.Microsecond, 10)
		<-done
		return pr
	}
	prBlocked := probeBlocked()
	tab.AddRow("sequential ON event thread", onEDT.String(), true, prBlocked.Max().String())

	probeDuring := func(run func() []*workload.Image) (time.Duration, bool, time.Duration) {
		var out []*workload.Image
		var d time.Duration
		done := make(chan struct{})
		go func() {
			d = timeIt(func() { out = run() })
			close(done)
		}()
		pr := loop.Probe(200*time.Microsecond, 10)
		<-done
		return d, same(out), pr.Max()
	}

	dPT, okPT, latPT := probeDuring(func() []*workload.Image {
		return thumbs.PTask(rt, imgs, 48, 48, nil)
	})
	tab.AddRow("parallel-task (TASK(*))", dPT.String(), okPT, latPT.String())

	dWP, okWP, latWP := probeDuring(func() []*workload.Image {
		return thumbs.WorkerPool(cfg.Workers, imgs, 48, 48)
	})
	tab.AddRow("worker pool (threads)", dWP.String(), okWP, latWP.String())

	dBG, okBG, latBG := probeDuring(func() []*workload.Image {
		return <-thumbs.BackgroundWorker(imgs, 48, 48, nil)
	})
	tab.AddRow("background worker (SwingWorker)", dBG.String(), okBG, latBG.String())

	// Interim delivery check.
	var interim atomic.Int32
	thumbs.PTask(rt, imgs, 24, 24, func(t thumbs.Thumb) { interim.Add(1) })
	waitFor := time.Now().Add(5 * time.Second)
	for interim.Load() < int32(nImgs) && time.Now().Before(waitFor) {
		time.Sleep(time.Millisecond)
	}

	// The second group's study (§IV-C item 1): the same rendering through
	// Android's AsyncTask and handlers/loopers, including the
	// SERIAL_EXECUTOR pitfall that silently serialises AsyncTasks.
	androidTab, androidOK := androidThumbComparison(imgs, same)

	// Simulated speedup: per-image cost proportional to pixels, run on
	// the Android preset (the paper's second group ported this project
	// to Android) and PARC machines.
	costs := make([]uint64, nImgs)
	for i, im := range imgs {
		costs[i] = uint64(im.W * im.H)
	}
	simTab := metrics.NewTable("Simulated rendering speedup (per-image tasks, work stealing)",
		"machine", "cores", "speedup")
	var speeds []float64
	for _, mc := range []machine.Config{machine.AndroidQuad(), machine.PARC8(), machine.PARC16(), machine.PARC64()} {
		seq := machine.RunTasks(mc.WithProcs(1), costs, false).Makespan
		par := machine.RunTasks(mc, costs, false).Makespan
		s := metrics.Speedup(float64(seq), float64(par))
		speeds = append(speeds, s)
		simTab.AddRow(mc.Name, mc.Procs, s)
	}

	var b strings.Builder
	b.WriteString(header(res, "§IV-C item 1"))
	b.WriteString(tab.String())
	b.WriteString("\n")
	b.WriteString(androidTab.String())
	b.WriteString("\n")
	b.WriteString(simTab.String())
	res.Output = b.String()

	res.ok("all strategies render identically", okPT && okWP && okBG)
	res.ok("android strategies render identically with main-looper delivery", androidOK)
	res.ok("on-event-thread rendering stalls the UI", prBlocked.Max() > 4*latPT || prBlocked.Max() > 2*time.Millisecond)
	res.ok("off-thread strategies keep UI responsive", latPT < time.Second && latWP < time.Second && latBG < time.Second)
	res.ok("interim thumbnails delivered", interim.Load() == int32(nImgs))
	res.ok("simulated speedup grows with cores", nonDecreasing(speeds))
	res.metric("android_speedup", speeds[0])
	res.metric("parc64_speedup", speeds[3])
	return res
}

// androidThumbComparison renders the same thumbnail workload through the
// Android primitives (one AsyncTask per image; AsyncTasks forced through
// SERIAL_EXECUTOR; plain goroutines posting results via a Handler) and
// checks outputs match and completion callbacks land on the main looper.
func androidThumbComparison(imgs []*workload.Image, same func([]*workload.Image) bool) (*metrics.Table, bool) {
	main := android.NewLooper()
	defer main.Quit()
	h := android.NewHandler(main)
	tab := metrics.NewTable("Android strategies (the second group's study)",
		"strategy", "time", "identical output", "peak concurrency", "callbacks on main looper")
	allOK := true

	type renderOut struct {
		out    []*workload.Image
		peak   int32
		onMain bool
		d      time.Duration
	}

	// Strategy 1: one AsyncTask per image (THREAD_POOL behaviour).
	runParallelTasks := func() renderOut {
		out := make([]*workload.Image, len(imgs))
		var concurrent, peak atomic.Int32
		onMain := true
		var onMainMu sync.Mutex
		start := time.Now()
		tasks := make([]*android.AsyncTask[int, int, *workload.Image], len(imgs))
		for i := range imgs {
			i := i
			task := android.NewAsyncTask[int, int, *workload.Image](main)
			task.DoInBackground = func(_ *android.AsyncTask[int, int, *workload.Image], idx int) *workload.Image {
				c := concurrent.Add(1)
				for {
					p := peak.Load()
					if c <= p || peak.CompareAndSwap(p, c) {
						break
					}
				}
				th := thumbs.Scale(imgs[idx], 48, 48)
				concurrent.Add(-1)
				return th
			}
			task.OnPostExecute = func(th *workload.Image) {
				onMainMu.Lock()
				if !main.IsCurrent() {
					onMain = false
				}
				out[i] = th
				onMainMu.Unlock()
			}
			tasks[i] = task.Execute(i)
		}
		for _, task := range tasks {
			task.Get()
		}
		h.PostAndWait(func() {}) // drain trailing OnPostExecute callbacks
		return renderOut{out, peak.Load(), onMain, time.Since(start)}
	}

	// Strategy 2: the SERIAL_EXECUTOR pitfall — same tasks, one at a time.
	runSerial := func() renderOut {
		exec := android.NewSerialExecutor()
		out := make([]*workload.Image, len(imgs))
		var concurrent, peak atomic.Int32
		start := time.Now()
		for i := range imgs {
			i := i
			exec.Submit(func() {
				c := concurrent.Add(1)
				for {
					p := peak.Load()
					if c <= p || peak.CompareAndSwap(p, c) {
						break
					}
				}
				th := thumbs.Scale(imgs[i], 48, 48)
				h.Post(func() { out[i] = th })
				concurrent.Add(-1)
			})
		}
		exec.Wait()
		h.PostAndWait(func() {})
		return renderOut{out, peak.Load(), true, time.Since(start)}
	}

	// Strategy 3: worker goroutines + Handler (handlers/loopers style).
	runHandlerWorkers := func() renderOut {
		out := make([]*workload.Image, len(imgs))
		start := time.Now()
		var wg sync.WaitGroup
		idx := make(chan int)
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					th := thumbs.Scale(imgs[i], 48, 48)
					i := i
					h.Post(func() { out[i] = th })
				}
			}()
		}
		for i := range imgs {
			idx <- i
		}
		close(idx)
		wg.Wait()
		h.PostAndWait(func() {})
		return renderOut{out, -1, true, time.Since(start)}
	}

	for _, s := range []struct {
		name string
		run  func() renderOut
	}{
		{"asynctask (thread pool)", runParallelTasks},
		{"asynctask (SERIAL_EXECUTOR)", runSerial},
		{"handler + worker threads", runHandlerWorkers},
	} {
		r := s.run()
		identical := same(r.out)
		if !identical || !r.onMain {
			allOK = false
		}
		peakStr := fmt.Sprintf("%d", r.peak)
		if r.peak < 0 {
			peakStr = "-"
		}
		tab.AddRow(s.name, r.d.String(), identical, peakStr, r.onMain)
	}
	// The serial-executor pitfall must actually serialise.
	serial := runSerial()
	if serial.peak != 1 {
		allOK = false
	}
	return tab, allOK
}

func runP4(cfg Config) *Result {
	res := &Result{ID: "P4", Title: "Folder text search"}
	spec := workload.DefaultFolderSpec(cfg.Seed)
	spec.NumFiles = 800
	if cfg.Quick {
		spec.NumFiles = 120
	}
	folder, planted := workload.GenFolder(spec)
	rt := ptask.NewRuntime(cfg.Workers)
	defer rt.Shutdown()
	loop := eventloop.New()
	defer loop.Close()
	rt.SetEventLoop(loop)
	searcher := textsearch.NewSearcher(rt)

	var seq, par []textsearch.Match
	dSeq := timeIt(func() { seq = textsearch.Sequential(folder, textsearch.Literal(spec.NeedleWord)) })
	var streamed atomic.Int32
	var uiMax time.Duration
	dPar := timeIt(func() {
		done := make(chan struct{})
		go func() {
			par = searcher.Search(folder, textsearch.Literal(spec.NeedleWord), textsearch.Options{
				OnMatch: func(m textsearch.Match) { streamed.Add(1) },
			})
			close(done)
		}()
		pr := loop.Probe(200*time.Microsecond, 10)
		<-done
		uiMax = pr.Max()
	})
	waitFor := time.Now().Add(5 * time.Second)
	for streamed.Load() < int32(planted) && time.Now().Before(waitFor) {
		time.Sleep(time.Millisecond)
	}

	re, _ := textsearch.CompileRegexp("concurrency[A-Z]+")
	reMatches := searcher.Search(folder, re, textsearch.Options{})

	identical := len(seq) == len(par)
	if identical {
		for i := range seq {
			if seq[i] != par[i] {
				identical = false
				break
			}
		}
	}

	tab := metrics.NewTable(fmt.Sprintf("Search %q over %d files / %d lines",
		spec.NeedleWord, spec.NumFiles, folder.TotalLines()),
		"mode", "matches", "time", "notes")
	tab.AddRow("sequential", len(seq), dSeq.String(), "-")
	tab.AddRow("parallel-task (per file)", len(par), dPar.String(),
		fmt.Sprintf("streamed=%d uiMax=%v", streamed.Load(), uiMax))
	tab.AddRow("regexp parallel", len(reMatches), "-", "pattern concurrency[A-Z]+")

	res.Output = header(res, "§IV-C item 4") + tab.String()
	res.ok("finds every planted needle", len(seq) == planted && len(par) == planted)
	res.ok("parallel result order deterministic", identical)
	res.ok("all matches streamed while searching", streamed.Load() == int32(planted))
	res.ok("regexp matches planted needles", len(reMatches) == planted)
	res.ok("UI responsive during search", uiMax < time.Second)
	res.metric("matches", float64(len(par)))
	return res
}

func runP7(cfg Config) *Result {
	res := &Result{ID: "P7", Title: "PDF search granularity"}
	spec := workload.DefaultDocSpec(cfg.Seed)
	spec.NumDocs = 80
	if cfg.Quick {
		spec.NumDocs = 20
	}
	// Add one giant document so per-file granularity has a straggler.
	docs, _ := workload.GenDocs(spec)
	giant, _ := workload.GenDocs(workload.DocSpec{Seed: cfg.Seed + 1, NumDocs: 1,
		MinPages: 1500, MaxPages: 1500, WordsPage: spec.WordsPage,
		NeedleRate: spec.NeedleRate, Needle: spec.Needle})
	docs = append(docs, giant...)

	rt := ptask.NewRuntime(cfg.Workers)
	defer rt.Shutdown()
	want := pdfsearch.Sequential(docs, spec.Needle)

	tab := metrics.NewTable("Granularity study (skewed corpus: one 1500-page document)",
		"granularity", "tasks", "hits", "correct", "sim makespan p8 (Mcycles)")
	correct := true
	simMakespans := map[string]float64{}
	for _, g := range []pdfsearch.Granularity{pdfsearch.PerFile, pdfsearch.PerPage, pdfsearch.Hybrid} {
		got := pdfsearch.Search(rt, docs, spec.Needle, pdfsearch.Options{Granularity: g, PagesPerTask: 16})
		ok := len(got) == len(want)
		if !ok {
			correct = false
		}
		units := pdfsearch.UnitCount(docs, g, 16)
		// Simulated makespan on an 8-core machine: per-task cost = pages
		// in the unit x per-page scan cost, plus the machine's per-task
		// spawn overhead (which punishes per-page granularity).
		costs := unitCosts(docs, g, 16, 2000)
		st := machine.RunTasks(machine.Config{Name: "p8", Procs: 8, SpeedFactor: 1,
			SpawnOverhead: 3000, StealLatency: 1500}, costs, false)
		simMakespans[g.String()] = float64(st.Makespan)
		tab.AddRow(g.String(), units, len(got), ok, float64(st.Makespan)/1e6)
	}

	res.Output = header(res, "§IV-C item 7") + tab.String() +
		"\nshape: per-file suffers the giant-document straggler; per-page pays task\n" +
		"overhead; hybrid (16 pages/task) balances both — the crossover the project\n" +
		"asked students to investigate.\n"
	res.ok("all granularities correct", correct)
	res.ok("hybrid beats per-file on skewed corpus", simMakespans["hybrid"] < simMakespans["per-file"])
	res.ok("hybrid beats per-page under task overhead", simMakespans["hybrid"] < simMakespans["per-page"])
	res.metric("perfile_over_hybrid", simMakespans["per-file"]/simMakespans["hybrid"])
	return res
}

// unitCosts models one task per search unit with cost = pages x perPage ns.
func unitCosts(docs []*workload.Document, g pdfsearch.Granularity, run int, perPage uint64) []uint64 {
	var costs []uint64
	switch g {
	case pdfsearch.PerFile:
		for _, d := range docs {
			costs = append(costs, uint64(len(d.Pages))*perPage)
		}
	case pdfsearch.PerPage:
		for _, d := range docs {
			for range d.Pages {
				costs = append(costs, perPage)
			}
		}
	case pdfsearch.Hybrid:
		for _, d := range docs {
			for lo := 0; lo < len(d.Pages); lo += run {
				hi := lo + run
				if hi > len(d.Pages) {
					hi = len(d.Pages)
				}
				costs = append(costs, uint64(hi-lo)*perPage)
			}
		}
	}
	return costs
}

func runP10(cfg Config) *Result {
	res := &Result{ID: "P10", Title: "Concurrent web access"}
	nPages := 400
	if cfg.Quick {
		nPages = 100
	}
	pages := workload.GenPages(cfg.Seed, nPages, 2000, 80000)
	net := webfetch.DefaultSimConfig()
	conns := []int{1, 2, 4, 8, 16, 32, 64, 128, 256}
	results := webfetch.Sweep(pages, conns, net)

	curve := &metrics.Series{Name: "makespan (s)"}
	tab := metrics.NewTable("Connection sweep over the simulated network (80 ms RTT, 2 MB/s)",
		"connections", "makespan (s)", "throughput (KB/s)")
	for i, k := range conns {
		tab.AddRow(k, results[i].Makespan, results[i].Throughput/1000)
		curve.Add(float64(k), results[i].Makespan)
	}
	chart := &metrics.Chart{Title: "The project's question: how many connections?",
		XLabel: "connections", YLabel: "makespan"}
	chart.AddSeries(curve)

	best := webfetch.BestConnections(pages, conns, net)
	lb := webfetch.LowerBound(pages, net)

	var b strings.Builder
	b.WriteString(header(res, "§IV-C item 10"))
	b.WriteString(tab.String())
	b.WriteString("\n")
	b.WriteString(chart.String())
	fmt.Fprintf(&b, "\nbest connection count = %d; bandwidth lower bound = %.2fs\n", best, lb)
	res.Output = b.String()

	res.ok("2 conns beat 1", results[1].Makespan < results[0].Makespan)
	res.ok("knee exists (diminishing tail gains)",
		results[0].Makespan-results[2].Makespan > 10*(results[len(results)-2].Makespan-results[len(results)-1].Makespan))
	res.ok("never beats bandwidth bound", results[len(results)-1].Makespan >= lb-1e-9)
	res.ok("optimum in the interior", best > 1)
	res.metric("best_connections", float64(best))
	res.metric("speedup_at_best", results[0].Makespan/simMin(results))
	return res
}

func simMin(rs []webfetch.SimResult) float64 {
	m := rs[0].Makespan
	for _, r := range rs {
		if r.Makespan < m {
			m = r.Makespan
		}
	}
	return m
}
