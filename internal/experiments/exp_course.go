package experiments

import (
	"fmt"
	"strings"

	"parc751/internal/course"
	"parc751/internal/metrics"
)

func init() {
	register(Experiment{
		ID:    "F1",
		Title: "Research-teaching nexus classification (Figure 1)",
		Paper: "Figure 1, §I, §III-E",
		Run:   runF1,
	})
	register(Experiment{
		ID:    "F2",
		Title: "SoftEng 751 course structure (Figure 2)",
		Paper: "Figure 2, §III-A",
		Run:   runF2,
	})
	register(Experiment{
		ID:    "TASSESS",
		Title: "Assessment scheme (§III-C)",
		Paper: "§III-C",
		Run:   runTAssess,
	})
	register(Experiment{
		ID:    "EALLOC",
		Title: "First-in-first-served doodle-poll topic allocation",
		Paper: "§III-D",
		Run:   runEAlloc,
	})
	register(Experiment{
		ID:    "ELIKERT",
		Title: "Summative student evaluation (Likert agreement)",
		Paper: "§V-A",
		Run:   runELikert,
	})
}

func runF1(cfg Config) *Result {
	res := &Result{ID: "F1", Title: "Research-teaching nexus classification"}
	acts := course.SoftEng751Activities()
	tab := metrics.NewTable("Figure 1 reproduction: SoftEng 751 activities on the nexus",
		"activity", "quadrant", "in course")
	for _, row := range course.NexusTable(acts) {
		present := "yes"
		if !row.Present {
			present = "no (deliberate, §III-E)"
		}
		tab.AddRow(row.Activity, row.Quadrant.String(), present)
	}
	cov := course.NexusCoverage(acts)
	var b strings.Builder
	b.WriteString(header(res, "Figure 1"))
	b.WriteString(tab.String())
	fmt.Fprintf(&b, "\nquadrant coverage: led=%d oriented=%d tutored=%d based=%d\n",
		cov[course.ResearchLed], cov[course.ResearchOriented],
		cov[course.ResearchTutored], cov[course.ResearchBased])
	res.Output = b.String()
	res.ok("three quadrants covered", cov[course.ResearchLed] > 0 &&
		cov[course.ResearchTutored] > 0 && cov[course.ResearchBased] > 0)
	res.ok("research-oriented deliberately absent", cov[course.ResearchOriented] == 0)
	return res
}

func runF2(cfg Config) *Result {
	res := &Result{ID: "F2", Title: "Course structure"}
	weeks := course.Calendar()
	tab := metrics.NewTable("Figure 2 reproduction: semester calendar", "week", "code", "detail")
	for _, w := range weeks {
		wk := "break"
		if w.Number > 0 {
			wk = fmt.Sprintf("%d", w.Number)
		}
		tab.AddRow(wk, w.Kind.Code(), w.Detail)
	}
	res.Output = header(res, "Figure 2") + tab.String()
	res.ok("12 teaching weeks", course.TeachingWeeks(weeks) == 12)
	res.ok("8 development weeks (§III-D)", course.DevelopmentWeeks(weeks) == 8)
	res.metric("teaching_weeks", float64(course.TeachingWeeks(weeks)))
	return res
}

func runTAssess(cfg Config) *Result {
	res := &Result{ID: "TASSESS", Title: "Assessment scheme"}
	scheme := course.AssessmentScheme()
	tab := metrics.NewTable("§III-C assessment weights", "component", "weight %", "individual")
	sum, indiv := 0, 0
	for _, c := range scheme {
		tab.AddRow(c.Name, c.Weight, c.Individual)
		sum += c.Weight
		if c.Individual {
			indiv += c.Weight
		}
	}
	res.Output = header(res, "§III-C") + tab.String() +
		fmt.Sprintf("\ntotal = %d%%, individually assessed = %d%%\n", sum, indiv)
	res.ok("weights sum to 100", course.ValidateScheme(scheme) == nil)
	res.ok("individual lecture assessment is 25% (Test 1)", scheme[0].Weight == 25)
	res.metric("individual_weight", float64(indiv))
	return res
}

func runEAlloc(cfg Config) *Result {
	res := &Result{ID: "EALLOC", Title: "Doodle-poll topic allocation"}
	poll := course.DefaultPoll()
	students := 60
	trials := 20
	if cfg.Quick {
		trials = 5
	}
	tab := metrics.NewTable("Allocation over simulated cohorts (60 students, 20 groups, 10 topics x 2)",
		"cohort seed", "placed", "unplaced", "topics full", "mean pref rank")
	allPlaced := true
	capOK := true
	var satSum float64
	for trial := 0; trial < trials; trial++ {
		seed := cfg.Seed + uint64(trial)
		groups := course.FormGroups(seed, students, 3, poll)
		a := course.Allocate(poll, groups)
		full := 0
		for _, gs := range a.GroupsOn {
			if len(gs) > poll.GroupsPerTopic {
				capOK = false
			}
			if len(gs) == poll.GroupsPerTopic {
				full++
			}
		}
		if len(a.Unplaced) > 0 {
			allPlaced = false
		}
		sat := course.Satisfaction(poll, groups, a)
		satSum += sat
		tab.AddRow(seed, len(a.TopicOf), len(a.Unplaced), full, sat)
	}
	meanSat := satSum / float64(trials)
	res.Output = header(res, "§III-D") + tab.String() +
		fmt.Sprintf("\nmean preference rank received = %.2f (1 = everyone got first choice)\n", meanSat)
	res.ok("every group placed", allPlaced)
	res.ok("capacity never exceeded", capOK)
	res.ok("popular topics contested but satisfiable (mean rank < 4)", meanSat < 4)
	res.metric("mean_pref_rank", meanSat)
	return res
}

func runELikert(cfg Config) *Result {
	res := &Result{ID: "ELIKERT", Title: "Likert evaluation"}
	targets := course.PaperTargets()
	n := 60
	exact := course.ExactSurvey(n, targets)
	sim := course.SimulatedSurvey(cfg.Seed, n, targets)
	tab := metrics.NewTable("§V-A reproduction: agreement (strongly agree + agree)",
		"question", "paper", "exact cohort", "simulated cohort")
	withinTol := true
	for i, tgt := range targets {
		e := exact[i].Agreement()
		s := sim[i].Agreement()
		if e < tgt.Agreement-0.01 || e > tgt.Agreement+0.01 {
			withinTol = false
		}
		tab.AddRow(truncate(tgt.Text, 48),
			fmt.Sprintf("%.0f%%", tgt.Agreement*100),
			fmt.Sprintf("%.1f%%", e*100),
			fmt.Sprintf("%.1f%%", s*100))
	}
	var b strings.Builder
	b.WriteString(header(res, "§V-A"))
	b.WriteString(tab.String())
	b.WriteString("\nopen comments quoted by the paper:\n")
	for _, c := range course.OpenComments() {
		fmt.Fprintf(&b, "  - %q\n", truncate(c, 90))
	}
	res.Output = b.String()
	res.ok("exact cohort reproduces 95/95/92", withinTol)
	simClose := true
	for i, tgt := range targets {
		d := sim[i].Agreement() - tgt.Agreement
		if d < -0.10 || d > 0.10 {
			simClose = false
		}
	}
	res.ok("simulated cohort within 10 points", simClose)
	res.metric("q1_agreement", exact[0].Agreement())
	res.metric("q3_agreement", exact[2].Agreement())
	return res
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}
