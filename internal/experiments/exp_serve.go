package experiments

import (
	"fmt"
	"net/http/httptest"
	"time"

	"parc751/internal/metrics"
	"parc751/internal/parcserve"
	"parc751/internal/parcserve/loadtest"
)

func init() {
	register(Experiment{
		ID:    "A9",
		Title: "Serving ablation: batched job front end under open-loop load",
		Paper: "DESIGN.md §11 (A9); course workloads as a servable system",
		Run:   runA9,
	})
}

// runA9 measures the serving layer at three offered-load levels against
// a deliberately tiny server (2 execution slots), so the admission
// disciplines are visible at experiment scale: underload must succeed
// completely, overload must be rejected with 429 rather than queued
// unboundedly, and every level must answer every request. Spin jobs
// give a known service time, which makes the capacity arithmetic exact:
// 2 slots × (1000/20ms) = 100 jobs/s.
func runA9(cfg Config) *Result {
	res := &Result{ID: "A9", Title: "Serving under open-loop load"}

	requests := 200
	if cfg.Quick {
		requests = 60
	}
	const (
		slots     = 2
		spinMs    = 20
		capacity  = slots * 1000 / spinMs // jobs/s the slots can drain
		underRate = capacity / 4
		atRate    = capacity
		overRate  = capacity * 4
	)
	levels := []struct {
		name string
		rate float64
	}{
		{"under (0.25x)", underRate},
		{"at capacity", atRate},
		{"over (4x)", overRate},
	}

	tab := metrics.NewTable(
		fmt.Sprintf("Open-loop spin load, %d requests/level, capacity %d jobs/s", requests, capacity),
		"offered load", "200", "429", "other", "p50", "p99", "dropped")

	allAnswered := true
	drainClean := true
	var underOK, overRejected bool
	for i, lv := range levels {
		srv := parcserve.NewServer(parcserve.Config{
			Workers:       cfg.Workers,
			MaxConcurrent: slots,
			MaxQueue:      2 * slots,
		})
		ts := httptest.NewServer(srv)
		r := loadtest.Run(loadtest.Config{
			BaseURL:  ts.URL,
			Seed:     cfg.Seed + uint64(i),
			Requests: requests,
			Rate:     lv.rate,
			Mix: []loadtest.JobSpec{
				{Kind: "spin", Body: map[string]any{"spin_ms": spinMs, "deadline_ms": 30_000}, Weight: 1},
			},
		})
		if err := srv.Drain(30 * time.Second); err != nil {
			drainClean = false
		}
		if snap := srv.Runtime().SchedStats(); snap.Inflight != 0 || snap.Abandoned != 0 {
			drainClean = false
		}
		ts.Close()

		ok := r.Codes[200]
		rej := r.Codes[429]
		other := r.Sent - ok - rej - r.Dropped
		tab.AddRow(fmt.Sprintf("%s = %.0f/s", lv.name, lv.rate), ok, rej, other,
			r.Latency.Quantile(0.50).Round(time.Millisecond),
			r.Latency.Quantile(0.99).Round(time.Millisecond), r.Dropped)
		if r.Dropped != 0 {
			allAnswered = false
		}
		switch i {
		case 0:
			underOK = ok == r.Sent
			res.metric("under_ok_rate", r.OKRate())
		case 2:
			overRejected = rej > 0
			res.metric("over_429_share", float64(rej)/float64(r.Sent))
			res.metric("over_p99_ms", float64(r.Latency.Quantile(0.99).Milliseconds()))
		}
	}

	res.ok("every request answered at every load level (zero drops)", allAnswered)
	res.ok("underload: every request succeeds", underOK)
	res.ok("overload: saturation is rejected with 429, not queued unboundedly", overRejected)
	res.ok("graceful drain after load leaves the pool empty", drainClean)

	res.Output = "A9 — the serving layer under open-loop load (DESIGN.md §11)\n\n" +
		tab.String() + "\n" +
		"Open-loop arrivals do not slow down when the server does, so the\n" +
		"4x level forces the admission choice: bounded queueing plus 429,\n" +
		"never an unbounded backlog. The 200-column at capacity shows the\n" +
		"slots saturating while accepted-work latency stays near the 20ms\n" +
		"service time.\n"
	return res
}
