package experiments

import (
	"fmt"

	"parc751/internal/metrics"
	"parc751/internal/parctrace"
	"parc751/internal/parctrace/replay"
)

func init() {
	register(Experiment{
		ID:    "A12",
		Title: "Schedule replay: recorded chaos runs reproduce bit-identically",
		Paper: "DESIGN.md §15 (A12); parctrace recorder + replay debugger",
		Run:   runA12,
	})
}

// runA12 is the replay-debugger ablation: for each of the replayable
// workloads under a seeded chaos plan, record a run, replay the dump's
// coordinate, and verify the contract —
//
//   - the canonical projections (deterministic event counts, workload,
//     plan, fault trace) are bit-identical between recording and replay;
//   - the replay surfaced exactly the recorded fault ordinals;
//   - the recorder's accounting conserves: for the whole recording,
//     sum(counts) == recorded + lost + sampled-out.
//
// A diverging replay means the schedule coordinate (workload spec +
// fault plan) no longer pins the execution — the reproduce-a-failure
// debugging loop of DESIGN.md §15 would be broken.
func runA12(cfg Config) *Result {
	res := &Result{ID: "A12", Title: "Schedule replay: record → replay → verify"}
	tab := metrics.NewTable("Recorded chaos runs replayed (canonical projections compared)",
		"workload", "seed", "events", "faults", "identical", "conserved")

	sizes := map[string]int{
		replay.KindQuicksort: 20000,
		replay.KindThumbs:    48,
		replay.KindWebfetch:  16,
	}
	if cfg.Quick {
		sizes = map[string]int{
			replay.KindQuicksort: 1500,
			replay.KindThumbs:    10,
			replay.KindWebfetch:  6,
		}
	}
	seeds := []uint64{cfg.Seed, cfg.Seed + 101, cfg.Seed + 202}
	var runs, identical int
	for _, kind := range replay.Kinds() {
		for _, seed := range seeds {
			label := fmt.Sprintf("%s seed=%d", kind, seed)
			rec, err := replay.Record(parctrace.WorkloadSpec{
				Kind: kind, Seed: seed, N: sizes[kind], Workers: cfg.Workers, Chaos: true,
			}, 0)
			if err != nil {
				res.ok(label+": recorded", false)
				tab.AddRow(kind, seed, "-", "-", false, false)
				continue
			}
			rep, err := replay.Replay(rec, 0)
			verr := err
			if verr == nil {
				verr = replay.Verify(rec, rep)
			}
			var total uint64
			for _, c := range rec.Counts {
				total += c
			}
			conserved := total == rec.Recorded+rec.Lost+rec.SampledOut
			runs++
			if verr == nil {
				identical++
			}
			res.ok(label+": replay bit-identical", verr == nil)
			res.ok(label+": faults fired", len(rec.Faults) > 0)
			res.ok(label+": accounting conserved", conserved)
			tab.AddRow(kind, seed, rec.Recorded, len(rec.Faults), verr == nil, conserved)
		}
	}
	res.metric("replays", float64(runs))
	res.metric("bit_identical", float64(identical))

	res.Output = "A12 — the schedule-replay debugger (DESIGN.md §15)\n\n" +
		tab.String() +
		"\nEach row records one seeded chaos run with the parctrace recorder\n" +
		"attached, re-executes the dump's replay coordinate (workload spec +\n" +
		"fault plan), and compares canonical projections byte for byte. The\n" +
		"conservation column checks sum(counts) == recorded + lost + sampled-out\n" +
		"— exact counters survive ring shedding.\n"
	return res
}
