package experiments

import (
	"fmt"
	"net/http/httptest"
	"runtime"
	"time"

	"parc751/internal/faultinject"
	"parc751/internal/metrics"
	"parc751/internal/parccluster"
	"parc751/internal/parcserve"
	"parc751/internal/parcserve/loadtest"
)

func init() {
	register(Experiment{
		ID:    "A11",
		Title: "Cluster ablation: sharded routing, node-kill survival, chaos replay",
		Paper: "DESIGN.md §14 (A11); the serving layer scaled horizontally",
		Run:   runA11,
	})
}

// runA11 is the cluster-layer ablation, three claims in one exhibit:
//
//  1. Scaling — the same offered load against 1-, 2- and 4-node fleets.
//     Spin jobs hold an admission slot for a known time, so per-node
//     capacity is slot arithmetic, not CPU speed: throughput must grow
//     with node count even on a single-core host (the slots sleep).
//  2. Survival — a node is killed mid-run under load; the no-lost-jobs
//     ledger must balance exactly (accepted == completed + rejected,
//     zero drops) and the supervisor must bring the node back.
//  3. Replay — a seeded fault plan partitions the router→node path on
//     exact transport-event ordinals; running the identical schedule
//     twice must produce bit-identical fault traces (the A8 determinism
//     model applied to routing).
func runA11(cfg Config) *Result {
	res := &Result{ID: "A11", Title: "Cluster scaling, node-kill survival, chaos replay"}

	const (
		slots  = 2
		spinMs = 20
		// One node drains slots×(1000/spinMs) = 100 jobs/s; offered load
		// is sized to saturate small fleets but fit inside four nodes.
		perNodeCap = slots * 1000 / spinMs
	)
	requests := 240
	if cfg.Quick {
		requests = 90
	}
	offered := float64(perNodeCap) * 3.2 // 0.8 × the 4-node capacity

	nodeCfg := parcserve.Config{
		Workers:       cfg.Workers,
		MaxConcurrent: slots,
		MaxQueue:      slots, // small queue keeps saturation visible as 429s
		DrainGrace:    10 * time.Millisecond,
	}

	// --- 1. Scaling -------------------------------------------------
	tab := metrics.NewTable(
		fmt.Sprintf("Same offered load (%.0f/s, %d spin requests) vs fleet size", offered, requests),
		"nodes", "200", "429", "other", "jobs/s", "p50", "dropped")

	allAnswered := true
	ledgersBalance := true
	throughput := map[int]float64{}
	for i, n := range []int{1, 2, 4} {
		fleet := parccluster.NewFleet(parccluster.FleetConfig{
			Nodes:   n,
			Starter: &parccluster.LocalStarter{Config: nodeCfg},
			Router: parccluster.RouterConfig{
				RetryMax:      3,
				LoadPollEvery: 25 * time.Millisecond,
			},
		})
		if err := fleet.Start(); err != nil {
			res.ok("fleet starts at every size", false)
			res.Output = fmt.Sprintf("A11: %d-node fleet failed to start: %v\n", n, err)
			_ = fleet.Stop()
			return res
		}
		front := httptest.NewServer(fleet.Router())
		r := loadtest.Run(loadtest.Config{
			BaseURL:  front.URL,
			Seed:     cfg.Seed + uint64(i),
			Requests: requests,
			Rate:     offered,
			Mix: []loadtest.JobSpec{
				{Kind: "spin", Body: map[string]any{"spin_ms": spinMs, "deadline_ms": 30_000}, Weight: 1},
			},
		})
		led := fleet.Router().Ledger()
		front.Close()
		_ = fleet.Stop()

		if r.Dropped != 0 {
			allAnswered = false
		}
		if led.Lost != 0 || led.Accepted != led.Completed+led.Rejected {
			ledgersBalance = false
		}
		jobsPerSec := float64(r.Codes[200]) / r.Elapsed.Seconds()
		throughput[n] = jobsPerSec
		tab.AddRow(fmt.Sprintf("%d", n), r.Codes[200], r.Codes[429],
			r.Sent-r.Codes[200]-r.Codes[429]-r.Dropped,
			fmt.Sprintf("%.0f", jobsPerSec),
			r.Latency.Quantile(0.50).Round(time.Millisecond), r.Dropped)
		res.metric(fmt.Sprintf("throughput_%dnode", n), jobsPerSec)
	}
	scaling := 0.0
	if throughput[1] > 0 {
		scaling = throughput[4] / throughput[1]
	}
	res.metric("scaling_4v1", scaling)
	// Spin capacity is admission arithmetic, not CPU, so the 1.5× floor
	// holds even on one core — but a one-core host can still starve the
	// HTTP plumbing itself, so there the ratio is reported, not enforced.
	scalingOK := scaling >= 1.5 || runtime.NumCPU() < 2
	res.ok("4-node throughput ≥ 1.5x 1-node (reported only on 1-CPU hosts)", scalingOK)
	res.ok("every request answered at every fleet size (zero drops)", allAnswered)
	res.ok("routing ledger balances at every fleet size", ledgersBalance)

	// --- 2. Survival: node kill mid-run -----------------------------
	fleet := parccluster.NewFleet(parccluster.FleetConfig{
		Nodes:        2,
		Starter:      &parccluster.LocalStarter{Config: nodeCfg},
		RestartDelay: 50 * time.Millisecond,
		Router: parccluster.RouterConfig{
			RetryMax:      3,
			LoadPollEvery: 25 * time.Millisecond,
			VerifyRetries: true,
		},
	})
	killOK := false
	var killNote string
	if err := fleet.Start(); err == nil {
		front := httptest.NewServer(fleet.Router())
		done := make(chan *loadtest.Result, 1)
		go func() {
			done <- loadtest.Run(loadtest.Config{
				BaseURL:  front.URL,
				Seed:     cfg.Seed + 99,
				Requests: requests,
				Rate:     offered / 2,
				Mix: []loadtest.JobSpec{
					{Kind: "spin", Body: map[string]any{"spin_ms": spinMs, "deadline_ms": 30_000}, Weight: 2},
					{Kind: "sort", Body: map[string]any{"seed": 7, "n": 400, "deadline_ms": 30_000}, Weight: 1},
				},
			})
		}()
		time.Sleep(150 * time.Millisecond)
		_ = fleet.KillNode("node0")
		r := <-done
		led := fleet.Router().Ledger()

		// Wait for the supervisor to resurrect the victim.
		restarted := false
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			for _, n := range fleet.Router().Nodes() {
				if n.ID == "node0" && n.Alive && n.Ready {
					restarted = true
				}
			}
			if restarted {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		front.Close()
		_ = fleet.Stop()

		killOK = r.Dropped == 0 && led.Lost == 0 &&
			led.Accepted == led.Completed+led.Rejected &&
			led.Mismatch == 0 && restarted
		killNote = fmt.Sprintf(
			"node0 killed mid-run: accepted=%d completed=%d rejected=%d lost=%d\n"+
				"failovers=%d verified=%d mismatches=%d dropped=%d restarted=%v",
			led.Accepted, led.Completed, led.Rejected, led.Lost,
			led.Failovers, led.Verified, led.Mismatch, r.Dropped, restarted)
		res.metric("kill_failovers", float64(led.Failovers))
		res.metric("kill_lost", float64(led.Lost))
	} else {
		killNote = "survival fleet failed to start: " + err.Error()
		_ = fleet.Stop()
	}
	res.ok("node kill mid-run loses zero jobs and the node restarts", killOK)

	// --- 3. Replay: bit-identical chaos schedule ---------------------
	chaosReqs := 40
	if cfg.Quick {
		chaosReqs = 20
	}
	trace1, ok1 := runA11Chaos(cfg, nodeCfg, chaosReqs)
	trace2, ok2 := runA11Chaos(cfg, nodeCfg, chaosReqs)
	res.ok("chaos runs answer every request and balance the ledger", ok1 && ok2)
	res.ok("same seed replays the identical fault schedule", trace1 == trace2 && trace1 != "")

	res.Output = "A11 — the cluster layer: scaling, survival, replay (DESIGN.md §14)\n\n" +
		tab.String() + "\n" +
		fmt.Sprintf("4-node vs 1-node throughput: %.2fx (floor 1.5x, %d CPUs)\n\n", scaling, runtime.NumCPU()) +
		killNote + "\n\n" +
		"Chaos replay (seeded transport partitions, run twice):\n" +
		"  run 1: " + trace1 + "\n" +
		"  run 2: " + trace2 + "\n"
	return res
}

// runA11Chaos drives one seeded chaos run: sequential idempotent jobs
// through a 2-node fleet whose router transport is partitioned by a
// Scatter plan. Sequential submission makes transport-event ordinals a
// deterministic function of the schedule, so the fired-fault trace is
// the replay coordinate: same seed, same trace, bit for bit.
func runA11Chaos(cfg Config, nodeCfg parcserve.Config, requests int) (string, bool) {
	in := faultinject.New(faultinject.Plan{
		Name: fmt.Sprintf("cluster-partition-%d", cfg.Seed),
		Seed: cfg.Seed,
		Rules: faultinject.Scatter(cfg.Seed, faultinject.SiteTransport,
			faultinject.Error, 4, requests, 0),
	})
	fleet := parccluster.NewFleet(parccluster.FleetConfig{
		Nodes:        2,
		Starter:      &parccluster.LocalStarter{Config: nodeCfg},
		RestartDelay: 10 * time.Millisecond,
		Router: parccluster.RouterConfig{
			RetryMax: 3,
			Injector: in,
			// No load poller: background /statz refreshes are off the
			// chaos transport anyway, but their timing would still move
			// mark-up events around — the replay run keeps the schedule
			// strictly request-driven.
		},
	})
	if err := fleet.Start(); err != nil {
		_ = fleet.Stop()
		return "", false
	}
	front := httptest.NewServer(fleet.Router())
	okAll := true
	for i := 0; i < requests; i++ {
		r := loadtest.Run(loadtest.Config{
			BaseURL:  front.URL,
			Seed:     cfg.Seed + uint64(i),
			Requests: 1,
			Rate:     1000,
			Mix: []loadtest.JobSpec{
				{Kind: "spin", Body: map[string]any{"spin_ms": 1, "deadline_ms": 30_000}, Weight: 1},
			},
		})
		// The request must be ANSWERED, not necessarily succeed: when the
		// scatter lands injected errors on consecutive ordinals, one
		// request can eat a partition on every node and the explicit 502
		// is exactly the contract (rejected, never lost).
		if r.Dropped != 0 {
			okAll = false
		}
		// Resurrect any node the injected partition marked down — a
		// synchronous, request-driven substitute for the background
		// poller, so the schedule stays deterministic.
		fleet.Router().RefreshLoad()
	}
	led := fleet.Router().Ledger()
	front.Close()
	_ = fleet.Stop()
	if led.Lost != 0 || led.Accepted != led.Completed+led.Rejected {
		okAll = false
	}
	return in.TraceString(), okAll
}
