package experiments

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	// Every exhibit from DESIGN.md's per-experiment index must be
	// registered.
	want := []string{"F1", "F2", "TASSESS", "EALLOC", "EPROTO", "ECURR", "ELIKERT",
		"P1", "P2", "P3", "P4", "P5", "P6", "P7", "P8", "P9", "P10", "A1", "A6", "A7", "A8", "A9", "A10", "A11", "A12"}
	ids := IDs()
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(ids) != len(want) {
		t.Errorf("registry has %d experiments, want %d: %v", len(ids), len(want), ids)
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("P2"); !ok {
		t.Fatal("P2 not found")
	}
	if _, ok := ByID("p2"); !ok {
		t.Fatal("lookup not case-insensitive")
	}
	if _, ok := ByID("NOPE"); ok {
		t.Fatal("bogus ID found")
	}
}

func TestResultHelpers(t *testing.T) {
	r := &Result{ID: "X"}
	r.ok("a", true)
	r.ok("b", false)
	r.metric("m", 1.5)
	if r.AllPassed() {
		t.Error("AllPassed with a failure")
	}
	failed := r.FailedFindings()
	if len(failed) != 1 || failed[0] != "b" {
		t.Errorf("FailedFindings = %v", failed)
	}
	if r.Metrics["m"] != 1.5 {
		t.Error("metric lost")
	}
}

// TestAllExperimentsPass runs the full registry at quick scale: every
// experiment must produce output and every paper-shape finding must hold.
// This is the repository's acceptance test.
func TestAllExperimentsPass(t *testing.T) {
	cfg := QuickConfig()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res := e.Run(cfg)
			if res.Output == "" {
				t.Fatal("no output")
			}
			if !strings.Contains(res.Output, res.ID) {
				t.Error("output missing experiment id banner")
			}
			if len(res.Findings) == 0 {
				t.Fatal("experiment reported no findings")
			}
			for name, ok := range res.Findings {
				if !ok {
					t.Errorf("finding failed: %s", name)
				}
			}
		})
	}
}

func BenchmarkExperimentP2(b *testing.B) {
	e, _ := ByID("P2")
	cfg := QuickConfig()
	for i := 0; i < b.N; i++ {
		e.Run(cfg)
	}
}
