package experiments

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"parc751/internal/collections"
	"parc751/internal/memmodel"
	"parc751/internal/metrics"
	"parc751/internal/ptask"
)

func init() {
	register(Experiment{
		ID:    "P6",
		Title: "Task-aware (task-safe) libraries for Parallel Task",
		Paper: "§IV-C item 6",
		Run:   runP6,
	})
	register(Experiment{
		ID:    "P8",
		Title: "Understanding and coping with the memory model",
		Paper: "§IV-C item 8",
		Run:   runP8,
	})
	register(Experiment{
		ID:    "P9",
		Title: "Parallel use of collections: lock strategies compared",
		Paper: "§IV-C item 9",
		Run:   runP9,
	})
}

func runP6(cfg Config) *Result {
	res := &Result{ID: "P6", Title: "Task-safe libraries"}
	trials := 400
	if cfg.Quick {
		trials = 100
	}

	// Demonstration 1: "thread-safe" is not "task-safe". A map whose Get
	// and Put are each perfectly synchronised still double-computes under
	// the racy check-then-act pattern; the task-safe compound operation
	// (GetOrCompute) does not.
	racy := memmodel.ForcedDoubleCompute(trials)

	rt := ptask.NewRuntime(cfg.Workers)
	defer rt.Shutdown()
	doubles := 0
	for trial := 0; trial < trials; trial++ {
		m := collections.NewRWMutexMap[string, int]()
		var computes atomic.Int32
		multi := ptask.RunMulti(rt, 4, func(i int) (int, error) {
			return m.GetOrCompute("config", func() int {
				computes.Add(1)
				return 42
			}), nil
		})
		vals, _ := multi.Results()
		for _, v := range vals {
			if v != 42 {
				doubles++ // value corruption counts as failure too
			}
		}
		if computes.Load() > 1 {
			doubles++
		}
	}

	// Demonstration 2: a BLOCKING bounded queue deadlocks a task pool
	// (producer tasks block on a full queue while the consumer task sits
	// queued behind them); the task-safe non-blocking queue completes.
	// The blocking variant is run with a watchdog instead of actually
	// deadlocking the test harness.
	deadlockDemo := func(blocking bool) bool {
		// Single worker: the consumer task can never start until the
		// producers finish — which, if they block, is never. An abort
		// flag lets the watchdog release the wedged worker afterwards so
		// the pool can be shut down cleanly.
		rt1 := ptask.NewRuntime(1)
		defer rt1.Shutdown()
		var abort atomic.Bool
		q := collections.NewBoundedQueue[int](2)
		done := make(chan struct{})
		go func() {
			defer close(done)
			producer := ptask.Invoke(rt1, func() error {
				for i := 0; i < 10; i++ {
					if blocking {
						for !q.TryPut(i) {
							// spin: models BlockingQueue.put holding the
							// only pool worker hostage
							if abort.Load() {
								return nil
							}
							time.Sleep(100 * time.Microsecond)
						}
					} else {
						// Task-safe discipline: drain-or-make-progress.
						for !q.TryPut(i) {
							q.TryTake()
						}
					}
				}
				return nil
			})
			producer.Result()
		}()
		select {
		case <-done:
			return true // completed
		case <-time.After(300 * time.Millisecond):
			abort.Store(true) // watchdog: free the worker, report wedged
			<-done
			return false
		}
	}
	blockingCompletes := deadlockDemo(true)
	taskSafeCompletes := deadlockDemo(false)

	tab := metrics.NewTable("Task-safety demonstrations",
		"scenario", "trials", "failures", "verdict")
	tab.AddRow("racy check-then-act (thread-safe ops, forced window)", racy.Trials, racy.Anomalies,
		fmt.Sprintf("%.0f%% double-compute", racy.Rate()*100))
	tab.AddRow("task-safe GetOrCompute under multi-task", trials, doubles, "atomic compound op")
	tab.AddRow("blocking bounded queue on 1-worker pool", 1, boolToInt(!blockingCompletes), "wedges (watchdog fired)")
	tab.AddRow("non-blocking task-safe queue", 1, boolToInt(!taskSafeCompletes), "completes")

	res.Output = header(res, "§IV-C item 6") + tab.String() +
		"\nthe project's lesson: using a thread-safe class inside a tasking model\n" +
		"does not necessarily equate to a correct solution — compound operations\n" +
		"must be atomic and blocking calls must not capture pool workers.\n"
	res.ok("racy pattern shows double computes", racy.Anomalies > 0)
	res.ok("GetOrCompute never double-computes", doubles == 0)
	res.ok("blocking queue wedges the pool", !blockingCompletes)
	res.ok("task-safe queue completes", taskSafeCompletes)
	res.metric("racy_rate", racy.Rate())
	return res
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func runP8(cfg Config) *Result {
	res := &Result{ID: "P8", Title: "Memory-model lab"}
	trials := 200
	if cfg.Quick {
		trials = 50
	}

	lost := memmodel.Explore(
		func() *memmodel.CounterState { return &memmodel.CounterState{} },
		memmodel.LostUpdateOps(0), memmodel.LostUpdateOps(1),
		func(s *memmodel.CounterState) bool { return s.N == 2 })
	lostFixed := memmodel.Explore(
		func() *memmodel.CounterState { return &memmodel.CounterState{} },
		memmodel.AtomicIncrementOps(0), memmodel.AtomicIncrementOps(1),
		func(s *memmodel.CounterState) bool { return s.N == 2 })
	pub := memmodel.Explore(
		func() *memmodel.PublishState { return &memmodel.PublishState{Observed: -1} },
		memmodel.UnsafePublishWriterOps(), memmodel.PublishReaderOps(),
		memmodel.PublishOK)
	pubFixed := memmodel.Explore(
		func() *memmodel.PublishState { return &memmodel.PublishState{Observed: -1} },
		memmodel.SafePublishWriterOps(), memmodel.PublishReaderOps(),
		memmodel.PublishOK)
	cta := memmodel.Explore(
		func() *memmodel.CacheState { return &memmodel.CacheState{} },
		memmodel.CheckThenActOps(0), memmodel.CheckThenActOps(1),
		func(s *memmodel.CacheState) bool { return s.Computes == 1 })
	ctaFixed := memmodel.Explore(
		func() *memmodel.CacheState { return &memmodel.CacheState{} },
		memmodel.AtomicCheckThenActOps(0), memmodel.AtomicCheckThenActOps(1),
		func(s *memmodel.CacheState) bool { return s.Computes == 1 })

	expTab := metrics.NewTable("Exhaustive interleaving exploration (the lab's teaching instrument)",
		"snippet", "interleavings", "violations", "fixed version violations")
	expTab.AddRow("lost update (racy counter)", lost.Interleavings, lost.Violations, lostFixed.Violations)
	expTab.AddRow("unsafe publication (reordered)", pub.Interleavings, pub.Violations, pubFixed.Violations)
	expTab.AddRow("check-then-act (lazy init)", cta.Interleavings, cta.Violations, ctaFixed.Violations)

	forcedLost := memmodel.ForcedLostUpdate(trials/4, 4, 50)
	fixedLost := memmodel.FixedLostUpdate(trials/4, 4, 50)
	forcedDouble := memmodel.ForcedDoubleCompute(trials)
	fixedDouble := memmodel.FixedDoubleCompute(trials)

	liveTab := metrics.NewTable("Live forced-race trials (goroutines with yield windows)",
		"snippet", "trials", "anomaly rate", "fixed rate")
	liveTab.AddRow("lost update", forcedLost.Trials,
		fmt.Sprintf("%.0f%%", forcedLost.Rate()*100), fmt.Sprintf("%.0f%%", fixedLost.Rate()*100))
	liveTab.AddRow("double compute", forcedDouble.Trials,
		fmt.Sprintf("%.0f%%", forcedDouble.Rate()*100), fmt.Sprintf("%.0f%%", fixedDouble.Rate()*100))

	var b strings.Builder
	b.WriteString(header(res, "§IV-C item 8"))
	b.WriteString(expTab.String())
	b.WriteString("\n")
	b.WriteString(liveTab.String())
	res.Output = b.String()

	res.ok("racy snippets have violating interleavings",
		lost.Violations > 0 && pub.Violations > 0 && cta.Violations > 0)
	res.ok("fixed snippets have zero violations",
		lostFixed.Violations == 0 && pubFixed.Violations == 0 && ctaFixed.Violations == 0)
	res.ok("forced live races reproduce anomalies", forcedLost.Anomalies > 0 && forcedDouble.Anomalies > 0)
	res.ok("fixed live versions are anomaly-free", fixedLost.Anomalies == 0 && fixedDouble.Anomalies == 0)
	res.metric("lost_update_violation_fraction", float64(lost.Violations)/float64(lost.Interleavings))
	return res
}

func runP9(cfg Config) *Result {
	res := &Result{ID: "P9", Title: "Parallel collections comparison"}
	opsPerWorker := 30000
	if cfg.Quick {
		opsPerWorker = 5000
	}
	workers := 8

	type mapMaker struct {
		name string
		mk   func() collections.Map[int, int]
	}
	makers := []mapMaker{
		{"mutex (synchronized)", func() collections.Map[int, int] { return collections.NewMutexMap[int, int]() }},
		{"rwmutex", func() collections.Map[int, int] { return collections.NewRWMutexMap[int, int]() }},
		{"sharded x16", func() collections.Map[int, int] { return collections.NewShardedMap[int, int](16) }},
		{"sync.Map", func() collections.Map[int, int] { return collections.NewSyncMap[int, int]() }},
	}
	mixes := []struct {
		name     string
		readFrac int // out of 10
	}{
		{"90/10 read/write", 9},
		{"50/50 read/write", 5},
	}

	runMix := func(m collections.Map[int, int], readOutOf10 int) float64 {
		for i := 0; i < 1000; i++ {
			m.Put(i, i)
		}
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < opsPerWorker; i++ {
					k := (w*opsPerWorker + i*7) % 1000
					if i%10 < readOutOf10 {
						m.Get(k)
					} else {
						m.Put(k, i)
					}
				}
			}(w)
		}
		wg.Wait()
		total := float64(workers * opsPerWorker)
		return total / time.Since(start).Seconds()
	}

	mapTab := metrics.NewTable(fmt.Sprintf("Map throughput, %d goroutines (ops/s on this host)", workers),
		"implementation", mixes[0].name, mixes[1].name)
	type rowT struct {
		name string
		tput [2]float64
	}
	var rows []rowT
	for _, mk := range makers {
		var r rowT
		r.name = mk.name
		for mi, mix := range mixes {
			r.tput[mi] = runMix(mk.mk(), mix.readFrac)
		}
		rows = append(rows, r)
		mapTab.AddRow(r.name, r.tput[0], r.tput[1])
	}

	// Counters: the increment strategies.
	counterTab := metrics.NewTable("Counter throughput and exactness (8 goroutines x 50k increments)",
		"strategy", "ops/s", "final count exact")
	const incPer = 50000
	runCounter := func(c collections.Counter, striped bool) (float64, bool) {
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				sc, _ := c.(*collections.ShardedCounter)
				for i := 0; i < incPer; i++ {
					if striped && sc != nil {
						sc.IncStripe(w)
					} else {
						c.Inc()
					}
				}
			}(w)
		}
		wg.Wait()
		d := time.Since(start).Seconds()
		if cc, ok := c.(*collections.ChannelCounter); ok {
			cc.Close()
		}
		return float64(workers*incPer) / d, c.Value() == int64(workers*incPer)
	}
	exactAll := true
	for _, c := range []struct {
		name    string
		counter collections.Counter
		striped bool
	}{
		{"mutex", &collections.MutexCounter{}, false},
		{"atomic", &collections.AtomicCounter{}, false},
		{"sharded (LongAdder)", collections.NewShardedCounter(workers), true},
		{"channel (CSP)", collections.NewChannelCounter(), false},
	} {
		tput, exact := runCounter(c.counter, c.striped)
		if !exact {
			exactAll = false
		}
		counterTab.AddRow(c.name, tput, exact)
	}

	// The broken baseline, with a forced window so it fails even on one CPU.
	racy := memmodel.ForcedLostUpdate(20, workers, 200)

	var b strings.Builder
	b.WriteString(header(res, "§IV-C item 9"))
	b.WriteString(mapTab.String())
	b.WriteString("\n")
	b.WriteString(counterTab.String())
	fmt.Fprintf(&b, "\nunsynchronised counter (forced window): %d/%d trials lost updates\n",
		racy.Anomalies, racy.Trials)
	b.WriteString("\nnote: this host has 1 CPU, so throughput ratios understate the\n" +
		"contention gaps the students saw on 8-64 core machines; correctness\n" +
		"columns and the lost-update demonstration are host-independent.\n")
	res.Output = b.String()

	res.ok("all synchronised counters exact", exactAll)
	res.ok("unsynchronised counter loses updates", racy.Anomalies > 0)
	allPos := true
	for _, r := range rows {
		if r.tput[0] <= 0 || r.tput[1] <= 0 {
			allPos = false
		}
	}
	res.ok("all map variants measurable", allPos)
	return res
}
