package experiments

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"time"

	"parc751/internal/faultinject"
	"parc751/internal/metrics"
	"parc751/internal/ptask"
	"parc751/internal/pyjama"
	"parc751/internal/sortalgo"
	"parc751/internal/thumbs"
	"parc751/internal/webfetch"
	"parc751/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "A8",
		Title: "Chaos harness: deterministic fault injection across the runtime",
		Paper: "DESIGN.md §10 (A8); failure semantics + faultinject",
		Run:   runA8,
	})
}

// quiesceDeadline bounds every chaos run: a faulted runtime that cannot
// drain within this budget has deadlocked or lost a future, which is
// exactly the regression A8 exists to catch.
const quiesceDeadline = 30 * time.Second

// runA8 replays seeded fault plans over three of the paper's projects and
// checks the failure-semantics invariants: no deadlock, no lost future,
// the pool quiesces within its deadline, every injected fault surfaces as
// exactly one error, and — the determinism contract — the same seed
// produces the same injected schedule (trace) and the same surfaced
// errors on every run.
func runA8(cfg Config) *Result {
	res := &Result{ID: "A8", Title: "Chaos harness: deterministic fault injection"}
	tab := metrics.NewTable("Chaos plans (each executed twice; traces must match)",
		"project", "plan", "faults", "replayed", "invariants")

	seeds := []uint64{cfg.Seed, cfg.Seed + 101, cfg.Seed + 202}
	for pi, seed := range seeds {
		name := fmt.Sprintf("qs-%d", pi+1)
		t1, ok1 := chaosQuicksort(cfg, seed)
		t2, ok2 := chaosQuicksort(cfg, seed)
		replay := t1 == t2
		fired := len(strings.Fields(t1))
		res.ok(fmt.Sprintf("quicksort %s: invariants hold", name), ok1 && ok2)
		res.ok(fmt.Sprintf("quicksort %s: trace replays", name), replay)
		res.ok(fmt.Sprintf("quicksort %s: faults fired", name), fired > 0)
		tab.AddRow("quicksort", name, fired, replay, ok1 && ok2)
	}
	for pi, seed := range seeds {
		name := fmt.Sprintf("thumb-%d", pi+1)
		t1, ok1 := chaosThumbs(cfg, seed)
		t2, ok2 := chaosThumbs(cfg, seed)
		replay := t1 == t2
		fired := len(strings.Fields(t1))
		res.ok(fmt.Sprintf("thumbnails %s: every injected fault is exactly one error", name), ok1 && ok2)
		res.ok(fmt.Sprintf("thumbnails %s: trace replays", name), replay)
		tab.AddRow("thumbnails", name, fired, replay, ok1 && ok2)
	}
	webPlans := []struct {
		name string
		run  func(cfg Config, seed uint64) (string, bool)
	}{
		{"retry", chaosWebRetry},
		{"hang", chaosWebHang},
		{"breaker", chaosWebBreaker},
	}
	for pi, wp := range webPlans {
		seed := seeds[pi]
		t1, ok1 := wp.run(cfg, seed)
		t2, ok2 := wp.run(cfg, seed)
		replay := t1 == t2
		fired := len(strings.Fields(t1))
		res.ok(fmt.Sprintf("webfetch %s: invariants hold", wp.name), ok1 && ok2)
		res.ok(fmt.Sprintf("webfetch %s: trace replays", wp.name), replay)
		res.ok(fmt.Sprintf("webfetch %s: faults fired", wp.name), fired > 0)
		tab.AddRow("webfetch", wp.name, fired, replay, ok1 && ok2)
	}

	passed := 0
	for _, ok := range res.Findings {
		if ok {
			passed++
		}
	}
	res.metric("plans", float64(len(seeds)*2 + len(webPlans)))
	res.metric("checks_passed", float64(passed))

	var b strings.Builder
	b.WriteString(header(res, "DESIGN.md §10 (A8)"))
	b.WriteString(tab.String())
	b.WriteString("\nEach plan is derived from a seed; 'replayed' means two independent runs\n" +
		"injected the identical (site, ordinal) fault schedule and surfaced the same\n" +
		"errors. Invariants: results correct, no deadlock, pool quiesces in time.\n")
	res.Output = b.String()
	return res
}

// chaosQuicksort runs project 2 (quicksort) under a seeded delay/stall
// plan covering the pool's submit and run hooks plus Pyjama barrier
// arrivals. Faults here are purely temporal, so the invariant is that the
// outputs stay correct and the runtime drains cleanly.
func chaosQuicksort(cfg Config, seed uint64) (trace string, ok bool) {
	n, threshold, phases := 40000, 1024, 8
	if cfg.Quick {
		n, threshold, phases = 8000, 512, 4
	}
	workers := cfg.Workers
	if workers < 2 {
		workers = 2
	}
	plan := faultinject.Plan{Name: fmt.Sprintf("quicksort-%d", seed), Seed: seed}
	plan.Rules = append(plan.Rules,
		faultinject.Scatter(seed, faultinject.SiteSubmit, faultinject.Delay, 4, 30, 200*time.Microsecond)...)
	plan.Rules = append(plan.Rules,
		faultinject.Rule{Site: faultinject.SiteRun, Kind: faultinject.Stall,
			Nth: seed % 16, Count: 1, Dur: 2 * time.Millisecond})
	plan.Rules = append(plan.Rules,
		faultinject.Scatter(seed, faultinject.SiteBarrierArrive, faultinject.Delay, 6, phases*workers, 300*time.Microsecond)...)
	in := faultinject.New(plan)

	ok = true
	rt := ptask.NewRuntime(workers)
	rt.SetFaultInjector(in)
	xs := workload.IntArray(seed, n, 1<<30)
	done := make(chan struct{})
	go func() { sortalgo.PTask(rt, xs, threshold); close(done) }()
	select {
	case <-done:
	case <-time.After(quiesceDeadline):
		return "", false // deadlocked under injection
	}
	ok = ok && sort.IntsAreSorted(xs)
	ok = ok && rt.ShutdownTimeout(quiesceDeadline) == nil

	// The Pyjama leg: a barrier-phased sweep under arrival delays (the
	// package-level injector reaches the team barrier).
	prev := pyjama.SetFaultInjector(in)
	base := workload.IntArray(seed+1, 4096, 100)
	acc := append([]int(nil), base...)
	for p := 0; p < phases; p++ {
		pyjama.Parallel(workers, func(tc *pyjama.TC) {
			tc.For(len(acc), pyjama.Static(0), func(i int) { acc[i]++ })
		})
	}
	pyjama.SetFaultInjector(prev)
	for i, v := range acc {
		if v != base[i]+phases {
			ok = false
			break
		}
	}
	return in.TraceString(), ok
}

// chaosThumbs runs project 3 (thumbnails) with seeded panic-on-Nth-task
// faults under the collect-all policy: exactly the injected tasks must
// fail, each with its own attributable *InjectedPanic, and every other
// thumbnail must render.
func chaosThumbs(cfg Config, seed uint64) (trace string, ok bool) {
	nImgs, kFaults := 96, 5
	if cfg.Quick {
		nImgs, kFaults = 32, 3
	}
	workers := cfg.Workers
	if workers < 2 {
		workers = 2
	}
	plan := faultinject.Plan{Name: fmt.Sprintf("thumbs-%d", seed), Seed: seed,
		Rules: faultinject.Scatter(seed, faultinject.SiteTaskBody, faultinject.Panic, kFaults, nImgs, 0)}
	in := faultinject.New(plan)

	rt := ptask.NewRuntime(workers)
	rt.SetFaultInjector(in)
	imgs := workload.GenImageSet(seed, nImgs, 32, 64)
	m := ptask.RunMultiPolicy(rt, nImgs, ptask.MultiCollectAll, func(i int) (*workload.Image, error) {
		return thumbs.Scale(imgs[i], 16, 16), nil
	})
	select {
	case <-m.Done():
	case <-time.After(quiesceDeadline):
		return "", false
	}
	vals, aggErr := m.Results()
	ok = rt.ShutdownTimeout(quiesceDeadline) == nil

	// Exactly-once accounting: the set of surfaced panic ordinals must
	// equal the set of injected ordinals, and every non-faulted thumbnail
	// must have rendered.
	surfaced := map[uint64]int{}
	rendered := 0
	for i, tk := range m.Tasks() {
		_, err := tk.Result()
		if err == nil {
			if vals[i] == nil {
				ok = false
			}
			rendered++
			continue
		}
		var ip *faultinject.InjectedPanic
		if errors.As(err, &ip) {
			surfaced[ip.Ordinal]++
		} else {
			ok = false // a fault we did not inject
		}
	}
	if rendered != nImgs-kFaults || len(surfaced) != kFaults {
		ok = false
	}
	for _, c := range surfaced {
		if c != 1 {
			ok = false
		}
	}
	injected := map[uint64]bool{}
	for _, ev := range in.Trace() {
		if ev.Site == faultinject.SiteTaskBody {
			injected[ev.Ordinal] = true
		}
	}
	if len(injected) != kFaults {
		ok = false
	}
	for o := range surfaced {
		if !injected[o] {
			ok = false
		}
	}
	if aggErr == nil && kFaults > 0 {
		ok = false // collect-all lost the failures
	}
	return in.TraceString(), ok
}

// chaosWebServer is the loopback origin for the webfetch plans.
func chaosWebServer() *httptest.Server {
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(make([]byte, 256))
	}))
}

// chaosWebURLs builds nURLs distinct paths against srv.
func chaosWebURLs(srv *httptest.Server, n int) []string {
	urls := make([]string, n)
	for i := range urls {
		urls[i] = fmt.Sprintf("%s/p/%d", srv.URL, i)
	}
	return urls
}

// chaosWebRetry injects transport errors on seeded request ordinals and
// gives the fetcher a retry budget large enough to absorb all of them:
// every URL must still succeed, proving injected transport failures are
// contained by the retry layer.
func chaosWebRetry(cfg Config, seed uint64) (trace string, ok bool) {
	const nURLs, kFaults = 12, 3
	srv := chaosWebServer()
	defer srv.Close()
	in := faultinject.New(faultinject.Plan{Name: fmt.Sprintf("web-retry-%d", seed), Seed: seed,
		Rules: faultinject.Scatter(seed, faultinject.SiteTransport, faultinject.Error, kFaults, nURLs, 0)})

	rt := ptask.NewRuntime(2)
	client := &http.Client{Transport: &faultinject.RoundTripper{
		Base: srv.Client().Transport, Injector: in}}
	f := webfetch.NewFetcher(rt, client, 1)
	f.SetTimeout(10 * time.Second)
	// Budget > kFaults: even if one request's retries keep landing on
	// faulted ordinals, it can absorb every injected error.
	f.SetRetryBudget(ptask.RetryPolicy{MaxAttempts: kFaults + 1, Base: time.Millisecond, Seed: seed})
	res := f.FetchAll(chaosWebURLs(srv, nURLs), nil)
	ok = rt.ShutdownTimeout(quiesceDeadline) == nil
	for _, r := range res {
		if r.Err != nil {
			ok = false
		}
	}
	ok = ok && in.Fired() == kFaults && f.Retries() >= int64(kFaults)
	return in.TraceString(), ok
}

// chaosWebHang wedges one seeded request on a transport hang; the
// per-request timeout must cut it loose so exactly one URL fails (with a
// deadline error) and the fetch as a whole still completes promptly.
func chaosWebHang(cfg Config, seed uint64) (trace string, ok bool) {
	const nURLs = 12
	srv := chaosWebServer()
	defer srv.Close()
	in := faultinject.New(faultinject.Plan{Name: fmt.Sprintf("web-hang-%d", seed), Seed: seed,
		Rules: []faultinject.Rule{{Site: faultinject.SiteTransport, Kind: faultinject.Hang,
			Nth: seed % nURLs, Count: 1}}})

	rt := ptask.NewRuntime(2)
	client := &http.Client{Transport: &faultinject.RoundTripper{
		Base: srv.Client().Transport, Injector: in}}
	f := webfetch.NewFetcher(rt, client, 2)
	f.SetTimeout(100 * time.Millisecond)
	start := time.Now()
	res := f.FetchAll(chaosWebURLs(srv, nURLs), nil)
	took := time.Since(start)
	ok = rt.ShutdownTimeout(quiesceDeadline) == nil && took < quiesceDeadline
	failed := 0
	for _, r := range res {
		if r.Err != nil {
			failed++
			if !errors.Is(r.Err, context.DeadlineExceeded) {
				ok = false // the hang must be cut loose by the deadline
			}
		}
	}
	ok = ok && failed == 1 && in.Fired() == 1
	return in.TraceString(), ok
}

// chaosWebBreaker fails every transport attempt and checks the circuit
// breaker takes the origin out of rotation after its threshold: only
// `threshold` requests reach the transport, the rest are refused
// immediately with ErrCircuitOpen.
func chaosWebBreaker(cfg Config, seed uint64) (trace string, ok bool) {
	const nURLs, threshold = 12, 3
	in := faultinject.New(faultinject.Plan{Name: fmt.Sprintf("web-breaker-%d", seed), Seed: seed,
		Rules: []faultinject.Rule{{Site: faultinject.SiteTransport, Kind: faultinject.Error, Every: 1}}})

	rt := ptask.NewRuntime(2)
	f := webfetch.NewFetcher(rt, &http.Client{Transport: &faultinject.RoundTripper{Injector: in}}, 1)
	b := webfetch.NewBreaker(threshold, time.Hour)
	f.SetBreaker(b)
	urls := make([]string, nURLs)
	for i := range urls {
		urls[i] = fmt.Sprintf("http://127.0.0.1:0/p/%d", i)
	}
	res := f.FetchAll(urls, nil)
	ok = rt.ShutdownTimeout(quiesceDeadline) == nil
	refused, injected := 0, 0
	for _, r := range res {
		switch {
		case errors.Is(r.Err, webfetch.ErrCircuitOpen):
			refused++
		case errors.Is(r.Err, faultinject.ErrInjected):
			injected++
		default:
			ok = false // nothing should have succeeded
		}
	}
	ok = ok && injected == threshold && refused == nURLs-threshold &&
		in.Seen(faultinject.SiteTransport) == threshold && b.Trips() == 1
	return in.TraceString(), ok
}
