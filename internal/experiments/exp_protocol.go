package experiments

import (
	"fmt"

	"parc751/internal/metrics"
	"parc751/internal/repohygiene"
	"parc751/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "EPROTO",
		Title: "PARC repository protocols (directory hygiene audit)",
		Paper: "§IV-A",
		Run:   runEProto,
	})
}

// runEProto audits two synthetic student repositories: one following the
// §IV-A protocols and one committing the classic violations (build
// artifacts, Windows paths, CRLF scripts, no src/test separation). The
// clean tree must pass and every planted violation must be caught.
func runEProto(cfg Config) *Result {
	res := &Result{ID: "EPROTO", Title: "Repository hygiene"}
	r := xrand.New(cfg.Seed)

	clean := []repohygiene.File{
		{Path: "src/nz/ac/auckland/parc/Main.java", Content: []byte("class Main {}\n")},
		{Path: "src/nz/ac/auckland/parc/Pool.java", Content: []byte("class Pool {}\n")},
		{Path: "test/PoolTest.java", Content: []byte("class PoolTest {}\n")},
		{Path: "bench/SortBench.java", Content: []byte("class SortBench {}\n")},
		{Path: "scripts/run.sh", Content: []byte("#!/bin/sh\njava -cp src Main\n")},
		{Path: "doc/report.txt", Content: []byte("group 7 report\n")},
	}
	for i := 0; i < 30; i++ {
		clean = append(clean, repohygiene.File{
			Path:    fmt.Sprintf("src/gen/%s.java", r.Letters(8)),
			Content: []byte("class G {}\n"),
		})
	}

	planted := map[string]int{
		"committed-artifact":     2,
		"committed-build-dir":    1,
		"path-separator":         1,
		"crlf-line-endings":      1,
		"hardcoded-windows-path": 1,
		"missing-shebang":        1,
		"case-collision":         1,
	}
	dirty := append(append([]repohygiene.File(nil), clean...),
		repohygiene.File{Path: "src/Main.class"},
		repohygiene.File{Path: "parc.jar"},
		repohygiene.File{Path: "build/out/App.class"}, // build-dir + artifact counted once each rule
		repohygiene.File{Path: `src\win\Helper.java`},
		repohygiene.File{Path: "scripts/deploy.sh", Content: []byte("#!/bin/sh\r\necho hi\r\n")},
		repohygiene.File{Path: "src/Cfg.java", Content: []byte(`String p = "C:\\parc";` + "\n")},
		repohygiene.File{Path: "scripts/build.sh", Content: []byte("javac Main.java\n")},
		repohygiene.File{Path: "src/GEN/first.java"},
		repohygiene.File{Path: "src/gen/FIRST.java"},
	)
	// The build/out/App.class line triggers committed-artifact too.
	planted["committed-artifact"]++

	pcfg := repohygiene.PARCDefaults()
	cleanViolations := repohygiene.Audit(pcfg, clean)
	dirtyViolations := repohygiene.Audit(pcfg, dirty)

	counts := map[string]int{}
	for _, v := range dirtyViolations {
		counts[v.Rule]++
	}
	tab := metrics.NewTable("§IV-A protocol audit: planted violations vs caught",
		"rule", "planted", "caught")
	allCaught := true
	for rule, want := range planted {
		got := counts[rule]
		tab.AddRow(rule, want, got)
		if got < want {
			allCaught = false
		}
	}

	res.Output = header(res, "§IV-A") + tab.String() +
		fmt.Sprintf("\nclean repository: %d violations; dirty repository: %d violations (%d errors)\n",
			len(cleanViolations), len(dirtyViolations), len(repohygiene.Errors(dirtyViolations)))
	res.ok("clean repository passes", len(cleanViolations) == 0)
	res.ok("every planted violation caught", allCaught)
	res.ok("errors ranked before warnings", len(dirtyViolations) == 0 ||
		dirtyViolations[0].Severity == repohygiene.Error)
	res.metric("violations_caught", float64(len(dirtyViolations)))
	return res
}
