// Package experiments is the reproduction registry: it maps every exhibit
// of the paper (figures F1-F2, the assessment table, the allocation and
// survey evaluations, and the ten project studies P1-P10) to a runnable
// experiment that regenerates it. cmd/parcbench and the root-level
// benchmark harness both drive this registry; EXPERIMENTS.md records its
// output.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Config scales an experiment run.
type Config struct {
	// Seed makes every workload deterministic.
	Seed uint64
	// Quick shrinks problem sizes for tests and smoke runs.
	Quick bool
	// Workers is the worker/thread count for real (non-simulated)
	// parallel execution.
	Workers int
	// SchedStats, when set, makes experiments that drive the real
	// work-stealing runtime append a scheduler snapshot (per-worker
	// push/pop/steal/park/wake counts, submit→start latency) to their
	// output. Driven by `parcbench -schedstats`.
	SchedStats bool
}

// DefaultConfig returns the configuration used to produce EXPERIMENTS.md.
func DefaultConfig() Config { return Config{Seed: 751, Quick: false, Workers: 4} }

// QuickConfig returns a fast configuration for tests.
func QuickConfig() Config { return Config{Seed: 751, Quick: true, Workers: 2} }

// Result is an experiment's rendered output plus machine-checkable
// findings.
type Result struct {
	ID     string
	Title  string
	Output string // human-readable tables/charts
	// Findings maps named checks to pass/fail so tests can assert the
	// paper-shape properties without parsing the text output.
	Findings map[string]bool
	// Metrics exposes headline numbers (speedups, rates) by name.
	Metrics map[string]float64
}

// ok records a finding.
func (r *Result) ok(name string, pass bool) {
	if r.Findings == nil {
		r.Findings = map[string]bool{}
	}
	r.Findings[name] = pass
}

// metric records a headline number.
func (r *Result) metric(name string, v float64) {
	if r.Metrics == nil {
		r.Metrics = map[string]float64{}
	}
	r.Metrics[name] = v
}

// AllPassed reports whether every finding held.
func (r *Result) AllPassed() bool {
	for _, ok := range r.Findings {
		if !ok {
			return false
		}
	}
	return true
}

// FailedFindings lists the findings that did not hold.
func (r *Result) FailedFindings() []string {
	var out []string
	for name, ok := range r.Findings {
		if !ok {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Experiment is one registered reproduction.
type Experiment struct {
	ID    string
	Title string
	// Paper cites where in the paper the exhibit lives.
	Paper string
	Run   func(cfg Config) *Result
}

var registry []Experiment

// canonicalOrder is the paper order used by All: the course exhibits
// first, then the ten projects. (init functions run in file-name order,
// so raw registration order is arbitrary.)
var canonicalOrder = []string{"F1", "F2", "TASSESS", "EALLOC", "EPROTO", "ECURR", "ELIKERT",
	"P1", "P2", "P3", "P4", "P5", "P6", "P7", "P8", "P9", "P10", "A1", "A6", "A7", "A8", "A9", "A10", "A11", "A12"}

func register(e Experiment) { registry = append(registry, e) }

// All returns every experiment in paper order (unknown IDs trail in
// registration order).
func All() []Experiment {
	rank := map[string]int{}
	for i, id := range canonicalOrder {
		rank[id] = i
	}
	out := append([]Experiment(nil), registry...)
	sort.SliceStable(out, func(i, j int) bool {
		ri, iok := rank[out[i].ID]
		rj, jok := rank[out[j].ID]
		switch {
		case iok && jok:
			return ri < rj
		case iok:
			return true
		default:
			return false
		}
	})
	return out
}

// ByID finds an experiment by its identifier (case-insensitive).
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs lists the registered identifiers in order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.ID
	}
	return out
}

// header renders a uniform experiment banner.
func header(e *Result, paper string) string {
	return fmt.Sprintf("### %s — %s\n(paper: %s)\n\n", e.ID, e.Title, paper)
}
