package experiments

import (
	"fmt"
	"strings"

	"parc751/internal/parcvet"
	"parc751/internal/parcvet/loader"
	"parc751/internal/report"
)

func init() {
	register(Experiment{
		ID:    "A7",
		Title: "parcvet misuse detection: each seeded concurrency bug class is caught, the corrected program is clean",
		Paper: "DESIGN.md §9 (A7); §III/§IV-B/§IV-C misuse catalogue",
		Run:   runA7,
	})
}

// a7Buggy is a student-style submission seeding one instance of every
// misuse class the parcvet suite checks: a blocking GUI handler, a racy
// captured write, a dropped future, a divergent barrier, a non-neutral
// reduction identity, and a stale loop-index capture.
const a7Buggy = `package student

import (
	"time"

	"parc751/internal/eventloop"
	"parc751/internal/ptask"
	"parc751/internal/pyjama"
	"parc751/internal/reduction"
)

func Render(rt *ptask.Runtime, loop *eventloop.Loop) {
	t := ptask.Run(rt, func() (int, error) { return 42, nil })
	_ = loop.InvokeLater(func() {
		_, _ = t.Result()
		time.Sleep(time.Millisecond)
	})
}

func Sum(xs []int) int {
	sum := 0
	pyjama.Parallel(4, func(tc *pyjama.TC) {
		tc.For(len(xs), pyjama.Static(0), func(i int) {
			sum += xs[i]
		})
	})
	return sum
}

func FireAndForget(rt *ptask.Runtime) {
	ptask.Run(rt, func() (int, error) { return 1, nil })
}

func Sync() {
	pyjama.Parallel(4, func(tc *pyjama.TC) {
		if tc.ThreadNum() == 0 {
			tc.Barrier()
		}
	})
}

func Total(xs []int) int {
	r := reduction.Reducer[int]{
		Identity: func() int { return 1 },
		Combine:  func(a, b int) int { return a + b },
	}
	return reduction.Fold(r, xs)
}

func Spawn(rt *ptask.Runtime, xs []int) {
	var i int
	for i = 0; i < len(xs); i++ {
		t := ptask.Run(rt, func() (int, error) { return xs[i], nil })
		t.Notify(func(int, error) {})
	}
}
`

// a7Fixed is the same submission with every bug corrected the way the
// course teaches: offload + Notify, reduction instead of a shared
// accumulator, consumed futures, unconditional barriers, a neutral
// identity, and a shadowed index.
const a7Fixed = `package student

import (
	"parc751/internal/eventloop"
	"parc751/internal/ptask"
	"parc751/internal/pyjama"
	"parc751/internal/reduction"
)

func Render(rt *ptask.Runtime, loop *eventloop.Loop) {
	_ = loop.InvokeLater(func() {
		t := ptask.Run(rt, func() (int, error) { return 42, nil })
		t.Notify(func(int, error) {})
	})
}

func Sum(xs []int) int {
	return pyjama.ParallelForReduce(4, len(xs), pyjama.Static(0), reduction.Sum[int](),
		func(i, acc int) int { return acc + xs[i] })
}

func FireAndForget(rt *ptask.Runtime) {
	t := ptask.Run(rt, func() (int, error) { return 1, nil })
	t.Notify(func(int, error) {})
}

func Sync() {
	pyjama.Parallel(4, func(tc *pyjama.TC) {
		tc.Barrier()
	})
}

func Total(xs []int) int {
	r := reduction.Reducer[int]{
		Identity: func() int { return 0 },
		Combine:  func(a, b int) int { return a + b },
	}
	return reduction.Fold(r, xs)
}

func Spawn(rt *ptask.Runtime, xs []int) {
	for i := 0; i < len(xs); i++ {
		i := i
		t := ptask.Run(rt, func() (int, error) { return xs[i], nil })
		t.Notify(func(int, error) {})
	}
}
`

// runA7 typechecks the two canned submissions against the real module
// packages and runs the full analyzer suite over each. The findings are
// exact-shape properties: every misuse class fires on the buggy variant,
// and the corrected variant is completely clean (the suite's
// false-positive budget on known-good code is zero).
func runA7(cfg Config) *Result {
	res := &Result{ID: "A7", Title: "parcvet misuse detection"}
	var b strings.Builder
	b.WriteString(header(res, "DESIGN.md §9 (A7); §III/§IV-B/§IV-C misuse catalogue"))

	root, err := loader.FindModuleRoot(".")
	if err != nil {
		res.ok("module_root_found", false)
		fmt.Fprintf(&b, "cannot locate module root: %v\n", err)
		res.Output = b.String()
		return res
	}
	res.ok("module_root_found", true)

	analyze := func(label, src string) []report.Finding {
		findings, err := parcvet.AnalyzeSource(root, "a7/student", map[string]string{"student.go": src}, nil)
		if err != nil {
			res.ok("typecheck_"+label, false)
			fmt.Fprintf(&b, "%s variant failed to typecheck: %v\n", label, err)
			return nil
		}
		res.ok("typecheck_"+label, true)
		return findings
	}

	buggy := analyze("buggy", a7Buggy)
	fixed := analyze("fixed", a7Fixed)

	byRule := map[string]int{}
	for _, f := range buggy {
		byRule[f.Rule]++
	}

	b.WriteString("rule               buggy  fixed\n")
	fixedByRule := map[string]int{}
	for _, f := range fixed {
		fixedByRule[f.Rule]++
	}
	for _, an := range parcvet.Analyzers() {
		caught := byRule[an.Name] > 0
		res.ok("caught_"+an.Name, caught)
		fmt.Fprintf(&b, "%-18s %5d  %5d\n", an.Name, byRule[an.Name], fixedByRule[an.Name])
	}
	res.ok("fixed_variant_clean", len(fixed) == 0)
	res.metric("buggy_findings", float64(len(buggy)))
	res.metric("fixed_findings", float64(len(fixed)))

	b.WriteString("\nbuggy-variant findings:\n")
	for _, f := range buggy {
		fmt.Fprintf(&b, "  %s\n", f)
	}
	if len(fixed) > 0 {
		b.WriteString("\nUNEXPECTED fixed-variant findings:\n")
		for _, f := range fixed {
			fmt.Fprintf(&b, "  %s\n", f)
		}
	}
	res.Output = b.String()
	return res
}
