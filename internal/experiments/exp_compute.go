package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"parc751/internal/kernels"
	"parc751/internal/machine"
	"parc751/internal/metrics"
	"parc751/internal/ptask"
	"parc751/internal/pyjama"
	"parc751/internal/reduction"
	"parc751/internal/sortalgo"
	"parc751/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "P2",
		Title: "Parallel quicksort: Parallel Task vs Pyjama vs goroutines",
		Paper: "§IV-C item 2",
		Run:   runP2,
	})
	register(Experiment{
		ID:    "P3",
		Title: "Computational kernels: FFT, MD, graph, linear algebra",
		Paper: "§IV-C item 3",
		Run:   runP3,
	})
	register(Experiment{
		ID:    "P5",
		Title: "Object-oriented reductions in Pyjama",
		Paper: "§IV-C item 5, §V-B",
		Run:   runP5,
	})
}

func timeIt(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// simQuicksortSpeedups simulates the quicksort recursion tree (partition
// cost proportional to range length, children spawned above the
// threshold) on a simulated machine swept over core counts, returning one
// speedup per core count. This is how the speedup *shape* the students
// measured on the PARC machines is reproduced on a single-CPU host.
func simQuicksortSpeedups(n, threshold int, cores []int) []float64 {
	build := func(m *machine.Machine) {
		var spawn func(ctx *machine.Ctx, size int)
		spawn = func(ctx *machine.Ctx, size int) {
			if size <= threshold {
				return
			}
			half := size / 2
			ctx.Spawn(uint64(half), func(c *machine.Ctx) { spawn(c, half) })
			ctx.Spawn(uint64(size-half), func(c *machine.Ctx) { spawn(c, size-half) })
		}
		m.Submit(0, uint64(n), func(ctx *machine.Ctx) { spawn(ctx, n) })
	}
	base := machine.Config{Name: "parc", Procs: 1, SpeedFactor: 1,
		SpawnOverhead: 100, StealLatency: 300}
	m1 := machine.New(base)
	build(m1)
	seq := m1.Run().Makespan
	out := make([]float64, len(cores))
	for i, p := range cores {
		cfg := base
		cfg.Procs = p
		m := machine.New(cfg)
		build(m)
		out[i] = metrics.Speedup(float64(seq), float64(m.Run().Makespan))
	}
	return out
}

func runP2(cfg Config) *Result {
	res := &Result{ID: "P2", Title: "Parallel quicksort"}
	n := 500000
	if cfg.Quick {
		n = 50000
	}
	threshold := 4096
	base := workload.IntArray(cfg.Seed, n, 1<<30)
	want := append([]int(nil), base...)
	sort.Ints(want)

	rt := ptask.NewRuntime(cfg.Workers)
	defer rt.Shutdown()

	correct := true
	tab := metrics.NewTable(fmt.Sprintf("Wall-clock on this host (n=%d, GOMAXPROCS-bound)", n),
		"implementation", "time", "sorted+permutation")
	impls := []struct {
		name string
		run  func([]int)
	}{
		{"sequential", sortalgo.Sequential},
		{"parallel-task", func(xs []int) { sortalgo.PTask(rt, xs, threshold) }},
		{"pyjama", func(xs []int) { sortalgo.Pyjama(cfg.Workers, xs, threshold) }},
		{"goroutines", func(xs []int) { sortalgo.Goroutines(xs, threshold, 8) }},
	}
	for _, im := range impls {
		xs := append([]int(nil), base...)
		d := timeIt(func() { im.run(xs) })
		ok := equalInts(xs, want)
		if !ok {
			correct = false
		}
		tab.AddRow(im.name, d.String(), ok)
	}

	cores := []int{1, 2, 4, 8, 16, 32, 64}
	speedups := simQuicksortSpeedups(n, threshold, cores)
	curve := &metrics.Series{Name: "quicksort"}
	for i, c := range cores {
		curve.Add(float64(c), speedups[i])
	}
	chart := &metrics.Chart{Title: "Simulated speedup on PARC-style machine (work-stealing)",
		XLabel: "cores", YLabel: "speedup"}
	chart.AddSeries(curve)

	var b strings.Builder
	b.WriteString(header(res, "§IV-C item 2"))
	b.WriteString(tab.String())
	b.WriteString("\n")
	b.WriteString(chart.String())
	if cfg.SchedStats {
		b.WriteString("\n")
		b.WriteString(rt.SchedStats().String())
	}
	res.Output = b.String()

	res.ok("all implementations correct", correct)
	res.ok("simulated speedup grows to 8 cores", speedups[3] > speedups[0]*2)
	res.ok("speedup monotone non-decreasing", nonDecreasing(speedups))
	res.ok("sublinear at 64 cores (spawn/steal overheads)", speedups[6] < 64)
	res.metric("speedup_8", speedups[3])
	res.metric("speedup_64", speedups[6])
	return res
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func nonDecreasing(xs []float64) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1]-1e-9 {
			return false
		}
	}
	return true
}

func runP3(cfg Config) *Result {
	res := &Result{ID: "P3", Title: "Computational kernels"}
	fftN, mdN, grN, mmN := 1<<15, 384, 3000, 256
	if cfg.Quick {
		fftN, mdN, grN, mmN = 1<<11, 96, 500, 64
	}
	tab := metrics.NewTable("Kernels: sequential vs Pyjama (wall-clock on this host; equality is exact)",
		"kernel", "size", "seq", "pyjama", "outputs identical")

	// FFT.
	sig := make([]complex128, fftN)
	for i := range sig {
		sig[i] = complex(math.Sin(float64(i)), 0)
	}
	a := append([]complex128(nil), sig...)
	b := append([]complex128(nil), sig...)
	dSeq := timeIt(func() { kernels.FFTSequential(a) })
	dPar := timeIt(func() { kernels.FFTParallel(cfg.Workers, b) })
	fftSame := true
	for i := range a {
		if a[i] != b[i] {
			fftSame = false
			break
		}
	}
	tab.AddRow("fft", fftN, dSeq.String(), dPar.String(), fftSame)

	// Molecular dynamics forces.
	sys := kernels.NewMDSystem(cfg.Seed, mdN, 10)
	sys2 := sys.Clone()
	dSeq = timeIt(sys.ComputeForcesSequential)
	dPar = timeIt(func() { sys2.ComputeForcesParallel(cfg.Workers) })
	mdSame := true
	for i := range sys.Force {
		if sys.Force[i] != sys2.Force[i] {
			mdSame = false
			break
		}
	}
	tab.AddRow("md-forces", mdN, dSeq.String(), dPar.String(), mdSame)

	// PageRank.
	g := workload.GenGraph(cfg.Seed, grN, 8)
	var prSeq, prPar []float64
	dSeq = timeIt(func() { prSeq = kernels.PageRankSequential(g, 0.85, 20) })
	dPar = timeIt(func() { prPar = kernels.PageRankParallel(cfg.Workers, g, 0.85, 20) })
	prSame := kernels.L1Distance(prSeq, prPar) < 1e-12
	tab.AddRow("pagerank", grN, dSeq.String(), dPar.String(), prSame)

	// Matrix multiply.
	ma := kernels.RandomMatrix(cfg.Seed, mmN, mmN)
	mb := kernels.RandomMatrix(cfg.Seed+1, mmN, mmN)
	var mcSeq, mcPar *kernels.Matrix
	dSeq = timeIt(func() { mcSeq = kernels.MatMulSequential(ma, mb) })
	dPar = timeIt(func() { mcPar = kernels.MatMulParallel(cfg.Workers, ma, mb) })
	mmSame := kernels.MaxAbsDiff(mcSeq, mcPar) == 0
	tab.AddRow("matmul", mmN, dSeq.String(), dPar.String(), mmSame)

	// Simulated speedup for the O(n²) MD force loop (uniform per-row
	// cost) on the PARC presets.
	costs := make([]uint64, mdN)
	for i := range costs {
		costs[i] = uint64(mdN) // one row of the pair loop
	}
	simTab := metrics.NewTable("Simulated MD-force speedup on PARC machines",
		"machine", "cores", "speedup", "efficiency")
	machines := []machine.Config{machine.AndroidQuad(), machine.PARC8(), machine.PARC16(), machine.PARC64()}
	var simSpeedups []float64
	for _, mc := range machines {
		st := machine.RunTasks(mc, costs, false)
		// Normalise against the same machine's single-core speed.
		oneCore := mc.WithProcs(1)
		seq := machine.RunTasks(oneCore, costs, false).Makespan
		s := metrics.Speedup(float64(seq), float64(st.Makespan))
		simSpeedups = append(simSpeedups, s)
		simTab.AddRow(mc.Name, mc.Procs, s, metrics.Efficiency(float64(seq), float64(st.Makespan), mc.Procs))
	}

	var sb strings.Builder
	sb.WriteString(header(res, "§IV-C item 3"))
	sb.WriteString(tab.String())
	sb.WriteString("\n")
	sb.WriteString(simTab.String())
	res.Output = sb.String()

	res.ok("fft parallel identical", fftSame)
	res.ok("md parallel identical", mdSame)
	res.ok("pagerank parallel identical", prSame)
	res.ok("matmul parallel identical", mmSame)
	res.ok("simulated speedup ordered android<parc8<parc16<parc64", nonDecreasing(simSpeedups))
	res.metric("parc64_md_speedup", simSpeedups[3])
	return res
}

func runP5(cfg Config) *Result {
	res := &Result{ID: "P5", Title: "Object-oriented reductions"}
	n := 2000000
	if cfg.Quick {
		n = 100000
	}
	tab := metrics.NewTable("Reductions: sequential fold vs parallel (equality exact)",
		"reduction", "n", "seq", "parallel", "equal")

	// Scalar sum (the OpenMP-spec reduction).
	vals := workload.IntArray(cfg.Seed, n, 1000)
	var seqSum, parSum int
	dSeq := timeIt(func() {
		seqSum = 0
		for _, v := range vals {
			seqSum += v
		}
	})
	dPar := timeIt(func() {
		parSum = pyjama.ParallelForReduce(cfg.Workers, n, pyjama.Static(0),
			reduction.Sum[int](), func(i, acc int) int { return acc + vals[i] })
	})
	tab.AddRow("sum (scalar, in spec)", n, dSeq.String(), dPar.String(), seqSum == parSum)
	sumOK := seqSum == parSum

	// Min/max pair.
	minSeq, maxSeq := math.MaxInt, math.MinInt
	for _, v := range vals {
		if v < minSeq {
			minSeq = v
		}
		if v > maxSeq {
			maxSeq = v
		}
	}
	minPar := pyjama.ParallelForReduce(cfg.Workers, n, pyjama.Dynamic(4096),
		reduction.Min[int](math.MaxInt), func(i, acc int) int {
			if vals[i] < acc {
				return vals[i]
			}
			return acc
		})
	tab.AddRow("min (scalar, in spec)", n, "-", "-", minSeq == minPar)

	// Object reduction 1: histogram (map merge) — beyond the OpenMP spec.
	words := make([]string, n/10)
	dict := workload.Dictionary
	for i := range words {
		words[i] = dict[(i*7)%len(dict)]
	}
	var histSeq map[string]int
	dSeq = timeIt(func() {
		histSeq = map[string]int{}
		for _, w := range words {
			histSeq[w]++
		}
	})
	var histPar map[string]int
	dPar = timeIt(func() {
		histPar = reduction.Parallel(cfg.Workers, len(words), reduction.Histogram[string](),
			func(i int) map[string]int { return map[string]int{words[i]: 1} })
	})
	histOK := len(histSeq) == len(histPar)
	for k, v := range histSeq {
		if histPar[k] != v {
			histOK = false
		}
	}
	tab.AddRow("histogram (map merge, OO)", len(words), dSeq.String(), dPar.String(), histOK)

	// Object reduction 2: collection append preserving block order.
	sel := reduction.Parallel(cfg.Workers, n/100, reduction.Append[int](),
		func(i int) []int {
			if vals[i]%7 == 0 {
				return []int{vals[i]}
			}
			return nil
		})
	var selSeq []int
	for i := 0; i < n/100; i++ {
		if vals[i]%7 == 0 {
			selSeq = append(selSeq, vals[i])
		}
	}
	appendOK := len(sel) == len(selSeq)
	if appendOK {
		for i := range sel {
			if sel[i] != selSeq[i] {
				appendOK = false
			}
		}
	}
	tab.AddRow("filter-append (collection, OO)", n/100, "-", "-", appendOK)

	// Object reduction 3: set union.
	uni := reduction.Parallel(cfg.Workers, n/100, reduction.Union[int](),
		func(i int) map[int]struct{} { return map[int]struct{}{vals[i] % 50: {}} })
	unionOK := len(uni) <= 50 && len(uni) > 0
	tab.AddRow("set union (OO)", n/100, "-", "-", unionOK)

	res.Output = header(res, "§IV-C item 5, §V-B") + tab.String() +
		"\nOpenMP restricts reductions to scalar types and fixed operators; the OO\n" +
		"framework extends them to collections, maps and user combiners (§V-B).\n"
	res.ok("scalar sum equal", sumOK)
	res.ok("scalar min equal", minSeq == minPar)
	res.ok("histogram equal", histOK)
	res.ok("append preserves order", appendOK)
	res.ok("union bounded", unionOK)
	return res
}
