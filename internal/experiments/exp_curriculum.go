package experiments

import (
	"fmt"
	"strings"

	"parc751/internal/curriculum"
	"parc751/internal/machine"
	"parc751/internal/metrics"
)

func init() {
	register(Experiment{
		ID:    "ECURR",
		Title: "TCPP curriculum alignment and the speedup laws",
		Paper: "§II (Early Adopter), §III-A weeks 1-5",
		Run:   runECurr,
	})
}

func runECurr(cfg Config) *Result {
	res := &Result{ID: "ECURR", Title: "Curriculum alignment"}
	topics := curriculum.SharedMemoryCore()
	err := curriculum.Validate(topics)

	plan := curriculum.WeekPlan(topics)
	tab := metrics.NewTable("Weeks 1-5 syllabus (TCPP shared-memory core -> runnable artifact)",
		"week", "topic", "level", "artifact")
	for w := 1; w <= 5; w++ {
		for _, t := range plan[w] {
			tab.AddRow(w, t.Name, t.Level.String(), t.Artifact)
		}
	}

	// The week-1 lecture demo: Amdahl's law against the simulated
	// machine, the cross-validation instructors can run live.
	amTab := metrics.NewTable("Amdahl's law vs the simulated machine (f = parallel fraction)",
		"f", "p", "Amdahl", "simulated", "Karp-Flatt serial fraction")
	const totalWork = 1 << 20
	tracks := true
	for _, frac := range []float64{0.5, 0.9, 0.99} {
		for _, p := range []int{4, 16, 64} {
			serialWork := uint64(float64(totalWork) * (1 - frac))
			parallelWork := uint64(totalWork) - serialWork
			run := func(procs int) uint64 {
				m := machine.New(machine.Config{Name: "amdahl", Procs: procs, SpeedFactor: 1})
				const chunks = 256
				m.Submit(0, serialWork, func(ctx *machine.Ctx) {
					for i := 0; i < chunks; i++ {
						ctx.Spawn(parallelWork/chunks, nil)
					}
				})
				return m.Run().Makespan
			}
			measured := float64(run(1)) / float64(run(p))
			predicted := curriculum.AmdahlSpeedup(frac, p)
			if measured < predicted*0.9 || measured > predicted*1.01 {
				tracks = false
			}
			amTab.AddRow(frac, p, predicted, measured,
				fmt.Sprintf("%.3f", curriculum.KarpFlatt(measured, p)))
		}
	}

	var b strings.Builder
	b.WriteString(header(res, "§II, §III-A"))
	b.WriteString(tab.String())
	b.WriteString("\n")
	b.WriteString(amTab.String())
	fmt.Fprintf(&b, "\napply-level share of the syllabus: %.0f%% (§III-E: 'doing or building')\n",
		curriculum.ApplyShare(topics)*100)
	res.Output = b.String()

	res.ok("syllabus valid with runnable artifacts", err == nil)
	res.ok("majority of topics at apply level", curriculum.ApplyShare(topics) >= 0.5)
	res.ok("simulator tracks Amdahl within 10%", tracks)
	res.metric("apply_share", curriculum.ApplyShare(topics))
	return res
}
