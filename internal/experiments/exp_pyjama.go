package experiments

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"parc751/internal/metrics"
	"parc751/internal/pyjama"
)

func init() {
	register(Experiment{
		ID:    "A6",
		Title: "Pyjama schedule ablation: static/dynamic/guided/auto on uniform and skewed loops",
		Paper: "DESIGN.md §5 (A6); Giacaman & Sinnen Pyjama worksharing",
		Run:   runA6,
	})
}

// a6SkewBlock is the period of the skewed workload's cost alternation:
// iterations in odd 512-blocks cost a6SkewFactor times more than the
// rest. The block is larger than auto's probe chunk cap (256), so the
// calibration prefix is guaranteed to time both cheap and expensive
// chunks and see the spread.
const (
	a6SkewBlock  = 512
	a6SkewFactor = 40
	a6BaseRounds = 64
)

// a6Sink absorbs the spin results so the workload cannot be eliminated.
var a6Sink atomic.Uint64

// runA6 is the Pyjama worksharing ablation: the same loop body under
// every schedule kind, on a uniform and a block-skewed cost profile,
// observed through RegionStats. The findings are deterministic shape
// properties (coverage, claim counts, auto's committed decision), not
// wall-clock speedups — this host may be a single core.
func runA6(cfg Config) *Result {
	res := &Result{ID: "A6", Title: "Pyjama schedule ablation"}

	n := 32768
	if cfg.Quick {
		n = 8192
	}
	threads := cfg.Workers
	if threads < 2 {
		threads = 2
	}

	spin := func(rounds int) uint64 {
		acc := uint64(751)
		for j := 0; j < rounds; j++ {
			acc = acc*6364136223846793005 + 1442695040888963407
		}
		return acc
	}

	type a6Run struct {
		workload string
		sched    pyjama.Schedule
		ms       float64
		sum      int64
		stats    pyjama.RegionStats
	}

	workloads := []string{"uniform", "skewed"}
	scheds := []pyjama.Schedule{
		pyjama.Static(0), pyjama.Dynamic(16), pyjama.Guided(16), pyjama.Auto(),
	}
	var runs []a6Run
	for _, wl := range workloads {
		skewed := wl == "skewed"
		for _, sched := range scheds {
			var sum atomic.Int64
			body := func(i int) {
				rounds := a6BaseRounds
				if skewed && (i/a6SkewBlock)%2 == 1 {
					rounds *= a6SkewFactor
				}
				a6Sink.Add(spin(rounds))
				sum.Add(int64(i) + 1)
			}
			start := time.Now()
			stats := pyjama.ParallelWithStats(threads, func(tc *pyjama.TC) {
				tc.For(n, sched, body)
			})
			runs = append(runs, a6Run{
				workload: wl,
				sched:    sched,
				ms:       float64(time.Since(start).Microseconds()) / 1000,
				sum:      sum.Load(),
				stats:    stats,
			})
		}
	}

	tab := metrics.NewTable(
		fmt.Sprintf("Pyjama schedule ablation, n=%d, %d threads", n, threads),
		"workload", "schedule", "time ms", "chunks", "iterations", "auto decision")
	wantSum := int64(n) * int64(n+1) / 2
	covered, barriered := true, true
	var chunksByKey = map[string]int64{}
	var autoByWorkload = map[string]pyjama.AutoDecision{}
	for _, r := range runs {
		auto := ""
		if len(r.stats.Auto) == 1 {
			d := r.stats.Auto[0]
			auto = fmt.Sprintf("%s(%d) spread=%.1f", d.Mode, d.Chunk, d.Spread)
			autoByWorkload[r.workload] = d
		}
		tab.AddRow(r.workload, r.sched.String(), fmt.Sprintf("%.2f", r.ms),
			r.stats.TotalChunks(), r.stats.TotalIterations(), auto)
		if r.sum != wantSum || r.stats.TotalIterations() != int64(n) {
			covered = false
		}
		for _, t := range r.stats.Threads {
			if t.Barrier.Waits < 1 {
				barriered = false
			}
		}
		chunksByKey[r.workload+"/"+r.sched.Kind.String()] = r.stats.TotalChunks()
	}

	skewedAuto, skewedAutoOK := autoByWorkload["skewed"]
	uniformAuto, uniformAutoOK := autoByWorkload["uniform"]

	res.ok("every schedule covered the iteration space exactly once", covered)
	res.ok("guided issues far fewer claims than dynamic on the same loop",
		chunksByKey["uniform/guided"] < chunksByKey["uniform/dynamic"]/4 &&
			chunksByKey["skewed/guided"] < chunksByKey["skewed/dynamic"]/4)
	res.ok("auto committed a schedule decision on both workloads",
		skewedAutoOK && uniformAutoOK &&
			skewedAuto.Mode != "undecided" && uniformAuto.Mode != "undecided")
	res.ok("auto chose dynamic claiming for the block-skewed loop",
		skewedAutoOK && skewedAuto.Mode == "dynamic")
	res.ok("every team member synchronised at the worksharing barrier", barriered)

	res.metric("a6_dynamic_chunks", float64(chunksByKey["uniform/dynamic"]))
	res.metric("a6_guided_chunks", float64(chunksByKey["uniform/guided"]))
	res.metric("a6_skewed_spread", skewedAuto.Spread)
	res.metric("a6_skewed_auto_chunk", float64(skewedAuto.Chunk))

	var b strings.Builder
	b.WriteString(header(res, "DESIGN.md §5 (A6)"))
	b.WriteString(tab.String())
	b.WriteString("\nRegionStats of the skewed schedule(auto) run:\n")
	b.WriteString(runs[len(runs)-1].stats.String())
	res.Output = b.String()
	return res
}
