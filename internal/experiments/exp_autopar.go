package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"parc751/internal/parcpar"
	"parc751/internal/parcpar/autogen/par"
	"parc751/internal/parcpar/autogen/seq"
	"parc751/internal/parcvet/loader"
)

func init() {
	register(Experiment{
		ID:    "A10",
		Title: "parcpar auto-parallelization: fixture classification, committed rewrites regenerate byte-identically, rewrites are checksum-identical and faster",
		Paper: "DESIGN.md §13 (A10); §II research-infusion of dependence analysis",
		Run:   runA10,
	})
}

// a10Expected pins the classification of every candidate loop in the
// autogen fixture package, by enclosing function.
var a10Expected = map[string]parcpar.Class{
	"MatMulFlat":      parcpar.ClassParallel,
	"JacobiSweep":     parcpar.ClassParallel,
	"Forces":          parcpar.ClassParallel,
	"PageRankStep":    parcpar.ClassParallel,
	"ComponentsSweep": parcpar.ClassParallel,
	"SpinSum":         parcpar.ClassReduction,
	"Dot":             parcpar.ClassReduction,
	"maxNeighbor":     parcpar.ClassDependence,
	"PrefixSum":       parcpar.ClassDependence,
	"Shift":           parcpar.ClassDependence,
	"SumUntilNeg":     parcpar.ClassEarlyExit,
	"FindIndex":       parcpar.ClassEarlyExit,
	"LogEach":         parcpar.ClassImpure,
	"Scale3":          parcpar.ClassBelowThreshold,
	"RunningMax":      parcpar.ClassDependence,
	"Histogram":       parcpar.ClassDependence,
}

// runA10 validates the auto-parallelization pipeline end to end:
//
//  1. the analyzer classifies every positive and negative fixture the
//     way the dependence model says it must,
//  2. regenerating autogen/par from autogen/seq reproduces the
//     committed files byte-for-byte,
//  3. each rewritten kernel produces bit-identical results to its
//     sequential original (integer reductions are exactly associative;
//     the float kernels keep their inner summation order), and
//  4. the rewrites are measurably faster on a multi-core host (on a
//     single-core host the assertion degrades to bounded overhead).
func runA10(cfg Config) *Result {
	res := &Result{ID: "A10", Title: "parcpar auto-parallelization"}
	var b strings.Builder
	b.WriteString(header(res, "DESIGN.md §13 (A10); §II research-infusion of dependence analysis"))

	root, err := loader.FindModuleRoot(".")
	if err != nil {
		res.ok("module_root_found", false)
		fmt.Fprintf(&b, "cannot locate module root: %v\n", err)
		res.Output = b.String()
		return res
	}
	res.ok("module_root_found", true)

	// 1. Classification sweep.
	l, err := loader.New(root)
	if err != nil {
		res.ok("fixture_load", false)
		res.Output = b.String() + err.Error()
		return res
	}
	seqDir := filepath.Join(root, "internal", "parcpar", "autogen", "seq")
	pkg, err := l.LoadDir(seqDir, "parc751/internal/parcpar/autogen/seq")
	if err != nil {
		res.ok("fixture_load", false)
		res.Output = b.String() + err.Error()
		return res
	}
	res.ok("fixture_load", true)
	loops, _ := parcpar.AnalyzePackage(l, pkg, parcpar.Options{Explain: true})
	got := map[string]parcpar.Class{}
	for _, lp := range loops {
		got[lp.Func] = lp.Class
	}
	b.WriteString("fixture            want            got\n")
	for _, lp := range loops {
		want, known := a10Expected[lp.Func]
		pass := known && got[lp.Func] == want
		res.ok("classify_"+lp.Func, pass)
		fmt.Fprintf(&b, "%-18s %-15s %s\n", lp.Func, want, got[lp.Func])
	}
	for fn := range a10Expected {
		if _, present := got[fn]; !present {
			res.ok("classify_"+fn, false)
			fmt.Fprintf(&b, "%-18s %-15s (no candidate loop)\n", fn, a10Expected[fn])
		}
	}

	// 2. Regeneration byte-identity.
	outDir, err := os.MkdirTemp("", "parcpar-a10-")
	if err == nil {
		defer os.RemoveAll(outDir)
		written, gerr := parcpar.GenerateDir(root, seqDir, outDir, "par")
		identical := gerr == nil && len(written) > 0
		for _, name := range written {
			gotSrc, e1 := os.ReadFile(filepath.Join(outDir, name))
			wantSrc, e2 := os.ReadFile(filepath.Join(root, "internal", "parcpar", "autogen", "par", name))
			if e1 != nil || e2 != nil || string(gotSrc) != string(wantSrc) {
				identical = false
			}
		}
		res.ok("regen_byte_identical", identical)
		fmt.Fprintf(&b, "\nregenerated %v byte-identical to committed: %v\n", written, identical)
	} else {
		res.ok("regen_byte_identical", false)
	}

	// 3 + 4. Checksum equality and speedup, per kernel.
	n := 192
	vec := 1 << 15
	spins := 1 << 22
	if cfg.Quick {
		n, vec, spins = 48, 4096, 1<<18
	}
	rng := cfg.Seed
	next := func() float64 {
		rng += 0x9e3779b97f4a7c15
		z := rng
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		return float64(z%1000)/1000 + 0.001
	}
	fvec := func(m int) []float64 {
		xs := make([]float64, m)
		for i := range xs {
			xs[i] = next()
		}
		return xs
	}

	type kernel struct {
		name string
		run  func(parallel bool) any
	}
	a, bm := fvec(n*n), fvec(n*n)
	x, rhs := fvec(vec), fvec(vec)
	pos := fvec(vec / 8)
	deg := make([]int, vec)
	adj := make([][]int, vec/8)
	label := make([]int, vec/8)
	for i := range deg {
		deg[i] = 1 + i%7
	}
	for i := range adj {
		adj[i] = []int{(i + 1) % len(adj), (i + 7) % len(adj), (i * 13) % len(adj)}
		label[i] = (i * 31) % len(adj)
	}
	ia, ib := make([]int64, vec), make([]int64, vec)
	for i := range ia {
		ia[i] = int64(i*3 + 1)
		ib[i] = int64(i*7 - 5)
	}

	kernels := []kernel{
		{"MatMulFlat", func(p bool) any {
			c := make([]float64, n*n)
			if p {
				par.MatMulFlat(c, a, bm, n)
			} else {
				seq.MatMulFlat(c, a, bm, n)
			}
			return fmt.Sprint(c[:8], c[len(c)-8:], sumF(c))
		}},
		{"JacobiSweep", func(p bool) any {
			out := make([]float64, vec)
			if p {
				par.JacobiSweep(out, x, rhs)
			} else {
				seq.JacobiSweep(out, x, rhs)
			}
			return fmt.Sprint(out[:4], sumF(out))
		}},
		{"Forces", func(p bool) any {
			out := make([]float64, len(pos))
			if p {
				par.Forces(out, pos)
			} else {
				seq.Forces(out, pos)
			}
			return fmt.Sprint(out[:4], sumF(out))
		}},
		{"PageRankStep", func(p bool) any {
			out := make([]float64, vec)
			if p {
				par.PageRankStep(out, x, deg)
			} else {
				seq.PageRankStep(out, x, deg)
			}
			return fmt.Sprint(out[:4], sumF(out))
		}},
		{"ComponentsSweep", func(p bool) any {
			out := make([]int, len(adj))
			if p {
				par.ComponentsSweep(out, label, adj)
			} else {
				seq.ComponentsSweep(out, label, adj)
			}
			return fmt.Sprint(out[:4], sumI(out))
		}},
		{"SpinSum", func(p bool) any {
			if p {
				return par.SpinSum(spins, cfg.Seed)
			}
			return seq.SpinSum(spins, cfg.Seed)
		}},
		{"Dot", func(p bool) any {
			if p {
				return par.Dot(ia, ib)
			}
			return seq.Dot(ia, ib)
		}},
	}

	time1 := func(f func()) time.Duration {
		best := time.Duration(1<<63 - 1)
		reps := 3
		if cfg.Quick {
			reps = 2
		}
		for r := 0; r < reps; r++ {
			start := time.Now()
			f()
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}

	multiCore := runtime.NumCPU() > 1
	fmt.Fprintf(&b, "\nhost: %d CPU(s); speedup asserted only on multi-core hosts\n", runtime.NumCPU())
	b.WriteString("kernel            checksum  seq          par          speedup\n")
	for _, k := range kernels {
		seqOut := k.run(false)
		parOut := k.run(true)
		same := seqOut == parOut
		res.ok("checksum_"+k.name, same)

		seqNs := time1(func() { k.run(false) })
		parNs := time1(func() { k.run(true) })
		sp := float64(seqNs) / float64(parNs)
		res.metric("speedup_"+k.name, sp)
		if multiCore {
			res.ok("speedup_"+k.name, sp > 1)
		} else if seqNs > 200*time.Microsecond {
			// One core cannot speed up; for kernels big enough to
			// amortize the fork-join, require the rewrite to stay
			// within bounded overhead of sequential. Microsecond-scale
			// kernels at quick sizes are all overhead and only logged.
			res.ok("overhead_bounded_"+k.name, sp > 0.2)
		}
		fmt.Fprintf(&b, "%-17s %-9v %-12v %-12v %.2fx\n", k.name, same, seqNs, parNs, sp)
	}
	res.Output = b.String()
	return res
}

func sumF(xs []float64) float64 {
	var s float64
	for _, v := range xs {
		s += v
	}
	return s
}

func sumI(xs []int) int {
	s := 0
	for _, v := range xs {
		s += v
	}
	return s
}
