package patterns

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"testing/quick"

	"parc751/internal/ptask"
)

func newRT(t *testing.T, workers int) *ptask.Runtime {
	t.Helper()
	rt := ptask.NewRuntime(workers)
	t.Cleanup(rt.Shutdown)
	return rt
}

func mapperSet(rt *ptask.Runtime) map[string]Mapper {
	return map[string]Mapper{
		"seq":     SeqMapper{},
		"task":    TaskMapper{RT: rt},
		"chunked": ChunkedMapper{RT: rt, Chunk: 16},
		"switch": Switchable{Seq: SeqMapper{}, Par: TaskMapper{RT: rt},
			Threshold: 32},
	}
}

func TestMappersCoverEveryIndex(t *testing.T) {
	rt := newRT(t, 4)
	for name, m := range mapperSet(rt) {
		for _, n := range []int{0, 1, 31, 32, 100} {
			counts := make([]atomic.Int32, n)
			m.Map(n, func(i int) { counts[i].Add(1) })
			for i := range counts {
				if counts[i].Load() != 1 {
					t.Fatalf("%s n=%d: index %d ran %d times", name, n, i, counts[i].Load())
				}
			}
		}
	}
}

func TestMappersAgreeProperty(t *testing.T) {
	rt := newRT(t, 3)
	ms := mapperSet(rt)
	f := func(nRaw uint8) bool {
		n := int(nRaw)
		want := int64(n) * int64(n+1) / 2
		for _, m := range ms {
			var sum atomic.Int64
			m.Map(n, func(i int) { sum.Add(int64(i + 1)) })
			if sum.Load() != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSwitchableThreshold(t *testing.T) {
	rt := newRT(t, 2)
	var parCalls atomic.Int32
	probe := mapperFunc(func(n int, body func(int)) {
		parCalls.Add(1)
		SeqMapper{}.Map(n, body)
	})
	s := Switchable{Seq: SeqMapper{}, Par: probe, Threshold: 50}
	s.Map(10, func(int) {})
	if parCalls.Load() != 0 {
		t.Fatal("small problem went parallel")
	}
	s.Map(100, func(int) {})
	if parCalls.Load() != 1 {
		t.Fatal("large problem did not go parallel")
	}
	// Nil parallel implementation degrades to sequential.
	s2 := Switchable{Seq: SeqMapper{}, Threshold: 0}
	ran := 0
	s2.Map(5, func(int) { ran++ })
	if ran != 5 {
		t.Fatal("nil-par switchable broken")
	}
	_ = rt
}

// mapperFunc adapts a function to Mapper for test probes.
type mapperFunc func(n int, body func(int))

func (f mapperFunc) Map(n int, body func(int)) { f(n, body) }

func TestFarmOrderAndErrors(t *testing.T) {
	rt := newRT(t, 4)
	f := Farm[int, string]{RT: rt, Work: func(j int) (string, error) {
		if j == 13 {
			return "", errors.New("unlucky")
		}
		return fmt.Sprintf("job%d", j), nil
	}}
	jobs := make([]int, 50)
	for i := range jobs {
		jobs[i] = i
	}
	results, err := f.Process(jobs)
	if err == nil {
		t.Fatal("farm swallowed the job error")
	}
	if len(results) != 50 {
		t.Fatalf("results = %d", len(results))
	}
	for i, r := range results {
		if i == 13 {
			continue
		}
		if r != fmt.Sprintf("job%d", i) {
			t.Fatalf("result %d = %q (order broken)", i, r)
		}
	}
}

func TestFarmEmpty(t *testing.T) {
	rt := newRT(t, 2)
	f := Farm[int, int]{RT: rt, Work: func(j int) (int, error) { return j, nil }}
	results, err := f.Process(nil)
	if err != nil || len(results) != 0 {
		t.Fatalf("empty farm = %v, %v", results, err)
	}
}

func TestPipelineAppliesStagesInOrder(t *testing.T) {
	rt := newRT(t, 4)
	p := Pipeline[int]{RT: rt, Stages: []Stage[int]{
		func(x int) int { return x + 1 },
		func(x int) int { return x * 10 },
		func(x int) int { return x - 3 },
	}}
	out := p.Run([]int{0, 1, 2, 3, 4})
	for i, v := range out {
		want := (i+1)*10 - 3
		if v != want {
			t.Fatalf("item %d = %d, want %d", i, v, want)
		}
	}
}

func TestPipelineNoStages(t *testing.T) {
	rt := newRT(t, 2)
	p := Pipeline[string]{RT: rt}
	out := p.Run([]string{"a", "b"})
	if len(out) != 2 || out[0] != "a" || out[1] != "b" {
		t.Fatalf("identity pipeline = %v", out)
	}
}

func TestPipelineEmptyInput(t *testing.T) {
	rt := newRT(t, 2)
	p := Pipeline[int]{RT: rt, Stages: []Stage[int]{func(x int) int { return x }}}
	if out := p.Run(nil); len(out) != 0 {
		t.Fatalf("empty pipeline output = %v", out)
	}
}

func TestPipelineStageOrderingPerItem(t *testing.T) {
	// Every item must observe stage s-1's effect before stage s runs:
	// encode the visited stages in the value itself.
	rt := newRT(t, 4)
	const stages = 5
	var sts []Stage[int]
	for s := 0; s < stages; s++ {
		s := s
		sts = append(sts, func(x int) int {
			// x must contain exactly stages 0..s-1 already.
			if x != (1<<s)-1 {
				return -1000000 // poison: out-of-order execution
			}
			return x | 1<<s
		})
	}
	p := Pipeline[int]{RT: rt, Stages: sts}
	items := make([]int, 20) // all zero
	out := p.Run(items)
	for i, v := range out {
		if v != (1<<stages)-1 {
			t.Fatalf("item %d saw out-of-order stages: %d", i, v)
		}
	}
}

func TestDivideConquerSum(t *testing.T) {
	rt := newRT(t, 4)
	type rng struct{ lo, hi int }
	dc := DivideConquer[rng, int]{
		RT:     rt,
		IsBase: func(p rng) bool { return p.hi-p.lo <= 8 },
		Solve: func(p rng) int {
			s := 0
			for i := p.lo; i < p.hi; i++ {
				s += i
			}
			return s
		},
		Split: func(p rng) []rng {
			mid := (p.lo + p.hi) / 2
			return []rng{{p.lo, mid}, {mid, p.hi}}
		},
		Merge: func(rs []int) int { return rs[0] + rs[1] },
	}
	if got := dc.Run(rng{0, 1000}); got != 499500 {
		t.Fatalf("sum = %d", got)
	}
}

func TestDivideConquerSingleWorkerNoDeadlock(t *testing.T) {
	rt := newRT(t, 1)
	type rng struct{ lo, hi int }
	dc := DivideConquer[rng, int]{
		RT:     rt,
		IsBase: func(p rng) bool { return p.hi-p.lo <= 4 },
		Solve:  func(p rng) int { return p.hi - p.lo },
		Split: func(p rng) []rng {
			mid := (p.lo + p.hi) / 2
			return []rng{{p.lo, mid}, {mid, p.hi}}
		},
		Merge: func(rs []int) int { return rs[0] + rs[1] },
	}
	if got := dc.Run(rng{0, 256}); got != 256 {
		t.Fatalf("count = %d", got)
	}
}

func BenchmarkTaskMapper(b *testing.B) {
	rt := ptask.NewRuntime(4)
	defer rt.Shutdown()
	m := TaskMapper{RT: rt}
	for i := 0; i < b.N; i++ {
		m.Map(100, func(int) {})
	}
}

func BenchmarkChunkedMapper(b *testing.B) {
	rt := ptask.NewRuntime(4)
	defer rt.Shutdown()
	m := ChunkedMapper{RT: rt, Chunk: 25}
	for i := 0; i < b.N; i++ {
		m.Map(100, func(int) {})
	}
}

func BenchmarkPipeline(b *testing.B) {
	rt := ptask.NewRuntime(4)
	defer rt.Shutdown()
	p := Pipeline[int]{RT: rt, Stages: []Stage[int]{
		func(x int) int { return x + 1 },
		func(x int) int { return x * 2 },
	}}
	items := make([]int, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Run(items)
	}
}
