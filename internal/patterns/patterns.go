// Package patterns reproduces the §V-B research outcome "the conception
// of parallel programming patterns using Parallel Task": one student
// project used the inheritance and encapsulation features of an
// object-oriented language to let a programmer "elegantly alternate
// between parallel and sequential functionality". In Go that idea maps
// onto interfaces: every pattern here is an Executor with interchangeable
// sequential and parallel implementations, so call sites switch between
// them without changing shape — plus the classic algorithmic skeletons
// (map, farm, pipeline, divide-and-conquer) built on the Parallel Task
// runtime.
package patterns

import (
	"parc751/internal/ptask"
)

// Mapper applies an element transformation to every index of a problem —
// the pattern interface whose implementations are interchangeable.
type Mapper interface {
	// Map invokes body(i) for every i in [0, n).
	Map(n int, body func(i int))
}

// SeqMapper runs the map sequentially — the "alternate to sequential"
// implementation used for debugging, small inputs, or measurement.
type SeqMapper struct{}

// Map implements Mapper.
func (SeqMapper) Map(n int, body func(i int)) {
	for i := 0; i < n; i++ {
		body(i)
	}
}

// TaskMapper runs the map as a Parallel Task multi-task.
type TaskMapper struct {
	RT *ptask.Runtime
}

// Map implements Mapper.
func (m TaskMapper) Map(n int, body func(i int)) {
	multi := ptask.RunMulti(m.RT, n, func(i int) (struct{}, error) {
		body(i)
		return struct{}{}, nil
	})
	_, _ = multi.Results()
}

// ChunkedMapper runs the map as ceil(n/Chunk) tasks over contiguous
// blocks, amortising per-task overhead — the granularity-tuned variant.
type ChunkedMapper struct {
	RT    *ptask.Runtime
	Chunk int
}

// Map implements Mapper.
func (m ChunkedMapper) Map(n int, body func(i int)) {
	chunk := m.Chunk
	if chunk < 1 {
		chunk = 1
	}
	blocks := (n + chunk - 1) / chunk
	multi := ptask.RunMulti(m.RT, blocks, func(b int) (struct{}, error) {
		lo := b * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			body(i)
		}
		return struct{}{}, nil
	})
	_, _ = multi.Results()
}

// Switchable selects between a sequential and a parallel Mapper at
// runtime based on problem size — the pattern the students built: the
// call site stays identical while the execution strategy changes.
type Switchable struct {
	Seq       Mapper
	Par       Mapper
	Threshold int // problems smaller than this run sequentially
}

// Map implements Mapper.
func (s Switchable) Map(n int, body func(i int)) {
	if n < s.Threshold || s.Par == nil {
		s.Seq.Map(n, body)
		return
	}
	s.Par.Map(n, body)
}

// Farm is the master-worker skeleton: jobs are submitted to the runtime
// and results collected in completion order via a channel.
type Farm[J, R any] struct {
	RT   *ptask.Runtime
	Work func(J) (R, error)
}

// Process runs every job through the farm and returns the results in job
// order (errors per job, first error also returned).
func (f Farm[J, R]) Process(jobs []J) ([]R, error) {
	multi := ptask.RunMulti(f.RT, len(jobs), func(i int) (R, error) {
		return f.Work(jobs[i])
	})
	return multi.Results()
}

// Stage is one pipeline stage transforming values.
type Stage[T any] func(T) T

// Pipeline chains stages over a stream of items: item k enters stage s
// only after item k finished stage s-1, and different items occupy
// different stages concurrently — the classic dataflow skeleton expressed
// through task dependences.
type Pipeline[T any] struct {
	RT     *ptask.Runtime
	Stages []Stage[T]
}

// Run pushes all items through the pipeline and returns the fully
// processed items in input order.
func (p Pipeline[T]) Run(items []T) []T {
	if len(p.Stages) == 0 {
		return append([]T(nil), items...)
	}
	// tasks[k] is item k's task for the current stage; each next stage
	// depends on the same item's previous stage. (The per-stage serial
	// order of distinct items is maintained by the scheduler's FIFO
	// handling of equally-ready tasks; correctness only needs the
	// item-chain dependences.)
	tasks := make([]*ptask.Task[T], len(items))
	for k, it := range items {
		it := it
		tasks[k] = ptask.Run(p.RT, func() (T, error) { return p.Stages[0](it), nil })
	}
	for s := 1; s < len(p.Stages); s++ {
		stage := p.Stages[s]
		for k := range tasks {
			prev := tasks[k]
			tasks[k] = ptask.RunAfter(p.RT, []ptask.Dep{prev}, func() (T, error) {
				v, err := prev.Result()
				if err != nil {
					return v, err
				}
				return stage(v), nil
			})
		}
	}
	out := make([]T, len(items))
	for k, t := range tasks {
		v, _ := t.Result()
		out[k] = v
	}
	return out
}

// DivideConquer is the recursive skeleton: problems above the threshold
// split, sub-results merge; below it, the sequential solver runs.
type DivideConquer[P, R any] struct {
	RT *ptask.Runtime
	// IsBase reports whether the problem is small enough to solve
	// directly.
	IsBase func(P) bool
	// Solve handles a base-case problem.
	Solve func(P) R
	// Split divides a problem into sub-problems.
	Split func(P) []P
	// Merge combines sub-results (same order as Split's sub-problems).
	Merge func([]R) R
}

// Run executes the skeleton, spawning one task per sub-problem.
func (d DivideConquer[P, R]) Run(problem P) R {
	if d.IsBase(problem) {
		return d.Solve(problem)
	}
	subs := d.Split(problem)
	multi := ptask.RunMulti(d.RT, len(subs), func(i int) (R, error) {
		return d.Run(subs[i]), nil
	})
	results, _ := multi.Results()
	return d.Merge(results)
}
