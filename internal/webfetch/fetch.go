package webfetch

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"parc751/internal/ptask"
)

// FetchResult is the outcome of downloading one URL.
type FetchResult struct {
	URL   string
	Bytes int
	Err   error
}

// Fetcher downloads page sets concurrently with Parallel Task, bounding
// in-flight requests with a connection budget — the real (non-simulated)
// implementation of the project, used against a loopback server in tests
// and examples.
type Fetcher struct {
	rt     *ptask.Runtime
	client *http.Client
	conns  int
	sem    chan struct{}

	// Failure handling (failure.go): per-request timeout, optional retry
	// budget with deterministic backoff, optional circuit breaker.
	timeout time.Duration
	retry   *ptask.RetryPolicy
	breaker *Breaker

	fetched atomic.Int64
	bytes   atomic.Int64
	retries atomic.Int64
}

// NewFetcher creates a fetcher with the given concurrent-connection
// budget (minimum 1). A nil client uses http.DefaultClient.
func NewFetcher(rt *ptask.Runtime, client *http.Client, conns int) *Fetcher {
	if conns < 1 {
		conns = 1
	}
	if client == nil {
		client = http.DefaultClient
	}
	return &Fetcher{rt: rt, client: client, conns: conns,
		timeout: DefaultTimeout, sem: make(chan struct{}, conns)}
}

// Conns returns the connection budget.
func (f *Fetcher) Conns() int { return f.conns }

// Fetched returns the number of completed requests.
func (f *Fetcher) Fetched() int64 { return f.fetched.Load() }

// BytesRead returns the total body bytes read.
func (f *Fetcher) BytesRead() int64 { return f.bytes.Load() }

// FetchAll downloads every URL, at most `conns` concurrently, and returns
// results in input order. onDone, if non-nil, streams results as they
// complete (event-loop delivered when the runtime has one). FetchAllCtx
// (failure.go) is the cancellable variant.
func (f *Fetcher) FetchAll(urls []string, onDone func(FetchResult)) []FetchResult {
	return f.FetchAllCtx(context.Background(), urls, onDone)
}

// fetchOne downloads url once (plus any retry budget), bounded by the
// per-request timeout and gated by the circuit breaker when one is set.
// Each retry attempt gets a fresh timeout; cancellations and deadline
// expiries are terminal (retrying them only burns the budget).
func (f *Fetcher) fetchOne(ctx context.Context, url string) FetchResult {
	var res FetchResult
	attempt := 0
	for {
		res = f.fetchAttempt(ctx, url)
		if res.Err == nil || f.retry == nil || attempt >= f.retry.MaxAttempts-1 ||
			errors.Is(res.Err, context.Canceled) || errors.Is(res.Err, context.DeadlineExceeded) ||
			errors.Is(res.Err, ErrCircuitOpen) {
			break
		}
		timer := time.NewTimer(f.retry.Backoff(attempt))
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			f.fetched.Add(1)
			return FetchResult{URL: url, Err: ctx.Err()}
		}
		timer.Stop()
		f.retries.Add(1)
		attempt++
	}
	f.fetched.Add(1)
	f.bytes.Add(int64(res.Bytes))
	return res
}

// fetchAttempt is one network round trip.
func (f *Fetcher) fetchAttempt(ctx context.Context, url string) FetchResult {
	if f.breaker != nil {
		if err := f.breaker.Allow(); err != nil {
			return FetchResult{URL: url, Err: fmt.Errorf("webfetch: %s refused: %w", url, err)}
		}
	}
	rctx := ctx
	if f.timeout > 0 {
		var cancel context.CancelFunc
		rctx, cancel = context.WithTimeout(ctx, f.timeout)
		defer cancel()
	}
	res := func() FetchResult {
		req, err := http.NewRequestWithContext(rctx, http.MethodGet, url, nil)
		if err != nil {
			return FetchResult{URL: url, Err: err}
		}
		resp, err := f.client.Do(req)
		if err != nil {
			return FetchResult{URL: url, Err: err}
		}
		defer resp.Body.Close()
		n, err := io.Copy(io.Discard, resp.Body)
		if err == nil && resp.StatusCode != http.StatusOK {
			err = fmt.Errorf("webfetch: %s returned %s", url, resp.Status)
		}
		return FetchResult{URL: url, Bytes: int(n), Err: err}
	}()
	if f.breaker != nil {
		f.breaker.Report(res.Err)
	}
	return res
}

// TimedFetchAll runs FetchAll and reports the wall-clock duration, the
// measurement the connection-sweep example prints.
func (f *Fetcher) TimedFetchAll(urls []string) ([]FetchResult, time.Duration) {
	start := time.Now()
	res := f.FetchAll(urls, nil)
	return res, time.Since(start)
}
