package webfetch

import (
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"parc751/internal/ptask"
)

// FetchResult is the outcome of downloading one URL.
type FetchResult struct {
	URL   string
	Bytes int
	Err   error
}

// Fetcher downloads page sets concurrently with Parallel Task, bounding
// in-flight requests with a connection budget — the real (non-simulated)
// implementation of the project, used against a loopback server in tests
// and examples.
type Fetcher struct {
	rt     *ptask.Runtime
	client *http.Client
	conns  int
	sem    chan struct{}

	fetched atomic.Int64
	bytes   atomic.Int64
}

// NewFetcher creates a fetcher with the given concurrent-connection
// budget (minimum 1). A nil client uses http.DefaultClient.
func NewFetcher(rt *ptask.Runtime, client *http.Client, conns int) *Fetcher {
	if conns < 1 {
		conns = 1
	}
	if client == nil {
		client = http.DefaultClient
	}
	return &Fetcher{rt: rt, client: client, conns: conns,
		sem: make(chan struct{}, conns)}
}

// Conns returns the connection budget.
func (f *Fetcher) Conns() int { return f.conns }

// Fetched returns the number of completed requests.
func (f *Fetcher) Fetched() int64 { return f.fetched.Load() }

// BytesRead returns the total body bytes read.
func (f *Fetcher) BytesRead() int64 { return f.bytes.Load() }

// FetchAll downloads every URL, at most `conns` concurrently, and returns
// results in input order. onDone, if non-nil, streams results as they
// complete (event-loop delivered when the runtime has one).
func (f *Fetcher) FetchAll(urls []string, onDone func(FetchResult)) []FetchResult {
	multi := ptask.RunMulti(f.rt, len(urls), func(i int) (FetchResult, error) {
		f.sem <- struct{}{}
		defer func() { <-f.sem }()
		return f.fetchOne(urls[i]), nil
	})
	if onDone != nil {
		multi.NotifyEach(func(_ int, r FetchResult, err error) { onDone(r) })
	}
	out, _ := multi.Results()
	return out
}

func (f *Fetcher) fetchOne(url string) FetchResult {
	resp, err := f.client.Get(url)
	if err != nil {
		f.fetched.Add(1)
		return FetchResult{URL: url, Err: err}
	}
	defer resp.Body.Close()
	n, err := io.Copy(io.Discard, resp.Body)
	if err == nil && resp.StatusCode != http.StatusOK {
		err = fmt.Errorf("webfetch: %s returned %s", url, resp.Status)
	}
	f.fetched.Add(1)
	f.bytes.Add(n)
	return FetchResult{URL: url, Bytes: int(n), Err: err}
}

// TimedFetchAll runs FetchAll and reports the wall-clock duration, the
// measurement the connection-sweep example prints.
func (f *Fetcher) TimedFetchAll(urls []string) ([]FetchResult, time.Duration) {
	start := time.Now()
	res := f.FetchAll(urls, nil)
	return res, time.Since(start)
}
