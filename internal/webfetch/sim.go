// Package webfetch is project 10 of the reproduced paper: "fast web access
// through concurrent connections". Network latency makes it profitable to
// open several connections at once; the project's research question is how
// many. Two substrates are provided:
//
//   - a deterministic processor-sharing network simulation (Simulate):
//     every transfer first spends a fixed round-trip latency, then shares
//     the server's bandwidth equally with all concurrently transferring
//     connections. Sweeping the connection count over this model
//     reproduces the knee the students measured (adding connections hides
//     latency until bandwidth saturates, after which per-connection
//     overhead makes things worse);
//
//   - a real concurrent downloader over net/http (fetch.go), driven by
//     Parallel Task, exercised in tests against a local loopback server
//     with injected latency.
package webfetch

import (
	"math"

	"parc751/internal/workload"
	"parc751/internal/xrand"
)

// SimConfig describes the simulated network.
type SimConfig struct {
	RTT          float64 // seconds of latency before each transfer starts
	Bandwidth    float64 // server bytes/second, shared by active transfers
	ConnOverhead float64 // seconds of client-side setup per request
	// Jitter adds a deterministic pseudo-random extra latency in
	// [0, Jitter) seconds per request, seeded by JitterSeed — real
	// networks do not serve every request in exactly RTT.
	Jitter     float64
	JitterSeed uint64
}

// DefaultSimConfig models a mid-2013 home connection fetching from a
// remote server: 80 ms RTT, 2 MB/s, 2 ms per-request client overhead.
func DefaultSimConfig() SimConfig {
	return SimConfig{RTT: 0.080, Bandwidth: 2e6, ConnOverhead: 0.002}
}

// SimResult summarises one simulated download run.
type SimResult struct {
	Makespan   float64 // seconds until the last page completed
	TotalBytes int
	Throughput float64 // bytes/second over the makespan
}

// transfer is one in-flight page in the simulator.
type transfer struct {
	remaining float64 // bytes left (after latency phase)
	latencyAt float64 // absolute time when the latency phase ends (-1 if over)
}

// Simulate downloads the pages over the simulated network with at most
// conns concurrent connections and returns the run summary. The model is
// egalitarian processor sharing: while k transfers are in their data
// phase, each receives Bandwidth/k.
func Simulate(pages []workload.Page, conns int, cfg SimConfig) SimResult {
	if conns < 1 {
		conns = 1
	}
	total := 0
	for _, p := range pages {
		total += p.Bytes
	}
	if len(pages) == 0 {
		return SimResult{}
	}

	now := 0.0
	next := 0 // next page to start
	active := map[int]*transfer{}
	idle := conns
	jitter := xrand.New(cfg.JitterSeed)

	start := func() {
		for idle > 0 && next < len(pages) {
			lat := cfg.ConnOverhead + cfg.RTT
			if cfg.Jitter > 0 {
				lat += jitter.Float64() * cfg.Jitter
			}
			tr := &transfer{
				remaining: float64(pages[next].Bytes),
				latencyAt: now + lat,
			}
			active[next] = tr
			next++
			idle--
		}
	}
	start()

	for len(active) > 0 {
		// Count transfers in the data phase and find the next event:
		// either a latency phase ends or a data transfer drains.
		dataPhase := 0
		nextEvent := math.Inf(1)
		for _, tr := range active {
			if tr.latencyAt >= 0 && tr.latencyAt > now {
				if tr.latencyAt < nextEvent {
					nextEvent = tr.latencyAt
				}
			} else {
				dataPhase++
			}
		}
		if dataPhase > 0 {
			rate := cfg.Bandwidth / float64(dataPhase)
			for _, tr := range active {
				if tr.latencyAt < 0 || tr.latencyAt <= now {
					if t := now + tr.remaining/rate; t < nextEvent {
						nextEvent = t
					}
				}
			}
			// Drain all data-phase transfers by the elapsed time. A
			// transfer completes when its finish time is at (or within
			// floating-point tolerance of) the event time: comparing
			// times rather than residual bytes is what guarantees the
			// minimum-finish transfer — which defined nextEvent — is
			// removed, so the loop always makes progress even when
			// `nextEvent - now` underflows against a large clock value.
			elapsed := nextEvent - now
			eps := 1e-12 * (1 + math.Abs(nextEvent))
			for id, tr := range active {
				if tr.latencyAt < 0 || tr.latencyAt <= now {
					if now+tr.remaining/rate <= nextEvent+eps {
						delete(active, id)
						idle++
					} else {
						tr.remaining -= elapsed * rate
					}
				} else if tr.latencyAt <= nextEvent {
					tr.latencyAt = -1 // latency phase completed exactly now
				}
			}
		} else {
			// Everyone is still in latency; jump to the first exit.
			for _, tr := range active {
				if tr.latencyAt <= nextEvent {
					tr.latencyAt = -1
				}
			}
		}
		now = nextEvent
		start()
	}
	res := SimResult{Makespan: now, TotalBytes: total}
	if now > 0 {
		res.Throughput = float64(total) / now
	}
	return res
}

// Sweep simulates the same page set for every connection count in conns
// and returns the makespans in order — the project's headline curve.
func Sweep(pages []workload.Page, conns []int, cfg SimConfig) []SimResult {
	out := make([]SimResult, len(conns))
	for i, k := range conns {
		out[i] = Simulate(pages, k, cfg)
	}
	return out
}

// BestConnections returns the connection count from candidates with the
// smallest simulated makespan.
func BestConnections(pages []workload.Page, candidates []int, cfg SimConfig) int {
	best, bestT := 1, math.Inf(1)
	for _, k := range candidates {
		if t := Simulate(pages, k, cfg).Makespan; t < bestT {
			best, bestT = k, t
		}
	}
	return best
}

// LowerBound returns the physical floor on the makespan: the pipes can't
// move bytes faster than Bandwidth, and no page finishes before one
// latency turn.
func LowerBound(pages []workload.Page, cfg SimConfig) float64 {
	total := 0
	for _, p := range pages {
		total += p.Bytes
	}
	lb := float64(total) / cfg.Bandwidth
	if len(pages) > 0 && cfg.RTT > lb {
		lb = cfg.RTT
	}
	return lb
}
