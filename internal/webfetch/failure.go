// Failure handling for the real downloader: per-request timeouts, retry
// budgets with deterministic backoff (reusing ptask.RetryPolicy), and a
// trip-after-K circuit breaker with half-open probing. Together with the
// faultinject.RoundTripper these make the webfetch project the
// transport-layer target of the A8 chaos experiment.
package webfetch

import (
	"context"
	"errors"
	"sync"
	"time"

	"parc751/internal/ptask"
)

// DefaultTimeout bounds each request (including retriable attempts
// individually) when the caller does not pick a budget. Before this
// default existed a single hung connection could wedge a fetch forever.
const DefaultTimeout = 30 * time.Second

// ErrCircuitOpen is returned (wrapped) for requests refused because the
// circuit breaker is open: the origin has failed enough consecutive times
// that hammering it further is pointless.
var ErrCircuitOpen = errors.New("webfetch: circuit open")

// BreakerState is the circuit breaker's observable state.
type BreakerState int32

const (
	// BreakerClosed passes requests through (the healthy state).
	BreakerClosed BreakerState = iota
	// BreakerOpen refuses requests until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen lets exactly one probe through; its outcome decides
	// between closing and re-opening.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "?"
}

// Breaker is a consecutive-failure circuit breaker: Threshold failures in
// a row trip it open, Allow refuses requests for Cooldown, then a single
// probe is admitted (half-open). The probe's success closes the circuit;
// its failure re-opens it for another cooldown. Success at any point
// resets the failure count.
type Breaker struct {
	mu          sync.Mutex
	threshold   int
	cooldown    time.Duration
	state       BreakerState
	consecutive int
	openedAt    time.Time
	probing     bool
	trips       int64

	// now is the clock, replaceable in tests so cooldown transitions are
	// deterministic rather than sleep-based.
	now func() time.Time
}

// NewBreaker creates a breaker tripping after threshold consecutive
// failures (minimum 1) and probing again after cooldown.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Allow reports whether a request may proceed. It returns ErrCircuitOpen
// while the breaker is open (or while a half-open probe is already in
// flight); callers must pair every nil return with a later Report.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return nil
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return ErrCircuitOpen
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return nil
	default: // half-open
		if b.probing {
			return ErrCircuitOpen
		}
		b.probing = true
		return nil
	}
}

// Report records the outcome of a request admitted by Allow.
func (b *Breaker) Report(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.probing = false
		if err == nil {
			b.state = BreakerClosed
			b.consecutive = 0
		} else {
			b.state = BreakerOpen
			b.openedAt = b.now()
			b.trips++
		}
		return
	}
	if err == nil {
		b.consecutive = 0
		return
	}
	b.consecutive++
	if b.state == BreakerClosed && b.consecutive >= b.threshold {
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.trips++
	}
}

// State returns the current state.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips returns how many times the breaker has opened.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// SetTimeout replaces the per-request timeout (DefaultTimeout initially;
// <= 0 disables the bound). Each retry attempt gets the full budget.
func (f *Fetcher) SetTimeout(d time.Duration) { f.timeout = d }

// SetRetryBudget re-issues failed requests per the policy (deterministic
// capped jittered backoff, see ptask.RetryPolicy). Timeouts and context
// cancellations are not retried; a zero-value policy disables retry.
func (f *Fetcher) SetRetryBudget(p ptask.RetryPolicy) {
	if p.MaxAttempts < 2 {
		f.retry = nil
		return
	}
	f.retry = &p
}

// SetBreaker routes every request through the circuit breaker (nil
// detaches it). While the breaker is open requests fail immediately with
// an error wrapping ErrCircuitOpen instead of touching the network.
func (f *Fetcher) SetBreaker(b *Breaker) { f.breaker = b }

// Retries returns how many retry attempts the fetcher has issued (beyond
// each request's first attempt).
func (f *Fetcher) Retries() int64 { return f.retries.Load() }

// FetchAllCtx is FetchAll bounded by ctx: cancelling it aborts in-flight
// requests (their results carry the context error) and prevents queued
// ones from starting (theirs carry an error wrapping ptask.ErrCancelled).
// Results always has len(urls) entries in input order.
func (f *Fetcher) FetchAllCtx(ctx context.Context, urls []string, onDone func(FetchResult)) []FetchResult {
	if ctx == nil {
		ctx = context.Background()
	}
	multi := ptask.RunMulti(f.rt, len(urls), func(i int) (FetchResult, error) {
		f.sem <- struct{}{}
		defer func() { <-f.sem }()
		return f.fetchOne(ctx, urls[i]), nil
	})
	stop := context.AfterFunc(ctx, func() { multi.Cancel() })
	defer stop()
	if onDone != nil {
		multi.NotifyEach(func(_ int, r FetchResult, err error) { onDone(r) })
	}
	out, _ := multi.Results()
	// A sub-task cancelled before it started produced no FetchResult;
	// synthesise one so the slice stays positional.
	for i, tk := range multi.Tasks() {
		if tk.Cancelled() {
			_, err := tk.Result()
			out[i] = FetchResult{URL: urls[i], Err: err}
		}
	}
	return out
}
