package webfetch

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"parc751/internal/faultinject"
	"parc751/internal/ptask"
)

func TestPerRequestTimeout(t *testing.T) {
	srv := newTestServer(t, 300*time.Millisecond)
	rt := ptask.NewRuntime(2)
	defer rt.Shutdown()
	f := NewFetcher(rt, srv.Client(), 2)
	f.SetTimeout(30 * time.Millisecond)
	res := f.FetchAll([]string{srv.URL + "/page/64"}, nil)
	if res[0].Err == nil {
		t.Fatal("slow server beat a 30ms timeout")
	}
	if !errors.Is(res[0].Err, context.DeadlineExceeded) {
		t.Fatalf("timeout error = %v, want a DeadlineExceeded chain", res[0].Err)
	}
}

func TestDefaultTimeoutInstalled(t *testing.T) {
	rt := ptask.NewRuntime(1)
	defer rt.Shutdown()
	if f := NewFetcher(rt, nil, 1); f.timeout != DefaultTimeout {
		t.Fatalf("default timeout = %v, want %v", f.timeout, DefaultTimeout)
	}
}

func TestFetchAllCtxCancelAbortsAndSkips(t *testing.T) {
	srv := newTestServer(t, 100*time.Millisecond)
	rt := ptask.NewRuntime(2)
	defer rt.Shutdown()
	f := NewFetcher(rt, srv.Client(), 1) // 1 connection: the rest queue
	urls := make([]string, 8)
	for i := range urls {
		urls[i] = srv.URL + "/page/64"
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond) // first request is in flight
		cancel()
	}()
	start := time.Now()
	res := f.FetchAllCtx(ctx, urls, nil)
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("cancelled FetchAllCtx still took %v", took)
	}
	if len(res) != len(urls) {
		t.Fatalf("results = %d, want %d (positional even when cancelled)", len(res), len(urls))
	}
	failed := 0
	for i, r := range res {
		if r.Err != nil {
			failed++
			if r.URL != urls[i] {
				t.Errorf("result %d lost its URL: %q", i, r.URL)
			}
		}
	}
	if failed == 0 {
		t.Fatal("cancellation produced no failed results")
	}
}

func TestRetryBudgetRecoversInjectedErrors(t *testing.T) {
	srv := newTestServer(t, 0)
	rt := ptask.NewRuntime(2)
	defer rt.Shutdown()

	// Every URL's first attempt fails (injected transport error); the
	// retry budget absorbs it so the fetch as a whole succeeds.
	in := faultinject.New(faultinject.Plan{Rules: []faultinject.Rule{
		{Site: faultinject.SiteTransport, Kind: faultinject.Error, Nth: 0, Every: 2, Count: 4},
	}})
	client := &http.Client{Transport: &faultinject.RoundTripper{
		Base: srv.Client().Transport, Injector: in,
	}}
	f := NewFetcher(rt, client, 1)
	f.SetRetryBudget(ptask.RetryPolicy{MaxAttempts: 3, Base: time.Millisecond, Seed: 7})

	urls := make([]string, 4)
	for i := range urls {
		urls[i] = fmt.Sprintf("%s/page/%d", srv.URL, 64+i)
	}
	res := f.FetchAll(urls, nil)
	for i, r := range res {
		if r.Err != nil {
			t.Errorf("url %d failed despite retry budget: %v", i, r.Err)
		}
	}
	if got := f.Retries(); got == 0 {
		t.Error("no retries recorded, injector should have forced some")
	}
	if in.Fired() == 0 {
		t.Error("injector never fired")
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	rt := ptask.NewRuntime(1)
	defer rt.Shutdown()
	// Every attempt fails: all URLs error out after MaxAttempts tries.
	in := faultinject.New(faultinject.Plan{Rules: []faultinject.Rule{
		{Site: faultinject.SiteTransport, Kind: faultinject.Error, Every: 1},
	}})
	f := NewFetcher(rt, &http.Client{Transport: &faultinject.RoundTripper{Injector: in}}, 1)
	f.SetRetryBudget(ptask.RetryPolicy{MaxAttempts: 3, Base: time.Millisecond, Seed: 1})
	res := f.FetchAll([]string{"http://127.0.0.1:0/x"}, nil)
	if !errors.Is(res[0].Err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want injected error after budget exhausted", res[0].Err)
	}
	if got := f.Retries(); got != 2 {
		t.Errorf("retries = %d, want 2 (3 attempts total)", got)
	}
}

func TestTimeoutBoundsInjectedHang(t *testing.T) {
	rt := ptask.NewRuntime(1)
	defer rt.Shutdown()
	in := faultinject.New(faultinject.Plan{Rules: []faultinject.Rule{
		{Site: faultinject.SiteTransport, Kind: faultinject.Hang, Nth: 0, Count: 1},
	}})
	f := NewFetcher(rt, &http.Client{Transport: &faultinject.RoundTripper{Injector: in}}, 1)
	f.SetTimeout(30 * time.Millisecond)
	start := time.Now()
	res := f.FetchAll([]string{"http://127.0.0.1:0/x"}, nil)
	if res[0].Err == nil {
		t.Fatal("hung transport produced no error")
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("hang escaped the timeout: %v", took)
	}
}

func TestBreakerTripsAfterConsecutiveFailures(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(3, time.Minute)
	b.now = func() time.Time { return now }

	fail := errors.New("boom")
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed breaker refused request %d", i)
		}
		b.Report(fail)
	}
	if b.State() != BreakerClosed {
		t.Fatal("breaker tripped before threshold")
	}
	b.Allow()
	b.Report(fail) // third consecutive failure
	if b.State() != BreakerOpen {
		t.Fatal("breaker did not trip at threshold")
	}
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open breaker allowed a request (%v)", err)
	}
	if b.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", b.Trips())
	}

	// Cooldown elapses: exactly one probe goes through.
	now = now.Add(2 * time.Minute)
	if err := b.Allow(); err != nil {
		t.Fatal("half-open breaker refused the probe")
	}
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	// Probe fails: back to open for another cooldown.
	b.Report(fail)
	if b.State() != BreakerOpen {
		t.Fatal("failed probe did not re-open the breaker")
	}
	if b.Trips() != 2 {
		t.Fatalf("trips = %d, want 2", b.Trips())
	}

	// Next cooldown: the probe succeeds and the circuit closes.
	now = now.Add(2 * time.Minute)
	if err := b.Allow(); err != nil {
		t.Fatal("second probe refused")
	}
	b.Report(nil)
	if b.State() != BreakerClosed {
		t.Fatal("successful probe did not close the breaker")
	}
	if err := b.Allow(); err != nil {
		t.Fatal("closed breaker refused a request after recovery")
	}
	b.Report(nil)
}

func TestBreakerSuccessResetsCount(t *testing.T) {
	b := NewBreaker(3, time.Minute)
	fail := errors.New("boom")
	for i := 0; i < 10; i++ {
		b.Allow()
		b.Report(fail)
		b.Allow()
		b.Report(nil) // success between failures: never 3 in a row
	}
	if b.State() != BreakerClosed {
		t.Fatal("interleaved successes still tripped the breaker")
	}
}

func TestFetcherWithBreakerShortCircuits(t *testing.T) {
	rt := ptask.NewRuntime(1)
	defer rt.Shutdown()
	// Transport always fails; with threshold 2, requests 3..6 must be
	// refused by the breaker without touching the transport.
	in := faultinject.New(faultinject.Plan{Rules: []faultinject.Rule{
		{Site: faultinject.SiteTransport, Kind: faultinject.Error, Every: 1},
	}})
	f := NewFetcher(rt, &http.Client{Transport: &faultinject.RoundTripper{Injector: in}}, 1)
	f.SetBreaker(NewBreaker(2, time.Hour))
	urls := make([]string, 6)
	for i := range urls {
		urls[i] = "http://127.0.0.1:0/x"
	}
	res := f.FetchAll(urls, nil)
	refused := 0
	for _, r := range res {
		if errors.Is(r.Err, ErrCircuitOpen) {
			refused++
		} else if r.Err == nil {
			t.Error("always-failing transport produced a success")
		}
	}
	if refused != 4 {
		t.Errorf("refused = %d, want 4 (breaker should eat requests 3..6)", refused)
	}
	if got := in.Seen(faultinject.SiteTransport); got != 2 {
		t.Errorf("transport saw %d requests, want 2 (rest short-circuited)", got)
	}
}

func TestBreakerStateStrings(t *testing.T) {
	var checked atomic.Int32
	for s, want := range map[BreakerState]string{
		BreakerClosed: "closed", BreakerOpen: "open", BreakerHalfOpen: "half-open",
	} {
		if s.String() != want {
			t.Errorf("state %d = %q, want %q", s, s.String(), want)
		}
		checked.Add(1)
	}
	if checked.Load() != 3 {
		t.Fatal("missing state")
	}
}
