package webfetch

import (
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"parc751/internal/ptask"
	"parc751/internal/workload"
)

func equalPages(n, size int) []workload.Page {
	pages := make([]workload.Page, n)
	for i := range pages {
		pages[i] = workload.Page{URL: fmt.Sprintf("u%d", i), Bytes: size}
	}
	return pages
}

// ---- Simulation ----

func TestSimulateSingleConnSerial(t *testing.T) {
	cfg := SimConfig{RTT: 0.1, Bandwidth: 1000, ConnOverhead: 0}
	pages := equalPages(4, 100)
	res := Simulate(pages, 1, cfg)
	// Each page: 0.1 latency + 100/1000 transfer = 0.2; serial => 0.8.
	if math.Abs(res.Makespan-0.8) > 1e-9 {
		t.Fatalf("makespan = %g, want 0.8", res.Makespan)
	}
	if res.TotalBytes != 400 {
		t.Fatalf("bytes = %d", res.TotalBytes)
	}
}

func TestSimulateLatencyOverlap(t *testing.T) {
	// With as many connections as pages and tiny bodies, latency fully
	// overlaps: makespan ~ RTT + transfer, regardless of page count.
	cfg := SimConfig{RTT: 0.1, Bandwidth: 1e9, ConnOverhead: 0}
	res := Simulate(equalPages(50, 10), 50, cfg)
	if res.Makespan > 0.11 {
		t.Fatalf("makespan = %g, latency not overlapped", res.Makespan)
	}
}

func TestSimulateBandwidthSharing(t *testing.T) {
	// Two pages, two connections, no latency: both share the pipe, so
	// the makespan equals the serial transfer time of all bytes.
	cfg := SimConfig{RTT: 0, Bandwidth: 1000, ConnOverhead: 0}
	res := Simulate(equalPages(2, 500), 2, cfg)
	if math.Abs(res.Makespan-1.0) > 1e-9 {
		t.Fatalf("makespan = %g, want 1.0", res.Makespan)
	}
}

func TestSimulateNeverBeatsLowerBound(t *testing.T) {
	cfg := DefaultSimConfig()
	pages := workload.GenPages(3, 200, 1000, 100000)
	lb := LowerBound(pages, cfg)
	for _, k := range []int{1, 2, 4, 8, 16, 64, 256} {
		res := Simulate(pages, k, cfg)
		if res.Makespan < lb-1e-9 {
			t.Fatalf("k=%d makespan %g beats lower bound %g", k, res.Makespan, lb)
		}
	}
}

func TestSweepHasKneeShape(t *testing.T) {
	// The project's headline result: makespan falls steeply as
	// connections are added, then flattens at the bandwidth floor.
	cfg := DefaultSimConfig()
	pages := workload.GenPages(5, 300, 2000, 50000)
	conns := []int{1, 2, 4, 8, 16, 32, 64}
	results := Sweep(pages, conns, cfg)
	if results[1].Makespan >= results[0].Makespan {
		t.Fatalf("2 conns (%g) not faster than 1 (%g)", results[1].Makespan, results[0].Makespan)
	}
	if results[2].Makespan >= results[1].Makespan {
		t.Fatalf("4 conns (%g) not faster than 2 (%g)", results[2].Makespan, results[1].Makespan)
	}
	// The tail is flat: going 32 -> 64 saves (almost) nothing.
	gainHead := results[0].Makespan - results[2].Makespan
	gainTail := results[5].Makespan - results[6].Makespan
	if gainTail > gainHead/10 {
		t.Fatalf("no knee: head gain %g, tail gain %g", gainHead, gainTail)
	}
}

func TestBestConnectionsInInterior(t *testing.T) {
	cfg := DefaultSimConfig()
	pages := workload.GenPages(7, 200, 2000, 50000)
	best := BestConnections(pages, []int{1, 2, 4, 8, 16, 32, 64, 128}, cfg)
	if best <= 1 {
		t.Fatalf("best connections = %d; latency hiding should pay off", best)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	cfg := DefaultSimConfig()
	pages := workload.GenPages(9, 150, 1000, 80000)
	a := Simulate(pages, 12, cfg)
	b := Simulate(pages, 12, cfg)
	if a != b {
		t.Fatalf("simulation not deterministic: %+v vs %+v", a, b)
	}
}

func TestSimulateEdgeCases(t *testing.T) {
	cfg := DefaultSimConfig()
	if res := Simulate(nil, 4, cfg); res.Makespan != 0 || res.TotalBytes != 0 {
		t.Fatalf("empty simulation = %+v", res)
	}
	res := Simulate(equalPages(3, 100), 0, cfg) // conns clamped to 1
	if res.Makespan <= 0 {
		t.Fatal("clamped conns produced no time")
	}
}

func TestThroughputConsistent(t *testing.T) {
	cfg := DefaultSimConfig()
	pages := equalPages(20, 50000)
	res := Simulate(pages, 8, cfg)
	if math.Abs(res.Throughput-float64(res.TotalBytes)/res.Makespan) > 1e-6 {
		t.Fatalf("throughput inconsistent: %+v", res)
	}
	if res.Throughput > cfg.Bandwidth+1e-6 {
		t.Fatalf("throughput %g exceeds bandwidth %g", res.Throughput, cfg.Bandwidth)
	}
}

func TestJitterDeterministicAndBounded(t *testing.T) {
	cfg := DefaultSimConfig()
	cfg.Jitter = 0.05
	cfg.JitterSeed = 9
	pages := workload.GenPages(11, 100, 1000, 50000)
	a := Simulate(pages, 8, cfg)
	b := Simulate(pages, 8, cfg)
	if a != b {
		t.Fatal("jittered simulation not deterministic")
	}
	// Jitter only adds latency: the jittered run cannot be faster than
	// the jitter-free one, and cannot exceed it by more than the total
	// jitter budget.
	noJitter := cfg
	noJitter.Jitter = 0
	base := Simulate(pages, 8, noJitter)
	if a.Makespan < base.Makespan {
		t.Fatalf("jitter made the run faster: %g < %g", a.Makespan, base.Makespan)
	}
	if a.Makespan > base.Makespan+float64(len(pages))*cfg.Jitter {
		t.Fatalf("jitter exceeded its budget: %g vs %g", a.Makespan, base.Makespan)
	}
}

func TestJitterKneeShapeSurvives(t *testing.T) {
	cfg := DefaultSimConfig()
	cfg.Jitter = 0.04
	cfg.JitterSeed = 13
	pages := workload.GenPages(15, 200, 2000, 50000)
	rs := Sweep(pages, []int{1, 4, 16, 64}, cfg)
	if rs[1].Makespan >= rs[0].Makespan || rs[2].Makespan >= rs[1].Makespan {
		t.Fatalf("knee head gone under jitter: %v", rs)
	}
}

// ---- Real loopback fetcher ----

func newTestServer(t *testing.T, latency time.Duration) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(latency)
		// Body size comes from the path: /page/<bytes>.
		parts := strings.Split(r.URL.Path, "/")
		n, _ := strconv.Atoi(parts[len(parts)-1])
		if n <= 0 {
			n = 16
		}
		w.Write(make([]byte, n))
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestFetchAllGetsEveryPage(t *testing.T) {
	srv := newTestServer(t, 0)
	rt := ptask.NewRuntime(4)
	defer rt.Shutdown()
	f := NewFetcher(rt, srv.Client(), 8)
	urls := make([]string, 30)
	for i := range urls {
		urls[i] = fmt.Sprintf("%s/page/%d", srv.URL, 100+i)
	}
	results := f.FetchAll(urls, nil)
	if len(results) != 30 {
		t.Fatalf("results = %d", len(results))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("url %d error: %v", i, r.Err)
		}
		if r.Bytes != 100+i {
			t.Fatalf("url %d bytes = %d, want %d (order broken?)", i, r.Bytes, 100+i)
		}
	}
	if f.Fetched() != 30 {
		t.Fatalf("Fetched = %d", f.Fetched())
	}
	if f.BytesRead() == 0 {
		t.Fatal("BytesRead = 0")
	}
}

func TestFetchStreamsResults(t *testing.T) {
	srv := newTestServer(t, 0)
	rt := ptask.NewRuntime(2)
	defer rt.Shutdown()
	f := NewFetcher(rt, srv.Client(), 4)
	urls := []string{srv.URL + "/page/64", srv.URL + "/page/128"}
	got := make(chan FetchResult, 2)
	f.FetchAll(urls, func(r FetchResult) { got <- r })
	for i := 0; i < 2; i++ {
		select {
		case r := <-got:
			if r.Err != nil {
				t.Fatal(r.Err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("streamed result never arrived")
		}
	}
}

func TestFetchReportsErrors(t *testing.T) {
	rt := ptask.NewRuntime(2)
	defer rt.Shutdown()
	f := NewFetcher(rt, &http.Client{Timeout: 200 * time.Millisecond}, 2)
	results := f.FetchAll([]string{"http://127.0.0.1:1/nothing-listens-here"}, nil)
	if results[0].Err == nil {
		t.Fatal("unreachable server produced no error")
	}
}

func TestFetchReportsHTTPStatus(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	}))
	defer srv.Close()
	rt := ptask.NewRuntime(1)
	defer rt.Shutdown()
	f := NewFetcher(rt, srv.Client(), 1)
	results := f.FetchAll([]string{srv.URL + "/missing"}, nil)
	if results[0].Err == nil {
		t.Fatal("404 produced no error")
	}
}

func TestConcurrencyBeatsSerialWithLatency(t *testing.T) {
	// The real-network analogue of the project result: with injected
	// latency, 8 connections finish much sooner than 1.
	const latency = 20 * time.Millisecond
	srv := newTestServer(t, latency)
	rt := ptask.NewRuntime(8)
	defer rt.Shutdown()
	urls := make([]string, 16)
	for i := range urls {
		urls[i] = srv.URL + "/page/64"
	}
	serialF := NewFetcher(rt, srv.Client(), 1)
	_, serial := serialF.TimedFetchAll(urls)
	parF := NewFetcher(rt, srv.Client(), 8)
	_, par := parF.TimedFetchAll(urls)
	if par >= serial {
		t.Fatalf("8 conns (%v) not faster than 1 (%v)", par, serial)
	}
}

func TestFetcherClamps(t *testing.T) {
	rt := ptask.NewRuntime(1)
	defer rt.Shutdown()
	if f := NewFetcher(rt, nil, 0); f.Conns() != 1 {
		t.Fatalf("Conns = %d", f.Conns())
	}
}

func BenchmarkSimulateSweep(b *testing.B) {
	cfg := DefaultSimConfig()
	pages := workload.GenPages(1, 200, 1000, 100000)
	conns := []int{1, 2, 4, 8, 16, 32, 64}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sweep(pages, conns, cfg)
	}
}
