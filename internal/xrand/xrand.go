// Package xrand provides a small, deterministic pseudo-random number
// generator used by every workload generator and simulator in this
// repository. All experiments in the paper reproduction must be exactly
// repeatable from a seed, so math/rand's global state is never used.
//
// The generator is splitmix64 (Steele, Lea & Flood), which is tiny,
// statistically solid for workload generation, and trivially splittable:
// independent streams are derived with Split, so concurrent workers can
// draw numbers without sharing state or locks.
package xrand

import "math"

// golden is the 64-bit golden-ratio increment used by splitmix64.
const golden = 0x9E3779B97F4A7C15

// Rand is a deterministic splitmix64 generator. The zero value is a valid
// generator seeded with 0; prefer New for clarity. Rand is NOT safe for
// concurrent use — derive per-goroutine streams with Split instead, which
// is both faster and deterministic regardless of interleaving.
type Rand struct {
	state     uint64
	spare     float64
	haveSpare bool
}

// New returns a generator seeded with seed.
func New(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Split derives an independent generator from r. The derived stream is
// decorrelated from r's future output by advancing r once and re-mixing.
func (r *Rand) Split() *Rand {
	return &Rand{state: mix(r.Uint64() ^ golden)}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.state += golden
	return mix(r.state)
}

func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uint32 returns 32 pseudo-random bits.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Int63 returns a non-negative int64.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Intn returns an int uniformly distributed in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded values.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul128(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul128 returns the 128-bit product of a and b as (hi, lo).
func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 0xFFFFFFFF
	al, ah := a&mask, a>>32
	bl, bh := b&mask, b>>32
	t := al*bh + (al*bl)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += ah * bl
	hi = ah*bh + w2 + (w1 >> 32)
	lo = a * b
	return hi, lo
}

// Int63n returns an int64 uniformly distributed in [0, n). Panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("xrand: Int63n called with n <= 0")
	}
	return int64(r.Intn(int(n)))
}

// Float64 returns a float64 uniformly distributed in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, using the Box-Muller transform (the polar variant
// is avoided so that exactly two uniforms are consumed per pair of calls,
// keeping streams aligned across refactors).
func (r *Rand) NormFloat64() float64 {
	if r.haveSpare {
		r.haveSpare = false
		return r.spare
	}
	var u float64
	for u == 0 {
		u = r.Float64()
	}
	v := r.Float64()
	mag := math.Sqrt(-2 * math.Log(u))
	r.spare = mag * math.Sin(2*math.Pi*v)
	r.haveSpare = true
	return mag * math.Cos(2*math.Pi*v)
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1
// (mean 1). Scale by dividing by the desired rate.
func (r *Rand) ExpFloat64() float64 {
	var u float64
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u)
}

// Perm returns a pseudo-random permutation of [0, n) via Fisher-Yates.
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Zipf draws from a Zipf distribution over [0, n) with exponent s > 0
// using inverse-CDF over precomputed weights. For repeated draws build a
// ZipfGen instead; this convenience form recomputes the CDF each call.
func (r *Rand) Zipf(n int, s float64) int {
	g := NewZipfGen(r, n, s)
	return g.Next()
}

// ZipfGen draws Zipf-distributed ranks in [0, n) with exponent s.
type ZipfGen struct {
	r   *Rand
	cdf []float64
}

// NewZipfGen builds a Zipf generator over [0, n) with exponent s.
// It panics if n <= 0 or s <= 0.
func NewZipfGen(r *Rand, n int, s float64) *ZipfGen {
	if n <= 0 || s <= 0 {
		panic("xrand: NewZipfGen requires n > 0 and s > 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &ZipfGen{r: r, cdf: cdf}
}

// Next returns the next Zipf-distributed rank.
func (z *ZipfGen) Next() int {
	u := z.r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Letters fills dst with pseudo-random lowercase ASCII letters and
// returns it as a string.
func (r *Rand) Letters(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + r.Intn(26))
	}
	return string(b)
}
