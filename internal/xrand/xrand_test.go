package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	s := r.Split()
	// The parent keeps producing after a split, and the child stream is not
	// a suffix of the parent stream.
	parent := make([]uint64, 64)
	child := make([]uint64, 64)
	for i := range parent {
		parent[i] = r.Uint64()
		child[i] = s.Uint64()
	}
	matches := 0
	for i := range parent {
		if parent[i] == child[i] {
			matches++
		}
	}
	if matches > 0 {
		t.Fatalf("split stream mirrors parent in %d positions", matches)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(99)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d deviates from %g", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %g out of [0,1)", f)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %g, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("exponential draw %g < 0", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %g, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(21)
	xs := []int{1, 2, 2, 3, 5, 8, 13, 21}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed element sum: %d != %d", got, sum)
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(17)
	g := NewZipfGen(r, 100, 1.2)
	counts := make([]int, 100)
	for i := 0; i < 50000; i++ {
		v := g.Next()
		if v < 0 || v >= 100 {
			t.Fatalf("zipf draw %d out of range", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[50] {
		t.Errorf("zipf not skewed: rank0=%d rank50=%d", counts[0], counts[50])
	}
	if counts[0] <= counts[99] {
		t.Errorf("zipf not skewed at tail: rank0=%d rank99=%d", counts[0], counts[99])
	}
}

func TestLetters(t *testing.T) {
	s := New(1).Letters(64)
	if len(s) != 64 {
		t.Fatalf("len = %d", len(s))
	}
	for i := 0; i < len(s); i++ {
		if s[i] < 'a' || s[i] > 'z' {
			t.Fatalf("non-letter byte %q at %d", s[i], i)
		}
	}
}

func TestMul128KnownValues(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul128(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul128(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(1000)
	}
}
