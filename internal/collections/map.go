package collections

import (
	"hash/maphash"
	"sync"
)

// Map is the abstract concurrent map all variants implement.
type Map[K comparable, V any] interface {
	// Get returns the value for k.
	Get(k K) (V, bool)
	// Put stores v under k.
	Put(k K, v V)
	// Delete removes k.
	Delete(k K)
	// GetOrCompute returns the existing value for k, or stores and
	// returns compute()'s result atomically. This compound operation is
	// the task-safe counterpart of the racy check-then-act pattern
	// (project 6): two tasks calling it concurrently observe exactly one
	// computed value.
	GetOrCompute(k K, compute func() V) V
	// Len reports the number of entries.
	Len() int
}

// MutexMap is the coarse-locked baseline.
type MutexMap[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]V
}

// NewMutexMap returns an empty coarse-locked map.
func NewMutexMap[K comparable, V any]() *MutexMap[K, V] {
	return &MutexMap[K, V]{m: map[K]V{}}
}

// Get implements Map.
func (mm *MutexMap[K, V]) Get(k K) (V, bool) {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	v, ok := mm.m[k]
	return v, ok
}

// Put implements Map.
func (mm *MutexMap[K, V]) Put(k K, v V) {
	mm.mu.Lock()
	mm.m[k] = v
	mm.mu.Unlock()
}

// Delete implements Map.
func (mm *MutexMap[K, V]) Delete(k K) {
	mm.mu.Lock()
	delete(mm.m, k)
	mm.mu.Unlock()
}

// GetOrCompute implements Map.
func (mm *MutexMap[K, V]) GetOrCompute(k K, compute func() V) V {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	if v, ok := mm.m[k]; ok {
		return v
	}
	v := compute()
	mm.m[k] = v
	return v
}

// Len implements Map.
func (mm *MutexMap[K, V]) Len() int {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	return len(mm.m)
}

// RWMutexMap uses a reader/writer lock, winning on read-heavy mixes.
type RWMutexMap[K comparable, V any] struct {
	mu sync.RWMutex
	m  map[K]V
}

// NewRWMutexMap returns an empty reader/writer-locked map.
func NewRWMutexMap[K comparable, V any]() *RWMutexMap[K, V] {
	return &RWMutexMap[K, V]{m: map[K]V{}}
}

// Get implements Map.
func (mm *RWMutexMap[K, V]) Get(k K) (V, bool) {
	mm.mu.RLock()
	defer mm.mu.RUnlock()
	v, ok := mm.m[k]
	return v, ok
}

// Put implements Map.
func (mm *RWMutexMap[K, V]) Put(k K, v V) {
	mm.mu.Lock()
	mm.m[k] = v
	mm.mu.Unlock()
}

// Delete implements Map.
func (mm *RWMutexMap[K, V]) Delete(k K) {
	mm.mu.Lock()
	delete(mm.m, k)
	mm.mu.Unlock()
}

// GetOrCompute implements Map: fast read path, then write-locked
// double-check.
func (mm *RWMutexMap[K, V]) GetOrCompute(k K, compute func() V) V {
	mm.mu.RLock()
	if v, ok := mm.m[k]; ok {
		mm.mu.RUnlock()
		return v
	}
	mm.mu.RUnlock()
	mm.mu.Lock()
	defer mm.mu.Unlock()
	if v, ok := mm.m[k]; ok {
		return v
	}
	v := compute()
	mm.m[k] = v
	return v
}

// Len implements Map.
func (mm *RWMutexMap[K, V]) Len() int {
	mm.mu.RLock()
	defer mm.mu.RUnlock()
	return len(mm.m)
}

// ShardedMap hashes keys across independently locked shards, the standard
// contention-spreading design (java.util.concurrent.ConcurrentHashMap's
// segmented ancestor).
type ShardedMap[K comparable, V any] struct {
	seed   maphash.Seed
	shards []mapShard[K, V]
}

type mapShard[K comparable, V any] struct {
	mu sync.RWMutex
	m  map[K]V
	_  [40]byte // pad shards apart to reduce false sharing
}

// NewShardedMap returns a map with the given shard count (rounded up to a
// power of two, minimum 1).
func NewShardedMap[K comparable, V any](shards int) *ShardedMap[K, V] {
	n := 1
	for n < shards {
		n <<= 1
	}
	sm := &ShardedMap[K, V]{seed: maphash.MakeSeed(), shards: make([]mapShard[K, V], n)}
	for i := range sm.shards {
		sm.shards[i].m = map[K]V{}
	}
	return sm
}

// Shards reports the shard count.
func (sm *ShardedMap[K, V]) Shards() int { return len(sm.shards) }

func (sm *ShardedMap[K, V]) shard(k K) *mapShard[K, V] {
	h := maphash.Comparable(sm.seed, k)
	return &sm.shards[h&uint64(len(sm.shards)-1)]
}

// Get implements Map.
func (sm *ShardedMap[K, V]) Get(k K) (V, bool) {
	s := sm.shard(k)
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.m[k]
	return v, ok
}

// Put implements Map.
func (sm *ShardedMap[K, V]) Put(k K, v V) {
	s := sm.shard(k)
	s.mu.Lock()
	s.m[k] = v
	s.mu.Unlock()
}

// Delete implements Map.
func (sm *ShardedMap[K, V]) Delete(k K) {
	s := sm.shard(k)
	s.mu.Lock()
	delete(s.m, k)
	s.mu.Unlock()
}

// GetOrCompute implements Map.
func (sm *ShardedMap[K, V]) GetOrCompute(k K, compute func() V) V {
	s := sm.shard(k)
	s.mu.RLock()
	if v, ok := s.m[k]; ok {
		s.mu.RUnlock()
		return v
	}
	s.mu.RUnlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok := s.m[k]; ok {
		return v
	}
	v := compute()
	s.m[k] = v
	return v
}

// Len implements Map.
func (sm *ShardedMap[K, V]) Len() int {
	n := 0
	for i := range sm.shards {
		sm.shards[i].mu.RLock()
		n += len(sm.shards[i].m)
		sm.shards[i].mu.RUnlock()
	}
	return n
}

// SyncMap adapts sync.Map to the Map interface — the stdlib contender in
// the project 9 comparison.
type SyncMap[K comparable, V any] struct {
	m sync.Map
}

// NewSyncMap returns an empty sync.Map-backed map.
func NewSyncMap[K comparable, V any]() *SyncMap[K, V] { return &SyncMap[K, V]{} }

// Get implements Map.
func (sm *SyncMap[K, V]) Get(k K) (V, bool) {
	v, ok := sm.m.Load(k)
	if !ok {
		var zero V
		return zero, false
	}
	return v.(V), true
}

// Put implements Map.
func (sm *SyncMap[K, V]) Put(k K, v V) { sm.m.Store(k, v) }

// Delete implements Map.
func (sm *SyncMap[K, V]) Delete(k K) { sm.m.Delete(k) }

// GetOrCompute implements Map. Note: with sync.Map, concurrent first
// computations may both run compute, but exactly one value is stored and
// returned to everyone — the documented LoadOrStore semantics.
func (sm *SyncMap[K, V]) GetOrCompute(k K, compute func() V) V {
	if v, ok := sm.m.Load(k); ok {
		return v.(V)
	}
	v, _ := sm.m.LoadOrStore(k, compute())
	return v.(V)
}

// Len implements Map (O(n) for sync.Map).
func (sm *SyncMap[K, V]) Len() int {
	n := 0
	sm.m.Range(func(_, _ any) bool { n++; return true })
	return n
}
