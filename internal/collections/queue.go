// Package collections implements the concurrent data structures for two of
// the reproduced projects: the task-safe collection library (project 6 —
// counterparts to java.util.concurrent classes that remain correct under a
// tasking model) and the lock-strategy comparison set (project 9 —
// the same abstract structure implemented with coarse locks, reader/writer
// locks, sharding, atomics, and channels, so their throughput can be
// compared under different read/write mixes).
package collections

import (
	"sync"
	"sync/atomic"
)

// Queue is the abstract concurrent FIFO all queue variants implement.
type Queue[T any] interface {
	// Put appends v.
	Put(v T)
	// TryTake removes the oldest element; ok is false when empty.
	TryTake() (v T, ok bool)
	// Len reports the approximate number of elements.
	Len() int
}

// MutexQueue is the coarse-grained baseline: one lock around a slice ring.
type MutexQueue[T any] struct {
	mu   sync.Mutex
	buf  []T
	head int
}

// NewMutexQueue returns an empty coarse-locked queue.
func NewMutexQueue[T any]() *MutexQueue[T] { return &MutexQueue[T]{} }

// Put implements Queue.
func (q *MutexQueue[T]) Put(v T) {
	q.mu.Lock()
	q.buf = append(q.buf, v)
	q.mu.Unlock()
}

// TryTake implements Queue.
func (q *MutexQueue[T]) TryTake() (T, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head == len(q.buf) {
		var zero T
		return zero, false
	}
	v := q.buf[q.head]
	var zero T
	q.buf[q.head] = zero
	q.head++
	if q.head > 64 && q.head*2 > len(q.buf) {
		q.buf = append([]T(nil), q.buf[q.head:]...)
		q.head = 0
	}
	return v, true
}

// Len implements Queue.
func (q *MutexQueue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buf) - q.head
}

// TwoLockQueue is the Michael & Scott two-lock linked queue: producers and
// consumers contend on separate locks, so a mixed workload pipelines.
type TwoLockQueue[T any] struct {
	headMu sync.Mutex // protects head (consumers)
	tailMu sync.Mutex // protects tail (producers)
	head   *tlNode[T] // dummy node
	tail   *tlNode[T]
	size   atomic.Int64
}

// tlNode's next pointer is atomic: when the queue holds only the dummy
// node, head == tail, so a producer storing next (under the tail lock)
// and a consumer loading it (under the head lock) touch the same word
// under *different* locks — correct in the original Michael & Scott
// formulation, but a data race under the Go memory model unless the
// pointer itself synchronises.
type tlNode[T any] struct {
	v    T
	next atomic.Pointer[tlNode[T]]
}

// NewTwoLockQueue returns an empty two-lock queue.
func NewTwoLockQueue[T any]() *TwoLockQueue[T] {
	dummy := &tlNode[T]{}
	return &TwoLockQueue[T]{head: dummy, tail: dummy}
}

// Put implements Queue.
func (q *TwoLockQueue[T]) Put(v T) {
	n := &tlNode[T]{v: v}
	q.tailMu.Lock()
	q.tail.next.Store(n)
	q.tail = n
	q.tailMu.Unlock()
	q.size.Add(1)
}

// TryTake implements Queue.
func (q *TwoLockQueue[T]) TryTake() (T, bool) {
	q.headMu.Lock()
	next := q.head.next.Load()
	if next == nil {
		q.headMu.Unlock()
		var zero T
		return zero, false
	}
	v := next.v
	var zero T
	next.v = zero // drop reference for GC; next becomes the new dummy
	q.head = next
	q.headMu.Unlock()
	q.size.Add(-1)
	return v, true
}

// Len implements Queue.
func (q *TwoLockQueue[T]) Len() int { return int(q.size.Load()) }

// LockFreeQueue is the Michael & Scott non-blocking queue built on
// compare-and-swap, the classic lock-free FIFO.
type LockFreeQueue[T any] struct {
	head atomic.Pointer[lfNode[T]]
	tail atomic.Pointer[lfNode[T]]
	size atomic.Int64
}

type lfNode[T any] struct {
	v    T
	next atomic.Pointer[lfNode[T]]
}

// NewLockFreeQueue returns an empty lock-free queue.
func NewLockFreeQueue[T any]() *LockFreeQueue[T] {
	q := &LockFreeQueue[T]{}
	dummy := &lfNode[T]{}
	q.head.Store(dummy)
	q.tail.Store(dummy)
	return q
}

// Put implements Queue.
func (q *LockFreeQueue[T]) Put(v T) {
	n := &lfNode[T]{v: v}
	for {
		tail := q.tail.Load()
		next := tail.next.Load()
		if tail != q.tail.Load() {
			continue // tail moved under us; retry
		}
		if next != nil {
			// Tail lagging: help advance it.
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		if tail.next.CompareAndSwap(nil, n) {
			q.tail.CompareAndSwap(tail, n)
			q.size.Add(1)
			return
		}
	}
}

// TryTake implements Queue.
func (q *LockFreeQueue[T]) TryTake() (T, bool) {
	for {
		head := q.head.Load()
		tail := q.tail.Load()
		next := head.next.Load()
		if head != q.head.Load() {
			continue
		}
		if next == nil {
			var zero T
			return zero, false // empty
		}
		if head == tail {
			// Tail lagging behind a non-empty queue: help.
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		v := next.v
		if q.head.CompareAndSwap(head, next) {
			q.size.Add(-1)
			return v, true
		}
	}
}

// Len implements Queue.
func (q *LockFreeQueue[T]) Len() int { return int(q.size.Load()) }

// ChannelQueue adapts a buffered channel to the Queue interface — the
// share-by-communicating variant in the project 9 comparison. Put on a
// full channel falls back to growing through an overflow list to preserve
// the unbounded Queue contract.
type ChannelQueue[T any] struct {
	ch       chan T
	mu       sync.Mutex
	overflow []T
}

// NewChannelQueue returns a channel-backed queue with the given buffer.
func NewChannelQueue[T any](buffer int) *ChannelQueue[T] {
	if buffer < 1 {
		buffer = 1
	}
	return &ChannelQueue[T]{ch: make(chan T, buffer)}
}

// Put implements Queue.
func (q *ChannelQueue[T]) Put(v T) {
	// Drain overflow first to preserve FIFO when the channel had filled.
	q.mu.Lock()
	if len(q.overflow) > 0 {
		q.overflow = append(q.overflow, v)
		q.drainLocked()
		q.mu.Unlock()
		return
	}
	q.mu.Unlock()
	select {
	case q.ch <- v:
	default:
		q.mu.Lock()
		q.overflow = append(q.overflow, v)
		q.drainLocked()
		q.mu.Unlock()
	}
}

func (q *ChannelQueue[T]) drainLocked() {
	for len(q.overflow) > 0 {
		select {
		case q.ch <- q.overflow[0]:
			q.overflow = q.overflow[1:]
		default:
			return
		}
	}
}

// TryTake implements Queue.
func (q *ChannelQueue[T]) TryTake() (T, bool) {
	select {
	case v := <-q.ch:
		q.mu.Lock()
		q.drainLocked()
		q.mu.Unlock()
		return v, true
	default:
		var zero T
		return zero, false
	}
}

// Len implements Queue.
func (q *ChannelQueue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.ch) + len(q.overflow)
}

// BoundedQueue is the task-safe bounded buffer (project 6). Java's
// BlockingQueue blocks the calling thread when full or empty; under a
// tasking runtime that can park every worker and deadlock the pool, so
// the task-safe counterpart is non-blocking: TryPut/TryTake report
// failure and let the task reschedule itself.
type BoundedQueue[T any] struct {
	mu       sync.Mutex
	buf      []T
	head, n  int
	capacity int
}

// NewBoundedQueue returns an empty bounded queue with the given capacity
// (minimum 1).
func NewBoundedQueue[T any](capacity int) *BoundedQueue[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &BoundedQueue[T]{buf: make([]T, capacity), capacity: capacity}
}

// TryPut appends v, reporting false when the queue is full.
func (q *BoundedQueue[T]) TryPut(v T) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.n == q.capacity {
		return false
	}
	q.buf[(q.head+q.n)%q.capacity] = v
	q.n++
	return true
}

// TryTake removes the oldest element, reporting false when empty.
func (q *BoundedQueue[T]) TryTake() (T, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	var zero T
	if q.n == 0 {
		return zero, false
	}
	v := q.buf[q.head]
	q.buf[q.head] = zero
	q.head = (q.head + 1) % q.capacity
	q.n--
	return v, true
}

// Len reports the number of buffered elements.
func (q *BoundedQueue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// Cap reports the capacity.
func (q *BoundedQueue[T]) Cap() int { return q.capacity }
