package collections

import (
	"sync"
	"sync/atomic"
)

// Stack is the abstract concurrent LIFO.
type Stack[T any] interface {
	// Push adds v on top.
	Push(v T)
	// TryPop removes the top element; ok is false when empty.
	TryPop() (v T, ok bool)
	// Len reports the approximate number of elements.
	Len() int
}

// MutexStack is the coarse-locked baseline stack.
type MutexStack[T any] struct {
	mu  sync.Mutex
	buf []T
}

// NewMutexStack returns an empty coarse-locked stack.
func NewMutexStack[T any]() *MutexStack[T] { return &MutexStack[T]{} }

// Push implements Stack.
func (s *MutexStack[T]) Push(v T) {
	s.mu.Lock()
	s.buf = append(s.buf, v)
	s.mu.Unlock()
}

// TryPop implements Stack.
func (s *MutexStack[T]) TryPop() (T, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.buf) == 0 {
		var zero T
		return zero, false
	}
	v := s.buf[len(s.buf)-1]
	var zero T
	s.buf[len(s.buf)-1] = zero
	s.buf = s.buf[:len(s.buf)-1]
	return v, true
}

// Len implements Stack.
func (s *MutexStack[T]) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.buf)
}

// TreiberStack is Treiber's lock-free stack: a CAS loop on the head of a
// singly linked list.
type TreiberStack[T any] struct {
	head atomic.Pointer[tsNode[T]]
	size atomic.Int64
}

type tsNode[T any] struct {
	v    T
	next *tsNode[T]
}

// NewTreiberStack returns an empty lock-free stack.
func NewTreiberStack[T any]() *TreiberStack[T] { return &TreiberStack[T]{} }

// Push implements Stack.
func (s *TreiberStack[T]) Push(v T) {
	n := &tsNode[T]{v: v}
	for {
		old := s.head.Load()
		n.next = old
		if s.head.CompareAndSwap(old, n) {
			s.size.Add(1)
			return
		}
	}
}

// TryPop implements Stack.
func (s *TreiberStack[T]) TryPop() (T, bool) {
	for {
		old := s.head.Load()
		if old == nil {
			var zero T
			return zero, false
		}
		if s.head.CompareAndSwap(old, old.next) {
			s.size.Add(-1)
			return old.v, true
		}
	}
}

// Len implements Stack.
func (s *TreiberStack[T]) Len() int { return int(s.size.Load()) }
