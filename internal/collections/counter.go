package collections

import (
	"sync"
	"sync/atomic"
)

// Counter is the abstract shared counter of the project 9 lock-strategy
// comparison: the minimal shared-state benchmark (the paper's students
// used it to study synchronized vs atomic variables vs locks).
type Counter interface {
	// Inc adds one.
	Inc()
	// Value returns the current count.
	Value() int64
}

// MutexCounter guards an int with a mutex ("synchronized").
type MutexCounter struct {
	mu sync.Mutex
	n  int64
}

// Inc implements Counter.
func (c *MutexCounter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// Value implements Counter.
func (c *MutexCounter) Value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// AtomicCounter uses a hardware atomic add ("AtomicLong").
type AtomicCounter struct {
	n atomic.Int64
}

// Inc implements Counter.
func (c *AtomicCounter) Inc() { c.n.Add(1) }

// Value implements Counter.
func (c *AtomicCounter) Value() int64 { return c.n.Load() }

// ShardedCounter stripes the count over padded cells indexed by a caller-
// supplied stripe hint (typically the worker id), trading exactness of
// intermediate reads for contention-free increments ("LongAdder").
type ShardedCounter struct {
	cells []counterCell
}

type counterCell struct {
	n atomic.Int64
	_ [56]byte
}

// NewShardedCounter creates a counter with the given stripe count
// (minimum 1).
func NewShardedCounter(stripes int) *ShardedCounter {
	if stripes < 1 {
		stripes = 1
	}
	return &ShardedCounter{cells: make([]counterCell, stripes)}
}

// IncStripe adds one to the given stripe (stripe % stripes).
func (c *ShardedCounter) IncStripe(stripe int) {
	c.cells[stripe%len(c.cells)].n.Add(1)
}

// Inc implements Counter using stripe 0; prefer IncStripe with a worker id.
func (c *ShardedCounter) Inc() { c.IncStripe(0) }

// Value implements Counter by summing all stripes.
func (c *ShardedCounter) Value() int64 {
	var sum int64
	for i := range c.cells {
		sum += c.cells[i].n.Load()
	}
	return sum
}

// ChannelCounter serialises increments through a channel to a counting
// goroutine — the share-by-communicating strategy. Close it when done.
type ChannelCounter struct {
	ch   chan struct{}
	done chan struct{}
	n    atomic.Int64
	once sync.Once
}

// NewChannelCounter starts the counting goroutine.
func NewChannelCounter() *ChannelCounter {
	c := &ChannelCounter{ch: make(chan struct{}, 1024), done: make(chan struct{})}
	go func() {
		for range c.ch {
			c.n.Add(1)
		}
		close(c.done)
	}()
	return c
}

// Inc implements Counter.
func (c *ChannelCounter) Inc() { c.ch <- struct{}{} }

// Value implements Counter. It reflects increments processed so far; call
// Close first for an exact final value.
func (c *ChannelCounter) Value() int64 { return c.n.Load() }

// Close stops the counting goroutine after draining pending increments.
func (c *ChannelCounter) Close() {
	c.once.Do(func() {
		close(c.ch)
		<-c.done
	})
}

// RacyCounter increments without any synchronisation. It exists as the
// broken baseline for the memory-model lab (project 8) and the project 9
// tables: under contention it visibly loses updates.
type RacyCounter struct {
	N int64
}

// Inc implements Counter, racily.
func (c *RacyCounter) Inc() { c.N++ }

// Value implements Counter, racily.
func (c *RacyCounter) Value() int64 { return c.N }
