package collections

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// ---- Queue conformance across every implementation ----

func queues() map[string]func() Queue[int] {
	return map[string]func() Queue[int]{
		"mutex":    func() Queue[int] { return NewMutexQueue[int]() },
		"twolock":  func() Queue[int] { return NewTwoLockQueue[int]() },
		"lockfree": func() Queue[int] { return NewLockFreeQueue[int]() },
		"channel":  func() Queue[int] { return NewChannelQueue[int](64) },
	}
}

func TestQueueFIFOOrder(t *testing.T) {
	for name, mk := range queues() {
		t.Run(name, func(t *testing.T) {
			q := mk()
			if _, ok := q.TryTake(); ok {
				t.Fatal("take from empty succeeded")
			}
			for i := 0; i < 100; i++ {
				q.Put(i)
			}
			if q.Len() != 100 {
				t.Fatalf("Len = %d", q.Len())
			}
			for i := 0; i < 100; i++ {
				v, ok := q.TryTake()
				if !ok || v != i {
					t.Fatalf("take %d = %d,%v", i, v, ok)
				}
			}
			if _, ok := q.TryTake(); ok {
				t.Fatal("drained queue still yields")
			}
		})
	}
}

func TestQueueConcurrentConservation(t *testing.T) {
	for name, mk := range queues() {
		t.Run(name, func(t *testing.T) {
			q := mk()
			const producers, perProducer = 4, 2000
			var taken sync.Map
			var count atomic.Int64
			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for i := 0; i < perProducer; i++ {
						q.Put(p*perProducer + i)
					}
				}(p)
			}
			for c := 0; c < 4; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for count.Load() < producers*perProducer {
						if v, ok := q.TryTake(); ok {
							if _, dup := taken.LoadOrStore(v, true); dup {
								t.Errorf("duplicate %d", v)
							}
							count.Add(1)
						}
					}
				}()
			}
			wg.Wait()
			if count.Load() != producers*perProducer {
				t.Fatalf("conserved %d", count.Load())
			}
		})
	}
}

func TestQueuePerProducerOrder(t *testing.T) {
	// FIFO per producer must hold even under concurrency.
	for name, mk := range queues() {
		t.Run(name, func(t *testing.T) {
			q := mk()
			const n = 5000
			done := make(chan struct{})
			go func() {
				for i := 0; i < n; i++ {
					q.Put(i)
				}
				close(done)
			}()
			last := -1
			got := 0
			for got < n {
				if v, ok := q.TryTake(); ok {
					if v <= last {
						t.Fatalf("order violated: %d after %d", v, last)
					}
					last = v
					got++
				}
			}
			<-done
		})
	}
}

func TestChannelQueueOverflow(t *testing.T) {
	q := NewChannelQueue[int](2)
	for i := 0; i < 50; i++ {
		q.Put(i)
	}
	if q.Len() != 50 {
		t.Fatalf("Len = %d", q.Len())
	}
	for i := 0; i < 50; i++ {
		v, ok := q.TryTake()
		if !ok || v != i {
			t.Fatalf("overflowed queue broke FIFO: %d,%v at %d", v, ok, i)
		}
	}
}

func TestBoundedQueue(t *testing.T) {
	q := NewBoundedQueue[string](2)
	if q.Cap() != 2 {
		t.Fatalf("Cap = %d", q.Cap())
	}
	if !q.TryPut("a") || !q.TryPut("b") {
		t.Fatal("puts under capacity failed")
	}
	if q.TryPut("c") {
		t.Fatal("put over capacity succeeded")
	}
	if v, ok := q.TryTake(); !ok || v != "a" {
		t.Fatalf("take = %q,%v", v, ok)
	}
	if !q.TryPut("c") {
		t.Fatal("put after take failed")
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d", q.Len())
	}
	// Wrap-around order.
	if v, _ := q.TryTake(); v != "b" {
		t.Fatalf("wrap order broke: %q", v)
	}
	if v, _ := q.TryTake(); v != "c" {
		t.Fatalf("wrap order broke: %q", v)
	}
	if _, ok := q.TryTake(); ok {
		t.Fatal("empty take succeeded")
	}
}

func TestBoundedQueueNeverExceedsCap(t *testing.T) {
	f := func(ops []uint8, capRaw uint8) bool {
		capacity := int(capRaw%8) + 1
		q := NewBoundedQueue[int](capacity)
		for _, op := range ops {
			if op%2 == 0 {
				q.TryPut(int(op))
			} else {
				q.TryTake()
			}
			if q.Len() > capacity || q.Len() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// ---- Stack conformance ----

func stacks() map[string]func() Stack[int] {
	return map[string]func() Stack[int]{
		"mutex":   func() Stack[int] { return NewMutexStack[int]() },
		"treiber": func() Stack[int] { return NewTreiberStack[int]() },
	}
}

func TestStackLIFO(t *testing.T) {
	for name, mk := range stacks() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			if _, ok := s.TryPop(); ok {
				t.Fatal("pop from empty succeeded")
			}
			for i := 0; i < 100; i++ {
				s.Push(i)
			}
			if s.Len() != 100 {
				t.Fatalf("Len = %d", s.Len())
			}
			for i := 99; i >= 0; i-- {
				v, ok := s.TryPop()
				if !ok || v != i {
					t.Fatalf("pop = %d,%v want %d", v, ok, i)
				}
			}
		})
	}
}

func TestStackConcurrentConservation(t *testing.T) {
	for name, mk := range stacks() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			const workers, per = 8, 1000
			var popped sync.Map
			var count atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						s.Push(w*per + i)
						if v, ok := s.TryPop(); ok {
							if _, dup := popped.LoadOrStore(v, true); dup {
								t.Errorf("duplicate %d", v)
							}
							count.Add(1)
						}
					}
				}(w)
			}
			wg.Wait()
			for {
				v, ok := s.TryPop()
				if !ok {
					break
				}
				if _, dup := popped.LoadOrStore(v, true); dup {
					t.Errorf("duplicate drained %d", v)
				}
				count.Add(1)
			}
			if count.Load() != workers*per {
				t.Fatalf("conserved %d of %d", count.Load(), workers*per)
			}
		})
	}
}

// ---- Map conformance ----

func maps_() map[string]func() Map[int, int] {
	return map[string]func() Map[int, int]{
		"mutex":   func() Map[int, int] { return NewMutexMap[int, int]() },
		"rwmutex": func() Map[int, int] { return NewRWMutexMap[int, int]() },
		"sharded": func() Map[int, int] { return NewShardedMap[int, int](16) },
		"syncmap": func() Map[int, int] { return NewSyncMap[int, int]() },
	}
}

func TestMapBasicOps(t *testing.T) {
	for name, mk := range maps_() {
		t.Run(name, func(t *testing.T) {
			m := mk()
			if _, ok := m.Get(1); ok {
				t.Fatal("get on empty map succeeded")
			}
			m.Put(1, 10)
			m.Put(2, 20)
			m.Put(1, 11) // overwrite
			if v, ok := m.Get(1); !ok || v != 11 {
				t.Fatalf("Get(1) = %d,%v", v, ok)
			}
			if m.Len() != 2 {
				t.Fatalf("Len = %d", m.Len())
			}
			m.Delete(1)
			if _, ok := m.Get(1); ok {
				t.Fatal("deleted key still present")
			}
			if m.Len() != 1 {
				t.Fatalf("Len after delete = %d", m.Len())
			}
		})
	}
}

func TestMapGetOrComputeAtomic(t *testing.T) {
	// The task-safe compound op: concurrent GetOrCompute on the same key
	// must observe exactly one stored value.
	for name, mk := range maps_() {
		t.Run(name, func(t *testing.T) {
			m := mk()
			const workers = 16
			results := make([]int, workers)
			var next atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					results[w] = m.GetOrCompute(7, func() int {
						return int(next.Add(1))
					})
				}(w)
			}
			wg.Wait()
			first := results[0]
			for w, r := range results {
				if r != first {
					t.Fatalf("worker %d saw %d, worker 0 saw %d", w, r, first)
				}
			}
			if v, _ := m.Get(7); v != first {
				t.Fatalf("stored %d, returned %d", v, first)
			}
		})
	}
}

func TestMapConcurrentMixedOps(t *testing.T) {
	for name, mk := range maps_() {
		t.Run(name, func(t *testing.T) {
			m := mk()
			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 1000; i++ {
						k := i % 100
						switch i % 3 {
						case 0:
							m.Put(k, w)
						case 1:
							m.Get(k)
						case 2:
							m.Delete(k)
						}
					}
				}(w)
			}
			wg.Wait()
			if m.Len() < 0 || m.Len() > 100 {
				t.Fatalf("Len = %d out of plausible range", m.Len())
			}
		})
	}
}

func TestShardedMapShardCount(t *testing.T) {
	if got := NewShardedMap[int, int](10).Shards(); got != 16 {
		t.Fatalf("shards = %d, want next power of two 16", got)
	}
	if got := NewShardedMap[int, int](0).Shards(); got != 1 {
		t.Fatalf("shards = %d, want 1", got)
	}
}

func TestShardedMapSpreadsKeys(t *testing.T) {
	sm := NewShardedMap[int, int](8)
	for i := 0; i < 10000; i++ {
		sm.Put(i, i)
	}
	if sm.Len() != 10000 {
		t.Fatalf("Len = %d", sm.Len())
	}
	// No shard should hold everything.
	for i := range sm.shards {
		if len(sm.shards[i].m) == 10000 {
			t.Fatal("all keys landed in one shard")
		}
	}
}

// ---- Counters ----

func TestCountersExact(t *testing.T) {
	counters := map[string]Counter{
		"mutex":   &MutexCounter{},
		"atomic":  &AtomicCounter{},
		"sharded": NewShardedCounter(8),
	}
	for name, c := range counters {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			const workers, per = 8, 10000
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					if sc, ok := c.(*ShardedCounter); ok {
						for i := 0; i < per; i++ {
							sc.IncStripe(w)
						}
						return
					}
					for i := 0; i < per; i++ {
						c.Inc()
					}
				}(w)
			}
			wg.Wait()
			if c.Value() != workers*per {
				t.Fatalf("count = %d, want %d", c.Value(), workers*per)
			}
		})
	}
}

func TestChannelCounter(t *testing.T) {
	c := NewChannelCounter()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	c.Close()
	if c.Value() != 4000 {
		t.Fatalf("count = %d", c.Value())
	}
	c.Close() // idempotent
}

func BenchmarkQueues(b *testing.B) {
	for name, mk := range queues() {
		b.Run(name, func(b *testing.B) {
			q := mk()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if i%2 == 0 {
						q.Put(i)
					} else {
						q.TryTake()
					}
					i++
				}
			})
		})
	}
}

func BenchmarkMapsReadHeavy(b *testing.B) {
	for name, mk := range maps_() {
		b.Run(name, func(b *testing.B) {
			m := mk()
			for i := 0; i < 1000; i++ {
				m.Put(i, i)
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if i%10 == 0 {
						m.Put(i%1000, i)
					} else {
						m.Get(i % 1000)
					}
					i++
				}
			})
		})
	}
}

func BenchmarkCounters(b *testing.B) {
	b.Run("mutex", func(b *testing.B) {
		c := &MutexCounter{}
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.Inc()
			}
		})
	})
	b.Run("atomic", func(b *testing.B) {
		c := &AtomicCounter{}
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.Inc()
			}
		})
	})
}
