//go:build linux

package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
)

// Worker identity, Linux fast path. Each worker goroutine locks itself to
// an OS thread for its lifetime, so the thread id (gettid, ~tens of ns —
// versus the microseconds of parsing runtime.Stack text) uniquely
// identifies the worker goroutine: no other goroutine can ever run on a
// locked thread. Lookups are an atomic load of a copy-on-write map plus
// one map access; the map is only rewritten when workers start or stop.
type workerRegistry struct {
	mu   sync.Mutex
	byID atomic.Pointer[map[int]*worker]
}

// bind registers the calling goroutine as w and returns its unbind
// function. Must be called from w's goroutine before it runs any task.
func (r *workerRegistry) bind(w *worker) (unbind func()) {
	runtime.LockOSThread()
	tid := syscall.Gettid()
	r.set(tid, w)
	return func() {
		r.set(tid, nil)
		runtime.UnlockOSThread()
	}
}

func (r *workerRegistry) set(tid int, w *worker) {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.byID.Load()
	next := make(map[int]*worker)
	if old != nil {
		for k, v := range *old {
			next[k] = v
		}
	}
	if w == nil {
		delete(next, tid)
	} else {
		next[tid] = w
	}
	r.byID.Store(&next)
}

// current returns the worker bound to the calling goroutine, or nil for
// external goroutines.
func (r *workerRegistry) current() *worker {
	m := r.byID.Load()
	if m == nil || len(*m) == 0 {
		return nil
	}
	return (*m)[syscall.Gettid()]
}
