package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"parc751/internal/parctrace"
)

// TestStealTraceConservation pins the steal-edge hook placement: the
// recorder logs a steal only after StealInto's CAS claim landed, so the
// number of steal events must equal the number of steals the deques
// themselves performed — a hook placed before the claim would log
// steals that lost the race and break this equality. Run under -race in
// CI, this is the stress test the satellite audit asks for.
func TestStealTraceConservation(t *testing.T) {
	const workers = 4
	rec := parctrace.NewRecorder(parctrace.Config{
		// Tiny rings with sampling active: the equality below is on the
		// exact per-kind counters, which shedding must never disturb.
		Workers: workers, LaneCap: 64, SampleEvery: 4,
	})
	prev := parctrace.Set(rec)
	defer parctrace.Set(prev)

	p := NewPool(workers)
	defer p.Shutdown()

	// Tasks submitted from inside a worker land on that worker's own
	// deque; wedging the spawner right after the burst forces siblings
	// to steal them — reliable even on a single-CPU host, where a
	// free-running spawner would drain its own deque first.
	var wg sync.WaitGroup
	leaf := func() { wg.Done() }
	for round := 0; round < 8; round++ {
		const children = 64
		wg.Add(children + 1)
		p.Submit(func() {
			for i := 0; i < children; i++ {
				p.Submit(leaf)
			}
			time.Sleep(10 * time.Millisecond)
			wg.Done()
		})
		wg.Wait()
	}
	p.Quiesce()
	parctrace.Set(prev)

	logged := rec.Count(parctrace.KSteal)
	// One KSteal event per successful StealInto operation. The deque's
	// Steals counter tallies stolen *elements* — the task handed to the
	// thief plus every batch-rebalanced sibling (BatchMoved) — so the
	// operation count is their difference.
	snap := p.Stats()
	var batchMoved int64
	for _, w := range snap.Workers {
		batchMoved += w.BatchMoved
	}
	performed := snap.TotalSteals() - batchMoved
	if int64(logged) != performed {
		t.Fatalf("steal conservation broken: %d steal events logged, %d steal operations performed", logged, performed)
	}
	if performed == 0 {
		t.Fatalf("no steals happened — the stress load is not exercising the hook")
	}
	// The run/complete pairing must also be conserved: every envelope
	// the scheduler ran while recording completed exactly once.
	if runs, completes := rec.Count(parctrace.KRun), rec.Count(parctrace.KComplete); runs != completes {
		t.Fatalf("run/complete not conserved: %d runs, %d completes", runs, completes)
	}
	if submits := rec.Count(parctrace.KSubmit); submits != rec.Count(parctrace.KRun) {
		t.Fatalf("submit/run not conserved on a drained pool: %d submits, %d runs",
			submits, rec.Count(parctrace.KRun))
	}
}

// TestDisabledRecorderOverheadGuard is the no-overhead proof for the
// trace hooks, the twin of TestDisabledHookOverheadGuard: detached, every
// instrumentation site costs one atomic pointer load and a branch. The
// guard pins an absolute per-submit ceiling and that the detached path
// is no slower than the attached path, which does strictly more work
// (timestamp, counter, ring write) per event.
func TestDisabledRecorderOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard")
	}
	const tasks = 20000
	measure := func(rec *parctrace.Recorder) time.Duration {
		prev := parctrace.Set(rec)
		defer parctrace.Set(prev)
		p := NewPool(2)
		defer p.Shutdown()
		var sink atomic.Int64
		start := time.Now()
		for i := 0; i < tasks; i++ {
			p.Submit(func() { sink.Add(1) })
		}
		p.Quiesce()
		return time.Since(start)
	}
	attached := func() *parctrace.Recorder {
		return parctrace.NewRecorder(parctrace.Config{Workers: 2, LaneCap: 1024})
	}
	disabled, enabled := time.Hour, time.Hour
	// Best of several trials: minima are robust against scheduler noise
	// on shared CI hardware.
	for trial := 0; trial < 5; trial++ {
		if d := measure(nil); d < disabled {
			disabled = d
		}
		if d := measure(attached()); d < enabled {
			enabled = d
		}
	}
	perSubmit := disabled / tasks
	if perSubmit > 5*time.Microsecond {
		t.Errorf("disabled-recorder submit path costs %v/op, want <= 5µs (trace overhead crept in)", perSubmit)
	}
	if disabled > enabled*2 {
		t.Errorf("disabled recorder (%v) slower than attached recorder (%v): nil fast path broken",
			disabled, enabled)
	}
	t.Logf("submit+run cost: disabled=%v attached=%v for %d tasks", disabled, enabled, tasks)
}
