package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"parc751/internal/faultinject"
)

func TestShutdownTimeoutCleanDrain(t *testing.T) {
	p := NewPool(2)
	var ran atomic.Int32
	for i := 0; i < 50; i++ {
		p.Submit(func() { ran.Add(1) })
	}
	if err := p.ShutdownTimeout(5 * time.Second); err != nil {
		t.Fatalf("clean drain returned %v", err)
	}
	if ran.Load() != 50 {
		t.Fatalf("ran %d tasks, want 50", ran.Load())
	}
	if got := p.Stats().Abandoned; got != 0 {
		t.Fatalf("abandoned = %d on a clean shutdown", got)
	}
}

func TestShutdownTimeoutAbandonsStragglers(t *testing.T) {
	p := NewPool(2)
	release := make(chan struct{})
	var wedged sync.WaitGroup
	wedged.Add(2)
	for i := 0; i < 2; i++ {
		p.Submit(func() { wedged.Done(); <-release })
	}
	wedged.Wait() // both workers are now stuck inside tasks
	for i := 0; i < 5; i++ {
		p.Submit(func() {})
	}

	start := time.Now()
	err := p.ShutdownTimeout(50 * time.Millisecond)
	if !errors.Is(err, ErrShutdownTimeout) {
		t.Fatalf("got %v, want ErrShutdownTimeout", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("timed shutdown did not return promptly")
	}
	if got := p.Stats().Abandoned; got != 7 {
		t.Errorf("abandoned = %d, want 7 (2 wedged + 5 queued)", got)
	}

	// The pool is dead: Submit must panic, further shutdowns are no-ops.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Submit after timed shutdown did not panic")
			}
		}()
		p.Submit(func() {})
	}()
	p.Shutdown() // must return immediately, not hang on the wedged tasks
	if err := p.ShutdownTimeout(time.Millisecond); err != nil {
		t.Errorf("second ShutdownTimeout = %v, want nil no-op", err)
	}
	close(release) // let the wedged goroutines drain
}

// TestShutdownTimeoutAbandonedCountRace audits the leftover-queue count
// under Submits racing a timed-out shutdown. Every worker is wedged inside
// a task so queued work can never execute; submitter goroutines hammer
// Submit while ShutdownTimeout expires. The invariant: once the racing
// submitters have settled (enqueued or panicked), Stats().Abandoned equals
// wedged tasks + every Submit that returned without panicking — no task is
// stranded in a queue without being counted, and nothing is counted twice.
// Run under -race this also checks the counter accesses themselves.
func TestShutdownTimeoutAbandonedCountRace(t *testing.T) {
	const workers, submitters = 4, 8
	for round := 0; round < 20; round++ {
		p := NewPool(workers)
		release := make(chan struct{})
		var wedged sync.WaitGroup
		wedged.Add(workers)
		for i := 0; i < workers; i++ {
			p.Submit(func() { wedged.Done(); <-release })
		}
		wedged.Wait()

		var enqueued atomic.Int64
		start := make(chan struct{})
		var subs sync.WaitGroup
		subs.Add(submitters)
		for g := 0; g < submitters; g++ {
			go func() {
				defer subs.Done()
				<-start
				for i := 0; i < 50; i++ {
					ok := func() (ok bool) {
						defer func() { recover() }() // post-shutdown Submit panics
						p.Submit(func() {})
						return true
					}()
					if !ok {
						return // pool is down; later submits also panic
					}
					enqueued.Add(1)
				}
			}()
		}
		close(start)
		err := p.ShutdownTimeout(time.Duration(round%3) * time.Millisecond)
		if !errors.Is(err, ErrShutdownTimeout) {
			t.Fatalf("round %d: got %v, want ErrShutdownTimeout", round, err)
		}
		subs.Wait() // all racing submits have either enqueued or panicked
		want := int64(workers) + enqueued.Load()
		if got := p.Stats().Abandoned; got != want {
			t.Fatalf("round %d: abandoned = %d, want %d (%d wedged + %d enqueued)",
				round, got, want, workers, enqueued.Load())
		}
		close(release)
	}
}

func TestShutdownIdempotentAfterShutdown(t *testing.T) {
	p := NewPool(2)
	var ran atomic.Int32
	p.Submit(func() { ran.Add(1) })
	p.Shutdown()
	done := make(chan struct{})
	go func() {
		p.Shutdown() // documented no-op, must not hang or panic
		p.Shutdown()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("repeated Shutdown hung")
	}
	if ran.Load() != 1 {
		t.Fatalf("ran = %d, want 1", ran.Load())
	}
}

// TestPoolHooksInjectAndTrace drives a pool with delay rules at all three
// pool sites and checks the injector observed the traffic.
func TestPoolHooksInjectAndTrace(t *testing.T) {
	in := faultinject.New(faultinject.Plan{Rules: []faultinject.Rule{
		{Site: faultinject.SiteSubmit, Kind: faultinject.Delay, Nth: 2, Count: 1, Dur: time.Millisecond},
		{Site: faultinject.SiteRun, Kind: faultinject.Stall, Nth: 1, Count: 1, Dur: 2 * time.Millisecond},
	}})
	p := NewPool(2)
	p.SetFaultInjector(in)
	var ran atomic.Int32
	for i := 0; i < 20; i++ {
		p.Submit(func() { ran.Add(1) })
	}
	p.Shutdown()
	if ran.Load() != 20 {
		t.Fatalf("ran %d, want 20 (faults must not lose tasks)", ran.Load())
	}
	if in.Seen(faultinject.SiteSubmit) != 20 {
		t.Errorf("submit events = %d, want 20", in.Seen(faultinject.SiteSubmit))
	}
	if in.Seen(faultinject.SiteRun) != 20 {
		t.Errorf("run events = %d, want 20", in.Seen(faultinject.SiteRun))
	}
	if in.Fired() != 2 {
		t.Errorf("fired = %d, want 2 (%s)", in.Fired(), in.TraceString())
	}
}

// TestBarrierAbortRacesAwaitAs races Abort against concurrent AwaitAs
// arrivals whose order is skewed by injected arrival delays. The
// invariant is liveness plus a clean split: every party either completes
// a generation or panics ErrBarrierAborted — never deadlocks. Run under
// -race this is the regression net for the abort/arrival window (Abort
// was previously only tested against a quiescent barrier).
func TestBarrierAbortRacesAwaitAs(t *testing.T) {
	const parties = 4
	for round := 0; round < 25; round++ {
		b := NewBarrier(parties)
		in := faultinject.New(faultinject.Plan{Rules: []faultinject.Rule{
			// Periodic sub-millisecond arrival delays desynchronise the
			// team so Abort lands in every phase of the protocol across
			// rounds: pre-arrival, mid-climb, spinning, and parked.
			{Site: faultinject.SiteBarrierArrive, Kind: faultinject.Delay,
				Nth: uint64(round % 3), Every: 5, Dur: 200 * time.Microsecond},
		}})
		b.SetFaultInjector(in)

		var aborted, generations atomic.Int32
		var wg sync.WaitGroup
		for id := 0; id < parties; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						if r != ErrBarrierAborted {
							panic(r)
						}
						aborted.Add(1)
					}
				}()
				for i := 0; i < 40; i++ {
					b.AwaitAs(id)
					generations.Add(1)
				}
			}(id)
		}
		time.Sleep(time.Duration(round*37) * time.Microsecond)
		b.Abort()

		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("round %d: team deadlocked after Abort", round)
		}
		// A party that never saw the abort finished all 40 generations;
		// everyone else must have panicked with ErrBarrierAborted.
		finished := int32(0)
		if g := generations.Load(); g == int32(40*parties) {
			finished = int32(parties)
		}
		if aborted.Load()+finished < 1 {
			t.Fatalf("round %d: no party aborted or finished", round)
		}
	}
}

// TestDisabledHookOverheadGuard is the no-overhead proof for the chaos
// hooks: with no injector attached, Submit's hook is one atomic pointer
// load. The guard pins (a) an absolute per-submit ceiling far below
// anything a real hook slip-up would produce, and (b) that the disabled
// path is no slower than the enabled-but-empty-plan path (which does
// strictly more work per event).
func TestDisabledHookOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard")
	}
	const tasks = 20000
	measure := func(in *faultinject.Injector) time.Duration {
		p := NewPool(2)
		defer p.Shutdown()
		p.SetFaultInjector(in)
		var sink atomic.Int64
		start := time.Now()
		for i := 0; i < tasks; i++ {
			p.Submit(func() { sink.Add(1) })
		}
		p.Quiesce()
		return time.Since(start)
	}
	empty := faultinject.New(faultinject.Plan{})
	var disabled, enabled time.Duration
	// Take the best of several trials each: minima are robust against
	// scheduler noise on shared CI hardware.
	disabled, enabled = time.Hour, time.Hour
	for trial := 0; trial < 5; trial++ {
		if d := measure(nil); d < disabled {
			disabled = d
		}
		if d := measure(empty); d < enabled {
			enabled = d
		}
	}
	perSubmit := disabled / tasks
	if perSubmit > 5*time.Microsecond {
		t.Errorf("disabled-hook submit path costs %v/op, want <= 5µs (hook overhead crept in)", perSubmit)
	}
	if disabled > enabled*2 {
		t.Errorf("disabled hooks (%v) slower than enabled empty plan (%v): nil fast path broken",
			disabled, enabled)
	}
	t.Logf("submit+run cost: disabled=%v enabled(empty plan)=%v for %d tasks", disabled, enabled, tasks)
}

func BenchmarkSubmitHookDisabled(b *testing.B) {
	p := NewPool(2)
	defer p.Shutdown()
	var sink atomic.Int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Submit(func() { sink.Add(1) })
	}
	p.Quiesce()
}

func BenchmarkSubmitHookAttachedEmptyPlan(b *testing.B) {
	p := NewPool(2)
	defer p.Shutdown()
	p.SetFaultInjector(faultinject.New(faultinject.Plan{}))
	var sink atomic.Int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Submit(func() { sink.Add(1) })
	}
	p.Quiesce()
}
