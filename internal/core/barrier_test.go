package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBarrierTreeShapes exercises every tree shape from a single node up
// through three levels (parties 1..17 with fan-in 4): each generation must
// release everyone and elect exactly one serial thread, for every shape.
func TestBarrierTreeShapes(t *testing.T) {
	const rounds = 4
	for parties := 1; parties <= 17; parties++ {
		b := NewBarrier(parties)
		serials := make([]atomic.Int32, rounds)
		var wg sync.WaitGroup
		for id := 0; id < parties; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					gen, serial := b.AwaitAs(id)
					if gen != r {
						t.Errorf("parties=%d party=%d round=%d: gen=%d", parties, id, r, gen)
						return
					}
					if serial {
						serials[r].Add(1)
					}
				}
			}(id)
		}
		wg.Wait()
		for r := 0; r < rounds; r++ {
			if serials[r].Load() != 1 {
				t.Fatalf("parties=%d round=%d: %d serial threads, want 1",
					parties, r, serials[r].Load())
			}
		}
	}
}

// TestBarrierPartyStats checks the deterministic accounting invariants of
// the per-party counters: every party records one wait per generation, and
// each generation's parties-1 non-serial members record exactly one
// spin-release or park.
func TestBarrierPartyStats(t *testing.T) {
	const parties, rounds = 5, 8
	b := NewBarrier(parties)
	var wg sync.WaitGroup
	for id := 0; id < parties; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				b.AwaitAs(id)
			}
		}(id)
	}
	wg.Wait()
	var waits, waited int64
	for id := 0; id < parties; id++ {
		st := b.PartyStats(id)
		if st.Waits != rounds {
			t.Errorf("party %d: Waits=%d, want %d", id, st.Waits, rounds)
		}
		waits += st.Waits
		waited += st.SpinReleases + st.Parks
	}
	if waits != parties*rounds {
		t.Errorf("total waits %d, want %d", waits, parties*rounds)
	}
	if waited != (parties-1)*rounds {
		t.Errorf("total spin-releases+parks %d, want %d (one per non-serial member per generation)",
			waited, (parties-1)*rounds)
	}
	if st := b.PartyStats(-1); st != (BarrierStats{}) {
		t.Error("out-of-range PartyStats not zero")
	}
}

// TestBarrierAwaitAsOutOfRange: ids outside [0, parties) fall back to
// ticket assignment and the barrier still completes.
func TestBarrierAwaitAsOutOfRange(t *testing.T) {
	const parties = 3
	b := NewBarrier(parties)
	var wg sync.WaitGroup
	var serials atomic.Int32
	for i := 0; i < parties; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, serial := b.AwaitAs(100 + i); serial {
				serials.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if serials.Load() != 1 {
		t.Fatalf("%d serial threads, want 1", serials.Load())
	}
}

// TestBarrierAbortReleasesFutureGeneration: abort must fail-fast parties
// blocked in a *later* generation than the one in flight when Abort ran,
// and parties whose generation completed concurrently with the abort must
// return normally rather than panic.
func TestBarrierAbortReleasesFutureGeneration(t *testing.T) {
	b := NewBarrier(2)
	// Complete one generation normally.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); b.Await() }()
	b.Await()
	wg.Wait()

	// Block one party in generation 1, then abort.
	panics := make(chan any, 1)
	go func() {
		defer func() { panics <- recover() }()
		b.Await()
	}()
	time.Sleep(2 * time.Millisecond)
	b.Abort()
	select {
	case v := <-panics:
		if v != ErrBarrierAborted {
			t.Fatalf("blocked party got %v, want ErrBarrierAborted", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("abort did not release the blocked party")
	}
}
