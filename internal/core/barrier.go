package core

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"parc751/internal/faultinject"
)

// ErrBarrierAborted is the panic value delivered to parties blocked in
// Await when the barrier is aborted (because a sibling died and can never
// arrive).
var ErrBarrierAborted = errors.New("core: barrier aborted")

// barrierFanIn is the arity of the combining tree: how many arrivals each
// tree node absorbs before forwarding one arrival to its parent. Four
// keeps the tree depth at two for team sizes up to 16 while spreading
// arrival traffic over multiple cache lines.
const barrierFanIn = 4

// barrierSpin is the busy-spin budget a waiter burns before yielding. On a
// single-P runtime spinning can only delay the arrivals being waited for,
// so the budget is zero there and waiters go straight to Gosched.
var barrierSpin = func() int {
	if runtime.GOMAXPROCS(0) > 1 {
		return 128
	}
	return 0
}()

// barrierYields is how many Gosched rounds a waiter tries after spinning
// and before parking on its park word. On small machines the remaining
// arrivals usually complete within these yields, so the parking protocol
// (and its wakeup syscalls) is never touched.
const barrierYields = 4

// barrierNode is one combining-tree node, padded so concurrent arrivals at
// sibling nodes do not false-share.
type barrierNode struct {
	count  atomic.Int32 // arrivals still missing this generation
	init   int32        // arrivals expected per generation
	parent int32        // index into Barrier.nodes; -1 for the root
	_      [52]byte
}

// barrierWaiter is one party's permanent park word: a claim/cancel CAS
// word plus a one-token wake channel, both allocated once at NewBarrier
// and reused every generation — a barrier cycle allocates nothing.
//
// gen holds 0 when the slot is empty and g+1 while the party is parked
// (or about to park) waiting for generation g. The +1 keeps 0 free as
// the empty sentinel. Exactly one of the releaser (claiming with
// CAS(g+1→0) before sending the token) and the waiter (cancelling with
// the same CAS when it sees the generation finished on its own) wins the
// word; the loser of a claimed cancellation consumes the in-flight
// token. ch is drained by its owner before every publication, so it
// never holds more than one token and the claimer's send cannot block.
type barrierWaiter struct {
	gen atomic.Int64
	ch  chan struct{}
	_   [40]byte
}

// BarrierStats is one party's cumulative barrier interaction counters:
// how many times it arrived, how many releases it caught while
// spinning/yielding, and how many times it had to park on its park word.
// SpinReleases + Parks counts the generations the party waited for (the
// remainder were generations it completed itself as the serial thread).
type BarrierStats struct {
	Waits        int64
	SpinReleases int64
	Parks        int64
}

// barrierCounters is the padded per-party storage behind BarrierStats.
type barrierCounters struct {
	waits atomic.Int64
	spins atomic.Int64
	parks atomic.Int64
	_     [40]byte
}

// Barrier is a reusable (cyclic) barrier for a fixed number of parties,
// implemented as a combining tree: arrivals count down at tree leaves and
// propagate upward, so parties contend on at most barrierFanIn-way shared
// counters instead of one central mutex. Waiters spin briefly, yield,
// then park on a per-party park word; the releaser (the last arrival,
// which is also the generation's serial thread) resets the tree, advances
// the done generation counter, and wakes every parked party.
//
// Generations are identified by a monotonic counter rather than the
// previous design's per-generation heap object: generation g is over
// exactly when done > g, a single integer comparison that cannot be
// confused by recycled state, and the park channels live for the life of
// the barrier — there is no lazily created channel whose publication
// could race a concurrent Abort or releaser (the bug this rewrite
// removes), and a full await/release cycle performs no allocation.
//
// Parties with a stable identity should use AwaitAs, which pins each party
// to a fixed tree leaf; anonymous parties use Await, which assigns leaf
// positions per generation from a ticket counter. The two styles must not
// be mixed on one barrier: both rely on the generation's positions forming
// an exact permutation of [0, parties).
type Barrier struct {
	parties int
	nodes   []barrierNode
	stats   []barrierCounters
	waiters []barrierWaiter

	// done counts completed generations; generation g is released once
	// done > g. tickets allocates arrival positions for anonymous Await:
	// the barrier contract serialises generations, so each generation
	// consumes a contiguous block of parties tickets and tickets mod
	// parties is a permutation of the leaf positions within it.
	done    atomic.Int64
	tickets atomic.Int64

	// parked counts parties that have published (or are about to
	// publish) a park word. The releaser advances done first and reads
	// parked second, while a waiter increments parked before publishing
	// and re-checks done after — the store/load pairing guarantees that
	// a releaser reading zero can only have missed waiters whose
	// re-check will observe the advanced done and retract. This lets
	// release skip the O(parties) park-word scan entirely in the common
	// case where every waiter caught the release by spinning or
	// yielding, which is the dominant regime on small machines.
	parked atomic.Int64

	aborted   atomic.Bool
	abortCh   chan struct{}
	abortOnce sync.Once

	// fi is the optional chaos injector: when attached, every arrival
	// passes a SiteBarrierArrive point (delay rules skew arrival order).
	// nil in production — one atomic load per arrival.
	fi atomic.Pointer[faultinject.Injector]
}

// NewBarrier creates a barrier for parties participants (minimum 1).
func NewBarrier(parties int) *Barrier {
	if parties < 1 {
		parties = 1
	}
	b := &Barrier{
		parties: parties,
		stats:   make([]barrierCounters, parties),
		waiters: make([]barrierWaiter, parties),
		abortCh: make(chan struct{}),
	}
	for i := range b.waiters {
		b.waiters[i].ch = make(chan struct{}, 1)
	}
	// Level sizes of the combining tree: level 0 absorbs the parties, each
	// further level absorbs the completions of the one below, until a
	// single root remains.
	sizes := []int{}
	arrivals := parties
	for {
		n := (arrivals + barrierFanIn - 1) / barrierFanIn
		sizes = append(sizes, n)
		if n == 1 {
			break
		}
		arrivals = n
	}
	total := 0
	for _, n := range sizes {
		total += n
	}
	b.nodes = make([]barrierNode, total)
	start := 0
	arrivals = parties
	for _, n := range sizes {
		for j := 0; j < n; j++ {
			in := barrierFanIn
			if j == n-1 {
				in = arrivals - barrierFanIn*(n-1)
			}
			nd := &b.nodes[start+j]
			nd.init = int32(in)
			nd.count.Store(int32(in))
			// Parent is the j/fanIn'th node of the next level (which
			// starts right after this one); the root overwrites below.
			nd.parent = int32(start + n + j/barrierFanIn)
		}
		start += n
		arrivals = n
	}
	b.nodes[total-1].parent = -1
	return b
}

// Await blocks until all parties have called Await, then releases them
// all. It returns the index of this barrier generation (0, 1, 2, ...), and
// true for exactly one caller per generation (the "serial thread", which
// OpenMP uses for single-after-barrier semantics).
// Await panics with ErrBarrierAborted (in every blocked or future caller)
// once Abort has been called, so a dead sibling cannot deadlock the team.
func (b *Barrier) Await() (gen int, serial bool) {
	if b.aborted.Load() {
		panic(ErrBarrierAborted)
	}
	return b.await(int(b.tickets.Add(1)-1) % b.parties)
}

// AwaitAs is Await for a party with a stable identity id in
// [0, Parties()): the party always arrives at the same tree leaf, and its
// wait behaviour is recorded under PartyStats(id). The ids of one
// generation's callers must form a permutation of [0, Parties()) — the
// SPMD team contract. Out-of-range ids fall back to ticket assignment.
func (b *Barrier) AwaitAs(id int) (gen int, serial bool) {
	if b.aborted.Load() {
		panic(ErrBarrierAborted)
	}
	if id < 0 || id >= b.parties {
		id = int(b.tickets.Add(1)-1) % b.parties
	}
	return b.await(id)
}

// SetFaultInjector attaches (or, with nil, detaches) a chaos injector.
// Arrival-delay rules then perturb the order in which parties reach the
// tree, the schedule dimension barrier bugs hide in.
func (b *Barrier) SetFaultInjector(in *faultinject.Injector) { b.fi.Store(in) }

func (b *Barrier) await(pos int) (int, bool) {
	if in := b.fi.Load(); in != nil {
		in.Point(faultinject.SiteBarrierArrive)
	}
	// The barrier contract serialises generations, so the count of
	// completed generations is also the index of the one being entered.
	gen := b.done.Load()
	st := &b.stats[pos]
	st.waits.Add(1)
	// Climb: count down at the leaf; the last arrival at each node carries
	// one arrival to the parent. The party that completes the root is the
	// generation's last arrival and becomes releaser + serial thread.
	ni := pos / barrierFanIn
	for {
		nd := &b.nodes[ni]
		if nd.count.Add(-1) > 0 {
			break
		}
		if nd.parent < 0 {
			b.release(gen)
			return int(gen), true
		}
		ni = int(nd.parent)
	}
	// Waiter: spin, then yield, then park. The generation is over the
	// moment done moves past it.
	for i := 0; i < barrierSpin; i++ {
		if b.done.Load() > gen {
			st.spins.Add(1)
			return int(gen), false
		}
	}
	for i := 0; i < barrierYields; i++ {
		runtime.Gosched()
		if b.done.Load() > gen {
			st.spins.Add(1)
			return int(gen), false
		}
		if b.aborted.Load() {
			if b.done.Load() > gen {
				st.spins.Add(1)
				return int(gen), false
			}
			panic(ErrBarrierAborted)
		}
	}
	// Park on this party's permanent park word.
	wtr := &b.waiters[pos]
	// Drain a stale token from a generation whose release this party
	// caught by spinning: tokens are wake hints, done is the truth, and
	// the channel must be empty before a new claim can be published.
	select {
	case <-wtr.ch:
	default:
	}
	// Announce intent to park before publishing the word: a releaser
	// that misses this increment advanced done before it, so the
	// re-check below cannot miss the release (see Barrier.parked).
	b.parked.Add(1)
	wtr.gen.Store(gen + 1)
	// Publication/recheck handshake: the releaser advances done before
	// scanning the park words, so either it sees this publication (and a
	// token is guaranteed), or this recheck sees done advanced (and the
	// publication must be retracted before leaving).
	if b.done.Load() > gen {
		if !wtr.gen.CompareAndSwap(gen+1, 0) {
			<-wtr.ch // claimed: the token is in flight, consume it
		}
		b.parked.Add(-1)
		st.spins.Add(1)
		return int(gen), false
	}
	if b.aborted.Load() {
		if !wtr.gen.CompareAndSwap(gen+1, 0) {
			<-wtr.ch
		}
		b.parked.Add(-1)
		if b.done.Load() > gen {
			st.spins.Add(1)
			return int(gen), false
		}
		panic(ErrBarrierAborted)
	}
	st.parks.Add(1)
	select {
	case <-wtr.ch:
		// Only this generation's releaser can have claimed the word, and
		// it advanced done first.
		b.parked.Add(-1)
		return int(gen), false
	case <-b.abortCh:
		// Retract the publication; a racing releaser that already
		// claimed it owes a token that must not be left behind.
		if !wtr.gen.CompareAndSwap(gen+1, 0) {
			<-wtr.ch
		}
		b.parked.Add(-1)
		if b.done.Load() > gen {
			// The generation completed concurrently with the abort;
			// this party's barrier succeeded.
			return int(gen), false
		}
		panic(ErrBarrierAborted)
	}
}

// release finishes generation gen as its serial thread: reset the tree so
// the next generation can arrive, advance done (releasing spinners), then
// claim and wake every parked party.
func (b *Barrier) release(gen int64) {
	// Reset before publishing: no party can re-arrive until it observes
	// done advance, which happens after the counters are whole again.
	for i := range b.nodes {
		b.nodes[i].count.Store(b.nodes[i].init)
	}
	b.done.Store(gen + 1)
	// Fast exit when no party is parked (they all caught the release by
	// spinning or yielding): the load is ordered after the done store,
	// so any waiter this misses increments parked only after the store
	// became visible and its own re-check retracts (see Barrier.parked).
	// Skipping the scan removes parties CAS probes from the serial
	// thread's critical path — measurable at T8 on a single-CPU host.
	if b.parked.Load() == 0 {
		return
	}
	for i := range b.waiters {
		wtr := &b.waiters[i]
		if wtr.gen.CompareAndSwap(gen+1, 0) {
			// Claimed: this party is parked (or mid-recheck) for gen.
			// The send cannot block — the owner drained ch before
			// publishing and the claim CAS admits exactly one sender.
			wtr.ch <- struct{}{}
		}
	}
}

// Abort permanently breaks the barrier: every party blocked in Await (and
// every later caller) panics with ErrBarrierAborted. Used when a party
// dies and can never arrive.
func (b *Barrier) Abort() {
	b.aborted.Store(true)
	b.abortOnce.Do(func() { close(b.abortCh) })
}

// Parties returns the number of participants.
func (b *Barrier) Parties() int { return b.parties }

// PartyStats returns the cumulative wait counters recorded for party id by
// AwaitAs. Anonymous Await calls are credited to the per-generation ticket
// position, so aggregate totals remain meaningful either way.
func (b *Barrier) PartyStats(id int) BarrierStats {
	if id < 0 || id >= b.parties {
		return BarrierStats{}
	}
	st := &b.stats[id]
	return BarrierStats{
		Waits:        st.waits.Load(),
		SpinReleases: st.spins.Load(),
		Parks:        st.parks.Load(),
	}
}
