package core

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Future completion states.
const (
	futPending    uint32 = iota // not complete
	futCompleting               // a completer has claimed the write
	futDone                     // value and error are published
)

// Future is a write-once result container. The zero value is not usable;
// create with NewFuture, or acquire a recycled envelope from a
// FuturePool.
//
// The envelope is built for reuse: completion is an atomic state machine
// plus a condition variable (both reusable across recycle cycles), and
// the Done channel — the one piece that cannot be reused once closed —
// is created lazily only for callers that actually select on it. A
// future that is completed and joined with Get therefore allocates
// nothing beyond its own struct, and a pooled future allocates nothing
// at all in steady state.
type Future[T any] struct {
	state atomic.Uint32
	// gen is the envelope's recycle generation, bumped by FuturePool.Put.
	// A holder that captured Gen() at acquisition can detect that its
	// envelope was recycled out from under it (see CheckGen) and panic
	// instead of silently reading another task's result.
	gen atomic.Uint64

	mu   sync.Mutex
	cond sync.Cond // lazily bound to mu on first blocking Get

	// done is the lazily created completion channel; chClosed arbitrates
	// the close between a racing completer and installer.
	done     atomic.Pointer[chan struct{}]
	chClosed atomic.Uint32

	val T
	err error
}

// NewFuture returns an incomplete future.
func NewFuture[T any]() *Future[T] {
	f := &Future[T]{}
	f.cond.L = &f.mu
	return f
}

// Complete fulfils the future. Later completions are ignored (write-once).
func (f *Future[T]) Complete(v T, err error) {
	if !f.state.CompareAndSwap(futPending, futCompleting) {
		return
	}
	f.val, f.err = v, err
	// Publish under the mutex: blocking getters check state with mu held
	// before waiting, so the store→broadcast pair cannot slip between
	// their check and their wait.
	f.mu.Lock()
	f.state.Store(futDone)
	f.mu.Unlock()
	f.cond.Broadcast()
	if ch := f.done.Load(); ch != nil {
		f.closeDone(*ch)
	}
}

// closeDone closes the done channel exactly once, whichever of the
// completer or a racing Done() installer gets here first.
func (f *Future[T]) closeDone(ch chan struct{}) {
	if f.chClosed.CompareAndSwap(0, 1) {
		close(ch)
	}
}

// Done returns a channel closed when the future completes. The channel is
// created on first call; hot paths that join with Get never pay for it.
func (f *Future[T]) Done() <-chan struct{} {
	if ch := f.done.Load(); ch != nil {
		return *ch
	}
	ch := make(chan struct{})
	if f.done.CompareAndSwap(nil, &ch) {
		// The completer loads f.done after storing futDone; if it ran
		// before the install it missed this channel, so close it here.
		if f.state.Load() == futDone {
			f.closeDone(ch)
		}
		return ch
	}
	return *f.done.Load()
}

// IsDone reports completion without blocking.
func (f *Future[T]) IsDone() bool { return f.state.Load() == futDone }

// Get blocks until completion and returns the value and error.
func (f *Future[T]) Get() (T, error) {
	if f.state.Load() == futDone {
		return f.val, f.err
	}
	f.mu.Lock()
	for f.state.Load() != futDone {
		f.cond.Wait()
	}
	f.mu.Unlock()
	return f.val, f.err
}

// TryGet returns immediately; ok is false if the future is incomplete.
func (f *Future[T]) TryGet() (v T, err error, ok bool) {
	if f.state.Load() == futDone {
		return f.val, f.err, true
	}
	var zero T
	return zero, nil, false
}

// Gen returns the envelope's recycle generation. Holders that may outlive
// their claim on a pooled envelope snapshot it at acquisition and guard
// later accesses with CheckGen.
func (f *Future[T]) Gen() uint64 { return f.gen.Load() }

// CheckGen panics if the envelope has been recycled since the holder
// captured gen — a stale handle touching a reused future is a lifetime
// bug that must fail loudly rather than corrupt an unrelated task's
// result.
func (f *Future[T]) CheckGen(gen uint64) {
	if g := f.gen.Load(); g != gen {
		panic(fmt.Sprintf(
			"core: stale future handle (generation %d, envelope now %d): the future was released to its pool and recycled",
			gen, g))
	}
}

// FuturePool recycles Future envelopes. Get returns a reset, incomplete
// future; Put recycles a completed one, bumping its generation so stale
// handles fail loudly (CheckGen) instead of reading a successor's result.
// The zero value is ready to use.
type FuturePool[T any] struct {
	p sync.Pool
}

// Get returns an incomplete future, recycled when one is available.
func (fp *FuturePool[T]) Get() *Future[T] {
	v := fp.p.Get()
	if v == nil {
		return NewFuture[T]()
	}
	return v.(*Future[T])
}

// Put recycles f. The caller must own the only live handle: after Put,
// every other holder's access panics via CheckGen at best and races the
// next owner at worst. Incomplete futures are rejected (a waiter could
// still be parked on them).
func (fp *FuturePool[T]) Put(f *Future[T]) {
	if f.state.Load() != futDone {
		panic("core: FuturePool.Put of an incomplete future (a waiter could still be parked on it)")
	}
	f.gen.Add(1)
	var zero T
	f.val, f.err = zero, nil
	f.done.Store(nil) // the old closed channel belongs to old waiters
	f.chClosed.Store(0)
	f.state.Store(futPending)
	fp.p.Put(f)
}
