package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestCatchNoPanic(t *testing.T) {
	if err := Catch(func() {}); err != nil {
		t.Fatalf("err = %v", err)
	}
}

func TestCatchPanic(t *testing.T) {
	err := Catch(func() { panic("boom") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PanicError", err)
	}
	if pe.Value != "boom" {
		t.Errorf("Value = %v", pe.Value)
	}
	if pe.Stack == "" {
		t.Error("stack missing")
	}
	if pe.Error() == "" {
		t.Error("empty error text")
	}
}

func TestFutureCompleteAndGet(t *testing.T) {
	f := NewFuture[int]()
	if f.IsDone() {
		t.Fatal("new future claims done")
	}
	if _, _, ok := f.TryGet(); ok {
		t.Fatal("TryGet on incomplete future")
	}
	go f.Complete(42, nil)
	v, err := f.Get()
	if v != 42 || err != nil {
		t.Fatalf("Get = %d, %v", v, err)
	}
	if !f.IsDone() {
		t.Fatal("done future claims incomplete")
	}
	if v, _, ok := f.TryGet(); !ok || v != 42 {
		t.Fatalf("TryGet = %d, %v", v, ok)
	}
}

func TestFutureWriteOnce(t *testing.T) {
	f := NewFuture[string]()
	f.Complete("first", nil)
	f.Complete("second", errors.New("late"))
	v, err := f.Get()
	if v != "first" || err != nil {
		t.Fatalf("second completion overwrote: %q, %v", v, err)
	}
}

func TestFutureError(t *testing.T) {
	f := NewFuture[int]()
	want := errors.New("failed")
	f.Complete(0, want)
	if _, err := f.Get(); err != want {
		t.Fatalf("err = %v", err)
	}
}

func TestPoolRunsAllTasks(t *testing.T) {
	p := NewPool(4)
	defer p.Shutdown()
	var n atomic.Int64
	const tasks = 1000
	for i := 0; i < tasks; i++ {
		p.Submit(func() { n.Add(1) })
	}
	p.Quiesce()
	if n.Load() != tasks {
		t.Fatalf("ran %d of %d", n.Load(), tasks)
	}
	if p.Executed() < tasks {
		t.Fatalf("Executed = %d", p.Executed())
	}
}

func TestPoolSizeClamp(t *testing.T) {
	p := NewPool(0)
	defer p.Shutdown()
	if p.Size() != 1 {
		t.Fatalf("Size = %d, want 1", p.Size())
	}
}

func TestPoolSurvivesPanickingTask(t *testing.T) {
	p := NewPool(2)
	defer p.Shutdown()
	p.Submit(func() { panic("task bug") })
	var ok atomic.Bool
	p.Submit(func() { ok.Store(true) })
	p.Quiesce()
	if !ok.Load() {
		t.Fatal("pool died after a panicking task")
	}
}

func TestOnWorker(t *testing.T) {
	p := NewPool(2)
	defer p.Shutdown()
	if p.OnWorker() {
		t.Fatal("test goroutine claims worker status")
	}
	res := make(chan bool, 1)
	p.Submit(func() { res <- p.OnWorker() })
	if !<-res {
		t.Fatal("task not recognised as on-worker")
	}
}

func TestSubmitFromWorkerUsesOwnDeque(t *testing.T) {
	// Nested submission must work and run everything.
	p := NewPool(2)
	defer p.Shutdown()
	var n atomic.Int64
	var wg sync.WaitGroup
	wg.Add(10 * 10)
	for i := 0; i < 10; i++ {
		p.Submit(func() {
			for j := 0; j < 10; j++ {
				p.Submit(func() {
					n.Add(1)
					wg.Done()
				})
			}
		})
	}
	wg.Wait()
	if n.Load() != 100 {
		t.Fatalf("nested tasks ran %d", n.Load())
	}
}

// TestHelpAvoidsJoinDeadlock is the critical runtime property: a
// single-worker pool running a task that blocks on child futures would
// deadlock without helping.
func TestHelpAvoidsJoinDeadlock(t *testing.T) {
	p := NewPool(1)
	defer p.Shutdown()
	result := make(chan int, 1)
	p.Submit(func() {
		child := NewFuture[int]()
		p.Submit(func() { child.Complete(7, nil) })
		p.Help(child.Done())
		v, _ := child.Get()
		result <- v
	})
	select {
	case v := <-result:
		if v != 7 {
			t.Fatalf("child result = %d", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("join deadlocked on single-worker pool")
	}
}

func TestHelpRecursive(t *testing.T) {
	// Recursive fib-style decomposition on a 2-worker pool: every level
	// joins on children; helping must keep all of it moving.
	p := NewPool(2)
	defer p.Shutdown()
	var fib func(n int) int
	fib = func(n int) int {
		if n < 2 {
			return n
		}
		f := NewFuture[int]()
		p.Submit(func() { f.Complete(fib(n-1), nil) })
		b := fib(n - 2)
		p.Help(f.Done())
		a, _ := f.Get()
		return a + b
	}
	done := make(chan int, 1)
	p.Submit(func() { done <- fib(12) })
	select {
	case v := <-done:
		if v != 144 {
			t.Fatalf("fib(12) = %d", v)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("recursive join deadlocked")
	}
}

func TestHelpFromExternalGoroutine(t *testing.T) {
	p := NewPool(1)
	defer p.Shutdown()
	f := NewFuture[int]()
	p.Submit(func() { f.Complete(1, nil) })
	p.Help(f.Done()) // external helper: must return once future completes
	if !f.IsDone() {
		t.Fatal("future incomplete after Help returned")
	}
}

func TestShutdownRunsBacklog(t *testing.T) {
	p := NewPool(2)
	var n atomic.Int64
	for i := 0; i < 500; i++ {
		p.Submit(func() { n.Add(1) })
	}
	p.Shutdown()
	if n.Load() != 500 {
		t.Fatalf("%d of 500 ran before shutdown", n.Load())
	}
}

func TestBarrierReleasesTogether(t *testing.T) {
	const parties = 4
	b := NewBarrier(parties)
	var before, after atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < parties; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			before.Add(1)
			b.Await()
			// By the time anyone passes, all must have arrived.
			if before.Load() != parties {
				t.Errorf("released with only %d arrived", before.Load())
			}
			after.Add(1)
		}()
	}
	wg.Wait()
	if after.Load() != parties {
		t.Fatalf("only %d passed", after.Load())
	}
}

func TestBarrierCyclic(t *testing.T) {
	const parties, rounds = 3, 5
	b := NewBarrier(parties)
	var wg sync.WaitGroup
	gens := make([][]int, parties)
	for i := 0; i < parties; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				g, _ := b.Await()
				gens[i] = append(gens[i], g)
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < parties; i++ {
		for r := 0; r < rounds; r++ {
			if gens[i][r] != r {
				t.Fatalf("party %d saw generation %d at round %d", i, gens[i][r], r)
			}
		}
	}
}

func TestBarrierSerialExactlyOne(t *testing.T) {
	const parties = 5
	b := NewBarrier(parties)
	var serials atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < parties; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, serial := b.Await(); serial {
				serials.Add(1)
			}
		}()
	}
	wg.Wait()
	if serials.Load() != 1 {
		t.Fatalf("%d serial parties, want 1", serials.Load())
	}
}

func TestBarrierSingleParty(t *testing.T) {
	b := NewBarrier(1)
	for r := 0; r < 3; r++ {
		g, serial := b.Await()
		if g != r || !serial {
			t.Fatalf("round %d: gen=%d serial=%v", r, g, serial)
		}
	}
	if NewBarrier(0).Parties() != 1 {
		t.Error("parties clamp failed")
	}
}

func TestBarrierAbortWakesWaiters(t *testing.T) {
	b := NewBarrier(3)
	panics := make(chan any, 2)
	for i := 0; i < 2; i++ {
		go func() {
			defer func() { panics <- recover() }()
			b.Await() // the third party never arrives
		}()
	}
	time.Sleep(5 * time.Millisecond)
	b.Abort()
	for i := 0; i < 2; i++ {
		select {
		case v := <-panics:
			if v != ErrBarrierAborted {
				t.Fatalf("waiter panicked with %v", v)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("abort did not wake waiter")
		}
	}
	// Later callers fail immediately too.
	defer func() {
		if recover() != ErrBarrierAborted {
			t.Fatal("post-abort Await did not panic")
		}
	}()
	b.Await()
}

func TestStaticChunksCoverage(t *testing.T) {
	f := func(nRaw, pRaw uint8) bool {
		n, p := int(nRaw), int(pRaw%32)+1
		chunks := StaticChunks(n, p)
		covered := 0
		prevHi := 0
		for _, c := range chunks {
			if c.Lo != prevHi || c.Hi < c.Lo {
				return false
			}
			covered += c.Len()
			prevHi = c.Hi
		}
		if n == 0 {
			return len(chunks) == 0
		}
		// Sizes differ by at most one.
		if len(chunks) > 0 {
			min, max := chunks[0].Len(), chunks[0].Len()
			for _, c := range chunks {
				if c.Len() < min {
					min = c.Len()
				}
				if c.Len() > max {
					max = c.Len()
				}
			}
			if max-min > 1 {
				return false
			}
		}
		return covered == n && prevHi == n && len(chunks) <= p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBlockChunksCoverage(t *testing.T) {
	f := func(nRaw, cRaw uint8) bool {
		n, chunk := int(nRaw), int(cRaw%16)+1
		chunks := BlockChunks(n, chunk)
		covered, prevHi := 0, 0
		for i, c := range chunks {
			if c.Lo != prevHi {
				return false
			}
			if c.Len() > chunk {
				return false
			}
			if c.Len() < chunk && i != len(chunks)-1 {
				return false // only the last chunk may be short
			}
			covered += c.Len()
			prevHi = c.Hi
		}
		return covered == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChunksDegenerate(t *testing.T) {
	if StaticChunks(-1, 4) != nil || StaticChunks(4, 0) != nil {
		t.Error("degenerate static chunks not nil")
	}
	if BlockChunks(0, 4) != nil || BlockChunks(4, 0) != nil {
		t.Error("degenerate block chunks not nil")
	}
	cs := StaticChunks(2, 8)
	if len(cs) != 2 {
		t.Errorf("n<p gave %d chunks", len(cs))
	}
}

func BenchmarkPoolSubmit(b *testing.B) {
	p := NewPool(4)
	defer p.Shutdown()
	var wg sync.WaitGroup
	wg.Add(b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Submit(wg.Done)
	}
	wg.Wait()
}

func BenchmarkBarrier(b *testing.B) {
	bar := NewBarrier(1)
	for i := 0; i < b.N; i++ {
		bar.Await()
	}
}

func BenchmarkStaticChunks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		StaticChunks(100000, 16)
	}
}

// Regression: Submit after Shutdown must panic loudly instead of silently
// stranding the task (workers are gone; any join on it would deadlock).
func TestSubmitAfterShutdownPanics(t *testing.T) {
	p := NewPool(2)
	p.Shutdown()
	defer func() {
		if recover() == nil {
			t.Fatal("Submit after Shutdown did not panic")
		}
	}()
	p.Submit(func() {})
}

func TestShutdownIdempotent(t *testing.T) {
	p := NewPool(2)
	var ran atomic.Bool
	p.Submit(func() { ran.Store(true) })
	p.Shutdown()
	p.Shutdown() // second call must be a no-op, not a double channel close
	if !ran.Load() {
		t.Fatal("task did not run before shutdown")
	}
	// Concurrent callers racing the first close must also be safe.
	q := NewPool(2)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); q.Shutdown() }()
	}
	wg.Wait()
}

// Stress the Submit/findWork window under many external submitters and a
// tiny pool: the queued counter must never strand a parking worker (a
// missed wakeup here shows up as a hang). Run under -race in CI.
func TestSubmitStressNoMissedWakeup(t *testing.T) {
	p := NewPool(2)
	defer p.Shutdown()
	const submitters = 16
	const perSubmitter = 500
	var ran atomic.Int64
	done := make(chan struct{})
	go func() {
		var wg sync.WaitGroup
		for s := 0; s < submitters; s++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perSubmitter; i++ {
					p.Submit(func() { ran.Add(1) })
					if i%7 == 0 {
						// Mix in worker-side spawning via nested submits.
						p.Submit(func() {
							p.Submit(func() { ran.Add(1) })
						})
					}
				}
			}()
		}
		wg.Wait()
		p.Quiesce()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("stress run hung: ran=%d queued-ish inflight", ran.Load())
	}
	want := int64(submitters * (perSubmitter + (perSubmitter+6)/7))
	if ran.Load() != want {
		t.Fatalf("ran %d of %d tasks", ran.Load(), want)
	}
}

// The scheduler snapshot must conserve tasks: everything submitted is
// accounted for by deque pops, steals, and global-queue service.
func TestPoolStatsSnapshot(t *testing.T) {
	p := NewPool(4)
	defer p.Shutdown()
	const ext = 500
	var wg sync.WaitGroup
	wg.Add(ext)
	for i := 0; i < ext; i++ {
		p.Submit(func() {
			// Each external task spawns one child from the worker side.
			p.Submit(wg.Done)
		})
	}
	wg.Wait()
	p.Quiesce()
	s := p.Stats()
	if s.Executed != 2*ext {
		t.Fatalf("Executed = %d, want %d", s.Executed, 2*ext)
	}
	if s.Inflight != 0 || s.Queued != 0 || s.GlobalDepth != 0 {
		t.Fatalf("quiesced pool not settled: %+v", s)
	}
	if s.GlobalSubmits != ext {
		t.Fatalf("GlobalSubmits = %d, want %d", s.GlobalSubmits, ext)
	}
	if s.TotalPushes() != ext {
		t.Fatalf("worker-side pushes = %d, want %d", s.TotalPushes(), ext)
	}
	var served int64
	for _, w := range s.Workers {
		served += w.Pops + w.Steals
	}
	if served != s.TotalPushes() {
		t.Fatalf("deque served %d of %d pushes", served, s.TotalPushes())
	}
	if len(s.Workers) != 4 {
		t.Fatalf("snapshot has %d workers", len(s.Workers))
	}
	if s.SubmitLatency.Total == 0 {
		t.Fatal("latency sampler recorded nothing over 1000 submits")
	}
}

// Workers parked by idleness must be woken by later submissions — the
// park/wake counters prove the targeted-wakeup path actually runs.
func TestParkWakeCycle(t *testing.T) {
	p := NewPool(2)
	defer p.Shutdown()
	for round := 0; round < 20; round++ {
		p.Submit(func() {})
		p.Quiesce()
		time.Sleep(time.Millisecond) // let workers park between rounds
	}
	s := p.Stats()
	if s.TotalParks() == 0 {
		t.Fatal("no worker ever parked across idle rounds")
	}
}

func BenchmarkPoolSubmitFromWorker(b *testing.B) {
	p := NewPool(4)
	defer p.Shutdown()
	var wg sync.WaitGroup
	wg.Add(1)
	b.ResetTimer()
	p.Submit(func() {
		defer wg.Done()
		var inner sync.WaitGroup
		inner.Add(b.N)
		for i := 0; i < b.N; i++ {
			p.Submit(inner.Done) // hits the worker-identity fast path
		}
		inner.Wait()
	})
	wg.Wait()
}

func BenchmarkOnWorkerCheck(b *testing.B) {
	p := NewPool(2)
	defer p.Shutdown()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p.OnWorker() {
			b.Fatal("bench goroutine is not a worker")
		}
	}
}
