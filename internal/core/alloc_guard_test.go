//go:build !race

// Allocation-budget guards for the scheduler hot paths. The zero-alloc
// property is part of the PR's performance contract (BENCH ratchet): a
// steady-state Submit→run cycle and a barrier generation must not touch
// the heap. testing.AllocsPerRun reads global Mallocs, so allocations on
// the worker side of the cycle count too — the guard covers the whole
// round trip, not just the caller's half.
//
// Excluded under -race: the race runtime instruments channel and sync
// operations with its own allocations, which would fail the guard for
// reasons unrelated to the scheduler.

package core

import (
	"testing"
)

// TestSubmitZeroAlloc pins the freelist design: envelope from taskPool,
// pointer through deque/FIFO, timestamp probe instead of a wrapper
// closure. Waiting for each task before the next submit keeps exactly one
// envelope cycling, so the steady state is reached within the warmup.
func TestSubmitZeroAlloc(t *testing.T) {
	p := NewPool(4)
	defer p.Shutdown()
	done := make(chan struct{}, 1)
	fn := func() { done <- struct{}{} }
	// Reach steady state before measuring: envelope pool populated, global
	// FIFO ring at final capacity, idle hint list at final capacity.
	for i := 0; i < 256; i++ {
		p.Submit(fn)
		<-done
	}
	if got := testing.AllocsPerRun(100, func() {
		p.Submit(fn)
		<-done
	}); got != 0 {
		t.Fatalf("steady-state Submit→run cycle allocates %v objects/op, want 0", got)
	}
}

// TestBarrierAwaitZeroAlloc pins the rewritten barrier: pre-allocated
// per-party waiters and channels, integer generation word, no lazily
// created park channel. A partner goroutine keeps generations completing;
// it is parked in the generation after the last measured one when the
// teardown Abort releases it.
func TestBarrierAwaitZeroAlloc(t *testing.T) {
	b := NewBarrier(2)
	partnerDone := make(chan struct{})
	go func() {
		defer close(partnerDone)
		defer func() { recover() }() // ErrBarrierAborted at teardown
		for {
			b.AwaitAs(1)
		}
	}()
	for i := 0; i < 256; i++ {
		b.AwaitAs(0)
	}
	if got := testing.AllocsPerRun(100, func() {
		b.AwaitAs(0)
	}); got != 0 {
		t.Fatalf("steady-state barrier generation allocates %v objects/op, want 0", got)
	}
	b.Abort()
	<-partnerDone
}
