//go:build !linux

package core

import (
	"bytes"
	"runtime"
	"strconv"
	"sync"
)

// Worker identity, portable fallback: a registry keyed by goroutine id
// recovered from the runtime.Stack header. Slower than the Linux
// thread-id path (microseconds per lookup), but stdlib-only and correct
// on every platform. The empty-registry fast path keeps external-only
// pools (no workers registered yet) from paying the stack parse.
type workerRegistry struct {
	mu   sync.RWMutex
	gids map[int64]*worker
}

func (r *workerRegistry) bind(w *worker) (unbind func()) {
	gid := goroutineID()
	r.mu.Lock()
	if r.gids == nil {
		r.gids = map[int64]*worker{}
	}
	r.gids[gid] = w
	r.mu.Unlock()
	return func() {
		r.mu.Lock()
		delete(r.gids, gid)
		r.mu.Unlock()
	}
}

func (r *workerRegistry) current() *worker {
	r.mu.RLock()
	w := r.gids[goroutineID()]
	r.mu.RUnlock()
	return w
}

// goroutineID extracts the current goroutine's id from the runtime stack
// header ("goroutine N [running]: ...").
func goroutineID() int64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	fields := bytes.Fields(buf[:n])
	if len(fields) < 2 {
		return -1
	}
	id, err := strconv.ParseInt(string(fields[1]), 10, 64)
	if err != nil {
		return -1
	}
	return id
}
