package core

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"parc751/internal/faultinject"
)

// TestNoLostWakeup pins the Submit→wakeOne vs park ordering fix.
//
// The scenario: a task running on worker W submits a subtask (which lands
// on W's own deque) and then blocks on a raw channel until it runs — no
// helping, so a *different* worker must take the subtask. Submit sends
// exactly one wake token. Under the old code the woken worker rechecked
// for work with a single round of RANDOM victim picks, which can miss
// the one deque that holds the subtask (~1/e per round); it then parked
// again with the only token consumed, no further submits ever came, and
// the pool hung with work queued — a lost wakeup. The fix rechecks with
// a deterministic sweep over every deque (findWorkFull) before a
// goroutine is allowed to stay parked, so this test, which hangs within
// a few dozen iterations under the old ordering, now always completes.
func TestNoLostWakeup(t *testing.T) {
	p := NewPool(4)
	defer p.Shutdown()
	for iter := 0; iter < 300; iter++ {
		outerDone := make(chan struct{})
		p.Submit(func() {
			ran := make(chan struct{})
			p.Submit(func() { close(ran) }) // lands on this worker's deque
			<-ran                           // raw block: only a sibling worker can run the subtask
			close(outerDone)
		})
		select {
		case <-outerDone:
		case <-time.After(15 * time.Second):
			t.Fatalf("iteration %d: lost wakeup — subtask stranded on a blocked worker's deque while siblings stayed parked", iter)
		}
	}
}

// TestNoLostWakeupStress is the same window under heavier concurrency:
// many simultaneous block-until-subtask tasks keep most of the pool
// blocked so the remaining workers' recheck coverage is what decides
// liveness. Run with -race in CI.
func TestNoLostWakeupStress(t *testing.T) {
	p := NewPool(8)
	defer p.Shutdown()
	const rounds, perRound = 40, 3 // < half the pool blocked per round
	for r := 0; r < rounds; r++ {
		var wg sync.WaitGroup
		for i := 0; i < perRound; i++ {
			wg.Add(1)
			p.Submit(func() {
				defer wg.Done()
				ran := make(chan struct{})
				p.Submit(func() { close(ran) })
				<-ran
			})
		}
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(15 * time.Second):
			t.Fatalf("round %d: pool wedged with queued subtasks", r)
		}
	}
}

// TestBarrierAbortWhileFirstParker pins the barrier park/abort race fix.
//
// One party arrives and parks (its sibling never arrives); Abort fires
// while that party is the generation's first and only parker. Under the
// old design the parker's wake channel was created lazily and CAS-
// published while Abort concurrently closed the global abort channel —
// the window this regression test covers. The party must panic with
// ErrBarrierAborted promptly; hanging in Await is the failure mode.
func TestBarrierAbortWhileFirstParker(t *testing.T) {
	for iter := 0; iter < 50; iter++ {
		b := NewBarrier(2)
		got := make(chan any, 1)
		go func() {
			defer func() { got <- recover() }()
			b.AwaitAs(0) // sibling never arrives
			got <- nil   // unreachable: generation can never complete
		}()
		// Wait for the party to reach the parking protocol, then abort at
		// the most hostile moment available.
		for b.PartyStats(0).Parks == 0 {
			runtime.Gosched()
		}
		b.Abort()
		select {
		case r := <-got:
			err, ok := r.(error)
			if !ok || !errors.Is(err, ErrBarrierAborted) {
				t.Fatalf("iteration %d: Await returned %v, want panic(ErrBarrierAborted)", iter, r)
			}
		case <-time.After(15 * time.Second):
			t.Fatalf("iteration %d: Abort did not release the parked party", iter)
		}
	}
}

// TestBarrierAbortRacesFirstParkerInjected drives the same window with a
// seeded fault-injection plan: arrival delays stagger the team so the
// early parties are parked when Abort lands mid-generation. Every party
// must either complete the generation or panic with ErrBarrierAborted —
// never hang, never return from an uncompleted generation.
func TestBarrierAbortRacesFirstParkerInjected(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		const parties = 4
		b := NewBarrier(parties)
		// Deterministic plan: delay the last arrivals of the first
		// generation so the earlier ones are deep in the parking protocol
		// when the abort fires.
		in := faultinject.New(faultinject.Plan{Seed: seed, Rules: []faultinject.Rule{
			{Site: faultinject.SiteBarrierArrive, Kind: faultinject.Delay,
				Nth: 3, Count: 2, Dur: 2 * time.Millisecond},
		}})
		b.SetFaultInjector(in)

		var completed, aborted atomic.Int32
		var wg sync.WaitGroup
		for id := 0; id < parties; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						err, ok := r.(error)
						if !ok || !errors.Is(err, ErrBarrierAborted) {
							panic(r)
						}
						aborted.Add(1)
					}
				}()
				b.AwaitAs(id)
				completed.Add(1)
			}(id)
		}
		// Abort while the delayed arrivals are still in flight and the
		// early parties are parked (or about to park).
		time.Sleep(time.Duration(seed) * 300 * time.Microsecond)
		b.Abort()

		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(15 * time.Second):
			t.Fatalf("seed %d: barrier deadlocked under abort-vs-parker race", seed)
		}
		if n := completed.Load() + aborted.Load(); n != parties {
			t.Fatalf("seed %d: %d parties settled, want %d", seed, n, parties)
		}
		// A completed generation releases everyone; a broken one aborts
		// everyone who didn't complete. Both counters together always
		// cover the team — partial states are the bug.
		if completed.Load() != 0 && completed.Load() != parties && aborted.Load() == 0 {
			t.Fatalf("seed %d: %d parties completed without the rest aborting", seed, completed.Load())
		}
	}
}

// TestFuturePoolGenerationGuard pins the recycled-envelope safety
// contract: a stale handle that captured the pre-recycle generation must
// panic on CheckGen, not read the successor's result.
func TestFuturePoolGenerationGuard(t *testing.T) {
	var fp FuturePool[int]
	f := fp.Get()
	gen := f.Gen()
	f.Complete(42, nil)
	if v, _ := f.Get(); v != 42 {
		t.Fatalf("Get = %d, want 42", v)
	}
	fp.Put(f)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("CheckGen on a recycled future did not panic")
			}
		}()
		f.CheckGen(gen)
	}()
	// The recycled envelope is a fresh future for its next owner.
	g := fp.Get()
	if g.IsDone() {
		t.Fatal("recycled future still reports done")
	}
	if _, _, ok := g.TryGet(); ok {
		t.Fatal("recycled future still holds a value")
	}
	g.Complete(7, nil)
	if v, _ := g.Get(); v != 7 {
		t.Fatalf("recycled future Get = %d, want 7", v)
	}
}

// TestFuturePoolPutIncompletePanics: recycling a future someone could
// still be parked on must fail loudly.
func TestFuturePoolPutIncompletePanics(t *testing.T) {
	var fp FuturePool[int]
	f := fp.Get()
	defer func() {
		if recover() == nil {
			t.Fatal("Put of an incomplete future did not panic")
		}
	}()
	fp.Put(f)
}

// TestFutureDoneAfterComplete covers the lazy done-channel install race:
// Done called before, during, and after completion must always return a
// channel that ends up closed.
func TestFutureDoneAfterComplete(t *testing.T) {
	// After completion.
	f := NewFuture[int]()
	f.Complete(1, nil)
	select {
	case <-f.Done():
	case <-time.After(time.Second):
		t.Fatal("Done channel created after completion never closed")
	}
	// Concurrently with completion.
	for i := 0; i < 200; i++ {
		f := NewFuture[int]()
		start := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(2)
		var ch <-chan struct{}
		go func() { defer wg.Done(); <-start; f.Complete(i, nil) }()
		go func() { defer wg.Done(); <-start; ch = f.Done() }()
		close(start)
		wg.Wait()
		select {
		case <-ch:
		case <-time.After(5 * time.Second):
			t.Fatal("Done channel installed during completion never closed")
		}
	}
}
