//go:build !race

// Allocation guard for the recording-enabled path: Record is a fetch-add
// claim plus atomic stores into preallocated slots, so even with a
// recorder attached the Submit→run cycle must stay heap-free. (The
// detached path is covered by TestSubmitZeroAlloc, which now runs with
// the trace hooks compiled in.) Excluded under -race for the same reason
// as alloc_guard_test.go: the race runtime allocates on its own.

package core

import (
	"testing"

	"parc751/internal/parctrace"
)

func TestSubmitZeroAllocWhileRecording(t *testing.T) {
	rec := parctrace.NewRecorder(parctrace.Config{Workers: 4, LaneCap: 256})
	prev := parctrace.Set(rec)
	defer parctrace.Set(prev)
	p := NewPool(4)
	defer p.Shutdown()
	done := make(chan struct{}, 1)
	fn := func() { done <- struct{}{} }
	// Warm past the rings' first wrap so the steady state includes the
	// sampling branch, not just the fill phase.
	for i := 0; i < 512; i++ {
		p.Submit(fn)
		<-done
	}
	if got := testing.AllocsPerRun(100, func() {
		p.Submit(fn)
		<-done
	}); got != 0 {
		t.Fatalf("recording Submit→run cycle allocates %v objects/op, want 0", got)
	}
}
