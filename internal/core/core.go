// Package core provides the shared parallel-runtime primitives that both
// reproduced programming models — Parallel Task (internal/ptask) and
// Pyjama (internal/pyjama) — are built on: a work-stealing worker pool
// with blocking-free joins ("helping"), futures with panic capture,
// a cyclic barrier, and iteration-range splitting.
//
// Keeping these in one substrate mirrors the PARC lab's architecture,
// where both tools share a runtime library beneath their language fronts.
package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"parc751/internal/faultinject"
	"parc751/internal/metrics"
	"parc751/internal/parctrace"
	"parc751/internal/sched"
)

// PanicError wraps a recovered panic value with the stack at the point of
// recovery, so a task failure surfaces as an ordinary error on the future
// instead of killing a worker (the Parallel Task "asynchronous exception"
// model).
type PanicError struct {
	Value any
	Stack string
}

// Error implements the error interface.
func (e *PanicError) Error() string { return fmt.Sprintf("task panicked: %v", e.Value) }

// Unwrap exposes the panic value when it is itself an error, so callers
// can errors.Is/As through a captured panic (e.g. to an injected fault or
// a sentinel the panicking code chose deliberately).
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Catch runs fn, converting a panic into a *PanicError.
func Catch(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			buf := make([]byte, 8192)
			n := runtime.Stack(buf, false)
			err = &PanicError{Value: r, Stack: string(buf[:n])}
		}
	}()
	fn()
	return nil
}

// catchRunnable is Catch for a Runnable. The expression r.RunTask would
// materialise a method-value closure (one heap allocation per task), so
// the Runnable submission path gets its own capture body.
func catchRunnable(r Runnable) (err error) {
	defer func() {
		if v := recover(); v != nil {
			buf := make([]byte, 8192)
			n := runtime.Stack(buf, false)
			err = &PanicError{Value: v, Stack: string(buf[:n])}
		}
	}()
	r.RunTask()
	return nil
}

// latencySampleMask samples one in (mask+1) submissions into the
// submit→start latency histogram, keeping the probe cost off the common
// submit path.
const latencySampleMask = 63

// Runnable is the closure-free submission interface. A layer that
// already owns a long-lived object per task (ptask's Task handle) can
// implement RunTask on that object and pass it to SubmitRunnable: the
// hot path then carries two interface words through the queues instead
// of materialising a method-value closure per submission, which is a
// heap allocation the escape analyser can never elide.
type Runnable interface{ RunTask() }

// task is the pool's internal task envelope: the submitted function (or
// Runnable — exactly one of fn/r is set) plus the submit timestamp for
// the sampled latency probe (zero when this submission was not
// sampled). Envelopes are recycled through taskPool and passed by
// pointer through the deques and the global queue, so a steady-state
// Submit→run cycle performs no allocation — the envelope, the queue
// slot, and the wake are all reused storage. The old design
// heap-allocated a closure per sampled task and boxed every queue push.
type task struct {
	fn func()
	r  Runnable
	t0 time.Time
	// tid is the parctrace task id, set only while a recorder is
	// attached (0 otherwise — envelopes are always recycled with it
	// cleared, so a stale id can never leak across recordings).
	tid uint64
}

// taskPool recycles task envelopes across all pools. An envelope is
// private to the runtime from Submit until runTask strips it (before the
// user function runs), so recycling is invisible to callers.
var taskPool = sync.Pool{New: func() any { return new(task) }}

// Pool is a work-stealing worker pool: each worker owns a lock-free
// Chase–Lev deque (LIFO for its own spawns, FIFO for thieves) and falls
// back to a global FIFO for external submissions, matching the Parallel
// Task runtime's design. Submissions wake at most one parked worker
// (targeted wakeup); idle workers park on per-worker slots instead of
// polling.
//
// Lifecycle: NewPool starts the workers; Submit/Help/Quiesce may be used
// from any goroutine while the pool is live; Shutdown drains all
// submitted work and stops the workers. After Shutdown the pool is dead:
// Submit panics (a silent submit would strand the task forever, since no
// worker will ever run it). Shutdown is idempotent — later calls are
// no-ops. ShutdownTimeout bounds the drain and abandons stragglers with
// an error instead of hanging forever.
type Pool struct {
	workers []*worker
	global  sched.FIFO[*task]
	victims *sched.RandomVictims

	queued        atomic.Int64 // advisory: enqueued but not yet taken
	inflight      atomic.Int64 // queued + running
	executed      atomic.Int64
	globalSubmits atomic.Int64
	down          atomic.Bool

	// Parking: idle is a hint list of park slots that have registered for
	// a wakeup. Ownership of a wake is decided by the slot's CAS state
	// machine, not by list membership — a parker that finds work retracts
	// with one CAS and simply leaves its stale entry behind for wakers to
	// skip (see parkSlot). nidle mirrors len(idle) so the submit fast
	// path can skip the mutex when nobody is (even possibly) parked.
	idleMu sync.Mutex
	idle   []*parkSlot
	nidle  atomic.Int32

	// Quiesce waiters park on qcond; runTask only broadcasts when
	// qwaiters says someone is listening.
	qmu      sync.Mutex
	qcond    *sync.Cond
	qwaiters atomic.Int32

	stop chan struct{}
	wg   sync.WaitGroup
	reg  workerRegistry

	latN atomic.Int64
	lat  metrics.LatencyHistogram

	// fi is the optional chaos-harness injector (see internal/faultinject).
	// nil in production: every hook below is a single atomic pointer load
	// and a predictable branch, which the no-overhead guard test pins.
	fi atomic.Pointer[faultinject.Injector]

	// gaveUp is set by a ShutdownTimeout that expired before the pool
	// drained. Stats then reports Abandoned as the live inflight count —
	// tasks still queued or running that nothing will wait for — rather
	// than a value captured at the timeout instant, which a Submit racing
	// the shutdown could make stale (see the re-check in Submit).
	gaveUp atomic.Bool
}

// parkSlot states. A slot cycles free → parked (owner registers) →
// either free again (owner cancels: one CAS) or claimed (a waker wins
// the CAS and sends exactly one token). The CAS is the single point of
// arbitration: a wake token is sent if and only if the claim CAS
// succeeded, so a token can be neither lost (the claimer always sends)
// nor duplicated (at most one claimer per park cycle).
const (
	slotFree    int32 = iota // not registered for a wakeup
	slotParked               // registered; owner is parking or parked
	slotClaimed              // a waker owns this cycle; token in flight
)

// parkSlot is one parking place: a CAS-arbitrated state word, a one-slot
// wake channel, and the worker that owns it (nil for external helpers).
//
// Invariant: ch is empty whenever state is slotFree — the owner drains
// the in-flight token (park's receive, or cancelPark's) before the slot
// can be re-registered. Combined with the claim CAS this bounds the
// channel to at most one token, so the claimer's send never blocks.
type parkSlot struct {
	state atomic.Int32
	ch    chan struct{}
	w     *worker
}

type worker struct {
	id    int
	deque *sched.Deque[task]
	pool  *Pool
	slot  *parkSlot
	parks atomic.Int64
	wakes atomic.Int64
}

// NewPool starts a pool with n workers (n < 1 is treated as 1).
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{
		workers: make([]*worker, n),
		victims: sched.NewRandomVictims(n, 0x5157),
		stop:    make(chan struct{}),
	}
	p.qcond = sync.NewCond(&p.qmu)
	for i := range p.workers {
		w := &worker{id: i, deque: sched.NewDeque[task](64), pool: p}
		w.slot = &parkSlot{ch: make(chan struct{}, 1), w: w}
		p.workers[i] = w
	}
	p.wg.Add(n)
	for _, w := range p.workers {
		go w.run()
	}
	return p
}

// Size returns the number of workers.
func (p *Pool) Size() int { return len(p.workers) }

// SetFaultInjector attaches (or, with nil, detaches) a chaos-harness
// injector. Submit, steal, and task execution then consult it; with none
// attached those hooks cost one pointer load. Attach before the workload
// of interest — events that already happened are not replayed.
func (p *Pool) SetFaultInjector(in *faultinject.Injector) { p.fi.Store(in) }

// FaultInjector returns the attached injector, or nil. Task layers above
// the pool (ptask) use this to inject task-body faults under their own
// panic capture.
func (p *Pool) FaultInjector() *faultinject.Injector { return p.fi.Load() }

// Executed returns the number of tasks that have finished running.
func (p *Pool) Executed() int64 { return p.executed.Load() }

// Submit schedules fn. Called from a worker goroutine, the task goes on
// that worker's own deque (depth-first, cache-friendly); called from
// outside, it goes on the global queue. At most one parked worker is
// woken. Submit panics if the pool has been Shutdown.
//
// Steady-state Submit is allocation-free: the envelope comes from
// taskPool, the deque stores it by pointer, and the latency probe is a
// timestamp in the envelope rather than a wrapper closure.
func (p *Pool) Submit(fn func()) { p.submit(fn, nil) }

// SubmitRunnable schedules r.RunTask with the same semantics as Submit
// but without the caller having to form a closure: passing a pointer
// into the Runnable interface is allocation-free, so a layer that owns
// a per-task object (ptask) submits at zero additional allocations.
func (p *Pool) SubmitRunnable(r Runnable) { p.submit(nil, r) }

func (p *Pool) submit(fn func(), r Runnable) {
	if p.down.Load() {
		panic("core: Submit on a Pool after Shutdown (task would never run)")
	}
	if in := p.fi.Load(); in != nil {
		in.Point(faultinject.SiteSubmit)
	}
	p.inflight.Add(1)
	// queued is incremented before the task is visible in any queue and
	// decremented only after a successful take, so it never goes
	// negative; it may transiently over-count (a stale positive only
	// costs a spurious wakeup, never a missed one).
	p.queued.Add(1)
	// Re-check down after the counters: a concurrent ShutdownTimeout that
	// set down and then read inflight either saw this increment (the task
	// is counted in Abandoned) or set down before it — in which case this
	// load observes down, the counters are rolled back, and the task is
	// never enqueued. Without the re-check a racing submit could strand a
	// task in the queue that no leftover count ever accounts for.
	if p.down.Load() {
		p.queued.Add(-1)
		p.inflight.Add(-1)
		panic("core: Submit on a Pool after Shutdown (task would never run)")
	}
	t := taskPool.Get().(*task)
	t.fn = fn
	t.r = r
	w := p.reg.current()
	if rec := parctrace.Active(); rec != nil {
		// Reuse a pre-assigned id (ptask tags its handles) so the submit
		// edge and the task layer's dependence edges name the same node.
		var tid uint64
		if tagged, ok := r.(parctrace.Tagged); ok {
			tid = tagged.TraceTaskID()
		}
		if tid == 0 {
			tid = rec.NewTaskID()
		}
		t.tid = tid
		rec.Record(parctrace.KSubmit, workerID(w), tid, 0)
	}
	if p.latN.Add(1)&latencySampleMask == 0 {
		t.t0 = time.Now()
	}
	if w != nil {
		w.deque.PushBottom(t)
	} else {
		p.globalSubmits.Add(1)
		p.global.Push(t)
	}
	p.wakeOne()
}

// workerID is w's trace identity: its pool index, or -1 for an external
// goroutine.
func workerID(w *worker) int {
	if w == nil {
		return -1
	}
	return w.id
}

// OnWorker reports whether the calling goroutine is one of the pool's
// workers.
func (p *Pool) OnWorker() bool { return p.reg.current() != nil }

// wakeOne claims one parked slot and sends it a wake token. The nidle
// fast path means a submit into a busy pool never touches the idle
// mutex. Entries whose claim CAS fails are retractions the owner already
// cancelled (or re-registrations already claimed through a newer entry);
// they are discarded and the scan continues, so a wake is only consumed
// by a slot that is genuinely parked.
func (p *Pool) wakeOne() {
	if p.nidle.Load() == 0 {
		return
	}
	for {
		p.idleMu.Lock()
		n := len(p.idle)
		if n == 0 {
			p.idleMu.Unlock()
			return
		}
		s := p.idle[n-1]
		p.idle[n-1] = nil
		p.idle = p.idle[:n-1]
		p.nidle.Store(int32(n - 1))
		p.idleMu.Unlock()
		if s.state.CompareAndSwap(slotParked, slotClaimed) {
			if s.w != nil {
				s.w.wakes.Add(1)
				// Recorded by the waker, only after the claim CAS won —
				// mirroring the steal rule: no wake edge for a lost race.
				if rec := parctrace.Active(); rec != nil {
					rec.Record(parctrace.KWake, s.w.id, 0, 0)
				}
			}
			// Never blocks: ch is empty whenever the slot is claimable
			// (see the parkSlot invariant), and this cycle's claim CAS
			// admitted exactly one sender.
			s.ch <- struct{}{}
			return
		}
	}
}

// pushIdle registers s for a wakeup: mark it parked, then publish it on
// the hint list. The order matters — a waker that pops the entry must be
// able to win the claim CAS, so the parked state has to be visible first.
func (p *Pool) pushIdle(s *parkSlot) {
	s.state.Store(slotParked)
	p.idleMu.Lock()
	p.idle = append(p.idle, s)
	p.nidle.Store(int32(len(p.idle)))
	p.idleMu.Unlock()
}

// cancelPark retracts a registration made by pushIdle when the goroutine
// found work (or is leaving) on its own. One CAS decides the race: if it
// wins, the stale hint-list entry is left for wakeOne to skip; if a
// waker already claimed the slot, its token is absorbed — it is
// guaranteed to arrive — and, since that waker believed its task was now
// covered, the wake is passed on while work remains queued.
func (p *Pool) cancelPark(s *parkSlot) {
	if s.state.CompareAndSwap(slotParked, slotFree) {
		return
	}
	<-s.ch
	s.state.Store(slotFree)
	if p.queued.Load() > 0 {
		p.wakeOne()
	}
}

func (w *worker) run() {
	p := w.pool
	unbind := p.reg.bind(w)
	defer func() {
		unbind()
		p.wg.Done()
	}()
	for {
		t, ok := p.findWork(w)
		if !ok {
			if p.park(w) {
				return
			}
			continue
		}
		p.runTask(t)
	}
}

// park blocks w until a submitter wakes it or the pool stops; it returns
// true when the worker should exit. The register-then-recheck order
// closes the missed-wakeup window: a submitter enqueues before checking
// for idlers, so either it sees this worker's registration, or the
// recheck here sees its task. The recheck must be findWorkFull — a
// random steal round can miss the one deque that holds the task, and a
// worker that parks after consuming the submitter's only wake token has
// lost it for good (the regression test TestNoLostWakeup hangs on
// exactly that with a random recheck).
func (p *Pool) park(w *worker) (exit bool) {
	s := w.slot
	p.pushIdle(s)
	if t, ok := p.findWorkFull(w); ok {
		p.cancelPark(s)
		p.runTask(t)
		return false
	}
	w.parks.Add(1)
	if rec := parctrace.Active(); rec != nil {
		rec.Record(parctrace.KPark, w.id, 0, 0)
	}
	select {
	case <-s.ch:
		s.state.Store(slotFree)
		return false
	case <-p.stop:
		p.cancelPark(s)
		return true
	}
}

// findWork implements the acquisition order: own deque, global queue, then
// one steal round over random victims. A successful steal is a batch
// steal (sched.StealInto): the first stolen task is returned for
// immediate execution and up to half the victim's remaining load lands in
// this worker's own deque, where siblings can re-steal it — one round
// trip rebalances a whole backlog instead of one task.
func (p *Pool) findWork(w *worker) (*task, bool) {
	if w != nil {
		if t, ok := w.deque.PopBottom(); ok {
			p.queued.Add(-1)
			return t, true
		}
	}
	if t, ok := p.global.Pop(); ok {
		p.queued.Add(-1)
		return t, true
	}
	if w != nil {
		for i := 1; i < len(p.workers); i++ {
			v := p.victims.Next(w.id)
			if t, ok := p.steal(w, p.workers[v]); ok {
				return t, true
			}
		}
	}
	return nil, false
}

// findWorkFull is findWork followed by a deterministic sweep over every
// worker's deque. The random round in findWork gives good contention
// behaviour but only probabilistic coverage; the sweep gives certainty,
// which the parking protocol needs: a goroutine may only go (or stay)
// parked after proving that no queue anywhere holds work. External
// helpers (w == nil) sweep too — stealing is thief-safe from any
// goroutine — so a helper that consumed a wake token can always reach
// the task that token was sent for.
func (p *Pool) findWorkFull(w *worker) (*task, bool) {
	if t, ok := p.findWork(w); ok {
		return t, true
	}
	self := -1
	if w != nil {
		self = w.id
	}
	for v := range p.workers {
		if v == self {
			continue
		}
		if t, ok := p.steal(w, p.workers[v]); ok {
			return t, true
		}
	}
	return nil, false
}

// steal takes work from victim on behalf of w (nil for an external
// helper, which steals singly — it has no deque to batch into). When a
// batch landed in w's deque, one sibling is woken to share it.
func (p *Pool) steal(w *worker, victim *worker) (*task, bool) {
	var dst *sched.Deque[task]
	if w != nil {
		dst = w.deque
	}
	t, ok := victim.deque.StealInto(dst)
	if !ok {
		return nil, false
	}
	p.queued.Add(-1)
	if in := p.fi.Load(); in != nil {
		in.Point(faultinject.SiteSteal)
	}
	// The steal edge is recorded only here, after StealInto's CAS claim
	// landed: a lost race returns above and must never log a steal that
	// did not happen (TestStealTraceConservation pins logged == performed
	// against the deque's own steal counters).
	if rec := parctrace.Active(); rec != nil {
		rec.Record(parctrace.KSteal, workerID(w), t.tid, uint64(victim.id))
	}
	// findWork only steals after w's own deque came up empty, so a
	// non-empty deque here means StealInto moved a batch.
	if w != nil && w.deque.Len() > 0 {
		p.wakeOne()
	}
	return t, true
}

// runTask strips the envelope (recording the sampled latency probe),
// recycles it, and runs the task function under panic capture.
func (p *Pool) runTask(t *task) {
	if in := p.fi.Load(); in != nil {
		// A Stall rule here wedges this worker before it executes the
		// task, modelling a stalled core: siblings must steal its queue.
		in.Point(faultinject.SiteRun)
	}
	if !t.t0.IsZero() {
		p.lat.Observe(time.Since(t.t0))
	}
	fn := t.fn
	r := t.r
	tid := t.tid
	t.fn = nil
	t.r = nil
	t.t0 = time.Time{}
	t.tid = 0
	taskPool.Put(t)
	rec := parctrace.Active()
	var wid int
	if rec != nil && tid != 0 {
		wid = workerID(p.reg.current())
		rec.Record(parctrace.KRun, wid, tid, 0)
	}
	// Panics are contained per-task; the task wrapper (e.g. a ptask
	// future) is responsible for recording them. A bare Submit that
	// panics must still not kill the worker.
	if r != nil {
		_ = catchRunnable(r)
	} else {
		_ = Catch(fn)
	}
	if rec != nil && tid != 0 {
		// Same recorder as the run edge: a recorder swapped mid-task must
		// not produce a complete without its run.
		rec.Record(parctrace.KComplete, wid, tid, 0)
	}
	p.executed.Add(1)
	if p.inflight.Add(-1) == 0 && p.qwaiters.Load() > 0 {
		p.qmu.Lock()
		p.qcond.Broadcast()
		p.qmu.Unlock()
	}
}

// Help runs queued tasks on the calling goroutine until done is closed.
// This is how joins avoid deadlock: a worker (or any goroutine) waiting on
// a future keeps executing other tasks instead of blocking, so recursive
// decompositions complete on pools of any size. With no work available
// the helper parks on the pool's idle list (woken by the next Submit)
// instead of polling a timer.
func (p *Pool) Help(done <-chan struct{}) {
	w := p.reg.current()
	var s *parkSlot
	if w != nil {
		// A worker inside Help is not parked in its run loop, so its
		// own slot is free to reuse (and recursive Helps never have two
		// live registrations: the outer one is consumed before the task
		// that contains the inner Help runs).
		s = w.slot
	} else {
		s = &parkSlot{ch: make(chan struct{}, 1)}
	}
	for {
		select {
		case <-done:
			return
		default:
		}
		if t, ok := p.findWork(w); ok {
			p.runTask(t)
			continue
		}
		p.pushIdle(s)
		if t, ok := p.findWorkFull(w); ok {
			p.cancelPark(s)
			p.runTask(t)
			continue
		}
		if w != nil {
			w.parks.Add(1)
		}
		select {
		case <-done:
			p.cancelPark(s)
			return
		case <-s.ch:
			s.state.Store(slotFree)
			// Woken for work. If done fired at the same time the loop
			// exits above without consuming it — pass the token on so
			// the task that triggered the wake is not stranded.
			select {
			case <-done:
				if p.queued.Load() > 0 {
					p.wakeOne()
				}
				return
			default:
			}
		}
	}
}

// Quiesce blocks until no tasks are queued or running. It must not be
// called from a worker. The wait is event-driven: the last finishing
// task signals waiters instead of waiters polling a timer.
func (p *Pool) Quiesce() {
	if p.inflight.Load() == 0 {
		return
	}
	p.qwaiters.Add(1)
	defer p.qwaiters.Add(-1)
	p.qmu.Lock()
	for p.inflight.Load() != 0 {
		p.qcond.Wait()
	}
	p.qmu.Unlock()
}

// Shutdown waits for all submitted work to finish, then stops the workers.
// The pool must not be used afterwards: a later Submit panics. Shutdown is
// idempotent: a second (or concurrent) call is a no-op that returns
// without waiting for the first caller's drain.
func (p *Pool) Shutdown() {
	if p.down.Load() {
		return
	}
	p.Quiesce()
	if p.down.CompareAndSwap(false, true) {
		close(p.stop) // exactly one caller closes
		p.wg.Wait()
	}
}

// ErrShutdownTimeout is returned (wrapped) by ShutdownTimeout when the
// pool failed to drain in time and stragglers were abandoned.
var ErrShutdownTimeout = errors.New("core: shutdown timed out")

// ShutdownTimeout is Shutdown with a bounded drain: it waits up to d for
// in-flight work to finish. On success it behaves exactly like Shutdown
// and returns nil. On timeout it stops the pool anyway — idle workers
// exit, queued tasks are abandoned unrun, and workers wedged inside a
// task are left behind rather than waited for — and returns an error
// wrapping ErrShutdownTimeout with the straggler count (also visible as
// Stats().Abandoned). Either way the pool is dead afterwards; a later
// Submit panics and a later Shutdown is a no-op.
func (p *Pool) ShutdownTimeout(d time.Duration) error {
	if p.down.Load() {
		return nil
	}
	drained := p.quiesceTimeout(d)
	if p.down.CompareAndSwap(false, true) {
		close(p.stop)
	}
	if drained {
		p.wg.Wait()
		return nil
	}
	p.gaveUp.Store(true)
	// down is set before this load, and Submit re-checks down after its
	// inflight increment, so every task that will ever be enqueued is
	// visible here; a racing submit that rolls back can only make this
	// instant's count high, never lose a task.
	n := p.inflight.Load()
	return fmt.Errorf("%w: abandoned %d task(s) still queued or running after %v",
		ErrShutdownTimeout, n, d)
}

// quiesceTimeout waits for the pool to drain, giving up after d. The wait
// itself is event-driven (the qcond waiter used by Quiesce); the timeout
// path broadcasts so the helper goroutine always exits promptly instead
// of leaking on a pool that never drains.
func (p *Pool) quiesceTimeout(d time.Duration) bool {
	if p.inflight.Load() == 0 {
		return true
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	var timedOut atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.qwaiters.Add(1)
		defer p.qwaiters.Add(-1)
		p.qmu.Lock()
		for p.inflight.Load() != 0 && !timedOut.Load() {
			p.qcond.Wait()
		}
		p.qmu.Unlock()
	}()
	select {
	case <-done:
	case <-timer.C:
		timedOut.Store(true)
		p.qmu.Lock()
		p.qcond.Broadcast()
		p.qmu.Unlock()
		<-done
	}
	return p.inflight.Load() == 0
}

// Stats assembles a point-in-time scheduler snapshot: per-worker deque
// traffic and park/wake counts, global-queue activity, task accounting,
// and the sampled submit→start latency histogram.
func (p *Pool) Stats() sched.Snapshot {
	snap := sched.Snapshot{
		Workers:       make([]sched.WorkerSnapshot, len(p.workers)),
		GlobalDepth:   p.global.Len(),
		GlobalSubmits: p.globalSubmits.Load(),
		Queued:        p.queued.Load(),
		Inflight:      p.inflight.Load(),
		Executed:      p.executed.Load(),
		SubmitLatency: p.lat.Snapshot(),
	}
	if p.gaveUp.Load() {
		// Live count, not a snapshot from the timeout instant: leftover
		// tasks a wedged worker later finishes drop back out of it.
		snap.Abandoned = p.inflight.Load()
	}
	for i, w := range p.workers {
		snap.Workers[i] = sched.WorkerSnapshot{
			ID:         w.id,
			DequeStats: w.deque.Stats(),
			Parks:      w.parks.Load(),
			Wakes:      w.wakes.Load(),
		}
	}
	return snap
}

// Chunk is a half-open index range [Lo, Hi).
type Chunk struct{ Lo, Hi int }

// Len returns the number of indices in the chunk.
func (c Chunk) Len() int { return c.Hi - c.Lo }

// StaticChunks splits [0, n) into at most p contiguous chunks whose sizes
// differ by at most one — OpenMP's schedule(static) decomposition. Fewer
// than p chunks are returned when n < p.
func StaticChunks(n, p int) []Chunk {
	if n <= 0 || p <= 0 {
		return nil
	}
	if p > n {
		p = n
	}
	chunks := make([]Chunk, 0, p)
	base, rem := n/p, n%p
	lo := 0
	for i := 0; i < p; i++ {
		size := base
		if i < rem {
			size++
		}
		chunks = append(chunks, Chunk{lo, lo + size})
		lo += size
	}
	return chunks
}

// StaticBlock returns the i'th of p balanced contiguous chunks of [0, n)
// — StaticChunks(n, p)[i] without allocating the slice, for the static
// schedule's hot path. ok is false when party i gets no iterations
// (n < p, out-of-range i, or an empty range).
func StaticBlock(n, p, i int) (Chunk, bool) {
	if n <= 0 || p <= 0 || i < 0 || i >= p {
		return Chunk{}, false
	}
	if p > n {
		p = n
		if i >= p {
			return Chunk{}, false
		}
	}
	base, rem := n/p, n%p
	lo := i*base + rem
	size := base
	if i < rem {
		lo = i*base + i
		size++
	}
	return Chunk{lo, lo + size}, true
}

// BlockChunks splits [0, n) into fixed-size blocks of the given chunk size
// (the unit handed out by dynamic schedules).
func BlockChunks(n, chunk int) []Chunk {
	if n <= 0 || chunk <= 0 {
		return nil
	}
	chunks := make([]Chunk, 0, (n+chunk-1)/chunk)
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		chunks = append(chunks, Chunk{lo, hi})
	}
	return chunks
}
