// Package core provides the shared parallel-runtime primitives that both
// reproduced programming models — Parallel Task (internal/ptask) and
// Pyjama (internal/pyjama) — are built on: a work-stealing worker pool
// with blocking-free joins ("helping"), futures with panic capture,
// a cyclic barrier, and iteration-range splitting.
//
// Keeping these in one substrate mirrors the PARC lab's architecture,
// where both tools share a runtime library beneath their language fronts.
package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"parc751/internal/faultinject"
	"parc751/internal/metrics"
	"parc751/internal/sched"
)

// PanicError wraps a recovered panic value with the stack at the point of
// recovery, so a task failure surfaces as an ordinary error on the future
// instead of killing a worker (the Parallel Task "asynchronous exception"
// model).
type PanicError struct {
	Value any
	Stack string
}

// Error implements the error interface.
func (e *PanicError) Error() string { return fmt.Sprintf("task panicked: %v", e.Value) }

// Unwrap exposes the panic value when it is itself an error, so callers
// can errors.Is/As through a captured panic (e.g. to an injected fault or
// a sentinel the panicking code chose deliberately).
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Catch runs fn, converting a panic into a *PanicError.
func Catch(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			buf := make([]byte, 8192)
			n := runtime.Stack(buf, false)
			err = &PanicError{Value: r, Stack: string(buf[:n])}
		}
	}()
	fn()
	return nil
}

// Future is a write-once result container. The zero value is not usable;
// create with NewFuture.
type Future[T any] struct {
	done chan struct{}
	once sync.Once
	val  T
	err  error
}

// NewFuture returns an incomplete future.
func NewFuture[T any]() *Future[T] {
	return &Future[T]{done: make(chan struct{})}
}

// Complete fulfils the future. Later completions are ignored (write-once).
func (f *Future[T]) Complete(v T, err error) {
	f.once.Do(func() {
		f.val, f.err = v, err
		close(f.done)
	})
}

// Done returns a channel closed when the future completes.
func (f *Future[T]) Done() <-chan struct{} { return f.done }

// IsDone reports completion without blocking.
func (f *Future[T]) IsDone() bool {
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}

// Get blocks until completion and returns the value and error.
func (f *Future[T]) Get() (T, error) {
	<-f.done
	return f.val, f.err
}

// TryGet returns immediately; ok is false if the future is incomplete.
func (f *Future[T]) TryGet() (v T, err error, ok bool) {
	select {
	case <-f.done:
		return f.val, f.err, true
	default:
		var zero T
		return zero, nil, false
	}
}

// latencySampleMask samples one in (mask+1) submissions into the
// submit→start latency histogram, keeping the probe cost off the common
// submit path.
const latencySampleMask = 63

// Pool is a work-stealing worker pool: each worker owns a lock-free
// Chase–Lev deque (LIFO for its own spawns, FIFO for thieves) and falls
// back to a global FIFO for external submissions, matching the Parallel
// Task runtime's design. Submissions wake at most one parked worker
// (targeted wakeup); idle workers park on per-worker channels instead of
// polling.
//
// Lifecycle: NewPool starts the workers; Submit/Help/Quiesce may be used
// from any goroutine while the pool is live; Shutdown drains all
// submitted work and stops the workers. After Shutdown the pool is dead:
// Submit panics (a silent submit would strand the task forever, since no
// worker will ever run it). Shutdown is idempotent — later calls are
// no-ops. ShutdownTimeout bounds the drain and abandons stragglers with
// an error instead of hanging forever.
type Pool struct {
	workers []*worker
	global  sched.FIFO[func()]
	victims *sched.RandomVictims

	queued        atomic.Int64 // advisory: enqueued but not yet taken
	inflight      atomic.Int64 // queued + running
	executed      atomic.Int64
	globalSubmits atomic.Int64
	down          atomic.Bool

	// Parking: idle holds the park slots of workers (and helpers) that
	// found no work anywhere; a submitter pops one slot and sends it a
	// wake token. nidle mirrors len(idle) so the submit fast path can
	// skip the mutex when nobody is parked.
	idleMu sync.Mutex
	idle   []*parkSlot
	nidle  atomic.Int32

	// Quiesce waiters park on qcond; runTask only broadcasts when
	// qwaiters says someone is listening.
	qmu      sync.Mutex
	qcond    *sync.Cond
	qwaiters atomic.Int32

	stop chan struct{}
	wg   sync.WaitGroup
	reg  workerRegistry

	latN atomic.Int64
	lat  metrics.LatencyHistogram

	// fi is the optional chaos-harness injector (see internal/faultinject).
	// nil in production: every hook below is a single atomic pointer load
	// and a predictable branch, which the no-overhead guard test pins.
	fi atomic.Pointer[faultinject.Injector]

	// gaveUp is set by a ShutdownTimeout that expired before the pool
	// drained. Stats then reports Abandoned as the live inflight count —
	// tasks still queued or running that nothing will wait for — rather
	// than a value captured at the timeout instant, which a Submit racing
	// the shutdown could make stale (see the re-check in Submit).
	gaveUp atomic.Bool
}

// parkSlot is one parking place: a buffered wake channel plus the worker
// that owns it (nil for external helpers).
type parkSlot struct {
	ch chan struct{}
	w  *worker
}

type worker struct {
	id    int
	deque *sched.Deque[func()]
	pool  *Pool
	slot  *parkSlot
	parks atomic.Int64
	wakes atomic.Int64
}

// NewPool starts a pool with n workers (n < 1 is treated as 1).
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{
		workers: make([]*worker, n),
		victims: sched.NewRandomVictims(n, 0x5157),
		stop:    make(chan struct{}),
	}
	p.qcond = sync.NewCond(&p.qmu)
	for i := range p.workers {
		w := &worker{id: i, deque: sched.NewDeque[func()](64), pool: p}
		w.slot = &parkSlot{ch: make(chan struct{}, 1), w: w}
		p.workers[i] = w
	}
	p.wg.Add(n)
	for _, w := range p.workers {
		go w.run()
	}
	return p
}

// Size returns the number of workers.
func (p *Pool) Size() int { return len(p.workers) }

// SetFaultInjector attaches (or, with nil, detaches) a chaos-harness
// injector. Submit, steal, and task execution then consult it; with none
// attached those hooks cost one pointer load. Attach before the workload
// of interest — events that already happened are not replayed.
func (p *Pool) SetFaultInjector(in *faultinject.Injector) { p.fi.Store(in) }

// FaultInjector returns the attached injector, or nil. Task layers above
// the pool (ptask) use this to inject task-body faults under their own
// panic capture.
func (p *Pool) FaultInjector() *faultinject.Injector { return p.fi.Load() }

// Executed returns the number of tasks that have finished running.
func (p *Pool) Executed() int64 { return p.executed.Load() }

// Submit schedules fn. Called from a worker goroutine, the task goes on
// that worker's own deque (depth-first, cache-friendly); called from
// outside, it goes on the global queue. At most one parked worker is
// woken. Submit panics if the pool has been Shutdown.
func (p *Pool) Submit(fn func()) {
	if p.down.Load() {
		panic("core: Submit on a Pool after Shutdown (task would never run)")
	}
	if in := p.fi.Load(); in != nil {
		in.Point(faultinject.SiteSubmit)
	}
	p.inflight.Add(1)
	// queued is incremented before the task is visible in any queue and
	// decremented only after a successful take, so it never goes
	// negative; it may transiently over-count (a stale positive only
	// costs a spurious wakeup, never a missed one).
	p.queued.Add(1)
	// Re-check down after the counters: a concurrent ShutdownTimeout that
	// set down and then read inflight either saw this increment (the task
	// is counted in Abandoned) or set down before it — in which case this
	// load observes down, the counters are rolled back, and the task is
	// never enqueued. Without the re-check a racing submit could strand a
	// task in the queue that no leftover count ever accounts for.
	if p.down.Load() {
		p.queued.Add(-1)
		p.inflight.Add(-1)
		panic("core: Submit on a Pool after Shutdown (task would never run)")
	}
	if p.latN.Add(1)&latencySampleMask == 0 {
		inner := fn
		start := time.Now()
		fn = func() {
			p.lat.Observe(time.Since(start))
			inner()
		}
	}
	if w := p.reg.current(); w != nil {
		w.deque.PushBottom(fn)
	} else {
		p.globalSubmits.Add(1)
		p.global.Push(fn)
	}
	p.wakeOne()
}

// OnWorker reports whether the calling goroutine is one of the pool's
// workers.
func (p *Pool) OnWorker() bool { return p.reg.current() != nil }

// wakeOne pops one parked slot and sends it a wake token. The nidle fast
// path means a submit into a busy pool never touches the idle mutex.
func (p *Pool) wakeOne() {
	if p.nidle.Load() == 0 {
		return
	}
	p.idleMu.Lock()
	n := len(p.idle)
	if n == 0 {
		p.idleMu.Unlock()
		return
	}
	s := p.idle[n-1]
	p.idle = p.idle[:n-1]
	p.nidle.Store(int32(n - 1))
	p.idleMu.Unlock()
	if s.w != nil {
		s.w.wakes.Add(1)
	}
	select {
	case s.ch <- struct{}{}:
	default:
	}
}

func (p *Pool) pushIdle(s *parkSlot) {
	p.idleMu.Lock()
	p.idle = append(p.idle, s)
	p.nidle.Store(int32(len(p.idle)))
	p.idleMu.Unlock()
}

// removeIdle takes s off the idle list; false means a waker already
// popped it (a wake token is, or soon will be, in s.ch).
func (p *Pool) removeIdle(s *parkSlot) bool {
	p.idleMu.Lock()
	defer p.idleMu.Unlock()
	for i, e := range p.idle {
		if e == s {
			p.idle = append(p.idle[:i], p.idle[i+1:]...)
			p.nidle.Store(int32(len(p.idle)))
			return true
		}
	}
	return false
}

// cancelIdle retracts a registration made by pushIdle when the goroutine
// found work (or is leaving) on its own. If a waker already claimed the
// slot, the token it sent is absorbed and — since that waker believed its
// task was now covered — the wake is passed on when work remains queued.
func (p *Pool) cancelIdle(s *parkSlot) {
	if p.removeIdle(s) {
		return
	}
	select {
	case <-s.ch:
	default:
	}
	if p.queued.Load() > 0 {
		p.wakeOne()
	}
}

func (w *worker) run() {
	p := w.pool
	unbind := p.reg.bind(w)
	defer func() {
		unbind()
		p.wg.Done()
	}()
	for {
		fn, ok := p.findWork(w)
		if !ok {
			if p.park(w) {
				return
			}
			continue
		}
		p.runTask(fn)
	}
}

// park blocks w until a submitter wakes it or the pool stops; it returns
// true when the worker should exit. The push-then-recheck order closes
// the missed-wakeup window: a submitter enqueues before checking for
// idlers, so either it sees this worker's registration, or the recheck
// here sees its task.
func (p *Pool) park(w *worker) (exit bool) {
	s := w.slot
	p.pushIdle(s)
	if fn, ok := p.findWork(w); ok {
		p.cancelIdle(s)
		p.runTask(fn)
		return false
	}
	w.parks.Add(1)
	select {
	case <-s.ch:
		return false
	case <-p.stop:
		p.cancelIdle(s)
		return true
	}
}

// findWork implements the acquisition order: own deque, global queue, then
// one steal round over random victims.
func (p *Pool) findWork(w *worker) (func(), bool) {
	if w != nil {
		if fn, ok := w.deque.PopBottom(); ok {
			p.queued.Add(-1)
			return fn, true
		}
	}
	if fn, ok := p.global.Pop(); ok {
		p.queued.Add(-1)
		return fn, true
	}
	if w != nil {
		for i := 1; i < len(p.workers); i++ {
			v := p.victims.Next(w.id)
			if fn, ok := p.workers[v].deque.Steal(); ok {
				p.queued.Add(-1)
				if in := p.fi.Load(); in != nil {
					in.Point(faultinject.SiteSteal)
				}
				return fn, true
			}
		}
	}
	return nil, false
}

func (p *Pool) runTask(fn func()) {
	if in := p.fi.Load(); in != nil {
		// A Stall rule here wedges this worker before it executes the
		// task, modelling a stalled core: siblings must steal its queue.
		in.Point(faultinject.SiteRun)
	}
	// Panics are contained per-task; the task wrapper (e.g. a ptask
	// future) is responsible for recording them. A bare Submit that
	// panics must still not kill the worker.
	_ = Catch(fn)
	p.executed.Add(1)
	if p.inflight.Add(-1) == 0 && p.qwaiters.Load() > 0 {
		p.qmu.Lock()
		p.qcond.Broadcast()
		p.qmu.Unlock()
	}
}

// Help runs queued tasks on the calling goroutine until done is closed.
// This is how joins avoid deadlock: a worker (or any goroutine) waiting on
// a future keeps executing other tasks instead of blocking, so recursive
// decompositions complete on pools of any size. With no work available
// the helper parks on the pool's idle list (woken by the next Submit)
// instead of polling a timer.
func (p *Pool) Help(done <-chan struct{}) {
	w := p.reg.current()
	var s *parkSlot
	if w != nil {
		// A worker inside Help is not parked in its run loop, so its
		// own slot is free to reuse (and recursive Helps never have two
		// live registrations: the outer one is consumed before the task
		// that contains the inner Help runs).
		s = w.slot
	} else {
		s = &parkSlot{ch: make(chan struct{}, 1)}
	}
	for {
		select {
		case <-done:
			return
		default:
		}
		if fn, ok := p.findWork(w); ok {
			p.runTask(fn)
			continue
		}
		p.pushIdle(s)
		if fn, ok := p.findWork(w); ok {
			p.cancelIdle(s)
			p.runTask(fn)
			continue
		}
		if w != nil {
			w.parks.Add(1)
		}
		select {
		case <-done:
			p.cancelIdle(s)
			return
		case <-s.ch:
			// Woken for work. If done fired at the same time the loop
			// exits above without consuming it — pass the token on so
			// the task that triggered the wake is not stranded.
			select {
			case <-done:
				if p.queued.Load() > 0 {
					p.wakeOne()
				}
				return
			default:
			}
		}
	}
}

// Quiesce blocks until no tasks are queued or running. It must not be
// called from a worker. The wait is event-driven: the last finishing
// task signals waiters instead of waiters polling a timer.
func (p *Pool) Quiesce() {
	if p.inflight.Load() == 0 {
		return
	}
	p.qwaiters.Add(1)
	defer p.qwaiters.Add(-1)
	p.qmu.Lock()
	for p.inflight.Load() != 0 {
		p.qcond.Wait()
	}
	p.qmu.Unlock()
}

// Shutdown waits for all submitted work to finish, then stops the workers.
// The pool must not be used afterwards: a later Submit panics. Shutdown is
// idempotent: a second (or concurrent) call is a no-op that returns
// without waiting for the first caller's drain.
func (p *Pool) Shutdown() {
	if p.down.Load() {
		return
	}
	p.Quiesce()
	if p.down.CompareAndSwap(false, true) {
		close(p.stop) // exactly one caller closes
		p.wg.Wait()
	}
}

// ErrShutdownTimeout is returned (wrapped) by ShutdownTimeout when the
// pool failed to drain in time and stragglers were abandoned.
var ErrShutdownTimeout = errors.New("core: shutdown timed out")

// ShutdownTimeout is Shutdown with a bounded drain: it waits up to d for
// in-flight work to finish. On success it behaves exactly like Shutdown
// and returns nil. On timeout it stops the pool anyway — idle workers
// exit, queued tasks are abandoned unrun, and workers wedged inside a
// task are left behind rather than waited for — and returns an error
// wrapping ErrShutdownTimeout with the straggler count (also visible as
// Stats().Abandoned). Either way the pool is dead afterwards; a later
// Submit panics and a later Shutdown is a no-op.
func (p *Pool) ShutdownTimeout(d time.Duration) error {
	if p.down.Load() {
		return nil
	}
	drained := p.quiesceTimeout(d)
	if p.down.CompareAndSwap(false, true) {
		close(p.stop)
	}
	if drained {
		p.wg.Wait()
		return nil
	}
	p.gaveUp.Store(true)
	// down is set before this load, and Submit re-checks down after its
	// inflight increment, so every task that will ever be enqueued is
	// visible here; a racing submit that rolls back can only make this
	// instant's count high, never lose a task.
	n := p.inflight.Load()
	return fmt.Errorf("%w: abandoned %d task(s) still queued or running after %v",
		ErrShutdownTimeout, n, d)
}

// quiesceTimeout waits for the pool to drain, giving up after d. The wait
// itself is event-driven (the qcond waiter used by Quiesce); the timeout
// path broadcasts so the helper goroutine always exits promptly instead
// of leaking on a pool that never drains.
func (p *Pool) quiesceTimeout(d time.Duration) bool {
	if p.inflight.Load() == 0 {
		return true
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	var timedOut atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.qwaiters.Add(1)
		defer p.qwaiters.Add(-1)
		p.qmu.Lock()
		for p.inflight.Load() != 0 && !timedOut.Load() {
			p.qcond.Wait()
		}
		p.qmu.Unlock()
	}()
	select {
	case <-done:
	case <-timer.C:
		timedOut.Store(true)
		p.qmu.Lock()
		p.qcond.Broadcast()
		p.qmu.Unlock()
		<-done
	}
	return p.inflight.Load() == 0
}

// Stats assembles a point-in-time scheduler snapshot: per-worker deque
// traffic and park/wake counts, global-queue activity, task accounting,
// and the sampled submit→start latency histogram.
func (p *Pool) Stats() sched.Snapshot {
	snap := sched.Snapshot{
		Workers:       make([]sched.WorkerSnapshot, len(p.workers)),
		GlobalDepth:   p.global.Len(),
		GlobalSubmits: p.globalSubmits.Load(),
		Queued:        p.queued.Load(),
		Inflight:      p.inflight.Load(),
		Executed:      p.executed.Load(),
		SubmitLatency: p.lat.Snapshot(),
	}
	if p.gaveUp.Load() {
		// Live count, not a snapshot from the timeout instant: leftover
		// tasks a wedged worker later finishes drop back out of it.
		snap.Abandoned = p.inflight.Load()
	}
	for i, w := range p.workers {
		snap.Workers[i] = sched.WorkerSnapshot{
			ID:         w.id,
			DequeStats: w.deque.Stats(),
			Parks:      w.parks.Load(),
			Wakes:      w.wakes.Load(),
		}
	}
	return snap
}

// Chunk is a half-open index range [Lo, Hi).
type Chunk struct{ Lo, Hi int }

// Len returns the number of indices in the chunk.
func (c Chunk) Len() int { return c.Hi - c.Lo }

// StaticChunks splits [0, n) into at most p contiguous chunks whose sizes
// differ by at most one — OpenMP's schedule(static) decomposition. Fewer
// than p chunks are returned when n < p.
func StaticChunks(n, p int) []Chunk {
	if n <= 0 || p <= 0 {
		return nil
	}
	if p > n {
		p = n
	}
	chunks := make([]Chunk, 0, p)
	base, rem := n/p, n%p
	lo := 0
	for i := 0; i < p; i++ {
		size := base
		if i < rem {
			size++
		}
		chunks = append(chunks, Chunk{lo, lo + size})
		lo += size
	}
	return chunks
}

// StaticBlock returns the i'th of p balanced contiguous chunks of [0, n)
// — StaticChunks(n, p)[i] without allocating the slice, for the static
// schedule's hot path. ok is false when party i gets no iterations
// (n < p, out-of-range i, or an empty range).
func StaticBlock(n, p, i int) (Chunk, bool) {
	if n <= 0 || p <= 0 || i < 0 || i >= p {
		return Chunk{}, false
	}
	if p > n {
		p = n
		if i >= p {
			return Chunk{}, false
		}
	}
	base, rem := n/p, n%p
	lo := i*base + rem
	size := base
	if i < rem {
		lo = i*base + i
		size++
	}
	return Chunk{lo, lo + size}, true
}

// BlockChunks splits [0, n) into fixed-size blocks of the given chunk size
// (the unit handed out by dynamic schedules).
func BlockChunks(n, chunk int) []Chunk {
	if n <= 0 || chunk <= 0 {
		return nil
	}
	chunks := make([]Chunk, 0, (n+chunk-1)/chunk)
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		chunks = append(chunks, Chunk{lo, hi})
	}
	return chunks
}
