// Package core provides the shared parallel-runtime primitives that both
// reproduced programming models — Parallel Task (internal/ptask) and
// Pyjama (internal/pyjama) — are built on: a work-stealing worker pool
// with blocking-free joins ("helping"), futures with panic capture,
// a cyclic barrier, and iteration-range splitting.
//
// Keeping these in one substrate mirrors the PARC lab's architecture,
// where both tools share a runtime library beneath their language fronts.
package core

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"parc751/internal/sched"
)

// PanicError wraps a recovered panic value with the stack at the point of
// recovery, so a task failure surfaces as an ordinary error on the future
// instead of killing a worker (the Parallel Task "asynchronous exception"
// model).
type PanicError struct {
	Value any
	Stack string
}

// Error implements the error interface.
func (e *PanicError) Error() string { return fmt.Sprintf("task panicked: %v", e.Value) }

// Catch runs fn, converting a panic into a *PanicError.
func Catch(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			buf := make([]byte, 8192)
			n := runtime.Stack(buf, false)
			err = &PanicError{Value: r, Stack: string(buf[:n])}
		}
	}()
	fn()
	return nil
}

// Future is a write-once result container. The zero value is not usable;
// create with NewFuture.
type Future[T any] struct {
	done chan struct{}
	once sync.Once
	val  T
	err  error
}

// NewFuture returns an incomplete future.
func NewFuture[T any]() *Future[T] {
	return &Future[T]{done: make(chan struct{})}
}

// Complete fulfils the future. Later completions are ignored (write-once).
func (f *Future[T]) Complete(v T, err error) {
	f.once.Do(func() {
		f.val, f.err = v, err
		close(f.done)
	})
}

// Done returns a channel closed when the future completes.
func (f *Future[T]) Done() <-chan struct{} { return f.done }

// IsDone reports completion without blocking.
func (f *Future[T]) IsDone() bool {
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}

// Get blocks until completion and returns the value and error.
func (f *Future[T]) Get() (T, error) {
	<-f.done
	return f.val, f.err
}

// TryGet returns immediately; ok is false if the future is incomplete.
func (f *Future[T]) TryGet() (v T, err error, ok bool) {
	select {
	case <-f.done:
		return f.val, f.err, true
	default:
		var zero T
		return zero, nil, false
	}
}

// Pool is a work-stealing worker pool: each worker owns a deque (LIFO for
// its own spawns, FIFO for thieves) and falls back to a global FIFO for
// external submissions, matching the Parallel Task runtime's design.
type Pool struct {
	workers []*worker
	global  sched.FIFO[func()]
	victims *sched.RandomVictims

	mu       sync.Mutex
	cond     *sync.Cond
	queued   int64 // tasks sitting in any queue
	shutdown bool

	inflight atomic.Int64 // queued + running
	executed atomic.Int64
	wg       sync.WaitGroup

	gidMu sync.RWMutex
	gids  map[int64]*worker
}

type worker struct {
	id    int
	deque *sched.Deque[func()]
	pool  *Pool
}

// NewPool starts a pool with n workers (n < 1 is treated as 1).
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{
		workers: make([]*worker, n),
		victims: sched.NewRandomVictims(n, 0x5157),
		gids:    map[int64]*worker{},
	}
	p.cond = sync.NewCond(&p.mu)
	for i := range p.workers {
		p.workers[i] = &worker{id: i, deque: sched.NewDeque[func()](64), pool: p}
	}
	p.wg.Add(n)
	for _, w := range p.workers {
		go w.run()
	}
	return p
}

// Size returns the number of workers.
func (p *Pool) Size() int { return len(p.workers) }

// Executed returns the number of tasks that have finished running.
func (p *Pool) Executed() int64 { return p.executed.Load() }

// Submit schedules fn. Called from a worker goroutine, the task goes on
// that worker's own deque (depth-first, cache-friendly); called from
// outside, it goes on the global queue.
func (p *Pool) Submit(fn func()) {
	p.inflight.Add(1)
	if w := p.currentWorker(); w != nil {
		w.deque.PushBottom(fn)
	} else {
		p.global.Push(fn)
	}
	p.mu.Lock()
	p.queued++
	p.cond.Broadcast()
	p.mu.Unlock()
}

// OnWorker reports whether the calling goroutine is one of the pool's
// workers.
func (p *Pool) OnWorker() bool { return p.currentWorker() != nil }

func (p *Pool) currentWorker() *worker {
	p.gidMu.RLock()
	w := p.gids[goroutineID()]
	p.gidMu.RUnlock()
	return w
}

func (w *worker) run() {
	p := w.pool
	gid := goroutineID()
	p.gidMu.Lock()
	p.gids[gid] = w
	p.gidMu.Unlock()
	defer func() {
		p.gidMu.Lock()
		delete(p.gids, gid)
		p.gidMu.Unlock()
		p.wg.Done()
	}()
	for {
		fn, ok := p.findWork(w)
		if !ok {
			p.mu.Lock()
			for p.queued == 0 && !p.shutdown {
				p.cond.Wait()
			}
			stop := p.shutdown && p.queued == 0
			p.mu.Unlock()
			if stop {
				return
			}
			continue
		}
		p.runTask(fn)
	}
}

// findWork implements the acquisition order: own deque, global queue, then
// one steal round over random victims.
func (p *Pool) findWork(w *worker) (func(), bool) {
	if w != nil {
		if fn, ok := w.deque.PopBottom(); ok {
			p.noteTaken()
			return fn, true
		}
	}
	if fn, ok := p.global.Pop(); ok {
		p.noteTaken()
		return fn, true
	}
	if w != nil {
		for i := 1; i < len(p.workers); i++ {
			v := p.victims.Next(w.id)
			if fn, ok := p.workers[v].deque.Steal(); ok {
				p.noteTaken()
				return fn, true
			}
		}
	}
	return nil, false
}

func (p *Pool) noteTaken() {
	p.mu.Lock()
	p.queued--
	p.mu.Unlock()
}

func (p *Pool) runTask(fn func()) {
	// Panics are contained per-task; the task wrapper (e.g. a ptask
	// future) is responsible for recording them. A bare Submit that
	// panics must still not kill the worker.
	_ = Catch(fn)
	p.executed.Add(1)
	p.inflight.Add(-1)
}

// Help runs queued tasks on the calling goroutine until done is closed.
// This is how joins avoid deadlock: a worker (or any goroutine) waiting on
// a future keeps executing other tasks instead of blocking, so recursive
// decompositions complete on pools of any size.
func (p *Pool) Help(done <-chan struct{}) {
	w := p.currentWorker()
	for {
		select {
		case <-done:
			return
		default:
		}
		fn, ok := p.findWork(w)
		if !ok {
			select {
			case <-done:
				return
			case <-time.After(50 * time.Microsecond):
			}
			continue
		}
		p.runTask(fn)
	}
}

// Quiesce blocks until no tasks are queued or running. It must not be
// called from a worker.
func (p *Pool) Quiesce() {
	for p.inflight.Load() != 0 {
		time.Sleep(100 * time.Microsecond)
	}
}

// Shutdown waits for all submitted work to finish, then stops the workers.
// The pool must not be used afterwards.
func (p *Pool) Shutdown() {
	p.Quiesce()
	p.mu.Lock()
	p.shutdown = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

// ErrBarrierAborted is the panic value delivered to parties blocked in
// Await when the barrier is aborted (because a sibling died and can never
// arrive).
var ErrBarrierAborted = errors.New("core: barrier aborted")

// Barrier is a reusable (cyclic) barrier for a fixed number of parties.
type Barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	waiting int
	gen     int
	aborted bool
}

// NewBarrier creates a barrier for parties participants (minimum 1).
func NewBarrier(parties int) *Barrier {
	if parties < 1 {
		parties = 1
	}
	b := &Barrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Await blocks until all parties have called Await, then releases them
// all. It returns the index of this barrier generation (0, 1, 2, ...), and
// true for exactly one caller per generation (the "serial thread", which
// OpenMP uses for single-after-barrier semantics).
// Await panics with ErrBarrierAborted (in every blocked or future caller)
// once Abort has been called, so a dead sibling cannot deadlock the team.
func (b *Barrier) Await() (gen int, serial bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.aborted {
		panic(ErrBarrierAborted)
	}
	gen = b.gen
	b.waiting++
	if b.waiting == b.parties {
		b.waiting = 0
		b.gen++
		b.cond.Broadcast()
		return gen, true
	}
	for gen == b.gen && !b.aborted {
		b.cond.Wait()
	}
	if b.aborted && gen == b.gen {
		panic(ErrBarrierAborted)
	}
	return gen, false
}

// Abort permanently breaks the barrier: every party blocked in Await (and
// every later caller) panics with ErrBarrierAborted. Used when a party
// dies and can never arrive.
func (b *Barrier) Abort() {
	b.mu.Lock()
	b.aborted = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// Parties returns the number of participants.
func (b *Barrier) Parties() int { return b.parties }

// Chunk is a half-open index range [Lo, Hi).
type Chunk struct{ Lo, Hi int }

// Len returns the number of indices in the chunk.
func (c Chunk) Len() int { return c.Hi - c.Lo }

// StaticChunks splits [0, n) into at most p contiguous chunks whose sizes
// differ by at most one — OpenMP's schedule(static) decomposition. Fewer
// than p chunks are returned when n < p.
func StaticChunks(n, p int) []Chunk {
	if n <= 0 || p <= 0 {
		return nil
	}
	if p > n {
		p = n
	}
	chunks := make([]Chunk, 0, p)
	base, rem := n/p, n%p
	lo := 0
	for i := 0; i < p; i++ {
		size := base
		if i < rem {
			size++
		}
		chunks = append(chunks, Chunk{lo, lo + size})
		lo += size
	}
	return chunks
}

// BlockChunks splits [0, n) into fixed-size blocks of the given chunk size
// (the unit handed out by dynamic schedules).
func BlockChunks(n, chunk int) []Chunk {
	if n <= 0 || chunk <= 0 {
		return nil
	}
	chunks := make([]Chunk, 0, (n+chunk-1)/chunk)
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		chunks = append(chunks, Chunk{lo, hi})
	}
	return chunks
}

// goroutineID extracts the current goroutine's id from the runtime stack
// header. Stdlib-only worker identification; called on submit paths, not
// inner loops.
func goroutineID() int64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	fields := bytes.Fields(buf[:n])
	if len(fields) < 2 {
		return -1
	}
	id, err := strconv.ParseInt(string(fields[1]), 10, 64)
	if err != nil {
		return -1
	}
	return id
}
