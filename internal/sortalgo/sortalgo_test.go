package sortalgo

import (
	"sort"
	"testing"
	"testing/quick"

	"parc751/internal/ptask"
	"parc751/internal/workload"
	"parc751/internal/xrand"
)

// checkSorted verifies output is sorted AND a permutation of the input.
func checkSorted(t *testing.T, name string, orig, sorted []int) {
	t.Helper()
	if len(orig) != len(sorted) {
		t.Fatalf("%s: length changed", name)
	}
	if !sort.IntsAreSorted(sorted) {
		t.Fatalf("%s: output not sorted", name)
	}
	want := append([]int(nil), orig...)
	sort.Ints(want)
	for i := range want {
		if sorted[i] != want[i] {
			t.Fatalf("%s: not a permutation at %d: %d != %d", name, i, sorted[i], want[i])
		}
	}
}

func inputs() map[string][]int {
	return map[string][]int{
		"empty":        {},
		"single":       {5},
		"pair":         {9, 1},
		"random":       workload.IntArray(1, 5000, 100000),
		"duplicates":   workload.IntArray(2, 5000, 10),
		"sorted":       workload.NearlySorted(3, 3000, 0),
		"nearlySorted": workload.NearlySorted(4, 3000, 0.02),
		"reversed":     reversed(3000),
		"allEqual":     constant(2000, 7),
	}
}

func reversed(n int) []int {
	xs := make([]int, n)
	for i := range xs {
		xs[i] = n - i
	}
	return xs
}

func constant(n, v int) []int {
	xs := make([]int, n)
	for i := range xs {
		xs[i] = v
	}
	return xs
}

func TestSequential(t *testing.T) {
	for name, in := range inputs() {
		xs := append([]int(nil), in...)
		Sequential(xs)
		checkSorted(t, "seq/"+name, in, xs)
	}
}

func TestPTask(t *testing.T) {
	rt := ptask.NewRuntime(4)
	defer rt.Shutdown()
	for name, in := range inputs() {
		xs := append([]int(nil), in...)
		PTask(rt, xs, 256)
		checkSorted(t, "ptask/"+name, in, xs)
	}
}

func TestPTaskSingleWorker(t *testing.T) {
	rt := ptask.NewRuntime(1)
	defer rt.Shutdown()
	xs := workload.IntArray(9, 20000, 1000000)
	orig := append([]int(nil), xs...)
	PTask(rt, xs, 512)
	checkSorted(t, "ptask/1worker", orig, xs)
}

func TestPyjama(t *testing.T) {
	for name, in := range inputs() {
		for _, threads := range []int{1, 2, 4} {
			xs := append([]int(nil), in...)
			Pyjama(threads, xs, 256)
			checkSorted(t, "pyjama/"+name, in, xs)
		}
	}
}

func TestGoroutines(t *testing.T) {
	for name, in := range inputs() {
		xs := append([]int(nil), in...)
		Goroutines(xs, 256, 6)
		checkSorted(t, "goroutines/"+name, in, xs)
	}
}

func TestGoroutinesZeroDepthIsSequential(t *testing.T) {
	xs := workload.IntArray(5, 2000, 500)
	orig := append([]int(nil), xs...)
	Goroutines(xs, 256, 0)
	checkSorted(t, "goroutines/depth0", orig, xs)
}

// Property: every implementation agrees with sort.Ints on random input.
func TestAllImplementationsAgree(t *testing.T) {
	rt := ptask.NewRuntime(2)
	defer rt.Shutdown()
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw % 2000)
		r := xrand.New(seed)
		base := make([]int, n)
		for i := range base {
			base[i] = r.Intn(500) - 250
		}
		want := append([]int(nil), base...)
		sort.Ints(want)

		for _, sorter := range []func([]int){
			Sequential,
			func(xs []int) { PTask(rt, xs, 128) },
			func(xs []int) { Pyjama(3, xs, 128) },
			func(xs []int) { Goroutines(xs, 128, 4) },
		} {
			xs := append([]int(nil), base...)
			sorter(xs)
			for i := range want {
				if xs[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionInvariant(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%200) + 2
		r := xrand.New(seed)
		xs := make([]int, n)
		for i := range xs {
			xs[i] = r.Intn(50)
		}
		p := partition(xs, 0, n-1)
		if p < 0 || p >= n-1 {
			return false
		}
		maxLeft := xs[0]
		for _, v := range xs[:p+1] {
			if v > maxLeft {
				maxLeft = v
			}
		}
		for _, v := range xs[p+1:] {
			if v < maxLeft {
				// Hoare partition guarantees left <= pivot <= right,
				// so any right element below the left max breaks it.
				for _, lv := range xs[:p+1] {
					if v < lv {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLargeRandom(t *testing.T) {
	rt := ptask.NewRuntime(4)
	defer rt.Shutdown()
	xs := workload.IntArray(42, 200000, 1<<30)
	orig := append([]int(nil), xs...)
	PTask(rt, xs, 2048)
	checkSorted(t, "ptask/large", orig, xs)
}

func BenchmarkSequential100k(b *testing.B) {
	base := workload.IntArray(7, 100000, 1<<30)
	xs := make([]int, len(base))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(xs, base)
		Sequential(xs)
	}
}

func BenchmarkPTask100k(b *testing.B) {
	rt := ptask.NewRuntime(4)
	defer rt.Shutdown()
	base := workload.IntArray(7, 100000, 1<<30)
	xs := make([]int, len(base))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(xs, base)
		PTask(rt, xs, 4096)
	}
}

func BenchmarkPyjama100k(b *testing.B) {
	base := workload.IntArray(7, 100000, 1<<30)
	xs := make([]int, len(base))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(xs, base)
		Pyjama(4, xs, 4096)
	}
}

func BenchmarkGoroutines100k(b *testing.B) {
	base := workload.IntArray(7, 100000, 1<<30)
	xs := make([]int, len(base))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(xs, base)
		Goroutines(xs, 4096, 8)
	}
}
