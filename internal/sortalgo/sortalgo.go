// Package sortalgo is project 2 of the reproduced paper: parallel
// quicksort implemented three ways with object-oriented language support —
// Parallel Task, Pyjama, and plain threads (goroutines here) — plus the
// sequential baseline. The students' research component was expressing a
// classically-parallelised algorithm through the two PARC models; the
// bench harness compares the same three expressions.
package sortalgo

import (
	"runtime"
	"sync"

	"parc751/internal/ptask"
	"parc751/internal/pyjama"
)

// insertionThreshold is the cutoff below which insertion sort beats
// quicksort's partitioning overhead.
const insertionThreshold = 24

// Sequential sorts xs in place with median-of-three quicksort, the
// baseline every parallel version is verified against and compared to.
func Sequential(xs []int) {
	seqQuick(xs, 0, len(xs)-1)
}

func seqQuick(xs []int, lo, hi int) {
	for hi-lo >= insertionThreshold {
		p := partition(xs, lo, hi)
		// Recurse into the smaller half, loop on the larger: O(log n)
		// stack in the worst case.
		if p-lo < hi-p {
			seqQuick(xs, lo, p)
			lo = p + 1
		} else {
			seqQuick(xs, p+1, hi)
			hi = p
		}
	}
	insertion(xs, lo, hi)
}

func insertion(xs []int, lo, hi int) {
	for i := lo + 1; i <= hi; i++ {
		v := xs[i]
		j := i - 1
		for j >= lo && xs[j] > v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}

// partition is Hoare partition with median-of-three pivot selection; it
// returns p such that xs[lo..p] <= pivot <= xs[p+1..hi].
func partition(xs []int, lo, hi int) int {
	mid := lo + (hi-lo)/2
	// Order lo, mid, hi; use the median as the pivot.
	if xs[mid] < xs[lo] {
		xs[mid], xs[lo] = xs[lo], xs[mid]
	}
	if xs[hi] < xs[lo] {
		xs[hi], xs[lo] = xs[lo], xs[hi]
	}
	if xs[hi] < xs[mid] {
		xs[hi], xs[mid] = xs[mid], xs[hi]
	}
	pivot := xs[mid]
	i, j := lo-1, hi+1
	for {
		for {
			i++
			if xs[i] >= pivot {
				break
			}
		}
		for {
			j--
			if xs[j] <= pivot {
				break
			}
		}
		if i >= j {
			return j
		}
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// PTask sorts xs using the Parallel Task model: ranges above threshold
// spawn one child task for the left half and recurse on the right, joining
// via the helping Result. This is the expression the paper's students
// wrote with the TASK keyword.
func PTask(rt *ptask.Runtime, xs []int, threshold int) {
	if threshold < insertionThreshold {
		threshold = insertionThreshold
	}
	root := ptask.Invoke(rt, func() error {
		ptaskQuick(rt, xs, 0, len(xs)-1, threshold)
		return nil
	})
	if _, err := root.Result(); err != nil {
		panic(err)
	}
}

func ptaskQuick(rt *ptask.Runtime, xs []int, lo, hi, threshold int) {
	for hi-lo >= threshold {
		p := partition(xs, lo, hi)
		lo2, hi2 := lo, p // left half handed to a child task
		child := ptask.Invoke(rt, func() error {
			ptaskQuick(rt, xs, lo2, hi2, threshold)
			return nil
		})
		lo = p + 1
		defer func() {
			if _, err := child.Result(); err != nil {
				panic(err)
			}
		}()
	}
	seqQuick(xs, lo, hi)
}

// Pyjama sorts xs with an OpenMP-2.5-style expression: a parallel region
// whose members cooperatively drain a shared range stack under a critical
// section (Pyjama predates OpenMP tasks, so this is how its users wrote
// divide-and-conquer). The termination protocol counts busy members so
// idle members only exit when no range can still be produced.
func Pyjama(nthreads int, xs []int, threshold int) {
	if threshold < insertionThreshold {
		threshold = insertionThreshold
	}
	if len(xs) < 2 {
		return
	}
	type rng struct{ lo, hi int }
	var (
		mu    sync.Mutex
		stack []rng
		busy  int
	)
	stack = append(stack, rng{0, len(xs) - 1})
	pyjama.Parallel(nthreads, func(tc *pyjama.TC) {
		for {
			mu.Lock()
			if len(stack) == 0 {
				if busy == 0 {
					mu.Unlock()
					return // nothing queued, nobody can produce more
				}
				mu.Unlock()
				runtime.Gosched() // a busy member may still push ranges
				continue
			}
			r := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			busy++
			mu.Unlock()

			for r.hi-r.lo >= threshold {
				p := partition(xs, r.lo, r.hi)
				mu.Lock()
				stack = append(stack, rng{r.lo, p})
				mu.Unlock()
				r.lo = p + 1
			}
			seqQuick(xs, r.lo, r.hi)

			mu.Lock()
			busy--
			mu.Unlock()
		}
	})
}

// Goroutines sorts xs with the "plain Java threads" expression: spawn a
// goroutine per sub-range above threshold, bounded by maxDepth levels of
// spawning, joined with a WaitGroup.
func Goroutines(xs []int, threshold, maxDepth int) {
	if threshold < insertionThreshold {
		threshold = insertionThreshold
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go goQuick(xs, 0, len(xs)-1, threshold, maxDepth, &wg)
	wg.Wait()
}

func goQuick(xs []int, lo, hi, threshold, depth int, wg *sync.WaitGroup) {
	defer wg.Done()
	for hi-lo >= threshold && depth > 0 {
		p := partition(xs, lo, hi)
		wg.Add(1)
		go goQuick(xs, lo, p, threshold, depth-1, wg)
		lo = p + 1
		depth--
	}
	seqQuick(xs, lo, hi)
}
