// Package faultinject is the deterministic chaos harness behind the A8
// experiment: seeded, schedule-replayable fault plans injected into the
// runtime through cheap nil-checked hooks. The runtime layers (core.Pool,
// core.Barrier, eventloop.Loop, webfetch, ptask) each hold an optional
// *Injector; when it is nil — the production configuration — the hook is
// a single pointer compare and the hot paths are unchanged (the guard
// test in internal/core asserts this stays true).
//
// Determinism model: every injection site keeps an atomic event counter,
// and a Rule fires on specific event ordinals (Nth, or Nth + k*Every,
// capped by Count). The same plan therefore injects the same multiset of
// (site, ordinal) faults on every run, independent of goroutine
// interleaving — which *task* draws ordinal N may vary, but the injected
// schedule and the multiset of surfaced errors do not. Plans are built
// from a seed (see Scatter), so "same seed ⇒ same injected schedule ⇒
// same surfaced errors" holds end to end; Injector.Trace records what
// actually fired so experiments can assert the replay matched.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"parc751/internal/xrand"
)

// Site identifies one injection point in the runtime.
type Site uint8

const (
	// SiteSubmit fires on every core.Pool.Submit (delay-class faults).
	SiteSubmit Site = iota
	// SiteSteal fires on every successful steal in core.Pool.findWork.
	SiteSteal
	// SiteRun fires before a worker executes a task; a Stall here models
	// a stalled worker whose queued work must be stolen by siblings.
	SiteRun
	// SiteBarrierArrive fires as a party arrives at a core.Barrier.
	SiteBarrierArrive
	// SiteDispatch fires before the event loop runs a dispatched event.
	SiteDispatch
	// SiteTaskBody fires inside a ptask task body, under the task's panic
	// capture — the only site where Panic-class faults are legal, so an
	// injected panic surfaces as an error on the future, never as a
	// crashed worker.
	SiteTaskBody
	// SiteTransport fires in the webfetch RoundTripper; Error and Hang
	// faults are legal here.
	SiteTransport
	numSites
)

var siteNames = [numSites]string{
	"submit", "steal", "run", "barrier", "dispatch", "taskbody", "transport",
}

// String returns the site's short name.
func (s Site) String() string {
	if int(s) < len(siteNames) {
		return siteNames[s]
	}
	return fmt.Sprintf("site(%d)", uint8(s))
}

// Kind classifies what a fired rule does.
type Kind uint8

const (
	// Delay sleeps for the rule's duration at the site.
	Delay Kind = iota
	// Stall is a long Delay, named separately so traces and invariants
	// can distinguish "jitter" from "a worker wedged for a while".
	Stall
	// Panic panics with an *InjectedPanic (SiteTaskBody only; other
	// sites treat it as Delay so a misplaced rule cannot kill a worker).
	Panic
	// Error returns the rule's error (SiteTransport only).
	Error
	// Hang blocks until the request context is cancelled and then
	// returns its error (SiteTransport only).
	Hang
)

var kindNames = []string{"delay", "stall", "panic", "error", "hang"}

// String returns the kind's short name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// InjectedPanic is the panic value of a Panic-class fault. Carrying the
// site ordinal makes every injected failure uniquely attributable, so A8
// can assert "every injected fault surfaced as exactly one error".
type InjectedPanic struct {
	Ordinal uint64
}

// Error makes an InjectedPanic usable directly as an error value.
func (p InjectedPanic) Error() string {
	return fmt.Sprintf("faultinject: injected panic (taskbody ordinal %d)", p.Ordinal)
}

// ErrInjected is the error returned by Error-class transport faults,
// wrapped with the ordinal: errors.Is(err, ErrInjected) identifies it.
var ErrInjected = errors.New("faultinject: injected transport error")

// Rule is one line of a fault plan: at the rule's Site, fire on event
// ordinal Nth and every Every events after that (Every == 0 means fire on
// Nth only), at most Count times (Count == 0 means unlimited).
type Rule struct {
	Site  Site
	Kind  Kind
	Nth   uint64 // first firing ordinal (0-based)
	Every uint64 // period after Nth; 0 = one-shot
	Count uint64 // max firings; 0 = unlimited
	Dur   time.Duration
}

// matches reports whether the rule fires on event ordinal n (ignoring the
// Count cap, which the injector enforces with its own counter).
func (r Rule) matches(n uint64) bool {
	if n < r.Nth {
		return false
	}
	if r.Every == 0 {
		return n == r.Nth
	}
	return (n-r.Nth)%r.Every == 0
}

// Plan is a named, seeded set of rules. The Seed documents how the rules
// were derived (plan builders draw ordinals from it) and keys the
// deterministic backoff jitter used elsewhere in the failure stack.
type Plan struct {
	Name  string
	Seed  uint64
	Rules []Rule
}

// Scatter builds count one-shot rules at site, with ordinals drawn
// deterministically from seed in [0, span) — the standard way A8 derives
// "fail the Nth task" schedules from a seed. Duplicate ordinals are
// re-drawn so exactly count distinct events fault.
func Scatter(seed uint64, site Site, kind Kind, count, span int, dur time.Duration) []Rule {
	if count > span {
		count = span
	}
	rng := xrand.New(seed ^ uint64(site)<<8 ^ uint64(kind))
	seen := make(map[uint64]bool, count)
	rules := make([]Rule, 0, count)
	for len(rules) < count {
		n := uint64(rng.Intn(span))
		if seen[n] {
			continue
		}
		seen[n] = true
		rules = append(rules, Rule{Site: site, Kind: kind, Nth: n, Count: 1, Dur: dur})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].Nth < rules[j].Nth })
	return rules
}

// Event is one fired fault, as recorded in the trace.
type Event struct {
	Site    Site
	Ordinal uint64 // site event ordinal the rule fired on
	Kind    Kind
	Rule    int // index into Plan.Rules
}

// String renders the event for experiment output.
func (e Event) String() string {
	return fmt.Sprintf("%s@%d:%s", e.Site, e.Ordinal, e.Kind)
}

// Injector applies a Plan. All methods are safe for concurrent use; the
// match path is lock-free (per-site atomic counters plus per-rule firing
// caps), and only actual firings take the trace mutex.
type Injector struct {
	plan   Plan
	seen   [numSites]atomic.Uint64 // events observed per site
	fired  []atomic.Uint64         // firings per rule (Count enforcement)
	bySite [numSites][]int         // rule indices per site

	mu    sync.Mutex
	trace []Event
}

// New builds an injector for the plan.
func New(plan Plan) *Injector {
	in := &Injector{plan: plan, fired: make([]atomic.Uint64, len(plan.Rules))}
	for i, r := range plan.Rules {
		if r.Site < numSites {
			in.bySite[r.Site] = append(in.bySite[r.Site], i)
		}
	}
	return in
}

// Plan returns the injector's plan.
func (in *Injector) Plan() Plan { return in.plan }

// fire advances site's event counter and returns the first matching rule
// index, or -1. The counter advances on every call — that is what makes
// ordinals a stable coordinate system — but rules, traces, and sleeps are
// only touched on a hit.
func (in *Injector) fire(site Site) (ruleIdx int, ordinal uint64) {
	n := in.seen[site].Add(1) - 1
	for _, ri := range in.bySite[site] {
		r := &in.plan.Rules[ri]
		if !r.matches(n) {
			continue
		}
		if r.Count > 0 {
			// Reserve a firing slot; losing the race to the cap means the
			// rule is spent.
			if c := in.fired[ri].Add(1); c > r.Count {
				in.fired[ri].Add(^uint64(0))
				continue
			}
		} else {
			in.fired[ri].Add(1)
		}
		in.mu.Lock()
		in.trace = append(in.trace, Event{Site: site, Ordinal: n, Kind: r.Kind, Rule: ri})
		in.mu.Unlock()
		return ri, n
	}
	return -1, n
}

// Point is the generic delay-class hook: it advances the site counter and
// sleeps when a Delay/Stall rule fires. Panic-class rules at non-taskbody
// sites degrade to their duration as a delay (a misplaced panic must not
// kill a pool worker); Error/Hang rules are ignored here.
func (in *Injector) Point(site Site) {
	ri, _ := in.fire(site)
	if ri < 0 {
		return
	}
	r := &in.plan.Rules[ri]
	switch r.Kind {
	case Delay, Stall, Panic:
		if r.Dur > 0 {
			time.Sleep(r.Dur)
		}
	}
}

// TaskBody is the SiteTaskBody hook: Delay/Stall rules sleep, and Panic
// rules panic with an *InjectedPanic carrying the event ordinal. It must
// be called under panic capture (ptask task bodies are).
func (in *Injector) TaskBody() {
	ri, n := in.fire(SiteTaskBody)
	if ri < 0 {
		return
	}
	r := &in.plan.Rules[ri]
	if r.Dur > 0 {
		time.Sleep(r.Dur)
	}
	if r.Kind == Panic {
		panic(&InjectedPanic{Ordinal: n})
	}
}

// Transport is the SiteTransport hook. It returns a non-nil error when an
// Error rule fires (wrapped ErrInjected), blocks until ctx is done for a
// Hang rule (returning ctx.Err()), and sleeps for Delay/Stall rules.
func (in *Injector) Transport(ctx context.Context) error {
	ri, n := in.fire(SiteTransport)
	if ri < 0 {
		return nil
	}
	r := &in.plan.Rules[ri]
	switch r.Kind {
	case Error:
		return fmt.Errorf("%w (ordinal %d)", ErrInjected, n)
	case Hang:
		if r.Dur > 0 {
			// A bounded hang: wedge for Dur or until the caller gives up.
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(r.Dur):
				return fmt.Errorf("%w (hang expired, ordinal %d)", ErrInjected, n)
			}
		}
		<-ctx.Done()
		return ctx.Err()
	default:
		if r.Dur > 0 {
			time.Sleep(r.Dur)
		}
	}
	return nil
}

// Seen returns how many events have been observed at site.
func (in *Injector) Seen(site Site) uint64 { return in.seen[site].Load() }

// Fired returns the total number of faults injected so far.
func (in *Injector) Fired() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.trace)
}

// FiredAt returns how many faults of the given kind fired at site.
func (in *Injector) FiredAt(site Site, kind Kind) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	n := 0
	for _, e := range in.trace {
		if e.Site == site && e.Kind == kind {
			n++
		}
	}
	return n
}

// Trace returns a copy of the fired events in (site, ordinal) order — the
// canonical replay coordinate, independent of wall-clock interleaving.
// Two runs of the same plan over the same workload produce equal traces.
func (in *Injector) Trace() []Event {
	in.mu.Lock()
	out := append([]Event(nil), in.trace...)
	in.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Site != out[j].Site {
			return out[i].Site < out[j].Site
		}
		return out[i].Ordinal < out[j].Ordinal
	})
	return out
}

// TraceString renders the canonical trace as one line, for experiment
// tables and replay-equality assertions.
func (in *Injector) TraceString() string {
	evs := in.Trace()
	parts := make([]string, len(evs))
	for i, e := range evs {
		parts[i] = e.String()
	}
	if len(parts) == 0 {
		return "(no faults fired)"
	}
	return fmt.Sprint(parts)
}
