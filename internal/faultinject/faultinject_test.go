package faultinject

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestRuleMatches(t *testing.T) {
	oneShot := Rule{Nth: 3}
	for n, want := range map[uint64]bool{0: false, 2: false, 3: true, 4: false, 6: false} {
		if oneShot.matches(n) != want {
			t.Errorf("one-shot matches(%d) = %v, want %v", n, !want, want)
		}
	}
	periodic := Rule{Nth: 2, Every: 5}
	for n, want := range map[uint64]bool{0: false, 2: true, 5: false, 7: true, 12: true, 13: false} {
		if periodic.matches(n) != want {
			t.Errorf("periodic matches(%d) = %v, want %v", n, !want, want)
		}
	}
}

func TestScatterDeterministicAndDistinct(t *testing.T) {
	a := Scatter(42, SiteTaskBody, Panic, 5, 100, 0)
	b := Scatter(42, SiteTaskBody, Panic, 5, 100, 0)
	if len(a) != 5 {
		t.Fatalf("got %d rules, want 5", len(a))
	}
	seen := map[uint64]bool{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different rules: %+v vs %+v", a[i], b[i])
		}
		if seen[a[i].Nth] {
			t.Fatalf("duplicate ordinal %d", a[i].Nth)
		}
		seen[a[i].Nth] = true
	}
	c := Scatter(43, SiteTaskBody, Panic, 5, 100, 0)
	same := true
	for i := range a {
		if a[i].Nth != c[i].Nth {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical ordinals")
	}
	if got := Scatter(1, SiteRun, Delay, 10, 4, 0); len(got) != 4 {
		t.Errorf("count clamped to span: got %d rules, want 4", len(got))
	}
}

// TestFireExactlyOncePerOrdinal drives a one-shot rule from many
// goroutines: the ordinal coordinate guarantees exactly one firing no
// matter the interleaving.
func TestFireExactlyOncePerOrdinal(t *testing.T) {
	in := New(Plan{Rules: []Rule{{Site: SiteRun, Kind: Delay, Nth: 7, Count: 1}}})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				in.Point(SiteRun)
			}
		}()
	}
	wg.Wait()
	if in.Fired() != 1 {
		t.Fatalf("fired %d times, want 1", in.Fired())
	}
	tr := in.Trace()
	if tr[0].Site != SiteRun || tr[0].Ordinal != 7 {
		t.Fatalf("trace = %v, want run@7", tr)
	}
	if in.Seen(SiteRun) != 800 {
		t.Fatalf("seen = %d, want 800", in.Seen(SiteRun))
	}
}

func TestCountCapUnderConcurrency(t *testing.T) {
	// A periodic rule with a cap must fire exactly Count times even when
	// every event matches and many goroutines race.
	in := New(Plan{Rules: []Rule{{Site: SiteSubmit, Kind: Delay, Every: 1, Count: 3}}})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				in.Point(SiteSubmit)
			}
		}()
	}
	wg.Wait()
	if in.Fired() != 3 {
		t.Fatalf("fired %d times, want 3", in.Fired())
	}
}

func TestReplayProducesEqualTraces(t *testing.T) {
	plan := Plan{Seed: 9, Rules: Scatter(9, SiteTaskBody, Panic, 4, 64, 0)}
	run := func() string {
		in := New(plan)
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 16; i++ {
					func() {
						defer func() { recover() }()
						in.TaskBody()
					}()
				}
			}()
		}
		wg.Wait()
		return in.TraceString()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("replay diverged:\n  %s\n  %s", a, b)
	}
}

func TestTaskBodyPanicCarriesOrdinal(t *testing.T) {
	in := New(Plan{Rules: []Rule{{Site: SiteTaskBody, Kind: Panic, Nth: 1, Count: 1}}})
	in.TaskBody() // ordinal 0: no fault
	var got *InjectedPanic
	func() {
		defer func() {
			r := recover()
			p, ok := r.(*InjectedPanic)
			if !ok {
				t.Fatalf("recovered %T, want *InjectedPanic", r)
			}
			got = p
		}()
		in.TaskBody()
	}()
	if got == nil || got.Ordinal != 1 {
		t.Fatalf("injected panic = %+v, want ordinal 1", got)
	}
}

func TestPanicRuleDegradesToDelayAtPoolSites(t *testing.T) {
	// A Panic rule at a pool site must not panic (it would kill a worker
	// outside any future's capture); it degrades to its delay.
	in := New(Plan{Rules: []Rule{{Site: SiteRun, Kind: Panic, Nth: 0, Count: 1}}})
	in.Point(SiteRun) // must not panic
	if in.Fired() != 1 {
		t.Fatal("degraded rule did not record a firing")
	}
}

func TestTransportErrorAndHang(t *testing.T) {
	in := New(Plan{Rules: []Rule{
		{Site: SiteTransport, Kind: Error, Nth: 0, Count: 1},
		{Site: SiteTransport, Kind: Hang, Nth: 1, Count: 1},
	}})
	if err := in.Transport(context.Background()); !errors.Is(err, ErrInjected) {
		t.Fatalf("error fault: got %v, want ErrInjected", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := in.Transport(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hang fault: got %v, want deadline exceeded", err)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Error("hang returned before the context deadline")
	}
	if err := in.Transport(context.Background()); err != nil {
		t.Fatalf("ordinal 2 should be clean, got %v", err)
	}
}

func TestRoundTripperInjectsAndPassesThrough(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer srv.Close()

	in := New(Plan{Rules: []Rule{{Site: SiteTransport, Kind: Error, Nth: 0, Count: 1}}})
	client := &http.Client{Transport: &RoundTripper{Injector: in}}
	if _, err := client.Get(srv.URL); err == nil {
		t.Fatal("first request should carry the injected error")
	}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("second request failed: %v", err)
	}
	resp.Body.Close()

	// A nil injector must be transparent.
	clean := &http.Client{Transport: &RoundTripper{}}
	resp, err = clean.Get(srv.URL)
	if err != nil {
		t.Fatalf("nil-injector round trip failed: %v", err)
	}
	resp.Body.Close()
}

func TestDelaySleeps(t *testing.T) {
	in := New(Plan{Rules: []Rule{{Site: SiteDispatch, Kind: Delay, Nth: 0, Count: 1, Dur: 10 * time.Millisecond}}})
	start := time.Now()
	in.Point(SiteDispatch)
	if d := time.Since(start); d < 8*time.Millisecond {
		t.Fatalf("delay slept %v, want >= 10ms", d)
	}
}
