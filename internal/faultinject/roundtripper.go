package faultinject

import "net/http"

// RoundTripper wraps an http.RoundTripper with SiteTransport fault
// injection: Error rules fail the request before it reaches the base
// transport, Hang rules wedge it until the request context gives up, and
// Delay rules add latency. A nil Injector is transparent, so the wrapper
// can be left installed in production configurations.
type RoundTripper struct {
	Base     http.RoundTripper
	Injector *Injector
}

// RoundTrip implements http.RoundTripper.
func (rt *RoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	if rt.Injector != nil {
		if err := rt.Injector.Transport(req.Context()); err != nil {
			return nil, err
		}
	}
	base := rt.Base
	if base == nil {
		base = http.DefaultTransport
	}
	return base.RoundTrip(req)
}
