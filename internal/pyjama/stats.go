package pyjama

// RegionStats is Pyjama's observability surface, mirroring the scheduler's
// sched.Snapshot: per-thread worksharing tallies (chunks claimed,
// iterations run) and barrier behaviour (waits, spin-caught releases,
// parks), plus the decision every schedule(auto) loop committed to.
// Obtain one with ParallelWithStats; `parcbench -e A6` prints them for the
// schedule-ablation workloads.

import (
	"fmt"
	"strings"

	"parc751/internal/core"
	"parc751/internal/metrics"
)

// threadCounters is one team member's padded tally slot. It is written
// only by its owning thread (no atomics on the claim path); the region
// join publishes the final values to the stats reader.
type threadCounters struct {
	chunks int64
	iters  int64
	_      [48]byte
}

// ThreadStats is one team member's view of the region: how many chunks it
// claimed across all worksharing loops, how many iterations it ran, and
// how it behaved at barriers.
type ThreadStats struct {
	ID            int
	ChunksClaimed int64
	IterationsRun int64
	Barrier       core.BarrierStats
}

// RegionStats is the whole team's snapshot, taken after the region joins.
type RegionStats struct {
	Threads []ThreadStats
	// Auto records the calibration outcome of every schedule(auto) loop
	// in the region, in construct order.
	Auto []AutoDecision
}

func (r *region) statsSnapshot() RegionStats {
	s := RegionStats{Threads: make([]ThreadStats, r.n)}
	for i := 0; i < r.n; i++ {
		s.Threads[i] = ThreadStats{
			ID:            i,
			ChunksClaimed: r.counters[i].chunks,
			IterationsRun: r.counters[i].iters,
			Barrier:       r.barrier.PartyStats(i),
		}
	}
	// Worksharing slots are dense from zero (every construct consumes
	// one), so walk until the first empty slot.
	for slot := 0; ; slot++ {
		ls := r.loops.get(slot)
		if ls == nil {
			break
		}
		if ls.auto != nil {
			s.Auto = append(s.Auto, ls.auto.snapshot(slot))
		}
	}
	return s
}

// TotalChunks sums chunks claimed across the team.
func (s RegionStats) TotalChunks() int64 {
	var n int64
	for _, t := range s.Threads {
		n += t.ChunksClaimed
	}
	return n
}

// TotalIterations sums iterations run across the team — for a region with
// one For over [0, n), exactly n when coverage is complete.
func (s RegionStats) TotalIterations() int64 {
	var n int64
	for _, t := range s.Threads {
		n += t.IterationsRun
	}
	return n
}

// TotalBarrierParks sums the generations any member had to park for (as
// opposed to catching the release while spinning or yielding).
func (s RegionStats) TotalBarrierParks() int64 {
	var n int64
	for _, t := range s.Threads {
		n += t.Barrier.Parks
	}
	return n
}

// String renders the snapshot as the plain-text table printed by
// `parcbench -e A6`, in the style of sched.Snapshot.
func (s RegionStats) String() string {
	tab := metrics.NewTable("Pyjama region stats (per thread)",
		"thread", "chunks", "iterations", "barrier-waits", "spin-releases", "parks")
	for _, t := range s.Threads {
		tab.AddRow(t.ID, t.ChunksClaimed, t.IterationsRun,
			t.Barrier.Waits, t.Barrier.SpinReleases, t.Barrier.Parks)
	}
	var b strings.Builder
	b.WriteString(tab.String())
	for _, d := range s.Auto {
		fmt.Fprintf(&b,
			"auto loop %d: mode=%s chunk=%d per-iter=%.1fns spread=%.2f samples=%d calib=%d\n",
			d.Loop, d.Mode, d.Chunk, d.PerIterNs, d.Spread, d.Samples, d.CalibEnd)
	}
	return b.String()
}
