package pyjama

import (
	"sync/atomic"

	"parc751/internal/faultinject"
)

// regionFI is the package-level chaos injector. Pyjama regions are created
// inside algorithm code (sortalgo, mandel, ...) with no seam to pass an
// injector through, so chaos runs attach one globally: every region
// started while it is set wires it into the team barrier, where
// arrival-delay rules skew the order members reach worksharing constructs
// and barriers. nil in production — one atomic load per region start.
var regionFI atomic.Pointer[faultinject.Injector]

// SetFaultInjector attaches (or, with nil, detaches) the chaos injector
// applied to every subsequently started parallel region. It returns the
// previous injector so callers can restore it.
func SetFaultInjector(in *faultinject.Injector) *faultinject.Injector {
	return regionFI.Swap(in)
}
