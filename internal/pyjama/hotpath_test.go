package pyjama

// Tests for the lock-free worksharing hot path (ISSUE 2): slot tables,
// SPMD-mismatch detection, combine-once reductions, schedule(auto), region
// stats, and a mixed-construct stress for the race detector.

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"parc751/internal/reduction"
)

func TestSlotTableSegments(t *testing.T) {
	var st slotTable[int]
	// Crossing several segment boundaries: segments hold 8, 16, 32, ...
	const n = 200
	for i := 0; i < n; i++ {
		i := i
		v, won := st.getOrCreate(i, func() *int { return &i })
		if !won || *v != i {
			t.Fatalf("slot %d: won=%v v=%d", i, won, *v)
		}
	}
	for i := 0; i < n; i++ {
		if v := st.get(i); v == nil || *v != i {
			t.Fatalf("slot %d: get=%v", i, v)
		}
		// A second arrival adopts the first arrival's value.
		v, won := st.getOrCreate(i, func() *int { x := -1; return &x })
		if won || *v != i {
			t.Fatalf("slot %d: second arrival won=%v v=%d", i, won, *v)
		}
	}
	if st.get(n) != nil {
		t.Error("unset slot not nil")
	}
}

func TestSlotTableConcurrentFirstArrival(t *testing.T) {
	var st slotTable[int]
	const goroutines = 8
	var wins atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for slot := 0; slot < 100; slot++ {
				mine := g
				v, won := st.getOrCreate(slot, func() *int { return &mine })
				if won {
					wins.Add(1)
				}
				if *v < 0 || *v >= goroutines {
					t.Errorf("slot %d: bogus value %d", slot, *v)
				}
			}
		}()
	}
	wg.Wait()
	if wins.Load() != 100 {
		t.Fatalf("%d wins, want exactly one per slot (100)", wins.Load())
	}
}

func TestSPMDMismatchPanicsWithDebug(t *testing.T) {
	prev := SetDebug(true)
	defer SetDebug(prev)
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("mismatched worksharing loop did not panic with debug on")
		}
		if msg := fmt.Sprint(v); !strings.Contains(msg, "SPMD mismatch") {
			t.Fatalf("panic %q does not describe the SPMD mismatch", msg)
		}
	}()
	Parallel(2, func(tc *TC) {
		// The team disagrees about the loop bound: whichever member arrives
		// second must detect the mismatch.
		n := 10
		if tc.ThreadNum() == 1 {
			n = 20
		}
		tc.For(n, Static(0), func(int) {})
	})
}

func TestSPMDMismatchSilentWithoutDebug(t *testing.T) {
	prev := SetDebug(false)
	defer SetDebug(prev)
	// Without debug a mismatched member silently shares the first
	// arrival's loop state — the historical behaviour. The result is
	// unspecified (a dynamic claim consumed against the smaller bound can
	// drop iterations: exactly the corruption SetDebug(true) diagnoses),
	// but it must not panic and stays within the two bounds.
	var iters atomic.Int64
	Parallel(2, func(tc *TC) {
		n := 10
		if tc.ThreadNum() == 1 {
			n = 20
		}
		tc.For(n, Dynamic(1), func(int) { iters.Add(1) })
	})
	if got := iters.Load(); got < 10 || got > 20 {
		t.Fatalf("ran %d iterations, want within [10, 20]", got)
	}
}

func TestForReduceCombinesOncePerMember(t *testing.T) {
	const threads, n = 4, 100
	var combines atomic.Int64
	r := reduction.Reducer[int]{
		Identity: func() int { return 0 },
		Combine: func(a, b int) int {
			combines.Add(1)
			return a + b
		},
	}
	Parallel(threads, func(tc *TC) {
		got := ForReduce(tc, n, Static(0), r, func(i, acc int) int { return acc + i })
		if got != n*(n-1)/2 {
			t.Errorf("thread %d: sum=%d, want %d", tc.ThreadNum(), got, n*(n-1)/2)
		}
	})
	// The serial thread folds each member's partial into the identity once:
	// exactly T combines, not the T² of a combine-per-member scheme.
	if got := combines.Load(); got != threads {
		t.Fatalf("Combine ran %d times, want %d (once per team member)", got, threads)
	}
}

func TestAutoScheduleCoverage(t *testing.T) {
	const threads, n = 4, 3000
	counts := make([]atomic.Int32, n)
	stats := ParallelWithStats(threads, func(tc *TC) {
		tc.For(n, Auto(), func(i int) { counts[i].Add(1) })
	})
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("iteration %d ran %d times", i, c)
		}
	}
	if len(stats.Auto) != 1 {
		t.Fatalf("%d auto decisions recorded, want 1", len(stats.Auto))
	}
	d := stats.Auto[0]
	if d.Mode != "static" && d.Mode != "dynamic" {
		t.Fatalf("auto decision %q, want a committed mode", d.Mode)
	}
	if d.CalibEnd <= 0 || d.CalibEnd > n {
		t.Fatalf("calibration prefix %d out of range", d.CalibEnd)
	}
}

func TestAutoTinyLoop(t *testing.T) {
	// Loops smaller than the calibration prefix must still cover exactly.
	for _, n := range []int{0, 1, 3, 7} {
		var iters atomic.Int64
		Parallel(4, func(tc *TC) {
			tc.For(n, Auto(), func(int) { iters.Add(1) })
		})
		if got := iters.Load(); got != int64(n) {
			t.Fatalf("n=%d: ran %d iterations", n, got)
		}
	}
}

func TestRegionStatsCounts(t *testing.T) {
	const threads, n, chunk = 4, 1000, 7
	stats := ParallelWithStats(threads, func(tc *TC) {
		tc.For(n, Dynamic(chunk), func(int) {})
	})
	if got := stats.TotalIterations(); got != n {
		t.Errorf("TotalIterations=%d, want %d", got, n)
	}
	wantChunks := int64((n + chunk - 1) / chunk)
	if got := stats.TotalChunks(); got != wantChunks {
		t.Errorf("TotalChunks=%d, want %d", got, wantChunks)
	}
	if len(stats.Threads) != threads {
		t.Fatalf("%d thread rows, want %d", len(stats.Threads), threads)
	}
	for _, ts := range stats.Threads {
		if ts.Barrier.Waits < 1 {
			t.Errorf("thread %d: Waits=%d, want >=1 (the For's implicit barrier)",
				ts.ID, ts.Barrier.Waits)
		}
	}
	if out := stats.String(); !strings.Contains(out, "Pyjama region stats") {
		t.Error("String() missing the stats table")
	}
}

// TestMixedConstructStress interleaves For/Single/Ordered/ForReduce/
// Critical across repeated rounds — primarily a race-detector workload for
// the lock-free registries and the tree barrier.
func TestMixedConstructStress(t *testing.T) {
	const threads, rounds, n = 4, 30, 64
	sum := reduction.Reducer[int]{
		Identity: func() int { return 0 },
		Combine:  func(a, b int) int { return a + b },
	}
	var singles, criticals atomic.Int64
	var orderTrace []int
	Parallel(threads, func(tc *TC) {
		for r := 0; r < rounds; r++ {
			var local atomic.Int64
			tc.For(n, Dynamic(3), func(i int) { local.Add(int64(i)) })
			tc.Single(func() { singles.Add(1) })
			got := ForReduce(tc, n, Guided(2), sum, func(i, acc int) int { return acc + i })
			if got != n*(n-1)/2 {
				t.Errorf("round %d: reduce=%d", r, got)
			}
			tc.ForNoWait(8, Static(1), func(i int) {
				tc.Ordered(i, func() { orderTrace = append(orderTrace, i) })
			})
			tc.Barrier()
			tc.Critical("c", func() { criticals.Add(1) })
		}
	})
	if singles.Load() != rounds {
		t.Errorf("Single ran %d times, want %d", singles.Load(), rounds)
	}
	if criticals.Load() != threads*rounds {
		t.Errorf("Critical ran %d times, want %d", criticals.Load(), threads*rounds)
	}
	if len(orderTrace) != 8*rounds {
		t.Fatalf("ordered trace has %d entries, want %d", len(orderTrace), 8*rounds)
	}
	for r := 0; r < rounds; r++ {
		for i := 0; i < 8; i++ {
			if orderTrace[r*8+i] != i {
				t.Fatalf("round %d: ordered sequence broken at %d: %v",
					r, i, orderTrace[r*8:r*8+8])
			}
		}
	}
}
