//go:build !race

// Allocation-budget guard for the worksharing fast path: a
// schedule(static) block-decomposed For must be pure arithmetic plus a
// barrier — no loopState registration, no chunk closure, no heap traffic
// at all (see staticFastChunk). Excluded under -race because the race
// runtime's own instrumentation allocates.

package pyjama

import (
	"runtime"
	"testing"
)

// TestForStaticZeroAlloc measures tc.For(n, Static(0), body) inside one
// long-lived parallel region. SPMD pairing demands that both team members
// make identical worksharing calls, so BOTH threads run the same warmup
// loop and the same AllocsPerRun(100, ...) — each makes the same number of
// For calls (AllocsPerRun's warmup call included) and the loops stay
// paired. Only thread 0's measurement is asserted; thread 1's is the same
// code and exists for pairing.
//
// AllocsPerRun pins GOMAXPROCS to 1 during measurement and the two
// concurrent restores can race, so the test re-asserts the original value
// itself.
func TestForStaticZeroAlloc(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	const n = 1 << 10
	var got [2]float64
	Parallel(2, func(tc *TC) {
		sink := 0
		// body is hoisted out of the measured closure: a fresh closure per
		// call would be a per-op allocation of the test's own making.
		body := func(i int) { sink += i }
		for k := 0; k < 64; k++ {
			tc.For(n, Static(0), body)
		}
		got[tc.id] = testing.AllocsPerRun(100, func() {
			tc.For(n, Static(0), body)
		})
		_ = sink
	})
	if got[0] != 0 {
		t.Fatalf("steady-state For(static) allocates %v objects/op, want 0", got[0])
	}
}

// TestForDynamicGuidedAllocGuard bounds the claim-based schedules at one
// allocation per construct in the steady state: the loopState comes back
// from the region-join recycling pool (region.recycle → loopStatePool),
// the ordered cond is created lazily (claim loops never touch it), and
// the chunk claim is pure atomics. The region's own fixed cost (barrier,
// counters, member goroutines) is amortised over the constructs it runs,
// which is why the measurement wraps whole regions: recycling only
// returns state at the join.
func TestForDynamicGuidedAllocGuard(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	const n = 1 << 10
	const per = 32 // constructs per region
	for _, tc := range []struct {
		name  string
		sched Schedule
	}{
		{"dynamic", Dynamic(64)},
		{"guided", Guided(16)},
	} {
		sched := tc.sched
		sink := 0
		body := func(i int) { sink += i }
		region := func() {
			Parallel(2, func(tc *TC) {
				for k := 0; k < per; k++ {
					tc.For(n, sched, body)
				}
			})
		}
		for k := 0; k < 8; k++ {
			region() // warm loopStatePool across region joins
		}
		got := testing.AllocsPerRun(20, region) / per
		if got > 1 {
			t.Fatalf("steady-state For(%s) allocates %v objects/op, want <= 1", tc.name, got)
		}
		_ = sink
	}
}
