package pyjama

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestFor2DCoversEveryCell(t *testing.T) {
	const n1, n2 = 13, 17
	var counts [n1][n2]atomic.Int32
	Parallel(4, func(tc *TC) {
		tc.For2D(n1, n2, Dynamic(8), func(i, j int) {
			counts[i][j].Add(1)
		})
	})
	for i := 0; i < n1; i++ {
		for j := 0; j < n2; j++ {
			if counts[i][j].Load() != 1 {
				t.Fatalf("cell (%d,%d) executed %d times", i, j, counts[i][j].Load())
			}
		}
	}
}

func TestFor2DProperty(t *testing.T) {
	f := func(aRaw, bRaw, tRaw uint8) bool {
		n1, n2 := int(aRaw%12)+1, int(bRaw%12)+1
		threads := int(tRaw%6) + 1
		var total atomic.Int64
		Parallel(threads, func(tc *TC) {
			tc.For2D(n1, n2, Guided(2), func(i, j int) {
				total.Add(int64(i*n2 + j + 1))
			})
		})
		n := int64(n1 * n2)
		return total.Load() == n*(n+1)/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFor2DDegenerate(t *testing.T) {
	ran := false
	Parallel(3, func(tc *TC) {
		tc.For2D(0, 5, Static(0), func(i, j int) { ran = true })
		tc.For2D(5, 0, Static(0), func(i, j int) { ran = true })
		// A later loop must still pair correctly across the team after
		// degenerate constructs consumed worksharing slots.
		tc.For(30, Dynamic(4), func(i int) {})
	})
	if ran {
		t.Fatal("degenerate 2D loop ran its body")
	}
}

func TestForRange(t *testing.T) {
	var sum atomic.Int64
	Parallel(3, func(tc *TC) {
		tc.ForRange(10, 20, Static(0), func(i int) {
			if i < 10 || i >= 20 {
				t.Errorf("index %d out of range", i)
			}
			sum.Add(int64(i))
		})
	})
	if sum.Load() != 145 {
		t.Fatalf("sum = %d", sum.Load())
	}
}

func BenchmarkFor2D(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Parallel(4, func(tc *TC) {
			tc.For2D(100, 100, Static(0), func(i, j int) {})
		})
	}
}
