package pyjama

// The real schedule(auto): instead of silently mapping to static, the
// runtime measures per-chunk cost over a calibration prefix of the
// iteration space and then commits the whole team to either static blocks
// (uniform work, least claiming overhead) or dynamic claiming with a
// computed chunk size (skewed work, least imbalance).
//
// Mechanics: the prefix [0, calibEnd) is claimed in fixed probe chunks
// with a CAS bounded at calibEnd (so the shared cursor lands exactly on
// the boundary), and every probe chunk is timed. The first thread to run
// out of probe work folds the samples into a decision and publishes it
// with a CAS; the rest of the team adopts it, so the remainder
// [calibEnd, n) is scheduled consistently even though no mid-loop barrier
// is taken.

import (
	"math"
	"sync/atomic"
	"time"

	"parc751/internal/core"
)

const (
	// autoProbesPerThread scales the calibration prefix: the team claims
	// about this many probe chunks per member before deciding.
	autoProbesPerThread = 2
	// autoMaxProbeChunk caps probe chunk size so calibration cannot
	// swallow a large share of a modest loop.
	autoMaxProbeChunk = 256
	// autoSpreadStatic is the max/min per-iteration cost ratio (across
	// probe chunks) below which the work counts as uniform and static
	// wins. Above it — or with too few samples to judge — the safe choice
	// is dynamic, which degrades gracefully either way.
	autoSpreadStatic = 2.0
	// autoMinSamples is the number of timed probe chunks required before
	// the work may be declared uniform.
	autoMinSamples = 4
	// autoTargetChunkNs sizes dynamic chunks so one claim amortises to
	// roughly this much work.
	autoTargetChunkNs = 100_000

	autoModeStatic  = 1
	autoModeDynamic = 2
)

// autoState is the team-shared calibration state of one schedule(auto)
// loop. The sample accumulators are plain atomics: probe threads add
// concurrently, and the decision maker folds whatever has been published
// by the time the probe range is exhausted (stragglers' samples are a
// tolerable loss — the decision is a heuristic).
type autoState struct {
	probeChunk int
	calibEnd   int

	decision atomic.Int64 // packed mode<<32 | chunk; 0 = undecided

	sampleNs    atomic.Int64 // summed wall time over timed probe chunks
	sampleIters atomic.Int64
	samples     atomic.Int64
	minPerIter  atomic.Int64 // ns<<10 per iteration, extremes across chunks
	maxPerIter  atomic.Int64
}

func newAutoState(n, team int) *autoState {
	pc := n / (team * 16)
	if pc < 1 {
		pc = 1
	}
	if pc > autoMaxProbeChunk {
		pc = autoMaxProbeChunk
	}
	ce := team * autoProbesPerThread * pc
	if ce > n {
		ce = n
	}
	as := &autoState{probeChunk: pc, calibEnd: ce}
	as.minPerIter.Store(math.MaxInt64)
	return as
}

// runAuto executes this thread's share of a schedule(auto) loop.
func (tc *TC) runAuto(ls *loopState, claim func(core.Chunk)) {
	as := ls.auto
	n := ls.n
	// Phase 1: calibration. CAS-bounded claims keep the cursor exactly at
	// calibEnd when probing ends, so the dynamic remainder can reuse it.
	for {
		cur := int(ls.next.Load())
		if cur >= as.calibEnd {
			break
		}
		hi := cur + as.probeChunk
		if hi > as.calibEnd {
			hi = as.calibEnd
		}
		if !ls.next.CompareAndSwap(int64(cur), int64(hi)) {
			continue
		}
		start := time.Now()
		claim(core.Chunk{Lo: cur, Hi: hi})
		as.observe(time.Since(start), hi-cur)
	}
	// Phase 2: adopt the (first-closer-wins) decision and run the rest.
	mode, chunk := as.decide(n, tc.reg.n)
	if as.calibEnd >= n {
		return
	}
	switch mode {
	case autoModeStatic:
		if c, ok := core.StaticBlock(n-as.calibEnd, tc.reg.n, tc.id); ok {
			claim(core.Chunk{Lo: as.calibEnd + c.Lo, Hi: as.calibEnd + c.Hi})
		}
	default:
		for {
			lo := int(ls.next.Add(int64(chunk))) - chunk
			if lo >= n {
				return
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			claim(core.Chunk{Lo: lo, Hi: hi})
		}
	}
}

// observe folds one timed probe chunk into the shared accumulators.
func (as *autoState) observe(d time.Duration, iters int) {
	ns := d.Nanoseconds()
	as.sampleNs.Add(ns)
	as.sampleIters.Add(int64(iters))
	as.samples.Add(1)
	per := (ns << 10) / int64(iters)
	for {
		cur := as.minPerIter.Load()
		if per >= cur || as.minPerIter.CompareAndSwap(cur, per) {
			break
		}
	}
	for {
		cur := as.maxPerIter.Load()
		if per <= cur || as.maxPerIter.CompareAndSwap(cur, per) {
			break
		}
	}
}

// decide returns the committed (mode, chunk), computing and publishing it
// if no thread has yet.
func (as *autoState) decide(n, team int) (mode, chunk int) {
	d := as.decision.Load()
	if d == 0 {
		// Publish this thread's verdict unless another thread beat it to
		// the CAS; either way, adopt whatever is now committed.
		as.decision.CompareAndSwap(0, as.computeDecision(n, team))
		d = as.decision.Load()
	}
	return int(d >> 32), int(d & 0xffffffff)
}

func (as *autoState) computeDecision(n, team int) int64 {
	rem := n - as.calibEnd
	minP, maxP := as.minPerIter.Load(), as.maxPerIter.Load()
	uniform := as.samples.Load() >= autoMinSamples && minP > 0 &&
		float64(maxP)/float64(minP) <= autoSpreadStatic
	if uniform || rem <= team {
		return autoModeStatic<<32 | 1
	}
	// Skewed (or unjudgeable) work: dynamic, with the chunk sized so one
	// claim covers ~autoTargetChunkNs of measured work, capped to leave
	// each thread several chunks for balance.
	chunk := rem / (team * 4)
	if iters := as.sampleIters.Load(); iters > 0 {
		if perIter := float64(as.sampleNs.Load()) / float64(iters); perIter > 0 {
			if c := int(autoTargetChunkNs / perIter); c < chunk {
				chunk = c
			}
		}
	}
	if chunk < 1 {
		chunk = 1
	}
	return autoModeDynamic<<32 | int64(chunk)
}

// spread returns the observed max/min per-iteration cost ratio (0 when
// fewer than two probe chunks were timed).
func (as *autoState) spread() float64 {
	minP, maxP := as.minPerIter.Load(), as.maxPerIter.Load()
	if as.samples.Load() < 2 || minP <= 0 {
		return 0
	}
	return float64(maxP) / float64(minP)
}

// AutoDecision reports what one schedule(auto) loop measured and chose,
// exposed through RegionStats.
type AutoDecision struct {
	// Loop is the worksharing construct's SPMD sequence number.
	Loop int
	// Mode is "static", "dynamic", or "undecided" (loop never entered
	// its decision phase, e.g. an empty loop).
	Mode string
	// Chunk is the computed dynamic chunk size (1 for static).
	Chunk int
	// PerIterNs is the mean measured cost per iteration over the probes.
	PerIterNs float64
	// Spread is the max/min per-iteration cost ratio across probe chunks.
	Spread float64
	// Samples counts timed probe chunks; CalibEnd is the prefix length.
	Samples  int64
	CalibEnd int
}

func (as *autoState) snapshot(slot int) AutoDecision {
	dec := AutoDecision{
		Loop:     slot,
		Mode:     "undecided",
		Spread:   as.spread(),
		Samples:  as.samples.Load(),
		CalibEnd: as.calibEnd,
	}
	if iters := as.sampleIters.Load(); iters > 0 {
		dec.PerIterNs = float64(as.sampleNs.Load()) / float64(iters)
	}
	switch d := as.decision.Load(); d >> 32 {
	case autoModeStatic:
		dec.Mode, dec.Chunk = "static", 1
	case autoModeDynamic:
		dec.Mode, dec.Chunk = "dynamic", int(d&0xffffffff)
	}
	return dec
}
