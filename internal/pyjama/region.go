// Package pyjama reproduces Pyjama, the PARC lab's OpenMP-like
// directive system for object-oriented languages (Vikas, Giacaman &
// Sinnen, Parallel Computing 2013; §IV-B of the reproduced paper).
// Where the Java original compiles //#omp directives, this Go
// reproduction provides the directive semantics as library calls:
//
//	pyjama.Parallel(4, func(tc *pyjama.TC) {     // #omp parallel
//	    tc.For(n, pyjama.Dynamic(16), func(i int) { work(i) })
//	    tc.Barrier()                             // #omp barrier
//	    tc.Single(func() { fmt.Println("once") })// #omp single
//	    tc.Critical("io", func() { log() })      // #omp critical(io)
//	})
//
// The SPMD contract of OpenMP carries over: every thread in a team
// executes the region body and encounters the worksharing constructs in
// the same sequence. Reductions — including the object-oriented
// reductions the paper highlights as a research outcome (§V-B) — live in
// reduce.go, and the GUI-aware region (Pyjama's freeguithread/virtual
// directives) in gui.go.
package pyjama

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"parc751/internal/core"
	"parc751/internal/parctrace"
)

// TC is a thread context: the view one team member has of its parallel
// region. A TC is only valid inside the body it was passed to and must
// not be shared across team members.
type TC struct {
	id  int
	reg *region
	// wsCount numbers the worksharing constructs this thread has
	// encountered, pairing SPMD call sites across the team.
	wsCount int
	// singleCount numbers the single/sections constructs likewise.
	singleCount int
	// redCount numbers the reduction constructs likewise.
	redCount int
}

type region struct {
	n       int
	barrier *core.Barrier

	// Construct registries: lock-free append-only slot tables keyed by
	// each construct's SPMD sequence number, claimed first-arrival-wins.
	// Entering a For/Single/ForReduce never takes a region lock.
	loops   slotTable[loopState]
	singles slotTable[struct{}]
	reds    slotTable[redState]

	// Named critical sections are cold (each name resolves once per name,
	// then contends only on its own mutex), so a plain guarded map is fine.
	critMu   sync.Mutex
	critical map[string]*sync.Mutex

	// counters holds the per-thread worksharing tallies behind
	// RegionStats. Each slot is written only by its owning team member;
	// the region join publishes them to the stats reader.
	counters []threadCounters
}

// spmdDebug enables the SPMD-mismatch check on worksharing constructs
// (see SetDebug). It defaults to the PYJAMA_DEBUG environment variable.
var spmdDebug atomic.Bool

func init() { spmdDebug.Store(os.Getenv("PYJAMA_DEBUG") != "") }

// SetDebug toggles Pyjama's debug checks, currently the SPMD-mismatch
// detector: with debug on, a team member that reaches a worksharing
// construct with a different (n, schedule) than the slot's first arrival
// panics with a diagnostic instead of silently running the first
// arrival's loop. The initial value comes from the PYJAMA_DEBUG
// environment variable. It returns the previous setting.
func SetDebug(on bool) bool { return spmdDebug.Swap(on) }

// Parallel executes body on a team of nthreads concurrent members — the
// "#omp parallel num_threads(n)" construct, with the implicit join at the
// region end. nthreads < 1 is clamped to 1. A panic in any team member is
// re-raised on the caller after all members finish.
func Parallel(nthreads int, body func(tc *TC)) {
	reg := runRegion(nthreads, body)
	reg.recycle()
}

// ParallelWithStats is Parallel plus observability: after the region
// joins, it returns the per-thread worksharing and barrier counters (the
// Pyjama counterpart of sched.Snapshot — see RegionStats). Construct
// state is not recycled on this path: the snapshot retains references
// into auto-loop calibration state.
func ParallelWithStats(nthreads int, body func(tc *TC)) RegionStats {
	return runRegion(nthreads, body).statsSnapshot()
}

// recycle returns the region's construct state (loop and reduction
// slots) to the package pools. Only legal at the region join, where this
// goroutine is the sole owner: every team member has returned, so no
// thread can observe a loopState or redState after it is reclaimed. The
// panic path never reaches recycle — runRegion re-raises before
// returning — so state captured by a failing region is simply dropped.
func (r *region) recycle() {
	r.loops.drain(releaseLoopState)
	r.reds.drain(releaseRedState)
}

func runRegion(nthreads int, body func(tc *TC)) *region {
	if nthreads < 1 {
		nthreads = 1
	}
	reg := &region{
		n:        nthreads,
		barrier:  core.NewBarrier(nthreads),
		counters: make([]threadCounters, nthreads),
	}
	if in := regionFI.Load(); in != nil {
		reg.barrier.SetFaultInjector(in)
	}
	var regionID uint64
	if rec := parctrace.Active(); rec != nil {
		regionID = rec.NewTaskID()
		rec.Record(parctrace.KRegionStart, -1, regionID, uint64(nthreads))
	}
	errs := make([]error, nthreads)
	var wg sync.WaitGroup
	wg.Add(nthreads)
	for i := 0; i < nthreads; i++ {
		i := i
		go func() {
			defer wg.Done()
			errs[i] = core.Catch(func() { body(&TC{id: i, reg: reg}) })
			if errs[i] != nil {
				// A dead member can never reach the team's barriers;
				// abort so siblings blocked there fail fast instead of
				// deadlocking.
				reg.barrier.Abort()
			}
		}()
	}
	wg.Wait()
	if regionID != 0 {
		// Recorded before the panic scan so a faulted region still closes
		// its node: region_start and region_end counts stay conserved.
		if rec := parctrace.Active(); rec != nil {
			rec.Record(parctrace.KRegionEnd, -1, regionID, uint64(nthreads))
		}
	}
	// Re-raise the root cause, preferring a member's own panic over the
	// ErrBarrierAborted cascade it triggered in its siblings.
	var cascade error
	for _, err := range errs {
		if err == nil {
			continue
		}
		var pe *core.PanicError
		if errors.As(err, &pe) && pe.Value == core.ErrBarrierAborted {
			cascade = err
			continue
		}
		panic(err)
	}
	if cascade != nil {
		panic(cascade)
	}
	return reg
}

// ThreadNum returns this member's index in [0, NumThreads) — OpenMP's
// omp_get_thread_num.
func (tc *TC) ThreadNum() int { return tc.id }

// NumThreads returns the team size — omp_get_num_threads.
func (tc *TC) NumThreads() int { return tc.reg.n }

// Barrier blocks until every team member reaches it — "#omp barrier".
// Each member arrives at its own leaf of the combining-tree barrier.
func (tc *TC) Barrier() { tc.reg.barrier.AwaitAs(tc.id) }

// barrierSerial is Barrier returning whether this member was the
// generation's serial thread (the last arrival), which worksharing
// constructs use for combine-once semantics.
func (tc *TC) barrierSerial() bool {
	_, serial := tc.reg.barrier.AwaitAs(tc.id)
	return serial
}

// Master runs fn on thread 0 only, with no implied barrier — "#omp master".
func (tc *TC) Master(fn func()) {
	if tc.id == 0 {
		fn()
	}
}

// Single runs fn on exactly one (the first-arriving) team member and then
// barriers the team — "#omp single".
func (tc *TC) Single(fn func()) {
	tc.SingleNoWait(fn)
	tc.Barrier()
}

// singleToken is the shared claim marker for single slots: the slot table
// only cares which CAS won, so every claimed slot stores the same pointer.
var singleToken = new(struct{})

// SingleNoWait is "#omp single nowait": exactly one member runs fn and the
// rest continue immediately. It reports whether this member was the one.
// The claim is a lock-free first-arrival CAS on the construct's slot.
func (tc *TC) SingleNoWait(fn func()) bool {
	slot := tc.singleCount
	tc.singleCount++
	if _, won := tc.reg.singles.getOrCreate(slot, func() *struct{} { return singleToken }); won {
		fn()
		return true
	}
	return false
}

// Critical runs fn under the named region-wide lock — "#omp critical(name)".
// Different names are independent locks, as in OpenMP.
func (tc *TC) Critical(name string, fn func()) {
	tc.reg.critMu.Lock()
	m, ok := tc.reg.critical[name]
	if !ok {
		if tc.reg.critical == nil {
			tc.reg.critical = map[string]*sync.Mutex{}
		}
		m = &sync.Mutex{}
		tc.reg.critical[name] = m
	}
	tc.reg.critMu.Unlock()
	m.Lock()
	defer m.Unlock()
	fn()
}

// Sections distributes the given section bodies over the team, each
// executed exactly once, followed by the implicit barrier —
// "#omp sections". Sections are handed out dynamically.
func (tc *TC) Sections(fns ...func()) {
	tc.ForNoWait(len(fns), Dynamic(1), func(i int) { fns[i]() })
	tc.Barrier()
}

// ThreadPrivate is a fixed-size per-thread storage array — the pattern
// OpenMP's threadprivate clause provides. Index it with ThreadNum. The
// slots are padded to defeat false sharing on real hardware.
type ThreadPrivate[T any] struct {
	slots []paddedSlot[T]
}

type paddedSlot[T any] struct {
	v T
	_ [64]byte
}

// NewThreadPrivate allocates storage for a team of n threads.
func NewThreadPrivate[T any](n int) *ThreadPrivate[T] {
	return &ThreadPrivate[T]{slots: make([]paddedSlot[T], n)}
}

// Get returns a pointer to thread id's slot.
func (tp *ThreadPrivate[T]) Get(id int) *T { return &tp.slots[id].v }

// Len returns the number of slots.
func (tp *ThreadPrivate[T]) Len() int { return len(tp.slots) }

// Values returns a snapshot of all slots in thread order. Call only after
// the region (or at a barrier) — it does not synchronise.
func (tp *ThreadPrivate[T]) Values() []T {
	out := make([]T, len(tp.slots))
	for i := range tp.slots {
		out[i] = tp.slots[i].v
	}
	return out
}

// String implements fmt.Stringer for debugging.
func (tc *TC) String() string {
	return fmt.Sprintf("pyjama.TC(%d/%d)", tc.id, tc.reg.n)
}
