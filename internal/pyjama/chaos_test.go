package pyjama

import (
	"testing"
	"time"

	"parc751/internal/faultinject"
)

// TestRegionBarrierInjection attaches the package-level injector and runs
// a barrier-heavy region: arrival delays must skew the schedule without
// breaking worksharing results.
func TestRegionBarrierInjection(t *testing.T) {
	in := faultinject.New(faultinject.Plan{Rules: []faultinject.Rule{
		{Site: faultinject.SiteBarrierArrive, Kind: faultinject.Delay, Nth: 1, Every: 7,
			Dur: 500 * time.Microsecond},
	}})
	prev := SetFaultInjector(in)
	defer SetFaultInjector(prev)

	const n = 4
	sum := 0
	part := NewThreadPrivate[int](n)
	Parallel(n, func(tc *TC) {
		tc.For(100, Static(0), func(i int) { *part.Get(tc.ThreadNum()) += i })
		tc.Barrier()
		tc.Single(func() {
			for _, v := range part.Values() {
				sum += v
			}
		})
	})
	if sum != 4950 {
		t.Fatalf("sum = %d, want 4950 (injection corrupted worksharing)", sum)
	}
	if in.Seen(faultinject.SiteBarrierArrive) == 0 {
		t.Error("region barrier never reached the injector")
	}
	if in.Fired() == 0 {
		t.Error("no arrival delays fired")
	}
}

// TestRegionInjectorDetaches checks the previous injector is restorable
// and that regions started after detach run clean.
func TestRegionInjectorDetaches(t *testing.T) {
	in := faultinject.New(faultinject.Plan{Rules: []faultinject.Rule{
		{Site: faultinject.SiteBarrierArrive, Kind: faultinject.Delay, Every: 1, Dur: time.Microsecond},
	}})
	SetFaultInjector(in)
	SetFaultInjector(nil)
	Parallel(2, func(tc *TC) { tc.Barrier() })
	if in.Seen(faultinject.SiteBarrierArrive) != 0 {
		t.Error("detached injector observed barrier arrivals")
	}
}
