package pyjama

import (
	"math/bits"
	"sync/atomic"
)

// slotTable is a lock-free append-only table of construct slots, replacing
// the mutex-guarded maps a region previously kept for its worksharing
// loops, singles, and reductions. SPMD slot numbers are dense from zero
// (every thread counts the constructs it encounters), so the table is a
// segmented vector: segment k holds slotSegBase<<k entries and is
// allocated on demand with a CAS, and each entry is an atomic pointer
// claimed first-arrival-wins. Entering a worksharing construct therefore
// costs two atomic loads on the fast path and never takes a region lock.
type slotTable[T any] struct {
	segs [slotSegs]atomic.Pointer[[]atomic.Pointer[T]]
}

const (
	slotSegBase = 8
	slotSegs    = 28 // capacity slotSegBase*(2^slotSegs - 1): effectively unbounded
)

// slotIndex maps a slot number to its (segment, offset): slot i lives in
// the segment k with slotSegBase*(2^k - 1) <= i, found in O(1) from the
// bit length of i/slotSegBase + 1.
func slotIndex(i int) (seg, off int) {
	q := i/slotSegBase + 1
	seg = bits.Len(uint(q)) - 1
	off = i - slotSegBase*((1<<seg)-1)
	return seg, off
}

func (t *slotTable[T]) segment(seg int) *[]atomic.Pointer[T] {
	sp := t.segs[seg].Load()
	if sp == nil {
		ns := make([]atomic.Pointer[T], slotSegBase<<seg)
		if t.segs[seg].CompareAndSwap(nil, &ns) {
			sp = &ns
		} else {
			sp = t.segs[seg].Load()
		}
	}
	return sp
}

// get returns slot i's value, or nil if no thread has created it yet.
func (t *slotTable[T]) get(i int) *T {
	seg, off := slotIndex(i)
	sp := t.segs[seg].Load()
	if sp == nil {
		return nil
	}
	return (*sp)[off].Load()
}

// drain hands every created slot value to fn and clears its entry. It
// requires sole ownership of the table (the region join provides it:
// every team member has returned, so no lookup can race the clear).
// Slot numbers may have gaps — fast-path constructs consume a number
// without creating an entry — so every allocated segment is walked in
// full rather than stopping at the first empty slot.
func (t *slotTable[T]) drain(fn func(*T)) {
	for seg := range t.segs {
		sp := t.segs[seg].Load()
		if sp == nil {
			continue
		}
		for i := range *sp {
			if v := (*sp)[i].Load(); v != nil {
				(*sp)[i].Store(nil)
				fn(v)
			}
		}
	}
}

// getOrCreate returns slot i's value, creating it with create if this call
// is the slot's first arrival. won reports whether this call created the
// value (losers' create results are discarded to the GC).
func (t *slotTable[T]) getOrCreate(i int, create func() *T) (v *T, won bool) {
	seg, off := slotIndex(i)
	p := &(*t.segment(seg))[off]
	if v := p.Load(); v != nil {
		return v, false
	}
	nv := create()
	if p.CompareAndSwap(nil, nv) {
		return nv, true
	}
	return p.Load(), false
}
