package pyjama

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"parc751/internal/eventloop"
	"parc751/internal/reduction"
)

func TestParallelTeamSize(t *testing.T) {
	var n atomic.Int32
	Parallel(5, func(tc *TC) {
		n.Add(1)
		if tc.NumThreads() != 5 {
			t.Errorf("NumThreads = %d", tc.NumThreads())
		}
		if tc.ThreadNum() < 0 || tc.ThreadNum() >= 5 {
			t.Errorf("ThreadNum = %d", tc.ThreadNum())
		}
	})
	if n.Load() != 5 {
		t.Fatalf("%d members ran", n.Load())
	}
}

func TestParallelClampsThreads(t *testing.T) {
	var n atomic.Int32
	Parallel(0, func(tc *TC) { n.Add(1) })
	if n.Load() != 1 {
		t.Fatalf("clamped team ran %d members", n.Load())
	}
}

func TestThreadNumsDistinct(t *testing.T) {
	seen := make([]atomic.Int32, 8)
	Parallel(8, func(tc *TC) { seen[tc.ThreadNum()].Add(1) })
	for i := range seen {
		if seen[i].Load() != 1 {
			t.Fatalf("thread %d ran %d times", i, seen[i].Load())
		}
	}
}

func TestPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("region panic not re-raised")
		}
	}()
	Parallel(3, func(tc *TC) {
		if tc.ThreadNum() == 1 {
			panic("member failed")
		}
	})
}

// TestPanicDoesNotDeadlockBarrier: a member that dies before a barrier
// must not hang the rest of the team; the region panics with the root
// cause instead.
func TestPanicDoesNotDeadlockBarrier(t *testing.T) {
	done := make(chan any, 1)
	go func() {
		defer func() { done <- recover() }()
		Parallel(4, func(tc *TC) {
			if tc.ThreadNum() == 2 {
				panic("member 2 died")
			}
			tc.Barrier() // would deadlock without abort propagation
		})
	}()
	select {
	case v := <-done:
		if v == nil {
			t.Fatal("region did not panic")
		}
		if !strings.Contains(fmt.Sprint(v), "member 2 died") {
			t.Fatalf("root cause lost: %v", v)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("region deadlocked after member panic")
	}
}

// TestPanicDoesNotDeadlockWorksharingLoop: the implicit barrier at a
// loop's end must also abort.
func TestPanicDoesNotDeadlockWorksharingLoop(t *testing.T) {
	done := make(chan any, 1)
	go func() {
		defer func() { done <- recover() }()
		Parallel(3, func(tc *TC) {
			tc.For(30, Dynamic(1), func(i int) {
				if i == 7 {
					panic("iteration 7 failed")
				}
			})
		})
	}()
	select {
	case v := <-done:
		if v == nil {
			t.Fatal("region did not panic")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worksharing loop deadlocked after body panic")
	}
}

func TestBarrierSynchronises(t *testing.T) {
	var phase1 atomic.Int32
	Parallel(4, func(tc *TC) {
		phase1.Add(1)
		tc.Barrier()
		if phase1.Load() != 4 {
			t.Errorf("thread %d passed barrier with %d arrivals", tc.ThreadNum(), phase1.Load())
		}
	})
}

func TestMasterOnlyThreadZero(t *testing.T) {
	var ran atomic.Int32
	var who atomic.Int32
	who.Store(-1)
	Parallel(4, func(tc *TC) {
		tc.Master(func() {
			ran.Add(1)
			who.Store(int32(tc.ThreadNum()))
		})
	})
	if ran.Load() != 1 || who.Load() != 0 {
		t.Fatalf("master ran %d times on thread %d", ran.Load(), who.Load())
	}
}

func TestSingleExactlyOnce(t *testing.T) {
	var ran atomic.Int32
	Parallel(6, func(tc *TC) {
		tc.Single(func() { ran.Add(1) })
		tc.Single(func() { ran.Add(1) }) // a second single construct
	})
	if ran.Load() != 2 {
		t.Fatalf("singles ran %d times, want 2", ran.Load())
	}
}

func TestSingleNoWaitReturnsTruth(t *testing.T) {
	var winners atomic.Int32
	Parallel(4, func(tc *TC) {
		if tc.SingleNoWait(func() {}) {
			winners.Add(1)
		}
	})
	if winners.Load() != 1 {
		t.Fatalf("%d winners", winners.Load())
	}
}

func TestCriticalMutualExclusion(t *testing.T) {
	counter := 0 // deliberately unsynchronised except via Critical
	Parallel(8, func(tc *TC) {
		for i := 0; i < 1000; i++ {
			tc.Critical("counter", func() { counter++ })
		}
	})
	if counter != 8000 {
		t.Fatalf("counter = %d (lost updates)", counter)
	}
}

func TestCriticalNamesIndependent(t *testing.T) {
	// A thread holding critical "a" must not block critical "b".
	aHeld := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	Parallel(2, func(tc *TC) {
		if tc.ThreadNum() == 0 {
			tc.Critical("a", func() {
				close(aHeld)
				<-release
			})
		} else {
			<-aHeld
			tc.Critical("b", func() { close(done) })
			select {
			case <-done:
			case <-time.After(2 * time.Second):
				t.Error("critical(b) blocked by critical(a)")
			}
			close(release)
		}
	})
}

func coverageCheck(t *testing.T, nthreads, n int, sched Schedule) {
	t.Helper()
	counts := make([]atomic.Int32, n)
	Parallel(nthreads, func(tc *TC) {
		tc.For(n, sched, func(i int) { counts[i].Add(1) })
	})
	for i := range counts {
		if counts[i].Load() != 1 {
			t.Fatalf("%v: index %d executed %d times", sched, i, counts[i].Load())
		}
	}
}

func TestForCoverageAllSchedules(t *testing.T) {
	for _, sched := range []Schedule{
		Static(0), Static(1), Static(7), Dynamic(1), Dynamic(16),
		Guided(1), Guided(4), Auto(), Runtime(),
	} {
		coverageCheck(t, 4, 1000, sched)
	}
}

func TestForCoverageProperty(t *testing.T) {
	f := func(nRaw uint16, tRaw, kindRaw, chunkRaw uint8) bool {
		n := int(nRaw % 500)
		threads := int(tRaw%8) + 1
		kinds := []ScheduleKind{KindStatic, KindDynamic, KindGuided}
		sched := Schedule{kinds[int(kindRaw)%3], int(chunkRaw % 16)}
		counts := make([]atomic.Int32, n)
		Parallel(threads, func(tc *TC) {
			tc.For(n, sched, func(i int) { counts[i].Add(1) })
		})
		for i := range counts {
			if counts[i].Load() != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestForEmptyLoop(t *testing.T) {
	ran := false
	Parallel(3, func(tc *TC) {
		tc.For(0, Dynamic(4), func(i int) { ran = true })
	})
	if ran {
		t.Fatal("body ran for empty loop")
	}
}

func TestForStaticBlockAssignment(t *testing.T) {
	// schedule(static) with default chunk gives contiguous blocks in
	// thread order.
	owner := make([]int32, 100)
	Parallel(4, func(tc *TC) {
		tc.For(100, Static(0), func(i int) {
			atomic.StoreInt32(&owner[i], int32(tc.ThreadNum()))
		})
	})
	for i := 1; i < 100; i++ {
		if owner[i] < owner[i-1] {
			t.Fatalf("static block order broken at %d: %v -> %v", i, owner[i-1], owner[i])
		}
	}
}

func TestForStaticCyclicAssignment(t *testing.T) {
	// schedule(static,1) deals indices round-robin.
	owner := make([]int32, 64)
	Parallel(4, func(tc *TC) {
		tc.For(64, Static(1), func(i int) {
			atomic.StoreInt32(&owner[i], int32(tc.ThreadNum()))
		})
	})
	for i := range owner {
		if owner[i] != int32(i%4) {
			t.Fatalf("static,1: index %d owned by %d, want %d", i, owner[i], i%4)
		}
	}
}

func TestMultipleLoopsInOneRegion(t *testing.T) {
	var a, b atomic.Int64
	Parallel(3, func(tc *TC) {
		tc.For(100, Dynamic(8), func(i int) { a.Add(int64(i)) })
		tc.For(50, Static(0), func(i int) { b.Add(int64(i)) })
	})
	if a.Load() != 4950 || b.Load() != 1225 {
		t.Fatalf("a=%d b=%d", a.Load(), b.Load())
	}
}

func TestForChunked(t *testing.T) {
	var total atomic.Int64
	Parallel(4, func(tc *TC) {
		tc.ForChunked(1000, Dynamic(64), func(lo, hi int) {
			s := int64(0)
			for i := lo; i < hi; i++ {
				s += int64(i)
			}
			total.Add(s)
		})
	})
	if total.Load() != 499500 {
		t.Fatalf("total = %d", total.Load())
	}
}

func TestOrderedRunsInOrder(t *testing.T) {
	for _, sched := range []Schedule{Static(0), Static(3), Dynamic(5), Guided(2)} {
		var mu sync.Mutex
		var order []int
		Parallel(4, func(tc *TC) {
			tc.For(50, sched, func(i int) {
				tc.Ordered(i, func() {
					mu.Lock()
					order = append(order, i)
					mu.Unlock()
				})
			})
		})
		for i, v := range order {
			if v != i {
				t.Fatalf("%v: ordered broke at %d: %v", sched, i, order[:i+1])
			}
		}
		if len(order) != 50 {
			t.Fatalf("%v: %d ordered entries", sched, len(order))
		}
	}
}

func TestOrderedOutsideLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Parallel(1, func(tc *TC) { tc.Ordered(0, func() {}) })
}

func TestSectionsEachOnce(t *testing.T) {
	var a, b, c atomic.Int32
	Parallel(2, func(tc *TC) {
		tc.Sections(
			func() { a.Add(1) },
			func() { b.Add(1) },
			func() { c.Add(1) },
		)
	})
	if a.Load() != 1 || b.Load() != 1 || c.Load() != 1 {
		t.Fatalf("sections ran %d/%d/%d", a.Load(), b.Load(), c.Load())
	}
}

func TestParallelForConvenience(t *testing.T) {
	var sum atomic.Int64
	ParallelFor(4, 100, Dynamic(10), func(i int) { sum.Add(int64(i)) })
	if sum.Load() != 4950 {
		t.Fatalf("sum = %d", sum.Load())
	}
}

func TestThreadPrivate(t *testing.T) {
	tp := NewThreadPrivate[int](4)
	Parallel(4, func(tc *TC) {
		*tp.Get(tc.ThreadNum()) = tc.ThreadNum() * 10
	})
	vals := tp.Values()
	for i, v := range vals {
		if v != i*10 {
			t.Fatalf("slot %d = %d", i, v)
		}
	}
	if tp.Len() != 4 {
		t.Fatalf("Len = %d", tp.Len())
	}
}

func TestRuntimeScheduleSetting(t *testing.T) {
	old := RuntimeSchedule()
	defer SetRuntimeSchedule(old)
	SetRuntimeSchedule(Dynamic(4))
	if got := RuntimeSchedule(); got.Kind != KindDynamic || got.Chunk != 4 {
		t.Fatalf("runtime schedule = %v", got)
	}
	// Runtime kind must not self-reference.
	SetRuntimeSchedule(Runtime())
	if got := RuntimeSchedule(); got.Kind == KindRuntime {
		t.Fatal("runtime schedule stored KindRuntime")
	}
	coverageCheck(t, 3, 100, Runtime())
}

func TestScheduleKindString(t *testing.T) {
	for k, want := range map[ScheduleKind]string{
		KindStatic: "static", KindDynamic: "dynamic", KindGuided: "guided",
		KindAuto: "auto", KindRuntime: "runtime", ScheduleKind(99): "unknown",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}

func TestForReduceSum(t *testing.T) {
	var fromEveryThread sync.Map
	Parallel(4, func(tc *TC) {
		got := ForReduce(tc, 1000, Dynamic(32), reduction.Sum[int](),
			func(i int, acc int) int { return acc + i })
		fromEveryThread.Store(tc.ThreadNum(), got)
	})
	fromEveryThread.Range(func(k, v any) bool {
		if v.(int) != 499500 {
			t.Errorf("thread %v reduced to %v", k, v)
		}
		return true
	})
}

func TestForReduceMin(t *testing.T) {
	vals := []int{17, 3, 99, -4, 56}
	got := ParallelForReduce(3, len(vals), Static(0), reduction.Min[int](math.MaxInt),
		func(i int, acc int) int {
			if vals[i] < acc {
				return vals[i]
			}
			return acc
		})
	if got != -4 {
		t.Fatalf("min = %d", got)
	}
}

func TestForReduceObjectHistogram(t *testing.T) {
	words := make([]int, 600)
	for i := range words {
		words[i] = i % 6
	}
	got := ParallelForReduce(4, len(words), Guided(8), reduction.Histogram[int](),
		func(i int, acc map[int]int) map[int]int {
			acc[words[i]]++
			return acc
		})
	for k := 0; k < 6; k++ {
		if got[k] != 100 {
			t.Fatalf("histogram[%d] = %d", k, got[k])
		}
	}
}

func TestTwoReductionsOneRegion(t *testing.T) {
	var sum, count int
	Parallel(3, func(tc *TC) {
		s := ForReduce(tc, 100, Dynamic(7), reduction.Sum[int](),
			func(i, acc int) int { return acc + i })
		c := ForReduce(tc, 100, Static(0), reduction.Sum[int](),
			func(i, acc int) int { return acc + 1 })
		tc.Master(func() { sum, count = s, c })
	})
	if sum != 4950 || count != 100 {
		t.Fatalf("sum=%d count=%d", sum, count)
	}
}

func TestAsyncDeliversOnLoop(t *testing.T) {
	loop := eventloop.New()
	defer loop.Close()
	res := make(chan bool, 1)
	var sum atomic.Int64
	Async(loop, 3, func(tc *TC) {
		tc.ForNoWait(10, Dynamic(1), func(i int) { sum.Add(int64(i)) })
	}, func(err error) {
		res <- loop.OnDispatchThread() && err == nil && sum.Load() == 45
	})
	select {
	case ok := <-res:
		if !ok {
			t.Fatal("async completion wrong thread, error, or result")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("async never completed")
	}
}

func TestAsyncCapturesPanic(t *testing.T) {
	res := make(chan error, 1)
	Async(nil, 2, func(tc *TC) { panic("region bug") }, func(err error) { res <- err })
	select {
	case err := <-res:
		if err == nil {
			t.Fatal("panic not converted to error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("async panic handler never ran")
	}
}

func TestOnGUIVariants(t *testing.T) {
	loop := eventloop.New()
	defer loop.Close()
	var viaSync atomic.Bool
	OnGUISync(loop, func() { viaSync.Store(loop.OnDispatchThread()) })
	if !viaSync.Load() {
		t.Fatal("OnGUISync not on dispatch thread")
	}
	done := make(chan bool, 1)
	OnGUI(loop, func() { done <- loop.OnDispatchThread() })
	if !<-done {
		t.Fatal("OnGUI not on dispatch thread")
	}
	// nil-loop fallbacks run inline.
	inline := false
	OnGUI(nil, func() { inline = true })
	OnGUISync(nil, func() { inline = inline && true })
	if !inline {
		t.Fatal("nil-loop OnGUI skipped")
	}
}

func BenchmarkParallelForStatic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ParallelFor(4, 10000, Static(0), func(i int) {})
	}
}

func BenchmarkParallelForDynamic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ParallelFor(4, 10000, Dynamic(64), func(i int) {})
	}
}

func BenchmarkForReduce(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ParallelForReduce(4, 10000, Static(0), reduction.Sum[int](),
			func(i, acc int) int { return acc + i })
	}
}
