package pyjama

// For2D is the "#omp for collapse(2)" construct: the n1 x n2 iteration
// space is flattened and workshared as one loop, which balances far better
// than distributing only the outer loop when n1 is small relative to the
// team. Implicit barrier at the end.
func (tc *TC) For2D(n1, n2 int, sched Schedule, body func(i, j int)) {
	tc.For2DNoWait(n1, n2, sched, body)
	tc.Barrier()
}

// For2DNoWait is For2D without the trailing barrier.
func (tc *TC) For2DNoWait(n1, n2 int, sched Schedule, body func(i, j int)) {
	if n1 <= 0 || n2 <= 0 {
		// Still consume a worksharing slot so SPMD pairing stays aligned
		// across team members that pass different (degenerate) bounds.
		tc.ForNoWait(0, sched, func(int) {})
		return
	}
	tc.ForNoWait(n1*n2, sched, func(k int) {
		body(k/n2, k%n2)
	})
}

// ForRange is a convenience over For for iterating [lo, hi) rather than
// [0, n): OpenMP canonical loops allow arbitrary bounds.
func (tc *TC) ForRange(lo, hi int, sched Schedule, body func(i int)) {
	tc.For(hi-lo, sched, func(i int) { body(lo + i) })
}
