package pyjama

import (
	"sync"
	"sync/atomic"

	"parc751/internal/core"
)

// ScheduleKind selects the OpenMP loop schedule.
type ScheduleKind int

// The loop schedules of OpenMP 2.5, which is the feature level Pyjama
// implements.
const (
	KindStatic ScheduleKind = iota
	KindDynamic
	KindGuided
	KindAuto
	KindRuntime
)

// String names the schedule kind.
func (k ScheduleKind) String() string {
	switch k {
	case KindStatic:
		return "static"
	case KindDynamic:
		return "dynamic"
	case KindGuided:
		return "guided"
	case KindAuto:
		return "auto"
	case KindRuntime:
		return "runtime"
	default:
		return "unknown"
	}
}

// Schedule is a loop schedule: a kind plus a chunk size (0 means the
// kind's default — for static, one contiguous block per thread; for
// dynamic and guided, a minimum chunk of 1).
type Schedule struct {
	Kind  ScheduleKind
	Chunk int
}

// Static returns schedule(static, chunk); chunk 0 means block-per-thread.
func Static(chunk int) Schedule { return Schedule{KindStatic, chunk} }

// Dynamic returns schedule(dynamic, chunk).
func Dynamic(chunk int) Schedule { return Schedule{KindDynamic, chunk} }

// Guided returns schedule(guided, minChunk).
func Guided(minChunk int) Schedule { return Schedule{KindGuided, minChunk} }

// Auto returns schedule(auto); this implementation maps it to static.
func Auto() Schedule { return Schedule{KindAuto, 0} }

// Runtime returns schedule(runtime): the schedule set via
// SetRuntimeSchedule (OpenMP's OMP_SCHEDULE).
func Runtime() Schedule { return Schedule{KindRuntime, 0} }

var runtimeSchedule atomic.Value // Schedule

func init() { runtimeSchedule.Store(Static(0)) }

// SetRuntimeSchedule sets the schedule used by Runtime(), like the
// OMP_SCHEDULE environment variable. Kind Runtime itself is rejected to
// avoid recursion and maps to static.
func SetRuntimeSchedule(s Schedule) {
	if s.Kind == KindRuntime {
		s = Static(0)
	}
	runtimeSchedule.Store(s)
}

// RuntimeSchedule returns the schedule Runtime() currently resolves to.
func RuntimeSchedule() Schedule { return runtimeSchedule.Load().(Schedule) }

func (s Schedule) resolve() Schedule {
	switch s.Kind {
	case KindRuntime:
		return RuntimeSchedule()
	case KindAuto:
		return Static(s.Chunk)
	default:
		return s
	}
}

// loopState is the team-shared state of one worksharing loop instance.
type loopState struct {
	n     int
	sched Schedule

	next atomic.Int64 // dynamic: next unclaimed index

	gmu       sync.Mutex // guided
	remaining int

	omu   sync.Mutex // ordered section sequencing
	ocond *sync.Cond
	onext int
}

// loop fetches or creates the shared state for this thread's next
// worksharing construct. The SPMD contract guarantees all threads pass
// the same (n, sched) for the same slot; the first arrival wins.
func (tc *TC) loop(n int, sched Schedule) *loopState {
	slot := tc.wsCount
	tc.wsCount++
	r := tc.reg
	r.mu.Lock()
	defer r.mu.Unlock()
	if ls, ok := r.loops[slot]; ok {
		return ls
	}
	ls := &loopState{n: n, sched: sched.resolve(), remaining: n}
	ls.ocond = sync.NewCond(&ls.omu)
	r.loops[slot] = ls
	return ls
}

// For executes body(i) for every i in [0, n) distributed over the team
// per the schedule, then barriers — "#omp for". Every team member must
// call it (SPMD).
func (tc *TC) For(n int, sched Schedule, body func(i int)) {
	tc.ForNoWait(n, sched, body)
	tc.Barrier()
}

// ForNoWait is "#omp for nowait": no barrier at loop end.
func (tc *TC) ForNoWait(n int, sched Schedule, body func(i int)) {
	tc.forEachChunk(n, sched, func(c core.Chunk) {
		for i := c.Lo; i < c.Hi; i++ {
			body(i)
		}
	})
}

// ForChunked hands the body whole chunks instead of single indices, which
// the kernels use to amortise per-iteration overhead. Implicit barrier.
func (tc *TC) ForChunked(n int, sched Schedule, body func(lo, hi int)) {
	tc.forEachChunk(n, sched, func(c core.Chunk) { body(c.Lo, c.Hi) })
	tc.Barrier()
}

func (tc *TC) forEachChunk(n int, sched Schedule, run func(core.Chunk)) {
	ls := tc.loop(n, sched)
	if n <= 0 {
		return
	}
	switch ls.sched.Kind {
	case KindStatic:
		if ls.sched.Chunk <= 0 {
			// Block decomposition: at most one chunk per thread.
			chunks := core.StaticChunks(n, tc.reg.n)
			if tc.id < len(chunks) {
				run(chunks[tc.id])
			}
			return
		}
		// Block-cyclic: thread t takes chunks t, t+T, t+2T, ...
		chunks := core.BlockChunks(n, ls.sched.Chunk)
		for ci := tc.id; ci < len(chunks); ci += tc.reg.n {
			run(chunks[ci])
		}
	case KindDynamic:
		chunk := ls.sched.Chunk
		if chunk <= 0 {
			chunk = 1
		}
		for {
			lo := int(ls.next.Add(int64(chunk))) - chunk
			if lo >= n {
				return
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			run(core.Chunk{Lo: lo, Hi: hi})
		}
	case KindGuided:
		minChunk := ls.sched.Chunk
		if minChunk <= 0 {
			minChunk = 1
		}
		for {
			ls.gmu.Lock()
			if ls.remaining == 0 {
				ls.gmu.Unlock()
				return
			}
			size := ls.remaining / tc.reg.n
			if size < minChunk {
				size = minChunk
			}
			if size > ls.remaining {
				size = ls.remaining
			}
			lo := ls.n - ls.remaining
			ls.remaining -= size
			ls.gmu.Unlock()
			run(core.Chunk{Lo: lo, Hi: lo + size})
		}
	default:
		panic("pyjama: unresolved schedule kind")
	}
}

// Ordered runs fn for iteration i strictly in iteration order across the
// team — the "#omp ordered" region. It must be called exactly once per
// iteration of an enclosing For whose body was given the iteration index,
// and iterations must reach it in increasing order within each thread
// (which all schedules here guarantee).
func (tc *TC) Ordered(i int, fn func()) {
	// The ordered sequence is tied to the most recent worksharing loop
	// this thread entered; slot pairing gives all threads the same state.
	slot := tc.wsCount - 1
	if slot < 0 {
		panic("pyjama: Ordered outside a worksharing loop")
	}
	tc.reg.mu.Lock()
	ls := tc.reg.loops[slot]
	tc.reg.mu.Unlock()
	ls.omu.Lock()
	for ls.onext != i {
		ls.ocond.Wait()
	}
	fn()
	ls.onext++
	ls.ocond.Broadcast()
	ls.omu.Unlock()
}

// ParallelFor is the combined "#omp parallel for" convenience: it creates
// a team of nthreads, workshares [0, n) with the schedule, and joins.
func ParallelFor(nthreads, n int, sched Schedule, body func(i int)) {
	Parallel(nthreads, func(tc *TC) { tc.ForNoWait(n, sched, body) })
}
