package pyjama

import (
	"fmt"
	"sync"
	"sync/atomic"

	"parc751/internal/core"
)

// ScheduleKind selects the OpenMP loop schedule.
type ScheduleKind int

// The loop schedules of OpenMP 2.5, which is the feature level Pyjama
// implements.
const (
	KindStatic ScheduleKind = iota
	KindDynamic
	KindGuided
	KindAuto
	KindRuntime
)

// String names the schedule kind.
func (k ScheduleKind) String() string {
	switch k {
	case KindStatic:
		return "static"
	case KindDynamic:
		return "dynamic"
	case KindGuided:
		return "guided"
	case KindAuto:
		return "auto"
	case KindRuntime:
		return "runtime"
	default:
		return "unknown"
	}
}

// Schedule is a loop schedule: a kind plus a chunk size (0 means the
// kind's default — for static, one contiguous block per thread; for
// dynamic and guided, a minimum chunk of 1).
type Schedule struct {
	Kind  ScheduleKind
	Chunk int
}

// String renders the schedule in OpenMP clause form, e.g. "dynamic(64)".
func (s Schedule) String() string {
	if s.Chunk > 0 {
		return fmt.Sprintf("%s(%d)", s.Kind, s.Chunk)
	}
	return s.Kind.String()
}

// Static returns schedule(static, chunk); chunk 0 means block-per-thread.
func Static(chunk int) Schedule { return Schedule{KindStatic, chunk} }

// Dynamic returns schedule(dynamic, chunk).
func Dynamic(chunk int) Schedule { return Schedule{KindDynamic, chunk} }

// Guided returns schedule(guided, minChunk).
func Guided(minChunk int) Schedule { return Schedule{KindGuided, minChunk} }

// Auto returns schedule(auto): the runtime measures per-chunk cost over a
// calibration prefix of the loop and then picks static blocks (uniform
// work) or dynamic claiming with a computed chunk size (skewed work). See
// auto.go for the decision procedure.
func Auto() Schedule { return Schedule{KindAuto, 0} }

// Runtime returns schedule(runtime): the schedule set via
// SetRuntimeSchedule (OpenMP's OMP_SCHEDULE).
func Runtime() Schedule { return Schedule{KindRuntime, 0} }

var runtimeSchedule atomic.Value // Schedule

func init() { runtimeSchedule.Store(Static(0)) }

// SetRuntimeSchedule sets the schedule used by Runtime(), like the
// OMP_SCHEDULE environment variable. Kind Runtime itself is rejected to
// avoid recursion and maps to static.
func SetRuntimeSchedule(s Schedule) {
	if s.Kind == KindRuntime {
		s = Static(0)
	}
	runtimeSchedule.Store(s)
}

// RuntimeSchedule returns the schedule Runtime() currently resolves to.
func RuntimeSchedule() Schedule { return runtimeSchedule.Load().(Schedule) }

func (s Schedule) resolve() Schedule {
	if s.Kind == KindRuntime {
		return RuntimeSchedule()
	}
	return s
}

// loopState is the team-shared state of one worksharing loop instance.
// The claim counters live on their own cache lines: the dynamic cursor,
// the guided remaining-count, and the ordered-section state are each hot
// in different phases and must not false-share with one another or with
// the read-only header.
type loopState struct {
	n     int
	sched Schedule
	auto  *autoState // calibration + decision state; KindAuto only

	_    [64]byte
	next atomic.Int64 // dynamic (and auto): claim cursor

	_         [56]byte
	remaining atomic.Int64 // guided: iterations not yet claimed

	_   [56]byte
	omu sync.Mutex // ordered section sequencing
	// ocond is created lazily by the first Ordered arrival (under omu):
	// most loops never enter an ordered section, and the eager
	// sync.NewCond was one of the two allocations every dynamic/guided
	// construct paid. Once created it persists across recycling — it is
	// bound to omu, which lives as long as the state itself.
	ocond *sync.Cond
	onext int
}

// loopStatePool recycles loop states across regions. A state is
// reclaimed only at the region join — the sole-ownership point where
// every team member has returned — so a recycled state can never be
// observed mid-construct (see region.recycle). Steady-state dynamic and
// guided loops therefore allocate nothing: the state comes from here
// and the claim loop in forEachChunk is closure-free per chunk.
var loopStatePool = sync.Pool{New: func() any { return new(loopState) }}

func newLoopState(n int, sched Schedule, team int) *loopState {
	ls := loopStatePool.Get().(*loopState)
	ls.n, ls.sched = n, sched
	ls.auto = nil
	ls.next.Store(0)
	ls.remaining.Store(int64(n))
	ls.onext = 0
	if sched.Kind == KindAuto {
		ls.auto = newAutoState(n, team)
	}
	return ls
}

// releaseLoopState returns a state to the pool at the region join. The
// auto-calibration state is dropped (its samples are per-loop and the
// stats path retains it when the caller asked for a snapshot); the
// ordered condvar is kept, bound to the state's own mutex.
func releaseLoopState(ls *loopState) {
	ls.auto = nil
	loopStatePool.Put(ls)
}

// loop fetches or creates the shared state for this thread's next
// worksharing construct — a lock-free slot-table lookup; the first
// arrival's CAS wins. The SPMD contract requires all threads to pass the
// same (n, sched) for the same slot; with debug on (SetDebug /
// PYJAMA_DEBUG) a mismatching later arrival panics instead of silently
// adopting the first arrival's loop.
func (tc *TC) loop(n int, sched Schedule) *loopState {
	slot := tc.wsCount
	tc.wsCount++
	resolved := sched.resolve()
	ls, won := tc.reg.loops.getOrCreate(slot, func() *loopState {
		return newLoopState(n, resolved, tc.reg.n)
	})
	if !won && spmdDebug.Load() && (ls.n != n || ls.sched != resolved) {
		panic(fmt.Sprintf(
			"pyjama: SPMD mismatch at worksharing construct %d: thread %d passed (n=%d, %v) but the first-arriving member registered (n=%d, %v); every team member must encounter the same worksharing sequence",
			slot, tc.id, n, resolved, ls.n, ls.sched))
	}
	return ls
}

// For executes body(i) for every i in [0, n) distributed over the team
// per the schedule, then barriers — "#omp for". Every team member must
// call it (SPMD).
func (tc *TC) For(n int, sched Schedule, body func(i int)) {
	tc.ForNoWait(n, sched, body)
	tc.Barrier()
}

// ForNoWait is "#omp for nowait": no barrier at loop end.
func (tc *TC) ForNoWait(n int, sched Schedule, body func(i int)) {
	if c, fast := tc.staticFastChunk(n, sched); fast {
		for i := c.Lo; i < c.Hi; i++ {
			body(i)
		}
		return
	}
	tc.forEachChunk(n, sched, func(c core.Chunk) {
		for i := c.Lo; i < c.Hi; i++ {
			body(i)
		}
	})
}

// ForChunked hands the body whole chunks instead of single indices, which
// the kernels use to amortise per-iteration overhead. Implicit barrier.
func (tc *TC) ForChunked(n int, sched Schedule, body func(lo, hi int)) {
	if c, fast := tc.staticFastChunk(n, sched); fast {
		if c.Len() > 0 {
			body(c.Lo, c.Hi)
		}
	} else {
		tc.forEachChunk(n, sched, func(c core.Chunk) { body(c.Lo, c.Hi) })
	}
	tc.Barrier()
}

// staticFastChunk is the allocation-free fast path for schedule(static)
// with the default block decomposition: each thread's block is pure
// arithmetic over (n, team, id), so no team-shared loop state is
// registered at all — no loopState allocation on first arrival, no
// slot-table traffic, and (because the caller runs the body directly
// instead of through forEachChunk's chunk closure) no per-call closure.
// fast is false when the schedule needs the general machinery. The slot
// is still consumed so later constructs pair correctly; Ordered creates
// the slot's state lazily if it needs the sequencing condvar. Debug mode
// declines the fast path: the SPMD-mismatch check needs the registered
// (n, sched) to compare against.
func (tc *TC) staticFastChunk(n int, sched Schedule) (c core.Chunk, fast bool) {
	resolved := sched.resolve()
	if resolved.Kind != KindStatic || resolved.Chunk > 0 || spmdDebug.Load() {
		return core.Chunk{}, false
	}
	tc.wsCount++
	c, ok := core.StaticBlock(n, tc.reg.n, tc.id)
	if !ok {
		return core.Chunk{}, true // fast path, but no iterations for us
	}
	ctr := &tc.reg.counters[tc.id]
	ctr.chunks++
	ctr.iters += int64(c.Len())
	return c, true
}

func (tc *TC) forEachChunk(n int, sched Schedule, run func(core.Chunk)) {
	ls := tc.loop(n, sched)
	if n <= 0 {
		return
	}
	ctr := &tc.reg.counters[tc.id]
	claim := func(c core.Chunk) {
		ctr.chunks++
		ctr.iters += int64(c.Len())
		run(c)
	}
	switch ls.sched.Kind {
	case KindStatic:
		if ls.sched.Chunk <= 0 {
			// Block decomposition: at most one chunk per thread, computed
			// arithmetically (no per-call chunk-slice allocation).
			if c, ok := core.StaticBlock(n, tc.reg.n, tc.id); ok {
				claim(c)
			}
			return
		}
		// Block-cyclic: thread t takes chunks t, t+T, t+2T, ...
		chunk := ls.sched.Chunk
		nchunks := (n + chunk - 1) / chunk
		for ci := tc.id; ci < nchunks; ci += tc.reg.n {
			lo := ci * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			claim(core.Chunk{Lo: lo, Hi: hi})
		}
	case KindDynamic:
		chunk := ls.sched.Chunk
		if chunk <= 0 {
			chunk = 1
		}
		for {
			lo := int(ls.next.Add(int64(chunk))) - chunk
			if lo >= n {
				return
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			claim(core.Chunk{Lo: lo, Hi: hi})
		}
	case KindGuided:
		// Contention-free guided: remaining is a single atomic and each
		// claim is one CAS; a failed CAS just retries with the fresher
		// remainder (no region or loop mutex on the claim path).
		minChunk := int64(ls.sched.Chunk)
		if minChunk <= 0 {
			minChunk = 1
		}
		team := int64(tc.reg.n)
		for {
			rem := ls.remaining.Load()
			if rem <= 0 {
				return
			}
			size := rem / team
			if size < minChunk {
				size = minChunk
			}
			if size > rem {
				size = rem
			}
			if ls.remaining.CompareAndSwap(rem, rem-size) {
				lo := ls.n - int(rem)
				claim(core.Chunk{Lo: lo, Hi: lo + int(size)})
			}
		}
	case KindAuto:
		tc.runAuto(ls, claim)
	default:
		panic("pyjama: unresolved schedule kind")
	}
}

// Ordered runs fn for iteration i strictly in iteration order across the
// team — the "#omp ordered" region. It must be called exactly once per
// iteration of an enclosing For whose body was given the iteration index,
// and iterations must reach it in increasing order within each thread
// (which all schedules here guarantee).
func (tc *TC) Ordered(i int, fn func()) {
	// The ordered sequence is tied to the most recent worksharing loop
	// this thread entered; slot pairing gives all threads the same state.
	slot := tc.wsCount - 1
	if slot < 0 {
		panic("pyjama: Ordered outside a worksharing loop")
	}
	// getOrCreate, not get: a static block-decomposed loop takes the
	// registration-free fast path in forEachChunk, so the slot's shared
	// state may not exist yet. The first Ordered arrival creates it (only
	// the sequencing fields matter here) and slot pairing hands every
	// team member the same instance.
	ls, _ := tc.reg.loops.getOrCreate(slot, func() *loopState {
		return newLoopState(0, Static(0), tc.reg.n)
	})
	ls.omu.Lock()
	if ls.ocond == nil {
		ls.ocond = sync.NewCond(&ls.omu)
	}
	for ls.onext != i {
		ls.ocond.Wait()
	}
	fn()
	ls.onext++
	ls.ocond.Broadcast()
	ls.omu.Unlock()
}

// ParallelFor is the combined "#omp parallel for" convenience: it creates
// a team of nthreads, workshares [0, n) with the schedule, and joins.
func ParallelFor(nthreads, n int, sched Schedule, body func(i int)) {
	Parallel(nthreads, func(tc *TC) { tc.ForNoWait(n, sched, body) })
}
