package pyjama

// Schedule and barrier microbenchmarks (ISSUE 2): per-construct overhead
// of the worksharing hot path, measured inside a persistent region so the
// team-spawn cost is excluded. BenchmarkPyjamaFor* time one full
// worksharing loop (slot acquire + chunk claiming + implicit barrier) per
// iteration; BenchmarkPyjamaBarrier times a bare "#omp barrier" at team
// sizes 2/4/8.

import (
	"fmt"
	"testing"
)

func benchFor(b *testing.B, threads int, sched Schedule) {
	b.Helper()
	// n is small so the measured cost is the construct overhead (slot
	// acquire, chunk claims, implicit barrier), not the body calls.
	const n = 512
	Parallel(threads, func(tc *TC) {
		for i := 0; i < b.N; i++ {
			tc.For(n, sched, func(int) {})
		}
	})
}

func BenchmarkPyjamaForStatic(b *testing.B)  { benchFor(b, 8, Static(0)) }
func BenchmarkPyjamaForDynamic(b *testing.B) { benchFor(b, 8, Dynamic(16)) }
func BenchmarkPyjamaForGuided(b *testing.B)  { benchFor(b, 8, Guided(8)) }
func BenchmarkPyjamaForAuto(b *testing.B)    { benchFor(b, 8, Auto()) }

func BenchmarkPyjamaBarrier(b *testing.B) {
	for _, threads := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("T%d", threads), func(b *testing.B) {
			Parallel(threads, func(tc *TC) {
				for i := 0; i < b.N; i++ {
					tc.Barrier()
				}
			})
		})
	}
}
