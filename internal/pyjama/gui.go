package pyjama

import (
	"parc751/internal/core"
	"parc751/internal/eventloop"
)

// GUI awareness is the feature that distinguishes Pyjama from classic
// OpenMP (§IV-B of the paper: "providing essential support necessary for
// GUI applications"). Two directives are reproduced:
//
//   - freeguithread: run a parallel region asynchronously so the event
//     thread stays free, then deliver a completion handler back on it
//     (Async below);
//   - gui: from inside a region, marshal a block onto the event-dispatch
//     thread to touch UI state (OnGUI / OnGUISync below).

// Async runs the parallel region on background goroutines and returns
// immediately — Pyjama's "#omp parallel freeguithread". When the region
// finishes, onDone is delivered on the event loop (inline if loop is nil
// or closed) with the region's panic converted to an error (nil on
// success).
func Async(loop *eventloop.Loop, nthreads int, body func(tc *TC), onDone func(err error)) {
	go func() {
		err := core.Catch(func() { Parallel(nthreads, body) })
		deliver := func() {
			if onDone != nil {
				onDone(err)
			}
		}
		if loop != nil {
			if postErr := loop.InvokeLater(deliver); postErr == nil {
				return
			}
		}
		deliver()
	}()
}

// OnGUI posts fn to the event loop without waiting — "#omp gui nowait".
// With a nil loop it runs inline (headless mode).
func OnGUI(loop *eventloop.Loop, fn func()) {
	if loop == nil {
		fn()
		return
	}
	if err := loop.InvokeLater(fn); err != nil {
		fn()
	}
}

// OnGUISync runs fn on the event loop and waits for it — "#omp gui". With
// a nil loop it runs inline.
func OnGUISync(loop *eventloop.Loop, fn func()) {
	if loop == nil {
		fn()
		return
	}
	if err := loop.InvokeAndWait(fn); err != nil {
		fn()
	}
}
