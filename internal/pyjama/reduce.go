package pyjama

import (
	"sync"

	"parc751/internal/reduction"
)

// redSlot is one thread's padded partial-result slot: each team member
// writes only its own slot, so the padding keeps concurrent stores off
// shared cache lines, and the barrier publishes them without a lock.
// v holds a *T box rather than the T itself (see ForReduce): the box is
// retained across recycling, so a steady-state reduction writes through
// a reused pointer instead of re-boxing the partial every construct.
type redSlot struct {
	v any
	_ [48]byte
}

// redState is the team-shared state of one reduction construct instance.
// There is no mutex: per-thread slots plus barrier publication make the
// partials race-free, and the combined result is written by exactly one
// thread (the barrier's serial thread) between the two barriers.
type redState struct {
	partials []redSlot
	result   any
}

// redStatePool recycles reduction states across regions, like
// loopStatePool. The partial and result boxes ride along deliberately —
// they are what makes the steady-state reduction allocation-free — at
// the cost of keeping the previous region's last values alive until
// overwritten, which for the scalar reductions the kernels use is noise.
var redStatePool = sync.Pool{New: func() any { return new(redState) }}

func newRedState(team int) *redState {
	rs := redStatePool.Get().(*redState)
	if cap(rs.partials) < team {
		rs.partials = make([]redSlot, team)
	}
	rs.partials = rs.partials[:team]
	return rs
}

func releaseRedState(rs *redState) { redStatePool.Put(rs) }

// red fetches or creates the shared reduction state for this thread's
// next reduction construct — the same lock-free slot pairing as loops.
func (tc *TC) red() *redState {
	slot := tc.redCount
	tc.redCount++
	rs, _ := tc.reg.reds.getOrCreate(slot, func() *redState {
		return newRedState(tc.reg.n)
	})
	return rs
}

// ForReduce is "#omp for reduction(op:var)": it workshares [0, n) over the
// team with the given schedule, folds each thread's iterations into a
// thread-private accumulator, combines the per-thread partials in
// deterministic thread order, and returns the combined value to every
// team member (with an implicit barrier).
//
// The combine runs exactly once, on the barrier's serial thread — T-1
// combines total instead of the T² a combine-per-member scheme costs,
// which matters for the object reductions (map merges, set unions) the
// paper highlights. A second barrier publishes the result to the team.
//
// Because Go methods cannot carry type parameters, ForReduce is a free
// function over the thread context.
func ForReduce[T any](tc *TC, n int, sched Schedule, r reduction.Reducer[T], body func(i int, acc T) T) T {
	rs := tc.red()
	acc := r.Identity()
	tc.ForNoWait(n, sched, func(i int) { acc = body(i, acc) })
	// Publish the partial through a reusable *T box: storing a non-
	// pointer-shaped T directly in the interface word would heap-box it
	// on every construct, while writing through a retained pointer is
	// free once the box exists. A recycled slot whose box came from a
	// reduction over a different type falls back to a fresh box.
	slot := &rs.partials[tc.id]
	box, ok := slot.v.(*T)
	if !ok {
		box = new(T)
		slot.v = box
	}
	*box = acc
	if tc.barrierSerial() {
		// Every partial is visible here (the barrier ordered the stores);
		// combine once in thread order for a deterministic value.
		combined := r.Identity()
		for id := 0; id < tc.reg.n; id++ {
			if p, ok := rs.partials[id].v.(*T); ok {
				combined = r.Combine(combined, *p)
			}
		}
		rbox, ok := rs.result.(*T)
		if !ok {
			rbox = new(T)
			rs.result = rbox
		}
		*rbox = combined
	}
	tc.Barrier() // publish the serial thread's combine to the team
	return *rs.result.(*T)
}

// ParallelForReduce is the combined "#omp parallel for reduction"
// convenience: team creation, worksharing, reduction, join.
func ParallelForReduce[T any](nthreads, n int, sched Schedule, r reduction.Reducer[T], body func(i int, acc T) T) T {
	var out T
	Parallel(nthreads, func(tc *TC) {
		v := ForReduce(tc, n, sched, r, body)
		tc.Master(func() { out = v })
	})
	return out
}
