package pyjama

import (
	"sync"

	"parc751/internal/reduction"
)

// redState is the team-shared state of one reduction construct instance.
type redState struct {
	mu       sync.Mutex
	partials []any
	filled   []bool
}

// red fetches or creates the shared reduction state for this thread's
// next reduction construct, mirroring the loop-slot pairing.
func (tc *TC) red() *redState {
	slot := tc.redCount
	tc.redCount++
	r := tc.reg
	r.mu.Lock()
	defer r.mu.Unlock()
	if rs, ok := r.reds[slot]; ok {
		return rs
	}
	rs := &redState{partials: make([]any, r.n), filled: make([]bool, r.n)}
	r.reds[slot] = rs
	return rs
}

// ForReduce is "#omp for reduction(op:var)": it workshares [0, n) over the
// team with the given schedule, folds each thread's iterations into a
// thread-private accumulator, combines the per-thread partials in
// deterministic thread order, barriers, and returns the combined value to
// every team member. body receives the iteration index and the thread's
// current accumulator and returns the updated accumulator.
//
// Because Go methods cannot carry type parameters, ForReduce is a free
// function over the thread context.
func ForReduce[T any](tc *TC, n int, sched Schedule, r reduction.Reducer[T], body func(i int, acc T) T) T {
	rs := tc.red()
	acc := r.Identity()
	tc.ForNoWait(n, sched, func(i int) { acc = body(i, acc) })
	rs.mu.Lock()
	rs.partials[tc.id] = acc
	rs.filled[tc.id] = true
	rs.mu.Unlock()
	tc.Barrier()
	// After the barrier every partial is visible; every thread combines
	// in thread order so all see the same deterministic value.
	combined := r.Identity()
	for id := 0; id < tc.reg.n; id++ {
		if rs.filled[id] {
			combined = r.Combine(combined, rs.partials[id].(T))
		}
	}
	return combined
}

// ParallelForReduce is the combined "#omp parallel for reduction"
// convenience: team creation, worksharing, reduction, join.
func ParallelForReduce[T any](nthreads, n int, sched Schedule, r reduction.Reducer[T], body func(i int, acc T) T) T {
	var out T
	Parallel(nthreads, func(tc *TC) {
		v := ForReduce(tc, n, sched, r, body)
		tc.Master(func() { out = v })
	})
	return out
}
