package parccluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"parc751/internal/parccluster/supervisor"
)

// FleetConfig sizes a supervised fleet.
type FleetConfig struct {
	// Nodes is how many worker nodes to run.
	Nodes int
	// Starter creates node incarnations (LocalStarter or ProcStarter).
	Starter NodeStarter
	// Router tunes the fronting router. Its OnKill is overridden to
	// target this fleet's nodes; its Events is unified with the fleet's.
	Router RouterConfig
	// Supervision knobs, passed through to supervisor.Config. IsFatal
	// defaults to nothing-is-fatal: a crashed node is always restarted
	// (until the crash-loop circuit retires it) because losing one node
	// must never take the fleet down.
	IsFatal         func(error) bool
	RestartDelay    time.Duration
	MaxDelay        time.Duration
	CrashLoopK      int
	CrashLoopWindow time.Duration
	JitterSeed      uint64
	Clock           supervisor.Clock
	// ReadyTimeout bounds the post-start wait for a node's /healthz to
	// answer with the right identity (default 15s).
	ReadyTimeout time.Duration
	// Events is the shared cluster event log (default: a fresh one).
	Events *EventLog
}

// Fleet is a supervised set of parcserve worker nodes behind a Router.
// Start it, point load at Router(), Stop it; KillNode is the chaos
// entry the A11 ablation and the CI smoke use.
type Fleet struct {
	cfg    FleetConfig
	events *EventLog
	router *Router
	runner *supervisor.Runner

	mu      sync.Mutex
	handles map[string]NodeHandle
}

// NewFleet wires a fleet; nothing runs until Start.
func NewFleet(cfg FleetConfig) *Fleet {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 2
	}
	if cfg.Starter == nil {
		cfg.Starter = &LocalStarter{}
	}
	if cfg.ReadyTimeout <= 0 {
		cfg.ReadyTimeout = 15 * time.Second
	}
	if cfg.IsFatal == nil {
		cfg.IsFatal = func(error) bool { return false }
	}
	if cfg.Events == nil {
		cfg.Events = NewEventLog()
	}
	f := &Fleet{cfg: cfg, events: cfg.Events, handles: map[string]NodeHandle{}}

	rcfg := cfg.Router
	rcfg.Events = cfg.Events
	rcfg.OnKill = f.KillNode
	f.router = NewRouter(rcfg)

	f.runner = supervisor.NewRunner(supervisor.Config{
		IsFatal:         cfg.IsFatal,
		RestartDelay:    cfg.RestartDelay,
		MaxDelay:        cfg.MaxDelay,
		CrashLoopK:      cfg.CrashLoopK,
		CrashLoopWindow: cfg.CrashLoopWindow,
		JitterSeed:      cfg.JitterSeed,
		Clock:           cfg.Clock,
		OnEvent:         f.onSupervisorEvent,
	})
	return f
}

// Router returns the fleet's fronting router (an http.Handler).
func (f *Fleet) Router() *Router { return f.router }

// Events returns the shared cluster event log.
func (f *Fleet) Events() *EventLog { return f.events }

// Runner exposes the supervisor (tests assert on Dead/Live).
func (f *Fleet) Runner() *supervisor.Runner { return f.runner }

// Start launches and supervises every node, returning once all are
// ready and routable.
func (f *Fleet) Start() error {
	for i := 0; i < f.cfg.Nodes; i++ {
		id := fmt.Sprintf("node%d", i)
		if err := f.runner.StartTask(id, f.starterFor(id)); err != nil {
			return err
		}
	}
	// Wait for initial readiness: every node routable or declared
	// unstartable within the ready budget.
	deadline := time.Now().Add(f.cfg.ReadyTimeout)
	for {
		ready := 0
		for _, n := range f.router.Nodes() {
			if n.Alive && n.Ready {
				ready++
			}
		}
		if ready == f.cfg.Nodes {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("parccluster: only %d/%d nodes ready within %v",
				ready, f.cfg.Nodes, f.cfg.ReadyTimeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// starterFor builds the supervisor StartFunc for one node id: start an
// incarnation, wait for /healthz to answer with the right identity,
// register it with the router.
func (f *Fleet) starterFor(id string) supervisor.StartFunc {
	return func() (supervisor.Task, error) {
		h, err := f.cfg.Starter.Start(id)
		if err != nil {
			f.events.Add(EvNodeStart, id, "start failed: "+err.Error())
			return nil, err
		}
		f.events.Add(EvNodeStart, id, h.URL())
		if err := waitHealthy(h.URL(), id, f.cfg.ReadyTimeout); err != nil {
			_ = h.Kill()
			return nil, err
		}
		f.mu.Lock()
		f.handles[id] = h
		f.mu.Unlock()
		f.router.SetNode(id, h.URL())
		f.events.Add(EvNodeReady, id, h.URL())
		return &nodeTask{fleet: f, id: id, handle: h}, nil
	}
}

// waitHealthy polls /healthz until it answers 200 with the expected
// node_id — the identity check that catches a port collision handing us
// somebody else's server.
func waitHealthy(url, id string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	client := &http.Client{Timeout: time.Second}
	for {
		resp, err := client.Get(url + "/healthz")
		if err == nil {
			var body struct {
				NodeID string `json:"node_id"`
			}
			data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				if jerr := json.Unmarshal(data, &body); jerr == nil && body.NodeID == id {
					return nil
				}
				return fmt.Errorf("parccluster: %s answered /healthz with wrong identity %q", url, string(data))
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("parccluster: node %s not healthy within %v", id, budget)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// nodeTask adapts one incarnation to the supervisor's Task contract.
type nodeTask struct {
	fleet  *Fleet
	id     string
	handle NodeHandle
}

func (t *nodeTask) Stop() { _ = t.handle.Shutdown() }

func (t *nodeTask) Wait() error {
	err := t.handle.Wait()
	why := "clean exit"
	if err != nil {
		why = err.Error()
	}
	t.fleet.router.MarkDown(t.id, why)
	t.fleet.events.Add(EvNodeExit, t.id, why)
	t.fleet.mu.Lock()
	if t.fleet.handles[t.id] == t.handle {
		delete(t.fleet.handles, t.id)
	}
	t.fleet.mu.Unlock()
	return err
}

// onSupervisorEvent mirrors supervision transitions into the cluster
// event log and removes crash-looped nodes from the ring.
func (f *Fleet) onSupervisorEvent(e supervisor.Event) {
	switch e.Kind {
	case supervisor.EventRestarting:
		f.events.Add(EvNodeRestart, e.TaskID, fmt.Sprintf("in %v after: %v", e.Delay, e.Err))
	case supervisor.EventDead:
		f.router.RemoveNode(e.TaskID)
	}
}

// KillNode abruptly kills a node's current incarnation — the chaos
// primitive. The supervisor observes the death and restarts the node
// with backoff; the router routes around it in the meantime.
func (f *Fleet) KillNode(id string) error {
	f.mu.Lock()
	h := f.handles[id]
	f.mu.Unlock()
	if h == nil {
		return fmt.Errorf("parccluster: no live incarnation of %q", id)
	}
	f.events.Add(EvNodeKill, id, "KillNode")
	return h.Kill()
}

// Stop shuts the fleet down: supervision ends, every node drains, the
// router's poller stops. Returns the supervisor's final error (nil on a
// clean stop).
func (f *Fleet) Stop() error {
	f.events.Add(EvFleetStop, "", "")
	err := f.runner.Stop()
	f.router.Close()
	return err
}
