package parccluster

import (
	"fmt"
	"testing"
)

func TestRingPrimaryStableUnderMembershipChange(t *testing.T) {
	r := newRing(64)
	for i := 0; i < 4; i++ {
		r.add(fmt.Sprintf("node%d", i))
	}
	keys := make([]string, 200)
	before := map[string]string{}
	for i := range keys {
		keys[i] = fmt.Sprintf("kind-%d", i)
		before[keys[i]] = r.primary(keys[i])
	}
	// Adding a fifth node must move only a minority of keys (~1/5 in
	// expectation — allow up to half before calling it broken; a naive
	// mod-N hash would move ~4/5).
	r.add("node4")
	moved := 0
	for _, k := range keys {
		if r.primary(k) != before[k] {
			moved++
		}
	}
	if moved > len(keys)/2 {
		t.Fatalf("adding one node moved %d/%d keys — not consistent hashing", moved, len(keys))
	}
	// Removing it must restore every original assignment exactly.
	r.remove("node4")
	for _, k := range keys {
		if got := r.primary(k); got != before[k] {
			t.Fatalf("key %s moved %s -> %s after add+remove round trip", k, before[k], got)
		}
	}
}

func TestRingPreferenceCoversAllMembers(t *testing.T) {
	r := newRing(16)
	for i := 0; i < 3; i++ {
		r.add(fmt.Sprintf("n%d", i))
	}
	pref := r.preference("sort")
	if len(pref) != 3 {
		t.Fatalf("preference lists %d nodes, want 3: %v", len(pref), pref)
	}
	seen := map[string]bool{}
	for _, n := range pref {
		if seen[n] {
			t.Fatalf("preference repeats %s: %v", n, pref)
		}
		seen[n] = true
	}
	if pref[0] != r.primary("sort") {
		t.Fatalf("preference[0] = %s, primary = %s", pref[0], r.primary("sort"))
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	r := newRing(8)
	if p := r.primary("x"); p != "" {
		t.Fatalf("empty ring primary = %q", p)
	}
	if pref := r.preference("x"); pref != nil {
		t.Fatalf("empty ring preference = %v", pref)
	}
	r.add("only")
	for _, k := range []string{"a", "b", "c"} {
		if p := r.primary(k); p != "only" {
			t.Fatalf("single-node ring primary(%s) = %q", k, p)
		}
	}
}

func TestRingBalance(t *testing.T) {
	r := newRing(64)
	for i := 0; i < 4; i++ {
		r.add(fmt.Sprintf("node%d", i))
	}
	counts := map[string]int{}
	const n = 4000
	for i := 0; i < n; i++ {
		counts[r.primary(fmt.Sprintf("key-%d", i))]++
	}
	for node, c := range counts {
		// Expect ~1000 per node; 64 vnodes keeps the spread modest.
		if c < n/10 || c > n/2 {
			t.Fatalf("node %s owns %d/%d keys — ring badly unbalanced: %v", node, c, n, counts)
		}
	}
}
