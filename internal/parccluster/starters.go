package parccluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os/exec"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"parc751/internal/parcserve"
)

// NodeHandle is one live worker-node incarnation. Kill is abrupt death
// (the chaos path: connections reset, in-flight jobs lost from the
// cluster's point of view); Shutdown is the polite path (readiness
// flips, drain, exit). Wait blocks until the incarnation is gone and
// returns nil only for a clean exit — the supervisor classifies the
// error.
type NodeHandle interface {
	URL() string
	Kill() error
	Shutdown() error
	Wait() error
}

// NodeStarter creates node incarnations. The fleet calls Start again on
// every supervised restart.
type NodeStarter interface {
	Start(id string) (NodeHandle, error)
}

// errKilled is what a killed incarnation's Wait returns — a non-fatal
// crash to the supervisor, which restarts the node with backoff.
var errKilled = errors.New("parccluster: node killed")

// ---------------------------------------------------------------------
// LocalStarter: in-process nodes. Each node is a full parcserve.Server
// with its own runtime pool behind its own TCP listener on 127.0.0.1 —
// real HTTP between router and node, everything else hermetic. Tests
// and the A11 ablation use this; cmd/parccluster uses ProcStarter.

// LocalStarter starts in-process parcserve nodes.
type LocalStarter struct {
	// Config is the per-node template; NodeID is overridden per node.
	Config parcserve.Config
}

// Start implements NodeStarter.
func (s *LocalStarter) Start(id string) (NodeHandle, error) {
	cfg := s.Config
	cfg.NodeID = id
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := parcserve.NewServer(cfg)
	n := &localNode{
		srv:  srv,
		hs:   &http.Server{Handler: srv},
		url:  "http://" + ln.Addr().String(),
		done: make(chan struct{}),
	}
	go func() {
		_ = n.hs.Serve(ln)
		close(n.done)
	}()
	return n, nil
}

type localNode struct {
	srv      *parcserve.Server
	hs       *http.Server
	url      string
	done     chan struct{}
	graceful atomic.Bool
	stopOnce sync.Once
}

func (n *localNode) URL() string { return n.url }

// Kill is an abrupt death: listener and live connections close
// immediately (clients see a reset mid-request), then the orphaned
// runtime pool is reaped in the background — invisible to the cluster,
// which already watched the node die.
func (n *localNode) Kill() error {
	var err error
	n.stopOnce.Do(func() {
		err = n.hs.Close()
		go func() { _ = n.srv.Drain(5 * time.Second) }()
	})
	return err
}

// Shutdown is the polite path: parcserve drain (readiness flip, grace,
// intake close, job flush, pool stop), then the HTTP server.
func (n *localNode) Shutdown() error {
	var err error
	n.stopOnce.Do(func() {
		n.graceful.Store(true)
		err = n.srv.Drain(30 * time.Second)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		serr := n.hs.Shutdown(ctx)
		if err == nil {
			err = serr
		}
	})
	return err
}

func (n *localNode) Wait() error {
	<-n.done
	if n.graceful.Load() {
		return nil
	}
	return errKilled
}

// ---------------------------------------------------------------------
// ProcStarter: real separate processes. The production shape — the
// router's failure model (connection reset on node death) is exactly
// the OS's, not a simulation.

// ProcStarter spawns each node as a child process (normally the
// parccluster binary re-exec'd in -worker mode).
type ProcStarter struct {
	// Bin is the executable to run.
	Bin string
	// Args builds the argv (after Bin) for a node with the given id
	// listening on addr. Default: ["-worker", "-worker-addr", addr,
	// "-node-id", id].
	Args func(id, addr string) []string
	// Stdout/Stderr receive the child's output (default: discarded).
	Stdout, Stderr io.Writer
}

// Start implements NodeStarter: picks a free localhost port, spawns the
// worker on it, and returns once the process is running (readiness is
// the fleet's job).
func (s *ProcStarter) Start(id string) (NodeHandle, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	addr := ln.Addr().String()
	_ = ln.Close() // tiny window; the child rebinds the same port
	args := []string{"-worker", "-worker-addr", addr, "-node-id", id}
	if s.Args != nil {
		args = s.Args(id, addr)
	}
	cmd := exec.Command(s.Bin, args...)
	cmd.Stdout = s.Stdout
	cmd.Stderr = s.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("parccluster: starting node %s: %w", id, err)
	}
	n := &procNode{cmd: cmd, url: "http://" + addr, done: make(chan struct{})}
	go func() {
		n.waitErr = cmd.Wait()
		close(n.done)
	}()
	return n, nil
}

type procNode struct {
	cmd      *exec.Cmd
	url      string
	done     chan struct{}
	waitErr  error
	graceful atomic.Bool
}

func (n *procNode) URL() string { return n.url }

func (n *procNode) Kill() error {
	return n.cmd.Process.Kill()
}

// Shutdown sends SIGTERM (the worker drains and exits 0) and escalates
// to SIGKILL if the child lingers past its budget.
func (n *procNode) Shutdown() error {
	n.graceful.Store(true)
	if err := n.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	select {
	case <-n.done:
		return nil
	case <-time.After(45 * time.Second):
		return n.cmd.Process.Kill()
	}
}

func (n *procNode) Wait() error {
	<-n.done
	if n.graceful.Load() && n.waitErr == nil {
		return nil
	}
	if n.waitErr == nil {
		// Exited zero without being asked: still a supervision event —
		// a worker has no business exiting on its own.
		return errors.New("parccluster: node exited unexpectedly")
	}
	return fmt.Errorf("%w: %v", errKilled, n.waitErr)
}
