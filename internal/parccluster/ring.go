package parccluster

import "sort"

// ring is a consistent-hash ring over node ids. Each node owns Replicas
// virtual points; a key's primary is the first point clockwise from the
// key's hash. Consistent hashing is what makes the shard map stable
// under membership change: adding or removing one node moves only the
// keys in that node's arcs, so a restart does not reshuffle every kind's
// home — the cache-locality argument, but for job routing.
//
// The ring is not safe for concurrent use; the Router guards it with its
// membership mutex. Dead nodes stay on the ring (the Router filters at
// pick time), so a node that restarts reclaims exactly its old arcs.
type ring struct {
	replicas int
	points   []ringPoint // sorted by hash
	nodes    map[string]bool
}

type ringPoint struct {
	hash uint64
	node string
}

func newRing(replicas int) *ring {
	if replicas <= 0 {
		replicas = 64
	}
	return &ring{replicas: replicas, nodes: map[string]bool{}}
}

// hash64 is FNV-1a over s — stable across processes, which keeps shard
// maps identical on every router that sees the same membership.
func hash64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// add inserts node's virtual points. Adding a present node is a no-op.
func (r *ring) add(node string) {
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, ringPoint{
			hash: hash64(node + "#" + itoaSmallRing(i)),
			node: node,
		})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// remove deletes node's virtual points.
func (r *ring) remove(node string) {
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// primary returns the node owning key, or "" on an empty ring.
func (r *ring) primary(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// preference returns every member node in ring order starting from key's
// primary — the deterministic fallback order before load enters the
// picture.
func (r *ring) preference(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := map[string]bool{}
	out := make([]string, 0, len(r.nodes))
	for i := 0; i < len(r.points) && len(out) < len(r.nodes); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// members returns the node set in sorted order.
func (r *ring) members() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func itoaSmallRing(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
