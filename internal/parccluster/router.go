// Package parccluster is the horizontal-scale layer over parcserve: a
// router fronting N worker nodes (separate processes speaking HTTP on
// localhost) with consistent-hash sharding of job kinds, least-loaded
// spill on saturation, failover retry of idempotent seed→checksum jobs
// on node death, and a supervised fleet (supervisor subpackage, juju
// runner style) that restarts crashed nodes with backoff and retires
// crash-loopers. This is ROADMAP item 1 — the "millions of users" layer:
// parcserve bounds one process's admission; parccluster makes the
// admission bound a per-node property and survivability a cluster one.
//
// The no-lost-jobs contract (ablation A11): every request the router
// accepts is eventually answered exactly once, either 200 (completed) or
// an explicit rejection — the ledger accepted == completed + rejected
// balances once traffic stops. Node death mid-job converts into a
// failover retry when the job is idempotent (every kind except webfetch:
// the response is a pure function of seed and parameters, so re-running
// it on another node provably returns the same checksum) and into an
// explicit 502 when it is not.
//
// Chaos enters through the router's own HTTP client: the transport is
// wrapped in faultinject.RoundTripper, so a seeded plan can partition
// (Error), stall (Delay/Stall) or wedge (Hang) the router→node path on
// exact event ordinals, and the same seed replays the same fault
// schedule bit-for-bit (the A8 determinism model, applied to routing).
package parccluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"parc751/internal/faultinject"
	"parc751/internal/parcserve"
)

// RouterConfig tunes the router. Zero values take the defaults.
type RouterConfig struct {
	// Replicas is the virtual-node count per worker on the hash ring
	// (default 64).
	Replicas int
	// RetryMax bounds how many alternative nodes one request may be
	// routed to after its first (default 3).
	RetryMax int
	// RetryBackoff and RetryBackoffMax shape the capped exponential
	// backoff between failover attempts after a transport error
	// (defaults 10ms / 250ms). Spills on 429 do not back off — the whole
	// point of a spill is that another node has capacity now.
	RetryBackoff    time.Duration
	RetryBackoffMax time.Duration
	// Injector, when set, is wired into the router's HTTP transport via
	// faultinject.RoundTripper — the chaos hook for A11.
	Injector *faultinject.Injector
	// Client overrides the router's HTTP client; when nil one is built
	// from http.DefaultTransport wrapped with the Injector.
	Client *http.Client
	// Events receives routing anomalies (default: a fresh log).
	Events *EventLog
	// VerifyRetries makes the router double-check every successful
	// failover: the job is re-executed on a different node and the two
	// checksums compared (event + counter on mismatch). Expensive —
	// meant for chaos tests and the A11 ablation, not production.
	VerifyRetries bool
	// Sleep is the backoff sleeper, injectable so tests don't wait.
	Sleep func(time.Duration)
	// LoadPollEvery, when > 0, starts a background /statz poller that
	// refreshes per-node queue depths and readiness (the fleet sets
	// this; bare test routers call RefreshLoad themselves).
	LoadPollEvery time.Duration
	// OnKill, when set, enables POST /chaos/kill/{node} — the scripted
	// chaos surface the CI smoke uses to murder a node mid-run.
	OnKill func(node string) error
}

func (c *RouterConfig) fill() {
	if c.Replicas <= 0 {
		c.Replicas = 64
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 10 * time.Millisecond
	}
	if c.RetryBackoffMax <= 0 {
		c.RetryBackoffMax = 250 * time.Millisecond
	}
	if c.Events == nil {
		c.Events = NewEventLog()
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
	if c.Client == nil {
		c.Client = &http.Client{
			Transport: &faultinject.RoundTripper{Injector: c.Injector},
			Timeout:   2 * time.Minute,
		}
	}
}

// nodeState is the router's view of one worker node. alive tracks
// process-level reachability (fleet exit notifications, transport
// failures); ready tracks the node's own /readyz intent (drain). Both
// must hold for the node to receive work.
type nodeState struct {
	id    string
	url   string
	alive bool
	ready bool
	depth int64 // waiting + running from the last /statz refresh
}

// Ledger is the router's accounting: Accepted requests split exactly
// into Completed (200 relayed) and Rejected (any explicit non-200
// answer). Lost = Accepted − Completed − Rejected is in-flight work at
// snapshot time and must be zero once traffic stops — the A11 invariant.
type Ledger struct {
	Accepted  int64 `json:"accepted"`
	Completed int64 `json:"completed"`
	Rejected  int64 `json:"rejected"`
	Lost      int64 `json:"lost"`
	Spills    int64 `json:"spills"`
	Failovers int64 `json:"failovers"`
	Saturated int64 `json:"saturated"`
	Verified  int64 `json:"verified"`
	Mismatch  int64 `json:"verify_mismatches"`
}

// Router fronts the worker fleet. Create with NewRouter; it implements
// http.Handler with the same POST /jobs/{kind} surface as a single
// parcserve node, so parcload and the loadtest package drive it
// unchanged.
type Router struct {
	cfg    RouterConfig
	client *http.Client
	mux    *http.ServeMux

	mu    sync.RWMutex
	nodes map[string]*nodeState
	ring  *ring

	accepted  atomic.Int64
	completed atomic.Int64
	rejected  atomic.Int64
	spills    atomic.Int64
	failovers atomic.Int64
	saturated atomic.Int64
	verified  atomic.Int64
	mismatch  atomic.Int64

	pollStop chan struct{}
	pollDone chan struct{}
}

// NewRouter builds a router with no members; add nodes with SetNode.
func NewRouter(cfg RouterConfig) *Router {
	cfg.fill()
	rt := &Router{
		cfg:    cfg,
		client: cfg.Client,
		mux:    http.NewServeMux(),
		nodes:  map[string]*nodeState{},
		ring:   newRing(cfg.Replicas),
	}
	rt.mux.HandleFunc("POST /jobs/{kind}", rt.handleJob)
	rt.mux.HandleFunc("GET /statz", rt.handleStatz)
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux.HandleFunc("GET /eventz", rt.handleEventz)
	if cfg.OnKill != nil {
		rt.mux.HandleFunc("POST /chaos/kill/{node}", rt.handleKill)
	}
	if cfg.LoadPollEvery > 0 {
		rt.pollStop = make(chan struct{})
		rt.pollDone = make(chan struct{})
		go rt.pollLoop(cfg.LoadPollEvery)
	}
	return rt
}

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

// Events returns the router's event log.
func (rt *Router) Events() *EventLog { return rt.cfg.Events }

// Close stops the background poller (if any). It does not touch nodes.
func (rt *Router) Close() {
	if rt.pollStop != nil {
		select {
		case <-rt.pollStop:
		default:
			close(rt.pollStop)
			<-rt.pollDone
		}
	}
}

// SetNode adds a node or updates its URL, marking it alive and ready.
// The ring gains the node on first sight and keeps it across mark-downs
// so a restarted node reclaims its old shard arcs.
func (rt *Router) SetNode(id, url string) {
	rt.mu.Lock()
	st, ok := rt.nodes[id]
	if !ok {
		st = &nodeState{id: id}
		rt.nodes[id] = st
		rt.ring.add(id)
	}
	st.url = url
	st.alive = true
	st.ready = true
	rt.mu.Unlock()
	rt.cfg.Events.Add(EvMarkUp, id, url)
}

// RemoveNode deletes a node entirely (crash-looped dead): its shard
// arcs redistribute to the survivors.
func (rt *Router) RemoveNode(id string) {
	rt.mu.Lock()
	delete(rt.nodes, id)
	rt.ring.remove(id)
	rt.mu.Unlock()
	rt.cfg.Events.Add(EvNodeDead, id, "removed from ring")
}

// MarkDown stops routing to a node without removing it from the ring.
func (rt *Router) MarkDown(id, why string) {
	rt.mu.Lock()
	st, ok := rt.nodes[id]
	changed := ok && st.alive
	if ok {
		st.alive = false
	}
	rt.mu.Unlock()
	if changed {
		rt.cfg.Events.Add(EvMarkDown, id, why)
	}
}

// Nodes returns a point-in-time copy of the membership.
func (rt *Router) Nodes() []nodeSnapshot {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	out := make([]nodeSnapshot, 0, len(rt.nodes))
	for _, st := range rt.nodes {
		out = append(out, nodeSnapshot{ID: st.id, URL: st.url, Alive: st.alive,
			Ready: st.ready, Depth: st.depth})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

type nodeSnapshot struct {
	ID    string `json:"id"`
	URL   string `json:"url"`
	Alive bool   `json:"alive"`
	Ready bool   `json:"ready"`
	Depth int64  `json:"depth"`
}

// Ledger returns the routing ledger snapshot.
func (rt *Router) Ledger() Ledger {
	l := Ledger{
		Accepted:  rt.accepted.Load(),
		Completed: rt.completed.Load(),
		Rejected:  rt.rejected.Load(),
		Spills:    rt.spills.Load(),
		Failovers: rt.failovers.Load(),
		Saturated: rt.saturated.Load(),
		Verified:  rt.verified.Load(),
		Mismatch:  rt.mismatch.Load(),
	}
	l.Lost = l.Accepted - l.Completed - l.Rejected
	return l
}

// RefreshLoad polls every alive node's /statz, updating queue depth and
// readiness, and resurrecting mark-downed nodes that answer again. The
// health client deliberately bypasses the chaos injector: control-plane
// probes are not the traffic under test.
func (rt *Router) RefreshLoad() {
	rt.mu.RLock()
	targets := make([]*nodeState, 0, len(rt.nodes))
	for _, st := range rt.nodes {
		targets = append(targets, st)
	}
	rt.mu.RUnlock()
	for _, st := range targets {
		rt.mu.RLock()
		url := st.url
		rt.mu.RUnlock()
		stz, err := fetchStatz(url)
		rt.mu.Lock()
		if err != nil {
			st.depth = 1 << 30 // unknown load sorts last among spill targets
			rt.mu.Unlock()
			continue
		}
		wasDown := !st.alive
		st.alive = true
		st.ready = stz.Ready
		st.depth = stz.Admission.Waiting + int64(stz.Admission.Running)
		rt.mu.Unlock()
		if wasDown {
			rt.cfg.Events.Add(EvMarkUp, st.id, "statz answered")
		}
	}
}

// statzClient is the control-plane client: short timeout, no chaos.
var statzClient = &http.Client{Timeout: 2 * time.Second}

func fetchStatz(url string) (*parcserve.Statz, error) {
	resp, err := statzClient.Get(url + "/statz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var st parcserve.Statz
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

func (rt *Router) pollLoop(every time.Duration) {
	defer close(rt.pollDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			rt.RefreshLoad()
		case <-rt.pollStop:
			return
		}
	}
}

// pickFirst returns the consistent-hash primary for kind among routable
// nodes; pickSpill returns the least-loaded routable node not yet tried.
// Together they implement the routing policy: shard by kind, spill by
// load.
func (rt *Router) pickFirst(kind string) *nodeState {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	for _, id := range rt.ring.preference(kind) {
		if st := rt.nodes[id]; st != nil && st.alive && st.ready {
			return st
		}
	}
	return nil
}

func (rt *Router) pickSpill(tried map[string]bool) *nodeState {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	var best *nodeState
	for _, st := range rt.nodes {
		if tried[st.id] || !st.alive || !st.ready {
			continue
		}
		if best == nil || st.depth < best.depth ||
			(st.depth == best.depth && st.id < best.id) {
			best = st
		}
	}
	return best
}

// forwarded is one attempt's outcome.
type forwarded struct {
	status     int
	body       []byte
	retryAfter int
}

// forward sends the job to one node and reads the full answer (the body
// must be buffered anyway — it may be replayed on another node).
func (rt *Router) forward(r *http.Request, node *nodeState, kind string, body []byte) (*forwarded, error) {
	rt.mu.RLock()
	url := node.url
	rt.mu.RUnlock()
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
		url+"/jobs/"+kind, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out := &forwarded{status: resp.StatusCode}
	out.body, err = io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return nil, err
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		out.retryAfter, _ = strconv.Atoi(ra)
	}
	return out, nil
}

// idempotentKind reports whether a kind's jobs may be safely re-executed
// after an ambiguous failure. Every canned kind is a pure function of
// (seed, params) — same input, same checksum — except webfetch, whose
// body touches the outside world.
func idempotentKind(kind string) bool { return kind != string(parcserve.KindWebFetch) }

// handleJob is the routing loop: primary by shard, spill on 429, retry
// on transport death, bounded attempts, explicit final answer. Exactly
// one of completed/rejected is incremented per accepted request — that
// is the whole ledger argument.
func (rt *Router) handleJob(w http.ResponseWriter, r *http.Request) {
	kind := r.PathValue("kind")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		rt.accepted.Add(1)
		rt.reject(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	rt.accepted.Add(1)

	node := rt.pickFirst(kind)
	if node == nil {
		rt.reject(w, http.StatusServiceUnavailable, "no routable nodes")
		return
	}

	tried := map[string]bool{}
	maxRetryAfter := 0
	sawNon429 := false
	transportErrs := 0
	failedOver := false
	var firstNode string = node.id
	for attempt := 0; ; attempt++ {
		tried[node.id] = true
		fwd, ferr := rt.forward(r, node, kind, body)
		switch {
		case ferr != nil:
			if r.Context().Err() != nil {
				// The CLIENT gave up (disconnect or its own deadline) —
				// the node is innocent. Settle as an explicit rejection
				// and do not poison the membership.
				rt.reject(w, http.StatusBadGateway, "client gone: "+r.Context().Err().Error())
				return
			}
			// Transport failure: the node is dead, partitioned, or the
			// chaos injector said so. Ambiguous — the job may or may not
			// have executed — so only idempotent kinds are retried.
			rt.MarkDown(node.id, "transport: "+ferr.Error())
			if !idempotentKind(kind) {
				rt.cfg.Events.Add(EvFailover, node.id,
					fmt.Sprintf("%s: non-idempotent %s not retried", ferr, kind))
				rt.reject(w, http.StatusBadGateway,
					fmt.Sprintf("node %s failed mid-job and %s is not idempotent: %v", node.id, kind, ferr))
				return
			}
			transportErrs++
			rt.failovers.Add(1)
			rt.cfg.Events.Add(EvFailover, node.id, ferr.Error())
			failedOver = true
			sawNon429 = true
		case fwd.status == http.StatusTooManyRequests:
			// The worker is saturated: spill to the least-loaded peer
			// instead of surfacing 429 — the client only sees 429 when
			// the whole cluster is saturated.
			rt.spills.Add(1)
			rt.cfg.Events.Add(EvSpill, node.id, "429 from worker")
			if fwd.retryAfter > maxRetryAfter {
				maxRetryAfter = fwd.retryAfter
			}
		case fwd.status == http.StatusServiceUnavailable:
			// Draining: not an error, just not a destination.
			rt.cfg.Events.Add(EvSpill, node.id, "503 draining")
			sawNon429 = true
		default:
			// A definitive answer (200 or a real worker error): relay it.
			rt.relay(w, r, kind, node.id, firstNode, fwd, body, failedOver, tried)
			return
		}
		if attempt >= rt.cfg.RetryMax {
			break
		}
		next := rt.pickSpill(tried)
		if next == nil {
			break
		}
		if ferr != nil {
			// Back off only after transport errors: the replacement node
			// is healthy but the cluster just lost capacity, and a
			// stampede of instant retries is how thundering herds start.
			rt.cfg.Sleep(rt.retryDelay(transportErrs))
		}
		node = next
	}

	// Out of nodes or attempts. If every answer was "saturated", the
	// client gets the honest cluster-wide 429 with the largest
	// Retry-After any worker suggested.
	if !sawNon429 && maxRetryAfter > 0 {
		rt.saturated.Add(1)
		rt.cfg.Events.Add(EvSaturated, "", fmt.Sprintf("all %d nodes 429", len(tried)))
		w.Header().Set("Retry-After", strconv.Itoa(maxRetryAfter))
		rt.reject(w, http.StatusTooManyRequests, "cluster saturated")
		return
	}
	rt.reject(w, http.StatusBadGateway,
		fmt.Sprintf("no node could run the job (%d tried)", len(tried)))
}

// retryDelay is the capped exponential failover backoff.
func (rt *Router) retryDelay(n int) time.Duration {
	d := rt.cfg.RetryBackoff
	for i := 1; i < n; i++ {
		d *= 2
		if d >= rt.cfg.RetryBackoffMax {
			return rt.cfg.RetryBackoffMax
		}
	}
	if d > rt.cfg.RetryBackoffMax {
		d = rt.cfg.RetryBackoffMax
	}
	return d
}

// relay copies a worker's definitive answer to the client and settles
// the ledger. A successful failed-over job optionally gets its checksum
// re-verified on a different node (VerifyRetries).
func (rt *Router) relay(w http.ResponseWriter, r *http.Request, kind, nodeID, firstNode string,
	fwd *forwarded, body []byte, failedOver bool, tried map[string]bool) {
	if fwd.status == http.StatusOK && failedOver && rt.cfg.VerifyRetries {
		rt.verifyRetry(r, kind, nodeID, fwd, body, tried)
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Parccluster-Node", nodeID)
	if failedOver {
		w.Header().Set("X-Parccluster-Retried", "1")
		w.Header().Set("X-Parccluster-First-Node", firstNode)
	}
	w.WriteHeader(fwd.status)
	_, _ = w.Write(fwd.body)
	if fwd.status == http.StatusOK {
		rt.completed.Add(1)
	} else {
		rt.rejected.Add(1)
	}
}

// verifyRetry re-executes a failed-over job on yet another node and
// compares checksums — the runtime proof that a retried job is the same
// answer. Mismatches are counted, logged, and (in the A11 ablation)
// fatal to the experiment.
func (rt *Router) verifyRetry(r *http.Request, kind, nodeID string, fwd *forwarded, body []byte, tried map[string]bool) {
	var got struct {
		Checksum uint64 `json:"checksum"`
	}
	if err := json.Unmarshal(fwd.body, &got); err != nil {
		return
	}
	other := rt.pickSpill(tried)
	if other == nil || other.id == nodeID {
		return
	}
	fwd2, err := rt.forward(r, other, kind, body)
	if err != nil || fwd2.status != http.StatusOK {
		return // verification is best-effort; the answer already stands
	}
	var again struct {
		Checksum uint64 `json:"checksum"`
	}
	if err := json.Unmarshal(fwd2.body, &again); err != nil {
		return
	}
	rt.verified.Add(1)
	if again.Checksum != got.Checksum {
		rt.mismatch.Add(1)
		rt.cfg.Events.Add(EvVerify, other.id,
			fmt.Sprintf("MISMATCH kind=%s %d != %d", kind, again.Checksum, got.Checksum))
		return
	}
	rt.cfg.Events.Add(EvVerify, other.id, "ok kind="+kind)
}

// reject answers a request with an explicit error and settles it as
// rejected — the "explicitly-rejected" half of the no-lost-jobs ledger.
func (rt *Router) reject(w http.ResponseWriter, code int, msg string) {
	rt.rejected.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// ClusterStatz is the router's /statz document.
type ClusterStatz struct {
	Nodes  []nodeSnapshot `json:"nodes"`
	Ledger Ledger         `json:"ledger"`
	Shards map[string]string `json:"shards"`
}

// Statz assembles the router snapshot, including the current shard
// primary for every known kind (the operator's view of the hash ring).
func (rt *Router) Statz() ClusterStatz {
	st := ClusterStatz{Nodes: rt.Nodes(), Ledger: rt.Ledger(), Shards: map[string]string{}}
	rt.mu.RLock()
	for _, k := range parcserve.Kinds() {
		st.Shards[string(k)] = rt.ring.primary(string(k))
	}
	rt.mu.RUnlock()
	return st
}

func (rt *Router) handleStatz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(rt.Statz())
}

func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, "{\"status\":\"ok\",\"role\":\"router\"}\n")
}

func (rt *Router) handleEventz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/jsonl")
	_ = rt.cfg.Events.WriteJSONL(w)
}

func (rt *Router) handleKill(w http.ResponseWriter, r *http.Request) {
	node := r.PathValue("node")
	rt.cfg.Events.Add(EvNodeKill, node, "via /chaos/kill")
	if err := rt.cfg.OnKill(node); err != nil {
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprintf(w, "{\"error\":%q}\n", err.Error())
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, "{\"killed\":%q}\n", node)
}
