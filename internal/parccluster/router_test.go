package parccluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"parc751/internal/parcserve"
)

// fakeWorker is a scriptable stand-in for a parcserve node: it answers
// every POST /jobs/{kind} with a fixed status (and optional Retry-After)
// so router policy can be tested without running real pools.
type fakeWorker struct {
	mu         sync.Mutex
	status     int
	retryAfter int
	checksum   uint64
	hits       atomic.Int64
	srv        *httptest.Server
}

func newFakeWorker(status int) *fakeWorker {
	f := &fakeWorker{status: status}
	f.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f.hits.Add(1)
		f.mu.Lock()
		status, ra, sum := f.status, f.retryAfter, f.checksum
		f.mu.Unlock()
		if ra > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(ra))
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		if status == http.StatusOK {
			_ = json.NewEncoder(w).Encode(parcserve.JobResult{Kind: "sort", Checksum: sum})
		} else {
			_ = json.NewEncoder(w).Encode(map[string]string{"error": "scripted"})
		}
	}))
	return f
}

func (f *fakeWorker) set(status, retryAfter int) {
	f.mu.Lock()
	f.status = status
	f.retryAfter = retryAfter
	f.mu.Unlock()
}

// noSleep silences the failover backoff so tests run instantly.
func noSleep(time.Duration) {}

// newTestRouter fronts the fakes with backoff sleeping disabled and
// returns the router plus the ring's preference order for kind, so each
// test can script the primary and the spill target by position rather
// than guessing which id hashes first.
func newTestRouter(t *testing.T, kind string, fakes map[string]*fakeWorker) (*Router, []string) {
	t.Helper()
	rt := NewRouter(RouterConfig{Sleep: noSleep})
	for id, f := range fakes {
		rt.SetNode(id, f.srv.URL)
	}
	rt.mu.RLock()
	pref := append([]string(nil), rt.ring.preference(kind)...)
	rt.mu.RUnlock()
	if len(pref) != len(fakes) {
		t.Fatalf("preference %v does not cover all %d nodes", pref, len(fakes))
	}
	return rt, pref
}

func postJob(t *testing.T, h http.Handler, kind string, body any) *httptest.ResponseRecorder {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/jobs/"+kind, bytes.NewReader(b))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// TestRouterSpillOn429 is the satellite regression: the shard primary
// answering 429 must not surface to the client while a peer has
// capacity — the router spills and the client sees 200.
func TestRouterSpillOn429(t *testing.T) {
	fakes := map[string]*fakeWorker{
		"a": newFakeWorker(http.StatusOK),
		"b": newFakeWorker(http.StatusOK),
	}
	for _, f := range fakes {
		defer f.srv.Close()
	}
	rt, pref := newTestRouter(t, "sort", fakes)
	defer rt.Close()
	fakes[pref[0]].set(http.StatusTooManyRequests, 3) // saturate the primary

	w := postJob(t, rt, "sort", parcserve.JobRequest{Seed: 1, N: 10})
	if w.Code != http.StatusOK {
		t.Fatalf("client saw %d, want 200 via spill; body %s", w.Code, w.Body)
	}
	if got := w.Header().Get("X-Parccluster-Node"); got != pref[1] {
		t.Fatalf("answered by %q, want spill target %q", got, pref[1])
	}
	led := rt.Ledger()
	if led.Spills == 0 {
		t.Fatal("spill not recorded in ledger")
	}
	if led.Completed != 1 || led.Rejected != 0 || led.Lost != 0 {
		t.Fatalf("ledger off: %+v", led)
	}
	if fakes[pref[0]].hits.Load() == 0 {
		t.Fatal("primary was never offered the job — sharding bypassed")
	}
}

// TestRouterClusterSaturated429: when every node answers 429, the client
// gets one honest 429 carrying the LARGEST Retry-After any worker
// suggested — never a silent drop, never the smallest hint.
func TestRouterClusterSaturated429(t *testing.T) {
	fakes := map[string]*fakeWorker{
		"a": newFakeWorker(http.StatusTooManyRequests),
		"b": newFakeWorker(http.StatusTooManyRequests),
	}
	for _, f := range fakes {
		defer f.srv.Close()
	}
	fakes["a"].set(http.StatusTooManyRequests, 3)
	fakes["b"].set(http.StatusTooManyRequests, 7)
	rt, _ := newTestRouter(t, "sort", fakes)
	defer rt.Close()

	w := postJob(t, rt, "sort", parcserve.JobRequest{Seed: 1, N: 10})
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("client saw %d, want cluster-wide 429; body %s", w.Code, w.Body)
	}
	if ra := w.Header().Get("Retry-After"); ra != "7" {
		t.Fatalf("Retry-After = %q, want the max (7)", ra)
	}
	led := rt.Ledger()
	if led.Saturated != 1 {
		t.Fatalf("saturated counter = %d, want 1", led.Saturated)
	}
	if led.Rejected != 1 || led.Completed != 0 || led.Lost != 0 {
		t.Fatalf("ledger off: %+v", led)
	}
}

// TestRouterNoNodes: a router with no routable members answers 503
// explicitly (rejected in the ledger), it does not hang or 500.
func TestRouterNoNodes(t *testing.T) {
	rt := NewRouter(RouterConfig{Sleep: noSleep})
	defer rt.Close()
	w := postJob(t, rt, "sort", parcserve.JobRequest{})
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("got %d, want 503", w.Code)
	}
	led := rt.Ledger()
	if led.Accepted != 1 || led.Rejected != 1 || led.Lost != 0 {
		t.Fatalf("ledger off: %+v", led)
	}
}

// TestRouterFailoverOnTransportError: the primary is dead at the TCP
// level; an idempotent job fails over to the survivor and the client
// sees 200 plus the retried/first-node headers.
func TestRouterFailoverOnTransportError(t *testing.T) {
	fakes := map[string]*fakeWorker{
		"a": newFakeWorker(http.StatusOK),
		"b": newFakeWorker(http.StatusOK),
	}
	rt, pref := newTestRouter(t, "sort", fakes)
	defer rt.Close()
	fakes[pref[0]].srv.Close() // primary dies: connection refused
	defer fakes[pref[1]].srv.Close()

	w := postJob(t, rt, "sort", parcserve.JobRequest{Seed: 1, N: 10})
	if w.Code != http.StatusOK {
		t.Fatalf("client saw %d, want 200 via failover; body %s", w.Code, w.Body)
	}
	if w.Header().Get("X-Parccluster-Retried") != "1" {
		t.Fatal("missing X-Parccluster-Retried header")
	}
	if got := w.Header().Get("X-Parccluster-First-Node"); got != pref[0] {
		t.Fatalf("X-Parccluster-First-Node = %q, want %q", got, pref[0])
	}
	led := rt.Ledger()
	if led.Failovers == 0 {
		t.Fatal("failover not recorded")
	}
	if led.Completed != 1 || led.Lost != 0 {
		t.Fatalf("ledger off: %+v", led)
	}
	// The dead node must now be marked down…
	for _, n := range rt.Nodes() {
		if n.ID == pref[0] && n.Alive {
			t.Fatalf("dead node %s still alive in membership", pref[0])
		}
	}
	// …so the next job for the same kind skips it entirely.
	before := fakes[pref[1]].hits.Load()
	if w := postJob(t, rt, "sort", parcserve.JobRequest{Seed: 2, N: 10}); w.Code != http.StatusOK {
		t.Fatalf("post-markdown job saw %d", w.Code)
	}
	if fakes[pref[1]].hits.Load() != before+1 {
		t.Fatal("survivor did not take the follow-up job directly")
	}
}

// TestRouterNonIdempotentNotRetried: a webfetch job that dies in
// transit is ambiguous — it may have hit the outside world — so the
// router answers an explicit 502 instead of re-executing it.
func TestRouterNonIdempotentNotRetried(t *testing.T) {
	fakes := map[string]*fakeWorker{
		"a": newFakeWorker(http.StatusOK),
		"b": newFakeWorker(http.StatusOK),
	}
	rt, pref := newTestRouter(t, "webfetch", fakes)
	defer rt.Close()
	fakes[pref[0]].srv.Close() // primary for webfetch dies
	defer fakes[pref[1]].srv.Close()

	w := postJob(t, rt, "webfetch", parcserve.JobRequest{})
	if w.Code != http.StatusBadGateway {
		t.Fatalf("client saw %d, want explicit 502; body %s", w.Code, w.Body)
	}
	if fakes[pref[1]].hits.Load() != 0 {
		t.Fatal("non-idempotent job was re-executed on another node")
	}
	led := rt.Ledger()
	if led.Failovers != 0 {
		t.Fatalf("failovers = %d, want 0 for non-idempotent kind", led.Failovers)
	}
	if led.Rejected != 1 || led.Lost != 0 {
		t.Fatalf("ledger off: %+v", led)
	}
}

// TestRouterDrainingNodeSkipped: a 503 from a draining worker spills to
// a peer without counting as saturation.
func TestRouterDrainingNodeSkipped(t *testing.T) {
	fakes := map[string]*fakeWorker{
		"a": newFakeWorker(http.StatusOK),
		"b": newFakeWorker(http.StatusOK),
	}
	for _, f := range fakes {
		defer f.srv.Close()
	}
	rt, pref := newTestRouter(t, "sort", fakes)
	defer rt.Close()
	fakes[pref[0]].set(http.StatusServiceUnavailable, 0)

	w := postJob(t, rt, "sort", parcserve.JobRequest{Seed: 1, N: 10})
	if w.Code != http.StatusOK {
		t.Fatalf("client saw %d, want 200 via peer; body %s", w.Code, w.Body)
	}
	led := rt.Ledger()
	if led.Saturated != 0 {
		t.Fatalf("draining node counted as saturation: %+v", led)
	}
}

// TestRouterStatzShardsAndRefresh: /statz exposes the shard primary per
// kind, and RefreshLoad resurrects a mark-downed node whose /statz
// answers again (restart reclaims its arcs — the node was never removed
// from the ring).
func TestRouterStatzShardsAndRefresh(t *testing.T) {
	srv := parcserve.NewServer(parcserve.Config{NodeID: "real0", Workers: 2, MaxConcurrent: 2})
	hs := httptest.NewServer(srv)
	defer hs.Close()
	defer func() { _ = srv.Drain(5 * time.Second) }()

	rt := NewRouter(RouterConfig{Sleep: noSleep})
	defer rt.Close()
	rt.SetNode("real0", hs.URL)

	st := rt.Statz()
	for _, k := range parcserve.Kinds() {
		if st.Shards[string(k)] != "real0" {
			t.Fatalf("shard primary for %s = %q, want real0", k, st.Shards[string(k)])
		}
	}

	rt.MarkDown("real0", "test")
	if w := postJob(t, rt, "sort", parcserve.JobRequest{}); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("marked-down node still routable: %d", w.Code)
	}
	rt.RefreshLoad() // node's /statz answers → resurrection
	for _, n := range rt.Nodes() {
		if n.ID == "real0" && !n.Alive {
			t.Fatal("RefreshLoad did not resurrect an answering node")
		}
	}
	if w := postJob(t, rt, "sort", parcserve.JobRequest{Seed: 3, N: 8}); w.Code != http.StatusOK {
		t.Fatalf("resurrected node not routable: %d %s", w.Code, w.Body)
	}
}

// TestRouterWorkerErrorRelayedVerbatim: a definitive worker rejection
// (400 for a bad kind) is relayed as-is, not retried on a peer — only
// transport death and saturation trigger rerouting.
func TestRouterWorkerErrorRelayed(t *testing.T) {
	fakes := map[string]*fakeWorker{
		"a": newFakeWorker(http.StatusBadRequest),
		"b": newFakeWorker(http.StatusBadRequest),
	}
	for _, f := range fakes {
		defer f.srv.Close()
	}
	rt, pref := newTestRouter(t, "sort", fakes)
	defer rt.Close()

	w := postJob(t, rt, "sort", parcserve.JobRequest{})
	if w.Code != http.StatusBadRequest {
		t.Fatalf("got %d, want relayed 400", w.Code)
	}
	if fakes[pref[1]].hits.Load() != 0 {
		t.Fatal("definitive worker error was retried on a peer")
	}
	led := rt.Ledger()
	if led.Rejected != 1 || led.Completed != 0 || led.Lost != 0 {
		t.Fatalf("ledger off: %+v", led)
	}
}

// TestRouterEventzAndHealthz exercises the observability endpoints.
func TestRouterEventzAndHealthz(t *testing.T) {
	rt := NewRouter(RouterConfig{Sleep: noSleep})
	defer rt.Close()
	rt.SetNode("n0", "http://127.0.0.1:1") // unreachable, just membership

	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	w := httptest.NewRecorder()
	rt.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("router /healthz = %d", w.Code)
	}

	req = httptest.NewRequest(http.MethodGet, "/eventz", nil)
	w = httptest.NewRecorder()
	rt.ServeHTTP(w, req)
	if w.Code != http.StatusOK || !bytes.Contains(w.Body.Bytes(), []byte(EvMarkUp)) {
		t.Fatalf("router /eventz = %d body %s", w.Code, w.Body)
	}
}
