package parccluster

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"parc751/internal/faultinject"
	"parc751/internal/parcserve"
)

// retryCase is one row of the idempotency table: a kind plus fixed
// (seed, params). The claim under test is the contract idempotentKind
// rests on — the answer is a pure function of the request, so executing
// it on ANY node, any number of times, yields the same checksum.
type retryCase struct {
	kind string
	req  parcserve.JobRequest
}

func retryTable() []retryCase {
	return []retryCase{
		{"sort", parcserve.JobRequest{Seed: 42, N: 500}},
		{"textsearch", parcserve.JobRequest{Seed: 42, N: 4}},
		{"pdfsearch", parcserve.JobRequest{Seed: 42, N: 3}},
		{"thumbs", parcserve.JobRequest{Seed: 42, N: 2}},
		{"matmul", parcserve.JobRequest{Seed: 42, N: 16}},
		{"spin", parcserve.JobRequest{Seed: 42, SpinMs: 5}},
	}
}

// nodeCfg is the small per-node sizing every retry test uses.
func nodeCfg(id string) parcserve.Config {
	return parcserve.Config{NodeID: id, Workers: 2, MaxConcurrent: 4}
}

// referenceChecksum executes the job on a standalone parcserve (no
// router, no chaos) — the ground truth the failed-over answer must match.
func referenceChecksum(t *testing.T, kind string, req parcserve.JobRequest) uint64 {
	t.Helper()
	srv := parcserve.NewServer(nodeCfg("ref"))
	defer func() { _ = srv.Drain(10 * time.Second) }()
	w := postJob(t, srv, kind, req)
	if w.Code != http.StatusOK {
		t.Fatalf("reference %s job failed: %d %s", kind, w.Code, w.Body)
	}
	var res parcserve.JobResult
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	return res.Checksum
}

func decodeChecksum(t *testing.T, body []byte) uint64 {
	t.Helper()
	var res parcserve.JobResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("decoding job result: %v (%s)", err, body)
	}
	return res.Checksum
}

// TestRetryIdempotencyAcrossNodes: for every idempotent kind, partition
// the router→primary path on the request's first transport event (the
// job never reaches the node), and assert the failed-over execution on a
// different node returns the reference checksum. Three nodes plus
// VerifyRetries makes the router itself re-execute the retried job on
// the third node and compare — Verified must count, Mismatch must not.
func TestRetryIdempotencyAcrossNodes(t *testing.T) {
	for _, tc := range retryTable() {
		t.Run(tc.kind, func(t *testing.T) {
			want := referenceChecksum(t, tc.kind, tc.req)

			inj := faultinject.New(faultinject.Plan{
				Name: "partition-first",
				Rules: []faultinject.Rule{{
					Site: faultinject.SiteTransport, Kind: faultinject.Error, Nth: 0, Count: 1,
				}},
			})
			rt := NewRouter(RouterConfig{Sleep: noSleep, Injector: inj, VerifyRetries: true})
			defer rt.Close()

			// Three real nodes; the injected Error fires before the request
			// reaches any transport, so the primary provably never executes
			// the first attempt — this is the pure partition case (the
			// execute-then-die case is TestRetryDoubleExecutionWindow).
			for _, id := range []string{"a", "b", "c"} {
				srv := parcserve.NewServer(nodeCfg(id))
				defer func() { _ = srv.Drain(10 * time.Second) }()
				hs := httptest.NewServer(srv)
				defer hs.Close()
				rt.SetNode(id, hs.URL)
			}

			w := postJob(t, rt, tc.kind, tc.req)
			if w.Code != http.StatusOK {
				t.Fatalf("failed-over %s job: %d %s", tc.kind, w.Code, w.Body)
			}
			if w.Header().Get("X-Parccluster-Retried") != "1" {
				t.Fatal("response not marked as retried")
			}
			if got := decodeChecksum(t, w.Body.Bytes()); got != want {
				t.Fatalf("failed-over checksum %d != reference %d", got, want)
			}
			led := rt.Ledger()
			if led.Failovers != 1 {
				t.Fatalf("failovers = %d, want 1", led.Failovers)
			}
			if led.Mismatch != 0 {
				t.Fatalf("verify mismatches: %+v", led)
			}
			if led.Verified != 1 {
				t.Fatalf("verified = %d, want 1 (third node re-executed the retry)", led.Verified)
			}
			if led.Lost != 0 || led.Completed != 1 {
				t.Fatalf("ledger off: %+v", led)
			}
			if inj.FiredAt(faultinject.SiteTransport, faultinject.Error) != 1 {
				t.Fatalf("injected faults fired = %d, want 1", inj.Fired())
			}
		})
	}
}

// TestRetryDoubleExecutionWindow is the nastier half of the idempotency
// argument: the primary EXECUTES the job to completion and then dies
// before the response escapes — the router cannot tell this from a node
// that never got the request. The retry therefore executes the job a
// second time on another node; the test proves both executions produced
// the identical checksum, which is exactly why re-execution is safe for
// idempotent kinds.
func TestRetryDoubleExecutionWindow(t *testing.T) {
	for _, tc := range retryTable() {
		t.Run(tc.kind, func(t *testing.T) {
			want := referenceChecksum(t, tc.kind, tc.req)

			// The treacherous node: runs the job for real, records the
			// checksum it computed, then aborts the connection instead of
			// answering.
			var executed atomic.Int64
			var firstSum atomic.Uint64
			srvA := parcserve.NewServer(nodeCfg("a"))
			defer func() { _ = srvA.Drain(10 * time.Second) }()
			hsA := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if !strings.HasPrefix(r.URL.Path, "/jobs/") {
					srvA.ServeHTTP(w, r)
					return
				}
				rec := httptest.NewRecorder()
				srvA.ServeHTTP(rec, r)
				if rec.Code == http.StatusOK {
					executed.Add(1)
					firstSum.Store(decodeChecksum(t, rec.Body.Bytes()))
					panic(http.ErrAbortHandler) // die AFTER completing, BEFORE responding
				}
				w.WriteHeader(rec.Code)
				_, _ = w.Write(rec.Body.Bytes())
			}))
			defer hsA.Close()

			srvB := parcserve.NewServer(nodeCfg("b"))
			defer func() { _ = srvB.Drain(10 * time.Second) }()
			hsB := httptest.NewServer(srvB)
			defer hsB.Close()

			rt := NewRouter(RouterConfig{Sleep: noSleep})
			defer rt.Close()
			// Register the treacherous server as the shard primary for this
			// kind, whichever id that is.
			scratch := newRing(64)
			scratch.add("a")
			scratch.add("b")
			if scratch.primary(tc.kind) == "a" {
				rt.SetNode("a", hsA.URL)
				rt.SetNode("b", hsB.URL)
			} else {
				rt.SetNode("a", hsB.URL)
				rt.SetNode("b", hsA.URL)
			}

			w := postJob(t, rt, tc.kind, tc.req)
			if w.Code != http.StatusOK {
				t.Fatalf("%s after double-execution window: %d %s", tc.kind, w.Code, w.Body)
			}
			if executed.Load() != 1 {
				t.Fatalf("primary executed %d times, want exactly 1 — the window never opened", executed.Load())
			}
			got := decodeChecksum(t, w.Body.Bytes())
			if got != want {
				t.Fatalf("retried checksum %d != reference %d", got, want)
			}
			if first := firstSum.Load(); first != got {
				t.Fatalf("two executions disagreed: first node computed %d, retry returned %d", first, got)
			}
			if w.Header().Get("X-Parccluster-Retried") != "1" {
				t.Fatal("response not marked as retried")
			}
			led := rt.Ledger()
			if led.Failovers != 1 || led.Completed != 1 || led.Lost != 0 {
				t.Fatalf("ledger off: %+v", led)
			}
		})
	}
}

// TestRetryWebfetchNeverDoubleExecutes pins the non-idempotent side of
// the table: a webfetch whose node dies mid-response must NOT run again
// — the second node sees zero data-plane traffic and the client gets an
// explicit 502.
func TestRetryWebfetchNeverDoubleExecutes(t *testing.T) {
	// The primary aborts every /jobs request without executing (webfetch
	// would touch the network; aborting first keeps the test hermetic —
	// the router can't distinguish abort-before from abort-after anyway).
	hsA := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	defer hsA.Close()
	var peerHits atomic.Int64
	hsB := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		peerHits.Add(1)
		w.WriteHeader(http.StatusOK)
	}))
	defer hsB.Close()

	rt := NewRouter(RouterConfig{Sleep: noSleep})
	defer rt.Close()
	scratch := newRing(64)
	scratch.add("a")
	scratch.add("b")
	if scratch.primary("webfetch") == "a" {
		rt.SetNode("a", hsA.URL)
		rt.SetNode("b", hsB.URL)
	} else {
		rt.SetNode("a", hsB.URL)
		rt.SetNode("b", hsA.URL)
	}

	w := postJob(t, rt, "webfetch", parcserve.JobRequest{URLs: []string{"http://127.0.0.1:1/x"}})
	if w.Code != http.StatusBadGateway {
		t.Fatalf("got %d, want explicit 502", w.Code)
	}
	if peerHits.Load() != 0 {
		t.Fatalf("webfetch re-executed %d times on the peer", peerHits.Load())
	}
	led := rt.Ledger()
	if led.Failovers != 0 || led.Rejected != 1 || led.Lost != 0 {
		t.Fatalf("ledger off: %+v", led)
	}
}
