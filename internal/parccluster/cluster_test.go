package parccluster

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"parc751/internal/parcserve"
	"parc751/internal/parcserve/loadtest"
)

// startTestFleet brings up a supervised in-process fleet fronted by a
// real TCP router and returns both plus a cleanup-registered stop.
func startTestFleet(t *testing.T, nodes int, cfg FleetConfig) (*Fleet, *httptest.Server) {
	t.Helper()
	cfg.Nodes = nodes
	if cfg.Starter == nil {
		cfg.Starter = &LocalStarter{Config: parcserve.Config{
			Workers: 2, MaxConcurrent: 4, MaxQueue: 64,
			DrainGrace: 10 * time.Millisecond,
		}}
	}
	f := NewFleet(cfg)
	if err := f.Start(); err != nil {
		_ = f.Stop()
		t.Fatalf("fleet start: %v", err)
	}
	front := httptest.NewServer(f.Router())
	t.Cleanup(func() {
		front.Close()
		_ = f.Stop()
	})
	return f, front
}

// TestClusterKillNodeMidLoadZeroLost is the no-lost-jobs contract end to
// end: a 2-node supervised fleet under open-loop load has one node
// murdered mid-run; every request must still be answered (loadtest
// Dropped == 0), the ledger must balance exactly once traffic stops
// (Lost == 0), and the supervisor must bring the victim back.
func TestClusterKillNodeMidLoadZeroLost(t *testing.T) {
	f, front := startTestFleet(t, 2, FleetConfig{
		RestartDelay: 50 * time.Millisecond,
		Router: RouterConfig{
			RetryMax:      3,
			LoadPollEvery: 25 * time.Millisecond,
			VerifyRetries: true,
		},
	})

	var wg sync.WaitGroup
	var res *loadtest.Result
	wg.Add(1)
	go func() {
		defer wg.Done()
		res = loadtest.Run(loadtest.Config{
			BaseURL:  front.URL,
			Seed:     751,
			Requests: 120,
			Rate:     300,
			Mix: []loadtest.JobSpec{
				{Kind: "sort", Body: map[string]any{"seed": 7, "n": 400}, Weight: 3},
				{Kind: "spin", Body: map[string]any{"spin_ms": 5}, Weight: 2},
				{Kind: "matmul", Body: map[string]any{"seed": 7, "n": 12}, Weight: 1},
			},
		})
	}()

	// Let some load land, then murder node0 mid-run.
	time.Sleep(100 * time.Millisecond)
	if err := f.KillNode("node0"); err != nil {
		t.Fatalf("KillNode: %v", err)
	}
	wg.Wait()

	if res.Dropped != 0 {
		t.Fatalf("loadtest dropped %d requests — the cluster went silent: %v", res.Dropped, res.Codes)
	}
	led := f.Router().Ledger()
	if led.Lost != 0 {
		t.Fatalf("ledger lost %d jobs: %+v", led.Lost, led)
	}
	if led.Accepted != led.Completed+led.Rejected {
		t.Fatalf("ledger does not balance: %+v", led)
	}
	if led.Accepted < int64(res.Sent) {
		t.Fatalf("router accepted %d < sent %d", led.Accepted, res.Sent)
	}
	if led.Mismatch != 0 {
		t.Fatalf("retry verification mismatches: %+v", led)
	}
	if res.Codes[http.StatusOK] == 0 {
		t.Fatalf("no request succeeded at all: %v", res.Codes)
	}

	// The supervisor must restart node0: poll until it is alive and ready
	// again in the router's membership.
	deadline := time.Now().Add(10 * time.Second)
	for {
		alive := false
		for _, n := range f.Router().Nodes() {
			if n.ID == "node0" && n.Alive && n.Ready {
				alive = true
			}
		}
		if alive {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("node0 never came back; events:\n%v", f.Events().Events())
		}
		time.Sleep(20 * time.Millisecond)
	}
	// And the restarted node must actually serve.
	if w := postJob(t, f.Router(), "sort", parcserve.JobRequest{Seed: 9, N: 100}); w.Code != http.StatusOK {
		t.Fatalf("post-restart job: %d %s", w.Code, w.Body)
	}

	ev := f.Events()
	if ev.Count(EvNodeKill) != 1 || ev.Count(EvNodeExit) == 0 || ev.Count(EvNodeRestart) == 0 {
		t.Fatalf("event log missing the kill/exit/restart story: %v", ev.Events())
	}
}

// TestClusterGracefulStopDrains: Stop() takes the polite path — nodes
// drain, incarnations exit clean (no errKilled), and the supervisor
// returns nil.
func TestClusterGracefulStopDrains(t *testing.T) {
	f := NewFleet(FleetConfig{Nodes: 2, Starter: &LocalStarter{Config: parcserve.Config{
		Workers: 2, MaxConcurrent: 2,
	}}})
	if err := f.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	if w := postJob(t, f.Router(), "sort", parcserve.JobRequest{Seed: 1, N: 100}); w.Code != http.StatusOK {
		t.Fatalf("warm-up job: %d %s", w.Code, w.Body)
	}
	if err := f.Stop(); err != nil {
		t.Fatalf("graceful stop returned %v", err)
	}
	if n := len(f.Runner().Dead()); n != 0 {
		t.Fatalf("%d nodes declared dead during a graceful stop", n)
	}
}

// TestClusterCrashLoopRetiresNode: a node whose incarnations die
// instantly on every start trips the crash-loop circuit; the fleet
// removes it from the ring and the survivor carries all shards.
func TestClusterCrashLoopRetiresNode(t *testing.T) {
	inner := &LocalStarter{Config: parcserve.Config{Workers: 2, MaxConcurrent: 2}}
	f, front := startTestFleet(t, 2, FleetConfig{
		Starter: &sabotageStarter{inner: inner, victim: "node1"},
		// Fast supervision so the circuit trips in test time.
		RestartDelay:    time.Millisecond,
		MaxDelay:        2 * time.Millisecond,
		CrashLoopK:      3,
		CrashLoopWindow: time.Minute,
		Router:          RouterConfig{RetryMax: 3},
	})

	// Kill the victim once; every restart incarnation self-destructs, so
	// the circuit must retire it.
	if err := f.KillNode("node1"); err != nil {
		t.Fatalf("KillNode: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for len(f.Runner().Dead()) == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("crash-looping node never retired; events:\n%v", f.Events().Events())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The dead node is out of the membership entirely…
	for _, n := range f.Router().Nodes() {
		if n.ID == "node1" {
			t.Fatal("retired node still in router membership")
		}
	}
	// …and every kind now shards to the survivor; jobs still complete.
	resp, err := http.Post(front.URL+"/jobs/sort", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("one-node cluster job: %d", resp.StatusCode)
	}
}

// sabotageStarter wraps a NodeStarter: after the victim's first
// incarnation, every restart dies immediately — a deterministic
// crash-looper.
type sabotageStarter struct {
	inner  NodeStarter
	victim string

	mu     sync.Mutex
	starts map[string]int
}

func (s *sabotageStarter) Start(id string) (NodeHandle, error) {
	s.mu.Lock()
	if s.starts == nil {
		s.starts = map[string]int{}
	}
	s.starts[id]++
	n := s.starts[id]
	s.mu.Unlock()
	h, err := s.inner.Start(id)
	if err != nil {
		return nil, err
	}
	if id == s.victim && n > 1 {
		// Let the incarnation pass its health check, then die — a fast
		// deterministic crash loop that doesn't stall the fleet's
		// readiness wait.
		go func() {
			time.Sleep(30 * time.Millisecond)
			_ = h.Kill()
		}()
	}
	return h, nil
}
