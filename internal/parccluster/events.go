package parccluster

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Cluster event types, the vocabulary of the event log. Routing-decision
// events (spill, failover, saturated) are logged because they are rare
// and each one is a diagnosis clue; per-request routing is not.
const (
	EvNodeStart   = "node-start"   // supervisor started an incarnation
	EvNodeReady   = "node-ready"   // node answered /healthz and joined the router
	EvNodeExit    = "node-exit"    // incarnation exited (detail: error)
	EvNodeRestart = "node-restart" // restart scheduled (detail: backoff)
	EvNodeDead    = "node-dead"    // crash-loop circuit retired the node
	EvNodeKill    = "node-kill"    // chaos: abrupt kill requested
	EvMarkDown    = "mark-down"    // router stopped routing to the node
	EvMarkUp      = "mark-up"      // router resumed routing to the node
	EvSpill       = "spill"        // 429 from a worker, job spilled onward
	EvFailover    = "failover"     // transport error, job retried elsewhere
	EvSaturated   = "saturated"    // every node 429'd, client sees 429
	EvVerify      = "verify"       // retry checksum verification (detail: ok/mismatch)
	EvFleetStop   = "fleet-stop"   // orderly shutdown began
)

// ClusterEvent is one entry in the cluster event log. AtMs is relative
// to log creation: convenient for humans, and deliberately not part of
// any determinism assertion — the replay coordinate for chaos runs is
// the faultinject trace, not wall time.
type ClusterEvent struct {
	Seq    int64  `json:"seq"`
	AtMs   int64  `json:"at_ms"`
	Type   string `json:"type"`
	Node   string `json:"node,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// EventLog is the append-only record of cluster lifecycle and routing
// anomalies — what the CI smoke uploads as an artifact when an assertion
// fails, so a red run carries its own post-mortem.
type EventLog struct {
	mu     sync.Mutex
	start  time.Time
	events []ClusterEvent
}

// NewEventLog returns an empty log.
func NewEventLog() *EventLog {
	return &EventLog{start: time.Now()}
}

// Add appends one event.
func (l *EventLog) Add(typ, node, detail string) {
	l.mu.Lock()
	l.events = append(l.events, ClusterEvent{
		Seq:    int64(len(l.events)),
		AtMs:   time.Since(l.start).Milliseconds(),
		Type:   typ,
		Node:   node,
		Detail: detail,
	})
	l.mu.Unlock()
}

// Events returns a copy of the log.
func (l *EventLog) Events() []ClusterEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]ClusterEvent(nil), l.events...)
}

// Count returns how many events of the given type were logged.
func (l *EventLog) Count(typ string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, e := range l.events {
		if e.Type == typ {
			n++
		}
	}
	return n
}

// WriteJSONL renders the log as JSON lines (one event per line — the
// artifact format, greppable and diffable).
func (l *EventLog) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range l.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}
