package supervisor

import (
	"sync"
	"time"
)

// Clock abstracts time for the runner so restart-delay behaviour is
// testable without sleeping: the backoff wait is a select on After plus
// the runner's dying channel, and tests drive a ManualClock instead of
// the wall clock (the juju runner keeps its RestartDelay patchable for
// the same reason; an injectable clock is the stricter version).
type Clock interface {
	Now() time.Time
	After(d time.Duration) <-chan time.Time
}

// realClock is the production Clock.
type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// ManualClock is a Clock advanced explicitly by tests. Timers set with
// After fire when Advance moves the clock past their deadline; nothing
// fires on its own.
type ManualClock struct {
	mu     sync.Mutex
	now    time.Time
	timers []manualTimer
}

type manualTimer struct {
	at time.Time
	ch chan time.Time
}

// NewManualClock returns a manual clock starting at start.
func NewManualClock(start time.Time) *ManualClock {
	return &ManualClock{now: start}
}

// Now returns the clock's current instant.
func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// After returns a channel that receives once the clock has been advanced
// to or past d from now.
func (c *ManualClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan time.Time, 1)
	at := c.now.Add(d)
	if d <= 0 {
		ch <- at
		return ch
	}
	c.timers = append(c.timers, manualTimer{at: at, ch: ch})
	return ch
}

// Advance moves the clock forward by d, firing every timer whose deadline
// it reaches.
func (c *ManualClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	kept := c.timers[:0]
	for _, t := range c.timers {
		if !t.at.After(c.now) {
			t.ch <- c.now
		} else {
			kept = append(kept, t)
		}
	}
	c.timers = kept
}

// Waiters reports how many After timers are pending — tests use it to
// synchronise on "the runner is now in its backoff wait" without racing
// the control loop.
func (c *ManualClock) Waiters() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.timers)
}
