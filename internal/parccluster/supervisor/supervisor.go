// Package supervisor is a restart-on-failure task runner in the style of
// juju's cmd/jujud tasks runner (SNIPPETS.md Snippet 2): tasks are
// started under a Runner with a StartTask/Stop/Wait contract, errors are
// classified fatal or non-fatal by a caller-supplied predicate, and a
// non-fatal crash restarts the task after an exponential, jittered
// backoff while a fatal error takes the whole runner down and surfaces
// from Wait. On top of the juju shape it adds a crash-loop circuit: a
// task that fails K times inside a sliding window is declared dead and
// never restarted, so a node that can no longer start does not consume
// restart bandwidth forever — the fleet above observes the death and
// routes around it.
//
// parccluster runs every worker node under a Runner; the Clock is
// injectable so the restart-delay tests advance time manually instead of
// sleeping.
package supervisor

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"parc751/internal/xrand"
)

// Task is one supervised unit of work, the result of a StartFunc. Stop
// requests termination (it must be safe to call more than once and must
// cause Wait to return); Wait blocks until the task has exited and
// returns its exit error — nil for a clean exit.
type Task interface {
	Stop()
	Wait() error
}

// StartFunc creates and starts a task. It is called again on every
// restart, so all per-incarnation state (the process, the listener)
// belongs inside the returned Task.
type StartFunc func() (Task, error)

// ErrDead is wrapped into the error a crash-looping task is retired
// with; errors.Is(err, ErrDead) identifies it in the event log.
var ErrDead = errors.New("supervisor: task crash-looped and was declared dead")

// ErrStopped is returned by StartTask on a runner that is already dying.
var ErrStopped = errors.New("supervisor: runner is stopping")

// EventKind classifies a supervision event.
type EventKind uint8

const (
	// EventStarted: a task incarnation is running.
	EventStarted EventKind = iota
	// EventExited: a task incarnation exited (Err carries why).
	EventExited
	// EventRestarting: a non-fatal exit scheduled a restart after Delay.
	EventRestarting
	// EventDead: the crash-loop circuit retired the task.
	EventDead
	// EventFatal: a fatal error is taking the runner down.
	EventFatal
)

var eventNames = []string{"started", "exited", "restarting", "dead", "fatal"}

// String returns the kind's short name.
func (k EventKind) String() string {
	if int(k) < len(eventNames) {
		return eventNames[k]
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// Event is one supervision state transition, delivered to the runner's
// OnEvent callback (the fleet's cluster event log subscribes here).
type Event struct {
	Kind   EventKind
	TaskID string
	Err    error
	Delay  time.Duration // EventRestarting only
}

// Config tunes a Runner. Zero values take the documented defaults.
type Config struct {
	// IsFatal classifies an exit error: fatal stops the whole runner.
	// nil exits (clean task completion) are never passed to it — they
	// restart like a non-fatal crash, because a supervised node has no
	// business exiting on its own. Required.
	IsFatal func(error) bool
	// MoreImportant reports whether err0 should be surfaced from Wait in
	// preference to err1 when several fatal errors race (default: first
	// fatal wins).
	MoreImportant func(err0, err1 error) bool
	// RestartDelay is the first backoff (default 100ms); MaxDelay caps
	// the exponential growth (default 5s).
	RestartDelay time.Duration
	MaxDelay     time.Duration
	// CrashLoopK and CrashLoopWindow set the circuit: K exits within the
	// window retires the task (defaults 5 / 30s). CrashLoopK <= 0
	// disables the circuit. A task incarnation that survives longer than
	// the window resets its backoff and failure history.
	CrashLoopK      int
	CrashLoopWindow time.Duration
	// JitterSeed keys the deterministic backoff jitter (±25%), so a
	// seeded cluster run restarts on a repeatable schedule.
	JitterSeed uint64
	// Clock defaults to the wall clock; tests inject a ManualClock.
	Clock Clock
	// OnEvent, when set, observes every supervision transition. Called
	// from supervision goroutines — it must be safe for concurrent use
	// and must not block.
	OnEvent func(Event)
}

func (c *Config) fill() {
	if c.IsFatal == nil {
		panic("supervisor: Config.IsFatal is required")
	}
	if c.MoreImportant == nil {
		c.MoreImportant = func(err0, err1 error) bool { return false }
	}
	if c.RestartDelay <= 0 {
		c.RestartDelay = 100 * time.Millisecond
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 5 * time.Second
	}
	if c.CrashLoopK == 0 {
		c.CrashLoopK = 5
	}
	if c.CrashLoopWindow <= 0 {
		c.CrashLoopWindow = 30 * time.Second
	}
	if c.Clock == nil {
		c.Clock = realClock{}
	}
}

// taskState is the runner's handle on one supervised task.
type taskState struct {
	id      string
	task    Task          // live incarnation, nil while down or backing off
	stopc   chan struct{} // closed by StopTask: wakes a backoff immediately
	stopped bool          // individual stop requested — do not restart
	dead    bool          // crash-loop circuit fired
}

// Runner supervises a set of named tasks.
type Runner struct {
	cfg Config

	mu       sync.Mutex
	tasks    map[string]*taskState
	finalErr error
	dying    bool

	dyingc chan struct{} // closed exactly once when the runner starts dying
	wg     sync.WaitGroup
}

// NewRunner builds a runner from cfg.
func NewRunner(cfg Config) *Runner {
	cfg.fill()
	return &Runner{
		cfg:    cfg,
		tasks:  map[string]*taskState{},
		dyingc: make(chan struct{}),
	}
}

// StartTask begins supervising a new task under id. It returns an error
// if the runner is stopping or the id is already supervised (a dead id
// may be reused — the circuit retired that incarnation, not the name).
func (r *Runner) StartTask(id string, start StartFunc) error {
	r.mu.Lock()
	if r.dying {
		r.mu.Unlock()
		return ErrStopped
	}
	if st, ok := r.tasks[id]; ok && !st.dead {
		r.mu.Unlock()
		return fmt.Errorf("supervisor: task %q already started", id)
	}
	st := &taskState{id: id, stopc: make(chan struct{})}
	r.tasks[id] = st
	r.wg.Add(1)
	r.mu.Unlock()
	go r.supervise(st, start)
	return nil
}

// StopTask requests one task stop without restarting it. It does not
// wait; a task backing off wakes and exits immediately.
func (r *Runner) StopTask(id string) {
	r.mu.Lock()
	st, ok := r.tasks[id]
	var t Task
	if ok && !st.stopped {
		st.stopped = true
		close(st.stopc)
		t = st.task
	}
	r.mu.Unlock()
	if t != nil {
		t.Stop()
	}
}

// Stop kills every task, waits for the runner to die, and returns the
// same error Wait does.
func (r *Runner) Stop() error {
	r.kill(nil)
	return r.Wait()
}

// Wait blocks until the runner dies — a fatal task error or Stop — and
// returns the fatal error, or nil after a clean Stop.
func (r *Runner) Wait() error {
	<-r.dyingc
	r.wg.Wait()
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.finalErr
}

// Dead lists the tasks retired by the crash-loop circuit.
func (r *Runner) Dead() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for id, st := range r.tasks {
		if st.dead {
			out = append(out, id)
		}
	}
	return out
}

// Live reports how many tasks currently have a running incarnation.
func (r *Runner) Live() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, st := range r.tasks {
		if st.task != nil {
			n++
		}
	}
	return n
}

// kill starts the runner dying: records err (under MoreImportant
// preference), closes dyingc once, and stops every live incarnation.
func (r *Runner) kill(err error) {
	r.mu.Lock()
	if err != nil {
		if r.finalErr == nil || r.cfg.MoreImportant(err, r.finalErr) {
			r.finalErr = err
		}
	}
	already := r.dying
	r.dying = true
	var live []Task
	for _, st := range r.tasks {
		if st.task != nil {
			live = append(live, st.task)
		}
	}
	r.mu.Unlock()
	if !already {
		close(r.dyingc)
	}
	for _, t := range live {
		t.Stop()
	}
}

func (r *Runner) event(kind EventKind, id string, err error, delay time.Duration) {
	if r.cfg.OnEvent != nil {
		r.cfg.OnEvent(Event{Kind: kind, TaskID: id, Err: err, Delay: delay})
	}
}

// isDying reports whether the runner has started dying.
func (r *Runner) isDying() bool {
	select {
	case <-r.dyingc:
		return true
	default:
		return false
	}
}

// supervise owns one task's whole lifecycle: start, wait, classify,
// back off, restart — until the task is stopped, retired, or the runner
// dies. Running the loop per task (rather than multiplexing one control
// goroutine) keeps each backoff an honest select that Stop can wake.
func (r *Runner) supervise(st *taskState, start StartFunc) {
	defer r.wg.Done()
	jitter := xrand.New(r.cfg.JitterSeed ^ hashID(st.id))
	consecutive := 0
	var recent []time.Time
	for {
		t, err := start()
		if err == nil {
			r.mu.Lock()
			st.task = t
			stopped := st.stopped
			r.mu.Unlock()
			if stopped || r.isDying() {
				// Stop raced the start: the new incarnation was never
				// registered when the stoppers swept live tasks.
				t.Stop()
			}
			r.event(EventStarted, st.id, nil, 0)
			startedAt := r.cfg.Clock.Now()
			err = t.Wait()
			r.mu.Lock()
			st.task = nil
			r.mu.Unlock()
			if r.cfg.Clock.Now().Sub(startedAt) >= r.cfg.CrashLoopWindow {
				// A long healthy run forgives history: back off from the
				// base again and restart the crash-loop count.
				consecutive = 0
				recent = recent[:0]
			}
		}
		r.event(EventExited, st.id, err, 0)

		r.mu.Lock()
		stopped := st.stopped
		r.mu.Unlock()
		if stopped || r.isDying() {
			return
		}
		if err != nil && r.cfg.IsFatal(err) {
			r.event(EventFatal, st.id, err, 0)
			r.kill(err)
			return
		}

		// Non-fatal (or clean) exit of a task that should still be
		// running: crash-loop circuit first, then backoff and restart.
		now := r.cfg.Clock.Now()
		kept := recent[:0]
		for _, ts := range recent {
			if now.Sub(ts) < r.cfg.CrashLoopWindow {
				kept = append(kept, ts)
			}
		}
		recent = append(kept, now)
		if r.cfg.CrashLoopK > 0 && len(recent) >= r.cfg.CrashLoopK {
			r.mu.Lock()
			st.dead = true
			r.mu.Unlock()
			r.event(EventDead, st.id, fmt.Errorf("%w (%d exits in %v, last: %v)",
				ErrDead, len(recent), r.cfg.CrashLoopWindow, err), 0)
			return
		}
		consecutive++
		delay := r.backoff(consecutive, jitter)
		r.event(EventRestarting, st.id, err, delay)
		select {
		case <-r.cfg.Clock.After(delay):
		case <-r.dyingc:
			return
		case <-st.stopc:
			return
		}
	}
}

// backoff returns the nth consecutive restart delay: exponential from
// RestartDelay, capped at MaxDelay, with deterministic ±25% jitter so
// simultaneous crashers do not restart in lockstep.
func (r *Runner) backoff(consecutive int, jitter *xrand.Rand) time.Duration {
	d := r.cfg.RestartDelay
	for i := 1; i < consecutive; i++ {
		d *= 2
		if d >= r.cfg.MaxDelay {
			d = r.cfg.MaxDelay
			break
		}
	}
	if d > r.cfg.MaxDelay {
		d = r.cfg.MaxDelay
	}
	// jitter in [-d/4, +d/4), quantised to avoid sub-ns silliness.
	j := time.Duration(jitter.Uint64()%uint64(d/2+1)) - d/4
	return d + j
}

// hashID folds a task id into a jitter-stream selector (FNV-1a).
func hashID(id string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return h
}
