// Restart-delay tests in the style of juju's runner_test.go (SNIPPETS.md
// Snippet 2): a test task whose death the test controls, assertions on
// started/stopped transitions, and — stricter than the original, which
// patched RestartDelay to zero — a ManualClock, so backoff behaviour is
// asserted exactly without any test ever sleeping through a real delay.
//
// These tests are written to fail against a no-op supervisor: restarts
// must actually happen (TestNonFatalRestart...), fatal errors must
// actually stop the runner and surface (TestFatal...), and the
// crash-loop circuit must actually retire the task (TestCrashLoop...).
package supervisor

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func noneFatal(error) bool { return false }
func allFatal(error) bool  { return true }

// testTask is a controllable supervised task: the test makes it die by
// sending on die; Stop makes Wait return nil.
type testTask struct {
	die  chan error
	stop chan struct{}
	once sync.Once
}

func (t *testTask) Stop() { t.once.Do(func() { close(t.stop) }) }

func (t *testTask) Wait() error {
	select {
	case err := <-t.die:
		return err
	case <-t.stop:
		return nil
	}
}

// testStarter hands each started incarnation to the test.
type testStarter struct {
	mu       sync.Mutex
	startErr error
	starts   int
	started  chan *testTask
}

func newTestStarter() *testStarter {
	return &testStarter{started: make(chan *testTask, 16)}
}

func (s *testStarter) start() (Task, error) {
	s.mu.Lock()
	s.starts++
	err := s.startErr
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	t := &testTask{die: make(chan error), stop: make(chan struct{})}
	s.started <- t
	return t, nil
}

func (s *testStarter) startCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.starts
}

// assertStarted waits for the next incarnation.
func (s *testStarter) assertStarted(t *testing.T) *testTask {
	t.Helper()
	select {
	case tk := <-s.started:
		return tk
	case <-time.After(5 * time.Second):
		t.Fatal("task was not started")
		return nil
	}
}

// assertNotStarted asserts no new incarnation appears within a short
// grace period (the clock is manual, so nothing legitimate is pending).
func (s *testStarter) assertNotStarted(t *testing.T) {
	t.Helper()
	select {
	case <-s.started:
		t.Fatal("task was restarted before its backoff elapsed")
	case <-time.After(50 * time.Millisecond):
	}
}

// waitBackoffArmed blocks until the runner is parked in its backoff wait.
func waitBackoffArmed(t *testing.T, clk *ManualClock) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for clk.Waiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("runner never armed a backoff timer")
		}
		time.Sleep(time.Millisecond)
	}
}

const testDelay = 100 * time.Millisecond

func newTestRunner(clk *ManualClock, isFatal func(error) bool, crashK int, onEvent func(Event)) *Runner {
	return NewRunner(Config{
		IsFatal:         isFatal,
		RestartDelay:    testDelay,
		MaxDelay:        time.Second,
		CrashLoopK:      crashK,
		CrashLoopWindow: 30 * time.Second,
		Clock:           clk,
		OnEvent:         onEvent,
	})
}

func TestOneTaskStartStop(t *testing.T) {
	clk := NewManualClock(time.Unix(0, 0))
	r := newTestRunner(clk, noneFatal, -1, nil)
	s := newTestStarter()
	if err := r.StartTask("id", s.start); err != nil {
		t.Fatal(err)
	}
	s.assertStarted(t)
	if err := r.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if got := s.startCount(); got != 1 {
		t.Fatalf("starts = %d, want 1", got)
	}
}

func TestNonFatalRestartAfterBackoff(t *testing.T) {
	clk := NewManualClock(time.Unix(0, 0))
	r := newTestRunner(clk, noneFatal, -1, nil)
	s := newTestStarter()
	if err := r.StartTask("id", s.start); err != nil {
		t.Fatal(err)
	}
	tk := s.assertStarted(t)

	tk.die <- errors.New("non-fatal crash")
	waitBackoffArmed(t, clk)
	// Before the backoff elapses there must be no restart: advance well
	// under the jittered minimum (0.75 × delay).
	clk.Advance(testDelay / 2)
	s.assertNotStarted(t)
	// Past the jittered maximum (1.25 × delay) the restart must happen.
	clk.Advance(testDelay)
	s.assertStarted(t)
	if got := s.startCount(); got != 2 {
		t.Fatalf("starts = %d, want 2", got)
	}
	if err := r.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
}

func TestBackoffGrowsExponentially(t *testing.T) {
	clk := NewManualClock(time.Unix(0, 0))
	var mu sync.Mutex
	var delays []time.Duration
	r := newTestRunner(clk, noneFatal, -1, func(e Event) {
		if e.Kind == EventRestarting {
			mu.Lock()
			delays = append(delays, e.Delay)
			mu.Unlock()
		}
	})
	s := newTestStarter()
	if err := r.StartTask("id", s.start); err != nil {
		t.Fatal(err)
	}
	tk := s.assertStarted(t)
	for i := 0; i < 3; i++ {
		tk.die <- errors.New("crash")
		waitBackoffArmed(t, clk)
		clk.Advance(2 * time.Second) // past any jittered delay
		tk = s.assertStarted(t)
	}
	_ = r.Stop()
	mu.Lock()
	defer mu.Unlock()
	if len(delays) != 3 {
		t.Fatalf("restarts = %d, want 3", len(delays))
	}
	// Nominal delays are d, 2d, 4d; jitter is ±25%, so consecutive
	// jittered delays must still be strictly increasing.
	for i := 1; i < len(delays); i++ {
		if delays[i] <= delays[i-1] {
			t.Fatalf("backoff did not grow: %v", delays)
		}
	}
	lo, hi := testDelay*3/4, testDelay*5/4
	if delays[0] < lo || delays[0] > hi {
		t.Fatalf("first delay %v outside jitter band [%v, %v]", delays[0], lo, hi)
	}
}

func TestFatalErrorNoRestartWaitReturnsIt(t *testing.T) {
	clk := NewManualClock(time.Unix(0, 0))
	r := newTestRunner(clk, allFatal, -1, nil)
	s := newTestStarter()
	if err := r.StartTask("id", s.start); err != nil {
		t.Fatal(err)
	}
	tk := s.assertStarted(t)
	dieErr := errors.New("error when running")
	tk.die <- dieErr
	if err := r.Wait(); err != dieErr {
		t.Fatalf("Wait = %v, want %v", err, dieErr)
	}
	s.assertNotStarted(t)
	if got := s.startCount(); got != 1 {
		t.Fatalf("starts = %d, want 1 (fatal must not restart)", got)
	}
}

func TestFatalStartErrorWaitReturnsIt(t *testing.T) {
	clk := NewManualClock(time.Unix(0, 0))
	r := newTestRunner(clk, allFatal, -1, nil)
	s := newTestStarter()
	s.startErr = errors.New("cannot start test task")
	if err := r.StartTask("id", s.start); err != nil {
		t.Fatal(err)
	}
	if err := r.Wait(); err != s.startErr {
		t.Fatalf("Wait = %v, want %v", err, s.startErr)
	}
}

func TestStopDuringBackoffWakesImmediately(t *testing.T) {
	clk := NewManualClock(time.Unix(0, 0))
	r := newTestRunner(clk, noneFatal, -1, nil)
	s := newTestStarter()
	if err := r.StartTask("id", s.start); err != nil {
		t.Fatal(err)
	}
	tk := s.assertStarted(t)
	tk.die <- errors.New("crash")
	waitBackoffArmed(t, clk)
	// The clock never advances: Stop alone must end the backoff wait.
	done := make(chan error, 1)
	go func() { done <- r.Stop() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Stop: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Stop hung: backoff wait did not wake on Stop")
	}
	s.assertNotStarted(t)
}

func TestStopTaskDuringBackoffWakesImmediately(t *testing.T) {
	clk := NewManualClock(time.Unix(0, 0))
	r := newTestRunner(clk, noneFatal, -1, nil)
	s := newTestStarter()
	if err := r.StartTask("id", s.start); err != nil {
		t.Fatal(err)
	}
	tk := s.assertStarted(t)
	tk.die <- errors.New("crash")
	waitBackoffArmed(t, clk)
	r.StopTask("id")
	// The supervision goroutine must exit without a clock advance; a
	// clean Stop afterwards proves nothing is still pending.
	done := make(chan error, 1)
	go func() { done <- r.Stop() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Stop: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("StopTask did not wake the backoff wait")
	}
	s.assertNotStarted(t)
}

func TestCrashLoopCircuitRetiresTask(t *testing.T) {
	clk := NewManualClock(time.Unix(0, 0))
	var mu sync.Mutex
	var dead []Event
	r := newTestRunner(clk, noneFatal, 3, func(e Event) {
		if e.Kind == EventDead {
			mu.Lock()
			dead = append(dead, e)
			mu.Unlock()
		}
	})
	s := newTestStarter()
	if err := r.StartTask("id", s.start); err != nil {
		t.Fatal(err)
	}
	// Three rapid crashes (the manual clock never moves, so all fall in
	// one window): two restarts, then the circuit retires the task.
	tk := s.assertStarted(t)
	for i := 0; i < 2; i++ {
		tk.die <- errors.New("crash")
		waitBackoffArmed(t, clk)
		clk.Advance(2 * time.Second)
		tk = s.assertStarted(t)
	}
	tk.die <- errors.New("crash")
	// Dead: no further restart, however far the clock advances.
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(dead)
		mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("crash-loop circuit never fired")
		}
		time.Sleep(time.Millisecond)
	}
	clk.Advance(time.Minute)
	s.assertNotStarted(t)
	if got := s.startCount(); got != 3 {
		t.Fatalf("starts = %d, want 3", got)
	}
	if ds := r.Dead(); len(ds) != 1 || ds[0] != "id" {
		t.Fatalf("Dead() = %v, want [id]", ds)
	}
	mu.Lock()
	if !errors.Is(dead[0].Err, ErrDead) {
		t.Fatalf("dead event error %v does not wrap ErrDead", dead[0].Err)
	}
	mu.Unlock()
	// A dead id may be restarted fresh (new incarnation, clean history).
	if err := r.StartTask("id", s.start); err != nil {
		t.Fatalf("restarting a dead id: %v", err)
	}
	s.assertStarted(t)
	_ = r.Stop()
}

func TestHealthyRunResetsCrashHistory(t *testing.T) {
	clk := NewManualClock(time.Unix(0, 0))
	var mu sync.Mutex
	var delays []time.Duration
	r := newTestRunner(clk, noneFatal, 3, func(e Event) {
		if e.Kind == EventRestarting {
			mu.Lock()
			delays = append(delays, e.Delay)
			mu.Unlock()
		}
	})
	s := newTestStarter()
	if err := r.StartTask("id", s.start); err != nil {
		t.Fatal(err)
	}
	tk := s.assertStarted(t)
	// Two crashes, then an incarnation that outlives the crash-loop
	// window: its death must restart from the base delay, not 4d, and
	// must not trip the K=3 circuit.
	for i := 0; i < 2; i++ {
		tk.die <- errors.New("crash")
		waitBackoffArmed(t, clk)
		clk.Advance(2 * time.Second)
		tk = s.assertStarted(t)
	}
	clk.Advance(31 * time.Second) // healthy run longer than the window
	tk.die <- errors.New("crash")
	waitBackoffArmed(t, clk)
	clk.Advance(2 * time.Second)
	s.assertStarted(t)
	_ = r.Stop()
	mu.Lock()
	defer mu.Unlock()
	if len(delays) != 3 {
		t.Fatalf("restarts = %d, want 3 (circuit must not have fired)", len(delays))
	}
	lo, hi := testDelay*3/4, testDelay*5/4
	if delays[2] < lo || delays[2] > hi {
		t.Fatalf("post-healthy-run delay %v not reset to base band [%v, %v]", delays[2], lo, hi)
	}
}

func TestStartTaskAfterStopRefused(t *testing.T) {
	clk := NewManualClock(time.Unix(0, 0))
	r := newTestRunner(clk, noneFatal, -1, nil)
	if err := r.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := r.StartTask("id", newTestStarter().start); !errors.Is(err, ErrStopped) {
		t.Fatalf("StartTask after Stop = %v, want ErrStopped", err)
	}
}

func TestDuplicateStartRefused(t *testing.T) {
	clk := NewManualClock(time.Unix(0, 0))
	r := newTestRunner(clk, noneFatal, -1, nil)
	s := newTestStarter()
	if err := r.StartTask("id", s.start); err != nil {
		t.Fatal(err)
	}
	s.assertStarted(t)
	if err := r.StartTask("id", s.start); err == nil {
		t.Fatal("duplicate StartTask succeeded")
	}
	_ = r.Stop()
}
