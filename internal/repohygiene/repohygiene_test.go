package repohygiene

import (
	"strings"
	"testing"
	"testing/fstest"
)

func findRule(vs []Violation, rule string) []Violation {
	var out []Violation
	for _, v := range vs {
		if v.Rule == rule {
			out = append(out, v)
		}
	}
	return out
}

func cleanTree() []File {
	return []File{
		{Path: "src/Main.java", Content: []byte("class Main {}\n")},
		{Path: "src/worker/Pool.java", Content: []byte("class Pool {}\n")},
		{Path: "test/MainTest.java", Content: []byte("class MainTest {}\n")},
		{Path: "bench/SortBench.java", Content: []byte("class SortBench {}\n")},
		{Path: "scripts/run.sh", Content: []byte("#!/bin/sh\necho hi\n")},
		{Path: "doc/README.txt", Content: []byte("hello\n")},
	}
}

func TestCleanTreePasses(t *testing.T) {
	vs := Audit(PARCDefaults(), cleanTree())
	if len(vs) != 0 {
		t.Fatalf("clean tree has violations: %v", vs)
	}
}

func TestCommittedArtifacts(t *testing.T) {
	files := append(cleanTree(),
		File{Path: "src/Main.class"},
		File{Path: "lib.jar"},
	)
	vs := Audit(PARCDefaults(), files)
	arts := findRule(vs, "committed-artifact")
	if len(arts) != 2 {
		t.Fatalf("artifact violations = %d: %v", len(arts), vs)
	}
	for _, v := range arts {
		if v.Severity != Error {
			t.Errorf("artifact severity = %v", v.Severity)
		}
	}
}

func TestCommittedBuildDir(t *testing.T) {
	files := append(cleanTree(), File{Path: "build/output/Main.class"})
	vs := Audit(PARCDefaults(), files)
	if len(findRule(vs, "committed-build-dir")) == 0 {
		t.Fatalf("build dir not flagged: %v", vs)
	}
}

func TestBackslashPaths(t *testing.T) {
	files := append(cleanTree(), File{Path: `src\windows\Thing.java`})
	vs := Audit(PARCDefaults(), files)
	if len(findRule(vs, "path-separator")) != 1 {
		t.Fatalf("backslash path not flagged: %v", vs)
	}
}

func TestCRLFInScriptIsError(t *testing.T) {
	files := append(cleanTree(),
		File{Path: "scripts/deploy.sh", Content: []byte("#!/bin/sh\r\necho win\r\n")})
	vs := Audit(PARCDefaults(), files)
	crlf := findRule(vs, "crlf-line-endings")
	if len(crlf) != 1 || crlf[0].Severity != Error {
		t.Fatalf("script CRLF handling wrong: %v", vs)
	}
}

func TestCRLFInSourceIsWarning(t *testing.T) {
	files := append(cleanTree(),
		File{Path: "src/Windowsy.java", Content: []byte("class W {}\r\n")})
	vs := Audit(PARCDefaults(), files)
	crlf := findRule(vs, "crlf-line-endings")
	if len(crlf) != 1 || crlf[0].Severity != Warning {
		t.Fatalf("source CRLF handling wrong: %v", vs)
	}
}

func TestMissingShebang(t *testing.T) {
	files := append(cleanTree(),
		File{Path: "scripts/build.sh", Content: []byte("echo no shebang\n")})
	vs := Audit(PARCDefaults(), files)
	if len(findRule(vs, "missing-shebang")) != 1 {
		t.Fatalf("missing shebang not flagged: %v", vs)
	}
}

func TestHardcodedWindowsPath(t *testing.T) {
	files := append(cleanTree(),
		File{Path: "src/Config.java", Content: []byte(`String dir = "C:\\Users\\student";` + "\n")})
	vs := Audit(PARCDefaults(), files)
	if len(findRule(vs, "hardcoded-windows-path")) != 1 {
		t.Fatalf("drive-letter path not flagged: %v", vs)
	}
}

func TestCaseCollision(t *testing.T) {
	files := append(cleanTree(),
		File{Path: "src/util.java"},
		File{Path: "src/Util.java"},
	)
	vs := Audit(PARCDefaults(), files)
	if len(findRule(vs, "case-collision")) != 1 {
		t.Fatalf("case collision not flagged: %v", vs)
	}
}

func TestMissingSrcLayout(t *testing.T) {
	files := []File{{Path: "Main.java"}, {Path: "stuff/Helper.java"}}
	vs := Audit(PARCDefaults(), files)
	layout := findRule(vs, "layout-separation")
	if len(layout) == 0 {
		t.Fatalf("missing src/ not flagged: %v", vs)
	}
	foundError := false
	for _, v := range layout {
		if v.Severity == Error {
			foundError = true
		}
	}
	if !foundError {
		t.Fatal("missing src/ should be an error")
	}
}

func TestUnknownTopLevelDirWarns(t *testing.T) {
	files := append(cleanTree(), File{Path: "random/Notes.java"})
	vs := Audit(PARCDefaults(), files)
	if len(findRule(vs, "layout-separation")) != 1 {
		t.Fatalf("stray top-level dir not flagged: %v", vs)
	}
}

func TestSeveritySortOrder(t *testing.T) {
	files := append(cleanTree(),
		File{Path: "random/x.txt"},   // warning
		File{Path: "src/Main.class"}, // error
	)
	vs := Audit(PARCDefaults(), files)
	if len(vs) < 2 {
		t.Fatalf("violations = %v", vs)
	}
	if vs[0].Severity != Error {
		t.Fatalf("errors must sort first: %v", vs)
	}
}

func TestErrorsFilter(t *testing.T) {
	files := append(cleanTree(),
		File{Path: "random/x.txt"},
		File{Path: "src/Main.class"},
	)
	vs := Audit(PARCDefaults(), files)
	es := Errors(vs)
	for _, v := range es {
		if v.Severity != Error {
			t.Fatalf("Errors returned %v", v)
		}
	}
	if len(es) == 0 || len(es) == len(vs) {
		t.Fatalf("filter wrong: %d of %d", len(es), len(vs))
	}
}

func TestAuditFS(t *testing.T) {
	fsys := fstest.MapFS{
		"src/Main.java":    {Data: []byte("class Main {}\n")},
		"test/T.java":      {Data: []byte("class T {}\n")},
		"build/Main.class": {Data: []byte{0xCA, 0xFE}},
	}
	vs, err := AuditFS(PARCDefaults(), fsys, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(findRule(vs, "committed-artifact")) != 1 {
		t.Fatalf("fs audit missed artifact: %v", vs)
	}
	if len(findRule(vs, "committed-build-dir")) != 1 {
		t.Fatalf("fs audit missed build dir: %v", vs)
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Rule: "r", Path: "p", Severity: Error, Detail: "d"}
	s := v.String()
	for _, want := range []string{"error", "r", "p", "d"} {
		if !strings.Contains(s, want) {
			t.Errorf("violation string %q missing %q", s, want)
		}
	}
	if Warning.String() != "warning" {
		t.Error("warning string wrong")
	}
}

func BenchmarkAudit(b *testing.B) {
	files := cleanTree()
	for i := 0; i < 200; i++ {
		files = append(files, File{Path: "src/gen/File" + string(rune('a'+i%26)) + ".java",
			Content: []byte("class X {}\n")})
	}
	cfg := PARCDefaults()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Audit(cfg, files)
	}
}
