// Package repohygiene reproduces the PARC group's repository protocols
// (§IV-A): students committing to the group's subversion had to follow
// "good hygiene in the directory structure" — separating source from
// tests and benchmarks, excluding build artifacts from version control,
// and keeping everything working on Linux ("taking minor differences such
// as file separators and new lines into consideration"). This package is
// the checker the instructors could have pointed at a group's tree: it
// audits a project layout (in memory or on disk) and reports violations.
package repohygiene

import (
	"fmt"
	"io/fs"
	"path"
	"regexp"
	"sort"
	"strings"

	"parc751/internal/report"
)

// driveLetterRe matches a Windows drive-letter path: a single letter,
// colon, backslash, where the letter is not preceded by another
// identifier character or a %-verb. The shape constraint keeps ordinary
// colon-then-escape sequences in string literals ("findings" + colon +
// newline escape) and format strings ("%d" + colon + escape) from being
// mistaken for paths.
var driveLetterRe = regexp.MustCompile(`(^|[^A-Za-z0-9_%])[A-Za-z]:\\`)

// Severity ranks a finding. It is the shared course-report severity, so
// parcaudit and parcvet findings compose into one report (see
// internal/report).
type Severity = report.Severity

// Severity levels.
const (
	Warning = report.Warning
	Error   = report.Error
)

// Violation is one hygiene finding.
type Violation struct {
	Rule     string
	Path     string
	Severity Severity
	Detail   string
}

// String renders the violation.
func (v Violation) String() string {
	return fmt.Sprintf("%s: %s: %s (%s)", v.Severity, v.Rule, v.Path, v.Detail)
}

// Finding converts the violation into the shared course-report vocabulary.
func (v Violation) Finding() report.Finding {
	return report.Finding{
		Tool:     "parcaudit",
		Rule:     v.Rule,
		Pos:      v.Path,
		Severity: v.Severity,
		Detail:   v.Detail,
	}
}

// Findings converts a violation list for report.Render.
func Findings(vs []Violation) []report.Finding {
	out := make([]report.Finding, len(vs))
	for i, v := range vs {
		out[i] = v.Finding()
	}
	return out
}

// File is one file in the audited tree: a slash-separated path plus
// (optionally) its content for the portability checks.
type File struct {
	Path    string
	Content []byte
}

// Config tunes the audit.
type Config struct {
	// ArtifactSuffixes are build products that must not be committed.
	ArtifactSuffixes []string
	// ArtifactDirs are directories (path segments) that must not be
	// committed at all.
	ArtifactDirs []string
	// RequireLayout demands src/test/bench separation at the top level.
	RequireLayout bool
	// SourceDirs are the accepted top-level code directories when
	// RequireLayout is set.
	SourceDirs []string
}

// PARCDefaults returns the protocol the paper describes: Java-era build
// artifacts excluded, src/test/bench separation, Linux portability.
func PARCDefaults() Config {
	return Config{
		ArtifactSuffixes: []string{".class", ".jar", ".o", ".exe", ".dll", ".log", ".tmp"},
		ArtifactDirs:     []string{"bin", "build", "out", "target", ".settings"},
		RequireLayout:    true,
		SourceDirs:       []string{"src", "test", "bench", "doc", "scripts"},
	}
}

// Audit checks the tree against the config and returns violations sorted
// by (severity desc, path).
func Audit(cfg Config, files []File) []Violation {
	var out []Violation
	seenLower := map[string]string{}
	topLevel := map[string]bool{}

	for _, f := range files {
		p := f.Path
		if strings.Contains(p, "\\") {
			out = append(out, Violation{
				Rule: "path-separator", Path: p, Severity: Error,
				Detail: "backslash in committed path breaks Linux checkouts",
			})
		}
		clean := path.Clean(strings.ReplaceAll(p, "\\", "/"))
		segs := strings.Split(clean, "/")
		topLevel[segs[0]] = true

		// Artifact suffixes.
		for _, suf := range cfg.ArtifactSuffixes {
			if strings.HasSuffix(clean, suf) {
				out = append(out, Violation{
					Rule: "committed-artifact", Path: p, Severity: Error,
					Detail: fmt.Sprintf("%s files must be excluded from version control", suf),
				})
			}
		}
		// Artifact directories.
		for _, seg := range segs[:maxInt(len(segs)-1, 0)] {
			for _, bad := range cfg.ArtifactDirs {
				if seg == bad {
					out = append(out, Violation{
						Rule: "committed-build-dir", Path: p, Severity: Error,
						Detail: fmt.Sprintf("directory %q is a build output", bad),
					})
				}
			}
		}
		// Case-insensitive collisions (break macOS/Windows checkouts of
		// the shared repository).
		lower := strings.ToLower(clean)
		if prev, ok := seenLower[lower]; ok && prev != clean {
			out = append(out, Violation{
				Rule: "case-collision", Path: p, Severity: Error,
				Detail: fmt.Sprintf("collides with %q on case-insensitive filesystems", prev),
			})
		} else {
			seenLower[lower] = clean
		}

		// Content checks (Linux portability, §IV-A).
		if len(f.Content) > 0 {
			if isScript(clean) {
				if strings.Contains(string(f.Content), "\r\n") {
					out = append(out, Violation{
						Rule: "crlf-line-endings", Path: p, Severity: Error,
						Detail: "CRLF newlines break shell scripts on the PARC Linux systems",
					})
				}
				if !strings.HasPrefix(string(f.Content), "#!") {
					out = append(out, Violation{
						Rule: "missing-shebang", Path: p, Severity: Warning,
						Detail: "scripts need an interpreter line to run on Linux",
					})
				}
			} else if isSource(clean) && strings.Contains(string(f.Content), "\r\n") {
				out = append(out, Violation{
					Rule: "crlf-line-endings", Path: p, Severity: Warning,
					Detail: "mixed newline conventions churn the subversion history",
				})
			}
			if isSource(clean) && driveLetterRe.Match(f.Content) {
				out = append(out, Violation{
					Rule: "hardcoded-windows-path", Path: p, Severity: Error,
					Detail: "drive-letter paths cannot work on the PARC Linux systems",
				})
			}
		}
	}

	// Layout separation.
	if cfg.RequireLayout {
		allowed := map[string]bool{}
		for _, d := range cfg.SourceDirs {
			allowed[d] = true
		}
		hasSrc := false
		for d := range topLevel {
			if d == "src" {
				hasSrc = true
			}
			if !allowed[d] && !strings.HasPrefix(d, ".") && strings.Contains(d, ".") == false {
				out = append(out, Violation{
					Rule: "layout-separation", Path: d, Severity: Warning,
					Detail: fmt.Sprintf("top-level directory %q is outside the agreed layout %v", d, cfg.SourceDirs),
				})
			}
		}
		if !hasSrc && len(files) > 0 {
			out = append(out, Violation{
				Rule: "layout-separation", Path: ".", Severity: Error,
				Detail: "no src/ directory: source must be separated from tests and benchmarks",
			})
		}
	}

	sort.Slice(out, func(i, j int) bool {
		if out[i].Severity != out[j].Severity {
			return out[i].Severity > out[j].Severity
		}
		if out[i].Path != out[j].Path {
			return out[i].Path < out[j].Path
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

// Errors filters the violations to severity Error.
func Errors(vs []Violation) []Violation {
	var out []Violation
	for _, v := range vs {
		if v.Severity == Error {
			out = append(out, v)
		}
	}
	return out
}

// AuditFS loads a tree from an fs.FS (reading contents of files up to
// maxBytes each) and audits it — the on-disk entry point used by the CLI.
func AuditFS(cfg Config, fsys fs.FS, maxBytes int64) ([]Violation, error) {
	var files []File
	err := fs.WalkDir(fsys, ".", func(p string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		f := File{Path: p}
		if info, ierr := d.Info(); ierr == nil && info.Size() <= maxBytes {
			if data, rerr := fs.ReadFile(fsys, p); rerr == nil {
				f.Content = data
			}
		}
		files = append(files, f)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return Audit(cfg, files), nil
}

func isScript(p string) bool {
	return strings.HasSuffix(p, ".sh") || strings.HasPrefix(path.Base(p), "run") &&
		path.Ext(p) == ""
}

func isSource(p string) bool {
	switch path.Ext(p) {
	case ".go", ".java", ".c", ".h", ".cpp", ".py", ".sh":
		return true
	}
	return false
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
