// The serve conformance suite: every test here is named TestServe* so
// the CI serve-smoke step (`go test -race -run 'TestServe|TestConformance'`)
// picks up exactly this file plus the ptask conformance table. The tests
// drive the server over real HTTP (httptest) because the disciplines
// under test — admission, batching, drain — live in the interaction
// between handler goroutines and the runtime, not in any one function.
package parcserve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"parc751/internal/parcserve/loadtest"
	"parc751/internal/workload"
)

// newTestServer builds a Server + httptest front end and registers
// cleanup that drains both.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		_ = s.Drain(5 * time.Second)
		ts.Close()
	})
	return s, ts
}

// postJob POSTs one job and returns the status code plus decoded body.
func postJob(t *testing.T, base string, kind Kind, req JobRequest) (int, *JobResult, map[string]any) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(fmt.Sprintf("%s/jobs/%s", base, kind), "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", kind, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusOK {
		var res JobResult
		if err := json.Unmarshal(raw, &res); err != nil {
			t.Fatalf("decode result: %v (%s)", err, raw)
		}
		return resp.StatusCode, &res, nil
	}
	var errBody map[string]any
	_ = json.Unmarshal(raw, &errBody)
	return resp.StatusCode, nil, errBody
}

// TestServeLoadSmoke is the headline invariant: under a seeded open-loop
// mix the server answers every request (zero transport drops), answers
// them all 200 when capacity suffices, and keeps tail latency bounded.
func TestServeLoadSmoke(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers:       4,
		MaxConcurrent: 8,
		MaxQueue:      256,
		BatchMax:      8,
		BatchDelay:    time.Millisecond,
	})
	res := loadtest.Run(loadtest.Config{
		BaseURL:  ts.URL,
		Seed:     751,
		Requests: 120,
		Rate:     600,
		Mix: []loadtest.JobSpec{
			{Kind: "sort", Body: map[string]any{"n": 2000}, Weight: 5},
			{Kind: "spin", Body: map[string]any{"spin_ms": 2}, Weight: 3},
			{Kind: "thumbs", Body: map[string]any{"n": 6}, Weight: 1},
			{Kind: "textsearch", Body: map[string]any{"n": 20}, Weight: 1},
		},
	})
	if res.Dropped != 0 {
		t.Fatalf("dropped %d responses, want 0 (%s)", res.Dropped, res.Summary())
	}
	if got := res.Codes[http.StatusOK]; got != res.Sent {
		t.Fatalf("OK responses = %d of %d sent (%s)", got, res.Sent, res.Summary())
	}
	// Generous tail bound: the point is "bounded", not "fast" — CI boxes
	// under -race are slow, but an unbounded queue would show seconds.
	if p99 := res.Latency.Quantile(0.99); p99 > 10*time.Second {
		t.Fatalf("p99 = %v, want bounded (%s)", p99, res.Summary())
	}
}

// TestServeSaturation429 overloads a one-slot server and checks the
// admission contract: the wait queue never exceeds MaxQueue, overflow is
// answered 429 with Retry-After, and nothing is silently dropped.
func TestServeSaturation429(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers:       2,
		MaxConcurrent: 1,
		MaxQueue:      2,
	})

	// Sample the admission gauge throughout the storm: bounded queueing
	// must hold at every instant, not just at the end.
	stop := make(chan struct{})
	var maxWaiting atomic.Int64
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if w := s.Statz().Admission.Waiting; w > maxWaiting.Load() {
				maxWaiting.Store(w)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	res := loadtest.Run(loadtest.Config{
		BaseURL:  ts.URL,
		Seed:     7,
		Requests: 12,
		Rate:     10_000, // near-simultaneous arrivals
		Mix: []loadtest.JobSpec{
			{Kind: "spin", Body: map[string]any{"spin_ms": 120, "deadline_ms": 5000}, Weight: 1},
		},
	})
	close(stop)
	sampler.Wait()

	if res.Dropped != 0 {
		t.Fatalf("dropped %d responses, want 0 (%s)", res.Dropped, res.Summary())
	}
	if res.Codes[http.StatusTooManyRequests] == 0 {
		t.Fatalf("no 429 under 12x overload of a 1-slot/2-queue server (%s)", res.Summary())
	}
	if res.RetryAfterSeen != res.Codes[http.StatusTooManyRequests] {
		t.Fatalf("Retry-After on %d of %d 429s, want all", res.RetryAfterSeen, res.Codes[http.StatusTooManyRequests])
	}
	// Presence is not enough: a client backs off by parsing the value, so
	// every Retry-After must be a whole number of seconds >= 1.
	if res.RetryAfterValid != res.RetryAfterSeen {
		t.Fatalf("Retry-After parsed as seconds>=1 on %d of %d headers, want all", res.RetryAfterValid, res.RetryAfterSeen)
	}
	if res.Codes[http.StatusOK] == 0 {
		t.Fatalf("no request succeeded (%s)", res.Summary())
	}
	if w := maxWaiting.Load(); w > int64(s.cfg.MaxQueue) {
		t.Fatalf("admission queue reached %d, bound is %d", w, s.cfg.MaxQueue)
	}
	if got := s.Statz().Admission.Rejected; got != int64(res.Codes[http.StatusTooManyRequests]) {
		t.Fatalf("rejected counter = %d, 429 responses = %d", got, res.Codes[http.StatusTooManyRequests])
	}
}

// TestServeBatching checks small-sort coalescing end to end: concurrent
// small sorts share batches (admissions < jobs), results carry the
// Batched flag, and a batched sort's checksum is bit-identical to the
// directly computed one.
func TestServeBatching(t *testing.T) {
	const jobs = 8
	s, ts := newTestServer(t, Config{
		Workers:       4,
		MaxConcurrent: 2,
		BatchMax:      4,
		BatchDelay:    20 * time.Millisecond,
	})

	// The ground truth a batched element must reproduce.
	want := func(seed uint64, n int) uint64 {
		xs := workload.IntArray(seed, n, n*4)
		sort.Ints(xs)
		var sum uint64
		for i := 0; i < len(xs); i += 1 + len(xs)/64 {
			sum = fnv1a(sum, uint64(xs[i]))
		}
		return sum
	}(9, 512)

	var wg sync.WaitGroup
	results := make([]*JobResult, jobs)
	codes := make([]int, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], results[i], _ = postJob(t, ts.URL, KindSort, JobRequest{Seed: 9, N: 512})
		}(i)
	}
	wg.Wait()

	for i := 0; i < jobs; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("job %d: status %d", i, codes[i])
		}
		if !results[i].Batched {
			t.Errorf("job %d: not batched", i)
		}
		if results[i].Checksum != want {
			t.Errorf("job %d: checksum %#x, want %#x", i, results[i].Checksum, want)
		}
	}
	bs := s.Statz().Batch[string(KindSort)]
	if bs.Items != jobs {
		t.Fatalf("batch items = %d, want %d", bs.Items, jobs)
	}
	if bs.Batches >= jobs {
		t.Fatalf("batches = %d for %d jobs: no coalescing happened", bs.Batches, jobs)
	}
	if bs.MeanSize <= 1 {
		t.Fatalf("mean batch size %.2f, want > 1", bs.MeanSize)
	}
}

// TestServeDeadline504 checks both deadline paths: a running job that
// overruns its budget is cut off by its context, and a job that expires
// while still waiting for an admission slot never executes. Both answer
// 504.
func TestServeDeadline504(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers:       2,
		MaxConcurrent: 1,
		MaxQueue:      4,
	})

	// Running overrun: 400ms of work on a 50ms budget.
	code, _, errBody := postJob(t, ts.URL, KindSpin, JobRequest{SpinMs: 400, DeadlineMs: 50})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("overrunning spin: status %d (%v), want 504", code, errBody)
	}

	// Queued expiry: occupy the single slot, then submit with a budget
	// shorter than the occupant — the victim times out in admission.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postJob(t, ts.URL, KindSpin, JobRequest{SpinMs: 400, DeadlineMs: 2000})
	}()
	time.Sleep(50 * time.Millisecond) // let the occupant take the slot
	code, _, errBody = postJob(t, ts.URL, KindSpin, JobRequest{SpinMs: 5, DeadlineMs: 100})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("queued-expired spin: status %d (%v), want 504", code, errBody)
	}
	wg.Wait()
}

// TestServeGracefulDrain checks the shutdown contract: in-flight jobs
// complete with 200, new intake answers 503, Drain returns nil, and the
// pool is left with no queued, running, or abandoned task.
func TestServeGracefulDrain(t *testing.T) {
	const inflight = 4
	s, ts := newTestServer(t, Config{
		Workers:       4,
		MaxConcurrent: inflight,
	})

	var wg sync.WaitGroup
	codes := make([]int, inflight)
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], _, _ = postJob(t, ts.URL, KindSpin, JobRequest{SpinMs: 200, DeadlineMs: 5000})
		}(i)
	}
	// Wait until all four hold slots so none can race the drain flag.
	deadline := time.Now().Add(2 * time.Second)
	for s.Statz().Admission.Running < inflight {
		if time.Now().After(deadline) {
			t.Fatal("jobs never occupied the slots")
		}
		time.Sleep(time.Millisecond)
	}

	if err := s.Drain(5 * time.Second); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Fatalf("in-flight job %d answered %d during drain, want 200", i, c)
		}
	}

	// Intake is closed...
	code, _, _ := postJob(t, ts.URL, KindSpin, JobRequest{SpinMs: 1})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain request: status %d, want 503", code)
	}
	// ...and the pool is empty: nothing queued, running, or abandoned.
	snap := s.Runtime().SchedStats()
	if snap.Inflight != 0 || snap.Abandoned != 0 {
		t.Fatalf("post-drain pool: inflight=%d abandoned=%d, want 0/0", snap.Inflight, snap.Abandoned)
	}
	// Idempotent.
	if err := s.Drain(time.Second); err != nil {
		t.Fatalf("second Drain: %v", err)
	}
}

// TestServeStatz checks the observability surface end to end over HTTP:
// scheduler snapshot, endpoint histograms, batch stats, breaker state,
// and the Pyjama region snapshot after a kernel job.
func TestServeStatz(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers:       4,
		MaxConcurrent: 4,
		PyjamaThreads: 2,
	})
	// One unbatched sort, one kernel job, one spin.
	if code, _, e := postJob(t, ts.URL, KindSort, JobRequest{N: 50_000}); code != 200 {
		t.Fatalf("sort: %d (%v)", code, e)
	}
	if code, _, e := postJob(t, ts.URL, KindMatMul, JobRequest{N: 64}); code != 200 {
		t.Fatalf("matmul: %d (%v)", code, e)
	}
	if code, _, e := postJob(t, ts.URL, KindSpin, JobRequest{SpinMs: 1}); code != 200 {
		t.Fatalf("spin: %d (%v)", code, e)
	}

	resp, err := http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatalf("GET /statz: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/statz status %d", resp.StatusCode)
	}
	var st Statz
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode /statz: %v", err)
	}

	if len(st.Sched.Workers) != 4 {
		t.Errorf("sched snapshot has %d workers, want 4", len(st.Sched.Workers))
	}
	if st.Sched.Executed == 0 {
		t.Errorf("sched snapshot reports 0 executed tasks")
	}
	for _, kind := range []Kind{KindSort, KindMatMul, KindSpin} {
		ep, ok := st.Endpoints[string(kind)]
		if !ok {
			t.Errorf("no endpoint stats for %s", kind)
			continue
		}
		if ep.Count == 0 || ep.Codes["200"] == 0 {
			t.Errorf("%s: count=%d codes=%v, want a 200 recorded", kind, ep.Count, ep.Codes)
		}
		if len(ep.Buckets) == 0 {
			t.Errorf("%s: empty latency buckets", kind)
		}
		if ep.P99Ns < ep.P50Ns {
			t.Errorf("%s: p99 %d < p50 %d", kind, ep.P99Ns, ep.P50Ns)
		}
	}
	if st.Region == nil {
		t.Error("no Pyjama region stats after a matmul job")
	} else if len(st.Region.Threads) != 2 {
		t.Errorf("region has %d thread records, want 2", len(st.Region.Threads))
	}
	if st.Breaker.State != "closed" {
		t.Errorf("breaker state %q, want closed", st.Breaker.State)
	}
	if _, ok := st.Batch[string(KindSort)]; !ok {
		t.Error("no batch stats for sort")
	}
	if st.Admission.MaxConcurrent != 4 {
		t.Errorf("admission max_concurrent = %d, want 4", st.Admission.MaxConcurrent)
	}
}

// TestServeHealthReadyIdentity covers the cluster-facing surface:
// /healthz is pure liveness (200 even while draining), /readyz flips 503
// at the start of drain — before intake closes (DrainGrace) — and both
// /statz and the probes carry the configured node_id.
func TestServeHealthReadyIdentity(t *testing.T) {
	s := NewServer(Config{
		Workers:       2,
		MaxConcurrent: 2,
		NodeID:        "node-test-7",
		DrainGrace:    300 * time.Millisecond,
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	get := func(path string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var body map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&body)
		return resp.StatusCode, body
	}

	if code, body := get("/healthz"); code != 200 || body["node_id"] != "node-test-7" {
		t.Fatalf("/healthz = %d %v, want 200 with node_id", code, body)
	}
	if code, body := get("/readyz"); code != 200 || body["status"] != "ready" {
		t.Fatalf("/readyz = %d %v, want 200 ready", code, body)
	}
	var st Statz
	resp, err := http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.NodeID != "node-test-7" || !st.Ready || st.Draining {
		t.Fatalf("statz identity = %q ready=%v draining=%v, want node-test-7/true/false",
			st.NodeID, st.Ready, st.Draining)
	}

	// Begin drain in the background; DrainGrace keeps intake open after
	// readiness flips.
	drainDone := make(chan error, 1)
	go func() { drainDone <- s.Drain(10 * time.Second) }()
	// Readiness must flip promptly (well inside the grace window).
	flipDeadline := time.Now().Add(250 * time.Millisecond)
	for {
		code, _ := get("/readyz")
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(flipDeadline) {
			t.Fatal("/readyz did not flip 503 at the start of drain")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Liveness must NOT flip — a supervisor would otherwise kill a
	// politely draining node.
	if code, _ := get("/healthz"); code != 200 {
		t.Fatalf("/healthz = %d during drain, want 200 (liveness != readiness)", code)
	}
	// Intake is still open during the grace window: a job submitted now
	// must be accepted and execute, not bounce with 503.
	if code, res, e := postJob(t, ts.URL, KindSpin, JobRequest{SpinMs: 1}); code != 200 || res == nil {
		t.Fatalf("job during DrainGrace = %d (%v), want 200: readyz must flip before intake closes", code, e)
	}
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
	// After drain completes, intake is closed and readiness still 503.
	if code, _, _ := postJob(t, ts.URL, KindSpin, JobRequest{SpinMs: 1}); code != http.StatusServiceUnavailable {
		t.Fatalf("job after drain = %d, want 503", code)
	}
	if code, _ := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz after drain = %d, want 503", code)
	}
	if code, _ := get("/healthz"); code != 200 {
		t.Fatalf("/healthz after drain = %d, want 200", code)
	}
}

// TestServeWebFetch runs the one non-hermetic kind against a local
// upstream and checks fetch accounting plus breaker reporting.
func TestServeWebFetch(t *testing.T) {
	var hits atomic.Int64
	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		fmt.Fprint(w, "payload-for-", r.URL.Path)
	}))
	defer upstream.Close()

	_, ts := newTestServer(t, Config{Workers: 4, MaxConcurrent: 4})
	urls := []string{upstream.URL + "/a", upstream.URL + "/b", upstream.URL + "/c"}
	code, res, errBody := postJob(t, ts.URL, KindWebFetch, JobRequest{URLs: urls})
	if code != http.StatusOK {
		t.Fatalf("webfetch: status %d (%v)", code, errBody)
	}
	if got := res.Summary["fetched"].(float64); int(got) != len(urls) {
		t.Fatalf("fetched %v of %d urls", got, len(urls))
	}
	if hits.Load() != int64(len(urls)) {
		t.Fatalf("upstream saw %d hits, want %d", hits.Load(), len(urls))
	}
	if res.Summary["breaker"] != "closed" {
		t.Fatalf("breaker state %v, want closed", res.Summary["breaker"])
	}
}

// TestServeBadRequest checks the 400 vocabulary: unknown kind, invalid
// JSON, and kind-specific parameter errors.
func TestServeBadRequest(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, MaxConcurrent: 2})

	resp, err := http.Post(ts.URL+"/jobs/nosuchkind", "application/json", bytes.NewReader([]byte("{}")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown kind: status %d, want 400", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/jobs/spin", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: status %d, want 400", resp.StatusCode)
	}

	code, _, _ := postJob(t, ts.URL, KindWebFetch, JobRequest{})
	if code != http.StatusBadRequest {
		t.Fatalf("webfetch without urls: status %d, want 400", code)
	}
}

// TestServeDeterminism: the same request yields the same checksum on
// repeat — the property every experiment in this repo leans on, now
// holding across the serving layer too.
func TestServeDeterminism(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, MaxConcurrent: 4})
	for _, kind := range []Kind{KindSort, KindTextSearch, KindPDFSearch, KindThumbs, KindMatMul} {
		req := JobRequest{Seed: 42, N: 100}
		if kind == KindSort {
			req.N = 9000 // above the batching threshold: exercise runSingle
		}
		code1, res1, e1 := postJob(t, ts.URL, kind, req)
		code2, res2, e2 := postJob(t, ts.URL, kind, req)
		if code1 != 200 || code2 != 200 {
			t.Fatalf("%s: statuses %d/%d (%v %v)", kind, code1, code2, e1, e2)
		}
		if res1.Checksum != res2.Checksum {
			t.Errorf("%s: checksums differ across identical requests: %#x vs %#x", kind, res1.Checksum, res2.Checksum)
		}
		if res1.Checksum == 0 {
			t.Errorf("%s: zero checksum", kind)
		}
	}
}
