package parcserve

import (
	"errors"
	"sync"
	"testing"
	"time"

	"parc751/internal/core"
)

// collectFlush is a flush func that records batches and completes every
// future with its input value.
type collectFlush struct {
	mu      sync.Mutex
	batches [][]int
}

func (c *collectFlush) flush(items []batchItem[int, int]) {
	ins := make([]int, len(items))
	for i, it := range items {
		ins[i] = it.in
	}
	c.mu.Lock()
	c.batches = append(c.batches, ins)
	c.mu.Unlock()
	for _, it := range items {
		it.fut.Complete(it.in, nil)
	}
}

// TestServeBatcherFlushBySize: the size bound flushes a full batch
// immediately, without waiting out the delay.
func TestServeBatcherFlushBySize(t *testing.T) {
	var c collectFlush
	b := newBatcher(4, time.Hour, c.flush) // delay effectively infinite
	futs := make([]*core.Future[int], 4)
	for i := range futs {
		fut, ok := b.add(i)
		if !ok {
			t.Fatalf("add %d refused", i)
		}
		futs[i] = fut
	}
	for i, fut := range futs {
		select {
		case <-fut.Done():
		case <-time.After(2 * time.Second):
			t.Fatalf("future %d not completed — size flush did not fire", i)
		}
		if v, err := fut.Get(); err != nil || v != i {
			t.Fatalf("future %d: (%v, %v)", i, v, err)
		}
	}
	st := b.stats()
	if st.Batches != 1 || st.Items != 4 || st.MaxBatch != 4 || st.TimerFlushes != 0 {
		t.Fatalf("stats = %+v, want one untimed batch of 4", st)
	}
}

// TestServeBatcherFlushByTimer: a partial batch flushes when the delay
// bound expires.
func TestServeBatcherFlushByTimer(t *testing.T) {
	var c collectFlush
	b := newBatcher(100, 5*time.Millisecond, c.flush)
	fut, ok := b.add(7)
	if !ok {
		t.Fatal("add refused")
	}
	select {
	case <-fut.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("timer flush never fired")
	}
	st := b.stats()
	if st.Batches != 1 || st.TimerFlushes != 1 {
		t.Fatalf("stats = %+v, want one timer flush", st)
	}
}

// TestServeBatcherClose: close settles the pending tail, refuses further
// adds, and returns only after every in-flight flush has completed.
func TestServeBatcherClose(t *testing.T) {
	var c collectFlush
	b := newBatcher(100, time.Hour, c.flush)
	fut, ok := b.add(1)
	if !ok {
		t.Fatal("add refused before close")
	}
	b.close()
	select {
	case <-fut.Done():
	case <-time.After(time.Second):
		t.Fatal("close did not settle the pending tail")
	}
	if _, ok := b.add(2); ok {
		t.Fatal("add accepted after close")
	}
	if st := b.stats(); st.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", st.Rejected)
	}
	b.close() // idempotent
}

// TestServeBatcherConcurrent hammers add from many goroutines and checks
// the conservation law: every accepted item appears in exactly one
// flushed batch and every future settles.
func TestServeBatcherConcurrent(t *testing.T) {
	var c collectFlush
	b := newBatcher(8, 500*time.Microsecond, c.flush)
	const adders, perAdder = 8, 50
	var wg sync.WaitGroup
	var accepted sync.Map
	for g := 0; g < adders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perAdder; i++ {
				id := g*perAdder + i
				fut, ok := b.add(id)
				if !ok {
					t.Errorf("add %d refused while open", id)
					return
				}
				accepted.Store(id, fut)
			}
		}(g)
	}
	wg.Wait()
	b.close()

	seen := map[int]int{}
	c.mu.Lock()
	for _, batch := range c.batches {
		if len(batch) > 8 {
			t.Errorf("batch of %d exceeds maxBatch 8", len(batch))
		}
		for _, id := range batch {
			seen[id]++
		}
	}
	c.mu.Unlock()
	total := 0
	accepted.Range(func(k, v any) bool {
		total++
		id := k.(int)
		if seen[id] != 1 {
			t.Errorf("item %d flushed %d times, want exactly once", id, seen[id])
		}
		fut := v.(*core.Future[int])
		select {
		case <-fut.Done():
		default:
			t.Errorf("item %d future never settled", id)
		}
		return true
	})
	if total != adders*perAdder {
		t.Fatalf("accepted %d items, want %d", total, adders*perAdder)
	}
	if st := b.stats(); st.Items != adders*perAdder {
		t.Fatalf("stats items = %d, want %d", st.Items, adders*perAdder)
	}
}

// TestServeBatcherFlushError: a flush that fails items propagates the
// error through each future (the saturated-batch path in the server).
func TestServeBatcherFlushError(t *testing.T) {
	wantErr := errors.New("boom")
	b := newBatcher[int, int](2, time.Hour, func(items []batchItem[int, int]) {
		for _, it := range items {
			it.fut.Complete(0, wantErr)
		}
	})
	f1, _ := b.add(1)
	f2, _ := b.add(2)
	for i, fut := range []*core.Future[int]{f1, f2} {
		select {
		case <-fut.Done():
		case <-time.After(time.Second):
			t.Fatalf("future %d never settled", i)
		}
		if _, err := fut.Get(); !errors.Is(err, wantErr) {
			t.Fatalf("future %d error = %v, want %v", i, err, wantErr)
		}
	}
}
