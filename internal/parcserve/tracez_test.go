package parcserve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"parc751/internal/parctrace"
)

// TestTracezLifecycle drives the full /tracez surface over real HTTP:
// start a recording, serve jobs, stop, and check both the JSON dump and
// the HTML viewer reflect the recorded schedule.
func TestTracezLifecycle(t *testing.T) {
	s := NewServer(Config{Workers: 2, NodeID: "tracez-test"})
	defer func() {
		if err := s.Drain(5 * time.Second); err != nil {
			t.Errorf("drain: %v", err)
		}
	}()
	ts := httptest.NewServer(s)
	defer ts.Close()

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("reading %s: %v", path, err)
		}
		return resp, string(body)
	}
	post := func(path string, want int) string {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", nil)
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("reading %s: %v", path, err)
		}
		if resp.StatusCode != want {
			t.Fatalf("POST %s = %d, want %d: %s", path, resp.StatusCode, want, body)
		}
		return string(body)
	}

	// Before any recording: viewer explains itself, JSON is 404.
	if resp, body := get("/tracez"); resp.StatusCode != http.StatusOK || !strings.Contains(body, "No recording") {
		t.Fatalf("cold /tracez: %d %q", resp.StatusCode, body)
	}
	if resp, _ := get("/tracez/trace.json"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cold trace.json status = %d, want 404", resp.StatusCode)
	}

	post("/tracez/start", http.StatusOK)
	post("/tracez/start", http.StatusConflict) // one recording at a time

	// Generate traced work through the normal job surface.
	for i := 0; i < 4; i++ {
		resp, err := http.Post(ts.URL+"/jobs/sort", "application/json",
			strings.NewReader(`{"n": 2000, "seed": 7}`))
		if err != nil {
			t.Fatalf("job: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("sort job status = %d", resp.StatusCode)
		}
	}

	// Live view while recording still attached.
	if _, body := get("/tracez"); !strings.Contains(body, "trace-data") {
		t.Fatal("live /tracez is not the rendered viewer")
	}

	stopBody := post("/tracez/stop", http.StatusOK)
	if !strings.Contains(stopBody, `"status": "stopped"`) && !strings.Contains(stopBody, `"status":"stopped"`) {
		t.Fatalf("stop response: %s", stopBody)
	}
	post("/tracez/stop", http.StatusConflict)
	if parctrace.Active() != nil {
		t.Fatal("recorder still globally attached after stop")
	}

	// The dump must parse under the v1 schema and show the jobs' tasks.
	_, raw := get("/tracez/trace.json")
	d, err := parctrace.ReadDump([]byte(raw))
	if err != nil {
		t.Fatalf("trace.json invalid: %v", err)
	}
	if d.Counts["submit"] == 0 || d.Counts["run"] == 0 {
		t.Fatalf("dump shows no scheduled work: %v", d.Counts)
	}
	if d.Counts["run"] != d.Counts["complete"] {
		t.Fatalf("run/complete not conserved in dump: %v", d.Counts)
	}

	// The viewer now renders the stopped dump with the embedded JSON and
	// a non-empty DAG.
	_, page := get("/tracez")
	for _, want := range []string{"<!doctype html>", "<svg", `id="trace-data"`, "</html>"} {
		if !strings.Contains(page, want) {
			t.Fatalf("viewer missing %q", want)
		}
	}
	start := strings.Index(page, `id="trace-data">`)
	end := strings.Index(page[start:], "</script>")
	var embedded struct {
		DAG struct {
			Nodes []json.RawMessage `json:"nodes"`
		} `json:"dag"`
	}
	if err := json.Unmarshal([]byte(page[start+len(`id="trace-data">`):start+end]), &embedded); err != nil {
		t.Fatalf("embedded trace-data: %v", err)
	}
	if len(embedded.DAG.Nodes) == 0 {
		t.Fatal("embedded DAG empty after recorded jobs")
	}
}

// TestTracezDrainDetaches: draining a server with a live recording must
// detach the global recorder (it would otherwise keep tracing a pool
// that no longer exists) and keep the dump viewable.
func TestTracezDrainDetaches(t *testing.T) {
	s := NewServer(Config{Workers: 2, NodeID: "drain-trace"})
	w := httptest.NewRecorder()
	s.handleTracezStart(w, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("start: %d", w.Code)
	}
	if err := s.Drain(5 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if parctrace.Active() != nil {
		parctrace.Set(nil)
		t.Fatal("recorder leaked past Drain")
	}
	if s.traceDump() == nil {
		t.Fatal("dump not retained across Drain")
	}
}
