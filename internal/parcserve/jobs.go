// Job kinds and their executors. Every kind maps one of the paper's
// student projects (§IV-C) onto a request/response shape: the request
// carries a seed and size parameters, the workload is synthesised
// deterministically from them (the same hermetic generators the
// experiments use), and the response summarises the result. Two kinds
// step outside that pattern: "webfetch" takes explicit URLs (the one
// workload that touches a network), and "spin" is a calibrated busy
// worker used by the load-test harness to hold a slot for a known time.
package parcserve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"parc751/internal/kernels"
	"parc751/internal/pdfsearch"
	"parc751/internal/sortalgo"
	"parc751/internal/textsearch"
	"parc751/internal/thumbs"
	"parc751/internal/workload"
)

// Kind names a job type the server can execute.
type Kind string

// The served job kinds. KindSpin exists for load testing; the rest are
// the course workloads.
const (
	KindSort       Kind = "sort"       // parallel quicksort (project 2)
	KindTextSearch Kind = "textsearch" // folder text search (project 4)
	KindPDFSearch  Kind = "pdfsearch"  // paged-document search (project 7)
	KindThumbs     Kind = "thumbs"     // thumbnail rendering (project 1)
	KindMatMul     Kind = "matmul"     // dense matmul kernel (Pyjama worksharing)
	KindWebFetch   Kind = "webfetch"   // concurrent web access (project 10)
	KindSpin       Kind = "spin"       // synthetic busy job for load tests
)

// Kinds lists every served kind in a stable order.
func Kinds() []Kind {
	return []Kind{KindSort, KindTextSearch, KindPDFSearch, KindThumbs,
		KindMatMul, KindWebFetch, KindSpin}
}

// JobRequest is the JSON body of POST /jobs/{kind}. Fields are a union
// over kinds; unused ones are ignored. Zero values select the kind's
// defaults, so `{}` is always a valid small job.
type JobRequest struct {
	// Seed keys the deterministic workload generator (default 751).
	Seed uint64 `json:"seed,omitempty"`
	// N scales the workload: array length (sort), file count
	// (textsearch), document count (pdfsearch), image count (thumbs),
	// matrix dimension (matmul).
	N int `json:"n,omitempty"`
	// DeadlineMs bounds the job's total lifetime — admission wait, queue
	// time, and execution (default and cap are server config).
	DeadlineMs int `json:"deadline_ms,omitempty"`
	// Query is the needle for the search kinds (default: the generator's
	// planted needle, so matches are guaranteed).
	Query string `json:"query,omitempty"`
	// URLs is the fetch set for webfetch jobs.
	URLs []string `json:"urls,omitempty"`
	// SpinMs is the busy time for spin jobs (default 5, capped at 1000).
	SpinMs int `json:"spin_ms,omitempty"`
}

// JobResult is the JSON body of a successful job response. Summary is
// kind-specific; Checksum lets a caller verify determinism (same seed,
// same params, same checksum).
type JobResult struct {
	Kind      Kind           `json:"kind"`
	Batched   bool           `json:"batched,omitempty"`
	ElapsedMs float64        `json:"elapsed_ms"`
	Summary   map[string]any `json:"summary"`
	Checksum  uint64         `json:"checksum"`
}

const (
	defaultSeed = 751
	// smallSortMax is the batching threshold: sorts at or below this
	// length are coalesced into one multi-task instead of each paying a
	// full admission slot and task spawn (see batch.go).
	smallSortMax = 4096
	maxSpin      = time.Second
)

// errBadRequest wraps parameter errors so the handler can map them to 400
// instead of 500.
var errBadRequest = errors.New("parcserve: bad request")

// clampN bounds a request's N into [1, max], applying def when unset.
func clampN(n, def, max int) int {
	if n <= 0 {
		return def
	}
	if n > max {
		return max
	}
	return n
}

// fnv1a folds b into h (FNV-1a step), the checksum accumulator.
func fnv1a(h uint64, b uint64) uint64 {
	const prime = 1099511628211
	if h == 0 {
		h = 14695981039346656037
	}
	for i := 0; i < 8; i++ {
		h ^= (b >> (8 * i)) & 0xff
		h *= prime
	}
	return h
}

// execute runs one job body on the runtime. It is called from inside a
// ptask.RunCtx task, so recursive decompositions join by helping and the
// context carries the job deadline. Executors check ctx between phases;
// the inner decompositions are cooperative, not preemptible (DESIGN §10).
func (s *Server) execute(ctx context.Context, kind Kind, req *JobRequest) (*JobResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	seed := req.Seed
	if seed == 0 {
		seed = defaultSeed
	}
	// The envelope is pooled; the handler that encodes it releases it
	// (pool.go). Error returns below just drop it to the GC — the error
	// paths are cold and a leaked envelope is only a missed reuse.
	res := acquireJobResult(kind)
	switch kind {
	case KindSort:
		n := clampN(req.N, 10_000, 2_000_000)
		xs := workload.IntArray(seed, n, n*4)
		sortalgo.PTask(s.rt, xs, 2048)
		if !sort.IntsAreSorted(xs) {
			return nil, fmt.Errorf("parcserve: sort produced unsorted output")
		}
		for i := 0; i < len(xs); i += 1 + len(xs)/64 {
			res.Checksum = fnv1a(res.Checksum, uint64(xs[i]))
		}
		res.Summary["n"] = n

	case KindTextSearch:
		spec := workload.DefaultFolderSpec(seed)
		spec.NumFiles = clampN(req.N, 50, 2000)
		folder, planted := workload.GenFolder(spec)
		query := req.Query
		if query == "" {
			query = spec.NeedleWord
		}
		matches := textsearch.NewSearcher(s.rt).Search(folder, textsearch.Literal(query), textsearch.Options{})
		res.Summary["files"] = len(folder.Files)
		res.Summary["matches"] = len(matches)
		res.Summary["planted"] = planted
		for _, m := range matches {
			res.Checksum = fnv1a(res.Checksum, uint64(m.Line))
		}

	case KindPDFSearch:
		spec := workload.DefaultDocSpec(seed)
		spec.NumDocs = clampN(req.N, 30, 500)
		docs, planted := workload.GenDocs(spec)
		query := req.Query
		if query == "" {
			query = spec.Needle
		}
		hits := pdfsearch.Search(s.rt, docs, query, pdfsearch.Options{Granularity: pdfsearch.Hybrid})
		res.Summary["docs"] = len(docs)
		res.Summary["hits"] = len(hits)
		res.Summary["planted"] = planted
		for _, h := range hits {
			res.Checksum = fnv1a(res.Checksum, uint64(h.Page))
		}

	case KindThumbs:
		n := clampN(req.N, 24, 500)
		imgs := workload.GenImageSet(seed, n, 64, 256)
		out := thumbs.PTask(s.rt, imgs, 32, 32, nil)
		res.Summary["images"] = n
		for _, im := range out {
			for _, px := range im.Pix[:minInt(16, len(im.Pix))] {
				res.Checksum = fnv1a(res.Checksum, uint64(px))
			}
		}

	case KindMatMul:
		n := clampN(req.N, 96, 512)
		a := kernels.RandomMatrix(seed, n, n)
		b := kernels.RandomMatrix(seed+1, n, n)
		// The stats-returning kernel lets /statz expose the Pyjama side of
		// the runtime (worksharing + barrier counters), not just the pool.
		c, stats := kernels.MatMulParallelStats(s.cfg.PyjamaThreads, a, b)
		s.recordRegion(stats)
		res.Summary["dim"] = n
		res.Summary["iterations"] = stats.TotalIterations()
		for i := 0; i < len(c.Data); i += 1 + len(c.Data)/64 {
			res.Checksum = fnv1a(res.Checksum, uint64(int64(c.Data[i]*1e6)))
		}

	case KindWebFetch:
		if len(req.URLs) == 0 {
			return nil, fmt.Errorf("%w: webfetch needs urls", errBadRequest)
		}
		if len(req.URLs) > 64 {
			return nil, fmt.Errorf("%w: at most 64 urls per job", errBadRequest)
		}
		results := s.fetcher.FetchAllCtx(ctx, req.URLs, nil)
		okN, bytes := 0, 0
		for _, r := range results {
			if r.Err == nil {
				okN++
				bytes += r.Bytes
			}
			res.Checksum = fnv1a(res.Checksum, uint64(r.Bytes))
		}
		res.Summary["urls"] = len(req.URLs)
		res.Summary["fetched"] = okN
		res.Summary["bytes"] = bytes
		res.Summary["breaker"] = s.breaker.State().String()

	case KindSpin:
		d := time.Duration(clampN(req.SpinMs, 5, int(maxSpin/time.Millisecond))) * time.Millisecond
		// Sleep in ctx-aware slices: a spin job is a stand-in for real
		// work of a known duration, and must honour its deadline.
		timer := time.NewTimer(d)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		res.Summary["spin_ms"] = d.Milliseconds()
		res.Checksum = fnv1a(res.Checksum, uint64(d))

	default:
		return nil, fmt.Errorf("%w: unknown kind %q", errBadRequest, kind)
	}
	return res, nil
}

// sortElement is one coalesced small sort inside a batch flush
// (server.flushSortBatch): same workload and checksum as a standalone
// KindSort job, so a client cannot tell whether it was batched except by
// the Batched flag.
func (s *Server) sortElement(in sortIn, batchLen int) (*JobResult, error) {
	xs := workload.IntArray(in.seed, in.n, in.n*4)
	sortalgo.PTask(s.rt, xs, 2048)
	if !sort.IntsAreSorted(xs) {
		return nil, fmt.Errorf("parcserve: sort produced unsorted output")
	}
	var sum uint64
	for i := 0; i < len(xs); i += 1 + len(xs)/64 {
		sum = fnv1a(sum, uint64(xs[i]))
	}
	res := acquireJobResult(KindSort)
	res.Batched = true
	res.Summary["n"] = in.n
	res.Summary["batch"] = batchLen
	res.Checksum = sum
	return res, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
