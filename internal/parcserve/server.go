// Package parcserve is the job-serving front end over the parallel
// runtime: an HTTP service that executes the paper's student workloads
// (quicksort, text/PDF search, thumbnails, kernels, web access) on the
// shared ptask/pyjama substrate. It is the layer that turns the
// reproduction into a servable system — and the realistic load generator
// every performance PR can be measured against (loadtest/, ablation A9).
//
// The serving disciplines, in one place (DESIGN.md §11):
//
//   - admission control: at most MaxConcurrent jobs execute at once and
//     at most MaxQueue wait; beyond that the server answers 429 with a
//     Retry-After estimate instead of queueing unboundedly;
//   - batching: small jobs of the same kind coalesce into one multi-task
//     (size-or-timeout flush, batch.go), so a storm of tiny requests
//     costs one admission slot per batch;
//   - deadlines: every job's lifetime — admission wait, queue time,
//     execution — is bounded by ptask.WithDeadline; an expired job that
//     never started is never executed (answer: 504);
//   - graceful drain: Drain stops intake (503), flushes batch tails,
//     waits for in-flight jobs, then stops the pool via ShutdownTimeout;
//   - observability: /statz exports the scheduler snapshot, Pyjama
//     region stats, circuit-breaker state, admission counters, and
//     per-endpoint latency histograms.
package parcserve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"parc751/internal/metrics"
	"parc751/internal/parctrace"
	"parc751/internal/ptask"
	"parc751/internal/pyjama"
	"parc751/internal/webfetch"
)

// Config sizes the server. Zero values take the documented defaults.
type Config struct {
	// Workers is the ptask pool size (default GOMAXPROCS).
	Workers int
	// PyjamaThreads sizes kernel-job teams (default Workers).
	PyjamaThreads int
	// MaxConcurrent bounds jobs executing at once (default 2×Workers).
	MaxConcurrent int
	// MaxQueue bounds jobs waiting for a slot; beyond it requests are
	// rejected with 429 (default 4×MaxConcurrent).
	MaxQueue int
	// DefaultDeadline applies when a request names none; MaxDeadline
	// caps what a request may ask for (defaults 10s / 60s).
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// BatchMax and BatchDelay tune small-job coalescing: a batch flushes
	// at BatchMax items or after BatchDelay, whichever first (defaults
	// 16 / 2ms). BatchMax 1 disables coalescing in effect.
	BatchMax   int
	BatchDelay time.Duration
	// FetchConns bounds concurrent webfetch connections (default 8);
	// BreakerThreshold/BreakerCooldown configure its circuit breaker
	// (defaults 5 / 10s).
	FetchConns       int
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Client issues webfetch requests (default http.DefaultClient).
	Client *http.Client
	// NodeID names this server instance in /statz, /healthz and /readyz —
	// the identity the parccluster supervisor and router key on. Default
	// "solo" (a standalone server).
	NodeID string
	// DrainGrace is how long /readyz advertises 503 before Drain actually
	// closes intake (default 0). A fronting router that polls readiness
	// gets that long to stop routing here, so in-flight routing decisions
	// do not race the intake cutoff.
	DrainGrace time.Duration
}

// DefaultConfig returns the production defaults.
func DefaultConfig() Config { return Config{} }

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.PyjamaThreads <= 0 {
		c.PyjamaThreads = c.Workers
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2 * c.Workers
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxConcurrent
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 10 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = time.Minute
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 16
	}
	if c.BatchDelay <= 0 {
		c.BatchDelay = 2 * time.Millisecond
	}
	if c.FetchConns <= 0 {
		c.FetchConns = 8
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 10 * time.Second
	}
	if c.NodeID == "" {
		c.NodeID = "solo"
	}
}

// endpointStats is one kind's serving record: request count, status-code
// tallies, and the end-to-end latency histogram (admission wait included
// — that is the latency a client sees).
type endpointStats struct {
	count atomic.Int64
	lat   metrics.LatencyHistogram
	codes [len(trackedCodes)]atomic.Int64
}

// trackedCodes is the fixed status vocabulary of the server.
var trackedCodes = [...]int{
	http.StatusOK, http.StatusBadRequest, http.StatusRequestEntityTooLarge,
	http.StatusTooManyRequests, http.StatusInternalServerError,
	http.StatusServiceUnavailable, http.StatusGatewayTimeout,
}

func codeSlot(code int) int {
	for i, c := range trackedCodes {
		if c == code {
			return i
		}
	}
	return len(trackedCodes) - 1 // fold unknowns into the last slot
}

func (e *endpointStats) record(code int, d time.Duration) {
	e.count.Add(1)
	e.codes[codeSlot(code)].Add(1)
	e.lat.Observe(d)
}

// sortIn is one coalesced small-sort job.
type sortIn struct {
	seed uint64
	n    int
}

// Server is the job-serving front end. Create with NewServer; it
// implements http.Handler. A Server must be Drained when done — it owns
// a live worker pool.
type Server struct {
	cfg     Config
	rt      *ptask.Runtime
	fetcher *webfetch.Fetcher
	breaker *webfetch.Breaker
	mux     *http.ServeMux
	started time.Time

	// Admission: slots is the execution semaphore, waiting the bounded
	// queue occupancy. rejected counts 429s.
	slots    chan struct{}
	waiting  atomic.Int64
	admitted atomic.Int64
	rejected atomic.Int64

	// Drain: drainOnce makes Drain idempotent; notReady flips first (the
	// /readyz surface, so a fronting router stops routing here), then —
	// after DrainGrace — draining flips once under drainMu, which
	// handlers read-lock around the check-then-register step so a handler
	// can never slip past jobs.Wait (the classic Add-racing-Wait hazard).
	drainMu   sync.RWMutex
	drainOnce atomic.Bool
	notReady  atomic.Bool
	draining  atomic.Bool
	jobs      sync.WaitGroup

	sortBatch *batcher[sortIn, *JobResult]

	eps map[Kind]*endpointStats

	regionMu   sync.Mutex
	lastRegion *pyjama.RegionStats

	// trace is the /tracez recorder state (tracez.go).
	trace tracezState
}

// NewServer starts the runtime and wires the HTTP surface.
func NewServer(cfg Config) *Server {
	cfg.fill()
	s := &Server{
		cfg:     cfg,
		rt:      ptask.NewRuntime(cfg.Workers),
		breaker: webfetch.NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		mux:     http.NewServeMux(),
		started: time.Now(),
		slots:   make(chan struct{}, cfg.MaxConcurrent),
		eps:     map[Kind]*endpointStats{},
	}
	s.fetcher = webfetch.NewFetcher(s.rt, cfg.Client, cfg.FetchConns)
	s.fetcher.SetBreaker(s.breaker)
	for _, k := range Kinds() {
		s.eps[k] = &endpointStats{}
	}
	s.sortBatch = newBatcher(cfg.BatchMax, cfg.BatchDelay, s.flushSortBatch)
	s.mux.HandleFunc("POST /jobs/{kind}", s.handleJob)
	s.mux.HandleFunc("GET /statz", s.handleStatz)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /tracez", s.handleTracez)
	s.mux.HandleFunc("GET /tracez/trace.json", s.handleTracezJSON)
	s.mux.HandleFunc("POST /tracez/start", s.handleTracezStart)
	s.mux.HandleFunc("POST /tracez/stop", s.handleTracezStop)
	return s
}

// Runtime exposes the underlying ptask runtime (tests and experiments).
func (s *Server) Runtime() *ptask.Runtime { return s.rt }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// retryAfter estimates how long a rejected client should back off: the
// full queue's worth of work spread over the execution slots, floored at
// one second — deliberately coarse, it only needs the right magnitude.
func (s *Server) retryAfter() int {
	backlog := int(s.waiting.Load()) + s.cfg.MaxConcurrent
	secs := backlog / s.cfg.MaxConcurrent
	if secs < 1 {
		secs = 1
	}
	return secs
}

// acquire claims an execution slot, waiting in the bounded admission
// queue. It returns a release func on success, or the HTTP status to
// answer with (429 queue full, 504 deadline expired while waiting).
func (s *Server) acquire(done <-chan struct{}) (func(), int) {
	if s.waiting.Add(1) > int64(s.cfg.MaxQueue) {
		s.waiting.Add(-1)
		s.rejected.Add(1)
		return nil, http.StatusTooManyRequests
	}
	select {
	case s.slots <- struct{}{}:
		s.waiting.Add(-1)
		s.admitted.Add(1)
		return func() { <-s.slots }, 0
	case <-done:
		s.waiting.Add(-1)
		return nil, http.StatusGatewayTimeout
	}
}

// deadlineFor resolves a request's deadline against the configured
// default and cap.
func (s *Server) deadlineFor(req *JobRequest) time.Duration {
	d := time.Duration(req.DeadlineMs) * time.Millisecond
	if d <= 0 {
		d = s.cfg.DefaultDeadline
	}
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	return d
}

// handleJob serves POST /jobs/{kind}.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	kind := Kind(r.PathValue("kind"))
	ep, known := s.eps[kind]
	if !known {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown kind %q", kind))
		return
	}
	start := time.Now()
	code := http.StatusInternalServerError
	defer func() { ep.record(code, time.Since(start)) }()

	s.drainMu.RLock()
	if s.draining.Load() {
		s.drainMu.RUnlock()
		w.Header().Set("Connection", "close")
		code = http.StatusServiceUnavailable
		writeError(w, code, "draining")
		return
	}
	s.jobs.Add(1)
	s.drainMu.RUnlock()
	defer s.jobs.Done()

	// The request rides a pooled struct; by the time the deferred release
	// runs the job has settled, so no task body can still reference it
	// (see pool.go for the webfetch URLs caveat).
	req := acquireJobRequest()
	defer releaseJobRequest(req)
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(req); err != nil && !errors.Is(err, io.EOF) {
		code = http.StatusBadRequest
		writeError(w, code, "bad JSON: "+err.Error())
		return
	}
	deadline := s.deadlineFor(req)

	var res *JobResult
	var err error
	if kind == KindSort && req.N > 0 && req.N <= smallSortMax {
		res, err, code = s.runBatchedSort(r, req, deadline)
	} else {
		res, err, code = s.runSingle(r, start, kind, req, deadline)
	}
	if err != nil {
		if code == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", itoaSmall(s.retryAfter()))
		}
		writeError(w, code, err.Error())
		return
	}
	res.ElapsedMs = float64(time.Since(start)) / float64(time.Millisecond)
	code = http.StatusOK
	writeJSON(w, code, res)
	releaseJobResult(res)
}

// runSingle admits and executes one job as its own context-aware task.
// The deadline budget runs from request arrival: admission wait, pool
// queue time, and execution all draw on it.
func (s *Server) runSingle(r *http.Request, start time.Time, kind Kind, req *JobRequest, deadline time.Duration) (*JobResult, error, int) {
	admitCtx, cancel := deadlineChan(deadline)
	defer cancel()
	release, status := s.acquire(admitCtx)
	if status != 0 {
		if status == http.StatusTooManyRequests {
			return nil, errSaturated, status
		}
		return nil, fmt.Errorf("deadline expired after %v waiting for a slot", deadline), status
	}
	defer release()
	remaining := deadline - time.Since(start)
	if remaining <= 0 {
		return nil, fmt.Errorf("deadline expired after %v waiting for a slot", deadline), http.StatusGatewayTimeout
	}
	// The remaining budget covers pool queue time + execution: a job that
	// expires while still queued is never executed and settles with
	// ErrDeadline (the §10 conformance row).
	t := ptask.RunCtx(s.rt, r.Context(), func(ctx context.Context) (*JobResult, error) {
		return s.execute(ctx, kind, req)
	}, ptask.WithDeadline(remaining))
	res, err := t.Result()
	// The task settled (Result joined it), so its future can go back to
	// the typed pool; res survives the release — Put only zeroes the
	// future's own value word.
	t.Release()
	if err != nil {
		return nil, err, statusFor(err)
	}
	return res, nil, http.StatusOK
}

// runBatchedSort routes a small sort through the coalescing batcher and
// waits for its element's result under the job deadline.
func (s *Server) runBatchedSort(r *http.Request, req *JobRequest, deadline time.Duration) (*JobResult, error, int) {
	seed := req.Seed
	if seed == 0 {
		seed = defaultSeed
	}
	fut, ok := s.sortBatch.add(sortIn{seed: seed, n: req.N})
	if !ok {
		return nil, errors.New("draining"), http.StatusServiceUnavailable
	}
	timer := time.NewTimer(deadline)
	defer timer.Stop()
	select {
	case <-fut.Done():
		res, err := fut.Get()
		// Get returned, so this goroutine is done with the pooled future;
		// the timeout paths below must NOT release it — the flush will
		// still complete it.
		s.sortBatch.releaseFuture(fut)
		if err != nil {
			return nil, err, statusFor(err)
		}
		return res, nil, http.StatusOK
	case <-timer.C:
		// The batch may still complete; this caller stops waiting.
		return nil, fmt.Errorf("deadline expired after %v waiting for batch", deadline), http.StatusGatewayTimeout
	case <-r.Context().Done():
		return nil, r.Context().Err(), http.StatusGatewayTimeout
	}
}

// flushSortBatch executes one coalesced batch: one admission slot, one
// multi-task, one sub-task per element. It runs synchronously on the
// goroutine that triggered the flush (the adder that filled the batch,
// the delay timer, or close), which is what lets the batcher's close
// guarantee every accepted item is settled before drain proceeds.
func (s *Server) flushSortBatch(items []batchItem[sortIn, *JobResult]) {
	admitCtx, cancel := deadlineChan(s.cfg.MaxDeadline)
	defer cancel()
	release, status := s.acquire(admitCtx)
	if status != 0 {
		err := error(errSaturated)
		if status != http.StatusTooManyRequests {
			err = fmt.Errorf("parcserve: batch not admitted within %v: %w",
				s.cfg.MaxDeadline, ptask.ErrDeadline)
		}
		for _, it := range items {
			it.fut.Complete(nil, err)
		}
		return
	}
	defer release()
	multi := ptask.RunMulti(s.rt, len(items), func(i int) (*JobResult, error) {
		return s.sortElement(items[i].in, len(items))
	})
	for i, tk := range multi.Tasks() {
		v, err := tk.Result()
		items[i].fut.Complete(v, err)
	}
}

// errSaturated is the admission controller's rejection: the execution
// slots are full and the wait queue is at its bound.
var errSaturated = errors.New("parcserve: admission queue full")

// statusFor maps an execution error to the HTTP vocabulary.
func statusFor(err error) int {
	switch {
	case errors.Is(err, errBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, errSaturated):
		return http.StatusTooManyRequests
	case errors.Is(err, ptask.ErrDeadline), errors.Is(err, context.DeadlineExceeded):
		// Which settle wins is racy when a running body returns ctx.Err()
		// itself while the deadline watcher cancels the task; both spell
		// "the job's time budget ran out".
		return http.StatusGatewayTimeout
	case errors.Is(err, ptask.ErrCancelled), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// recordRegion keeps the most recent Pyjama region snapshot for /statz.
func (s *Server) recordRegion(st pyjama.RegionStats) {
	s.regionMu.Lock()
	s.lastRegion = &st
	s.regionMu.Unlock()
}

// handleHealthz is liveness: it answers 200 for as long as the process
// can serve HTTP at all, draining included. A supervisor restarts a node
// whose /healthz stops answering; it must NOT restart one that is merely
// draining — that distinction is exactly liveness vs readiness.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, "{\"status\":\"ok\",\"node_id\":%q}\n", s.cfg.NodeID)
}

// handleReadyz is readiness: 503 from the moment Drain begins — before
// intake actually closes (Config.DrainGrace) — so a router polling it
// stops sending work here without ever racing a 503 on a job it already
// committed to this node.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.notReady.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "{\"status\":\"draining\",\"node_id\":%q}\n", s.cfg.NodeID)
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, "{\"status\":\"ready\",\"node_id\":%q}\n", s.cfg.NodeID)
}

// NodeID returns the server's configured identity.
func (s *Server) NodeID() string { return s.cfg.NodeID }

// Ready reports whether the server is still accepting routed work (it
// flips false at the start of Drain, DrainGrace before intake closes).
func (s *Server) Ready() bool { return !s.notReady.Load() }

// Drain gracefully stops the server: new jobs are refused with 503,
// pending batch tails are flushed, in-flight jobs run to completion, and
// the worker pool is stopped. The budget d bounds the whole sequence;
// on a clean drain the pool is left with no queued or running task and
// the error is nil. Drain is idempotent.
func (s *Server) Drain(d time.Duration) error {
	if !s.drainOnce.CompareAndSwap(false, true) {
		return nil
	}
	deadline := time.Now().Add(d)
	// Readiness flips first: /readyz answers 503 while intake is still
	// open, giving a fronting router DrainGrace to route around this
	// node before jobs start bouncing.
	s.notReady.Store(true)
	if s.cfg.DrainGrace > 0 {
		grace := s.cfg.DrainGrace
		if until := time.Until(deadline); grace > until/2 {
			grace = until / 2 // never spend the whole budget being polite
		}
		time.Sleep(grace)
	}
	s.drainMu.Lock()
	s.draining.Store(true)
	s.drainMu.Unlock()
	// A recording left running must not outlive the server that attached
	// it: detach and keep the dump, as /tracez/stop would.
	s.trace.mu.Lock()
	if s.trace.rec != nil {
		parctrace.Set(nil)
		s.trace.last = s.trace.rec.Snapshot(parctrace.Meta{Name: "parcserve-" + s.cfg.NodeID})
		s.trace.rec = nil
	}
	s.trace.mu.Unlock()
	// Order matters: the batcher settles every accepted small job before
	// jobs.Wait (their handlers are waiting on those futures), and the
	// pool stops only after no handler can submit another task.
	s.sortBatch.close()
	done := make(chan struct{})
	go func() {
		s.jobs.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Until(deadline)):
	}
	rem := time.Until(deadline)
	if rem < time.Millisecond {
		rem = time.Millisecond
	}
	return s.rt.ShutdownTimeout(rem)
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// deadlineChan returns a channel closed after d plus its cancel func —
// a context-free deadline for the admission wait.
func deadlineChan(d time.Duration) (<-chan struct{}, func()) {
	ch := make(chan struct{})
	t := time.AfterFunc(d, func() { close(ch) })
	var once sync.Once
	return ch, func() { once.Do(func() { t.Stop() }) }
}
