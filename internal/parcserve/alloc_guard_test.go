//go:build !race

// Allocation-budget guards for the serving path's pooled JSON encode
// (pool.go): the error path exists to be cheap under overload, and the
// pooled encoder is what keeps a 429/504 from allocating a fresh
// json.Encoder, a map envelope, and two boxed values per rejection.
// Excluded under -race because the race runtime's instrumentation
// allocates on its own behalf.

package parcserve

import (
	"net/http"
	"testing"
	"time"

	"parc751/internal/core"
)

// nopResponseWriter is the minimal sink for measuring writeJSON: a
// long-lived header map (as net/http keeps per connection) and a body
// write that goes nowhere.
type nopResponseWriter struct {
	h http.Header
}

func (w *nopResponseWriter) Header() http.Header        { return w.h }
func (w *nopResponseWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *nopResponseWriter) WriteHeader(int)             {}

// TestWriteErrorAllocGuard pins the pooled error encode: steady state is
// the pooled errorResponse struct, the pooled encoder+buffer, and
// precomputed header fragments. The one tolerated allocation is the
// Content-Length value slice writeJSON builds per response (it cannot be
// pooled — the header map may retain it past the call).
func TestWriteErrorAllocGuard(t *testing.T) {
	w := &nopResponseWriter{h: http.Header{}}
	for i := 0; i < 64; i++ {
		writeError(w, http.StatusTooManyRequests, "parcserve: admission queue full")
	}
	got := testing.AllocsPerRun(200, func() {
		writeError(w, http.StatusTooManyRequests, "parcserve: admission queue full")
	})
	if got > 1 {
		t.Fatalf("pooled writeError allocates %v objects/op, want <= 1", got)
	}
}

// TestWriteJSONResultAllocGuard bounds the success-path encode of a
// pooled JobResult. The envelope's Summary map forces encoding/json
// through its sorted-map path, which allocates the key slice and boxed
// scalars per encode — the guard pins that this stays a handful, not the
// old per-request encoder + envelope construction on top.
func TestWriteJSONResultAllocGuard(t *testing.T) {
	w := &nopResponseWriter{h: http.Header{}}
	res := acquireJobResult(KindSort)
	res.Batched = true
	res.Summary["n"] = 1024
	res.Summary["batch"] = 4
	res.Checksum = 0x9e3779b97f4a7c15
	res.ElapsedMs = 1.25
	defer releaseJobResult(res)
	for i := 0; i < 64; i++ {
		writeJSON(w, http.StatusOK, res)
	}
	got := testing.AllocsPerRun(200, func() {
		writeJSON(w, http.StatusOK, res)
	})
	if got > 8 {
		t.Fatalf("pooled result encode allocates %v objects/op, want <= 8", got)
	}
}

// TestBatcherAddAllocGuard pins the lock-light enqueue: per item, add
// touches only its claimed slot — the cell (struct + slot array) is two
// allocations amortised over a full batch, and item futures cycle
// through the generation-guarded pool. Budget: 2 cell allocations per
// 8-item round, with headroom for the timer-free flush machinery.
func TestBatcherAddAllocGuard(t *testing.T) {
	const batch = 8
	b := newBatcher(batch, time.Hour, func(items []batchItem[int, int]) {
		for _, it := range items {
			it.fut.Complete(it.in, nil)
		}
	})
	defer b.close()
	round := func() {
		var futs [batch]*core.Future[int]
		for i := 0; i < batch; i++ {
			f, ok := b.add(i)
			if !ok {
				t.Fatal("add refused while open")
			}
			futs[i] = f
		}
		for _, f := range futs {
			if _, err := f.Get(); err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			b.releaseFuture(f)
		}
	}
	for i := 0; i < 64; i++ {
		round()
	}
	got := testing.AllocsPerRun(100, round)
	if got > 4 {
		t.Fatalf("8-item batch round allocates %v objects, want <= 4 (2 amortised cell allocations)", got)
	}
}
