// Package loadtest is a seeded open-loop load generator for the
// parcserve front end. Open-loop means arrivals do not wait for
// responses: interarrival gaps are drawn from an exponential
// distribution (Poisson arrivals) and each request fires on its own
// goroutine the moment its arrival time comes due. This is the
// generator that actually exposes saturation behaviour — a closed-loop
// client self-throttles when the server slows down and so can never
// observe queue growth, which is precisely the failure mode the
// admission controller exists to bound.
//
// Everything the generator decides — arrival times, job kinds, job
// parameters — is a pure function of the seed, so a load profile is
// exactly repeatable. Response latencies of course are not.
package loadtest

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"parc751/internal/metrics"
	"parc751/internal/xrand"
)

// JobSpec is one entry in the workload mix: a job kind, the JSON body
// template to send, and a selection weight.
type JobSpec struct {
	Kind   string
	Body   map[string]any
	Weight int
}

// Config describes one load run.
type Config struct {
	// BaseURL is the server root, e.g. an httptest.Server.URL.
	BaseURL string
	// Client issues the requests (default http.DefaultClient).
	Client *http.Client
	// Seed keys the arrival process and mix selection.
	Seed uint64
	// Requests is the total number of requests to issue.
	Requests int
	// Rate is the mean offered load in requests/second. The run's
	// nominal duration is Requests/Rate.
	Rate float64
	// Mix is the weighted job mix; at least one entry with positive
	// weight is required.
	Mix []JobSpec
}

// Result aggregates one run. Dropped counts requests that produced no
// HTTP response at all (transport error) — the invariant the smoke test
// checks is Dropped == 0: under load the server may reject, but it must
// always answer.
type Result struct {
	Sent    int
	Dropped int
	// Codes tallies responses by HTTP status.
	Codes map[int]int
	// RetryAfterSeen counts 429 responses that carried a Retry-After
	// header (all of them should). RetryAfterValid counts the subset
	// whose value parses as a whole number of seconds >= 1 — the shape a
	// backoff-respecting client actually acts on.
	RetryAfterSeen  int
	RetryAfterValid int
	// Latency is the end-to-end response time distribution over every
	// answered request, rejections included.
	Latency metrics.LatencySnapshot
	// Elapsed is the wall-clock span from first fire to last response.
	Elapsed time.Duration
}

// OKRate returns the fraction of sent requests answered 200.
func (r *Result) OKRate() float64 {
	if r.Sent == 0 {
		return 0
	}
	return float64(r.Codes[http.StatusOK]) / float64(r.Sent)
}

// Run executes the load profile and blocks until every response (or
// transport failure) has been collected.
func Run(cfg Config) *Result {
	client := cfg.Client
	if client == nil {
		client = http.DefaultClient
	}
	if cfg.Rate <= 0 {
		cfg.Rate = 100
	}
	rng := xrand.New(cfg.Seed)
	total := totalWeight(cfg.Mix)

	// Pre-plan the whole run so the schedule is seed-deterministic and
	// independent of response timing: arrival offsets and per-request
	// mix picks are fixed before the first request fires.
	type planned struct {
		at   time.Duration
		spec JobSpec
		body []byte
	}
	plan := make([]planned, cfg.Requests)
	var at time.Duration
	for i := range plan {
		at += time.Duration(rng.ExpFloat64() / cfg.Rate * float64(time.Second))
		spec := pickSpec(rng, cfg.Mix, total)
		body, _ := json.Marshal(spec.Body)
		plan[i] = planned{at: at, spec: spec, body: body}
	}

	res := &Result{Codes: map[int]int{}}
	var mu sync.Mutex
	var hist metrics.LatencyHistogram
	var wg sync.WaitGroup
	start := time.Now()
	for _, p := range plan {
		if d := p.at - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(p planned) {
			defer wg.Done()
			t0 := time.Now()
			req, err := http.NewRequest(http.MethodPost,
				cfg.BaseURL+"/jobs/"+p.spec.Kind, bytes.NewReader(p.body))
			if err == nil {
				req.Header.Set("Content-Type", "application/json")
				var resp *http.Response
				resp, err = client.Do(req)
				if err == nil {
					_, _ = io.Copy(io.Discard, resp.Body)
					_ = resp.Body.Close()
					lat := time.Since(t0)
					mu.Lock()
					res.Codes[resp.StatusCode]++
					if resp.StatusCode == http.StatusTooManyRequests {
						if ra := resp.Header.Get("Retry-After"); ra != "" {
							res.RetryAfterSeen++
							if secs, perr := strconv.Atoi(ra); perr == nil && secs >= 1 {
								res.RetryAfterValid++
							}
						}
					}
					mu.Unlock()
					hist.Observe(lat)
					return
				}
			}
			mu.Lock()
			res.Dropped++
			mu.Unlock()
		}(p)
	}
	res.Sent = len(plan)
	wg.Wait()
	res.Elapsed = time.Since(start)
	res.Latency = hist.Snapshot()
	return res
}

func totalWeight(mix []JobSpec) int {
	n := 0
	for _, s := range mix {
		if s.Weight > 0 {
			n += s.Weight
		}
	}
	if n == 0 {
		panic("loadtest: mix has no positive-weight entry")
	}
	return n
}

func pickSpec(rng *xrand.Rand, mix []JobSpec, total int) JobSpec {
	pick := rng.Intn(total)
	for _, s := range mix {
		if s.Weight <= 0 {
			continue
		}
		if pick < s.Weight {
			return s
		}
		pick -= s.Weight
	}
	return mix[len(mix)-1]
}

// Summary renders the run compactly (for experiment findings and CLI
// output): codes ascending, then p50/p99 and the drop count.
func (r *Result) Summary() string {
	codes := make([]int, 0, len(r.Codes))
	for c := range r.Codes {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	var b bytes.Buffer
	for i, c := range codes {
		if i > 0 {
			b.WriteString(" ")
		}
		b.WriteString(itoa(c))
		b.WriteString(":")
		b.WriteString(itoa(r.Codes[c]))
	}
	b.WriteString(" p50=")
	b.WriteString(r.Latency.Quantile(0.50).Round(time.Millisecond).String())
	b.WriteString(" p99=")
	b.WriteString(r.Latency.Quantile(0.99).Round(time.Millisecond).String())
	b.WriteString(" dropped=")
	b.WriteString(itoa(r.Dropped))
	return b.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
