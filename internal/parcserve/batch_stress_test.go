package parcserve

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"parc751/internal/core"
)

// TestServeBatcherStressDrain hammers the lock-light batcher from many
// goroutines while a concurrent close drains it mid-storm — the scenario
// the atomic slot-claim protocol must survive. It checks the
// conservation law three ways on the same run:
//
//   - the sum of inputs the flush callback saw equals the sum of inputs
//     whose add was accepted (no item lost or duplicated by a seal race);
//   - every accepted item's future settles with exactly its own input
//     (no slot write torn or misdelivered);
//   - the batcher's own accepted/settled ledger agrees with the test's.
//
// The name keeps it inside the CI race job's 'TestServe' net, where the
// claim/seal/detach interleavings actually get exercised.
func TestServeBatcherStressDrain(t *testing.T) {
	var flushedSum atomic.Int64
	var flushedItems atomic.Int64
	b := newBatcher(8, 200*time.Microsecond, func(items []batchItem[int64, int64]) {
		for _, it := range items {
			flushedSum.Add(it.in)
			flushedItems.Add(1)
			it.fut.Complete(it.in, nil)
		}
	})

	type accepted struct {
		in  int64
		fut *core.Future[int64]
	}
	const adders = 8
	perAdder := make([][]accepted, adders)
	var acceptedSum atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < adders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				in := int64(g)*1_000_000 + int64(i) + 1
				fut, ok := b.add(in)
				if !ok {
					return // drain refused us: stop adding
				}
				acceptedSum.Add(in)
				perAdder[g] = append(perAdder[g], accepted{in: in, fut: fut})
			}
		}(g)
	}
	// Let the storm overlap timer flushes, then drain underneath it.
	time.Sleep(2 * time.Millisecond)
	b.close()
	wg.Wait()

	var gotSum int64
	var gotItems int64
	for g := range perAdder {
		for _, a := range perAdder[g] {
			select {
			case <-a.fut.Done():
			default:
				t.Fatalf("accepted item %d not settled after close", a.in)
			}
			v, err := a.fut.Get()
			if err != nil {
				t.Fatalf("item %d settled with error %v", a.in, err)
			}
			if v != a.in {
				t.Fatalf("item %d settled with value %d — misdelivered slot", a.in, v)
			}
			gotSum += v
			gotItems++
		}
	}
	if gotSum != acceptedSum.Load() || gotSum != flushedSum.Load() {
		t.Fatalf("checksum not conserved: accepted=%d flushed=%d settled=%d",
			acceptedSum.Load(), flushedSum.Load(), gotSum)
	}
	if flushedItems.Load() != gotItems {
		t.Fatalf("flush saw %d items, adders accepted %d", flushedItems.Load(), gotItems)
	}
	if st := b.stats(); st.Items != gotItems {
		t.Fatalf("batcher ledger items=%d, want %d", st.Items, gotItems)
	}
	if gotItems == 0 {
		t.Fatal("storm accepted nothing — close raced ahead of every adder")
	}
}
