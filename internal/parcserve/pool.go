// Request-pipeline pooling (DESIGN.md §11): the per-request objects the
// serving path used to allocate — the decoded JobRequest, the JobResult
// envelope, the JSON response encoder and its buffer, and the error
// envelope — are recycled through sync.Pools. Reclamation invariants:
//
//   - a JobRequest is released by its handler after the response is
//     written; no task body can still reference it, because Result()
//     only returns once the body has finished or been cancelled before
//     it ran (DESIGN.md §10), and the one borrower that can outlive the
//     body — an abandoned webfetch sub-task holding the URLs slice — is
//     defused by dropping URLs at release instead of reusing them;
//   - a JobResult is released by the handler that encoded it (each
//     batch element has exactly one); results abandoned by a timed-out
//     handler are simply left to the GC — pools are best-effort;
//   - response encoders are scoped to writeJSON (get, encode, write,
//     put) and never escape;
//   - batch futures ride core.FuturePool's generation guard: a stale
//     handle that touches a recycled future panics (CheckGen), and
//     FuturePool.Put panics on an incomplete future, so a double
//     release or a release racing a waiter fails loudly.
package parcserve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
)

// jobReqPool recycles decoded request bodies. acquire returns a zeroed
// request (release resets every field), which matters for JSON decoding:
// absent fields keep the struct's current values, so a dirty recycled
// request would leak one request's parameters into the next.
var jobReqPool = sync.Pool{New: func() any { return new(JobRequest) }}

func acquireJobRequest() *JobRequest { return jobReqPool.Get().(*JobRequest) }

func releaseJobRequest(r *JobRequest) {
	// URLs is dropped, not truncated: a webfetch job cancelled mid-flight
	// can leave orphan fetch sub-tasks that still index into the slice,
	// and reusing its backing array would hand them a later request's
	// URLs. Every other field is value-typed and safe to reuse.
	*r = JobRequest{}
	jobReqPool.Put(r)
}

// jobResPool recycles result envelopes; the Summary map rides along
// (cleared, capacity kept), so a steady-state response builds its
// summary into reused buckets.
var jobResPool = sync.Pool{New: func() any {
	return &JobResult{Summary: make(map[string]any, 4)}
}}

func acquireJobResult(kind Kind) *JobResult {
	r := jobResPool.Get().(*JobResult)
	r.Kind = kind
	r.Batched = false
	r.ElapsedMs = 0
	r.Checksum = 0
	if r.Summary == nil {
		r.Summary = make(map[string]any, 4)
	} else {
		clear(r.Summary)
	}
	return r
}

func releaseJobResult(r *JobResult) { jobResPool.Put(r) }

// respEncoder is a pooled response serialiser: the json.Encoder is bound
// to its buffer once, so a steady-state response encode allocates
// neither (the old path built a new json.Encoder — and its internal
// state — per response).
type respEncoder struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var respEncPool = sync.Pool{New: func() any {
	e := &respEncoder{}
	e.enc = json.NewEncoder(&e.buf)
	return e
}}

// jsonContentType is the precomputed Content-Type header value, assigned
// directly into the header map under its canonical key: Header().Set
// would canonicalise the key and allocate a fresh one-element slice per
// response.
var jsonContentType = []string{"application/json"}

// writeJSON serialises v into a pooled buffer and writes it with an
// explicit Content-Length (sparing net/http its chunked-encoding path).
func writeJSON(w http.ResponseWriter, code int, v any) {
	e := respEncPool.Get().(*respEncoder)
	e.buf.Reset()
	if err := e.enc.Encode(v); err != nil {
		respEncPool.Put(e)
		http.Error(w, `{"error":"encoding failed","status":500}`, http.StatusInternalServerError)
		return
	}
	h := w.Header()
	h["Content-Type"] = jsonContentType
	h["Content-Length"] = []string{itoaSmall(e.buf.Len())}
	w.WriteHeader(code)
	_, _ = w.Write(e.buf.Bytes())
	respEncPool.Put(e)
}

// errorResponse is the uniform JSON error shape, encoded as a struct:
// the old map[string]any envelope allocated the map, boxed both values,
// and paid encoding/json's sorted-key map path on every 429/504.
type errorResponse struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

var errRespPool = sync.Pool{New: func() any { return new(errorResponse) }}

// writeError emits the uniform JSON error shape.
func writeError(w http.ResponseWriter, code int, msg string) {
	er := errRespPool.Get().(*errorResponse)
	er.Error, er.Status = msg, code
	writeJSON(w, code, er)
	errRespPool.Put(er)
}

// smallInts precomputes the decimal strings responses use for small
// numbers (Content-Length of compact bodies, Retry-After seconds), so
// the saturation path — which exists to be cheap under overload — does
// not strconv-allocate per rejection.
var smallInts = func() [512]string {
	var t [512]string
	for i := range t {
		t[i] = strconv.Itoa(i)
	}
	return t
}()

func itoaSmall(n int) string {
	if n >= 0 && n < len(smallInts) {
		return smallInts[n]
	}
	return strconv.Itoa(n)
}
