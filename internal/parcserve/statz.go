// /statz: the server's observability surface as one JSON document —
// scheduler snapshot, Pyjama region stats, circuit-breaker state,
// admission counters, batching stats, and per-endpoint latency
// histograms. TEMANEJO's lesson applied to serving: runtime internals as
// first-class data, queryable while the system is under load.
package parcserve

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"parc751/internal/metrics"
	"parc751/internal/pyjama"
	"parc751/internal/sched"
)

// AdmissionStats reports the admission controller's configuration and
// live occupancy.
type AdmissionStats struct {
	MaxConcurrent int   `json:"max_concurrent"`
	MaxQueue      int   `json:"max_queue"`
	Running       int   `json:"running"`
	Waiting       int64 `json:"waiting"`
	Admitted      int64 `json:"admitted"`
	Rejected      int64 `json:"rejected"`
}

// EndpointStats is one kind's serving record in export form.
type EndpointStats struct {
	Count   int64            `json:"count"`
	Codes   map[string]int64 `json:"codes,omitempty"`
	P50Ns   int64            `json:"p50_ns"`
	P90Ns   int64            `json:"p90_ns"`
	P99Ns   int64            `json:"p99_ns"`
	Buckets []metrics.Bucket `json:"buckets,omitempty"`
}

// BreakerStats is the webfetch circuit breaker's export form.
type BreakerStats struct {
	State string `json:"state"`
	Trips int64  `json:"trips"`
}

// Statz is the /statz document.
type Statz struct {
	NodeID    string                   `json:"node_id"`
	UptimeMs  int64                    `json:"uptime_ms"`
	Draining  bool                     `json:"draining"`
	Ready     bool                     `json:"ready"`
	Admission AdmissionStats           `json:"admission"`
	Sched     sched.Snapshot           `json:"sched"`
	Endpoints map[string]EndpointStats `json:"endpoints"`
	Batch     map[string]BatchStats    `json:"batch"`
	Breaker   BreakerStats             `json:"breaker"`
	Region    *pyjama.RegionStats      `json:"region,omitempty"`
}

// Statz assembles the current observability snapshot.
func (s *Server) Statz() Statz {
	st := Statz{
		NodeID:   s.cfg.NodeID,
		UptimeMs: time.Since(s.started).Milliseconds(),
		Draining: s.draining.Load(),
		Ready:    !s.notReady.Load(),
		Admission: AdmissionStats{
			MaxConcurrent: s.cfg.MaxConcurrent,
			MaxQueue:      s.cfg.MaxQueue,
			Running:       len(s.slots),
			Waiting:       s.waiting.Load(),
			Admitted:      s.admitted.Load(),
			Rejected:      s.rejected.Load(),
		},
		Sched:     s.rt.SchedStats(),
		Endpoints: map[string]EndpointStats{},
		Batch:     map[string]BatchStats{string(KindSort): s.sortBatch.stats()},
		Breaker:   BreakerStats{State: s.breaker.State().String(), Trips: s.breaker.Trips()},
	}
	for kind, ep := range s.eps {
		n := ep.count.Load()
		if n == 0 {
			continue
		}
		snap := ep.lat.Snapshot()
		es := EndpointStats{
			Count:   n,
			Codes:   map[string]int64{},
			P50Ns:   int64(snap.Quantile(0.50)),
			P90Ns:   int64(snap.Quantile(0.90)),
			P99Ns:   int64(snap.Quantile(0.99)),
			Buckets: snap.Buckets(),
		}
		for i, code := range trackedCodes {
			if c := ep.codes[i].Load(); c != 0 {
				es.Codes[strconv.Itoa(code)] = c
			}
		}
		st.Endpoints[string(kind)] = es
	}
	s.regionMu.Lock()
	st.Region = s.lastRegion
	s.regionMu.Unlock()
	return st
}

func (s *Server) handleStatz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.Statz())
}
