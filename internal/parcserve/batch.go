// Request batching: small jobs of the same kind are coalesced into one
// multi-task instead of each paying its own admission slot and task
// spawn. A batch flushes when it reaches MaxBatch items or when the
// oldest item has waited MaxDelay — the classic size-or-timeout policy.
// Under light load batching adds at most MaxDelay of latency to tiny
// jobs; under heavy load batches fill instantly and the server admits
// one slot per MaxBatch jobs, which is exactly when coalescing pays.
//
// The accumulation is lock-light: a batch is a cell with a fixed slot
// array, and an adder claims its slot with one atomic fetch-add — no
// mutex, no append, no per-add timer arming. The adder that fills the
// cell detaches it (one CAS on the current-cell pointer) and flushes on
// its own goroutine; a single long-lived flusher goroutine enforces the
// delay bound, replacing the old per-batch time.AfterFunc. Item futures
// come from a generation-guarded core.FuturePool, so the steady-state
// enqueue path allocates only the amortised cell (two allocations per
// batch, not per item).
package parcserve

import (
	"errors"
	"runtime"
	"sync/atomic"
	"time"

	"parc751/internal/core"
)

// sealBias is added to a cell's claim cursor to seal it: any claim at or
// above the bias arrived after the cell was detached and must retry on
// the replacement cell. It only needs to exceed any reachable claim
// count between detach and seal.
const sealBias = int64(1) << 40

// batchCell is one batch in the making. slots is sized to maxBatch;
// claims hands out slot positions (and, once sealBias lands, marks the
// cell sealed); filled counts committed slot writes, which is what lets
// a flusher wait out adders that have claimed but not yet written.
// Cells are deliberately not pooled: a fresh cell per batch keeps the
// current-cell CAS free of ABA and costs two allocations amortised over
// up to maxBatch items.
type batchCell[IN, OUT any] struct {
	slots   []batchItem[IN, OUT]
	claims  atomic.Int64
	filled  atomic.Int64
	firstNs atomic.Int64 // arrival time of the cell's first item
}

type batchItem[IN, OUT any] struct {
	in  IN
	fut *core.Future[OUT]
}

// batcher coalesces IN items and completes each item's future with an
// OUT. flush is invoked with a full batch on the goroutine that
// triggered it (the adder that filled the cell, the delay flusher, or
// close); it must complete every future exactly once.
type batcher[IN, OUT any] struct {
	maxBatch int
	maxDelay time.Duration
	flush    func([]batchItem[IN, OUT])

	cur    atomic.Pointer[batchCell[IN, OUT]]
	closed atomic.Bool
	futs   core.FuturePool[OUT]

	// accepted/settled are the conservation ledger close waits on: an
	// item is accepted when its slot write commits and settled when its
	// batch's flush returns. A WaitGroup cannot express this — the
	// registration would race the detach CAS — but two counters can.
	accepted atomic.Int64
	settled  atomic.Int64

	// wake (capacity 1) tells the delay flusher a cell has its first
	// item; stop/flusherDone bound the flusher's lifetime.
	wake        chan struct{}
	stop        chan struct{}
	flusherDone chan struct{}

	// Stats, exported through /statz.
	batches  atomic.Int64 // flushes issued
	items    atomic.Int64 // items accepted
	maxSeen  atomic.Int64 // largest batch flushed
	byTimer  atomic.Int64 // flushes forced by the delay bound
	rejected atomic.Int64 // items refused because the batcher was closed
}

var errBatcherClosed = errors.New("parcserve: batcher closed")

func newBatcher[IN, OUT any](maxBatch int, maxDelay time.Duration, flush func([]batchItem[IN, OUT])) *batcher[IN, OUT] {
	if maxBatch < 1 {
		maxBatch = 1
	}
	b := &batcher[IN, OUT]{
		maxBatch:    maxBatch,
		maxDelay:    maxDelay,
		flush:       flush,
		wake:        make(chan struct{}, 1),
		stop:        make(chan struct{}),
		flusherDone: make(chan struct{}),
	}
	b.cur.Store(b.newCell())
	if maxDelay > 0 {
		go b.flusher()
	} else {
		close(b.flusherDone) // no delay budget: adds flush synchronously
	}
	return b
}

func (b *batcher[IN, OUT]) newCell() *batchCell[IN, OUT] {
	return &batchCell[IN, OUT]{slots: make([]batchItem[IN, OUT], b.maxBatch)}
}

// add queues in for the next flush and returns the future its result
// will arrive on. ok is false when the batcher has been closed (server
// draining): the caller must fail the job itself. The future is pooled;
// a caller that consumed the result may hand it back via releaseFuture
// (a caller that stopped waiting must simply drop it).
func (b *batcher[IN, OUT]) add(in IN) (*core.Future[OUT], bool) {
	if b.closed.Load() {
		b.rejected.Add(1)
		return nil, false
	}
	fut := b.futs.Get()
	for {
		if b.closed.Load() {
			// The future was never exposed: settle and recycle it here.
			var zero OUT
			fut.Complete(zero, errBatcherClosed)
			b.futs.Put(fut)
			b.rejected.Add(1)
			return nil, false
		}
		cell := b.cur.Load()
		pos := cell.claims.Add(1) - 1
		if pos >= sealBias {
			continue // sealed: a replacement cell is already installed
		}
		if pos >= int64(b.maxBatch) {
			// Full: the claimer of the last slot is installing the
			// replacement cell; wait it out and retry there.
			for b.cur.Load() == cell {
				runtime.Gosched()
			}
			continue
		}
		cell.slots[pos] = batchItem[IN, OUT]{in: in, fut: fut}
		b.accepted.Add(1)
		b.items.Add(1)
		cell.filled.Add(1)
		if pos == 0 {
			cell.firstNs.Store(time.Now().UnixNano())
			if b.maxDelay > 0 && b.maxBatch > 1 {
				select {
				case b.wake <- struct{}{}:
				default:
				}
			}
		}
		if pos == int64(b.maxBatch)-1 {
			b.sealIfCurrent(cell, false)
		} else if b.maxDelay <= 0 {
			// No delay budget: every add flushes whatever is pending.
			b.sealIfCurrent(cell, false)
		}
		return fut, true
	}
}

// releaseFuture recycles an add future whose result the caller has
// consumed. Only the goroutine that received the future from add may
// call it, and only after Get returned — a caller that abandoned the
// wait (deadline, cancelled request) must not.
func (b *batcher[IN, OUT]) releaseFuture(f *core.Future[OUT]) { b.futs.Put(f) }

// sealIfCurrent detaches cell (installing a fresh one) and, on winning
// the detach, seals and flushes it. A lost CAS means another goroutine
// detached the same cell and owns its flush.
func (b *batcher[IN, OUT]) sealIfCurrent(cell *batchCell[IN, OUT], timed bool) {
	if b.cur.CompareAndSwap(cell, b.newCell()) {
		b.finishCell(cell, timed)
	}
}

// finishCell seals a detached cell and flushes its contents: the seal
// bias lands on the claim cursor (bouncing late claimers to the
// replacement cell), the pre-seal claim count bounds the batch, and the
// flush waits for every claimed slot's write to commit — adders never
// block, so the gap between claim and commit is a few stores.
func (b *batcher[IN, OUT]) finishCell(cell *batchCell[IN, OUT], timed bool) {
	pre := cell.claims.Add(sealBias) - sealBias
	take := pre
	if take > int64(b.maxBatch) {
		take = int64(b.maxBatch)
	}
	if take <= 0 {
		return
	}
	for cell.filled.Load() < take {
		runtime.Gosched()
	}
	b.batches.Add(1)
	if timed {
		b.byTimer.Add(1)
	}
	for {
		seen := b.maxSeen.Load()
		if take <= seen || b.maxSeen.CompareAndSwap(seen, take) {
			break
		}
	}
	b.flush(cell.slots[:take])
	b.settled.Add(take)
}

// flusher is the delay-bound enforcer: one goroutine for the batcher's
// life, woken by a cell's first item, sleeping until that item's age
// reaches maxDelay, then sealing whatever accumulated. It replaces the
// old per-batch time.AfterFunc (an allocation and a runtime timer per
// batch) and the mutex the timer handshake needed.
func (b *batcher[IN, OUT]) flusher() {
	defer close(b.flusherDone)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for {
		select {
		case <-b.wake:
		case <-b.stop:
			return
		}
		for {
			cell := b.cur.Load()
			if cell.claims.Load() == 0 {
				break // empty cell: sleep until its first item wakes us
			}
			// A claim exists, so the first adder is at most a few stores
			// away from stamping the arrival time.
			first := cell.firstNs.Load()
			for first == 0 {
				runtime.Gosched()
				first = cell.firstNs.Load()
			}
			if wait := time.Duration(first + int64(b.maxDelay) - time.Now().UnixNano()); wait > 0 {
				timer.Reset(wait)
				select {
				case <-timer.C:
				case <-b.stop:
					return
				}
			}
			b.sealIfCurrent(cell, true)
		}
	}
}

// close flushes the pending tail, refuses further adds, and waits for
// every accepted item to settle — the drain path: every accepted item
// has its future completed by the time close returns. The wait is on
// the accepted/settled ledger rather than a WaitGroup, because a flush
// is "registered" by the detach CAS, which no Add/Wait pairing can
// cover without reintroducing a lock.
func (b *batcher[IN, OUT]) close() {
	if b.closed.CompareAndSwap(false, true) {
		close(b.stop)
	}
	<-b.flusherDone
	for {
		cell := b.cur.Load()
		if b.cur.CompareAndSwap(cell, b.newCell()) {
			b.finishCell(cell, false)
			break
		}
	}
	for b.settled.Load() != b.accepted.Load() {
		runtime.Gosched()
	}
}

// BatchStats is one batcher's /statz export.
type BatchStats struct {
	Batches      int64   `json:"batches"`
	Items        int64   `json:"items"`
	MaxBatch     int64   `json:"max_batch"`
	TimerFlushes int64   `json:"timer_flushes"`
	Rejected     int64   `json:"rejected"`
	MeanSize     float64 `json:"mean_size"`
}

func (b *batcher[IN, OUT]) stats() BatchStats {
	s := BatchStats{
		Batches:      b.batches.Load(),
		Items:        b.items.Load(),
		MaxBatch:     b.maxSeen.Load(),
		TimerFlushes: b.byTimer.Load(),
		Rejected:     b.rejected.Load(),
	}
	if s.Batches > 0 {
		s.MeanSize = float64(s.Items) / float64(s.Batches)
	}
	return s
}
