// Request batching: small jobs of the same kind are coalesced into one
// multi-task instead of each paying its own admission slot and task
// spawn. A batch flushes when it reaches MaxBatch items or when the
// oldest item has waited MaxDelay — the classic size-or-timeout policy.
// Under light load batching adds at most MaxDelay of latency to tiny
// jobs; under heavy load batches fill instantly and the server admits
// one slot per MaxBatch jobs, which is exactly when coalescing pays.
package parcserve

import (
	"sync"
	"sync/atomic"
	"time"

	"parc751/internal/core"
)

// batcher coalesces IN items and completes each item's future with an
// OUT. flush is invoked outside the batcher's lock with a full batch;
// it must complete every future exactly once.
type batcher[IN, OUT any] struct {
	maxBatch int
	maxDelay time.Duration
	flush    func([]batchItem[IN, OUT])

	mu      sync.Mutex
	pending []batchItem[IN, OUT]
	timer   *time.Timer
	closed  bool
	// inflight tracks dispatched-but-unfinished flushes; Add happens
	// under mu (so close's Wait can never miss one) and flush runs
	// synchronously on the triggering goroutine — the adder that filled
	// the batch, the delay timer's goroutine, or close itself.
	inflight sync.WaitGroup

	// Stats, exported through /statz.
	batches  atomic.Int64 // flushes issued
	items    atomic.Int64 // items accepted
	maxSeen  atomic.Int64 // largest batch flushed
	byTimer  atomic.Int64 // flushes forced by the delay bound
	rejected atomic.Int64 // items refused because the batcher was closed
}

type batchItem[IN, OUT any] struct {
	in  IN
	fut *core.Future[OUT]
}

func newBatcher[IN, OUT any](maxBatch int, maxDelay time.Duration, flush func([]batchItem[IN, OUT])) *batcher[IN, OUT] {
	if maxBatch < 1 {
		maxBatch = 1
	}
	return &batcher[IN, OUT]{maxBatch: maxBatch, maxDelay: maxDelay, flush: flush}
}

// add queues in for the next flush and returns the future its result
// will arrive on. ok is false when the batcher has been closed (server
// draining): the caller must fail the job itself.
func (b *batcher[IN, OUT]) add(in IN) (*core.Future[OUT], bool) {
	fut := core.NewFuture[OUT]()
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		b.rejected.Add(1)
		return nil, false
	}
	b.items.Add(1)
	b.pending = append(b.pending, batchItem[IN, OUT]{in: in, fut: fut})
	if len(b.pending) >= b.maxBatch {
		batch := b.takeLocked()
		b.mu.Unlock()
		b.dispatch(batch, false)
		return fut, true
	}
	if b.timer == nil && b.maxDelay > 0 {
		b.timer = time.AfterFunc(b.maxDelay, b.flushTimer)
	}
	b.mu.Unlock()
	if b.maxDelay <= 0 {
		// No delay budget: every add flushes whatever is pending.
		b.flushNow()
	}
	return fut, true
}

// takeLocked detaches the pending batch, disarms the timer, and (for a
// non-empty batch) registers the flush in inflight. Callers hold b.mu
// and must pass the result to dispatch.
func (b *batcher[IN, OUT]) takeLocked() []batchItem[IN, OUT] {
	batch := b.pending
	b.pending = nil
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	if len(batch) > 0 {
		b.inflight.Add(1)
	}
	return batch
}

func (b *batcher[IN, OUT]) flushTimer() {
	b.mu.Lock()
	batch := b.takeLocked()
	b.mu.Unlock()
	b.dispatch(batch, true)
}

// flushNow synchronously flushes whatever is pending (used on drain and
// when no delay budget is configured).
func (b *batcher[IN, OUT]) flushNow() {
	b.mu.Lock()
	batch := b.takeLocked()
	b.mu.Unlock()
	b.dispatch(batch, false)
}

func (b *batcher[IN, OUT]) dispatch(batch []batchItem[IN, OUT], timed bool) {
	if len(batch) == 0 {
		return
	}
	defer b.inflight.Done()
	b.batches.Add(1)
	if timed {
		b.byTimer.Add(1)
	}
	for {
		seen := b.maxSeen.Load()
		if int64(len(batch)) <= seen || b.maxSeen.CompareAndSwap(seen, int64(len(batch))) {
			break
		}
	}
	b.flush(batch)
}

// close flushes the pending tail, refuses further adds, and waits for
// every in-flight flush — the drain path: every accepted item has its
// future settled by the time close returns. Any concurrent timer flush
// registered itself in inflight under b.mu before close took the lock,
// so the Wait cannot miss it.
func (b *batcher[IN, OUT]) close() {
	b.mu.Lock()
	b.closed = true
	batch := b.takeLocked()
	b.mu.Unlock()
	b.dispatch(batch, false)
	b.inflight.Wait()
}

// BatchStats is one batcher's /statz export.
type BatchStats struct {
	Batches      int64   `json:"batches"`
	Items        int64   `json:"items"`
	MaxBatch     int64   `json:"max_batch"`
	TimerFlushes int64   `json:"timer_flushes"`
	Rejected     int64   `json:"rejected"`
	MeanSize     float64 `json:"mean_size"`
}

func (b *batcher[IN, OUT]) stats() BatchStats {
	s := BatchStats{
		Batches:      b.batches.Load(),
		Items:        b.items.Load(),
		MaxBatch:     b.maxSeen.Load(),
		TimerFlushes: b.byTimer.Load(),
		Rejected:     b.rejected.Load(),
	}
	if s.Batches > 0 {
		s.MeanSize = float64(s.Items) / float64(s.Batches)
	}
	return s
}
