package parcserve

import (
	"fmt"
	"net/http"
	"sync"

	"parc751/internal/parctrace"
)

// tracezState is the server's window onto the task-DAG recorder: start
// attaches a fresh recorder globally (the same Set/Active discipline the
// CLI and experiments use), stop detaches it and keeps the dump, and the
// viewer renders whichever is current — a live snapshot while recording,
// the last captured dump after. One recording at a time per server; the
// supervisor-facing endpoints are deliberately POST so a crawler cannot
// toggle tracing.
type tracezState struct {
	mu   sync.Mutex
	rec  *parctrace.Recorder
	last *parctrace.Dump
}

// handleTracez serves GET /tracez: the self-contained HTML/SVG viewer
// for the current recording (live) or the last stopped one.
func (s *Server) handleTracez(w http.ResponseWriter, _ *http.Request) {
	d := s.traceDump()
	if d == nil {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprintf(w, "<!doctype html><html><body><h1>parctrace</h1><p>No recording. POST /tracez/start to begin, run some jobs, POST /tracez/stop, then reload.</p></body></html>\n")
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := parctrace.RenderHTML(w, d); err != nil {
		// Headers are gone; all we can do is log-shape the failure inline.
		fmt.Fprintf(w, "<!-- render aborted: %v -->", err)
	}
}

// handleTracezJSON serves GET /tracez/trace.json: the machine-readable
// dump (schema parc751/trace/v1), replayable with `parctrace -replay`.
func (s *Server) handleTracezJSON(w http.ResponseWriter, _ *http.Request) {
	d := s.traceDump()
	if d == nil {
		writeError(w, http.StatusNotFound, "no recording: POST /tracez/start first")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := parctrace.WriteDump(w, d); err != nil {
		// Mid-stream failure: the client sees truncated JSON and a broken
		// connection, which is the honest signal.
		return
	}
}

// handleTracezStart serves POST /tracez/start: attach a fresh recorder
// sized to the pool. 409 if one is already running.
func (s *Server) handleTracezStart(w http.ResponseWriter, _ *http.Request) {
	s.trace.mu.Lock()
	defer s.trace.mu.Unlock()
	if s.trace.rec != nil {
		writeError(w, http.StatusConflict, "recording already in progress")
		return
	}
	s.trace.rec = parctrace.NewRecorder(parctrace.Config{Workers: s.cfg.Workers})
	parctrace.Set(s.trace.rec)
	writeJSON(w, http.StatusOK, map[string]string{"status": "recording"})
}

// handleTracezStop serves POST /tracez/stop: detach the recorder and
// keep its dump as the viewer's content. 409 if nothing is recording.
func (s *Server) handleTracezStop(w http.ResponseWriter, _ *http.Request) {
	s.trace.mu.Lock()
	defer s.trace.mu.Unlock()
	if s.trace.rec == nil {
		writeError(w, http.StatusConflict, "no recording in progress")
		return
	}
	parctrace.Set(nil)
	s.trace.last = s.trace.rec.Snapshot(parctrace.Meta{
		Name: "parcserve-" + s.cfg.NodeID,
	})
	s.trace.rec = nil
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "stopped",
		"recorded": s.trace.last.Recorded,
		"counts":   s.trace.last.Counts,
	})
}

// traceDump returns what the viewer should show: a live snapshot while
// recording, else the last stopped dump, else nil.
func (s *Server) traceDump() *parctrace.Dump {
	s.trace.mu.Lock()
	defer s.trace.mu.Unlock()
	if s.trace.rec != nil {
		// Snapshots tolerate concurrent writers (torn slots are skipped
		// and counted lost), so a live view is safe.
		return s.trace.rec.Snapshot(parctrace.Meta{
			Name: "parcserve-" + s.cfg.NodeID + "-live",
		})
	}
	return s.trace.last
}
